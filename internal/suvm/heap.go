// Package suvm implements Secure User-managed Virtual Memory — the core
// contribution of the Eleos paper (§3.2). SUVM is an additional level of
// virtual memory managed entirely inside the enclave: a page cache
// (EPC++) of pinned EPC pages, its own page tables (an inverse table
// mapping backing-store pages to EPC++ frames, and a crypto-metadata
// table holding the nonce and MAC of every sealed page), and an
// encrypted backing store in untrusted host memory. Accesses go through
// spointers, which perform software address translation and cache the
// translated frame so the page-table lookup happens once per page.
//
// A page fault — an access to a page not resident in EPC++ — is handled
// in software inside the enclave: no enclave exit, no TLB flush, no
// shootdown IPIs, no untrusted driver. Pages evicted to the backing
// store are AES-GCM sealed with a fresh nonce and verified (integrity +
// freshness) on the way back in, matching the guarantees of SGX's own
// EWB/ELDU paging.
//
// Trust domain: suvm is trusted enclave code, and it is the sanctioned
// facade through which trusted code reaches raw untrusted host memory —
// every crossing seals on the way out and verifies on the way in. It is
// also cycle-charged, so it must stay deterministic: virtual time only,
// seeded randomness only, no map-iteration-order dependence. These
// properties are enforced by eleoslint (see internal/lint).
//
//eleos:trusted
//eleos:facade
//eleos:deterministic
package suvm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/cycles"
	"eleos/internal/hostmem"
	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// Allocation and configuration errors.
var (
	ErrOutOfRange  = errors.New("suvm: access outside allocation bounds")
	ErrBadConfig   = errors.New("suvm: invalid configuration")
	ErrCorrupt     = seal.ErrCorrupt
	ErrNotDirect   = errors.New("suvm: direct access on a page-cached allocation")
	ErrDoubleFree  = errors.New("suvm: free of unallocated spointer")
	ErrBackingFull = errors.New("suvm: backing store exhausted")
	// ErrFreed marks use of a spointer whose allocation was freed or
	// whose segment was detached; Free and Detach poison the spointer so
	// stale holders fail fast instead of touching recycled memory.
	ErrFreed = errors.New("suvm: use of a freed or detached allocation")
	// ErrSegmentBusy marks segment operations blocked by an active user:
	// attaching a segment that is mounted elsewhere, or detaching one
	// whose pages are still pinned by linked spointers.
	ErrSegmentBusy = errors.New("suvm: segment busy")
	// ErrCrossDomain marks an operation that crossed a service-domain
	// boundary: freeing an allocation owned by a different carved domain
	// (or by the root) than the one asked to free it.
	ErrCrossDomain = errors.New("suvm: allocation belongs to a different domain")
)

// EvictionPolicy selects victims in EPC++. Exposing it is one of the
// points of SUVM: the application controls the eviction policy (§3.2.4).
type EvictionPolicy int

// Available eviction policies.
const (
	PolicyClock EvictionPolicy = iota // second-chance clock (default)
	PolicyFIFO
	PolicyRandom
)

func (p EvictionPolicy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config tunes a SUVM heap. The paper's "low-level tuning interface for
// expert runtime developers" corresponds to the non-default fields.
type Config struct {
	// PageCacheBytes is the EPC++ capacity. Required. The paper's rule
	// of thumb: size it below the enclave's PRM share so EPC++ frames
	// are never evicted by the SGX driver (see Fig 9 for the failure
	// mode when this is violated).
	PageCacheBytes uint64

	// PageSize is the EPC++ page size (power of two, 512..64 KiB;
	// default 4096). Configured at heap creation, as in the paper.
	PageSize int

	// SubPageSize is the granularity of direct backing-store access
	// (default 1024, the paper's configuration). Must divide PageSize.
	SubPageSize int

	// BackingBytes sizes the encrypted backing store reserved in host
	// memory (default 4 GiB; storage materializes lazily).
	BackingBytes uint64

	// Policy selects the eviction policy (default PolicyClock).
	Policy EvictionPolicy

	// WriteBackClean disables the clean-page optimization, forcing
	// every evicted page to be re-sealed and written back the way SGX's
	// EWB must (ablation knob; default false = optimization on).
	WriteBackClean bool

	// RandomSeed seeds PolicyRandom (default 1).
	RandomSeed uint64
}

func (c *Config) fillDefaults() error {
	if c.PageCacheBytes == 0 {
		return fmt.Errorf("%w: PageCacheBytes is required", ErrBadConfig)
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PageSize < 512 || c.PageSize > 64<<10 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("%w: page size %d", ErrBadConfig, c.PageSize)
	}
	if c.SubPageSize == 0 {
		c.SubPageSize = 1024
		if c.SubPageSize > c.PageSize {
			c.SubPageSize = c.PageSize
		}
	}
	if c.SubPageSize <= 0 || c.PageSize%c.SubPageSize != 0 {
		return fmt.Errorf("%w: sub-page size %d does not divide page size %d", ErrBadConfig, c.SubPageSize, c.PageSize)
	}
	if c.BackingBytes == 0 {
		c.BackingBytes = 4 << 30
	}
	if c.BackingBytes&(c.BackingBytes-1) != 0 {
		return fmt.Errorf("%w: BackingBytes must be a power of two", ErrBadConfig)
	}
	if c.RandomSeed == 0 {
		c.RandomSeed = 1
	}
	return nil
}

// Heap is one SUVM instance, owned by one enclave. All methods taking a
// *sgx.Thread must be called with a thread of that enclave, inside the
// enclave. A Heap is safe for concurrent use by the enclave's threads.
type Heap struct {
	encl  *sgx.Enclave
	plat  *sgx.Platform
	model *cycles.Model
	seal  *seal.Sealer
	cfg   Config

	pageSize  uint64
	pageShift uint
	subSize   uint64
	subsPer   int

	// Backing store: one dedicated host-memory region split into a
	// page-cached half and a direct-access half, each with its own
	// buddy allocator so the two sealing granularities never share a
	// page (§3.2.4: the prototype cannot mix modes within a page).
	bsBase uint64
	bsSize uint64
	//eleos:lockorder 5
	allocMu    sync.Mutex
	cachedBS   *hostmem.Buddy
	directBS   *hostmem.Buddy
	allocs     map[uint64]allocInfo
	directBase uint64

	// EPC++: maxFrames pinned enclave pages; activeFrames of them are
	// currently usable (ballooning shrinks/grows this).
	frameBase    uint64
	frames       []frameMeta
	activeFrames int

	// The fault pipeline: faults on different pages proceed fully in
	// parallel. free supplies frames from sharded pools, ev selects
	// victims under its own policy lock, inflight gives each faulting or
	// evicting page a single owner (same-page faulters wait and coalesce
	// onto the winner's frame). epoch is the resize epoch: faults take it
	// shared, ResizeTo/BalloonTick/Attach/Detach take it exclusively, so
	// capacity changes see a quiesced pipeline without stalling faults
	// the rest of the time. The linked data path takes none of this.
	free     *framePool
	ev       evictor
	inflight *inflightTable
	//eleos:lockorder 10
	epoch sync.RWMutex

	resident *residentTable
	meta     *metaTable

	// Mounted inter-enclave segments (§8's proposed extension): each
	// occupies a range of pseudo backing-store page numbers above
	// segPageBase, resolved to its own host region and sealing key.
	//eleos:lockorder 12
	segMu    sync.Mutex
	segs     []*mountedSeg
	nextSegP uint64

	// Simulated in-EPC residence of the page tables: the inverse table
	// lives in a fixed enclave region touched on every lookup; the
	// crypto-metadata table grows with the backing store in chunked
	// enclave regions, so huge working sets push it out of PRM — the
	// effect that bends Fig 7a beyond 1 GiB.
	iptBase  uint64
	iptSlots uint64
	//eleos:lockorder 70
	metaMu   sync.Mutex
	metaBase map[uint64]uint64 // chunk index -> enclave vaddr

	scratch sync.Pool // page-size byte buffers

	// Carved service domains (domain.go). Mutated only under the
	// exclusive resize epoch; published atomically so lock-free readers
	// (stats, resize guards) see a consistent snapshot.
	domains atomic.Pointer[[]*Domain]

	stats Stats

	// lastBalloonErr is the message of the most recent refused
	// BalloonTick (see StatsSnapshot.LastBalloonErr); nil when no tick
	// has been refused since the last ResetStats.
	lastBalloonErr atomic.Pointer[string]
}

type allocInfo struct {
	size   uint64
	direct bool
	dom    *Domain // owning carved domain, nil for the root
}

// New creates a SUVM heap inside encl. setup must be a thread of the
// enclave, currently entered; it pays the (one-time) cost of
// materializing and pinning the EPC++ frame pool.
func New(encl *sgx.Enclave, setup *sgx.Thread, cfg Config) (*Heap, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if setup.Enclave() != encl {
		return nil, fmt.Errorf("%w: setup thread belongs to a different enclave", ErrBadConfig)
	}
	h := &Heap{
		encl:     encl,
		plat:     encl.Platform(),
		model:    encl.Platform().Model,
		cfg:      cfg,
		pageSize: uint64(cfg.PageSize),
		subSize:  uint64(cfg.SubPageSize),
		subsPer:  cfg.PageSize / cfg.SubPageSize,
		allocs:   make(map[uint64]allocInfo),
		metaBase: make(map[uint64]uint64),
		ev:       newEvictor(cfg.Policy, cfg.RandomSeed),
		inflight: newInflightTable(),
		resident: newResidentTable(),
		meta:     newMetaTable(),
		nextSegP: segPageBase,
	}
	for s := uint64(cfg.PageSize); s > 1; s >>= 1 {
		h.pageShift++
	}

	var err error
	h.seal, err = seal.New(h.model)
	if err != nil {
		return nil, fmt.Errorf("suvm: creating sealer: %w", err)
	}

	// Backing store region, split in two halves.
	h.bsSize = cfg.BackingBytes
	h.bsBase = h.plat.AllocHost(h.bsSize)
	half := h.bsSize / 2
	h.cachedBS, err = hostmem.NewBuddy(h.bsBase, half)
	if err != nil {
		return nil, fmt.Errorf("suvm: backing store: %w", err)
	}
	h.directBase = h.bsBase + half
	h.directBS, err = hostmem.NewBuddy(h.directBase, half)
	if err != nil {
		return nil, fmt.Errorf("suvm: direct backing store: %w", err)
	}

	// EPC++ frame pool: pinned enclave pages.
	maxFrames := int(cfg.PageCacheBytes / h.pageSize)
	if maxFrames < 4 {
		return nil, fmt.Errorf("%w: page cache of %d bytes holds fewer than 4 pages", ErrBadConfig, cfg.PageCacheBytes)
	}
	poolPages := (uint64(maxFrames)*h.pageSize + 4095) / 4096
	if poolPages > uint64(h.plat.Driver.NumFrames()) {
		return nil, fmt.Errorf("%w: EPC++ of %d bytes needs %d EPC frames, PRM has %d",
			sgx.ErrOutOfEPC, cfg.PageCacheBytes, poolPages, h.plat.Driver.NumFrames())
	}
	h.frameBase = encl.AllocPages(poolPages)
	encl.Pin(setup, h.frameBase, uint64(maxFrames)*h.pageSize)
	h.frames = make([]frameMeta, maxFrames)
	h.activeFrames = maxFrames
	h.free = newFramePool(0, maxFrames)
	for i := range h.frames {
		h.frames[i].bsPage.Store(noBSPage)
	}

	// Inverse page table region: one entry per EPC++ frame, double
	// provisioned as a hash table (the paper pre-allocates it large).
	h.iptSlots = uint64(2 * maxFrames)
	h.iptBase = encl.Alloc(h.iptSlots * iptEntryBytes)

	h.scratch.New = func() any {
		b := make([]byte, cfg.PageSize+seal.Overhead)
		return &b
	}
	return h, nil
}

// noBSPage marks an unused frame.
const noBSPage = ^uint64(0)

// segPageBase is the first pseudo page number used for mounted
// segments; it is far above any page the heap's own 2^32-page backing
// region can produce, so the two ranges never collide.
const segPageBase = uint64(1) << 40

// frameMeta is the in-enclave descriptor of one EPC++ frame. refcnt is
// the paper's per-page reference count of linked spointers: frames with
// refcnt > 0 are pinned in EPC++ and skipped by eviction.
type frameMeta struct {
	// bsPage is written under the page's resident-table shard lock (or
	// the in-flight entry during a page-in) but read optimistically by
	// victim selection, hence atomic like refcnt.
	bsPage atomic.Uint64
	// refcnt is mutated only under the bsPage's resident-table shard
	// lock (so check-then-evict stays atomic) but read optimistically by
	// victim selection, hence the atomic type.
	refcnt   atomic.Int32
	accessed atomic.Bool // clock reference bit
	dirty    atomic.Bool // set by writers; consumed under the shard lock at eviction
	disabled bool        // removed from EPC++ by ballooning (under the exclusive resize epoch)
	// dom is the carved domain this frame was assigned to, nil for the
	// root. Written only under the exclusive resize epoch (NewDomain),
	// read by fault and eviction paths holding the epoch shared.
	dom *Domain
}

const iptEntryBytes = 16
const metaEntryBytes = 32

// metaChunkPages is the number of backing-store pages whose crypto
// metadata shares one enclave-memory chunk (128 Ki pages = 4 MiB of
// metadata per 512 MiB of backing store at 4 KiB pages).
const metaChunkPages = 1 << 17

// frameVaddr returns the enclave virtual address of frame f.
func (h *Heap) frameVaddr(f int32) uint64 { return h.frameBase + uint64(f)*h.pageSize }

// bsPageOf maps a backing-store address to its SUVM page number
// (relative to the heap's backing region, so numbering is dense).
func (h *Heap) bsPageOf(bsAddr uint64) uint64 { return (bsAddr - h.bsBase) >> h.pageShift }

// bsAddrOf is the inverse of bsPageOf for page-aligned addresses.
func (h *Heap) bsAddrOf(bsPage uint64) uint64 { return h.bsBase + (bsPage << h.pageShift) }

// PageSize returns the configured EPC++ page size.
func (h *Heap) PageSize() int { return int(h.pageSize) }

// SubPageSize returns the configured direct-access granularity.
func (h *Heap) SubPageSize() int { return int(h.subSize) }

// Enclave returns the owning enclave.
func (h *Heap) Enclave() *sgx.Enclave { return h.encl }

// Malloc allocates n bytes in the backing store and returns an unlinked
// spointer to it, as suvm_malloc does. The memory is demand-cached in
// EPC++ on first access.
func (h *Heap) Malloc(n uint64) (*SPtr, error) { return h.mallocFrom(n, nil, false) }

// MallocDirect allocates n bytes accessed directly in the backing store
// at sub-page granularity, bypassing EPC++ (§3.2.4). Suited to small
// random accesses with no reuse.
func (h *Heap) MallocDirect(n uint64) (*SPtr, error) { return h.mallocFrom(n, nil, true) }

// mallocFrom allocates on behalf of domain d (nil = root), tagging the
// allocation and spointer with their owner and enforcing the domain's
// backing quota.
func (h *Heap) mallocFrom(n uint64, d *Domain, direct bool) (*SPtr, error) {
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-size allocation", ErrBadConfig)
	}
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	if d != nil && d.quota != 0 && d.quotaUsed+n > d.quota {
		return nil, fmt.Errorf("%w: domain %q backing quota exceeded (%d of %d bytes in use)",
			ErrBackingFull, d.name, d.quotaUsed, d.quota)
	}
	bs := h.cachedBS
	if direct {
		bs = h.directBS
	}
	addr, err := bs.Alloc(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBackingFull, err)
	}
	h.allocs[addr] = allocInfo{size: n, direct: direct, dom: d}
	if d != nil {
		d.quotaUsed += n
	}
	return &SPtr{h: h, base: addr, size: n, frame: -1, direct: direct, dom: d}, nil
}

// Free releases an allocation, unlinking the spointer first. Cached
// contents of pages shared with live allocations stay valid; the freed
// range may be recycled by a later Malloc with malloc(3) semantics
// (contents unspecified). Allocations made from a carved domain must be
// freed through that domain (ErrCrossDomain otherwise).
func (h *Heap) Free(th *sgx.Thread, p *SPtr) error { return h.freeFrom(th, p, nil) }

// freeFrom releases an allocation on behalf of domain owner (nil =
// root), refusing to free across domain boundaries.
func (h *Heap) freeFrom(th *sgx.Thread, p *SPtr, owner *Domain) error {
	if p.h == nil {
		return fmt.Errorf("%w: double free", ErrFreed)
	}
	if p.h != h {
		return fmt.Errorf("%w: spointer belongs to a different heap", ErrDoubleFree)
	}
	// Validate before mutating: the spointer must be a live allocation of
	// this heap before its link state is touched, so a bad Free (segment
	// spointer, interior pointer, cross-domain free) leaves the spointer
	// fully usable.
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	info, ok := h.allocs[p.base]
	if !ok {
		return ErrDoubleFree
	}
	if info.dom != owner {
		return fmt.Errorf("%w: owned by %q, freed via %q", ErrCrossDomain, domName(info.dom), domName(owner))
	}
	p.Unlink(th)
	delete(h.allocs, p.base)
	p.h = nil // poison: further use of the spointer fails with ErrFreed
	if info.dom != nil {
		info.dom.quotaUsed -= info.size
	}
	if info.direct {
		return h.directBS.Free(p.base)
	}
	return h.cachedBS.Free(p.base)
}

// Stats returns a snapshot of the heap's event counters. With carved
// domains the flat totals aggregate root + every domain, and Domains
// carries the per-domain breakdown.
func (h *Heap) Stats() StatsSnapshot {
	snap := h.stats.snapshot()
	if msg := h.lastBalloonErr.Load(); msg != nil {
		snap.LastBalloonErr = *msg
	}
	doms := h.domainList()
	if len(doms) == 0 {
		return snap
	}
	snap.Domains = make([]DomainStatsSnapshot, 0, len(doms))
	for _, d := range doms {
		ds := d.stats.snapshot()
		snap.add(&ds)
		snap.Domains = append(snap.Domains, DomainStatsSnapshot{Name: d.name, StatsSnapshot: ds})
	}
	return snap
}

// ResetStats zeroes the counters — root and every carved domain
// (benchmark warm-up boundary).
func (h *Heap) ResetStats() {
	h.stats.reset()
	h.lastBalloonErr.Store(nil)
	for _, d := range h.domainList() {
		d.stats.reset()
	}
}

// Quiesce waits for every in-flight fault and eviction to drain by
// cycling the resize epoch exclusively. Teardown hook: after Quiesce
// returns, no fault started before the call still holds heap state.
func (h *Heap) Quiesce() {
	h.epoch.Lock()
	defer h.epoch.Unlock()
}

// ActiveFrames reports the current EPC++ capacity in pages.
func (h *Heap) ActiveFrames() int {
	h.epoch.RLock()
	defer h.epoch.RUnlock()
	return h.activeFrames
}

func (h *Heap) getScratch() *[]byte  { return h.scratch.Get().(*[]byte) }
func (h *Heap) putScratch(b *[]byte) { h.scratch.Put(b) }

// Command faceserverd runs the face-verification server of the paper's
// §5.2 over real TCP, with the descriptor database in SUVM on the
// simulated SGX platform. The line protocol keeps the demo self-
// contained: the client names an enrolled identity and a capture
// variant, the server renders that capture, runs the real LBP pipeline
// and answers ACCEPT or REJECT.
//
//	VERIFY <identity> <variant>\n  ->  ACCEPT|REJECT <chi-square>\n
//	STATS\n                        ->  one line of counters
//	QUIT\n
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"eleos/internal/exitio"
	"eleos/internal/faceverify"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:4600", "TCP listen address")
		identities = flag.Uint64("identities", 64, "enrolled population size")
		epcppMB    = flag.Int("epcpp", 60, "SUVM page cache size in MiB")
		syscall    = flag.String("syscall", "rpc-async", "simulated syscall dispatch: native|ocall|rpc|rpc-async")
		workers    = flag.Int("rpc-workers", 2, "untrusted RPC worker count (rpc modes)")
	)
	flag.Parse()
	mode, err := exitio.ParseMode(*syscall)
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}

	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}
	var pool *rpc.Pool
	if mode.NeedsPool() {
		pool = rpc.NewPool(plat, *workers, 256)
		pool.Start()
		defer pool.Stop()
	}
	eng, err := exitio.NewEngine(mode, pool)
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}
	setup := encl.NewThread()
	setup.Enter()
	heap, err := suvm.New(encl, setup, suvm.Config{
		PageCacheBytes: uint64(*epcppMB) << 20,
		BackingBytes:   4 << 30,
	})
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}
	log.Printf("faceserverd: enrolling %d identities (%s of descriptors)...",
		*identities, byteSize(faceverify.DatabaseBytes(*identities)))
	store, err := faceverify.NewStore(plat, setup, faceverify.Config{
		Identities: *identities,
		Placement:  faceverify.PlaceSUVM,
		Heap:       heap,
		Synthetic:  false, // the daemon runs the real pipeline
	})
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("faceserverd: %v", err)
	}
	log.Printf("faceserverd: serving on %s (syscall=%s)", ln.Addr(), mode)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("faceserverd: accept: %v", err)
			continue
		}
		go serve(conn, encl, heap, store, eng)
	}
}

func serve(conn net.Conn, encl *sgx.Enclave, heap *suvm.Heap, store *faceverify.Store, eng *exitio.Engine) {
	defer conn.Close()
	th := encl.NewThread()
	th.Enter()
	defer th.Exit()
	// Mirror each real TCP transfer as a simulated syscall on the
	// exit-less engine, so STATS cycle counts include the I/O path.
	sock := netsim.NewSocket(encl.Platform(), 64<<10)
	defer sock.Close()
	q := eng.NewQueue()
	account := func(op exitio.Op) bool {
		q.Push(op)
		cqes, err := q.SubmitAndWait(th)
		if err != nil || exitio.FirstErr(cqes) != nil {
			return false
		}
		return true
	}
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	desc := make([]byte, faceverify.DescriptorBytes)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if !account(exitio.Recv{Sock: sock, N: len(line)}) {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			w.Flush()
			return
		case "STATS":
			st := heap.Stats()
			io := eng.Stats()
			fmt.Fprintf(w, "identities=%d sw_faults=%d evictions=%d clean_drops=%d cycles=%d io_mode=%s io_doorbells=%d\n",
				store.Identities(), st.MajorFaults, st.Evictions, st.CleanDrops, th.T.Cycles(), eng.Mode(), io.Doorbells)
		case "VERIFY":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERROR usage: VERIFY <identity> <variant>\n")
				break
			}
			id, err1 := strconv.ParseUint(fields[1], 10, 64)
			variant, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintf(w, "ERROR bad arguments\n")
				break
			}
			// Render the capture and run the real pipeline.
			query := faceverify.LBPDescriptor(faceverify.SynthImage(id, variant))
			n, err := store.Lookup(th, id, desc)
			if err != nil {
				fmt.Fprintf(w, "ERROR %v\n", err)
				break
			}
			d := faceverify.ChiSquare(query, desc[:n])
			verdict := "REJECT"
			if d < faceverify.VerifyThreshold {
				verdict = "ACCEPT"
			}
			fmt.Fprintf(w, "%s %.0f\n", verdict, d)
		default:
			fmt.Fprintf(w, "ERROR unknown command\n")
		}
		if n := w.Buffered(); n > 0 {
			if !account(exitio.Send{Sock: sock, N: n}) {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func byteSize(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package rpc

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"eleos/internal/cache"
	"eleos/internal/sgx"
)

// ErrStopped is returned by Call, CallAsync and CallBatch when the pool
// is not running: never started, mid-Stop, or already stopped. Callers
// racing Stop get a clean error instead of hanging on a request no
// worker will ever execute.
var ErrStopped = errors.New("rpc: pool is not running")

// request is one delegated untrusted call. The enclave-side caller spins
// on done; the worker publishes the virtual cycles the call consumed so
// the caller can account the synchronous latency it observed (or, for
// async submissions, only the part not hidden behind its own compute).
// Requests are recycled through a sync.Pool; ownership returns to the
// submitter once done is set.
type request struct {
	fn          func(*sgx.HostCtx)
	submitStamp uint64 // caller's cycle clock just after the enqueue charge
	workCycles  uint64
	done        atomic.Uint32
	// notify, when set, runs on the worker thread right after done is
	// published (CallAsyncNotify). The worker captures it before the
	// done store: once done is visible the submitter may Wait and
	// recycle the request under the callback's feet.
	notify func()
}

// Stats counts pool activity.
type Stats struct {
	// Calls is the total number of requests executed through the pool,
	// whatever the submission path (sync, async or batched).
	Calls      uint64
	SyncCalls  uint64
	AsyncCalls uint64
	// Batches counts CallBatch invocations; BatchedCalls counts the
	// requests those batches carried.
	Batches      uint64
	BatchedCalls uint64
	WorkerOps    uint64
	// Steals counts requests a worker took from a sibling's ring.
	Steals uint64
	// Sleeps and Wakes trace the backoff ladder: how often a worker
	// reached the sleep rung, and how often an enqueue had to wake one.
	Sleeps uint64
	Wakes  uint64
	// QueueDepth is the instantaneous number of published-but-undequeued
	// requests; PeakQueueDepth is its high-water mark.
	QueueDepth     int64
	PeakQueueDepth int64
	// WaitCycles accumulates the residual synchronous latency charged at
	// Future.Wait / CallBatch collection — the part of the workers' time
	// the callers could not hide behind their own compute.
	WaitCycles uint64
}

// Pool lifecycle states.
const (
	poolIdle int32 = iota
	poolRunning
	poolStopping
)

// Backoff ladder rungs, in consecutive empty polls: pure busy spinning,
// then yielding the host CPU between polls, then sleeping until an
// enqueue wakes the worker.
const (
	spinPolls  = 64
	yieldPolls = 256
)

// worker is one untrusted poller: its thread, its own ring shard, and
// the wake channel the sleep rung of the backoff ladder blocks on.
type worker struct {
	th       *sgx.Thread
	ring     *ring
	wake     chan struct{}
	sleeping atomic.Bool
}

// Pool is the untrusted RPC runtime: worker threads polling per-worker
// job rings, with idle workers stealing from their siblings. Workers run
// with the CoSRPC cache class of service, so enabling LLC partitioning
// confines their pollution (§3.1, Fig 6b).
type Pool struct {
	plat *sgx.Platform
	ws   []*worker
	wg   sync.WaitGroup

	state    atomic.Int32
	inflight atomic.Int64 // submitters between their state check and enqueue
	draining atomic.Bool
	stopC    chan struct{}

	reqPool sync.Pool

	calls        atomic.Uint64
	syncCalls    atomic.Uint64
	asyncCalls   atomic.Uint64
	batches      atomic.Uint64
	batchedCalls atomic.Uint64
	workerOps    atomic.Uint64
	steals       atomic.Uint64
	sleeps       atomic.Uint64
	wakes        atomic.Uint64
	waitCycles   atomic.Uint64
	depth        atomic.Int64
	peakDepth    atomic.Int64
}

// NewPool creates a pool with the given number of worker threads, each
// owning a ring shard. ringCapacity is the total queue capacity; it is
// split across the shards (each rounded up to a power of two, minimum
// 16 slots).
func NewPool(p *sgx.Platform, workers, ringCapacity int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	perShard := 16
	for perShard < ringCapacity/workers {
		perShard *= 2
	}
	pool := &Pool{plat: p}
	for i := 0; i < workers; i++ {
		pool.ws = append(pool.ws, &worker{
			th:   p.NewHostThread(cache.CoSRPC),
			ring: newRing(perShard),
			wake: make(chan struct{}, 1),
		})
	}
	return pool
}

// Start launches the worker goroutines. Idempotent while running; a
// stopped pool can be started again.
func (p *Pool) Start() {
	if !p.state.CompareAndSwap(poolIdle, poolRunning) {
		return
	}
	p.draining.Store(false)
	p.stopC = make(chan struct{})
	for i := range p.ws {
		p.wg.Add(1)
		go p.workerLoop(i, p.stopC)
	}
}

// Stop shuts the workers down deterministically: new submissions are
// refused with ErrStopped, in-flight publishes are allowed to land, and
// the workers drain every ring before exiting — so a request that was
// accepted is always executed and its waiter always completes.
func (p *Pool) Stop() {
	if !p.state.CompareAndSwap(poolRunning, poolStopping) {
		return
	}
	for p.inflight.Load() != 0 {
		runtime.Gosched()
	}
	p.draining.Store(true)
	close(p.stopC)
	p.wg.Wait()
	p.state.Store(poolIdle)
}

// Workers returns the pool's untrusted threads (the harness aggregates
// their cycle counters into end-to-end numbers).
func (p *Pool) Workers() []*sgx.Thread {
	ths := make([]*sgx.Thread, len(p.ws))
	for i, w := range p.ws {
		ths[i] = w.th
	}
	return ths
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Calls:          p.calls.Load(),
		SyncCalls:      p.syncCalls.Load(),
		AsyncCalls:     p.asyncCalls.Load(),
		Batches:        p.batches.Load(),
		BatchedCalls:   p.batchedCalls.Load(),
		WorkerOps:      p.workerOps.Load(),
		Steals:         p.steals.Load(),
		Sleeps:         p.sleeps.Load(),
		Wakes:          p.wakes.Load(),
		QueueDepth:     p.depth.Load(),
		PeakQueueDepth: p.peakDepth.Load(),
		WaitCycles:     p.waitCycles.Load(),
	}
}

// shardOf picks the submission shard for a caller: affinity by thread
// ID, so a caller's requests stay on one ring and its cache lines, with
// work stealing rebalancing any skew.
func (p *Pool) shardOf(caller *sgx.Thread) int {
	return int(uint64(caller.T.ID()) % uint64(len(p.ws)))
}

func (p *Pool) getReq(fn func(*sgx.HostCtx), stamp uint64) *request {
	req, _ := p.reqPool.Get().(*request)
	if req == nil {
		req = new(request)
	}
	req.fn = fn
	req.submitStamp = stamp
	req.workCycles = 0
	req.done.Store(0)
	return req
}

func (p *Pool) putReq(req *request) {
	req.fn = nil
	req.notify = nil
	p.reqPool.Put(req)
}

// submit publishes req on shard s. The depth counter is raised before
// the descriptor lands in the ring, so no worker can pass its sleep
// re-check while a publish is in flight — including while the ring is
// momentarily full — which makes wake-on-enqueue lost-wakeup free.
func (p *Pool) submit(req *request, s int) error {
	p.inflight.Add(1)
	if p.state.Load() != poolRunning {
		p.inflight.Add(-1)
		return ErrStopped
	}
	p.bumpPeak(p.depth.Add(1))
	p.ws[s].ring.enqueue(req)
	p.inflight.Add(-1)
	p.notify(s)
	return nil
}

func (p *Pool) bumpPeak(d int64) {
	for {
		cur := p.peakDepth.Load()
		if d <= cur || p.peakDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// notify wakes sleeping workers after a publish: the target shard's
// owner first, then — if the backlog justifies it — sleeping siblings,
// which will find the work by stealing.
func (p *Pool) notify(s int) {
	need := p.depth.Load()
	if need <= 0 {
		return
	}
	if int64(len(p.ws)) < need {
		need = int64(len(p.ws))
	}
	if p.wakeOne(s) {
		need--
	}
	for i := 0; need > 0 && i < len(p.ws); i++ {
		if i != s && p.wakeOne(i) {
			need--
		}
	}
}

func (p *Pool) wakeOne(i int) bool {
	w := p.ws[i]
	if !w.sleeping.Load() {
		return false
	}
	select {
	case w.wake <- struct{}{}:
		return true
	default:
		return false
	}
}

// dequeueFor pops work for worker i: its own ring first, then a steal
// sweep over the siblings.
func (p *Pool) dequeueFor(i int) (req *request, stolen bool) {
	if req := p.ws[i].ring.dequeue(); req != nil {
		p.depth.Add(-1)
		return req, false
	}
	n := len(p.ws)
	for k := 1; k < n; k++ {
		if req := p.ws[(i+k)%n].ring.dequeue(); req != nil {
			p.depth.Add(-1)
			return req, true
		}
	}
	return nil, false
}

// workerLoop is the untrusted worker body: it runs on a host thread,
// polls the rings, and executes requests in a host context. It must
// never touch EPC contents or call enclave code.
//
//eleos:untrusted
func (p *Pool) workerLoop(i int, stopC chan struct{}) {
	defer p.wg.Done()
	w := p.ws[i]
	ctx := w.th.HostContext()
	idle := 0
	for {
		req, stolen := p.dequeueFor(i)
		if req == nil {
			if p.draining.Load() {
				// Every ring was empty after the drain flag: done.
				return
			}
			idle++
			switch {
			case idle <= spinPolls:
				// Busy rung: immediate re-poll.
			case idle <= spinPolls+yieldPolls:
				runtime.Gosched()
			default:
				p.sleep(w, stopC)
				idle = spinPolls // resume on the yield rung after a wake
			}
			continue
		}
		idle = 0
		if stolen {
			p.steals.Add(1)
		}
		start := w.th.T.Cycles()
		req.fn(ctx)
		req.workCycles = w.th.T.Cycles() - start
		p.workerOps.Add(1)
		notify := req.notify
		req.done.Store(1)
		if notify != nil {
			notify()
		}
	}
}

// sleep is the bottom rung of the backoff ladder. The worker registers
// as sleeping, re-checks the published depth (a submitter raises depth
// before it could ever need a wake, so this re-check closes the race),
// and only then blocks until an enqueue or Stop wakes it. Runs on the
// untrusted worker thread (a host thread may futex-sleep; an enclave
// thread may not).
//
//eleos:untrusted
func (p *Pool) sleep(w *worker, stopC chan struct{}) {
	w.sleeping.Store(true)
	p.sleeps.Add(1)
	if p.depth.Load() > 0 || p.draining.Load() {
		w.sleeping.Store(false)
		return
	}
	select {
	case <-w.wake:
		p.wakes.Add(1)
		w.th.T.Charge(p.plat.Model.RPCWake)
	case <-stopC:
	}
	w.sleeping.Store(false)
}

// Call delegates fn to a worker without exiting the enclave. The caller
// is charged the descriptor enqueue, the synchronous latency of the
// worker's execution (the virtual cycles the work consumed), and the
// completion-polling overhead — but no EEXIT/EENTER, no TLB flush and no
// enclave state disturbance. Safe for concurrent use by many enclave
// threads. Returns ErrStopped if the pool is not running.
func (p *Pool) Call(caller *sgx.Thread, fn func(*sgx.HostCtx)) error {
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue)
	req := p.getReq(fn, caller.T.Cycles())
	if err := p.submit(req, p.shardOf(caller)); err != nil {
		p.putReq(req)
		return err
	}
	for req.done.Load() == 0 {
		spinWait()
	}
	// The worker's processing time is observed as synchronous latency,
	// but it is not enclave execution — the caller merely polls.
	caller.ChargeOutside(req.workCycles + m.RPCPoll)
	p.calls.Add(1)
	p.syncCalls.Add(1)
	p.putReq(req)
	return nil
}

// CallAsync posts fn and returns immediately with a Future. Only the
// descriptor enqueue is charged here; the caller keeps computing, and
// Future.Wait later charges just the residual part of the worker's
// latency that the caller's own compute did not hide (§3.1's
// asynchronous variant of the exit-less service).
func (p *Pool) CallAsync(caller *sgx.Thread, fn func(*sgx.HostCtx)) (*Future, error) {
	return p.CallAsyncNotify(caller, fn, nil)
}

// CallAsyncNotify is CallAsync with a completion hook: notify (if
// non-nil) runs on the worker thread immediately after the request's
// completion flag is published, so a reaper can block on a channel
// instead of spinning per future. notify executes on the untrusted
// worker — it must be cheap, non-blocking (a counter bump, a
// non-blocking channel send) and must not touch enclave state. It is a
// host-side signal only: accounting still settles at Future.Wait.
func (p *Pool) CallAsyncNotify(caller *sgx.Thread, fn func(*sgx.HostCtx), notify func()) (*Future, error) {
	if p.state.Load() != poolRunning {
		return nil, ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue)
	req := p.getReq(fn, caller.T.Cycles())
	req.notify = notify
	if err := p.submit(req, p.shardOf(caller)); err != nil {
		p.putReq(req)
		return nil, err
	}
	p.calls.Add(1)
	p.asyncCalls.Add(1)
	return &Future{pool: p, req: req}, nil
}

// CallBatch delegates all fns with a single charge-and-publish: the
// caller pays one full enqueue plus the cheap marginal batch cost per
// additional descriptor, publishes the whole batch onto its affinity
// shard (idle siblings steal the overflow), and then waits for all of
// them. The synchronous latency charged is the batch's parallel
// makespan across the pool, not the serial sum of the calls. Returns
// ErrStopped if the pool is not running.
func (p *Pool) CallBatch(caller *sgx.Thread, fns []func(*sgx.HostCtx)) error {
	n := len(fns)
	if n == 0 {
		return nil
	}
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue + uint64(n-1)*m.RPCBatchEnqueue)
	stamp := caller.T.Cycles()
	s := p.shardOf(caller)
	reqs := make([]*request, n)

	p.inflight.Add(1)
	if p.state.Load() != poolRunning {
		p.inflight.Add(-1)
		return ErrStopped
	}
	for i, fn := range fns {
		req := p.getReq(fn, stamp)
		reqs[i] = req
		p.bumpPeak(p.depth.Add(1))
		p.ws[s].ring.enqueue(req)
		if i == 0 {
			p.notify(s) // recruit workers while the rest publishes
		}
	}
	p.inflight.Add(-1)
	p.notify(s)

	var total, maxWork uint64
	for _, req := range reqs {
		for req.done.Load() == 0 {
			spinWait()
		}
		total += req.workCycles
		if req.workCycles > maxWork {
			maxWork = req.workCycles
		}
	}
	span := (total + uint64(len(p.ws)) - 1) / uint64(len(p.ws))
	if span < maxWork {
		span = maxWork
	}
	residual := caller.ChargeResidual(stamp, span)
	caller.ChargeOutside(m.RPCPoll)
	p.waitCycles.Add(residual)
	p.calls.Add(uint64(n))
	p.batches.Add(1)
	p.batchedCalls.Add(uint64(n))
	for _, req := range reqs {
		p.putReq(req)
	}
	return nil
}

// spinWait yields the host CPU between polls. Virtual time is charged
// explicitly by the cost model, so the only job here is to keep the
// polling loops from starving other goroutines on the real machine.
func spinWait() {
	runtime.Gosched()
}

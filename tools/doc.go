// Package tools pins the versions of developer tooling this repository
// uses but does not link into any binary. The pins live in tools.go
// behind the "tools" build tag (the conventional tool-dependency
// pattern), so they are visible to `go mod` bookkeeping without ever
// being compiled into the simulator.
package tools

// Command memaslap is a load generator and benchmarking client for
// memcached-protocol servers, in the role the paper's testbed gives the
// original memaslap (§6.2.2): it fills the server with items, then
// drives a configurable get/set mix from concurrent connections and
// reports throughput and latency percentiles. Works against cmd/
// memcachedd or any real memcached.
//
//	memaslap -server 127.0.0.1:11211 -conns 4 -items 10000 -ops 100000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:11211", "memcached server address")
		conns   = flag.Int("conns", 4, "concurrent connections")
		items   = flag.Int("items", 10_000, "items loaded before the measurement")
		valueSz = flag.Int("value", 1024, "value size in bytes")
		ops     = flag.Int("ops", 100_000, "total operations in the measurement")
		getFrac = flag.Int("get", 90, "percentage of GETs in the mix (rest are SETs)")
		seed    = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	// Load phase.
	log.Printf("loading %d items of %dB...", *items, *valueSz)
	c, err := dial(*server)
	if err != nil {
		log.Fatalf("memaslap: %v", err)
	}
	val := strings.Repeat("x", *valueSz)
	for i := 0; i < *items; i++ {
		if err := c.set(keyName(i), val); err != nil {
			log.Fatalf("memaslap: loading item %d: %v", i, err)
		}
	}
	c.close()

	// Measurement phase.
	log.Printf("running %d ops (%d%% GET) over %d connections...", *ops, *getFrac, *conns)
	var wg sync.WaitGroup
	latencies := make([][]time.Duration, *conns)
	errs := make([]error, *conns)
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := dial(*server)
			if err != nil {
				errs[w] = err
				return
			}
			defer conn.close()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			lat := make([]time.Duration, 0, *ops / *conns)
			for i := 0; i < *ops / *conns; i++ {
				key := keyName(rng.Intn(*items))
				t0 := time.Now()
				if rng.Intn(100) < *getFrac {
					_, err = conn.get(key)
				} else {
					err = conn.set(key, val)
				}
				if err != nil {
					errs[w] = fmt.Errorf("op %d: %w", i, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for w, err := range errs {
		if err != nil {
			log.Fatalf("memaslap: connection %d: %v", w, err)
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		return all[int(float64(len(all)-1)*p)]
	}
	fmt.Printf("\nops:        %d\n", len(all))
	fmt.Printf("wall time:  %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency:    p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
}

func keyName(i int) string { return fmt.Sprintf("memaslap-%08d", i) }

// client is a minimal memcached text-protocol client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10), w: bufio.NewWriter(conn)}, nil
}

func (c *client) close() { c.conn.Close() }

func (c *client) set(key, val string) error {
	fmt.Fprintf(c.w, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if line != "STORED\r\n" {
		return fmt.Errorf("set %s: %q", key, strings.TrimSpace(line))
	}
	return nil
}

func (c *client) get(key string) ([]byte, error) {
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	header, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if header == "END\r\n" {
		return nil, fmt.Errorf("get %s: miss", key)
	}
	fields := strings.Fields(header)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return nil, fmt.Errorf("get %s: bad header %q", key, strings.TrimSpace(header))
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, err
	}
	data := make([]byte, n+2)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return nil, err
	}
	if trailer, err := c.r.ReadString('\n'); err != nil || trailer != "END\r\n" {
		return nil, fmt.Errorf("get %s: bad trailer %q (%v)", key, trailer, err)
	}
	return data[:n], nil
}

// Package sgx is a testdata stand-in for the simulated platform layer.
//
//eleos:platform
package sgx

import "hostmem"

// Thread mimics the hardware-thread surface.
type Thread struct{ host *hostmem.Arena }

func (t *Thread) Enter() {}

func (t *Thread) Exit() {}

func (t *Thread) OCall(n int) {}

// HostRead is platform code touching the arena: a barrier, never
// flagged, and reaching the arena through it is allowed.
func (t *Thread) HostRead(addr uint64, buf []byte) { t.host.ReadAt(addr, buf) }

// Driver mimics the privileged driver with its EPC content accessor.
type Driver struct{ frames []byte }

func (d *Driver) frameData(f int) []byte { return d.frames[f:] }

// Reclaim is platform-internal use of EPC contents; fine.
func (d *Driver) Reclaim(f int) int { return len(d.frameData(f)) }

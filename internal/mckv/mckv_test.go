package mckv

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

type env struct {
	plat *sgx.Platform
	encl *sgx.Enclave
	th   *sgx.Thread
	heap *suvm.Heap
}

func newEnv(t testing.TB) *env {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 4 << 20, BackingBytes: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return &env{plat: plat, encl: encl, th: th, heap: heap}
}

func (e *env) store(t testing.TB, placement Placement, limit uint64) *Store {
	t.Helper()
	s, err := NewStore(e.plat, e.th, Config{
		MemLimitBytes: limit,
		Placement:     placement,
		Heap:          e.heap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetGetDeleteAllPlacements(t *testing.T) {
	for _, pl := range []Placement{PlaceHost, PlaceEnclave, PlaceSUVM, PlaceSUVMDirect} {
		pl := pl
		t.Run(pl.String(), func(t *testing.T) {
			e := newEnv(t)
			s := e.store(t, pl, 16<<20)
			rng := rand.New(rand.NewSource(1))
			type item struct{ k, v []byte }
			var items []item
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("key-%04d-%08x", i, rng.Uint32()))
				v := make([]byte, 100+rng.Intn(2000))
				rng.Read(v)
				items = append(items, item{k, v})
				if err := s.Set(e.th, k, v); err != nil {
					t.Fatalf("set %d: %v", i, err)
				}
			}
			buf := make([]byte, 4096)
			for i, it := range items {
				n, err := s.Get(e.th, it.k, buf)
				if err != nil {
					t.Fatalf("get %d: %v", i, err)
				}
				if !bytes.Equal(buf[:n], it.v) {
					t.Fatalf("get %d: value mismatch", i)
				}
			}
			// Replace in place with different size.
			nv := make([]byte, 5000)
			rng.Read(nv)
			if err := s.Set(e.th, items[0].k, nv); err != nil {
				t.Fatal(err)
			}
			big := make([]byte, 8192)
			n, _ := s.Get(e.th, items[0].k, big)
			if !bytes.Equal(big[:n], nv) {
				t.Fatal("replacement lost")
			}
			if got := s.ItemCount(); got != 300 {
				t.Fatalf("item count %d want 300", got)
			}
			if err := s.Delete(e.th, items[1].k); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(e.th, items[1].k, buf); err != ErrNotFound {
				t.Fatalf("deleted key error = %v", err)
			}
		})
	}
}

func TestLRUEvictionUnderMemoryPressure(t *testing.T) {
	e := newEnv(t)
	s := e.store(t, PlaceHost, 2<<20) // 2 MiB pool
	val := make([]byte, 8<<10)
	// Insert 4 MiB of values: half must be evicted.
	for i := 0; i < 512; i++ {
		if err := s.Set(e.th, []byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("no LRU evictions under memory pressure")
	}
	// The most recent items must still be present; the oldest gone.
	buf := make([]byte, 16<<10)
	if _, err := s.Get(e.th, []byte("k000511"), buf); err != nil {
		t.Fatalf("newest item evicted: %v", err)
	}
	if _, err := s.Get(e.th, []byte("k000000"), buf); err != ErrNotFound {
		t.Fatalf("oldest item survived (err=%v)", err)
	}
}

func TestLRUGetProtectsHotItems(t *testing.T) {
	e := newEnv(t)
	s := e.store(t, PlaceHost, 2<<20)
	val := make([]byte, 8<<10)
	hot := []byte("hot-key")
	if err := s.Set(e.th, hot, val); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	for i := 0; i < 500; i++ {
		if err := s.Set(e.th, []byte(fmt.Sprintf("cold%05d", i)), val); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if _, err := s.Get(e.th, hot, buf); err != nil {
				t.Fatalf("hot item evicted at i=%d: %v", i, err)
			}
		}
	}
	if _, err := s.Get(e.th, hot, buf); err != nil {
		t.Fatalf("hot item evicted despite GET traffic: %v", err)
	}
}

func TestServerModesExitBehaviour(t *testing.T) {
	e := newEnv(t)
	s := e.store(t, PlaceSUVM, 16<<20)
	pool := rpc.NewPool(e.plat, 1, 64)
	pool.Start()
	defer pool.Stop()

	key := []byte("the-key")
	val := make([]byte, 1024)
	for mode, wantExits := range map[SyscallMode]bool{SysOCall: true, SysRPC: false} {
		srv, err := NewServer(s, mode, pool)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.ServeSet(e.th, key, val); err != nil {
			t.Fatal(err)
		}
		exits0, _, _, _, _ := e.encl.Stats().Snapshot()
		for i := 0; i < 20; i++ {
			if _, err := srv.ServeGet(e.th, key); err != nil {
				t.Fatal(err)
			}
		}
		exits1, _, _, _, _ := e.encl.Stats().Snapshot()
		if wantExits && exits1 == exits0 {
			t.Errorf("%v: expected exits, saw none", mode)
		}
		if !wantExits && exits1 != exits0 {
			t.Errorf("%v: expected no exits, saw %d", mode, exits1-exits0)
		}
		srv.Close()
	}
}

func TestTextProtocolOverTCP(t *testing.T) {
	e := newEnv(t)
	s := e.store(t, PlaceSUVM, 16<<20)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		th := e.encl.NewThread()
		th.Enter()
		_ = ServeConn(conn, s, th)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(s string) { conn.Write([]byte(s)) }
	line := func() string {
		l, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return l
	}

	send("set apple 0 0 5\r\nhello\r\n")
	if got := line(); got != "STORED\r\n" {
		t.Fatalf("set response %q", got)
	}
	send("get apple\r\n")
	if got := line(); got != "VALUE apple 0 5\r\n" {
		t.Fatalf("get header %q", got)
	}
	if got := line(); got != "hello\r\n" {
		t.Fatalf("get data %q", got)
	}
	if got := line(); got != "END\r\n" {
		t.Fatalf("get trailer %q", got)
	}
	send("delete apple\r\n")
	if got := line(); got != "DELETED\r\n" {
		t.Fatalf("delete response %q", got)
	}
	send("get apple\r\n")
	if got := line(); got != "END\r\n" {
		t.Fatalf("get-missing %q", got)
	}
	send("stats\r\n")
	sawEnd := false
	for i := 0; i < 10; i++ {
		if line() == "END\r\n" {
			sawEnd = true
			break
		}
	}
	if !sawEnd {
		t.Fatal("stats did not terminate with END")
	}
	send("quit\r\n")
	wg.Wait()
}

func TestConcurrentStoreAccess(t *testing.T) {
	e := newEnv(t)
	s := e.store(t, PlaceSUVM, 32<<20)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := e.encl.NewThread()
			th.Enter()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 4096)
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("w%d-k%04d", w, rng.Intn(100)))
				v := make([]byte, 64+rng.Intn(1024))
				for j := range v {
					v[j] = byte(w + 1)
				}
				if err := s.Set(th, k, v); err != nil {
					t.Errorf("worker %d set: %v", w, err)
					return
				}
				n, err := s.Get(th, k, buf)
				if err != nil {
					t.Errorf("worker %d get: %v", w, err)
					return
				}
				for j := 0; j < n; j++ {
					if buf[j] != byte(w+1) {
						t.Errorf("worker %d: cross-contaminated value", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Package analysis is the minimal analyzer framework under eleoslint.
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// runs once per package against a Pass and reports Diagnostics — but is
// built on internal/lint/load's whole-program view, because the
// trust-boundary analyzer needs a call graph spanning every package and
// the build environment has no module cache from which to pull x/tools.
package analysis

import (
	"fmt"
	"go/token"
	"sort"

	"eleos/internal/lint/directive"
	"eleos/internal/lint/load"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //eleos:allow suppressions.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package plus the surrounding
// program.
type Pass struct {
	Analyzer *Analyzer
	Prog     *load.Program
	Pkg      *load.Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Category is the fine-grained check name (e.g. "maprange"); an
	// //eleos:allow directive may name either it or the analyzer.
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s.%s]", d.Pos, d.Message, d.Analyzer, d.Category)
}

// Report records a finding at pos under the given category.
func (p *Pass) Report(pos token.Pos, category, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every package of prog and returns
// the surviving diagnostics in file/line order, after dropping findings
// matched by well-formed //eleos:allow directives. Malformed
// suppressions (no reason text after "--") are themselves diagnostics:
// a suppression that does not document itself defeats its purpose.
func Run(prog *load.Program, analyzers []*Analyzer, pkgs []*load.Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Fset: prog.Fset, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}

	allows, bad := allowIndex(prog, pkgs)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(allows, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return kept, nil
}

type allowKey struct {
	file  string
	line  int
	check string
}

// allowIndex collects //eleos:allow directives from the analyzed
// packages. Directives missing a reason are returned as diagnostics.
func allowIndex(prog *load.Program, pkgs []*load.Package) (map[allowKey]bool, []Diagnostic) {
	idx := map[allowKey]bool{}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, a := range directive.Allows(prog.Fset, f) {
				if a.Check == "" || a.Reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      token.Position{Filename: a.File, Line: a.Line},
						Analyzer: "eleoslint",
						Category: "badallow",
						Message:  "malformed //eleos:allow: want \"//eleos:allow CHECK -- reason\"",
					})
					continue
				}
				idx[allowKey{a.File, a.Line, a.Check}] = true
			}
		}
	}
	return idx, bad
}

// suppressed reports whether an allow directive on the diagnostic's
// line, or on the line directly above it, names the diagnostic's
// category or analyzer.
func suppressed(idx map[allowKey]bool, d Diagnostic) bool {
	for _, check := range []string{d.Category, d.Analyzer} {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if idx[allowKey{d.Pos.Filename, line, check}] {
				return true
			}
		}
	}
	return false
}

// Package rpc implements Eleos's exit-less system-call service (§3.1 of
// the paper): enclave threads post untrusted function calls to job
// queues in host memory and poll for completion, while a pool of
// untrusted worker threads polls the queues and executes the calls. No
// enclave exit happens on the caller's side — no EEXIT/EENTER latency,
// no TLB flush, no enclave state pollution. The workers' cache footprint
// can further be confined with CAT partitioning (Platform.LLC).
//
// The queue is sharded: each worker owns one lock-free bounded MPMC
// ring (sequence-number variant), callers submit by thread affinity,
// and idle workers steal from their siblings. Synchronization between
// trusted and untrusted contexts is by polling, because enclave threads
// cannot use OS futexes — exactly the constraint the paper works under.
// (The workers themselves are host threads and may sleep; the
// wake-on-enqueue path in Pool models that futex.)
//
// Submission comes in three flavours: synchronous Call, future-returning
// CallAsync whose Wait charges only the latency the caller's own compute
// did not hide, and CallBatch, which publishes N descriptors under a
// single amortized charge.
//
// Trust domain: rpc is the boundary object itself. The submission
// surface (Call, CallAsync, CallBatch) runs on enclave threads; the
// worker loop runs on untrusted host threads and carries a per-function
// //eleos:untrusted annotation — eleoslint's trustboundary analyzer
// checks that the worker side never touches EPC contents or calls
// trusted code (the request trampoline req.fn is the one, deliberately
// dynamic, escape hatch). The package is cycle-charged, hence also
// marked deterministic.
//
//eleos:deterministic
package rpc

import (
	"runtime"
	"sync/atomic"
)

// ring is a bounded multi-producer/multi-consumer queue. Each cell
// carries a sequence number used to detect whether it is ready for the
// current lap of producers or consumers.
type ring struct {
	mask  uint64
	cells []cell
	_     [64]byte // keep hot indices on separate cache lines
	enq   atomic.Uint64
	_     [64]byte
	deq   atomic.Uint64
}

type cell struct {
	seq atomic.Uint64
	req *request
}

func newRing(capacity int) *ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("rpc: ring capacity must be a positive power of two")
	}
	r := &ring{mask: uint64(capacity - 1), cells: make([]cell, capacity)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue publishes req, spinning if the ring is momentarily full.
//
//eleos:hotpath budget=0
func (r *ring) enqueue(req *request) {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.req = req
				c.seq.Store(pos + 1)
				return
			}
			pos = r.enq.Load()
		case seq < pos:
			// Full: wait for a consumer to free the cell.
			runtime.Gosched()
			pos = r.enq.Load()
		default:
			pos = r.enq.Load()
		}
	}
}

// dequeue removes one request, returning nil immediately when the ring
// is empty (workers interleave polling with backoff).
//
//eleos:hotpath budget=0
func (r *ring) dequeue() *request {
	pos := r.deq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				req := c.req
				c.req = nil
				c.seq.Store(pos + r.mask + 1)
				return req
			}
			pos = r.deq.Load()
		case seq <= pos:
			return nil
		default:
			pos = r.deq.Load()
		}
	}
}

//go:build tools

package tools

// staticcheck complements the custom eleoslint analyzers in `make
// lint`. The import is behind the tools tag so an offline build of the
// module never needs the dependency: the Makefile runs staticcheck only
// when the binary is installed, and CI installs exactly this pinned
// path (see .github/workflows/ci.yml and staticcheck.conf).
import (
	_ "honnef.co/go/tools/cmd/staticcheck"
)

// Package fsim simulates the file-I/O system-call surface (open, pread,
// pwrite, fsync, close) of the host OS, with the same cost structure as
// netsim's sockets: each call is a syscall plus kernel page-cache
// traffic in untrusted memory. It exists because Eleos's exit-less RPC
// targets OS services generally — memcached under Graphene issues many
// file and event syscalls, not just recv/send — and because it enables
// storage-backed enclave applications (see examples/seclog).
//
// File contents are real bytes in the simulated untrusted memory: what
// an enclave writes through fsim it can read back, and the host can
// inspect (which is why enclaves encrypt before writing — the seclog
// example shows the pattern).
//
// Trust domain: untrusted. fsim is the host side of the file service —
// the code an RPC worker runs on behalf of the enclave. It operates on
// host memory via *sgx.HostCtx and must never touch EPC contents or
// call enclave code (enforced by eleoslint's trustboundary analyzer).
//
//eleos:untrusted
package fsim

import (
	"errors"
	"fmt"
	"sync"

	"eleos/internal/sgx"
)

// I/O errors.
var (
	ErrNotExist = errors.New("fsim: file does not exist")
	ErrBadFD    = errors.New("fsim: bad file descriptor")
	ErrTooLarge = errors.New("fsim: file size limit exceeded")
)

// MaxFileBytes bounds a single file (1 GiB).
const MaxFileBytes = 1 << 30

// pageCacheBytes is the kernel page-cache footprint a file operation
// touches per call, beyond the payload itself.
const pageCacheBytes = 2048

// FS is the simulated filesystem: a name space of files whose bytes
// live in untrusted host memory, fronted by a syscall layer. Safe for
// concurrent use.
type FS struct {
	plat *sgx.Platform
	// mu guards the namespace and descriptor tables. The grow path in
	// PWrite allocates from the host arena while holding it, so it ranks
	// below hostmem.Arena.mu (140).
	//eleos:lockorder 100
	mu     sync.Mutex
	byName map[string]*file
	fds    map[int]*fd
	nextFD int
	// kernBuf models the kernel page cache's rotating footprint.
	kernBuf uint64
	rot     uint64

	syscalls uint64
}

type file struct {
	name string
	base uint64 // host address of the data region
	cap  uint64
	size uint64
}

type fd struct {
	f *file
}

// NewFS creates a filesystem on the platform.
func NewFS(plat *sgx.Platform) *FS {
	return &FS{
		plat:    plat,
		byName:  make(map[string]*file),
		fds:     make(map[int]*fd),
		nextFD:  3,
		kernBuf: plat.AllocHost(4 << 20),
	}
}

// Syscalls returns the number of system calls served.
func (s *FS) Syscalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syscalls
}

// touchKernel charges the rotating kernel page-cache traffic of one
// call moving n payload bytes.
func (s *FS) touchKernel(h *sgx.HostCtx, n int, write bool) {
	span := n + pageCacheBytes
	if span > 4<<20 {
		span = 4 << 20
	}
	if s.rot+uint64(span) > 4<<20 {
		s.rot = 0
	}
	h.Touch(s.kernBuf+s.rot, span, write)
	s.rot += uint64((span + 511) &^ 511)
}

// Open opens (creating if needed) a file and returns a descriptor.
// Must be called from an untrusted context (native, OCALL target, or
// RPC worker) — exactly like a real syscall.
func (s *FS) Open(h *sgx.HostCtx, name string) (int, error) {
	var fdnum int
	h.Syscall(func(c *sgx.HostCtx) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.syscalls++
		f := s.byName[name]
		if f == nil {
			f = &file{name: name, base: s.plat.AllocHost(1 << 20), cap: 1 << 20}
			s.byName[name] = f
		}
		fdnum = s.nextFD
		s.nextFD++
		s.fds[fdnum] = &fd{f: f}
	})
	return fdnum, nil
}

// Close releases a descriptor.
func (s *FS) Close(h *sgx.HostCtx, fdnum int) error {
	var err error
	h.Syscall(func(c *sgx.HostCtx) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.syscalls++
		if _, ok := s.fds[fdnum]; !ok {
			err = ErrBadFD
			return
		}
		delete(s.fds, fdnum)
	})
	return err
}

// PWrite writes data at the given offset, growing the file as needed.
func (s *FS) PWrite(h *sgx.HostCtx, fdnum int, off uint64, data []byte) (int, error) {
	var err error
	h.Syscall(func(c *sgx.HostCtx) {
		s.mu.Lock()
		d, ok := s.fds[fdnum]
		s.syscalls++
		if !ok {
			s.mu.Unlock()
			err = ErrBadFD
			return
		}
		f := d.f
		end := off + uint64(len(data))
		if end > MaxFileBytes {
			s.mu.Unlock()
			err = ErrTooLarge
			return
		}
		for end > f.cap {
			// Grow by reallocating double (the data region is host
			// memory; a real FS would chain extents).
			newBase := s.plat.AllocHost(f.cap * 2)
			tmp := make([]byte, f.size)
			s.plat.Host.ReadAt(f.base, tmp)
			s.plat.Host.WriteAt(newBase, tmp)
			s.plat.FreeHost(f.base)
			f.base, f.cap = newBase, f.cap*2
		}
		if end > f.size {
			f.size = end
		}
		base := f.base
		s.mu.Unlock()

		s.touchKernel(c, len(data), true)
		c.Write(base+off, data)
	})
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// PRead reads up to len(buf) bytes at the given offset. Returns the
// byte count (0 at or beyond EOF).
func (s *FS) PRead(h *sgx.HostCtx, fdnum int, off uint64, buf []byte) (int, error) {
	var err error
	n := 0
	h.Syscall(func(c *sgx.HostCtx) {
		s.mu.Lock()
		d, ok := s.fds[fdnum]
		s.syscalls++
		if !ok {
			s.mu.Unlock()
			err = ErrBadFD
			return
		}
		f := d.f
		if off >= f.size {
			s.mu.Unlock()
			return
		}
		n = len(buf)
		if uint64(n) > f.size-off {
			n = int(f.size - off)
		}
		base := f.base
		s.mu.Unlock()

		s.touchKernel(c, n, false)
		c.Read(base+off, buf[:n])
	})
	return n, err
}

// Fsync models the flush syscall: the kernel walks the file's dirty
// pages (charged as a sweep proportional to file size, capped).
func (s *FS) Fsync(h *sgx.HostCtx, fdnum int) error {
	var err error
	h.Syscall(func(c *sgx.HostCtx) {
		s.mu.Lock()
		d, ok := s.fds[fdnum]
		s.syscalls++
		if !ok {
			s.mu.Unlock()
			err = ErrBadFD
			return
		}
		size, base := d.f.size, d.f.base
		s.mu.Unlock()
		if size > 256<<10 {
			size = 256 << 10
		}
		c.Touch(base, int(size), false)
	})
	return err
}

// Size returns a file's current length.
func (s *FS) Size(name string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.byName[name]
	if f == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f.size, nil
}

// RawRead lets tests (and adversaries) inspect file bytes directly from
// host memory, without any syscall accounting.
func (s *FS) RawRead(name string, off uint64, buf []byte) error {
	s.mu.Lock()
	f := s.byName[name]
	s.mu.Unlock()
	if f == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	s.plat.Host.ReadAt(f.base+off, buf)
	return nil
}

// Package servicedomain enforces intra-enclave service isolation
// statically — the lint half of the multi-service enclave design
// (DESIGN.md "Service domains").
//
// When several services consolidate into one enclave, the runtime
// isolates their memory at the heap-domain layer (a service's faults
// and frees stay inside its own EPC++ carve), but Go code in one
// service could still simply call into another service's package: same
// process, same address space. This analyzer closes that hole at review
// time. Packages (or individual functions) declare their tenancy with
// an //eleos:service NAME doc-comment directive, and the analyzer flags
// any function of service A that
//
//   - calls a function belonging to service B, or
//   - reads or writes a package-level variable belonging to service B,
//
// unless the offending code sits inside a function-literal argument of
// a CrossCall invocation — the runtime's sanctioned intra-enclave fast
// path, which binds the callee to the target service's heap domain and
// charges the crossing. Code without a service annotation (shared
// libraries, the runtime itself) is reachable from every service and
// never flagged.
//
// The check is static and syntactic where it must be: calls through
// interface methods and function values are not resolved (the same
// documented limit as the trust-boundary pass), and CrossCall is
// recognized by callee name so the analyzer works on testdata stand-ins
// as well as the real eleos.Ctx method. Suppress deliberate exceptions
// with "//eleos:allow crossservice -- reason".
package servicedomain

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/directive"
	"eleos/internal/lint/load"
)

// Analyzer is the servicedomain analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "servicedomain",
	Doc:  "enforce //eleos:service isolation: cross-service reach only via CrossCall",
	Run:  run,
}

// facts is the program-wide service assignment shared by every
// per-package pass.
type facts struct {
	// fnService maps each declared function to its service ("" when
	// unannotated): the package directive, overridable per function.
	fnService map[*types.Func]string
	// pkgService maps each type-checked package to its package-level
	// service directive.
	pkgService map[*types.Package]string
}

var (
	factsMu    sync.Mutex
	factsCache = map[*load.Program]*facts{}
)

func run(pass *analysis.Pass) error {
	f := factsFor(pass.Prog)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			svc := f.fnService[obj]
			if svc == "" {
				continue // unannotated code is shared; nothing to isolate
			}
			checkFunc(pass, f, svc, obj, fd.Body)
		}
	}
	return nil
}

// checkFunc flags cross-service reach out of one service-owned function
// body, skipping anything inside a CrossCall function-literal argument.
func checkFunc(pass *analysis.Pass, f *facts, svc string, fn *types.Func, body *ast.BlockStmt) {
	sanctioned := crossCallRanges(body)
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := analysis.StaticCallee(info, n)
			if callee == nil {
				return true
			}
			other := f.fnService[callee]
			if other == "" || other == svc || within(sanctioned, n.Lparen) {
				return true
			}
			pass.Report(n.Lparen, "crossservice",
				"service %q function %s calls service %q function %s; cross-service calls go through CrossCall",
				svc, shortName(fn), other, shortName(callee))
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Var)
			if !ok || obj.Pkg() == nil {
				return true
			}
			// Only package-level variables carry a service: locals,
			// params and struct fields belong to whoever holds them.
			if obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			other := f.pkgService[obj.Pkg()]
			if other == "" || other == svc || within(sanctioned, n.Pos()) {
				return true
			}
			pass.Report(n.Pos(), "crossservice",
				"service %q function %s touches service %q state %s.%s; cross-service access goes through CrossCall",
				svc, shortName(fn), other, obj.Pkg().Name(), obj.Name())
		}
		return true
	})
}

// posRange is one [Pos, End) source span.
type posRange struct{ lo, hi int }

// crossCallRanges collects the spans of function-literal arguments of
// CrossCall invocations inside body — the sanctioned crossing windows.
// CrossCall is matched by callee name (method or plain function).
func crossCallRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCrossCall(call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, posRange{int(lit.Pos()), int(lit.End())})
			}
		}
		return true
	})
	return out
}

func isCrossCall(fun ast.Expr) bool {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun.Name == "CrossCall"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "CrossCall"
	}
	return false
}

func within(ranges []posRange, pos token.Pos) bool {
	p := int(pos)
	for _, r := range ranges {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

func factsFor(prog *load.Program) *facts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := factsCache[prog]; ok {
		return f
	}
	f := build(prog)
	factsCache[prog] = f
	return f
}

// build assigns every declared function and every package its service
// for the whole program.
func build(prog *load.Program) *facts {
	f := &facts{
		fnService:  map[*types.Func]string{},
		pkgService: map[*types.Package]string{},
	}
	for _, pkg := range prog.Packages {
		pkgSet := directive.ForPackage(pkg.Files)
		if pkg.Types != nil {
			f.pkgService[pkg.Types] = pkgSet.Service
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				set := pkgSet
				set.Merge(directive.ForFunc(fd))
				f.fnService[obj] = set.Service
			}
		}
	}
	return f
}

// shortName renders pkg.Name or pkg.(*Recv).Name for messages.
func shortName(fn *types.Func) string {
	var b strings.Builder
	if fn.Pkg() != nil {
		b.WriteString(fn.Pkg().Name())
		b.WriteString(".")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := false
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), true
		}
		if named, ok := t.(*types.Named); ok {
			if ptr {
				b.WriteString("(*" + named.Obj().Name() + ").")
			} else {
				b.WriteString(named.Obj().Name() + ".")
			}
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

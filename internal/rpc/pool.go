package rpc

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"eleos/internal/cache"
	"eleos/internal/sgx"
)

// ErrStopped is returned by Call, CallAsync and CallBatch when the pool
// is not running: never started, mid-Stop, or already stopped. Callers
// racing Stop get a clean error instead of hanging on a request no
// worker will ever execute.
var ErrStopped = errors.New("rpc: pool is not running")

// request is one delegated untrusted call. The enclave-side caller spins
// on done; the worker publishes the virtual cycles the call consumed so
// the caller can account the synchronous latency it observed (or, for
// async submissions, only the part not hidden behind its own compute).
// Requests are recycled through a sync.Pool; ownership returns to the
// submitter once done is set.
type request struct {
	fn          func(*sgx.HostCtx)
	submitStamp uint64 // caller's cycle clock just after the enqueue charge
	workCycles  uint64
	done        atomic.Uint32
	// notify, when set, runs on the worker thread right after done is
	// published (CallAsyncNotify). The worker captures it before the
	// done store: once done is visible the submitter may Wait and
	// recycle the request under the callback's feet.
	notify func()
}

// Stats counts pool activity.
type Stats struct {
	// Calls is the total number of requests executed through the pool,
	// whatever the submission path (sync, async or batched).
	Calls      uint64
	SyncCalls  uint64
	AsyncCalls uint64
	// Batches counts CallBatch invocations; BatchedCalls counts the
	// requests those batches carried.
	Batches      uint64
	BatchedCalls uint64
	WorkerOps    uint64
	// Steals counts requests a worker took from a sibling's ring.
	Steals uint64
	// Sleeps and Wakes trace the backoff ladder: how often a worker
	// reached the sleep rung, and how often an enqueue had to wake one.
	Sleeps uint64
	Wakes  uint64
	// QueueDepth is the instantaneous number of published-but-undequeued
	// requests; PeakQueueDepth is its high-water mark.
	QueueDepth     int64
	PeakQueueDepth int64
	// WaitCycles accumulates the residual synchronous latency charged at
	// Future.Wait / CallBatch collection — the part of the workers' time
	// the callers could not hide behind their own compute.
	WaitCycles uint64
	// SettledWorkCycles accumulates the worker execution cycles of every
	// request whose completion the submitter has observed (Call return,
	// Future.Wait, CallBatch collection). Unlike WorkerOps or Steals it
	// advances only on the submitting threads, so in a single-driver run
	// it is a deterministic measure of offered service demand — the
	// signal the self-tuning controller divides by elapsed virtual time
	// to estimate required parallelism.
	SettledWorkCycles uint64
	// Workers is the live worker count at snapshot time; Grows and
	// Shrinks count Resize operations in each direction.
	Workers int
	Grows   uint64
	Shrinks uint64
}

// Pool lifecycle states.
const (
	poolIdle int32 = iota
	poolRunning
	poolStopping
)

// Backoff ladder rungs, in consecutive empty polls: pure busy spinning,
// then yielding the host CPU between polls, then sleeping until an
// enqueue wakes the worker.
const (
	spinPolls  = 64
	yieldPolls = 256
)

// worker is one untrusted poller: its thread, its own ring shard, the
// wake channel the sleep rung of the backoff ladder blocks on, and the
// retire channel a live shrink closes to ask the worker to drain its
// own ring and exit.
type worker struct {
	th       *sgx.Thread
	ring     *ring
	wake     chan struct{}
	retire   chan struct{}
	retired  chan struct{} // closed by the worker after its drain
	sleeping atomic.Bool
}

// Pool is the untrusted RPC runtime: worker threads polling per-worker
// job rings, with idle workers stealing from their siblings. Workers run
// with the CoSRPC cache class of service, so enabling LLC partitioning
// confines their pollution (§3.1, Fig 6b).
//
// The worker set is dynamic: Resize grows and shrinks it while the pool
// is running, without a Stop/Start cycle. Submitters read the published
// set through an atomic pointer; the inflight counter fences a shrink
// against submissions that hold the previous snapshot, so an accepted
// request always lands on a ring some worker will drain.
type Pool struct {
	plat     *sgx.Platform
	ws       atomic.Pointer[[]*worker] // published worker set
	perShard int
	wg       sync.WaitGroup

	// resizeMu serializes Start, Stop and Resize against each other.
	//
	//eleos:lockorder 90
	resizeMu sync.Mutex

	state    atomic.Int32
	inflight atomic.Int64 // submitters between their state check and enqueue
	draining atomic.Bool
	stopC    chan struct{}

	reqPool sync.Pool

	calls        atomic.Uint64
	syncCalls    atomic.Uint64
	asyncCalls   atomic.Uint64
	batches      atomic.Uint64
	batchedCalls atomic.Uint64
	workerOps    atomic.Uint64
	steals       atomic.Uint64
	sleeps       atomic.Uint64
	wakes        atomic.Uint64
	waitCycles   atomic.Uint64
	settledWork  atomic.Uint64
	grows        atomic.Uint64
	shrinks      atomic.Uint64
	depth        atomic.Int64
	peakDepth    atomic.Int64
}

// NewPool creates a pool with the given number of worker threads, each
// owning a ring shard. ringCapacity is the total queue capacity; it is
// split across the shards (each rounded up to a power of two, minimum
// 16 slots).
func NewPool(p *sgx.Platform, workers, ringCapacity int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	perShard := 16
	for perShard < ringCapacity/workers {
		perShard *= 2
	}
	pool := &Pool{plat: p, perShard: perShard}
	set := make([]*worker, 0, workers)
	for i := 0; i < workers; i++ {
		set = append(set, pool.newWorker())
	}
	pool.ws.Store(&set)
	return pool
}

func (p *Pool) newWorker() *worker {
	return &worker{
		th:      p.plat.NewHostThread(cache.CoSRPC),
		ring:    newRing(p.perShard),
		wake:    make(chan struct{}, 1),
		retire:  make(chan struct{}),
		retired: make(chan struct{}),
	}
}

// workers returns the published worker set.
func (p *Pool) workers() []*worker { return *p.ws.Load() }

// Start launches the worker goroutines. Idempotent while running; a
// stopped pool can be started again.
func (p *Pool) Start() {
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	if !p.state.CompareAndSwap(poolIdle, poolRunning) {
		return
	}
	p.draining.Store(false)
	p.stopC = make(chan struct{})
	for _, w := range p.workers() {
		p.wg.Add(1)
		go p.workerLoop(w, p.stopC)
	}
}

// Stop shuts the workers down deterministically: new submissions are
// refused with ErrStopped, in-flight publishes are allowed to land, and
// the workers drain every ring before exiting — so a request that was
// accepted is always executed and its waiter always completes.
func (p *Pool) Stop() {
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	if !p.state.CompareAndSwap(poolRunning, poolStopping) {
		return
	}
	for p.inflight.Load() != 0 {
		runtime.Gosched()
	}
	p.draining.Store(true)
	close(p.stopC)
	p.wg.Wait()
	p.state.Store(poolIdle)
}

// Resize grows or shrinks the live worker set to n without stopping the
// pool. Growth publishes fresh workers (new host threads, new ring
// shards) and starts their goroutines. Shrink unpublishes the trailing
// workers so no new submission can route to them, waits out submitters
// still holding the previous snapshot (the inflight fence), then asks
// each victim to drain its own ring and exit — an accepted request is
// always executed, exactly as under Stop. Returns ErrStopped if the
// pool is not running.
func (p *Pool) Resize(n int) error {
	if n < 1 {
		n = 1
	}
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	cur := p.workers()
	switch {
	case n > len(cur):
		next := make([]*worker, len(cur), n)
		copy(next, cur)
		for i := len(cur); i < n; i++ {
			w := p.newWorker()
			next = append(next, w)
			p.wg.Add(1)
			go p.workerLoop(w, p.stopC)
		}
		p.ws.Store(&next)
		p.grows.Add(1)
	case n < len(cur):
		next := make([]*worker, n)
		copy(next, cur[:n])
		victims := cur[n:]
		p.ws.Store(&next)
		// Fence: any submitter that raised inflight before the store
		// may still hold the old snapshot and enqueue onto a victim's
		// ring; once inflight quiesces, every future submission routes
		// through the shrunk set.
		for p.inflight.Load() != 0 {
			runtime.Gosched()
		}
		for _, v := range victims {
			close(v.retire)
		}
		for _, v := range victims {
			<-v.retired
		}
		p.shrinks.Add(1)
	}
	return nil
}

// WorkerCount returns the number of live workers.
func (p *Pool) WorkerCount() int { return len(p.workers()) }

// Workers returns the live untrusted worker threads (the harness
// aggregates their cycle counters into end-to-end numbers). Workers
// retired by Resize are not included.
func (p *Pool) Workers() []*sgx.Thread {
	ws := p.workers()
	ths := make([]*sgx.Thread, len(ws))
	for i, w := range ws {
		ths[i] = w.th
	}
	return ths
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Calls:             p.calls.Load(),
		SyncCalls:         p.syncCalls.Load(),
		AsyncCalls:        p.asyncCalls.Load(),
		Batches:           p.batches.Load(),
		BatchedCalls:      p.batchedCalls.Load(),
		WorkerOps:         p.workerOps.Load(),
		Steals:            p.steals.Load(),
		Sleeps:            p.sleeps.Load(),
		Wakes:             p.wakes.Load(),
		QueueDepth:        p.depth.Load(),
		PeakQueueDepth:    p.peakDepth.Load(),
		WaitCycles:        p.waitCycles.Load(),
		SettledWorkCycles: p.settledWork.Load(),
		Workers:           p.WorkerCount(),
		Grows:             p.grows.Load(),
		Shrinks:           p.shrinks.Load(),
	}
}

//eleos:hotpath budget=0
func (p *Pool) getReq(fn func(*sgx.HostCtx), stamp uint64) *request {
	req, _ := p.reqPool.Get().(*request)
	if req == nil {
		//eleos:allow hotpath -- pool miss: one-time warm-up, amortized to zero in steady state
		req = new(request)
	}
	req.fn = fn
	req.submitStamp = stamp
	req.workCycles = 0
	req.done.Store(0)
	return req
}

//eleos:hotpath budget=0
func (p *Pool) putReq(req *request) {
	req.fn = nil
	req.notify = nil
	p.reqPool.Put(req)
}

// submit publishes req on the caller's affinity shard. The depth counter
// is raised before the descriptor lands in the ring, so no worker can
// pass its sleep re-check while a publish is in flight — including while
// the ring is momentarily full — which makes wake-on-enqueue lost-wakeup
// free. The worker-set snapshot is taken inside the inflight window, so
// a concurrent shrink waits for this publish before draining the rings
// it unpublished.
//
//eleos:hotpath budget=0
func (p *Pool) submit(req *request, caller *sgx.Thread) error {
	p.inflight.Add(1)
	if p.state.Load() != poolRunning {
		p.inflight.Add(-1)
		return ErrStopped
	}
	ws := p.workers()
	s := shardOf(caller, len(ws))
	p.bumpPeak(p.depth.Add(1))
	ws[s].ring.enqueue(req)
	p.inflight.Add(-1)
	p.notify(ws, s)
	return nil
}

// shardOf picks the submission shard for a caller: affinity by thread
// ID, so a caller's requests stay on one ring and its cache lines, with
// work stealing rebalancing any skew.
//
//eleos:hotpath budget=0
func shardOf(caller *sgx.Thread, n int) int {
	return int(uint64(caller.T.ID()) % uint64(n))
}

//eleos:hotpath budget=0
func (p *Pool) bumpPeak(d int64) {
	for {
		cur := p.peakDepth.Load()
		if d <= cur || p.peakDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// notify wakes sleeping workers after a publish: the target shard's
// owner first, then — if the backlog justifies it — sleeping siblings,
// which will find the work by stealing.
//
//eleos:hotpath budget=0
func (p *Pool) notify(ws []*worker, s int) {
	need := p.depth.Load()
	if need <= 0 {
		return
	}
	if int64(len(ws)) < need {
		need = int64(len(ws))
	}
	if wakeOne(ws[s]) {
		need--
	}
	for i := 0; need > 0 && i < len(ws); i++ {
		if i != s && wakeOne(ws[i]) {
			need--
		}
	}
}

//eleos:hotpath budget=0
func wakeOne(w *worker) bool {
	if !w.sleeping.Load() {
		return false
	}
	select {
	case w.wake <- struct{}{}:
		return true
	default:
		return false
	}
}

// dequeueFor pops work for worker w: its own ring first, then a steal
// sweep over the published siblings.
//
//eleos:hotpath budget=0
func (p *Pool) dequeueFor(w *worker) (req *request, stolen bool) {
	if req := w.ring.dequeue(); req != nil {
		p.depth.Add(-1)
		return req, false
	}
	for _, o := range p.workers() {
		if o == w {
			continue
		}
		if req := o.ring.dequeue(); req != nil {
			p.depth.Add(-1)
			return req, true
		}
	}
	return nil, false
}

// workerLoop is the untrusted worker body: it runs on a host thread,
// polls the rings, and executes requests in a host context. It must
// never touch EPC contents or call enclave code.
//
//eleos:untrusted
//eleos:hotpath budget=0
func (p *Pool) workerLoop(w *worker, stopC chan struct{}) {
	defer p.wg.Done()
	ctx := w.th.HostContext()
	idle := 0
	for {
		select {
		case <-w.retire:
			p.drainOwn(w, ctx)
			close(w.retired)
			return
		default:
		}
		req, stolen := p.dequeueFor(w)
		if req == nil {
			if p.draining.Load() {
				// Every ring was empty after the drain flag: done.
				return
			}
			idle++
			switch {
			case idle <= spinPolls:
				// Busy rung: immediate re-poll.
			case idle <= spinPolls+yieldPolls:
				runtime.Gosched()
			default:
				p.sleep(w, stopC)
				idle = spinPolls // resume on the yield rung after a wake
			}
			continue
		}
		idle = 0
		if stolen {
			p.steals.Add(1)
		}
		p.execute(w, ctx, req)
	}
}

// execute runs one request on the worker thread and publishes its
// completion.
//
//eleos:untrusted
//eleos:hotpath budget=0
func (p *Pool) execute(w *worker, ctx *sgx.HostCtx, req *request) {
	start := w.th.T.Cycles()
	req.fn(ctx)
	req.workCycles = w.th.T.Cycles() - start
	p.workerOps.Add(1)
	notify := req.notify
	req.done.Store(1)
	if notify != nil {
		notify()
	}
}

// drainOwn empties a retiring worker's own ring. After the shrink's
// inflight fence no new submission can route here, so draining to empty
// leaves no accepted request behind. Steal traffic is skipped: the
// survivors no longer see this ring, and the retiree has no business
// touching theirs.
//
//eleos:untrusted
//eleos:hotpath budget=0
func (p *Pool) drainOwn(w *worker, ctx *sgx.HostCtx) {
	for {
		req := w.ring.dequeue()
		if req == nil {
			return
		}
		p.depth.Add(-1)
		p.execute(w, ctx, req)
	}
}

// sleep is the bottom rung of the backoff ladder. The worker registers
// as sleeping, re-checks the published depth (a submitter raises depth
// before it could ever need a wake, so this re-check closes the race),
// and only then blocks until an enqueue, Stop or a retiring Resize wakes
// it. Runs on the untrusted worker thread (a host thread may
// futex-sleep; an enclave thread may not).
//
//eleos:untrusted
//eleos:hotpath budget=0
func (p *Pool) sleep(w *worker, stopC chan struct{}) {
	w.sleeping.Store(true)
	p.sleeps.Add(1)
	if p.depth.Load() > 0 || p.draining.Load() {
		w.sleeping.Store(false)
		return
	}
	select {
	case <-w.wake:
		p.wakes.Add(1)
		w.th.T.Charge(p.plat.Model.RPCWake)
	case <-stopC:
	case <-w.retire:
	}
	w.sleeping.Store(false)
}

// Call delegates fn to a worker without exiting the enclave. The caller
// is charged the descriptor enqueue, the synchronous latency of the
// worker's execution (the virtual cycles the work consumed), and the
// completion-polling overhead — but no EEXIT/EENTER, no TLB flush and no
// enclave state disturbance. Safe for concurrent use by many enclave
// threads. Returns ErrStopped if the pool is not running.
//
//eleos:hotpath budget=0
func (p *Pool) Call(caller *sgx.Thread, fn func(*sgx.HostCtx)) error {
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue)
	req := p.getReq(fn, caller.T.Cycles())
	if err := p.submit(req, caller); err != nil {
		p.putReq(req)
		return err
	}
	for req.done.Load() == 0 {
		spinWait()
	}
	// The worker's processing time is observed as synchronous latency,
	// but it is not enclave execution — the caller merely polls.
	caller.ChargeOutside(req.workCycles + m.RPCPoll)
	p.settledWork.Add(req.workCycles)
	p.calls.Add(1)
	p.syncCalls.Add(1)
	p.putReq(req)
	return nil
}

// CallAsync posts fn and returns immediately with a Future. Only the
// descriptor enqueue is charged here; the caller keeps computing, and
// Future.Wait later charges just the residual part of the worker's
// latency that the caller's own compute did not hide (§3.1's
// asynchronous variant of the exit-less service).
//
//eleos:hotpath budget=1
func (p *Pool) CallAsync(caller *sgx.Thread, fn func(*sgx.HostCtx)) (*Future, error) {
	return p.CallAsyncNotify(caller, fn, nil)
}

// CallAsyncNotify is CallAsync with a completion hook: notify (if
// non-nil) runs on the worker thread immediately after the request's
// completion flag is published, so a reaper can block on a channel
// instead of spinning per future. notify executes on the untrusted
// worker — it must be cheap, non-blocking (a counter bump, a
// non-blocking channel send) and must not touch enclave state. It is a
// host-side signal only: accounting still settles at Future.Wait.
//
//eleos:hotpath budget=1
func (p *Pool) CallAsyncNotify(caller *sgx.Thread, fn func(*sgx.HostCtx), notify func()) (*Future, error) {
	fut := &Future{}
	if err := p.CallAsyncNotifyInto(fut, caller, fn, notify); err != nil {
		return nil, err
	}
	return fut, nil
}

// CallAsyncNotifyInto is CallAsyncNotify publishing into a
// caller-provided Future instead of allocating one, so completion
// handles can live inside pooled or recycled structures (exitio embeds
// one per pooled chain). *fut is overwritten unconditionally; it must
// not be an un-waited live future. The usual Future contract applies:
// it belongs to caller, and Wait must come from that same thread.
//
//eleos:hotpath budget=0
func (p *Pool) CallAsyncNotifyInto(fut *Future, caller *sgx.Thread, fn func(*sgx.HostCtx), notify func()) error {
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue)
	req := p.getReq(fn, caller.T.Cycles())
	req.notify = notify
	if err := p.submit(req, caller); err != nil {
		p.putReq(req)
		return err
	}
	p.calls.Add(1)
	p.asyncCalls.Add(1)
	*fut = Future{pool: p, req: req}
	return nil
}

// CallBatch delegates all fns with a single charge-and-publish: the
// caller pays one full enqueue plus the cheap marginal batch cost per
// additional descriptor, publishes the whole batch onto its affinity
// shard (idle siblings steal the overflow), and then waits for all of
// them. The synchronous latency charged is the batch's parallel
// makespan across the pool, not the serial sum of the calls. Returns
// ErrStopped if the pool is not running.
//
//eleos:hotpath budget=2
func (p *Pool) CallBatch(caller *sgx.Thread, fns []func(*sgx.HostCtx)) error {
	n := len(fns)
	if n == 0 {
		return nil
	}
	if p.state.Load() != poolRunning {
		return ErrStopped
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue + uint64(n-1)*m.RPCBatchEnqueue)
	stamp := caller.T.Cycles()
	reqs := make([]*request, n)

	p.inflight.Add(1)
	if p.state.Load() != poolRunning {
		p.inflight.Add(-1)
		return ErrStopped
	}
	ws := p.workers()
	s := shardOf(caller, len(ws))
	for i, fn := range fns {
		req := p.getReq(fn, stamp)
		reqs[i] = req
		p.bumpPeak(p.depth.Add(1))
		ws[s].ring.enqueue(req)
		if i == 0 {
			p.notify(ws, s) // recruit workers while the rest publishes
		}
	}
	p.inflight.Add(-1)
	p.notify(ws, s)

	var total, maxWork uint64
	for _, req := range reqs {
		for req.done.Load() == 0 {
			spinWait()
		}
		total += req.workCycles
		if req.workCycles > maxWork {
			maxWork = req.workCycles
		}
	}
	span := (total + uint64(len(ws)) - 1) / uint64(len(ws))
	if span < maxWork {
		span = maxWork
	}
	residual := caller.ChargeResidual(stamp, span)
	caller.ChargeOutside(m.RPCPoll)
	p.waitCycles.Add(residual)
	p.settledWork.Add(total)
	p.calls.Add(uint64(n))
	p.batches.Add(1)
	p.batchedCalls.Add(uint64(n))
	for _, req := range reqs {
		p.putReq(req)
	}
	return nil
}

// spinWait yields the host CPU between polls. Virtual time is charged
// explicitly by the cost model, so the only job here is to keep the
// polling loops from starving other goroutines on the real machine.
func spinWait() {
	runtime.Gosched()
}

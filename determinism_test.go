package eleos

import (
	"testing"

	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/pserver"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// The simulator's core promise: virtual time is deterministic. Two
// fresh platforms running the same seeded workload must report
// identical cycle counts, fault counts and in-enclave time — this is
// what makes the benchmark outputs comparable across machines and runs.

// runDeterministicWorkload builds a platform, serves seeded requests
// against a SUVM-backed parameter server, and returns the fingerprint
// of every counter the harness reports.
func runDeterministicWorkload(t *testing.T) [6]uint64 {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 4 << 20, BackingBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := pserver.New(plat, th, pserver.Config{
		DataBytes: 16 << 20,
		Layout:    kv.Chaining,
		Placement: pserver.PlaceSUVM,
		Syscall:   pserver.SysOCall,
		Heap:      heap,
		Encrypted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gen := loadgen.NewKeyGen(12345, srv.Entries())
	keys := make([]uint64, 4)
	for i := 0; i < 2000; i++ {
		if err := srv.ServeRequest(th, gen.Batch(keys)); err != nil {
			t.Fatal(err)
		}
	}
	hs := heap.Stats()
	ds := plat.Driver.Stats()
	return [6]uint64{
		th.T.Cycles(),
		th.SyncEnclaveCycles(),
		hs.MajorFaults,
		hs.FaultCycles,
		ds.Faults,
		plat.LLC.Stats().Misses,
	}
}

func TestVirtualTimeIsDeterministic(t *testing.T) {
	a := runDeterministicWorkload(t)
	b := runDeterministicWorkload(t)
	if a != b {
		t.Fatalf("identical seeded runs diverged:\n run1=%v\n run2=%v", a, b)
	}
	if a[0] == 0 || a[2] == 0 {
		t.Fatalf("degenerate run: %v", a)
	}
}

func TestVirtualTimeIndependentOfHostTiming(t *testing.T) {
	// Loading the host machine between operations must not change any
	// virtual counter: two fresh environments run the same seeded
	// workload, one with garbage host work interleaved.
	run := func(burnHost bool) uint64 {
		plat, _ := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
		encl, _ := plat.NewEnclave()
		th := encl.NewThread()
		th.Enter()
		heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 1 << 20, BackingBytes: 32 << 20})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := heap.Malloc(8 << 20)
		buf := make([]byte, 4096)
		th.T.Reset()
		sink := 0
		for i := 0; i < 500; i++ {
			off := uint64((i * 2654435761) % (8 << 20 / 4096))
			_ = p.WriteAt(th, off*4096, buf)
			if burnHost {
				for j := 0; j < 10000; j++ {
					sink += j
				}
			}
		}
		_ = sink
		return th.T.Cycles()
	}
	fast := run(false)
	slow := run(true)
	if fast != slow {
		t.Fatalf("host CPU load leaked into virtual time: %d vs %d", fast, slow)
	}
}

package suvm

import (
	"testing"
	"time"
)

func TestBackgroundSwapperDeflatesUnderPressure(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 16 << 20, BackingBytes: 64 << 20})
	sw := e.h.StartSwapper(5 * time.Millisecond)
	defer sw.Stop()

	// Initially the single enclave keeps its full configuration.
	deadline := time.Now().Add(2 * time.Second)
	waitFor := func(cond func() bool, what string) {
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s (frames=%d)", what, e.h.ActiveFrames())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	full := int((16 << 20) / 4096)
	waitFor(func() bool { return e.h.ActiveFrames() == full }, "full size")

	// A second enclave halves the PRM share; the swapper must deflate.
	e2, err := e.plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(func() bool { return e.h.ActiveFrames() < full }, "deflation")

	// And re-inflate after the pressure goes away.
	e2.Destroy()
	waitFor(func() bool { return e.h.ActiveFrames() == full }, "re-inflation")
}

func TestReclaimFreePoolMovesEvictionOffFaultPath(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20}) // 256 frames
	p, _ := e.h.Malloc(4 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off+4096 <= p.Size(); off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	// Pool is empty after the fill; a swapper thread reclaims 32 frames.
	swapTh := e.encl.NewThread()
	swapTh.Enter()
	if got := e.h.ReclaimFreePool(swapTh, 32); got != 32 {
		t.Fatalf("reclaimed %d frames, want 32", got)
	}
	if swapTh.T.Cycles() == 0 {
		t.Fatal("reclaim charged no work to the swapper thread")
	}
	// The next 32 faults must not evict anything further: write-backs
	// were prepaid by the swapper.
	e.h.ResetStats()
	for i := 0; i < 32; i++ {
		_ = p.WriteAt(e.th, uint64(i)*4096, buf)
	}
	st := e.h.Stats()
	if st.MajorFaults != 32 {
		t.Fatalf("faults %d want 32", st.MajorFaults)
	}
	if st.Evictions != 0 {
		t.Fatalf("faults still evicted %d pages despite the reclaimed pool", st.Evictions)
	}
	// Target is clamped to half the cache.
	if got := e.h.ReclaimFreePool(swapTh, 10_000); got > 128 {
		t.Fatalf("reclaim overshot the clamp: %d", got)
	}
}

package fsim

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eleos/internal/cache"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

func newFS(t testing.TB) (*FS, *sgx.Platform, *sgx.Thread) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return NewFS(plat), plat, plat.NewHostThread(cache.CoSDefault)
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs, _, th := newFS(t)
	h := th.HostContext()
	fd, err := fs.Open(h, "/data/test")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 100<<10)
	rand.New(rand.NewSource(1)).Read(want)
	if n, err := fs.PWrite(h, fd, 500, want); err != nil || n != len(want) {
		t.Fatalf("pwrite: n=%d err=%v", n, err)
	}
	got := make([]byte, len(want))
	if n, err := fs.PRead(h, fd, 500, got); err != nil || n != len(want) {
		t.Fatalf("pread: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("file readback mismatch")
	}
	if sz, _ := fs.Size("/data/test"); sz != 500+uint64(len(want)) {
		t.Fatalf("size %d", sz)
	}
	if err := fs.Fsync(h, fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(h, fd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PRead(h, fd, 0, got); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestGrowthAcrossReallocation(t *testing.T) {
	fs, _, th := newFS(t)
	h := th.HostContext()
	fd, _ := fs.Open(h, "/grow")
	chunk := make([]byte, 512<<10)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	// 8 writes of 512KiB force multiple extent reallocations past the
	// initial 1MiB region.
	for i := uint64(0); i < 8; i++ {
		if _, err := fs.PWrite(h, fd, i*uint64(len(chunk)), chunk); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(chunk))
	for i := uint64(0); i < 8; i++ {
		fs.PRead(h, fd, i*uint64(len(chunk)), got)
		if !bytes.Equal(got, chunk) {
			t.Fatalf("chunk %d corrupted across growth", i)
		}
	}
}

func TestEOFSemantics(t *testing.T) {
	fs, _, th := newFS(t)
	h := th.HostContext()
	fd, _ := fs.Open(h, "/eof")
	fs.PWrite(h, fd, 0, []byte("hello"))
	buf := make([]byte, 10)
	if n, err := fs.PRead(h, fd, 3, buf); err != nil || n != 2 {
		t.Fatalf("short read n=%d err=%v", n, err)
	}
	if n, err := fs.PRead(h, fd, 5, buf); err != nil || n != 0 {
		t.Fatalf("read at EOF n=%d err=%v", n, err)
	}
	if n, err := fs.PRead(h, fd, 100, buf); err != nil || n != 0 {
		t.Fatalf("read past EOF n=%d err=%v", n, err)
	}
}

func TestSharedNamespace(t *testing.T) {
	fs, _, th := newFS(t)
	h := th.HostContext()
	fd1, _ := fs.Open(h, "/shared")
	fd2, _ := fs.Open(h, "/shared")
	fs.PWrite(h, fd1, 0, []byte("via fd1"))
	got := make([]byte, 7)
	fs.PRead(h, fd2, 0, got)
	if string(got) != "via fd1" {
		t.Fatalf("descriptors do not share the file: %q", got)
	}
}

func TestExitlessFileIO(t *testing.T) {
	// The point of fsim: file syscalls from an enclave via RPC cause no
	// exits; via OCALL they do.
	fs, plat, _ := newFS(t)
	encl, _ := plat.NewEnclave()
	th := encl.NewThread()
	th.Enter()
	pool := rpc.NewPool(plat, 1, 64)
	pool.Start()
	defer pool.Stop()

	var fd int
	exits0, _, _, _, _ := encl.Stats().Snapshot()
	pool.Call(th, func(h *sgx.HostCtx) { fd, _ = fs.Open(h, "/enclave-file") })
	data := []byte("written from inside, exitlessly")
	pool.Call(th, func(h *sgx.HostCtx) { fs.PWrite(h, fd, 0, data) })
	got := make([]byte, len(data))
	pool.Call(th, func(h *sgx.HostCtx) { fs.PRead(h, fd, 0, got) })
	exits1, _, _, _, _ := encl.Stats().Snapshot()
	if exits1 != exits0 {
		t.Fatalf("RPC file I/O exited %d times", exits1-exits0)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RPC file roundtrip mismatch")
	}
	th.OCall(func(h *sgx.HostCtx) { fs.Fsync(h, fd) })
	exits2, _, _, _, _ := encl.Stats().Snapshot()
	if exits2 != exits1+1 {
		t.Fatal("OCALL file I/O did not exit")
	}
	if fs.Syscalls() != 4 {
		t.Fatalf("syscall count %d, want 4", fs.Syscalls())
	}
}

func TestRawReadSeesHostBytes(t *testing.T) {
	// The filesystem is untrusted: the host sees exactly what was
	// written. (The seclog example shows why enclaves must seal first.)
	fs, _, th := newFS(t)
	h := th.HostContext()
	fd, _ := fs.Open(h, "/clear")
	fs.PWrite(h, fd, 0, []byte("visible to the host"))
	raw := make([]byte, 19)
	if err := fs.RawRead("/clear", 0, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) != "visible to the host" {
		t.Fatalf("raw read %q", raw)
	}
}

package mckv

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"eleos/internal/exitio"
	"eleos/internal/netsim"
	"eleos/internal/sgx"
)

// connBufBytes sizes the per-connection simulated socket buffer used by
// ServeConnIO's syscall accounting.
const connBufBytes = 64 << 10

// ServeConn speaks the memcached text protocol (the subset the paper's
// workloads use: get, set, delete, stats, version, quit) on conn,
// executing operations on store via the given simulated thread. It
// returns when the client quits or the connection drops. One goroutine
// with its own thread per connection, as memcached does.
func ServeConn(conn net.Conn, store *Store, th *sgx.Thread) error {
	return serveConn(conn, store, th, nil, nil)
}

// ServeConnIO is ServeConn with simulated syscall accounting: every
// real TCP read and write is mirrored as a netsim Recv/Send op
// submitted through a per-connection queue on eng, so a daemon's
// virtual cycle counters reflect the same exit-less (or OCALL/native)
// I/O costs the closed-loop benchmarks measure.
func ServeConnIO(conn net.Conn, store *Store, th *sgx.Thread, eng *exitio.Engine) error {
	sock := netsim.NewSocket(store.plat, connBufBytes)
	defer sock.Close()
	return serveConn(conn, store, th, eng.NewQueue(), sock)
}

func serveConn(conn net.Conn, store *Store, th *sgx.Thread, q *exitio.Queue, sock *netsim.Socket) error {
	defer conn.Close()
	// account mirrors one real transfer as a simulated syscall (no-op
	// without an accounting queue).
	account := func(op exitio.Op) error {
		if q == nil {
			return nil
		}
		q.Push(op)
		cqes, err := q.SubmitAndWait(th)
		if err != nil {
			return fmt.Errorf("mckv: syscall accounting: %w", err)
		}
		return exitio.FirstErr(cqes)
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	valBuf := make([]byte, maxItemSize)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("mckv: reading command: %w", err)
		}
		if err := account(exitio.Recv{Sock: sock, N: capTransfer(len(line))}); err != nil {
			return err
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit":
			return w.Flush()

		case "version":
			fmt.Fprintf(w, "VERSION eleos-mckv/1.0\r\n")

		case "get", "gets":
			if len(fields) < 2 {
				fmt.Fprintf(w, "ERROR\r\n")
				break
			}
			for _, k := range fields[1:] {
				n, err := store.Get(th, []byte(k), valBuf)
				if err == nil {
					fmt.Fprintf(w, "VALUE %s 0 %d\r\n", k, n)
					w.Write(valBuf[:n])
					fmt.Fprintf(w, "\r\n")
				}
			}
			fmt.Fprintf(w, "END\r\n")

		case "set":
			if len(fields) < 5 {
				fmt.Fprintf(w, "CLIENT_ERROR bad command line\r\n")
				break
			}
			n, err := strconv.Atoi(fields[4])
			if err != nil || n < 0 || n > maxItemSize {
				fmt.Fprintf(w, "CLIENT_ERROR bad data chunk size\r\n")
				break
			}
			data := make([]byte, n+2)
			if _, err := io.ReadFull(r, data); err != nil {
				return fmt.Errorf("mckv: reading data block: %w", err)
			}
			if err := account(exitio.Recv{Sock: sock, N: capTransfer(len(data))}); err != nil {
				return err
			}
			if err := store.Set(th, []byte(fields[1]), data[:n]); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				break
			}
			fmt.Fprintf(w, "STORED\r\n")

		case "delete":
			if len(fields) < 2 {
				fmt.Fprintf(w, "ERROR\r\n")
				break
			}
			if err := store.Delete(th, []byte(fields[1])); err != nil {
				fmt.Fprintf(w, "NOT_FOUND\r\n")
			} else {
				fmt.Fprintf(w, "DELETED\r\n")
			}

		case "stats":
			fmt.Fprintf(w, "STAT curr_items %d\r\n", store.ItemCount())
			fmt.Fprintf(w, "STAT bytes %d\r\n", store.BytesUsed())
			fmt.Fprintf(w, "STAT evictions %d\r\n", store.Evictions())
			fmt.Fprintf(w, "STAT virtual_cycles %d\r\n", th.T.Cycles())
			if q != nil {
				st := q.Engine().Stats()
				fmt.Fprintf(w, "STAT io_mode %s\r\n", q.Mode())
				fmt.Fprintf(w, "STAT io_doorbells %d\r\n", st.Doorbells)
				fmt.Fprintf(w, "STAT io_linked %d\r\n", st.Linked)
			}
			fmt.Fprintf(w, "END\r\n")

		default:
			fmt.Fprintf(w, "ERROR\r\n")
		}
		if n := w.Buffered(); n > 0 {
			if err := account(exitio.Send{Sock: sock, N: capTransfer(n)}); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("mckv: writing response: %w", err)
		}
	}
}

// capTransfer bounds an accounted transfer to the simulated socket
// buffer (a real server would loop; one capped charge is close enough
// for accounting).
func capTransfer(n int) int {
	if n > connBufBytes {
		return connBufBytes
	}
	return n
}

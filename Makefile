# Tier-1 gate and helpers for the Eleos simulation repo.
#
#   make check   — the full tier-1 gate: formatting, vet, build, tests
#                  (including the RPC stress tests under the race detector)
#   make bench   — regenerate the async-RPC microbenchmark artifacts
#                  (BENCH_rpc_async.json in the repo root)
#   make test    — plain test run, no race detector

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/eleos-bench -quick -run rpc-async -json .

// Package load builds a fully type-checked view of a Go module using
// only the standard library. It is the loader under the eleoslint
// analyzers: the container this repo builds in has no module cache and
// no network, so the x/tools loaders (go/packages, go/analysis's
// unitchecker) are unavailable; go/parser + go/types + the "source"
// importer are enough because the module has no dependencies beyond the
// standard library.
//
// Two layouts are supported: a module root containing go.mod (the real
// repository), and an analysistest-style GOPATH fragment where packages
// live under root/src/<importpath> (the analyzers' testdata trees).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the loaded program.
type Package struct {
	// PkgPath is the import path ("eleos/internal/suvm", or the
	// src-relative path in testdata mode).
	PkgPath string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded module: every buildable package, type-checked
// in dependency order against one shared FileSet.
type Program struct {
	Fset *token.FileSet
	// Module is the module path from go.mod, or "" in testdata mode.
	Module   string
	Packages []*Package // in topological (dependencies-first) order
	byPath   map[string]*Package
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Load parses and type-checks every package under root. If root
// contains go.mod, packages get import paths under the module path;
// otherwise root/src is treated as the import root (testdata mode).
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	scanRoot, module := root, ""
	if m, err := modulePath(filepath.Join(root, "go.mod")); err == nil {
		module = m
	} else {
		scanRoot = filepath.Join(root, "src")
		if _, err := os.Stat(scanRoot); err != nil {
			return nil, fmt.Errorf("lint/load: %s has neither go.mod nor src/", root)
		}
	}

	dirs, err := packageDirs(scanRoot)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	prog := &Program{Fset: fset, Module: module, byPath: map[string]*Package{}}
	raw := map[string]*rawPkg{}
	for _, dir := range dirs {
		rp, err := parseDir(fset, scanRoot, module, dir)
		if err != nil {
			return nil, err
		}
		if rp != nil {
			raw[rp.path] = rp
		}
	}

	order, err := toposort(raw)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		prog: prog,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		local: func(path string) bool {
			_, ok := raw[path]
			return ok
		},
	}
	var typeErrs []error
	for _, path := range order {
		rp := raw[path]
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, _ := conf.Check(path, fset, rp.files, info)
		pkg := &Package{PkgPath: path, Dir: rp.dir, Files: rp.files, Types: tpkg, Info: info}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[path] = pkg
	}
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 20 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint/load: type errors:\n\t%s", strings.Join(msgs, "\n\t"))
	}
	return prog, nil
}

type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
}

// packageDirs walks root collecting candidate package directories,
// skipping VCS metadata, testdata trees (they are separate programs
// loaded by the analyzers' own tests) and hidden/underscore dirs, same
// as the go tool.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir loads one directory's buildable, non-test files. go/build
// applies the usual build-tag and file-suffix rules; directories with
// no buildable Go files are skipped.
func parseDir(fset *token.FileSet, scanRoot, module, dir string) (*rawPkg, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint/load: %s: %v", dir, err)
	}
	if len(bp.CgoFiles) > 0 {
		return nil, fmt.Errorf("lint/load: %s uses cgo, which this loader does not support", dir)
	}
	rel, err := filepath.Rel(scanRoot, dir)
	if err != nil {
		return nil, err
	}
	path := filepath.ToSlash(rel)
	if module != "" {
		if path == "." {
			path = module
		} else {
			path = module + "/" + path
		}
	}
	rp := &rawPkg{path: path, dir: dir, imports: bp.Imports}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rp.files = append(rp.files, f)
	}
	return rp, nil
}

// toposort orders packages dependencies-first, considering only
// intra-program imports. Import cycles are an error (as they are for
// the compiler).
func toposort(raw map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch color[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint/load: import cycle through %s", p)
		}
		color[p] = grey
		deps := append([]string(nil), raw[p].imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := raw[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves intra-program imports from the packages loaded
// so far and everything else through the standard library's source
// importer (the toolchain's GOROOT sources are always present, so no
// network or module cache is needed).
type chainImporter struct {
	prog  *Program
	std   types.ImporterFrom
	local func(string) bool
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := c.prog.byPath[path]; p != nil {
		return p.Types, nil
	}
	if c.local(path) {
		return nil, fmt.Errorf("lint/load: %s imported before it was type-checked (load-order bug)", path)
	}
	return c.std.ImportFrom(path, dir, mode)
}

// modulePath reads the module path out of a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

package eleos

import (
	"fmt"
	"reflect"
	"testing"
)

// The configless runtime's compatibility contract: with autotuning
// disabled, nothing about the new surface — the resizable pool, the
// per-queue mode seam, the Pump hook, the Stats tree — may move a
// single virtual cycle. And with autotuning enabled, the decision
// sequence itself must be deterministic through the full public stack.

// goldenWorkload drives a fixed seeded mix over one context — SUVM
// writes (faults + evictions), synchronous and asynchronous exit-less
// calls, and linked pwrite+fsync I/O chains — and returns the caller's
// cycle fingerprint. pump adds a Ctx.Pump call per iteration; observe
// adds a Runtime.Stats read per iteration. Neither may change a counter
// on a fixed-pool runtime.
func goldenWorkload(t *testing.T, pump, observe bool) [5]uint64 {
	t.Helper()
	rt, err := NewRuntime(
		WithMachine(MachineConfig{UsablePRMBytes: 32 << 20}),
		WithRPCWorkers(1),
		WithCATWays(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 2 << 20, Heap: HeapConfig{BackingBytes: 64 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, err := ctx.Malloc(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	fs := rt.NewFS()
	q := ctx.IO()
	q.Push(IOOpen{FS: fs, Name: "wal"})
	cqes, err := q.SubmitAndWait()
	if err != nil || len(cqes) != 1 || cqes[0].Err != nil {
		t.Fatalf("open: %v %+v", err, cqes)
	}
	fd := cqes[0].N

	frame := make([]byte, 512)
	for i := 0; i < 300; i++ {
		off := uint64((i * 2654435761) % (8 << 20 / 4096))
		if err := p.WriteAt(off*4096, frame); err != nil {
			t.Fatal(err)
		}
		ctx.Exitless(func(h *HostCtx) { h.Syscall(nil) })
		fut := ctx.Go(func(h *HostCtx) { h.Syscall(nil) })
		ctx.Thread().T.Charge(2_000) // compute overlapping the async call
		fut.Wait()
		q.Push(IOPwrite{FS: fs, FD: fd, Off: uint64(i) * 512, Data: frame})
		q.PushLinked(IOFsync{FS: fs, FD: fd})
		if _, err := q.SubmitAndWait(); err != nil {
			t.Fatal(err)
		}
		if pump {
			if ctx.Pump() {
				t.Fatal("Pump fired an epoch on a fixed-pool runtime")
			}
		}
		if observe {
			if st := rt.Stats(); st.Tune.Enabled {
				t.Fatal("Tune.Enabled on a fixed-pool runtime")
			}
		}
	}
	hs := rt.Stats().Heaps[0]
	return [5]uint64{
		ctx.Cycles(),
		ctx.Thread().SyncEnclaveCycles(),
		hs.MajorFaults,
		rt.Platform().Driver.Stats().Faults,
		rt.Platform().LLC.Stats().Misses,
	}
}

// With autotuning disabled the run is bit-identical however much of the
// new observability surface is exercised alongside it: the golden
// fingerprint with no Pump/Stats calls equals the fingerprint with both
// on every iteration, across repeated runs.
func TestAutotuneDisabledIsCycleNeutral(t *testing.T) {
	base := goldenWorkload(t, false, false)
	if base[0] == 0 || base[2] == 0 {
		t.Fatalf("degenerate golden run: %v", base)
	}
	if again := goldenWorkload(t, false, false); again != base {
		t.Fatalf("seeded runs diverged:\n run1=%v\n run2=%v", base, again)
	}
	if pumped := goldenWorkload(t, true, true); pumped != base {
		t.Fatalf("disabled autotune surface moved virtual cycles:\n plain=%v\n pumped=%v", base, pumped)
	}
}

// Fixed-epoch autotuning through the public stack is deterministic: the
// same bursty drive produces the same decision trace, resize for
// resize, twice over. (The internal/tune variant proves this for the
// controller alone; this one covers the runtime wiring — watched heaps,
// Pump, queue mode application.)
func TestAutoTuneRuntimeTraceDeterministic(t *testing.T) {
	run := func() ([]TuneDecision, string) {
		rt, err := NewRuntime(
			WithMachine(MachineConfig{UsablePRMBytes: 32 << 20}),
			WithCATWays(0),
			WithAutoTune(TunePolicy{
				EpochCycles:      300_000,
				MinWorkers:       1,
				MaxWorkers:       4,
				Hysteresis:       2,
				ShrinkHysteresis: 2,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 2 << 20, Heap: HeapConfig{BackingBytes: 64 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		defer encl.Destroy()
		ctx := encl.NewContext()
		defer ctx.Close()
		p, err := ctx.Malloc(8 << 20)
		if err != nil {
			t.Fatal(err)
		}

		work := func(h *HostCtx) {
			h.Syscall(nil)
			h.Thread().T.Charge(4750)
		}
		batch := make([]func(*HostCtx), 8)
		for i := range batch {
			batch[i] = work
		}
		frame := make([]byte, 512)
		for i := 0; i < 300; i++ { // busy, with paging in the mix
			ctx.ExitlessBatch(batch...)
			if err := p.WriteAt(uint64((i*2654435761)%(8<<20/4096))*4096, frame); err != nil {
				t.Fatal(err)
			}
			ctx.Pump()
		}
		for i := 0; i < 300; i++ { // quiet
			ctx.Thread().T.Charge(20_000)
			if i%16 == 0 {
				ctx.Exitless(work)
			}
			ctx.Pump()
		}
		st := rt.Stats().Tune
		return rt.Tuner().Trace(), fmt.Sprintf("epochs=%d grows=%d shrinks=%d switches=%d workers=%d",
			st.Epochs, st.Grows, st.Shrinks, st.ModeSwitches, st.Workers)
	}
	trace1, sum1 := run()
	trace2, sum2 := run()
	if len(trace1) == 0 {
		t.Fatal("drive produced no decisions")
	}
	if sum1 != sum2 {
		t.Fatalf("counter summaries diverge: %s vs %s", sum1, sum2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("decision traces diverge between identical runs:\n run1: %+v\n run2: %+v", trace1, trace2)
	}
	var grew, shrank bool
	for _, d := range trace1 {
		if d.Resized && d.Workers > 1 {
			grew = true
		}
		if d.Resized && d.Workers == 1 {
			shrank = true
		}
	}
	if !grew || !shrank {
		t.Fatalf("degenerate trace (grew=%v shrank=%v): %s", grew, shrank, sum1)
	}
}

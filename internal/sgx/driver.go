package sgx

import (
	"fmt"
	"maps"
	"math"
	"sort"
	"sync"

	"eleos/internal/phys"
	"eleos/internal/seal"
)

// DriverStats counts the driver-visible paging events. IPIs counts
// individual interrupts delivered to cores (the unit Table 2 of the
// paper reports), not shootdown rounds.
type DriverStats struct {
	Faults         uint64 // EPC page faults handled (incl. demand-zero)
	DemandZero     uint64 // faults that materialized a never-touched page
	PageIns        uint64 // ELDU: pages decrypted back from host memory
	Evictions      uint64 // EWB: pages sealed out to host memory
	IPIs           uint64 // shootdown IPIs delivered
	Rounds         uint64 // background reclaim rounds
	QueuedCycles   uint64 // virtual cycles faults spent queued on the driver
	ContendedFault uint64 // faults that found the driver busy
	ShareUpdates   uint64 // SetEPCShares ioctls installing a share table
}

// Driver simulates the (untrusted) Linux SGX kernel driver: it owns the
// pool of usable PRM frames, splits it among enclaves, services EPC page
// faults, and reclaims frames with a batched background swapper whose
// evictions trigger TLB-shootdown IPIs on the cores currently running
// the victim enclave. It also implements the Eleos extension: an ioctl
// reporting the PRM share available to an enclave (§3.3), which the
// untrusted runtime uses to balloon SUVM page caches.
type Driver struct {
	plat *Platform
	// frames backs every usable PRM frame with real storage.
	frames []byte

	//eleos:lockorder 110
	mu         sync.Mutex
	freeFrames []int32
	enclaves   map[int]*Enclave
	evictBatch int
	stats      DriverStats

	// shares is the pluggable PRM share table (SetEPCShares): enclave id
	// to share in bytes. Empty means the legacy policy — usable PRM split
	// evenly among active enclaves — which quotaFramesLocked reproduces
	// bit-for-bit. Enclaves absent from a non-empty table split whatever
	// the listed shares leave over.
	shares map[int]uint64

	// busyUntil serializes fault handling in *virtual* time: the driver
	// is one kernel-side resource, so concurrent faults from different
	// cores queue behind each other (the reason multi-threaded EPC
	// paging scales poorly in the paper's Fig 7b/10/11 baselines).
	// Meaningful whenever the participating threads' virtual clocks
	// share an epoch, which every benchmark establishes by resetting
	// all thread counters and the driver together.
	busyUntil uint64
}

func newDriver(p *Platform, numFrames, evictBatch int) *Driver {
	d := &Driver{
		plat:       p,
		frames:     make([]byte, numFrames*phys.PageSize),
		freeFrames: make([]int32, 0, numFrames),
		enclaves:   make(map[int]*Enclave),
		evictBatch: evictBatch,
	}
	for i := numFrames - 1; i >= 0; i-- {
		d.freeFrames = append(d.freeFrames, int32(i))
	}
	return d
}

// frameData returns the storage of one PRM frame.
func (d *Driver) frameData(frame int32) []byte {
	off := int(frame) * phys.PageSize
	return d.frames[off : off+phys.PageSize]
}

// NumFrames returns the usable PRM size in frames.
func (d *Driver) NumFrames() int { return len(d.frames) / phys.PageSize }

// AvailableEPCBytes is the Eleos driver ioctl (§4.1) for a caller with
// no enclave identity: it reports the PRM share of an enclave not
// listed in the share table. With the default (empty) table that is the
// driver's classic heuristic — usable PRM split evenly among active
// enclaves. Callers that know their enclave should prefer
// AvailableEPCBytesFor, which honors SetEPCShares entries.
func (d *Driver) AvailableEPCBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(d.unlistedQuotaLocked()) * phys.PageSize
}

// AvailableEPCBytesFor is the per-enclave form of the ioctl: the PRM
// share of enclave id under the current share table (the even split
// when no table is set). The query itself charges no cycles — like
// AvailableEPCBytes, it models a cheap untrusted read the runtime's
// swapper performs outside the enclave.
func (d *Driver) AvailableEPCBytesFor(id int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(d.quotaFramesLocked(id)) * phys.PageSize
}

// SetEPCShares installs a PRM share table: enclave id to share in
// bytes (rounded down to whole frames). This is the Eleos extension's
// second ioctl, issued by the untrusted runtime's fleet controller;
// the driver itself stays policy-free and simply arbitrates against
// the table — AvailableEPCBytesFor reports the listed share, and the
// reclaim victim is scored by overage against it. Enclaves absent
// from the table split the unlisted remainder evenly; passing a nil
// or empty map restores the default even split exactly. The map is
// copied; entries for ids with no live enclave are ignored until an
// enclave with that id appears.
func (d *Driver) SetEPCShares(shares map[int]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(shares) == 0 {
		d.shares = nil
		return
	}
	t := make(map[int]uint64, len(shares))
	maps.Copy(t, shares)
	d.shares = t
	d.stats.ShareUpdates++
}

// EPCShares returns a copy of the installed share table (nil under the
// default even-split policy).
func (d *Driver) EPCShares() map[int]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.shares == nil {
		return nil
	}
	t := make(map[int]uint64, len(d.shares))
	maps.Copy(t, d.shares)
	return t
}

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() DriverStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the driver counters and the virtual-time queue
// (benchmark warm-up boundary; reset thread clocks at the same point).
func (d *Driver) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = DriverStats{}
	d.busyUntil = 0
}

func (d *Driver) enclaveCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.enclaves)
}

func (d *Driver) register(e *Enclave) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.enclaves[e.id] = e
}

// unregister tears an enclave down, returning its frames to the pool.
func (d *Driver) unregister(e *Enclave) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.enclaves, e.id)
	e.pagingMu.Lock()
	for i := range e.pages {
		p := &e.pages[i]
		if p.state == pageResident {
			d.freeFrames = append(d.freeFrames, p.frame)
		}
		p.state = pageAbsent
	}
	e.pagingMu.Unlock()
}

// quotaFramesLocked is the PRM share of enclave id in frames under the
// current share table: the table entry when id is listed, an even cut
// of the unlisted remainder otherwise (which, with no table at all, is
// the classic even split). Must be called with d.mu held.
func (d *Driver) quotaFramesLocked(id int) int {
	if b, ok := d.shares[id]; ok {
		q := int(b / phys.PageSize)
		if q > d.NumFrames() {
			q = d.NumFrames()
		}
		return q
	}
	return d.unlistedQuotaLocked()
}

// unlistedQuotaLocked is the frame share of an enclave with no entry in
// the share table: the frames the listed shares leave over, split
// evenly among the unlisted enclaves. With an empty table every enclave
// is unlisted and this is exactly the historical NumFrames/n even
// split. Must be called with d.mu held.
func (d *Driver) unlistedQuotaLocked() int {
	n := len(d.enclaves)
	if n == 0 {
		n = 1
	}
	if len(d.shares) == 0 {
		return d.NumFrames() / n
	}
	// Walk live enclaves by sorted id: the sums are commutative, but the
	// sorted walk keeps this symmetric with victim selection and trivially
	// order-insensitive for the determinism checker.
	ids := make([]int, 0, len(d.enclaves))
	for id := range d.enclaves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	listed, listedFrames := 0, 0
	for _, id := range ids {
		if b, ok := d.shares[id]; ok {
			listed++
			listedFrames += int(b / phys.PageSize)
		}
	}
	unlisted := n - listed
	if unlisted == 0 {
		unlisted = 1
	}
	remaining := d.NumFrames() - listedFrames
	if remaining < 0 {
		remaining = 0
	}
	return remaining / unlisted
}

// fault services an EPC page fault for page idx of enclave e, raised by
// thread th. The thread has already paid the exit round trip. write
// indicates the faulting access type (the paged-in page starts dirty for
// writes so hardware behaviour is conservative; SGX always writes back
// on EWB anyway).
func (d *Driver) fault(th *Thread, e *Enclave, idx uint64, write bool) {
	d.mu.Lock()
	e.pagingMu.Lock()

	p := &e.pages[idx]
	if p.state == pageResident {
		// Another thread resolved it while we were acquiring locks;
		// hardware would have replayed the access and hit.
		e.pagingMu.Unlock()
		d.mu.Unlock()
		return
	}

	d.stats.Faults++
	e.stats.bumpFaults()
	// Queue behind the driver-lock critical section of faults in flight
	// on other cores. Only the in-kernel bookkeeping serializes; the
	// MEE crypto and data movement of EWB/ELDU proceed per-core, which
	// is why the paper's baselines scale somewhat (2.7x at 4 threads for
	// memcached) but far below linearly.
	now := th.T.Cycles()
	serveStart := now
	if d.busyUntil > now {
		th.T.Charge(d.busyUntil - now)
		d.stats.QueuedCycles += d.busyUntil - now
		d.stats.ContendedFault++
		serveStart = d.busyUntil
	}
	d.busyUntil = serveStart + d.plat.Model.HWFaultDriver
	th.T.Charge(d.plat.Model.HWFaultDriver)
	th.T.Charge(d.plat.Model.HWFaultIndirect)

	frame := d.takeFrameLocked(th, e)
	data := d.frameData(frame)
	switch p.state {
	case pageAbsent:
		// Demand-zero materialization (EAUG-style).
		d.stats.DemandZero++
		clear(data)
	case pageEvicted:
		// ELDU: fetch the sealed blob from untrusted memory, verify and
		// decrypt it into the frame. The crypto cost is part of
		// HWFaultDriver (the instruction's latency includes it), so the
		// sealer is invoked with a nil thread; the work is still real.
		ct := make([]byte, phys.PageSize+seal.Overhead)
		d.plat.Host.ReadAt(p.blobAddr, ct[:phys.PageSize])
		copy(ct[phys.PageSize:], p.tag[:])
		pt, err := e.sealer.Open(nil, data[:0], ct, e.pageAAD(idx), p.nonce)
		if err != nil {
			panic(fmt.Sprintf("sgx: EPC page integrity failure for enclave %d page %d: %v", e.id, idx, err))
		}
		if len(pt) != phys.PageSize {
			panic("sgx: sealed EPC page has wrong length")
		}
		d.plat.FreeHost(p.blobAddr)
		p.blobAddr = 0
		d.stats.PageIns++
	}
	p.state = pageResident
	p.frame = frame
	p.accessed.Store(true)
	p.dirty.Store(write)
	e.resident = append(e.resident, uint32(idx))
	e.pagingMu.Unlock()
	d.mu.Unlock()
}

// takeFrameLocked hands out a free frame, running a reclaim round first
// if the pool is empty. Called with d.mu held (and possibly e.pagingMu —
// reclaim handles self-eviction re-entrantly via the caller's lock).
func (d *Driver) takeFrameLocked(th *Thread, faulting *Enclave) int32 {
	if len(d.freeFrames) == 0 {
		d.reclaimLocked(th, faulting)
	}
	if len(d.freeFrames) == 0 {
		panic("sgx: PRM exhausted and reclaim found no victim (all pages pinned?)")
	}
	frame := d.freeFrames[len(d.freeFrames)-1]
	d.freeFrames = d.freeFrames[:len(d.freeFrames)-1]
	return frame
}

// reclaimLocked performs one background-swapper round: it evicts up to
// evictBatch pages from the enclave most over its PRM share, sealing
// them to host memory, and posts shootdown IPIs to the cores currently
// executing that enclave. Direct eviction costs are charged to th — the
// thread whose fault triggered the reclaim, which is also the CPU the
// swapper work runs on.
//
// Called with d.mu held; the faulting enclave's pagingMu may be held, so
// victim lock acquisition tracks whether the victim is the faulter.
func (d *Driver) reclaimLocked(th *Thread, faulting *Enclave) {
	victim := d.pickVictimEnclaveLocked(faulting)
	if victim == nil {
		return
	}
	d.stats.Rounds++
	if victim != faulting {
		victim.pagingMu.Lock()
		defer victim.pagingMu.Unlock()
	}
	evicted := 0
	for evicted < d.evictBatch {
		if !d.evictOneLocked(th, victim) {
			break
		}
		evicted++
	}
	if evicted == 0 {
		return
	}
	// One shootdown round: the driver's swapper runs asynchronously with
	// the enclave, so it IPIs every core in the victim enclave's cpumask
	// (the Linux driver's ETRACK bookkeeping is exactly this
	// conservative — the paper observes IPIs even for single-threaded
	// enclaves, §6.1.2 fn.3). Delivery is deferred to each receiver's
	// next enclave memory access, where it AEXes and flushes its TLB.
	victim.threadMu.Lock()
	ths := append([]*Thread(nil), victim.threads...)
	victim.threadMu.Unlock()
	for _, vt := range ths {
		vt.pendingIPI.Add(1)
		d.stats.IPIs++
		victim.stats.bumpIPIs()
	}
}

// pickVictimEnclaveLocked selects the enclave to reclaim from: the one
// most over its PRM share under the current share table (its fair cut
// of the even split when no table is installed), preferring enclaves
// with unpinned resident pages. Called with d.mu held.
func (d *Driver) pickVictimEnclaveLocked(faulting *Enclave) *Enclave {
	// Walk enclaves in id order: Go randomizes map iteration, and the
	// score comparison below breaks ties in walk order — letting the
	// map decide would let the victim choice (and with it the golden
	// cycle fingerprints) vary run to run. Sorted ids break ties toward
	// the oldest enclave.
	ids := make([]int, 0, len(d.enclaves))
	for id := range d.enclaves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var best *Enclave
	bestScore := math.MinInt
	for _, id := range ids {
		e := d.enclaves[id]
		r := e.residentCount()
		if r == 0 {
			continue
		}
		score := r - d.quotaFramesLocked(id)
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	if best == nil {
		best = faulting
	}
	return best
}

// evictOneLocked evicts one page from enclave v using a clock sweep with
// two passes: the first skips pinned pages (Eleos EPC++ frames under a
// correctly ballooned configuration), the second takes anything — which
// is precisely what thrashes a misconfigured EPC++ in Fig 9. Called with
// d.mu and v.pagingMu held. Returns false when nothing is evictable.
func (d *Driver) evictOneLocked(th *Thread, v *Enclave) bool {
	for pass := 0; pass < 2; pass++ {
		// Bound the sweep: one full circuit for the accessed-bit clock,
		// per pass. Stale-entry drops don't count against the budget —
		// they shrink len(v.resident) while the loop runs, and charging
		// them too would end the sweep before one true circuit when the
		// list is heavily polluted (e.g. right after a balloon shrink
		// freed half the pool), making reclaim miss evictable pages.
		for sweep := 0; sweep < len(v.resident)+1 && len(v.resident) > 0; {
			if v.clockHand >= len(v.resident) {
				v.clockHand = 0
			}
			idx := v.resident[v.clockHand]
			p := &v.pages[idx]
			if p.state != pageResident {
				// Stale entry (page was freed); drop it in place.
				v.resident[v.clockHand] = v.resident[len(v.resident)-1]
				v.resident = v.resident[:len(v.resident)-1]
				continue
			}
			sweep++
			if pass == 0 && p.pinned {
				v.clockHand++
				continue
			}
			if p.accessed.Swap(false) {
				v.clockHand++
				continue
			}
			// Victim found: seal (EWB always writes back, even clean
			// pages — the optimization SUVM adds is impossible here).
			d.sealOutLocked(th, v, uint64(idx), p)
			v.resident[v.clockHand] = v.resident[len(v.resident)-1]
			v.resident = v.resident[:len(v.resident)-1]
			return true
		}
	}
	return false
}

// sealOutLocked performs the EWB: encrypt the frame into a fresh host
// blob, record nonce+tag in driver metadata (the hardware keeps these in
// version arrays inside PRM), and release the frame.
func (d *Driver) sealOutLocked(th *Thread, v *Enclave, idx uint64, p *page) {
	th.T.Charge(d.plat.Model.HWFaultEvict)
	data := d.frameData(p.frame)
	ct := make([]byte, 0, phys.PageSize+seal.Overhead)
	nonce, ct := v.sealer.Seal(nil, ct, data, v.pageAAD(idx))
	blobAddr := d.plat.AllocHost(phys.PageSize)
	d.plat.Host.WriteAt(blobAddr, ct[:phys.PageSize])
	copy(p.tag[:], ct[phys.PageSize:])
	p.nonce = nonce
	p.blobAddr = blobAddr
	p.state = pageEvicted
	d.freeFrames = append(d.freeFrames, p.frame)
	p.frame = -1
	d.stats.Evictions++
	v.stats.bumpEvictions()
}

// freePagesLocked returns the frames of a released page range to the
// pool. Called by Enclave.FreePages with both locks held.
func (d *Driver) freePagesLocked(e *Enclave, first, n uint64) {
	for i := first; i < first+n; i++ {
		p := &e.pages[i]
		switch p.state {
		case pageResident:
			d.freeFrames = append(d.freeFrames, p.frame)
		case pageEvicted:
			d.plat.FreeHost(p.blobAddr)
		}
		*p = page{frame: -1}
	}
}

// Package atomicfield enforces consistent atomic access to shared
// fields — the static precondition for the lock-free doorbell-path work
// (ROADMAP item 3). A "lock-free" ring is only lock-free if every
// access to its shared words is atomic: one plain load mixed in and the
// race detector may stay silent (the interleaving never fires in tests)
// while the real machine tears the read. The analyzer makes the
// invariant structural instead of conventional.
//
// The pass is whole-module and field-granular: facts are aggregated
// across every package first (which struct fields and package-level
// variables are ever accessed through sync/atomic), then each package
// is checked against the aggregate, so a field atomically accessed in
// package A and plainly accessed in package B is still caught. Three
// rules:
//
//   - plainaccess: a field or package-level variable that is anywhere
//     passed by address to a sync/atomic function (atomic.AddUint64,
//     atomic.LoadPointer, ...) must never be read or written plainly —
//     every access to an atomics-published word must be atomic. Taking
//     its address outside a sync/atomic call argument is flagged too
//     (the alias escapes the discipline).
//   - atomiccopy: a value of a struct type containing typed atomics
//     (atomic.Uint64, atomic.Value, ... — directly, or transitively
//     through embedded structs and arrays) must not be copied: by
//     assignment, by being passed as a call argument, or by a range
//     over a slice/array/map of such values. A copy forks the atomic's
//     state and silently decouples the two copies' readers.
//   - valuetype: an atomic.Value whose Store/Swap/CompareAndSwap sites
//     disagree on the stored concrete type panics at runtime
//     ("inconsistently typed value"); all stores into one Value must
//     statically agree. (Typed atomic.Pointer[T] is compiler-enforced
//     and needs no check.)
//
// The analysis is static: values reached through interface indirection
// or function-typed escape hatches are not tracked, same documented
// limit as the trustboundary pass. Suppress deliberate exceptions with
// "//eleos:allow atomicfield -- reason" (or the fine-grained category).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/load"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "enforce consistent atomic access: no plain reads/writes of atomically accessed fields, no copies of atomic-bearing structs, no mixed-type atomic.Value stores",
	Run:  run,
}

// valueStore is one observed Store/Swap/CompareAndSwap into an
// atomic.Value, with the concrete type it stored.
type valueStore struct {
	pos     token.Pos
	pkgPath string
	typ     string
}

// facts is the program-wide aggregate every per-package pass checks
// against.
type facts struct {
	// atomicObj maps each field or package-level variable passed by
	// address to a sync/atomic function to one example site (for the
	// message).
	atomicObj map[types.Object]token.Pos
	// sanctioned records the &x.f (or &v) operand positions inside
	// sync/atomic call arguments — the accesses that ARE the atomic
	// discipline and must not be flagged.
	sanctioned map[token.Pos]bool
	// valueStores groups the observed stores per atomic.Value object.
	valueStores map[types.Object][]valueStore
	// valueNames renders each tracked atomic.Value object for messages.
	valueNames map[types.Object]string
}

var (
	factsMu    sync.Mutex
	factsCache = map[*load.Program]*facts{}
)

func run(pass *analysis.Pass) error {
	f := factsFor(pass.Prog)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, f, fd.Body)
		}
	}
	checkValueStores(pass, f)
	return nil
}

// checkBody flags plain accesses of atomically accessed objects and
// copies of atomic-bearing struct values in one function body.
func checkBody(pass *analysis.Pass, f *facts, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// writes collects the identifiers/selectors in a write position
	// (assignment LHS, ++/--), so the message can say read vs write.
	writes := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(n.X)] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := selectedObj(info, n)
			if obj == nil {
				return true
			}
			reportPlain(pass, f, obj, n.Sel.Pos(), writes[n])
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Var)
			if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			reportPlain(pass, f, obj, n.Pos(), writes[n])
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopyExpr(pass, info, rhs, "assignment copies")
			}
		case *ast.CallExpr:
			if isSyncAtomicCall(info, n) {
				return true // its &arg is the sanctioned access
			}
			for _, arg := range n.Args {
				checkCopyExpr(pass, info, arg, "call passes by value")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := info.TypeOf(n.Value); t != nil && containsAtomic(t) {
					pass.Report(n.Value.Pos(), "atomiccopy",
						"range copies %s, which contains atomic fields; iterate by index or over pointers",
						typeShort(t))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkCopyExpr(pass, info, res, "return copies")
			}
		}
		return true
	})
}

// reportPlain flags a non-sanctioned use of an atomically accessed
// object.
func reportPlain(pass *analysis.Pass, f *facts, obj types.Object, pos token.Pos, write bool) {
	if _, ok := f.atomicObj[obj]; !ok || f.sanctioned[pos] {
		return
	}
	kind := "read"
	if write {
		kind = "write"
	}
	pass.Report(pos, "plainaccess",
		"plain %s of %s, which is accessed with sync/atomic at %s; every access must be atomic",
		kind, objName(obj), pass.Fset.Position(f.atomicObj[obj]))
}

// checkCopyExpr flags expr when evaluating it copies a value of a
// struct type that contains typed atomics. Composite literals and call
// results are construction, not copies; everything else that yields
// such a value by loading it (a variable, a field selection, a
// dereference, an index) is a copy.
func checkCopyExpr(pass *analysis.Pass, info *types.Info, expr ast.Expr, how string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || !tv.IsValue() {
		return
	}
	// Addressed or pointer-typed uses are fine; only value copies fork
	// the atomics.
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsAtomic(tv.Type) {
		pass.Report(e.Pos(), "atomiccopy",
			"%s %s, which contains atomic fields; pass a pointer instead",
			how, typeShort(tv.Type))
	}
}

// checkValueStores reports this package's share of the mixed-type
// atomic.Value stores aggregated across the module.
func checkValueStores(pass *analysis.Pass, f *facts) {
	objs := make([]types.Object, 0, len(f.valueStores))
	for obj := range f.valueStores {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return f.valueNames[objs[i]] < f.valueNames[objs[j]] })
	for _, obj := range objs {
		stores := f.valueStores[obj]
		seen := map[string]bool{}
		var kinds []string
		for _, s := range stores {
			if !seen[s.typ] {
				seen[s.typ] = true
				kinds = append(kinds, s.typ)
			}
		}
		if len(kinds) < 2 {
			continue
		}
		for _, s := range stores {
			if s.pkgPath != pass.Pkg.PkgPath {
				continue
			}
			others := make([]string, 0, len(kinds)-1)
			for _, k := range kinds {
				if k != s.typ {
					others = append(others, k)
				}
			}
			pass.Report(s.pos, "valuetype",
				"stores %s into atomic.Value %s, which elsewhere stores %s; mixed concrete types panic at runtime",
				s.typ, f.valueNames[obj], strings.Join(others, ", "))
		}
	}
}

func factsFor(prog *load.Program) *facts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := factsCache[prog]; ok {
		return f
	}
	f := build(prog)
	factsCache[prog] = f
	return f
}

// build aggregates the module-wide facts: which objects are atomically
// accessed, where the sanctioned accesses sit, and what each
// atomic.Value stores.
func build(prog *load.Program) *facts {
	f := &facts{
		atomicObj:   map[types.Object]token.Pos{},
		sanctioned:  map[token.Pos]bool{},
		valueStores: map[types.Object][]valueStore{},
		valueNames:  map[types.Object]string{},
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isSyncAtomicCall(pkg.Info, call) {
					recordAtomicArgs(pkg.Info, call, f)
					return true
				}
				recordValueStore(pkg, call, f)
				return true
			})
		}
	}
	return f
}

// recordAtomicArgs marks every &field / &var argument of a sync/atomic
// function call as atomically accessed, and the access itself as
// sanctioned.
func recordAtomicArgs(info *types.Info, call *ast.CallExpr, f *facts) {
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		switch e := ast.Unparen(un.X).(type) {
		case *ast.SelectorExpr:
			if obj := selectedObj(info, e); obj != nil {
				if _, seen := f.atomicObj[obj]; !seen {
					f.atomicObj[obj] = e.Sel.Pos()
				}
				f.sanctioned[e.Sel.Pos()] = true
			}
		case *ast.Ident:
			if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				if _, seen := f.atomicObj[obj]; !seen {
					f.atomicObj[obj] = e.Pos()
				}
				f.sanctioned[e.Pos()] = true
			}
		}
	}
}

// recordValueStore records the concrete type stored by an
// atomic.Value.Store/Swap/CompareAndSwap call whose receiver resolves
// to a trackable field or package-level variable.
func recordValueStore(pkg *load.Package, call *ast.CallExpr, f *facts) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	if r := recvNamed(fn); r != "Value" {
		return
	}
	var newVal ast.Expr
	switch fn.Name() {
	case "Store", "Swap":
		if len(call.Args) != 1 {
			return
		}
		newVal = call.Args[0]
	case "CompareAndSwap":
		if len(call.Args) != 2 {
			return
		}
		newVal = call.Args[1]
	default:
		return
	}
	obj := receiverObj(pkg.Info, sel.X)
	if obj == nil {
		return
	}
	tv, ok := pkg.Info.Types[newVal]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if types.IsInterface(t.Underlying()) {
		return // dynamic type unknown; out of static scope
	}
	f.valueStores[obj] = append(f.valueStores[obj], valueStore{
		pos:     newVal.Pos(),
		pkgPath: pkg.PkgPath,
		typ:     typeShort(t),
	})
	if _, ok := f.valueNames[obj]; !ok {
		f.valueNames[obj] = objName(obj)
	}
}

// receiverObj resolves the receiver expression of a method call to the
// field or package-level variable it denotes (v.Store → v, s.val.Store
// → the val field), or nil for locals and unresolvable shapes.
func receiverObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return selectedObj(info, e)
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj
		}
	}
	return nil
}

// selectedObj resolves a selector to the struct field it selects, or a
// package-qualified variable (pkg.v), or nil.
func selectedObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s := info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a plain function of
// sync/atomic (atomic.AddUint64 and friends — not the typed methods).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// containsAtomic reports whether t (a struct, or an array of structs)
// transitively contains a sync/atomic typed value as a field.
func containsAtomic(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// recvNamed returns the bare receiver type name of a method ("" for
// plain functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// objName renders a tracked object as pkg.Type.field or pkg.var.
func objName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		if owner := fieldOwner(v); owner != "" {
			return v.Pkg().Name() + "." + owner + "." + v.Name()
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// fieldOwner finds the named struct type declaring field v, scanning
// the package scope (good enough for messages; "" when anonymous).
func fieldOwner(v *types.Var) string {
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// typeShort renders a type without its package path qualifiers.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

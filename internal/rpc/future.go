package rpc

import "eleos/internal/sgx"

// Future is the handle to one asynchronous exit-less call (§3.1: the
// enclave thread receives a future and keeps computing while the
// untrusted worker runs the call). The accounting mirrors that overlap:
// CallAsync charged only the enqueue; Wait charges the residual part of
// the worker's latency that the caller's compute since submission did
// not already hide, plus the completion poll.
//
// A Future belongs to the thread that submitted it; Wait must be called
// with that same thread (its clock anchors the overlap computation).
// Wait is idempotent, and after the first Wait the underlying request is
// recycled.
type Future struct {
	pool   *Pool
	req    *request
	work   uint64
	waited bool
}

// Done reports whether the delegated call has completed, without
// blocking and without charging the caller.
//
//eleos:hotpath budget=0
func (f *Future) Done() bool {
	return f.waited || f.req.done.Load() != 0
}

// Wait blocks until the call completes and settles the caller's
// accounting: cycles the caller burned since submission overlap with
// the worker's execution for free, and only the residual — if any — is
// charged, as stall time outside the enclave, plus the completion poll.
//
//eleos:hotpath budget=0
func (f *Future) Wait(caller *sgx.Thread) {
	if f.waited {
		return
	}
	req := f.req
	for req.done.Load() == 0 {
		spinWait()
	}
	residual := caller.ChargeResidual(req.submitStamp, req.workCycles)
	caller.ChargeOutside(caller.Platform().Model.RPCPoll)
	f.pool.waitCycles.Add(residual)
	f.pool.settledWork.Add(req.workCycles)
	f.work = req.workCycles
	f.waited = true
	f.req = nil
	f.pool.putReq(req)
}

// WorkCycles returns the virtual cycles the worker spent executing the
// call. Valid after Wait.
func (f *Future) WorkCycles() uint64 { return f.work }

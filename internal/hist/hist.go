// Package hist is an HDR-style latency histogram over virtual cycles,
// the measurement half of the open-loop traffic harness. Values are
// recorded into log-spaced buckets with 2^subBits sub-buckets per
// octave, bounding the relative quantile error at 1/2^subBits (~3.1%)
// while keeping the whole structure a fixed flat array: Record is a
// shift, a table index and an add — no allocation, no branch on the
// data — so it can sit on the serving thread's hot path without
// perturbing what it measures. Histograms merge additively across
// workers or variance runs, and quantiles are deterministic functions
// of the bucket counts, so reports built from them golden-diff cleanly.
//
// Trust domain: untrusted (the measurement harness runs on the client
// side of the trust boundary, like loadgen). Checked by eleoslint for
// determinism and for the Record allocation budget.
//
//eleos:untrusted
//eleos:deterministic
package hist

import "math/bits"

const (
	// subBits sets the per-octave resolution: 2^subBits sub-buckets,
	// giving a worst-case relative error of 1/2^subBits per quantile.
	subBits = 5
	// exact is the threshold below which values map to their own
	// bucket: anything under 2^(subBits+1) cycles is represented
	// exactly.
	exact = 1 << (subBits + 1)
	// nBuckets covers the full uint64 range: the exact range plus
	// 2^subBits buckets for each shift 1..64-subBits-1 (the largest
	// bucket index, for v = 2^64-1, is (64-subBits-1)<<subBits + 2^(subBits+1) - 1).
	nBuckets = (64-subBits-1)<<subBits + exact
)

// H is a mergeable latency histogram. The zero value is NOT ready to
// use (the counts array is large enough that H should live behind a
// pointer); create one with New.
type H struct {
	counts [nBuckets]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// Summary is the fixed percentile set the benchmark tables report.
type Summary struct {
	Count                    uint64
	Mean                     float64
	P50, P90, P99, P999, Max uint64
}

// New returns an empty histogram.
func New() *H {
	return &H{min: ^uint64(0)}
}

// bucketOf maps a value to its bucket index. Values below the exact
// threshold map to themselves; above it, the top subBits+1 significant
// bits select the bucket, so each octave splits into 2^subBits
// log-spaced buckets.
//
//eleos:hotpath budget=0
func bucketOf(v uint64) int {
	if v < exact {
		return int(v)
	}
	shift := uint(bits.Len64(v) - subBits - 1)
	return int(shift)<<subBits + int(v>>shift)
}

// upperOf returns the largest value a bucket holds — the deterministic
// representative quantiles report, so a quantile never under-states.
func upperOf(i int) uint64 {
	if i < exact {
		return uint64(i)
	}
	shift := uint(i>>subBits) - 1
	top := uint64(i&(exact/2-1)) + exact/2
	return (top+1)<<shift - 1
}

// Record adds one value. It is the per-request hot path of the traffic
// driver and must not allocate.
//
//eleos:hotpath budget=0
func (h *H) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *H) Count() uint64 { return h.n }

// Max returns the largest recorded value exactly (not bucket-rounded).
func (h *H) Max() uint64 { return h.max }

// Min returns the smallest recorded value exactly, or 0 when empty.
func (h *H) Min() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Mean returns the exact arithmetic mean of the recorded values.
func (h *H) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge folds o into h. Bucket counts are additive, so merging is
// associative and commutative — per-worker or per-run histograms fold
// into one without ordering sensitivity.
func (h *H) Merge(o *H) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.n += o.n
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset empties the histogram in place.
func (h *H) Reset() {
	h.counts = [nBuckets]uint64{}
	h.n = 0
	h.sum = 0
	h.min = ^uint64(0)
	h.max = 0
}

// Quantile returns the value at or below which a fraction q of the
// recorded values fall, rounded up to its bucket's upper bound and
// clamped to the exact observed maximum. q is clamped to [0, 1];
// an empty histogram returns 0. Quantile is monotone in q.
func (h *H) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	// rank is the 1-based index of the target value in sorted order:
	// ceil(q * n), at least 1.
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := upperOf(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Snapshot returns the fixed percentile set in one pass-friendly
// struct.
func (h *H) Snapshot() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}

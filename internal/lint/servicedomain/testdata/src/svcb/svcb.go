// Package svcb is testdata: service B, a co-resident tenant of
// service A's enclave.
//
//eleos:service b
package svcb

import (
	"bridge"
	"svca"
)

// Bad calls straight into service A: flagged.
func Bad() {
	svca.Work() // want "function svcb.Bad calls service .a. function svca.Work"
}

// BadVar touches service A's package state directly: flagged.
func BadVar() int {
	return svca.Counter // want "function svcb.BadVar touches service .a. state svca.Counter"
}

// Good crosses through the sanctioned fast path: clean.
func Good() {
	bridge.CrossCall(func() {
		svca.Work()
		svca.Counter++
	})
}

// Allowed documents a deliberate exception: clean.
func Allowed() {
	//eleos:allow crossservice -- testdata: deliberate suppressed crossing
	svca.Work()
}

// Neutral calls un-serviced shared code: clean.
func Neutral() { bridge.Helper() }

// Local state and same-service calls are always clean.
var own int

func Internal() {
	own++
	Bad()
}

// Migrated carries a per-function override onto service A's side, so
// its direct touch is same-service: clean.
//
//eleos:service a
func Migrated() { svca.Work() }

package mckv

import (
	"fmt"

	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// SyscallMode selects the store's path to the OS for network I/O.
type SyscallMode int

// Syscall mechanisms: the Graphene baseline exits per syscall; Eleos
// integrates its RPC into Graphene (§5.1).
const (
	SysNative SyscallMode = iota
	SysOCall
	SysRPC
)

func (m SyscallMode) String() string {
	switch m {
	case SysNative:
		return "native"
	case SysOCall:
		return "ocall"
	default:
		return "rpc"
	}
}

// Server is one worker front end over a shared Store: a socket plus the
// configured syscall mechanism and request crypto. Create one per
// serving thread.
type Server struct {
	store *Store
	plat  *sgx.Platform
	sys   SyscallMode
	pool  *rpc.Pool
	sock  *netsim.Socket
	buf   []byte
}

// NewServer wraps store with a network front end. pool is required for
// SysRPC.
func NewServer(store *Store, sys SyscallMode, pool *rpc.Pool) (*Server, error) {
	if sys == SysRPC && pool == nil {
		return nil, fmt.Errorf("mckv: RPC mode requires a worker pool")
	}
	return &Server{
		store: store,
		plat:  store.plat,
		sys:   sys,
		pool:  pool,
		sock:  netsim.NewSocket(store.plat, 1<<20),
		buf:   make([]byte, 1<<20),
	}, nil
}

// Close releases the socket.
func (s *Server) Close() { s.sock.Close() }

// Store returns the shared store.
func (s *Server) Store() *Store { return s.store }

// GetRequestBytes is the wire size of a GET for a key of klen bytes.
func GetRequestBytes(klen int) int { return 8 + klen + 28 }

// SetRequestBytes is the wire size of a SET carrying klen+vlen payload.
func SetRequestBytes(klen, vlen int) int { return 8 + klen + vlen + 28 }

// recv/send via the configured mechanism.
func (s *Server) netCall(th *sgx.Thread, f func(*sgx.HostCtx)) {
	switch s.sys {
	case SysNative:
		f(th.HostContext())
	case SysOCall:
		th.OCall(f)
	case SysRPC:
		if err := s.pool.Call(th, f); err != nil {
			panic("mckv: RPC pool stopped mid-serve: " + err.Error())
		}
	}
}

// ServeGet handles one GET request end to end: receive, decrypt, look
// the key up, and send the encrypted value back. Returns the value
// length.
func (s *Server) ServeGet(th *sgx.Thread, key []byte) (int, error) {
	reqN := GetRequestBytes(len(key))
	s.sock.Deliver(key) // the client's (encrypted) request carries the key
	s.netCall(th, func(h *sgx.HostCtx) { s.sock.Recv(h, reqN) })
	th.Read(s.sock.UserBuf(), s.buf[:len(key)])
	netsim.CryptoCost(th.T, s.plat.Model, reqN)

	vlen, err := s.store.Get(th, key, s.buf)
	if err != nil {
		return 0, err
	}

	respN := vlen + 40 // VALUE header + envelope
	netsim.CryptoCost(th.T, s.plat.Model, respN)
	th.Write(s.sock.UserBuf(), s.buf[:vlen])
	s.netCall(th, func(h *sgx.HostCtx) { s.sock.Send(h, respN) })
	return vlen, nil
}

// ServeSet handles one SET request end to end.
func (s *Server) ServeSet(th *sgx.Thread, key, val []byte) error {
	reqN := SetRequestBytes(len(key), len(val))
	s.sock.Deliver(val)
	s.netCall(th, func(h *sgx.HostCtx) { s.sock.Recv(h, reqN) })
	th.Read(s.sock.UserBuf(), s.buf[:min(len(val), len(s.buf))])
	netsim.CryptoCost(th.T, s.plat.Model, reqN)

	if err := s.store.Set(th, key, val); err != nil {
		return err
	}

	netsim.CryptoCost(th.T, s.plat.Model, 8+28) // STORED
	s.netCall(th, func(h *sgx.HostCtx) { s.sock.Send(h, 8+28) })
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

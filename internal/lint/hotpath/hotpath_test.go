package hotpath_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer,
		"hot", "hotlib")
}

package hostmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/phys"
)

func TestBuddyBasics(t *testing.T) {
	b, err := NewBuddy(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := b.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := b.BlockSize(a1); sz != 128 {
		t.Fatalf("100-byte alloc got block of %d, want 128", sz)
	}
	a2, _ := b.Alloc(16)
	if a1 == a2 {
		t.Fatal("overlapping allocations")
	}
	if err := b.Free(a1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(a1); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free error = %v", err)
	}
	if err := b.Free(a2); err != nil {
		t.Fatal(err)
	}
	// After freeing everything, the full region must coalesce.
	if got := b.FreeBytes(); got != 1<<20 {
		t.Fatalf("free bytes after full free: %d", got)
	}
	big, err := b.Alloc(1 << 20)
	if err != nil {
		t.Fatalf("region did not coalesce: %v", err)
	}
	_ = b.Free(big)
}

func TestBuddyExhaustion(t *testing.T) {
	b, _ := NewBuddy(0, 1<<12)
	var addrs []uint64
	for {
		a, err := b.Alloc(256)
		if err != nil {
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) != 16 {
		t.Fatalf("got %d 256B blocks from 4KiB, want 16", len(addrs))
	}
	if _, err := b.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("exhaustion error = %v", err)
	}
	for _, a := range addrs {
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBuddyProperty drives random alloc/free sequences and checks the
// invariants a correct buddy allocator maintains: no overlap, block
// sizes are powers of two >= the request, accounting balances, and full
// coalescing after drain.
func TestBuddyProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const region = 1 << 18
		b, err := NewBuddy(1<<30, region)
		if err != nil {
			return false
		}
		type block struct{ addr, size uint64 }
		var live []block
		overlaps := func(a1, s1, a2, s2 uint64) bool {
			return a1 < a2+s2 && a2 < a1+s1
		}
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := uint64(rng.Intn(region/8) + 1)
				addr, err := b.Alloc(n)
				if err != nil {
					continue // exhaustion is legal
				}
				sz, err := b.BlockSize(addr)
				if err != nil || sz < n || sz&(sz-1) != 0 {
					return false
				}
				for _, l := range live {
					if overlaps(addr, sz, l.addr, l.size) {
						return false
					}
				}
				live = append(live, block{addr, sz})
			} else {
				i := rng.Intn(len(live))
				if err := b.Free(live[i].addr); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			var want uint64
			for _, l := range live {
				want += l.size
			}
			if b.InUse() != want {
				return false
			}
		}
		for _, l := range live {
			if err := b.Free(l.addr); err != nil {
				return false
			}
		}
		// Full coalescing: one max-order allocation must succeed.
		addr, err := b.Alloc(region)
		return err == nil && addr == 1<<30
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaReadWrite(t *testing.T) {
	a, err := NewArena(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Alloc(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if addr < phys.HostBase {
		t.Fatalf("arena address %#x below HostBase", addr)
	}
	want := make([]byte, 5<<20)
	rand.New(rand.NewSource(1)).Read(want)
	// Write at a chunk-straddling offset.
	a.WriteAt(addr+123456, want)
	got := make([]byte, len(want))
	a.ReadAt(addr+123456, got)
	if !bytes.Equal(got, want) {
		t.Fatal("arena readback mismatch")
	}
	// Untouched memory reads as zero.
	z := make([]byte, 100)
	z[0] = 1
	a.ReadAt(addr+9<<20+500000, z)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("untouched arena byte %d = %d", i, v)
		}
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func TestArenaSlice(t *testing.T) {
	a, _ := NewArena(1 << 30)
	addr, _ := a.Alloc(1 << 20)
	s := a.Slice(addr+8, 100)
	if s == nil {
		t.Fatal("in-chunk slice denied")
	}
	copy(s, "hello")
	got := make([]byte, 5)
	a.ReadAt(addr+8, got)
	if string(got) != "hello" {
		t.Fatalf("slice write not visible: %q", got)
	}
	// Chunk-straddling ranges must be refused.
	if s := a.Slice(addr+(1<<20)-4, 16); s != nil {
		t.Fatal("cross-chunk slice should be nil")
	}
}

func TestArenaFootprintSparse(t *testing.T) {
	a, _ := NewArena(16 << 30)
	addr, _ := a.Alloc(8 << 30) // 8GiB reserved...
	a.WriteAt(addr, []byte{1})  // ...but only one byte touched
	if fp := a.Footprint(); fp > 4<<20 {
		t.Fatalf("sparse arena materialized %d bytes for a 1-byte write", fp)
	}
}

package simdeterminism_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer, "det", "nondet")
}

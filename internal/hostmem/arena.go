// Package hostmem provides the untrusted memory of the enclave's owner
// process: a sparse byte arena addressed by simulated physical address,
// plus a buddy allocator in the style of the SQLite zero-malloc
// allocator the paper uses for the SUVM backing store (§4.1). Evicted
// pages, RPC job queues, syscall I/O buffers and security-insensitive
// application metadata all live here.
//
// Trust domain: untrusted. Enclave code must reach the arena's raw byte
// accessors (ReadAt, WriteAt, Slice) only through the seal/suvm
// facades; eleoslint's trustboundary analyzer enforces that. The
// allocator is cycle-charged bookkeeping and stays deterministic.
//
//eleos:untrusted
//eleos:deterministic
package hostmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/phys"
)

// chunkShift sizes the sparse storage chunks (1 MiB).
const chunkShift = 20

const chunkSize = 1 << chunkShift

// Arena is the untrusted DRAM of the simulated machine. Storage is
// materialized lazily in 1 MiB chunks, so multi-gigabyte experiments
// only pay for pages they actually touch. An Arena is safe for
// concurrent use; byte-range races are the caller's concern, exactly as
// with real shared memory.
type Arena struct {
	//eleos:lockorder 140
	mu     sync.RWMutex
	chunks map[uint64][]byte
	alloc  *Buddy

	// trace, when set, observes every ReadAt/WriteAt — the vantage
	// point of the untrusted OS, which sees all traffic to host memory
	// (by page-table tricks or cache probing). Used to demonstrate the
	// §3.2.5 access-pattern side channel.
	trace atomic.Pointer[TraceFunc]
}

// TraceFunc observes one host-memory access.
type TraceFunc func(addr uint64, n int, write bool)

// SetTrace installs (or clears, with nil) the host-side observer.
func (a *Arena) SetTrace(f TraceFunc) {
	if f == nil {
		a.trace.Store(nil)
		return
	}
	a.trace.Store(&f)
}

func (a *Arena) observe(addr uint64, n int, write bool) {
	if f := a.trace.Load(); f != nil {
		(*f)(addr, n, write)
	}
}

// NewArena creates an arena spanning sizeBytes of untrusted address
// space starting at phys.HostBase. sizeBytes must be a power of two and
// at least MinBlock.
func NewArena(sizeBytes uint64) (*Arena, error) {
	b, err := NewBuddy(phys.HostBase, sizeBytes)
	if err != nil {
		return nil, err
	}
	return &Arena{chunks: make(map[uint64][]byte), alloc: b}, nil
}

// Alloc reserves n bytes of untrusted memory and returns its physical
// address. The returned region is zeroed.
func (a *Arena) Alloc(n uint64) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc.Alloc(n)
}

// Free releases a region previously returned by Alloc.
func (a *Arena) Free(addr uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc.Free(addr)
}

// AllocSize reports the usable size of an allocated block.
func (a *Arena) AllocSize(addr uint64) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc.BlockSize(addr)
}

// InUse returns the number of bytes currently allocated (rounded up to
// block granularity, as a real buddy allocator would report).
func (a *Arena) InUse() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc.InUse()
}

// WriteAt copies data into the arena at physical address addr.
func (a *Arena) WriteAt(addr uint64, data []byte) {
	a.observe(addr, len(data), true)
	for len(data) > 0 {
		c := a.chunkForWrite(addr)
		off := addr & (chunkSize - 1)
		n := copy(c[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// ReadAt copies bytes from the arena at addr into buf. Untouched memory
// reads as zero.
func (a *Arena) ReadAt(addr uint64, buf []byte) {
	a.observe(addr, len(buf), false)
	for len(buf) > 0 {
		off := addr & (chunkSize - 1)
		n := chunkSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		c := a.chunkForRead(addr)
		if c == nil {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		} else {
			copy(buf[:n], c[off:])
		}
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Slice returns a writable view of [addr, addr+n) when the range lies in
// a single chunk, materializing it if needed; otherwise it returns nil
// and the caller must fall back to ReadAt/WriteAt. It exists so sealing
// can encrypt directly into backing-store memory without extra copies.
func (a *Arena) Slice(addr uint64, n int) []byte {
	if n <= 0 || int(addr&(chunkSize-1))+n > chunkSize {
		return nil
	}
	c := a.chunkForWrite(addr)
	off := addr & (chunkSize - 1)
	return c[off : int(off)+n]
}

func (a *Arena) chunkForRead(addr uint64) []byte {
	a.mu.RLock()
	c := a.chunks[addr>>chunkShift]
	a.mu.RUnlock()
	return c
}

func (a *Arena) chunkForWrite(addr uint64) []byte {
	key := addr >> chunkShift
	a.mu.RLock()
	c := a.chunks[key]
	a.mu.RUnlock()
	if c != nil {
		return c
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c = a.chunks[key]; c == nil {
		c = make([]byte, chunkSize)
		a.chunks[key] = c
	}
	return c
}

// Footprint returns the bytes of host storage actually materialized.
func (a *Arena) Footprint() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return uint64(len(a.chunks)) * chunkSize
}

func (a *Arena) String() string {
	return fmt.Sprintf("arena[%d KiB in use, %d KiB resident]", a.InUse()>>10, a.Footprint()>>10)
}

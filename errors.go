package eleos

import (
	"errors"

	"eleos/internal/exitio"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// ErrConflictingOptions marks NewRuntime calls that both fix the worker
// pool size (WithRPCWorkers) and enable the self-tuning controller
// (WithWorkerBounds or WithAutoTune): a fixed pool and an adaptive pool
// are mutually exclusive, whichever order the options appear in. Match
// with errors.Is.
var ErrConflictingOptions = errors.New(
	"eleos: conflicting options: WithRPCWorkers fixes the pool size and disables autotuning, WithWorkerBounds/WithAutoTune adapt it")

// Sentinel errors of the runtime, re-exported from the internal
// packages that produce them so callers can match with errors.Is
// against the public module path alone.
var (
	// ErrOutOfEPC marks requests that exceed the machine's processor
	// reserved memory: a platform configured beyond the hardware PRM
	// limit, or an enclave page cache larger than the PRM can pin.
	ErrOutOfEPC = sgx.ErrOutOfEPC
	// ErrFreed marks use of a pointer whose allocation was freed or
	// whose segment was detached.
	ErrFreed = suvm.ErrFreed
	// ErrSegmentBusy marks attaching a segment that is mounted by
	// another enclave, or detaching one whose pages are still pinned.
	ErrSegmentBusy = suvm.ErrSegmentBusy
	// ErrPoolStopped marks exit-less calls issued against a runtime
	// whose RPC pool is not running (Runtime.Close already called).
	ErrPoolStopped = rpc.ErrStopped

	// Allocation and access errors of the SUVM heap.
	ErrOutOfRange  = suvm.ErrOutOfRange
	ErrBadConfig   = suvm.ErrBadConfig
	ErrCorrupt     = suvm.ErrCorrupt
	ErrNotDirect   = suvm.ErrNotDirect
	ErrDoubleFree  = suvm.ErrDoubleFree
	ErrBackingFull = suvm.ErrBackingFull
	// ErrCrossDomain marks a free that crossed a service-domain
	// boundary: the allocation is owned by a different service (or by
	// the enclave root) than the context that tried to free it.
	ErrCrossDomain = suvm.ErrCrossDomain

	// ErrCanceled marks the completion of a linked I/O op that never
	// ran because an earlier op in its chain failed. FirstErr skips
	// over these to the root cause; match individual CQEs with
	// errors.Is.
	ErrCanceled = exitio.ErrCanceled
)

// ErrCrossEnclave marks a CrossCall whose target service lives in a
// different enclave: the intra-enclave fast path cannot cross enclave
// boundaries — use exit-less RPC (Ctx.Exitless / Ctx.IO) instead.
// Match with errors.Is.
var ErrCrossEnclave = errors.New(
	"eleos: CrossCall target is in a different enclave (use exit-less RPC for cross-enclave calls)")

package suvm

import (
	"sync"

	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// tableShards is the number of independently locked buckets groups in
// the resident and metadata tables. The paper uses hash tables with a
// separate spin-lock per bucket (§4.1); sharding gives the same
// contention behaviour.
const tableShards = 64

// residentTable is the inverse page table of EPC++: it maps a
// backing-store page number to the frame caching it, and is consulted on
// every unlinked spointer access and every fault.
type residentTable struct {
	shards [tableShards]residentShard
}

type residentShard struct {
	//eleos:lockorder 30
	mu sync.Mutex
	m  map[uint64]int32
}

func newResidentTable() *residentTable {
	t := &residentTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]int32)
	}
	return t
}

func (t *residentTable) shard(bsPage uint64) *residentShard {
	return &t.shards[bsPage%tableShards]
}

// metaTable is the crypto-metadata page table: nonce and MAC for every
// sealed page (and per sub-page for direct allocations). It is accessed
// only during paging and direct accesses, and may grow fairly large —
// which is why its simulated residence (Heap.touchMeta) matters.
type metaTable struct {
	shards [tableShards]metaShard
}

type metaShard struct {
	//eleos:lockorder 60
	mu sync.Mutex
	m  map[uint64]*pageMeta
}

// pageMeta holds the sealing metadata of one backing-store page.
type pageMeta struct {
	present bool // a sealed blob exists in the backing store
	nonce   seal.Nonce
	tag     [seal.TagSize]byte
	subs    []subMeta // lazily sized; direct allocations only
}

type subMeta struct {
	present bool
	nonce   seal.Nonce
	tag     [seal.TagSize]byte
}

func newMetaTable() *metaTable {
	t := &metaTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*pageMeta)
	}
	return t
}

func (t *metaTable) shard(bsPage uint64) *metaShard {
	return &t.shards[bsPage%tableShards]
}

// get returns the metadata entry for bsPage, creating it if create is
// set. Caller must hold the shard lock.
func (s *metaShard) get(bsPage uint64, create bool) *pageMeta {
	m := s.m[bsPage]
	if m == nil && create {
		m = &pageMeta{}
		s.m[bsPage] = m
	}
	return m
}

// lockCost charges one spin-lock acquire/release pair, the model cost of
// the paper's per-bucket spin-locks.
func (h *Heap) lockCost(th *sgx.Thread) { th.T.Charge(h.model.SpinLock) }

// touchIPT simulates the in-EPC residence of the inverse page table:
// one 16-byte entry per lookup, at the page's hash slot. Because the
// table is small and hot it normally stays LLC- and PRM-resident; the
// charge is the entry's cache behaviour, not a constant.
func (h *Heap) touchIPT(th *sgx.Thread, bsPage uint64) {
	var e [iptEntryBytes]byte
	th.Read(h.iptBase+(bsPage%h.iptSlots)*iptEntryBytes, e[:])
}

// touchMeta simulates the in-EPC residence of the crypto-metadata table
// entry for bsPage. The region grows with the backing store (one chunk
// per metaChunkPages pages), so working sets far beyond PRM push parts
// of it out of secure memory and its accesses start hardware-faulting —
// the paper's observation that SUVM metadata is paged by native SGX
// (§4.2) and the cause of the Fig 7a dropoff past 1 GiB.
func (h *Heap) touchMeta(th *sgx.Thread, bsPage uint64, write bool) {
	chunk := bsPage / metaChunkPages
	h.metaMu.Lock()
	base, ok := h.metaBase[chunk]
	if !ok {
		base = h.encl.Alloc(metaChunkPages * metaEntryBytes)
		h.metaBase[chunk] = base
	}
	h.metaMu.Unlock()
	addr := base + (bsPage%metaChunkPages)*metaEntryBytes
	var e [metaEntryBytes]byte
	if write {
		th.Write(addr, e[:])
	} else {
		th.Read(addr, e[:])
	}
}

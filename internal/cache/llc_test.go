package cache

import (
	"testing"

	"eleos/internal/cycles"
	"eleos/internal/phys"
)

func newLLC(t testing.TB) (*LLC, *cycles.Thread) {
	t.Helper()
	m := cycles.DefaultModel()
	return New(m, Config{EPCLimit: phys.EPCLimit}), cycles.NewThread(1, m)
}

func TestHitAfterMiss(t *testing.T) {
	c, th := newLLC(t)
	if c.Access(th, CoSDefault, phys.HostBase, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(th, CoSDefault, phys.HostBase, false) {
		t.Fatal("warm access missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMissCostsFollowModel(t *testing.T) {
	c, th := newLLC(t)
	m := th.Model()

	cases := []struct {
		paddr uint64
		write bool
		want  uint64
	}{
		{phys.HostBase, false, m.DRAMMiss},
		{phys.HostBase + 64, true, m.DRAMMiss},
		{0, false, uint64(float64(m.DRAMMiss) * m.EPCReadMult)},
		{64, true, uint64(float64(m.DRAMMiss) * m.EPCWriteMult)},
	}
	for _, tc := range cases {
		before := th.Cycles()
		c.Access(th, CoSEnclave, tc.paddr, tc.write)
		if got := th.Cycles() - before; got != tc.want {
			t.Fatalf("miss at %#x write=%v charged %d, want %d", tc.paddr, tc.write, got, tc.want)
		}
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c, th := newLLC(t)
	ways := c.Ways()
	set := uint64(5)
	line := func(i int) uint64 {
		return phys.HostBase + (set+uint64(i)*uint64(c.Sets()))*LineSize
	}
	// Fill the set, touch line 0 again, then overflow by one: the LRU
	// victim must be line 1, not the recently-touched line 0.
	for i := 0; i < ways; i++ {
		c.Access(th, CoSDefault, line(i), false)
	}
	c.Access(th, CoSDefault, line(0), false)
	c.Access(th, CoSDefault, line(ways), false) // evicts line 1
	if !c.Access(th, CoSDefault, line(0), false) {
		t.Fatal("recently used line evicted")
	}
	if c.Access(th, CoSDefault, line(1), false) {
		t.Fatal("LRU line survived overflow")
	}
}

func TestPartitioningBoundsRPCOccupancy(t *testing.T) {
	c, th := newLLC(t)
	c.EnablePartitioning(4)
	set := uint64(9)
	line := func(i int) uint64 {
		return phys.HostBase + (set+uint64(i)*uint64(c.Sets()))*LineSize
	}
	// The RPC class streams 32 distinct lines of one set; only its 4
	// ways may hold them, so at most 4 can hit on a re-pass.
	for i := 0; i < 32; i++ {
		c.Access(th, CoSRPC, line(i), false)
	}
	hits := 0
	for i := 0; i < 32; i++ {
		if c.Access(th, CoSRPC, line(i), false) {
			hits++
		}
	}
	if hits > 4 {
		t.Fatalf("RPC class holds %d lines of one set with a 4-way mask", hits)
	}
	// The enclave class must still be able to cache 12 lines.
	for i := 100; i < 112; i++ {
		c.Access(th, CoSEnclave, line(i), false)
	}
	hits = 0
	for i := 100; i < 112; i++ {
		if c.Access(th, CoSEnclave, line(i), false) {
			hits++
		}
	}
	if hits != 12 {
		t.Fatalf("enclave class retained %d of its 12 lines", hits)
	}
}

func TestAccessRangeAmortizesMisses(t *testing.T) {
	c, th := newLLC(t)
	m := th.Model()
	// One cold 4KiB range: misses overlap up to StreamMLP deep.
	before := th.Cycles()
	c.AccessRange(th, CoSDefault, phys.HostBase+1<<20, 4096, false)
	bulk := th.Cycles() - before
	perLine := bulk / 64
	if perLine >= m.DRAMMiss {
		t.Fatalf("bulk miss cost %d/line not amortized (full latency %d)", perLine, m.DRAMMiss)
	}
	// A single cold line pays full latency.
	before = th.Cycles()
	c.AccessRange(th, CoSDefault, phys.HostBase+2<<20, 8, false)
	single := th.Cycles() - before
	if single != m.L1Hit+m.DRAMMiss {
		t.Fatalf("single-line range charged %d, want %d", single, m.L1Hit+m.DRAMMiss)
	}
}

func TestInstallRangeChargesHitLevel(t *testing.T) {
	c, th := newLLC(t)
	m := th.Model()
	before := th.Cycles()
	c.InstallRange(th, CoSEnclave, 0, 4096)
	if got, want := th.Cycles()-before, 64*(m.L1Hit+m.LLCHit); got != want {
		t.Fatalf("install charged %d, want %d", got, want)
	}
	// Installed lines are present afterwards.
	if !c.Access(th, CoSEnclave, 0, false) {
		t.Fatal("installed line missing")
	}
}

func TestInvalidate(t *testing.T) {
	c, th := newLLC(t)
	c.Access(th, CoSDefault, phys.HostBase, false)
	c.Invalidate()
	if c.Access(th, CoSDefault, phys.HostBase, false) {
		t.Fatal("line survived Invalidate")
	}
}

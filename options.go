package eleos

import (
	"time"

	"eleos/internal/sgx"
)

// MachineConfig configures the simulated SGX platform (PRM size, LLC
// geometry, cost model); the zero value selects the paper's testbed.
type MachineConfig = sgx.Config

// Option configures a Runtime. Options are applied in order over
// DefaultConfig, so later options win. A Config value is itself an
// Option (it replaces the whole configuration), which keeps the
// original NewRuntime(cfg Config) call sites compiling unchanged:
//
//	rt, _ := eleos.NewRuntime(
//		eleos.WithRPCWorkers(4),
//		eleos.WithCATWays(4),
//	)
type Option interface {
	applyOption(*Config)
}

// applyOption makes Config an Option: passing a Config replaces the
// entire configuration, exactly like the pre-options NewRuntime(cfg).
func (c Config) applyOption(dst *Config) { *dst = c }

type optionFunc func(*Config)

func (f optionFunc) applyOption(c *Config) { f(c) }

// WithRPCWorkers sizes the untrusted RPC worker pool (and with it the
// number of ring shards) as a fixed pool: autotuning stays disabled and
// the pool never changes size. Mutually exclusive with WithWorkerBounds
// and WithAutoTune — combining them makes NewRuntime fail with
// ErrConflictingOptions, in either order.
func WithRPCWorkers(n int) Option {
	return optionFunc(func(c *Config) {
		c.RPCWorkers = n
		c.AutoTune = false
		c.fixedWorkers = true
	})
}

// WithWorkerBounds enables the self-tuning controller with the default
// policy and the given worker-pool bounds: the pool starts at min and
// the controller grows and shrinks it inside [min, max] as the offered
// load shifts. Mutually exclusive with WithRPCWorkers.
func WithWorkerBounds(min, max int) Option {
	return optionFunc(func(c *Config) {
		c.AutoTune = true
		c.Tune.MinWorkers = min
		c.Tune.MaxWorkers = max
		c.tuneRequested = true
	})
}

// WithAutoTune enables the self-tuning controller with an explicit
// policy (zero fields take the tune defaults; the zero policy is
// exactly WithWorkerBounds(1, 8)). Mutually exclusive with
// WithRPCWorkers.
func WithAutoTune(p TunePolicy) Option {
	return optionFunc(func(c *Config) {
		c.AutoTune = true
		c.Tune = p
		c.tuneRequested = true
	})
}

// WithFleetBalloon enables the fleet-scale adaptive EPC++ balloon
// controller: every enclave the runtime creates becomes a tenant, and
// as serving loops drive Ctx.Pump the controller rebalances PRM shares
// from each heap's live demand signals — installing them through the
// driver's SetEPCShares ioctl and ballooning the heaps to match —
// instead of leaving every enclave chasing the static even split. Zero
// policy fields take the fleet package defaults.
func WithFleetBalloon(p FleetPolicy) Option {
	return optionFunc(func(c *Config) {
		c.FleetBalloon = true
		c.Fleet = p
	})
}

// WithCATWays reserves n LLC ways for the RPC workers via cache
// allocation technology; 0 disables partitioning.
func WithCATWays(n int) Option {
	return optionFunc(func(c *Config) { c.CATWays = n })
}

// WithMachine selects the simulated machine.
func WithMachine(m MachineConfig) Option {
	return optionFunc(func(c *Config) { c.Machine = m })
}

// WithRPCRing overrides the total RPC queue capacity, split across the
// worker shards (0 keeps the default of 256 slots).
func WithRPCRing(capacity int) Option {
	return optionFunc(func(c *Config) { c.RPCRing = capacity })
}

// EnclaveOption configures one enclave (its SUVM heap and swapper) in
// NewEnclave, applied in order over the EnclaveConfig argument.
type EnclaveOption interface {
	applyEnclaveOption(*EnclaveConfig)
}

type enclaveOptionFunc func(*EnclaveConfig)

func (f enclaveOptionFunc) applyEnclaveOption(c *EnclaveConfig) { f(c) }

// WithEvictionPolicy selects the EPC++ eviction policy (§3.2.4 — SUVM
// exposes the policy to the application; default PolicyClock).
func WithEvictionPolicy(p EvictionPolicy) EnclaveOption {
	return enclaveOptionFunc(func(c *EnclaveConfig) { c.Heap.Policy = p })
}

// WithPageCache sizes EPC++ in bytes.
func WithPageCache(n uint64) EnclaveOption {
	return enclaveOptionFunc(func(c *EnclaveConfig) { c.PageCacheBytes = n })
}

// WithSUVMPageSize sets the EPC++ page size (power of two, 512..64 KiB).
func WithSUVMPageSize(n int) EnclaveOption {
	return enclaveOptionFunc(func(c *EnclaveConfig) { c.Heap.PageSize = n })
}

// WithSwapperInterval starts the background swapper thread at the given
// wall-clock period.
func WithSwapperInterval(d time.Duration) EnclaveOption {
	return enclaveOptionFunc(func(c *EnclaveConfig) {
		c.SwapperInterval = d
		c.ManualSwapper = false
	})
}

// WithManualSwapper creates the swapper in manual (deterministic) mode:
// no background goroutine; drive it with Enclave.Swapper().TickNow().
func WithManualSwapper() EnclaveOption {
	return enclaveOptionFunc(func(c *EnclaveConfig) {
		c.ManualSwapper = true
		c.SwapperInterval = 0
	})
}

// ServiceOption configures one carved service in Enclave.NewService,
// applied in order.
type ServiceOption interface {
	applyServiceOption(*serviceConfig)
}

type serviceConfig struct {
	epcBytes     uint64
	backingQuota uint64
	policy       EvictionPolicy
	seed         uint64
}

type serviceOptionFunc func(*serviceConfig)

func (f serviceOptionFunc) applyServiceOption(c *serviceConfig) { f(c) }

// WithServiceEPC sets the service's EPC++ share in bytes, carved out of
// the enclave's page cache. Required.
func WithServiceEPC(n uint64) ServiceOption {
	return serviceOptionFunc(func(c *serviceConfig) { c.epcBytes = n })
}

// WithServiceBacking caps the service's total backing-store allocation
// in bytes (0 = unlimited). A fairness knob for the shared untrusted
// backing region, not a PRM limit.
func WithServiceBacking(n uint64) ServiceOption {
	return serviceOptionFunc(func(c *serviceConfig) { c.backingQuota = n })
}

// WithServicePolicy selects the service domain's EPC++ eviction policy
// (default PolicyClock) — the per-service half of §3.2.4's
// application-controlled eviction.
func WithServicePolicy(p EvictionPolicy) ServiceOption {
	return serviceOptionFunc(func(c *serviceConfig) { c.policy = p })
}

// WithServiceSeed seeds the service's PolicyRandom evictor (default 1).
func WithServiceSeed(seed uint64) ServiceOption {
	return serviceOptionFunc(func(c *serviceConfig) { c.seed = seed })
}

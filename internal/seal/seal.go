// Package seal implements the page sealing scheme used by both the
// simulated SGX hardware paging (EWB/ELDU) and by SUVM's software
// paging: AES-GCM encryption with a fresh random-start counter nonce per
// seal, with the nonce kept in trusted memory by the caller so that
// replaying a stale ciphertext fails authentication (freshness), and a
// 128-bit GCM tag appended to the ciphertext (integrity).
//
// The cryptography is real — tampered or replayed pages genuinely fail
// to open — while the cycle cost charged to the simulated thread follows
// the AES-NI cost model rather than host wall-clock time.
//
// Trust domain: seal is trusted enclave code and, with suvm, one of the
// two sanctioned facades through which trusted code may touch raw
// untrusted host memory (ciphertext lands there by design). The cycle
// model is deterministic; the crypto nonces draw from crypto/rand,
// which affects ciphertext bytes but never cycle charges.
//
//eleos:trusted
//eleos:facade
//eleos:deterministic
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"eleos/internal/cycles"
)

// NonceSize is the AES-GCM nonce length in bytes.
const NonceSize = 12

// TagSize is the GCM authentication tag length in bytes.
const TagSize = 16

// Overhead is the ciphertext expansion of one sealed blob.
const Overhead = TagSize

// ErrCorrupt is returned when a sealed blob fails authentication:
// either the ciphertext was tampered with, or a stale blob was replayed
// against a newer trusted nonce.
var ErrCorrupt = errors.New("seal: authentication failed (tampered or replayed data)")

// Nonce is the per-seal nonce kept in trusted memory.
type Nonce [NonceSize]byte

// Sealer seals and opens fixed-key blobs. The key corresponds to the
// paper's "random per-application key stored in the EPC". A Sealer is
// safe for concurrent use: nonce generation is atomic and cipher.AEAD
// is stateless.
type Sealer struct {
	model *cycles.Model
	aead  cipher.AEAD
	// nonce = base (4 bytes) || counter (8 bytes); counter increments
	// per seal so nonces never repeat under one key.
	base    [4]byte
	counter atomic.Uint64
}

// New creates a Sealer with a fresh random 128-bit key, as done at
// enclave start. The model may be nil, in which case no cycles are
// charged (useful for tests that only exercise the crypto).
func New(model *cycles.Model) (*Sealer, error) {
	var key [16]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("seal: generating key: %w", err)
	}
	return NewWithKey(model, key[:])
}

// NewWithKey creates a Sealer over the provided AES key (16, 24 or 32
// bytes). Intended for tests that need reproducible ciphertexts.
func NewWithKey(model *cycles.Model, key []byte) (*Sealer, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seal: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: creating GCM: %w", err)
	}
	s := &Sealer{model: model, aead: aead}
	if _, err := rand.Read(s.base[:]); err != nil {
		return nil, fmt.Errorf("seal: generating nonce base: %w", err)
	}
	return s, nil
}

// Seal encrypts and authenticates plaintext, binding it to aad (callers
// pass the page's backing-store address so blobs cannot be swapped
// between locations). It returns the fresh nonce — which the caller must
// keep in trusted memory — and the ciphertext with the tag appended,
// written into dst if it has sufficient capacity. The cycle cost is
// charged to th if both th and the model are non-nil.
func (s *Sealer) Seal(th *cycles.Thread, dst, plaintext, aad []byte) (Nonce, []byte) {
	var n Nonce
	copy(n[:4], s.base[:])
	binary.LittleEndian.PutUint64(n[4:], s.counter.Add(1))
	ct := s.aead.Seal(dst[:0], n[:], plaintext, aad)
	s.charge(th, len(plaintext))
	return n, ct
}

// Open decrypts and verifies a blob sealed with nonce n and associated
// data aad, appending the plaintext to dst[:0]. It returns ErrCorrupt if
// authentication fails.
func (s *Sealer) Open(th *cycles.Thread, dst, ciphertext, aad []byte, n Nonce) ([]byte, error) {
	pt, err := s.aead.Open(dst[:0], n[:], ciphertext, aad)
	if err != nil {
		return nil, ErrCorrupt
	}
	s.charge(th, len(pt))
	return pt, nil
}

// Cost returns the modelled cycle cost of sealing or opening n bytes,
// without performing any work. Used by analytic paths in the harness.
func (s *Sealer) Cost(n int) uint64 {
	if s.model == nil {
		return 0
	}
	return s.model.AESCycles(n)
}

func (s *Sealer) charge(th *cycles.Thread, n int) {
	if th != nil && s.model != nil {
		th.Charge(s.model.AESCycles(n))
	}
}

// SealedLen returns the ciphertext length for a plaintext of n bytes.
func SealedLen(n int) int { return n + Overhead }

// AddrAAD encodes a backing-store address as associated data, binding a
// sealed page to its location.
func AddrAAD(addr uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	return b[:]
}

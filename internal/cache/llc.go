// Package cache models the shared last-level cache of the simulated
// Skylake machine: a physically-indexed set-associative cache with
// pseudo-LRU replacement, Intel CAT-style way partitioning between
// classes of service, and memory-encryption-engine amplification of
// miss costs for lines that live in the enclave page cache (EPC).
//
// The model tracks tags only; data movement is performed by the callers
// on their own buffers. Its job is to charge the right number of cycles
// per line touched and to reproduce occupancy effects: cache pollution
// by system-call I/O buffers (Fig 2a/6b of the paper) and the reduced
// effective capacity available to enclaves.
//
// Cycle-charged and checked by eleoslint for determinism.
//
//eleos:deterministic
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/cycles"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// CoS identifies a class of service for CAT way partitioning.
type CoS uint8

// Predefined classes of service. With partitioning disabled all classes
// may allocate into every way; EnablePartitioning restricts allocation
// per class while lookups always search all ways, as real CAT does.
const (
	CoSDefault CoS = iota // untrusted application code
	CoSEnclave            // enclave threads
	CoSRPC                // Eleos RPC worker threads
	numCoS
)

// Stats is a snapshot of the aggregate access counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	EPCMisses uint64
	Evictions uint64
}

type atomicStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	epcMisses atomic.Uint64
	evictions atomic.Uint64
}

type line struct {
	tag   uint64
	valid bool
	lru   uint32 // per-set sequence number; smaller = older
}

type set struct {
	lines []line
	seq   uint32
}

// shardCount is the number of independently locked LLC shards. Sets are
// distributed across shards so concurrent simulated threads do not
// serialize on a single lock.
const shardCount = 16

type shard struct {
	mu   sync.Mutex
	sets []set
}

// LLC is the shared last-level cache model. It is safe for concurrent
// use by multiple goroutines.
type LLC struct {
	model    *cycles.Model
	ways     int
	numSets  int
	shards   [shardCount]shard
	masks    [numCoS]uint64 // bit i set => way i allocatable
	partMu   sync.RWMutex
	stats    atomicStats
	epcLimit uint64 // physical addresses below this are EPC
}

// Config describes the cache geometry.
type Config struct {
	// SizeBytes is the total capacity (default 8 MiB).
	SizeBytes int
	// Ways is the associativity (default 16).
	Ways int
	// EPCLimit is the exclusive upper bound of the EPC physical range;
	// misses on addresses below it pay the MEE amplification.
	EPCLimit uint64
}

// New creates an LLC with the given geometry over the cost model.
func New(m *cycles.Model, cfg Config) *LLC {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 8 << 20
	}
	if cfg.Ways == 0 {
		cfg.Ways = 16
	}
	numSets := cfg.SizeBytes / (LineSize * cfg.Ways)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a positive power of two", numSets))
	}
	c := &LLC{
		model:    m,
		ways:     cfg.Ways,
		numSets:  numSets,
		epcLimit: cfg.EPCLimit,
	}
	perShard := numSets / shardCount
	if perShard == 0 {
		perShard = 1
	}
	for i := range c.shards {
		sets := make([]set, perShard)
		for j := range sets {
			sets[j].lines = make([]line, cfg.Ways)
		}
		c.shards[i].sets = sets
	}
	allWays := (uint64(1) << uint(cfg.Ways)) - 1
	for i := range c.masks {
		c.masks[i] = allWays
	}
	return c
}

// EnablePartitioning applies the Eleos CAT split: the RPC class of
// service may allocate only into rpcWays ways, and the enclave class
// into the remaining ways. The default class keeps all ways.
func (c *LLC) EnablePartitioning(rpcWays int) {
	if rpcWays <= 0 || rpcWays >= c.ways {
		panic(fmt.Sprintf("cache: rpcWays %d out of range (1..%d)", rpcWays, c.ways-1))
	}
	c.partMu.Lock()
	defer c.partMu.Unlock()
	rpcMask := (uint64(1) << uint(rpcWays)) - 1
	c.masks[CoSRPC] = rpcMask
	c.masks[CoSEnclave] = ((uint64(1) << uint(c.ways)) - 1) &^ rpcMask
}

// DisablePartitioning restores the default all-ways masks.
func (c *LLC) DisablePartitioning() {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	allWays := (uint64(1) << uint(c.ways)) - 1
	for i := range c.masks {
		c.masks[i] = allWays
	}
}

// probe looks the line up and installs it on a miss (allocating within
// the class's way mask). It performs no cycle charging; Access and
// AccessRange wrap it with the appropriate cost.
func (c *LLC) probe(cos CoS, paddr uint64, write bool) (hit bool) {
	lineAddr := paddr / LineSize
	setIdx := lineAddr % uint64(c.numSets)
	sh := &c.shards[setIdx%shardCount]
	localIdx := (setIdx / shardCount) % uint64(len(sh.sets))
	epc := paddr < c.epcLimit

	c.partMu.RLock()
	mask := c.masks[cos]
	c.partMu.RUnlock()

	sh.mu.Lock()
	s := &sh.sets[localIdx]
	s.seq++
	// Lookup searches every way regardless of the CoS mask.
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].tag == lineAddr {
			s.lines[i].lru = s.seq
			sh.mu.Unlock()
			c.stats.hits.Add(1)
			return true
		}
	}
	// Miss: allocate within the class's way mask, evicting the LRU line
	// among allowed ways (or filling an invalid allowed way first).
	victim, victimSeq, evicted := -1, ^uint32(0), false
	for i := range s.lines {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !s.lines[i].valid {
			victim, evicted = i, false
			break
		}
		if s.lines[i].lru <= victimSeq {
			victim, victimSeq, evicted = i, s.lines[i].lru, true
		}
	}
	if victim >= 0 {
		s.lines[victim] = line{tag: lineAddr, valid: true, lru: s.seq}
	}
	sh.mu.Unlock()

	c.stats.misses.Add(1)
	if epc {
		c.stats.epcMisses.Add(1)
	}
	if evicted {
		c.stats.evictions.Add(1)
	}
	return false
}

// Access simulates one cache-line access at physical address paddr and
// charges the full hit or miss latency to t. write selects the store
// path (EPC write misses are costlier than reads, Table 1). It returns
// true on a hit.
func (c *LLC) Access(t *cycles.Thread, cos CoS, paddr uint64, write bool) bool {
	if c.probe(cos, paddr, write) {
		t.Charge(c.model.LLCHit)
		return true
	}
	t.Charge(c.model.EPCMissCycles(write, paddr < c.epcLimit))
	return false
}

// AccessRange simulates touching every cache line in [paddr, paddr+n).
// It additionally charges the L1-level per-line floor cost, so that even
// all-hit copies are not free. Bulk transfers overlap their misses: the
// miss penalty is amortized over min(StreamMLP, lines) outstanding
// requests, so a 4 KiB page copy costs what a streamed copy costs on
// real hardware rather than lines times the full miss latency. A
// single-line access always pays full latency — which is what Table 1's
// random-access microbenchmark measures.
func (c *LLC) AccessRange(t *cycles.Thread, cos CoS, paddr uint64, n int, write bool) {
	if n <= 0 {
		return
	}
	first := paddr / LineSize
	last := (paddr + uint64(n) - 1) / LineSize
	mlp := c.model.StreamMLP
	if mlp == 0 {
		mlp = 1
	}
	if lines := last - first + 1; lines < mlp {
		mlp = lines
	}
	epcRegion := paddr < c.epcLimit
	for la := first; la <= last; la++ {
		t.Charge(c.model.L1Hit)
		if c.probe(cos, la*LineSize, write) {
			t.Charge(c.model.LLCHit)
		} else {
			t.Charge(c.model.EPCMissCycles(write, epcRegion) / mlp)
		}
	}
}

// InstallRange installs the lines of [paddr, paddr+n) into the cache,
// charging only the hit-level cost per line. It models stores whose miss
// handling is fully overlapped with the producing computation (e.g. the
// AES-GCM output stream of a SUVM page-in filling a whole page), where a
// write-allocate fetch would be pure waste.
func (c *LLC) InstallRange(t *cycles.Thread, cos CoS, paddr uint64, n int) {
	if n <= 0 {
		return
	}
	first := paddr / LineSize
	last := (paddr + uint64(n) - 1) / LineSize
	for la := first; la <= last; la++ {
		t.Charge(c.model.L1Hit + c.model.LLCHit)
		c.probe(cos, la*LineSize, true)
	}
}

// Stats returns a snapshot of the aggregate counters.
func (c *LLC) Stats() Stats {
	return Stats{
		Hits:      c.stats.hits.Load(),
		Misses:    c.stats.misses.Load(),
		EPCMisses: c.stats.epcMisses.Load(),
		Evictions: c.stats.evictions.Load(),
	}
}

// Invalidate drops every cached line (benchmark hygiene between
// measurement phases; real experiments get the same effect from the
// wbinvd they run between configurations).
func (c *LLC) Invalidate() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := range sh.sets {
			for k := range sh.sets[j].lines {
				sh.sets[j].lines[k].valid = false
			}
		}
		sh.mu.Unlock()
	}
}

// ResetStats zeroes the aggregate counters.
func (c *LLC) ResetStats() {
	c.stats.hits.Store(0)
	c.stats.misses.Store(0)
	c.stats.epcMisses.Store(0)
	c.stats.evictions.Store(0)
}

// Ways returns the associativity.
func (c *LLC) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.numSets }

// SizeBytes returns the total capacity.
func (c *LLC) SizeBytes() int { return c.numSets * c.ways * LineSize }

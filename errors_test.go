package eleos

import (
	"errors"
	"testing"
)

// Every sentinel must be matchable with errors.Is through the public
// API alone, end to end from the operation that produces it.
func TestSentinelErrorsEndToEnd(t *testing.T) {
	rt := newRuntime(t)

	// ErrOutOfEPC: a page cache far beyond the machine's PRM.
	if _, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 40}); !errors.Is(err, ErrOutOfEPC) {
		t.Fatalf("oversized page cache error = %v, want ErrOutOfEPC", err)
	}

	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	// ErrFreed: the pointer is poisoned by Free; later use and a double
	// free both report it.
	p, err := ctx.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadAt(0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after free error = %v, want ErrFreed", err)
	}
	if err := p.WriteAt(0, []byte("x")); !errors.Is(err, ErrFreed) {
		t.Fatalf("write after free error = %v, want ErrFreed", err)
	}
	if err := p.Free(); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free error = %v, want ErrFreed", err)
	}

	// ErrSegmentBusy: a segment mounted by one enclave refuses a second
	// mount until it is detached.
	other, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Destroy()
	ctxB := other.NewContext()
	defer ctxB.Close()
	seg, err := rt.NewSegment(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := ctx.Attach(seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctxB.Attach(seg); !errors.Is(err, ErrSegmentBusy) {
		t.Fatalf("double attach error = %v, want ErrSegmentBusy", err)
	}
	if err := ctx.Detach(pa); err != nil {
		t.Fatal(err)
	}
	if pb, err := ctxB.Attach(seg); err != nil {
		t.Fatal(err)
	} else if err := ctxB.Detach(pb); err != nil {
		t.Fatal(err)
	}
	// The detached pointer is poisoned too.
	if err := pa.ReadAt(0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after detach error = %v, want ErrFreed", err)
	}
}

// ErrPoolStopped: exit-less calls against a closed runtime fail with a
// matchable sentinel at the pool level.
func TestPoolStoppedAfterClose(t *testing.T) {
	rt, err := NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	rt.Close()
	if err := rt.Pool().Call(ctx.Thread(), func(h *HostCtx) {}); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("Call on closed runtime = %v, want ErrPoolStopped", err)
	}
	if _, err := rt.Pool().CallAsync(ctx.Thread(), func(h *HostCtx) {}); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("CallAsync on closed runtime = %v, want ErrPoolStopped", err)
	}

	// The panicking convenience wrappers surface the closure too.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Exitless on a closed runtime did not panic")
			}
		}()
		ctx.Exitless(func(h *HostCtx) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Go on a closed runtime did not panic")
			}
		}()
		ctx.Go(func(h *HostCtx) {})
	}()
}

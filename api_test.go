package eleos

import (
	"sync/atomic"
	"testing"
)

// The three ways to configure a Runtime — no arguments, a classic
// Config value, and functional options — must agree where they overlap.
func TestNewRuntimeConfigurationStyles(t *testing.T) {
	// No arguments: the paper's defaults.
	rt, err := NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Pool().Workers()); got != 2 {
		t.Fatalf("default worker count = %d, want 2", got)
	}
	rt.Close()

	// Classic Config value, still accepted as the sole argument.
	rt, err = NewRuntime(Config{RPCWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Pool().Workers()); got != 3 {
		t.Fatalf("Config{RPCWorkers: 3} worker count = %d", got)
	}
	rt.Close()

	// Functional options, applied in order over the defaults.
	rt, err = NewRuntime(
		WithRPCWorkers(4),
		WithCATWays(0),
		WithRPCRing(64),
		WithMachine(MachineConfig{UsablePRMBytes: 8 << 20}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := len(rt.Pool().Workers()); got != 4 {
		t.Fatalf("WithRPCWorkers(4) worker count = %d", got)
	}
	defFrames := func() int {
		d, err := NewRuntime()
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		return d.Platform().Driver.NumFrames()
	}()
	if got := rt.Platform().Driver.NumFrames(); got >= defFrames {
		t.Fatalf("WithMachine(8MiB PRM) frames = %d, not below default %d", got, defFrames)
	}
}

// A later option overrides an earlier one, and a Config argument
// replaces everything applied before it.
func TestOptionOrdering(t *testing.T) {
	rt, err := NewRuntime(WithRPCWorkers(8), WithRPCWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Pool().Workers()); got != 1 {
		t.Fatalf("later option did not win: %d workers", got)
	}
	rt.Close()

	rt, err = NewRuntime(WithRPCWorkers(8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := len(rt.Pool().Workers()); got != 2 {
		t.Fatalf("Config argument did not replace prior options: %d workers", got)
	}
}

// Ctx.Go and Ctx.ExitlessBatch are exit-less like Ctx.Exitless: the
// calls run on untrusted workers, the futures complete, and the enclave
// never exits.
func TestCtxGoAndBatchAreExitless(t *testing.T) {
	rt, err := NewRuntime(WithRPCWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, err := ctx.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteAt(0, []byte("warm")); err != nil { // first touch faults the page in
		t.Fatal(err)
	}
	exits0, _, _, _, _ := encl.Raw().Stats().Snapshot()
	var ran atomic.Int64

	fut := ctx.Go(func(h *HostCtx) {
		h.Syscall(nil)
		ran.Add(1)
	})
	// Overlapped enclave compute while the worker runs the call.
	if err := p.WriteAt(0, []byte("overlapped")); err != nil {
		t.Fatal(err)
	}
	fut.Wait()
	if !fut.Done() || ran.Load() != 1 {
		t.Fatalf("future done=%v ran=%d", fut.Done(), ran.Load())
	}
	if fut.Raw() == nil {
		t.Fatal("Raw future not exposed")
	}
	fut.Wait() // idempotent

	batchFn := func(h *HostCtx) {
		h.Syscall(nil)
		ran.Add(1)
	}
	ctx.ExitlessBatch(batchFn, batchFn, batchFn, batchFn)
	if ran.Load() != 5 {
		t.Fatalf("batch ran %d of 4 calls", ran.Load()-1)
	}

	exits1, _, _, _, _ := encl.Raw().Stats().Snapshot()
	if exits1 != exits0 {
		t.Fatalf("async/batch calls caused %d enclave exits", exits1-exits0)
	}

	st := rt.Stats().RPC
	if st.AsyncCalls != 1 || st.Batches != 1 || st.BatchedCalls != 4 {
		t.Fatalf("pool counters %+v", st)
	}
}

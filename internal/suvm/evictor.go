package suvm

import "sync"

// This file holds the frame-supply side of the fault pipeline: the
// sharded free-frame pool takeFrame drains, and the eviction policies
// behind the evictor interface. Each policy owns its cursor/RNG state
// under its own small lock, so victim selection by one thread never
// blocks another thread's page-in — only two pickers racing each other
// serialize, briefly, on the policy lock.

// freeShards is the number of independently locked free-frame stacks.
const freeShards = 8

// framePool is the EPC++ free list, sharded so that concurrent faults
// refilling from and returning to the pool do not serialize. Frames are
// homed to shards by contiguous index ranges and each shard is a stack
// kept in descending order at init, so a single thread draining the
// pool receives frames 0, 1, 2, … — the exact order the pre-pipeline
// global stack produced, which matters because the frame index picks
// the frame's virtual address and with it its LLC set behaviour.
//
// That order equivalence holds only for the initial drain (and thus for
// every swapper-less run, which never puts a frame back: takeFrame
// consumes victims directly). Once the swapper's ReclaimFreePool
// returns frames to their *home* shards, take's low-to-high shard scan
// hands them out in a different order than the old global stack's pure
// LIFO would have. Runs that mix faults with reclaim ticks are still
// deterministic — pinned by the swapper-interleaved golden fingerprint
// — but against a pipeline-era baseline, not the pre-refactor seed.
type framePool struct {
	start int32 // first frame index homed to shard 0 (0 for the root pool)
	per   int   // frames per shard (last shard may be short)

	shards [freeShards]freeShard
}

type freeShard struct {
	//eleos:lockorder 50
	mu     sync.Mutex
	frames []int32
}

// newFramePool builds the free pool for the frame range
// [start, start+count). The root pool covers [0, maxFrames); a carved
// domain's pool covers its own contiguous slice of the heap's frames,
// with the same descending-init drain-order guarantee relative to its
// range start.
func newFramePool(start, count int) *framePool {
	p := &framePool{start: int32(start), per: (count + freeShards - 1) / freeShards}
	for i := start + count - 1; i >= start; i-- {
		s := &p.shards[p.home(int32(i))]
		s.frames = append(s.frames, int32(i))
	}
	return p
}

func (p *framePool) home(f int32) int {
	h := int(f-p.start) / p.per
	if h >= freeShards {
		h = freeShards - 1
	}
	return h
}

// take pops a free frame. The first sweep skips contended shards so a
// page-in never waits behind another thread's pool operation; the
// second sweep locks, so a frame present in the pool is always found.
func (p *framePool) take() (int32, bool) {
	for i := range p.shards {
		s := &p.shards[i]
		if !s.mu.TryLock() {
			continue
		}
		if n := len(s.frames); n > 0 {
			f := s.frames[n-1]
			s.frames = s.frames[:n-1]
			s.mu.Unlock()
			return f, true
		}
		s.mu.Unlock()
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		if n := len(s.frames); n > 0 {
			f := s.frames[n-1]
			s.frames = s.frames[:n-1]
			s.mu.Unlock()
			return f, true
		}
		s.mu.Unlock()
	}
	return -1, false
}

// put returns a frame to its home shard.
func (p *framePool) put(f int32) {
	s := &p.shards[p.home(f)]
	s.mu.Lock()
	s.frames = append(s.frames, f)
	s.mu.Unlock()
}

// size reports the number of pooled frames (racy by nature; used for
// the swapper's refill target).
func (p *framePool) size() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// filter drops every pooled frame for which keep returns false
// (ballooning removes disabled frames this way). Called only from the
// exclusive resize epoch.
func (p *framePool) filter(keep func(int32) bool) {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		kept := s.frames[:0]
		for _, f := range s.frames {
			if keep(f) {
				kept = append(kept, f)
			}
		}
		s.frames = kept
		s.mu.Unlock()
	}
}

// evictor selects eviction victims within one domain's frame range
// (d == nil scans the root's [0, activeFrames)). pick returns a
// candidate frame with refcnt observed zero, or -1 when nothing is
// evictable; the caller (evictFrame) re-verifies under the page's
// locks, so a stale pick costs a retry, never correctness.
// Implementations are safe for concurrent use and record scan-length
// stats on the domain they scan for.
type evictor interface {
	policy() EvictionPolicy
	pick(h *Heap, d *Domain) int32
}

func newEvictor(pol EvictionPolicy, seed uint64) evictor {
	switch pol {
	case PolicyFIFO:
		return &fifoEvictor{}
	case PolicyRandom:
		return &randomEvictor{rng: seed}
	default:
		return &clockEvictor{}
	}
}

// evictable reports whether frame f is a victim candidate right now.
func evictable(fm *frameMeta) bool {
	return !fm.disabled && fm.bsPage.Load() != noBSPage && fm.refcnt.Load() == 0
}

// clockEvictor is second-chance clock: skip frames whose reference bit
// is set (clearing it), take the first cold unpinned frame.
type clockEvictor struct {
	//eleos:lockorder 40
	mu   sync.Mutex
	hand int
}

func (c *clockEvictor) policy() EvictionPolicy { return PolicyClock }

func (c *clockEvictor) pick(h *Heap, d *Domain) int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	start, active := h.domainRange(d)
	scanned := 0
	defer func() { h.domStats(d).noteScan(scanned) }()
	for i := 0; i < 2*active; i++ {
		c.hand = (c.hand + 1) % active
		scanned++
		fm := &h.frames[start+c.hand]
		if !evictable(fm) {
			continue
		}
		if fm.accessed.Swap(false) {
			continue
		}
		return int32(start + c.hand)
	}
	// Second chance exhausted: take the first unpinned frame.
	for i := 0; i < active; i++ {
		c.hand = (c.hand + 1) % active
		scanned++
		if evictable(&h.frames[start+c.hand]) {
			return int32(start + c.hand)
		}
	}
	return -1
}

// fifoEvictor cycles through frames in index order.
type fifoEvictor struct {
	//eleos:lockorder 40
	mu   sync.Mutex
	hand int
}

func (f *fifoEvictor) policy() EvictionPolicy { return PolicyFIFO }

func (f *fifoEvictor) pick(h *Heap, d *Domain) int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	start, active := h.domainRange(d)
	scanned := 0
	defer func() { h.domStats(d).noteScan(scanned) }()
	for i := 0; i < active; i++ {
		f.hand = (f.hand + 1) % active
		scanned++
		if evictable(&h.frames[start+f.hand]) {
			return int32(start + f.hand)
		}
	}
	return -1
}

// randomEvictor probes xorshift-random frames.
type randomEvictor struct {
	//eleos:lockorder 40
	mu  sync.Mutex
	rng uint64
}

func (r *randomEvictor) policy() EvictionPolicy { return PolicyRandom }

func (r *randomEvictor) pick(h *Heap, d *Domain) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	start, active := h.domainRange(d)
	scanned := 0
	defer func() { h.domStats(d).noteScan(scanned) }()
	for i := 0; i < 4*active; i++ {
		r.rng ^= r.rng << 13
		r.rng ^= r.rng >> 7
		r.rng ^= r.rng << 17
		f := start + int(r.rng%uint64(active))
		scanned++
		if evictable(&h.frames[f]) {
			return int32(f)
		}
	}
	return -1
}

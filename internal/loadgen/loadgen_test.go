package loadgen

import "testing"

func TestDeterminism(t *testing.T) {
	a := NewKeyGen(42, 1000)
	b := NewKeyGen(42, 1000)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRangeAndNonZero(t *testing.T) {
	g := NewKeyGen(1, 50)
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k == 0 || k > 50 {
			t.Fatalf("key %d out of [1,50]", k)
		}
	}
}

func TestHotSetRestriction(t *testing.T) {
	g := NewKeyGen(2, 1_000_000).HotSet(100)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k > 100 {
			t.Fatalf("hot-set draw %d escaped the hot set", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewKeyGen(3, 10000).Zipfian(1.2)
	counts := make(map[uint64]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	// Key 1 must dominate dramatically under Zipf.
	if counts[1] < draws/10 {
		t.Fatalf("zipf head got %d of %d draws", counts[1], draws)
	}
}

// TestHotSetAfterZipfian is the ordering-footgun regression: Zipfian
// used to capture the key space at call time, so a HotSet applied
// afterwards was silently ignored and draws escaped the hot set.
func TestHotSetAfterZipfian(t *testing.T) {
	g := NewKeyGen(5, 1_000_000).Zipfian(1.2).HotSet(100)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k > 100 {
			t.Fatalf("draw %d escaped the hot set applied after Zipfian", k)
		}
	}
	// Both orders draw from the same restricted space and stay skewed.
	a := NewKeyGen(6, 1_000_000).Zipfian(1.2).HotSet(100)
	b := NewKeyGen(6, 1_000_000).HotSet(100).Zipfian(1.2)
	const draws = 50000
	var aHead, bHead int
	for i := 0; i < draws; i++ {
		if a.Next() == 1 {
			aHead++
		}
		if b.Next() == 1 {
			bHead++
		}
	}
	if aHead != bHead {
		t.Fatalf("orders diverged: Zipfian-then-HotSet head %d, HotSet-then-Zipfian head %d", aHead, bHead)
	}
	if aHead < draws/10 {
		t.Fatalf("zipf head got %d of %d draws after HotSet", aHead, draws)
	}
}

func TestBatchAndBytes(t *testing.T) {
	g := NewKeyGen(4, 10)
	keys := g.Batch(make([]uint64, 8))
	if len(keys) != 8 {
		t.Fatal("batch length")
	}
	for _, k := range keys {
		if k == 0 || k > 10 {
			t.Fatalf("batch key %d", k)
		}
	}
	b := g.Bytes(make([]byte, 64))
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("payload bytes not filled")
	}
}

package faceverify

import (
	"fmt"
	"sync"

	"eleos/internal/kv"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Placement locates the descriptor database.
type Placement int

// Placements.
const (
	PlaceHost Placement = iota
	PlaceEnclave
	PlaceSUVM
)

func (p Placement) String() string {
	switch p {
	case PlaceHost:
		return "host"
	case PlaceEnclave:
		return "epc"
	default:
		return "suvm"
	}
}

// SyscallMode selects the network path.
type SyscallMode int

// Syscall mechanisms.
const (
	SysNative SyscallMode = iota
	SysOCall
	SysRPC
)

// Compute cost model: the LBP transform and chi-square comparison are
// charged per pixel and per descriptor byte respectively (the 8-compare
// LBP kernel vectorizes well; ~2 cycles/pixel keeps the native server
// network-bound at two threads, as the paper's is).
const (
	lbpCyclesPerPixel    = 2
	chiSquareCyclesPerB  = 1
	requestEnvelopeBytes = KeyBytes + ImageBytes + 28
	responseBytes        = 64 + 28
)

// RequestBytes is the wire size of one verification request.
const RequestBytes = requestEnvelopeBytes

// Config describes a verification server.
type Config struct {
	// Identities is the number of enrolled persons (2,000 ≈ the paper's
	// 450 MB database).
	Identities uint64
	// Placement locates the descriptor table.
	Placement Placement
	// Heap is required for PlaceSUVM.
	Heap *suvm.Heap
	// Synthetic enrolls fabricated descriptors (benchmark mode: loads
	// in milliseconds, same memory behaviour); when false, enrollment
	// runs the real LBP pipeline over rendered images (test mode).
	Synthetic bool
}

// DatabaseBytes returns the approximate table size for n identities.
func DatabaseBytes(n uint64) uint64 {
	return n * (DescriptorBytes + KeyBytes + 64)
}

// Store is the shared descriptor database.
type Store struct {
	plat  *sgx.Platform
	cfg   Config
	table *kv.BlobTable
	mu    sync.Mutex // BlobTable insertions are setup-only; Get is read-only after load

	// queryCache memoizes real LBP computation per (id,variant) so
	// benchmarks do not re-run 2.6M-pixel transforms per request on the
	// host machine; the virtual cost is charged per request regardless.
	queryMu    sync.Mutex
	queryCache map[[2]uint64][]byte
}

// NewStore builds and enrolls the database; setup pays the unmeasured
// loading costs.
func NewStore(plat *sgx.Platform, setup *sgx.Thread, cfg Config) (*Store, error) {
	if cfg.Identities == 0 {
		return nil, fmt.Errorf("faceverify: at least one identity required")
	}
	size := DatabaseBytes(cfg.Identities) + (1 << 20)
	var mem kv.Mem
	switch cfg.Placement {
	case PlaceHost:
		mem = kv.HostRegion(plat, size)
	case PlaceEnclave:
		if setup.Enclave() == nil {
			return nil, fmt.Errorf("faceverify: enclave placement requires an enclave thread")
		}
		mem = kv.EnclaveRegion(setup.Enclave(), size)
	case PlaceSUVM:
		if cfg.Heap == nil {
			return nil, fmt.Errorf("faceverify: SUVM placement requires a heap")
		}
		r, err := kv.NewSUVMRegion(cfg.Heap, size)
		if err != nil {
			return nil, err
		}
		mem = r
	}
	buckets := uint64(1)
	for buckets < cfg.Identities {
		buckets *= 2
	}
	table, err := kv.NewBlobTable(mem, buckets)
	if err != nil {
		return nil, err
	}
	s := &Store{plat: plat, cfg: cfg, table: table, queryCache: make(map[[2]uint64][]byte)}
	for n := uint64(0); n < cfg.Identities; n++ {
		var desc []byte
		if cfg.Synthetic {
			desc = SynthDescriptor(n)
		} else {
			desc = LBPDescriptor(SynthImage(n, 0))
		}
		if err := table.Put(setup, PersonID(n), desc); err != nil {
			return nil, fmt.Errorf("faceverify: enrolling identity %d: %w", n, err)
		}
	}
	return s, nil
}

// Identities returns the enrolled population size.
func (s *Store) Identities() uint64 { return s.cfg.Identities }

// Lookup fetches the enrolled descriptor of identity id into buf,
// charging the simulated memory costs to th. Returns the descriptor
// length.
func (s *Store) Lookup(th *sgx.Thread, id uint64, buf []byte) (int, error) {
	return s.table.Get(th, PersonID(id), buf)
}

// queryDescriptor returns the descriptor of capture (id, variant),
// computing it once per pair on the host machine.
func (s *Store) queryDescriptor(id, variant uint64) []byte {
	key := [2]uint64{id, variant}
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if d, ok := s.queryCache[key]; ok {
		return d
	}
	var d []byte
	if s.cfg.Synthetic {
		d = SynthDescriptor(id)
	} else {
		d = LBPDescriptor(SynthImage(id, variant))
	}
	if len(s.queryCache) < 4096 {
		s.queryCache[key] = d
	}
	return d
}

// Server is one worker front end (socket + syscall mode) over the store.
type Server struct {
	store *Store
	sys   SyscallMode
	pool  *rpc.Pool
	sock  *netsim.Socket
	desc  []byte
}

// NewServer wraps the store for one serving thread.
func NewServer(store *Store, sys SyscallMode, pool *rpc.Pool) (*Server, error) {
	if sys == SysRPC && pool == nil {
		return nil, fmt.Errorf("faceverify: RPC mode requires a worker pool")
	}
	return &Server{
		store: store,
		sys:   sys,
		pool:  pool,
		sock:  netsim.NewSocket(store.plat, ImageBytes+4096),
		desc:  make([]byte, DescriptorBytes),
	}, nil
}

// Close releases the socket.
func (s *Server) Close() { s.sock.Close() }

// Verify processes one request end to end: receive the (encrypted)
// image, decrypt it, compute its LBP descriptor, fetch the enrolled
// descriptor for the claimed identity from the database, compare, and
// send the verdict. Returns whether the identity was accepted.
func (s *Server) Verify(th *sgx.Thread, id, variant uint64) (bool, error) {
	m := s.store.plat.Model

	// Receive the request (claimed ID + image).
	switch s.sys {
	case SysNative:
		s.sock.Recv(th.HostContext(), RequestBytes)
	case SysOCall:
		th.OCall(func(h *sgx.HostCtx) { s.sock.Recv(h, RequestBytes) })
	case SysRPC:
		if err := s.pool.Call(th, func(h *sgx.HostCtx) { s.sock.Recv(h, RequestBytes) }); err != nil {
			return false, err
		}
	}
	// Pull the image out of the untrusted staging buffer (the enclave
	// reads it while decrypting) and charge the decryption.
	th.Read(s.sock.UserBuf(), s.desc[:min(len(s.desc), ImageBytes)])
	netsim.CryptoCost(th.T, m, RequestBytes)

	// LBP transform of the query image.
	th.T.Charge(lbpCyclesPerPixel * ImageBytes)
	query := s.store.queryDescriptor(id, variant)

	// Fetch the enrolled descriptor — the 232 KiB read over the large
	// table that Fig 10 stresses.
	n, err := s.store.table.Get(th, PersonID(id), s.desc)
	if err != nil {
		return false, err
	}

	// Compare.
	th.T.Charge(chiSquareCyclesPerB * uint64(n))
	accepted := ChiSquare(query, s.desc[:n]) < VerifyThreshold

	// Respond.
	netsim.CryptoCost(th.T, m, responseBytes)
	switch s.sys {
	case SysNative:
		s.sock.Send(th.HostContext(), responseBytes)
	case SysOCall:
		th.OCall(func(h *sgx.HostCtx) { s.sock.Send(h, responseBytes) })
	case SysRPC:
		if err := s.pool.Call(th, func(h *sgx.HostCtx) { s.sock.Send(h, responseBytes) }); err != nil {
			return false, err
		}
	}
	return accepted, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package suvm

import (
	"fmt"

	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// directAccess implements sub-page direct access to the backing store
// (§3.2.4): data is decrypted/encrypted at sub-page granularity (each
// sub-page sealed separately with its own nonce) straight between the
// caller's buffer and untrusted memory, bypassing EPC++ entirely — akin
// to O_DIRECT for storage. Reads first verify that the page is not
// resident in the page cache, the paper's consistency check; direct
// allocations live in a dedicated backing region, so the check never
// fires but is still paid for.
//
//eleos:hotpath budget=0
func (h *Heap) directAccess(th *sgx.Thread, addr uint64, buf []byte, write bool, d *Domain) error {
	if addr < h.directBase {
		//eleos:allow hotpath -- cold error path: caller used the wrong region
		return fmt.Errorf("%w: address %#x is in the page-cached region", ErrNotDirect, addr)
	}
	for len(buf) > 0 {
		bsPage := h.bsPageOf(addr)
		pageOff := addr & (h.pageSize - 1)
		sub := int(pageOff / h.subSize)
		subOff := pageOff % h.subSize
		n := int(h.subSize - subOff)
		if n > len(buf) {
			n = len(buf)
		}
		if err := h.directSub(th, bsPage, sub, subOff, buf[:n], write, d); err != nil {
			return err
		}
		addr += uint64(n)
		buf = buf[n:]
	}
	return nil
}

// directSub performs one sub-page read or write (read-modify-write for
// partial writes, which the paper's prototype did not support and we
// implement as an extension — see DESIGN.md).
//
//eleos:hotpath budget=0
func (h *Heap) directSub(th *sgx.Thread, bsPage uint64, sub int, subOff uint64, buf []byte, write bool, d *Domain) error {
	// Consistency check: the page must not be resident in EPC++.
	h.lockCost(th)
	//eleos:allow hotpath -- simulated EPC access: the sgx memory model's worst case includes the hardware page-fault path, cold by definition
	h.touchIPT(th, bsPage)
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	_, cached := sh.m[bsPage]
	sh.mu.Unlock()
	if cached {
		//eleos:allow hotpath -- cold error path: consistency-check failure is a bug, not a workload
		return fmt.Errorf("%w: page %d unexpectedly resident in EPC++", ErrNotDirect, bsPage)
	}

	subAddr := h.bsAddrOf(bsPage) + uint64(sub)*h.subSize
	th.T.Charge(h.model.SubPageOverhead)
	h.lockCost(th)
	//eleos:allow hotpath -- simulated EPC access plus lazy metadata-chunk growth, both cold or amortized
	h.touchMeta(th, bsPage, write)
	ms := h.meta.shard(bsPage)
	ms.mu.Lock()
	defer ms.mu.Unlock()
	//eleos:allow hotpath -- first-touch metadata entry creation, amortized over the page lifetime
	m := ms.get(bsPage, write)
	var sm *subMeta
	if m != nil {
		if m.subs == nil && write {
			//eleos:allow hotpath -- lazy one-time sub-page metadata for the page, amortized over its lifetime
			m.subs = make([]subMeta, h.subsPer)
		}
		if m.subs != nil {
			sm = &m.subs[sub]
		}
	}

	if !write {
		h.domStats(d).directReads.Add(1)
		if sm == nil || !sm.present {
			clear(buf)
			return nil
		}
		scratch := h.getScratch()
		defer h.putScratch(scratch)
		pt, err := h.openSub(th, subAddr, sm, (*scratch)[:0])
		if err != nil {
			return err
		}
		copy(buf, pt[subOff:])
		return nil
	}

	h.domStats(d).directWrites.Add(1)
	full := subOff == 0 && uint64(len(buf)) == h.subSize
	var plain []byte
	scratch := h.getScratch()
	defer h.putScratch(scratch)
	if full {
		plain = buf
	} else {
		// Read-modify-write below sub-page granularity: decrypt the old
		// sub-page straight into the scratch, then splice the write in.
		if sm != nil && sm.present {
			old, err := h.openSub(th, subAddr, sm, (*scratch)[:0])
			if err != nil {
				return err
			}
			plain = old
		} else {
			plain = (*scratch)[:h.subSize]
			clear(plain)
		}
		copy(plain[subOff:], buf)
	}
	ctBuf := h.getScratch()
	defer h.putScratch(ctBuf)
	nonce, sealed := h.seal.Seal(th.T, (*ctBuf)[:0], plain, seal.AddrAAD(subAddr))
	//eleos:allow hotpath -- simulated host-memory write: worst case includes the fault path, cold by definition
	th.Write(subAddr, sealed[:h.subSize])
	sm.present = true
	sm.nonce = nonce
	copy(sm.tag[:], sealed[h.subSize:])
	return nil
}

// openSub reads and decrypts one sub-page from the backing store,
// appending the plaintext into dst — an empty slice over caller-owned
// scratch, so the read path allocates nothing per call. The returned
// slice aliases dst's backing array and is valid only while the caller
// holds that scratch.
//
//eleos:hotpath budget=0
func (h *Heap) openSub(th *sgx.Thread, subAddr uint64, sm *subMeta, dst []byte) ([]byte, error) {
	ct := h.getScratch()
	defer h.putScratch(ct)
	//eleos:allow hotpath -- simulated host-memory read: worst case includes the fault path, cold by definition
	th.Read(subAddr, (*ct)[:h.subSize])
	copy((*ct)[h.subSize:], sm.tag[:])
	plain, err := h.seal.Open(th.T, dst, (*ct)[:h.subSize+seal.Overhead], seal.AddrAAD(subAddr), sm.nonce)
	if err != nil {
		//eleos:allow hotpath -- cold error path: integrity failure aborts the access
		return nil, fmt.Errorf("suvm: direct sub-page at %#x failed integrity verification: %w", subAddr, err)
	}
	return plain, nil
}

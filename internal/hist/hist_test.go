package hist_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"eleos/internal/hist"
)

// maxRelErr is the histogram's documented quantile error bound:
// 1/2^subBits with subBits=5, i.e. one part in 32.
const maxRelErr = 1.0 / 32

// oracleQuantile is the exact reference: the ceil(q*n)-th smallest
// value of the sorted sample.
func oracleQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sample draws n values from a few shapes that stress different bucket
// ranges: exact small values, mid-range uniforms, heavy-tailed draws.
func sample(t *testing.T, seed int64, n int) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			vals = append(vals, uint64(rng.Intn(64))) // exact range
		case 1:
			vals = append(vals, uint64(rng.Intn(1<<20)))
		default:
			// Log-uniform heavy tail up to ~2^40.
			vals = append(vals, uint64(math.Exp(rng.Float64()*27)))
		}
	}
	return vals
}

func TestQuantileVsSortedOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		vals := sample(t, seed, 10_000)
		h := hist.New()
		for _, v := range vals {
			h.Record(v)
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		if h.Count() != uint64(len(vals)) {
			t.Fatalf("seed %d: Count = %d, want %d", seed, h.Count(), len(vals))
		}
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("seed %d: Min/Max = %d/%d, want %d/%d",
				seed, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		if mean := h.Mean(); math.Abs(mean-sum/float64(len(vals))) > 1e-6*sum {
			t.Fatalf("seed %d: Mean = %g, want %g", seed, mean, sum/float64(len(vals)))
		}
		for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			want := oracleQuantile(sorted, q)
			// The histogram reports a bucket upper bound clamped to the
			// observed max: never below the oracle by more than the
			// resolution, never above it by more than the relative error.
			lo := float64(want) * (1 - maxRelErr)
			hi := float64(want)*(1+maxRelErr) + 1
			if float64(got) < lo || float64(got) > hi {
				t.Errorf("seed %d: Quantile(%g) = %d, oracle %d (allowed [%g, %g])",
					seed, q, got, want, lo, hi)
			}
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	vals := sample(t, 99, 5_000)
	h := hist.New()
	for _, v := range vals {
		h.Record(v)
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %d < previous %d: not monotone", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %d, want Max %d", h.Quantile(1), h.Max())
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := hist.New()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero-valued: %+v", h.Snapshot())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %d, want 0", q, v)
		}
	}
}

// equal compares two histograms through their observable surface.
func equal(a, b *hist.H) bool {
	if a.Count() != b.Count() || a.Min() != b.Min() || a.Max() != b.Max() || a.Mean() != b.Mean() {
		return false
	}
	for q := 0.0; q <= 1.0; q += 0.0005 {
		if a.Quantile(q) != b.Quantile(q) {
			return false
		}
	}
	return true
}

func TestMergeAssociativeCommutative(t *testing.T) {
	build := func(seed int64) *hist.H {
		h := hist.New()
		for _, v := range sample(t, seed, 2_000) {
			h.Record(v)
		}
		return h
	}
	// (a ∪ b) ∪ c == a ∪ (b ∪ c) == (c ∪ a) ∪ b.
	fold := func(order []int64) *hist.H {
		acc := hist.New()
		for _, s := range order {
			acc.Merge(build(s))
		}
		return acc
	}
	ab_c := fold([]int64{3, 5, 8})
	c_ab := fold([]int64{8, 3, 5})
	b_ca := fold([]int64{5, 8, 3})
	if !equal(ab_c, c_ab) || !equal(ab_c, b_ca) {
		t.Fatal("Merge is order-sensitive")
	}
	// Merging all values into one histogram directly gives the same
	// distribution as merging per-part histograms.
	direct := hist.New()
	for _, s := range []int64{3, 5, 8} {
		for _, v := range sample(t, s, 2_000) {
			direct.Record(v)
		}
	}
	if !equal(direct, ab_c) {
		t.Fatal("merged histogram differs from directly-recorded histogram")
	}
	// Merging an empty or nil histogram is a no-op.
	before := ab_c.Snapshot()
	ab_c.Merge(hist.New())
	ab_c.Merge(nil)
	if ab_c.Snapshot() != before {
		t.Fatal("merging empty/nil changed the histogram")
	}
}

func TestResetRoundTrip(t *testing.T) {
	h := hist.New()
	for _, v := range sample(t, 17, 1_000) {
		h.Record(v)
	}
	h.Reset()
	if !equal(h, hist.New()) {
		t.Fatal("Reset did not restore the empty state")
	}
	h.Record(7)
	if h.Count() != 1 || h.Min() != 7 || h.Max() != 7 || h.Quantile(0.5) != 7 {
		t.Fatalf("post-Reset Record broken: %+v", h.Snapshot())
	}
}

func TestExtremeValues(t *testing.T) {
	h := hist.New()
	h.Record(0)
	h.Record(^uint64(0))
	if h.Min() != 0 || h.Max() != ^uint64(0) {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if v := h.Quantile(1); v != ^uint64(0) {
		t.Fatalf("Quantile(1) = %d", v)
	}
	if v := h.Quantile(0.25); v != 0 {
		t.Fatalf("Quantile(0.25) = %d, want 0", v)
	}
}

// TestRecordZeroAlloc pins the //eleos:hotpath budget=0 contract
// dynamically: the static analyzer bounds the worst case, this test
// catches regressions the analyzer cannot see (e.g. an interface
// boxing sneaking into the path).
func TestRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	h := hist.New()
	var v uint64
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 977
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, budget is 0", allocs)
	}
}

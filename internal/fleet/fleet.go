// Package fleet is the fleet-scale adaptive EPC++ balloon controller of
// ROADMAP item 1: a deterministic epoch controller (in the internal/tune
// mold) that continuously rebalances PRM shares across a fleet of
// enclaves from live demand signals instead of the driver's static even
// split. The paper's ballooning (§3.3, Fig 9) makes every enclave chase
// the even-split ioctl; with mixed tenants under shifting load that
// starves the hot tenant while cold tenants hoard EPC++ — the
// demand-driven sizing argument of "Adaptive and Efficient Dynamic
// Memory Management for Hardware Enclaves" (PAPERS.md, arXiv
// 2504.16251).
//
// Each epoch the controller samples every registered heap's
// BalloonSignal (the fault/coalesce/wait/evict-scan counters PR-2
// introduced and internal/tune reserved for this consumer), folds the
// deltas into one demand figure per tenant, and computes a share
// vector: a floor per tenant, the rest of usable PRM split
// demand-proportionally, capped at what each heap can actually use.
// After grow/shrink hysteresis agrees, it installs the vector through
// the driver's SetEPCShares ioctl and then drives each changed heap
// through BalloonTarget/ApplyBalloonTarget + ReclaimFreePool on a
// controller-owned per-tenant thread — resizes run as exclusive phases
// of each heap's fault pipeline while the other tenants keep faulting.
//
// Every decision input is a virtual-cycle counter or a deterministic
// integer derived from one; leftover frames from the proportional split
// are placed in fixed registration order. A single-threaded drive
// therefore produces a bit-identical decision trace on every run — the
// same contract internal/tune pins, tested the same way.
//
// Trust domain: trusted — Pump runs on enclave serving threads, touches
// the suvm facade and the platform driver only.
//
//eleos:trusted
//eleos:deterministic
package fleet

import (
	"fmt"
	"sync"

	"eleos/internal/phys"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Demand weighting: one scalar per tenant per epoch, formed from the
// BalloonSignal deltas. Faults dominate (they are the direct cost of a
// too-small EPC++), coalesced faults count the pressure multi-threaded
// tenants hide behind the winner's page-in, wait cycles and evict-scan
// work are divided down to comparable magnitude. Fixed constants, not
// policy knobs: the weights only need to rank tenants against each
// other, and fixed weights keep the trace stable across policies.
const (
	demandFaultWeight    = 4
	demandCoalesceWeight = 2
	demandWaitShift      = 10 // FaultWaitCycles / 1024
	demandScanShift      = 3  // EvictScanFrames / 8

	// demandDecayShift smooths the per-epoch scalar asymmetrically:
	// demand rises to a new peak instantly but decays by only 1/4 per
	// epoch. Raw fault counts are self-extinguishing — the epoch after a
	// grown tenant's working set finally fits, its faults stop, and a
	// proportional split over raw demand would immediately confiscate
	// the very frames that satisfied it, re-faulting the working set in
	// an endless grow/shrink oscillation. The slow decay keeps a
	// recently-hot tenant's claim alive until a competitor shows
	// *sustained* higher demand, so phase shifts converge in one or two
	// rebalances instead of ping-ponging every few epochs.
	demandDecayShift = 2
)

// freePoolFraction mirrors suvm's swapper constant: after a resize the
// controller tops each changed heap's free pool up to 1/32 of its
// active frames, moving eviction work off the tenants' fault paths.
const freePoolFraction = 32

// Policy tunes the controller. Zero fields select their defaults;
// Default() returns the fully-populated defaults.
type Policy struct {
	// EpochCycles is the decision period in virtual cycles of the
	// pumping thread (default 1e6).
	EpochCycles uint64
	// MinShareFrames is each tenant's PRM share floor in 4 KiB frames
	// (default 64; clamped down when the fleet outgrows the machine).
	MinShareFrames int
	// Hysteresis is how many consecutive deviating epochs must agree
	// before a rebalance that only grows shares is applied (default 2);
	// ShrinkHysteresis gates rebalances that take EPC++ away from any
	// tenant (default 2×Hysteresis) — scale up fast, down slowly.
	Hysteresis       int
	ShrinkHysteresis int
	// DeadbandFrac is the relative share change below which a tenant's
	// deviation is ignored (default 0.10): rebalances fire only for
	// shifts worth the exclusive resize phases they cost.
	DeadbandFrac float64
	// MinDemand is the raw per-epoch demand some tenant must reach
	// before a rebalance can fire (default 64, i.e. 16 major faults per
	// epoch). Fault-driven demand is self-extinguishing: the tenant the
	// last rebalance satisfied goes quiet while everyone's residual
	// fault noise keeps trickling, so without an absolute activity gate
	// the proportional split slowly confiscates the winner's frames
	// until it thrashes again, oscillating forever. Below the gate the
	// installed shares are simply kept.
	MinDemand uint64
	// TraceCap bounds the recorded decision trace (default 4096).
	TraceCap int
}

// Default returns the default policy.
func Default() Policy {
	return Policy{
		EpochCycles:      1_000_000,
		MinShareFrames:   64,
		Hysteresis:       2,
		ShrinkHysteresis: 4,
		DeadbandFrac:     0.10,
		MinDemand:        64,
		TraceCap:         4096,
	}
}

// normalized fills zero fields with their defaults.
func (p Policy) normalized() Policy {
	d := Default()
	if p.EpochCycles == 0 {
		p.EpochCycles = d.EpochCycles
	}
	if p.MinShareFrames == 0 {
		p.MinShareFrames = d.MinShareFrames
	}
	if p.Hysteresis == 0 {
		p.Hysteresis = d.Hysteresis
	}
	if p.ShrinkHysteresis == 0 {
		p.ShrinkHysteresis = 2 * p.Hysteresis
	}
	if p.DeadbandFrac == 0 {
		p.DeadbandFrac = d.DeadbandFrac
	}
	if p.MinDemand == 0 {
		p.MinDemand = d.MinDemand
	}
	if p.TraceCap == 0 {
		p.TraceCap = d.TraceCap
	}
	return p
}

func (p Policy) validate() error {
	switch {
	case p.MinShareFrames < 8:
		// BalloonTarget keeps 25% headroom, so a share below 8 frames
		// could balloon a heap under its own 4-frame floor.
		return fmt.Errorf("fleet: MinShareFrames %d < 8", p.MinShareFrames)
	case p.DeadbandFrac < 0 || p.DeadbandFrac >= 1:
		return fmt.Errorf("fleet: DeadbandFrac %g outside [0, 1)", p.DeadbandFrac)
	case p.Hysteresis < 1:
		return fmt.Errorf("fleet: Hysteresis %d < 1", p.Hysteresis)
	case p.ShrinkHysteresis < p.Hysteresis:
		return fmt.Errorf("fleet: ShrinkHysteresis %d < Hysteresis %d", p.ShrinkHysteresis, p.Hysteresis)
	}
	return nil
}

// tenant is one registered heap with its controller-side state.
type tenant struct {
	h  *suvm.Heap
	id int // enclave id, the driver share-table key
	// th is the controller-owned apply thread: resizes and reclaims are
	// charged to it, off the tenant's serving threads.
	th *sgx.Thread

	prev        suvm.BalloonSignal
	shareFrames int    // current installed PRM share (4 KiB frames); 0 before the first rebalance
	demand      uint64 // smoothed demand: instant rise, 1/4 decay per epoch
	skips       uint64
}

// TenantDecision is one tenant's slice of an epoch decision.
type TenantDecision struct {
	// Enclave is the tenant's enclave id (the share-table key).
	Enclave int
	// Demand is the epoch's weighted demand scalar.
	Demand uint64
	// ShareFrames is the PRM share the controller wants for the tenant
	// (4 KiB frames); TargetBytes the EPC++ capacity that share balloons
	// to (BalloonTarget of the share).
	ShareFrames int
	TargetBytes uint64
	// Applied is set when this epoch resized the tenant's heap; Skipped
	// when the resize was attempted and refused (pinned frame).
	Applied bool
	Skipped bool
}

// Decision is one epoch's outcome. Derived from virtual-cycle counters
// and fixed-order integer arithmetic only, so a single-driver run
// yields an identical decision sequence every time.
type Decision struct {
	// Epoch is the 1-based decision ordinal; Cycles the pumping
	// thread's clock at the boundary.
	Epoch  uint64
	Cycles uint64
	// Votes is the rebalance vote count after this epoch; Rebalanced is
	// set when this epoch installed a new share table.
	Votes      int
	Rebalanced bool
	// Tenants is the per-tenant breakdown, in registration order.
	Tenants []TenantDecision
}

// TenantStats is one tenant's slice of a controller snapshot.
type TenantStats struct {
	Enclave        int
	ShareFrames    int
	ActiveFrames   int
	CapacityFrames int
	Demand         uint64
	// Skips counts refused resizes (pinned frames) for this tenant.
	Skips uint64
}

// Stats is a snapshot of the controller.
type Stats struct {
	// Enabled distinguishes a live controller from the zero value the
	// unified RuntimeStats tree reports when fleet ballooning is off.
	Enabled bool
	// Epochs counts decisions taken, Rebalances the ones that installed
	// a new share table, Skips the refused resizes across all tenants.
	Epochs     uint64
	Rebalances uint64
	Skips      uint64
	// Tenants is the per-tenant state, in registration order.
	Tenants []TenantStats
}

// Controller is the fleet balloon feedback loop. One controller owns
// one driver's share table; any number of serving threads may Pump it
// (an internal mutex serializes epochs), but determinism of the
// decision sequence is guaranteed only for a single pumping thread.
type Controller struct {
	pol    Policy
	driver *sgx.Driver

	// mu serializes epoch evaluation. Epochs call ResizeTo /
	// ReclaimFreePool (suvm epoch, rank 10) and SetEPCShares (driver,
	// rank 110) while holding it, so it ranks below the whole suvm/sgx
	// order.
	//
	//eleos:lockorder 4
	mu sync.Mutex

	tenants []*tenant

	started    bool
	lastStamp  uint64
	epochs     uint64
	rebalances uint64
	votes      int

	trace []Decision
}

// New builds a controller over the platform's driver. The policy's zero
// fields take their defaults; the populated policy is validated.
func New(d *sgx.Driver, pol Policy) (*Controller, error) {
	if d == nil {
		return nil, fmt.Errorf("fleet: nil driver")
	}
	pol = pol.normalized()
	if err := pol.validate(); err != nil {
		return nil, err
	}
	return &Controller{pol: pol, driver: d}, nil
}

// Policy returns the controller's normalized policy.
func (c *Controller) Policy() Policy { return c.pol }

// Register adds a heap to the fleet. The controller creates its own
// thread in the heap's enclave so resize write-backs are charged off
// the tenant's serving threads. Call during setup (the runtime does it
// from NewEnclave); the tenant joins the next epoch's sample.
func (c *Controller) Register(h *suvm.Heap) {
	t := &tenant{h: h, id: h.Enclave().ID(), th: h.Enclave().NewThread()}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.prev = h.BalloonSignal()
	c.tenants = append(c.tenants, t)
}

// Unregister removes a heap from the fleet (the runtime calls it from
// Enclave.Destroy, before the heap quiesces). The tenant's share-table
// entry is dropped immediately so the driver stops arbitrating for a
// dying enclave.
func (c *Controller) Unregister(h *suvm.Heap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, t := range c.tenants {
		if t.h == h {
			c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
			break
		}
	}
	c.pushSharesLocked()
}

// pushSharesLocked installs the current per-tenant shares as the
// driver's share table (or resets to the even split while no rebalance
// has assigned shares yet).
func (c *Controller) pushSharesLocked() {
	table := make(map[int]uint64, len(c.tenants))
	for _, t := range c.tenants {
		if t.shareFrames > 0 {
			table[t.id] = uint64(t.shareFrames) * phys.PageSize
		}
	}
	c.driver.SetEPCShares(table)
}

// Pump gives the controller a chance to act. Cheap off-epoch (one clock
// comparison under the mutex); on an epoch boundary it samples every
// tenant, votes, and applies any rebalance. Returns true when an epoch
// fired. th is the pumping thread; its virtual clock is the epoch
// timebase.
func (c *Controller) Pump(th *sgx.Thread) bool {
	now := th.T.Cycles()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		c.started = true
		c.lastStamp = now
		for _, t := range c.tenants {
			t.prev = t.h.BalloonSignal()
		}
		return false
	}
	if now < c.lastStamp+c.pol.EpochCycles {
		return false
	}
	c.epoch(now)
	return true
}

// demandOf folds one epoch's signal delta into the tenant's demand
// scalar. A counter that went backwards means the heap's stats were
// reset since the last epoch (a benchmark warm-up boundary); the
// post-reset value is the whole delta then, not an underflowed uint64.
func demandOf(prev, cur suvm.BalloonSignal) uint64 {
	return demandFaultWeight*delta(prev.MajorFaults, cur.MajorFaults) +
		demandCoalesceWeight*delta(prev.FaultsCoalesced, cur.FaultsCoalesced) +
		delta(prev.FaultWaitCycles, cur.FaultWaitCycles)>>demandWaitShift +
		delta(prev.EvictScanFrames, cur.EvictScanFrames)>>demandScanShift
}

func delta(prev, cur uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// capFrames is the largest useful PRM share for a heap: the share whose
// BalloonTarget reaches the configured EPC++ capacity (4/3 of it, for
// the 25% headroom), in 4 KiB frames. Granting more would only idle.
func capFrames(sig suvm.BalloonSignal) int {
	capBytes := uint64(sig.CapacityFrames) * sig.PageBytes
	shareBytes := capBytes + capBytes/3 + phys.PageSize
	return int((shareBytes + phys.PageSize - 1) / phys.PageSize)
}

// epoch runs one decision with c.mu held.
func (c *Controller) epoch(now uint64) {
	c.lastStamp = now
	c.epochs++

	n := len(c.tenants)
	if n == 0 {
		return
	}
	sigs := make([]suvm.BalloonSignal, n)
	demands := make([]uint64, n)
	var totalDemand, maxRaw uint64
	for i, t := range c.tenants {
		sigs[i] = t.h.BalloonSignal()
		raw := demandOf(t.prev, sigs[i])
		t.prev = sigs[i]
		if raw > maxRaw {
			maxRaw = raw
		}
		if decayed := t.demand - t.demand>>demandDecayShift; raw > decayed {
			t.demand = raw
		} else {
			t.demand = decayed
		}
		demands[i] = t.demand
		totalDemand += demands[i]
	}

	want := c.sharesFor(sigs, demands, totalDemand)

	// Vote: a rebalance is worth its exclusive resize phases only when
	// some tenant is actively suffering (raw demand at the MinDemand
	// gate) AND some tenant's share moves beyond the deadband. Epochs
	// that would shrink any tenant need ShrinkHysteresis consecutive
	// deviating epochs; grow-only epochs (slack from a destroyed
	// tenant) just Hysteresis.
	deviates, shrinks := false, false
	if maxRaw >= c.pol.MinDemand {
		for i, t := range c.tenants {
			cur := t.shareFrames
			band := int(c.pol.DeadbandFrac * float64(cur))
			if band < 1 {
				band = 1
			}
			switch {
			case want[i] > cur+band:
				deviates = true
			case want[i] < cur-band:
				deviates = true
				if cur > 0 {
					shrinks = true
				}
			}
		}
	}
	rebalanced := false
	if !deviates {
		c.votes = 0
	} else {
		c.votes++
		needed := c.pol.Hysteresis
		if shrinks {
			needed = c.pol.ShrinkHysteresis
		}
		if c.votes >= needed {
			c.votes = 0
			rebalanced = true
		}
	}

	dec := Decision{Epoch: c.epochs, Cycles: now, Votes: c.votes, Rebalanced: rebalanced,
		Tenants: make([]TenantDecision, n)}
	for i, t := range c.tenants {
		share := t.shareFrames
		if rebalanced {
			share = want[i]
		}
		dec.Tenants[i] = TenantDecision{
			Enclave:     t.id,
			Demand:      demands[i],
			ShareFrames: share,
			TargetBytes: t.h.BalloonTarget(uint64(share) * phys.PageSize),
		}
	}

	if rebalanced {
		c.rebalances++
		c.applyLocked(want, dec.Tenants)
	}

	if c.pol.TraceCap < 0 || len(c.trace) < c.pol.TraceCap {
		c.trace = append(c.trace, dec)
	}
}

// sharesFor computes the desired share vector: a floor per tenant, the
// remaining usable PRM split demand-proportionally (evenly when the
// fleet is idle), capped at each heap's useful maximum, leftovers
// placed in registration order.
func (c *Controller) sharesFor(sigs []suvm.BalloonSignal, demands []uint64, totalDemand uint64) []int {
	n := len(c.tenants)
	budget := c.driver.NumFrames()
	floor := c.pol.MinShareFrames
	if floor*n > budget {
		floor = budget / n
	}
	caps := make([]int, n)
	want := make([]int, n)
	for i := range c.tenants {
		caps[i] = capFrames(sigs[i])
		if caps[i] < floor {
			caps[i] = floor
		}
		want[i] = floor
	}
	spare := budget - floor*n

	// Demand-proportional split of the spare (even when idle).
	assigned := 0
	for i := range c.tenants {
		var extra int
		if totalDemand == 0 {
			extra = spare / n
		} else {
			extra = int(uint64(spare) * demands[i] / totalDemand)
		}
		if want[i]+extra > caps[i] {
			extra = caps[i] - want[i]
		}
		want[i] += extra
		assigned += extra
	}
	// Leftovers (integer truncation, cap clipping) go to uncapped
	// tenants in registration order — deterministic by construction.
	for rem := spare - assigned; rem > 0; {
		placed := false
		for i := range c.tenants {
			if want[i] < caps[i] {
				give := caps[i] - want[i]
				if give > rem {
					give = rem
				}
				want[i] += give
				rem -= give
				placed = true
				if rem == 0 {
					break
				}
			}
		}
		if !placed {
			break // every tenant capped; the driver keeps the slack
		}
	}
	return want
}

// applyLocked installs the new share table and balloons every tenant
// whose share changed: the table first (so the driver arbitrates
// against the new shares while resizes run), then shrinks (returning
// frames to the driver), then grows. Each tenant's resize and reclaim
// run on the controller's per-tenant thread as exclusive phases of that
// heap's fault pipeline; the other tenants keep faulting throughout.
func (c *Controller) applyLocked(want []int, decs []TenantDecision) {
	old := make([]int, len(c.tenants))
	for i, t := range c.tenants {
		old[i] = t.shareFrames
		t.shareFrames = want[i]
	}
	c.pushSharesLocked()
	for pass := 0; pass < 2; pass++ {
		for i, t := range c.tenants {
			if want[i] == old[i] && old[i] != 0 {
				continue
			}
			target := t.h.BalloonTarget(uint64(want[i]) * phys.PageSize)
			// Shrinks run in pass 0 and grows in pass 1, classified by the
			// heap's actual EPC++ size — not the share history — so the
			// first rebalance cannot grow the hot tenant before the cold
			// tenants have released their frames (transiently pinning the
			// whole PRM).
			sig := t.h.BalloonSignal()
			grow := target > uint64(sig.ActiveFrames)*sig.PageBytes
			if (pass == 0) == grow {
				continue
			}
			t.th.Enter()
			err := t.h.ApplyBalloonTarget(t.th, target)
			if err == nil {
				sig := t.h.BalloonSignal()
				t.h.ReclaimFreePool(t.th, sig.ActiveFrames/freePoolFraction)
				decs[i].Applied = true
			} else {
				t.skips++
				decs[i].Skipped = true
			}
			t.th.Exit()
		}
	}
}

// Stats returns a snapshot of the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Enabled: true, Epochs: c.epochs, Rebalances: c.rebalances}
	for _, t := range c.tenants {
		sig := t.h.BalloonSignal()
		st.Skips += t.skips
		st.Tenants = append(st.Tenants, TenantStats{
			Enclave:        t.id,
			ShareFrames:    t.shareFrames,
			ActiveFrames:   sig.ActiveFrames,
			CapacityFrames: sig.CapacityFrames,
			Demand:         t.demand,
			Skips:          t.skips,
		})
	}
	return st
}

// Trace returns a copy of the recorded decision sequence (bounded by
// Policy.TraceCap). Two runs of the same single-threaded load yield
// identical traces — the determinism contract the tests pin.
func (c *Controller) Trace() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.trace))
	for i, d := range c.trace {
		d.Tenants = append([]TenantDecision(nil), d.Tenants...)
		out[i] = d
	}
	return out
}

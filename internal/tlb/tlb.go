// Package tlb models the per-hardware-thread translation lookaside
// buffer of the simulated machine. The TLB is the vehicle for two of the
// indirect costs the Eleos paper quantifies: every enclave exit flushes
// the TLB (so pointer-chasing workloads pay page walks again after each
// system call, Fig 2b), and hardware EPC page eviction requires TLB
// shootdown IPIs to every core that may cache the mapping (Table 2).
//
// Cycle-charged and checked by eleoslint for determinism.
//
//eleos:deterministic
package tlb

import (
	"eleos/internal/cycles"
)

// A TLB caches virtual-page to physical-frame presence for a single
// simulated hardware thread. It is a set-associative tag array with
// round-robin replacement, sized like a Skylake STLB. A TLB is owned by
// one goroutine; Shootdown presence checks from the driver must be
// externally synchronized (the sgx package serializes them).
type TLB struct {
	model *cycles.Model
	sets  [][]entry
	rr    []uint8 // per-set round-robin pointer
	mask  uint64

	misses  uint64
	flushes uint64
}

type entry struct {
	vpage uint64
	valid bool
	epc   bool
}

// Config describes the TLB geometry.
type Config struct {
	// Entries is the total entry count (default 1536, Skylake STLB).
	Entries int
	// Ways is the associativity (default 12).
	Ways int
}

// New creates a TLB over the given cost model.
func New(m *cycles.Model, cfg Config) *TLB {
	if cfg.Entries == 0 {
		cfg.Entries = 1536
	}
	if cfg.Ways == 0 {
		cfg.Ways = 12
	}
	numSets := cfg.Entries / cfg.Ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		// Round down to a power of two so indexing stays a mask.
		p := 1
		for p*2 <= numSets {
			p *= 2
		}
		numSets = p
	}
	t := &TLB{
		model: m,
		sets:  make([][]entry, numSets),
		rr:    make([]uint8, numSets),
		mask:  uint64(numSets - 1),
	}
	for i := range t.sets {
		t.sets[i] = make([]entry, cfg.Ways)
	}
	return t
}

// Access simulates the translation of vpage (a virtual page number, not
// a byte address) and charges th the page-walk cost on a miss. epc marks
// translations whose page walks touch encrypted memory, which cost more.
func (t *TLB) Access(th *cycles.Thread, vpage uint64, epc bool) (hit bool) {
	s := t.sets[vpage&t.mask]
	for i := range s {
		if s[i].valid && s[i].vpage == vpage {
			return true
		}
	}
	t.misses++
	if epc {
		th.Charge(t.model.TLBMissEPC)
	} else {
		th.Charge(t.model.TLBMiss)
	}
	idx := vpage & t.mask
	way := t.rr[idx]
	t.rr[idx] = uint8((int(way) + 1) % len(s))
	s[way] = entry{vpage: vpage, valid: true, epc: epc}
	return false
}

// Contains reports whether vpage is currently cached, without charging
// any cost. The SGX driver uses it to decide whether an eviction needs a
// shootdown IPI to this thread's core.
func (t *TLB) Contains(vpage uint64) bool {
	s := t.sets[vpage&t.mask]
	for i := range s {
		if s[i].valid && s[i].vpage == vpage {
			return true
		}
	}
	return false
}

// Invalidate drops a single translation if present, as done by the
// receiver of a shootdown IPI.
func (t *TLB) Invalidate(vpage uint64) {
	s := t.sets[vpage&t.mask]
	for i := range s {
		if s[i].valid && s[i].vpage == vpage {
			s[i].valid = false
		}
	}
}

// Flush invalidates every entry, as performed on enclave exit (EEXIT and
// AEX both flush enclave translations).
func (t *TLB) Flush() {
	t.flushes++
	for _, s := range t.sets {
		for i := range s {
			s[i].valid = false
		}
	}
}

// FlushEPC invalidates only the enclave translations, modelling the
// architectural behaviour that exits flush enclave-private mappings
// while untrusted mappings may survive.
func (t *TLB) FlushEPC() {
	t.flushes++
	for _, s := range t.sets {
		for i := range s {
			if s[i].epc {
				s[i].valid = false
			}
		}
	}
}

// Misses returns the page-walk count so far.
func (t *TLB) Misses() uint64 { return t.misses }

// Flushes returns the number of full or EPC flushes so far.
func (t *TLB) Flushes() uint64 { return t.flushes }

// ResetStats zeroes the counters without touching cached translations.
func (t *TLB) ResetStats() {
	t.misses = 0
	t.flushes = 0
}

package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"eleos/internal/phys"
	"eleos/internal/report"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func init() {
	register("fig7a", "SUVM speedup over native SGX paging: 4K random accesses, 1 thread", fig7a)
	register("fig7b", "SUVM speedup over native SGX paging: 4K random accesses, 4 threads", fig7b)
	register("tab2", "IPIs and page faults: SGX vs SUVM, 1 vs 4 threads", tab2)
	register("fig8a", "Spointer overhead on fault-free accesses, data in LLC (2MB)", fig8a)
	register("fig8b", "Spointer overhead on fault-free accesses, data in PRM (60MB)", fig8b)
	register("tab3", "Sub-page direct access vs EPC++ page cache", tab3)
	register("fig9", "EPC++ ballooning: two enclaves, correct vs misconfigured sizes", fig9)
	register("pflat", "Software vs hardware page-fault latency", pflat)
}

// sgxPagingRun performs ops random 4K accesses over an enclave-heap
// buffer of bufSize on each of threads threads (disjoint key streams,
// shared buffer), returning max per-thread cycles.
func sgxPagingRun(v *env, bufSize uint64, ops, threads int, write bool) uint64 {
	base := v.encl.Alloc(bufSize)
	pages := int(bufSize / phys.PageSize)
	// Warm: materialize every page once, then run one measurement-shaped
	// pass so the paging system reaches steady state (otherwise the
	// measured window pays the write-backs of load-phase-dirty pages).
	buf := make([]byte, phys.PageSize)
	for pg := 0; pg < pages; pg++ {
		v.th.Write(base+uint64(pg)*phys.PageSize, buf)
	}
	warmRng := rand.New(rand.NewSource(99))
	for n := 0; n < ops; n++ {
		off := uint64(warmRng.Intn(pages)) * phys.PageSize
		if write {
			v.th.Write(base+off, buf)
		} else {
			v.th.Read(base+off, buf)
		}
	}
	v.resetCounters()

	ths := []*sgx.Thread{v.th}
	for i := 1; i < threads; i++ {
		t := v.encl.NewThread()
		t.Enter()
		ths = append(ths, t)
	}
	var wg sync.WaitGroup
	for i, th := range ths {
		wg.Add(1)
		go func(i int, th *sgx.Thread) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			b := make([]byte, phys.PageSize)
			for n := 0; n < ops/threads; n++ {
				off := uint64(rng.Intn(pages)) * phys.PageSize
				if write {
					th.Write(base+off, b)
				} else {
					th.Read(base+off, b)
				}
			}
		}(i, th)
	}
	wg.Wait()
	var max uint64
	for _, th := range ths {
		if c := th.T.Cycles(); c > max {
			max = c
		}
	}
	return max
}

// suvmPagingRun does the same over an array of per-page SUVM buffers
// (the paper's array-of-spointers workload).
func suvmPagingRun(v *env, bufSize uint64, ops, threads int, write bool) uint64 {
	pages := int(bufSize / phys.PageSize)
	ptrs := make([]*suvm.SPtr, pages)
	for i := range ptrs {
		p, err := v.heap.Malloc(phys.PageSize)
		if err != nil {
			panic(err)
		}
		ptrs[i] = p
	}
	buf := make([]byte, phys.PageSize)
	for _, p := range ptrs {
		if err := p.WriteAt(v.th, 0, buf); err != nil {
			panic(err)
		}
	}
	// Steady-state pass (see sgxPagingRun).
	warmRng := rand.New(rand.NewSource(99))
	for n := 0; n < ops; n++ {
		p := ptrs[warmRng.Intn(pages)]
		if write {
			_ = p.WriteAt(v.th, 0, buf)
		} else {
			_ = p.ReadAt(v.th, 0, buf)
		}
	}
	v.resetCounters()

	ths := []*sgx.Thread{v.th}
	for i := 1; i < threads; i++ {
		t := v.encl.NewThread()
		t.Enter()
		ths = append(ths, t)
	}
	var wg sync.WaitGroup
	for i, th := range ths {
		wg.Add(1)
		go func(i int, th *sgx.Thread) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			b := make([]byte, phys.PageSize)
			for n := 0; n < ops/threads; n++ {
				p := ptrs[rng.Intn(pages)]
				var err error
				if write {
					err = p.WriteAt(th, 0, b)
				} else {
					err = p.ReadAt(th, 0, b)
				}
				if err != nil {
					panic(err)
				}
			}
		}(i, th)
	}
	wg.Wait()
	var max uint64
	for _, th := range ths {
		if c := th.T.Cycles(); c > max {
			max = c
		}
	}
	return max
}

func fig7sizes(quick bool) []uint64 {
	if quick {
		return []uint64{60 << 20, 200 << 20, 512 << 20}
	}
	return []uint64{60 << 20, 200 << 20, 512 << 20, 1 << 30, 2 << 30}
}

func fig7(rc RunConfig, threads int) *report.Table {
	rc = rc.Normalize()
	t := report.New(fmt.Sprintf("Fig 7%s: SUVM speedup over SGX paging (%d thread(s), EPC++ 60MB)",
		map[int]string{1: "a", 4: "b"}[threads], threads),
		"buffer", "mode", "sgx cyc/op", "suvm cyc/op", "speedup", "hw faults sgx", "hw faults suvm")
	t.Note = "paper: ~5.5x reads / ~3x writes beyond EPC (1T); higher with 4T (no IPIs)"
	for _, size := range fig7sizes(rc.Quick) {
		ops := rc.Ops
		for _, write := range []bool{false, true} {
			mode := "read"
			if write {
				mode = "write"
			}
			sv := enclaveEnv(0)
			sgxCyc := sgxPagingRun(sv, size, ops, threads, write)
			sgxFaults := sv.plat.Driver.Stats().Faults

			uv := enclaveEnv(60 << 20)
			suvmCyc := suvmPagingRun(uv, size, ops, threads, write)
			suvmHW := uv.plat.Driver.Stats().Faults

			t.AddRow(report.Bytes(size), mode,
				perOp(sgxCyc, ops), perOp(suvmCyc, ops),
				report.Ratio(float64(sgxCyc), float64(suvmCyc)),
				sgxFaults, suvmHW)
		}
	}
	return t
}

func fig7a(rc RunConfig) (*Result, error) {
	return &Result{ID: "fig7a", Title: "SUVM speedup, 1 thread", Tables: []*report.Table{fig7(rc, 1)}}, nil
}

func fig7b(rc RunConfig) (*Result, error) {
	return &Result{ID: "fig7b", Title: "SUVM speedup, 4 threads", Tables: []*report.Table{fig7(rc, 4)}}, nil
}

// tab2: IPI and fault counts for the 200MB random-read workload.
func tab2(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	size := uint64(200 << 20)
	if rc.Quick {
		size = 200 << 20 // the table is about counts; keep the paper's size
	}
	t := report.New("Table 2: IPIs and page faults for 100k random 4K reads from 200MB",
		"threads", "IPIs sgx", "IPIs suvm", "faults sgx (hw)", "faults suvm (sw)", "speedup")
	t.Note = "paper 1T: 50.2k IPIs, 116k faults, 4.5x; 4T: 77.9k IPIs, 115k faults, 5.5x"
	for _, threads := range []int{1, 4} {
		ops := rc.Ops
		sv := enclaveEnv(0)
		sgxCyc := sgxPagingRun(sv, size, ops, threads, false)
		sgxStats := sv.plat.Driver.Stats()

		uv := enclaveEnv(60 << 20)
		suvmCyc := suvmPagingRun(uv, size, ops, threads, false)
		suvmIPIs := uv.plat.Driver.Stats().IPIs
		suvmSW := uv.heap.Stats().MajorFaults

		t.AddRow(threads, sgxStats.IPIs, suvmIPIs, sgxStats.Faults, suvmSW,
			report.Ratio(float64(sgxCyc), float64(suvmCyc)))
	}
	return &Result{ID: "tab2", Title: "IPI elimination", Tables: []*report.Table{t}}, nil
}

// fig8run walks an array sequentially with the given element size, via
// a linked spointer and via a raw enclave pointer, and reports the
// slowdown. The two configurations run in separate enclaves (as two
// separate experiment runs would): the 60MB variant plus a 60MB+ EPC++
// pool cannot both be PRM-resident at once, and the measurement is
// specifically fault-free. The SUVM array is pre-faulted into EPC++, so
// the only SUVM costs are link checks and per-page-crossing minor
// faults.
func fig8run(rc RunConfig, arrayBytes uint64, title, note string) *report.Table {
	rc = rc.Normalize()
	t := report.New(title, "access bytes", "mode", "native cyc/op", "spointer cyc/op", "slowdown")
	t.Note = note

	v := enclaveEnv(arrayBytes + (4 << 20))
	p, err := v.heap.Malloc(arrayBytes)
	if err != nil {
		panic(err)
	}
	nv := enclaveEnv(0)
	native := nv.encl.Alloc(arrayBytes)
	buf := make([]byte, phys.PageSize)
	// Prefetch both into their caches.
	for off := uint64(0); off+phys.PageSize <= arrayBytes; off += phys.PageSize {
		if err := p.WriteAt(v.th, off, buf); err != nil {
			panic(err)
		}
		nv.th.Write(native+off, buf)
	}

	for _, elem := range []int{16, 64, 256, 1024, 4096} {
		for _, write := range []bool{false, true} {
			mode := "read"
			if write {
				mode = "write"
			}
			ops := rc.Ops
			b := make([]byte, elem)

			// Native sequential walk. One warm lap first: this is the
			// "data in cache" configuration.
			warmLap := func() {
				w := make([]byte, phys.PageSize)
				for off := uint64(0); off+phys.PageSize <= arrayBytes; off += phys.PageSize {
					nv.th.Read(native+off, w)
				}
			}
			warmLap()
			nv.th.T.Reset()
			off := uint64(0)
			for i := 0; i < ops; i++ {
				if off+uint64(elem) > arrayBytes {
					off = 0
				}
				if write {
					nv.th.Write(native+off, b)
				} else {
					nv.th.Read(native+off, b)
				}
				off += uint64(elem)
			}
			natCyc := nv.th.T.Cycles()

			// Spointer sequential walk (linked fast path + minor fault
			// per page crossing), warmed the same way.
			w := make([]byte, phys.PageSize)
			for off := uint64(0); off+phys.PageSize <= arrayBytes; off += phys.PageSize {
				if err := p.ReadAt(v.th, off, w); err != nil {
					panic(err)
				}
			}
			if err := p.Seek(v.th, 0); err != nil {
				panic(err)
			}
			v.th.T.Reset()
			for i := 0; i < ops; i++ {
				if p.Offset()+uint64(elem) > arrayBytes {
					if err := p.Seek(v.th, 0); err != nil {
						panic(err)
					}
				}
				var err error
				if write {
					err = p.Write(v.th, b)
				} else {
					err = p.Read(v.th, b)
				}
				if err != nil {
					panic(err)
				}
				if err := p.Advance(v.th, int64(elem)); err != nil {
					panic(err)
				}
			}
			spCyc := v.th.T.Cycles()

			t.AddRow(elem, mode, perOp(natCyc, ops), perOp(spCyc, ops),
				report.Ratio(float64(spCyc), float64(natCyc)))
		}
	}
	return t
}

func fig8a(rc RunConfig) (*Result, error) {
	t := fig8run(rc, 2<<20,
		"Fig 8a: spointer slowdown for fault-free accesses, data in LLC (2MB)",
		"paper: up to 22% reads / 25% writes")
	return &Result{ID: "fig8a", Title: "Spointer overhead (LLC)", Tables: []*report.Table{t}}, nil
}

func fig8b(rc RunConfig) (*Result, error) {
	t := fig8run(rc, 60<<20,
		"Fig 8b: spointer slowdown for fault-free accesses, data in PRM (60MB)",
		"paper: below 20%")
	return &Result{ID: "fig8b", Title: "Spointer overhead (PRM)", Tables: []*report.Table{t}}, nil
}

// tab3: random reads at sub-page granularity: direct backing-store
// access vs EPC++ caching, on a working set far beyond EPC++.
func tab3(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	size := uint64(256 << 20)
	if rc.Quick {
		size = 128 << 20
	}
	t := report.New("Table 3: direct 1KB-sub-page access vs EPC++ (4KB pages), random reads",
		"bytes/access", "epc++ cyc/op", "direct cyc/op", "direct speedup")
	t.Note = "paper: +58% at 16B, +41% at 256B, -3% at 2KB, -17% at 4KB"

	v := enclaveEnv(60 << 20)
	cached, err := v.heap.Malloc(size)
	if err != nil {
		panic(err)
	}
	direct, err := v.heap.MallocDirect(size)
	if err != nil {
		panic(err)
	}
	// Populate both.
	chunk := make([]byte, 64<<10)
	for off := uint64(0); off+uint64(len(chunk)) <= size; off += uint64(len(chunk)) {
		if err := cached.WriteAt(v.th, off, chunk); err != nil {
			panic(err)
		}
		if err := direct.WriteAt(v.th, off, chunk); err != nil {
			panic(err)
		}
	}

	for _, n := range []int{16, 256, 2048, 4096} {
		ops := rc.Ops / 2
		b := make([]byte, n)
		measure := func(p *suvm.SPtr) uint64 {
			rng := rand.New(rand.NewSource(int64(5000 + n)))
			v.th.T.Reset()
			for i := 0; i < ops; i++ {
				off := uint64(rng.Intn(int(size)/4096))*4096 + uint64(rng.Intn(4096-n+1))&^15
				if err := p.ReadAt(v.th, off, b); err != nil {
					panic(err)
				}
			}
			return v.th.T.Cycles()
		}
		epcCyc := measure(cached)
		dirCyc := measure(direct)
		t.AddRow(n, perOp(epcCyc, ops), perOp(dirCyc, ops),
			report.Ratio(float64(epcCyc), float64(dirCyc)))
	}
	return &Result{ID: "tab3", Title: "Sub-page direct access", Tables: []*report.Table{t}}, nil
}

// fig9: two enclaves each doing 4K random reads concurrently over
// arrays that exceed the per-enclave PRM share. Four configurations:
// native SGX paging; SUVM with EPC++ sized for the two-enclave share
// (30MB, "correct"); SUVM with an oversubscribed static EPC++ (50MB,
// "wrong") whose pinned frames the driver evicts — thrashing both
// paging systems at once; and the same wrong size rescued by the Eleos
// balloon, which queries the driver and deflates EPC++ to fit.
func fig9(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Fig 9: two concurrent enclaves, throughput of 4K random reads",
		"array/enclave", "config", "ops/s total", "vs correct EPC++", "hw faults", "sw faults")
	t.Note = "paper: wrong 50MB EPC++ up to 3.4x slower than correct 30MB"

	type cfg struct {
		name    string
		epcpp   uint64 // 0 = native SGX
		balloon bool
	}
	cfgs := []cfg{
		{"sgx", 0, false},
		{"suvm-30MB (correct)", 30 << 20, false},
		{"suvm-50MB (wrong)", 50 << 20, false},
		{"suvm-50MB + balloon", 50 << 20, true},
	}
	for _, arr := range []uint64{45 << 20, 60 << 20, 90 << 20} {
		ops := rc.Ops / 2
		baseline := 0.0
		rows := make([][]any, 0, len(cfgs))
		for _, c := range cfgs {
			plat := newPlatform()
			var wg sync.WaitGroup
			var loaded sync.WaitGroup // both enclaves warm before either measures
			loaded.Add(2)
			maxCycles := make([]uint64, 2)
			swF := uint64(0)
			var mu sync.Mutex
			for e := 0; e < 2; e++ {
				wg.Add(1)
				go func(e int) {
					defer wg.Done()
					encl, err := plat.NewEnclave()
					if err != nil {
						panic(err)
					}
					th := encl.NewThread()
					th.Enter()
					var heap *suvm.Heap
					var p *suvm.SPtr
					var base uint64
					pages := int(arr / phys.PageSize)
					buf := make([]byte, phys.PageSize)
					if c.epcpp > 0 {
						heap, err = suvm.New(encl, th, suvm.Config{PageCacheBytes: c.epcpp, BackingBytes: 1 << 30})
						if err != nil {
							panic(err)
						}
						if c.balloon {
							// The swapper's periodic query of the
							// driver share, run once both enclaves
							// exist (both goroutines have created
							// theirs by the time loading finishes; one
							// more tick below corrects any race).
							_ = heap.BalloonTick(th)
						}
						p, err = heap.Malloc(arr)
						if err != nil {
							panic(err)
						}
						for pg := 0; pg < pages; pg++ {
							_ = p.WriteAt(th, uint64(pg)*phys.PageSize, buf)
						}
						if c.balloon {
							_ = heap.BalloonTick(th)
						}
					} else {
						base = encl.Alloc(arr)
						for pg := 0; pg < pages; pg++ {
							th.Write(base+uint64(pg)*phys.PageSize, buf)
						}
					}
					loaded.Done()
					loaded.Wait()
					if e == 0 {
						plat.Driver.ResetStats()
					}
					th.T.Reset()
					if heap != nil {
						heap.ResetStats()
					}
					rng := rand.New(rand.NewSource(int64(e)))
					for i := 0; i < ops; i++ {
						off := uint64(rng.Intn(pages)) * phys.PageSize
						if p != nil {
							_ = p.ReadAt(th, off, buf)
						} else {
							th.Read(base+off, buf)
						}
					}
					mu.Lock()
					maxCycles[e] = th.T.Cycles()
					if heap != nil {
						swF += heap.Stats().MajorFaults
					}
					mu.Unlock()
				}(e)
			}
			wg.Wait()
			hwF := plat.Driver.Stats().Faults
			max := maxCycles[0]
			if maxCycles[1] > max {
				max = maxCycles[1]
			}
			tput := float64(2*ops) / plat.Model.Seconds(max)
			if c.name == "suvm-30MB (correct)" {
				baseline = tput
			}
			rows = append(rows, []any{report.Bytes(arr), c.name, tput, hwF, swF})
		}
		for _, r := range rows {
			rel := "1.00x"
			if baseline > 0 {
				rel = report.Ratio(r[2].(float64), baseline)
			}
			t.AddRow(r[0], r[1], r[2], rel, r[3], r[4])
		}
	}
	return &Result{ID: "fig9", Title: "EPC++ ballooning", Tables: []*report.Table{t}}, nil
}

// pflat: per-fault latencies, directly comparable to §2.3 and §6.1.2.
func pflat(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Page-fault latency: SGX hardware vs SUVM software",
		"system", "workload", "cycles/fault")
	t.Note = "paper: SGX ~40k total; SUVM ~8.5k page-in (reads), ~14k evict+page-in (writes)"

	// SGX: sustained random 4K reads over 200MB.
	sv := enclaveEnv(0)
	size := uint64(200 << 20)
	ops := rc.Ops / 2
	sgxCyc := sgxPagingRun(sv, size, ops, 1, false)
	sgxF := sv.plat.Driver.Stats().Faults
	noFault := enclaveEnv(0)
	base := perOp(sgxPagingRun(noFault, 60<<20, ops, 1, false), ops)
	perFault := (float64(sgxCyc) - base*float64(ops)) / float64(sgxF)
	t.AddRow("sgx", "4K random reads, 200MB", perFault)

	// SUVM: steady-state fault handling cost from the heap's counters.
	for _, write := range []bool{false, true} {
		uv := enclaveEnv(4 << 20)
		p, err := uv.heap.Malloc(32 << 20)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, phys.PageSize)
		for off := uint64(0); off+phys.PageSize <= p.Size(); off += phys.PageSize {
			_ = p.WriteAt(uv.th, off, buf)
		}
		rng := rand.New(rand.NewSource(4))
		run := func() {
			for i := 0; i < ops; i++ {
				off := uint64(rng.Intn(int(p.Size()/phys.PageSize))) * phys.PageSize
				if write {
					_ = p.WriteAt(uv.th, off, buf)
				} else {
					_ = p.ReadAt(uv.th, off, buf)
				}
			}
		}
		run()
		uv.heap.ResetStats()
		run()
		st := uv.heap.Stats()
		mode := "page-in (reads)"
		if write {
			mode = "evict+page-in (writes)"
		}
		t.AddRow("suvm", mode, float64(st.FaultCycles)/float64(st.MajorFaults))
	}
	return &Result{ID: "pflat", Title: "Fault latency", Tables: []*report.Table{t}}, nil
}

package eleos

import (
	"fmt"
	"testing"

	"eleos/internal/faceverify"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/mckv"
	"eleos/internal/pserver"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// Golden server fingerprints: each evaluation server runs a fixed
// seeded request workload under every syscall dispatch mode, and the
// resulting virtual-cycle fingerprint is pinned. The exit-less I/O
// engine refactor (internal/exitio) must leave the single-op dispatch
// paths bit-identical to the hand-rolled per-server switches it
// replaced: same charge sequence per request, same LLC evolution, same
// in-enclave time split. RPC-mode workloads use a single-worker pool so
// work stealing cannot reorder worker-side cache state between runs.
//
// Captured at commit f19d53e (pre-exitio), where each server issued one
// synchronous pool.Call per Recv and per Send through its own
// SyscallMode switch.

type serverFingerprint [3]uint64 // thread cycles, in-enclave cycles, LLC misses

// goldenServerEnv is the shared fixture: a small machine, optionally an
// enclave + entered thread, optionally a 1-worker RPC pool.
type goldenServerEnv struct {
	plat *sgx.Platform
	encl *sgx.Enclave
	th   *sgx.Thread
	pool *rpc.Pool
}

func newGoldenServerEnv(t *testing.T, native, withPool bool) *goldenServerEnv {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v := &goldenServerEnv{plat: plat}
	if native {
		v.th = plat.NewHostThread(0)
	} else {
		encl, err := plat.NewEnclave()
		if err != nil {
			t.Fatal(err)
		}
		v.encl = encl
		v.th = encl.NewThread()
		v.th.Enter()
	}
	if withPool {
		v.pool = rpc.NewPool(plat, 1, 64)
		v.pool.Start()
	}
	return v
}

func (v *goldenServerEnv) fingerprint() serverFingerprint {
	return serverFingerprint{
		v.th.T.Cycles(),
		v.th.SyncEnclaveCycles(),
		v.plat.LLC.Stats().Misses,
	}
}

func (v *goldenServerEnv) close() {
	if v.pool != nil {
		v.pool.Stop()
	}
}

func mckvGoldenWorkload(t *testing.T, sys mckv.SyscallMode) serverFingerprint {
	t.Helper()
	native := sys == mckv.SysNative
	v := newGoldenServerEnv(t, native, sys == mckv.SysRPC)
	defer v.close()
	pl := mckv.PlaceEnclave
	if native {
		pl = mckv.PlaceHost
	}
	store, err := mckv.NewStore(v.plat, v.th, mckv.Config{
		MemLimitBytes: 8 << 20,
		Placement:     pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mckv.NewServer(store, sys, v.pool)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	key := make([]byte, 20)
	val := make([]byte, 256)
	const items = 2000
	for i := 0; i < items; i++ {
		copy(key, fmt.Sprintf("key-%016d", i))
		if err := store.Set(v.th, key, val); err != nil {
			t.Fatal(err)
		}
	}
	v.th.T.Reset()
	v.th.ResetEnclaveCycles()
	v.plat.LLC.ResetStats()

	gen := loadgen.NewKeyGen(4242, items)
	for n := 0; n < 1500; n++ {
		copy(key, fmt.Sprintf("key-%016d", gen.Next()-1))
		if n%5 == 4 {
			if err := srv.ServeSet(v.th, key, val); err != nil {
				t.Fatal(err)
			}
		} else if _, err := srv.ServeGet(v.th, key); err != nil {
			t.Fatal(err)
		}
	}
	return v.fingerprint()
}

func pserverGoldenWorkload(t *testing.T, sys pserver.SyscallMode) serverFingerprint {
	t.Helper()
	native := sys == pserver.SysNative
	v := newGoldenServerEnv(t, native, sys == pserver.SysRPC)
	defer v.close()
	pl := pserver.PlaceEnclave
	if native {
		pl = pserver.PlaceHost
	}
	srv, err := pserver.New(v.plat, v.th, pserver.Config{
		DataBytes: 4 << 20,
		Layout:    kv.OpenAddressing,
		Placement: pl,
		Syscall:   sys,
		Pool:      v.pool,
		Encrypted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	v.th.T.Reset()
	v.th.ResetEnclaveCycles()
	v.plat.LLC.ResetStats()

	gen := loadgen.NewKeyGen(31337, srv.Entries())
	keys := make([]uint64, 4)
	for n := 0; n < 1500; n++ {
		if err := srv.ServeRequest(v.th, gen.Batch(keys)); err != nil {
			t.Fatal(err)
		}
	}
	return v.fingerprint()
}

func faceverifyGoldenWorkload(t *testing.T, sys faceverify.SyscallMode) serverFingerprint {
	t.Helper()
	native := sys == faceverify.SysNative
	v := newGoldenServerEnv(t, native, sys == faceverify.SysRPC)
	defer v.close()
	pl := faceverify.PlaceEnclave
	if native {
		pl = faceverify.PlaceHost
	}
	store, err := faceverify.NewStore(v.plat, v.th, faceverify.Config{
		Identities: 64,
		Placement:  pl,
		Synthetic:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := faceverify.NewServer(store, sys, v.pool)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	v.th.T.Reset()
	v.th.ResetEnclaveCycles()
	v.plat.LLC.ResetStats()

	gen := loadgen.NewKeyGen(2718, 64)
	for n := 0; n < 300; n++ {
		if _, err := srv.Verify(v.th, gen.Next()-1, uint64(n%4)); err != nil {
			t.Fatal(err)
		}
	}
	return v.fingerprint()
}

// Fingerprints captured at commit f19d53e (the per-server SyscallMode
// switches, one synchronous pool.Call per Recv and per Send). Any
// divergence means the exitio dispatch path no longer charges the same
// cycle sequence as the code it replaced, and every server benchmark
// number stops being comparable to earlier runs.
var goldenServerFingerprints = map[string]serverFingerprint{
	"mckv/native":       {5685446, 0, 58805},
	"mckv/ocall":        {33391996, 3626036, 58805},
	"mckv/rpc":          {6770946, 3705386, 58805},
	"pserver/native":    {4646352, 0, 58431},
	"pserver/ocall":     {34522432, 5201412, 58431},
	"pserver/rpc":       {7351132, 4731112, 58431},
	"faceverify/native": {521237324, 0, 4915434},
	"faceverify/ocall":  {589045741, 413586017, 4915434},
	"faceverify/rpc":    {582040591, 411980767, 4915434},
}

func TestServerCyclesMatchSeed(t *testing.T) {
	runs := map[string]func(*testing.T) serverFingerprint{
		"mckv/native":       func(t *testing.T) serverFingerprint { return mckvGoldenWorkload(t, mckv.SysNative) },
		"mckv/ocall":        func(t *testing.T) serverFingerprint { return mckvGoldenWorkload(t, mckv.SysOCall) },
		"mckv/rpc":          func(t *testing.T) serverFingerprint { return mckvGoldenWorkload(t, mckv.SysRPC) },
		"pserver/native":    func(t *testing.T) serverFingerprint { return pserverGoldenWorkload(t, pserver.SysNative) },
		"pserver/ocall":     func(t *testing.T) serverFingerprint { return pserverGoldenWorkload(t, pserver.SysOCall) },
		"pserver/rpc":       func(t *testing.T) serverFingerprint { return pserverGoldenWorkload(t, pserver.SysRPC) },
		"faceverify/native": func(t *testing.T) serverFingerprint { return faceverifyGoldenWorkload(t, faceverify.SysNative) },
		"faceverify/ocall":  func(t *testing.T) serverFingerprint { return faceverifyGoldenWorkload(t, faceverify.SysOCall) },
		"faceverify/rpc":    func(t *testing.T) serverFingerprint { return faceverifyGoldenWorkload(t, faceverify.SysRPC) },
	}
	for name, want := range goldenServerFingerprints {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			got := runs[name](t)
			if got != want {
				t.Fatalf("server fingerprint diverged from seed:\n got  %v\n want %v\n(fields: cycles, in-enclave cycles, LLC misses)", got, want)
			}
		})
	}
}

// TestServersGoldenPrint prints current fingerprints; used to
// (re)capture the constants below when the cost model changes
// intentionally.
func TestServersGoldenPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("capture helper")
	}
	for _, sys := range []mckv.SyscallMode{mckv.SysNative, mckv.SysOCall, mckv.SysRPC} {
		fmt.Printf("mckv/%s: %v\n", sys, mckvGoldenWorkload(t, sys))
	}
	for _, sys := range []pserver.SyscallMode{pserver.SysNative, pserver.SysOCall, pserver.SysRPC} {
		fmt.Printf("pserver/%s: %v\n", sys, pserverGoldenWorkload(t, sys))
	}
	for _, sys := range []faceverify.SyscallMode{faceverify.SysNative, faceverify.SysOCall, faceverify.SysRPC} {
		fmt.Printf("faceverify/%d: %v\n", int(sys), faceverifyGoldenWorkload(t, sys))
	}
}

// Package facade is a testdata stand-in for the seal/suvm spointer
// facades: trusted code whose raw arena access is the sanctioned
// crossing point.
//
//eleos:trusted
//eleos:facade
package facade

import "hostmem"

// Write seals data out to host memory; the facade annotation makes the
// raw access legal and stops reachability propagation.
func Write(a *hostmem.Arena, addr uint64, data []byte) {
	a.WriteAt(addr, data)
}

package kv

import (
	"fmt"

	"eleos/internal/sgx"
)

// BlobTable is a chained hash table with variable-length byte keys and
// values, laid out entirely inside one Mem region — the store behind the
// face-verification server (40-byte person IDs mapping to 232 KiB image
// histograms, §5.2). Nodes are bump-allocated; the table does not
// support deletion (the workload never deletes).
//
// Region layout: [bucket heads: nbuckets * 8][nodes...]
// Node layout:   [next 8][keyLen 4][valLen 4][key][value]
type BlobTable struct {
	mem       Mem
	buckets   uint64
	allocNext uint64
	count     uint64
}

const blobHdrBytes = 16

// NewBlobTable initializes a table with nbuckets (power of two) in mem.
func NewBlobTable(mem Mem, nbuckets uint64) (*BlobTable, error) {
	if nbuckets == 0 || nbuckets&(nbuckets-1) != 0 {
		return nil, fmt.Errorf("kv: bucket count %d must be a power of two", nbuckets)
	}
	if mem.Size() < nbuckets*8 {
		return nil, fmt.Errorf("kv: region too small for %d buckets", nbuckets)
	}
	return &BlobTable{mem: mem, buckets: nbuckets, allocNext: nbuckets * 8}, nil
}

// Len returns the number of stored entries.
func (t *BlobTable) Len() uint64 { return t.count }

// BytesUsed returns the bytes consumed inside the region.
func (t *BlobTable) BytesUsed() uint64 { return t.allocNext }

func hashBytes(key []byte) uint64 {
	// FNV-1a, then a final avalanche.
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return hash64(h)
}

func (t *BlobTable) bucketOff(key []byte) uint64 {
	return (hashBytes(key) & (t.buckets - 1)) * 8
}

// find walks the chain, comparing keys byte-for-byte through the Mem
// (so key comparisons on SUVM pay the suvm_memcmp path, as memcached's
// port does). Returns the node offset or 0.
func (t *BlobTable) find(th *sgx.Thread, key []byte) (uint64, error) {
	off, err := readU64(th, t.mem, t.bucketOff(key))
	if err != nil {
		return 0, err
	}
	var hdr [blobHdrBytes]byte
	keyBuf := make([]byte, len(key))
	for off != 0 {
		if err := t.mem.Read(th, off, hdr[:]); err != nil {
			return 0, err
		}
		keyLen := leU32(hdr[8:12])
		if int(keyLen) == len(key) {
			if err := t.mem.Read(th, off+blobHdrBytes, keyBuf); err != nil {
				return 0, err
			}
			if bytesEqual(keyBuf, key) {
				return off, nil
			}
		}
		off = leU64(hdr[0:8])
	}
	return 0, nil
}

// Put inserts key/value; updating an existing key requires the same
// value length (matching the workload, which stores fixed-shape blobs).
func (t *BlobTable) Put(th *sgx.Thread, key, val []byte) error {
	if len(key) == 0 {
		return ErrBadKey
	}
	off, err := t.find(th, key)
	if err != nil {
		return err
	}
	if off != 0 {
		var hdr [blobHdrBytes]byte
		if err := t.mem.Read(th, off, hdr[:]); err != nil {
			return err
		}
		if int(leU32(hdr[12:16])) != len(val) {
			return fmt.Errorf("kv: value length change %d -> %d not supported", leU32(hdr[12:16]), len(val))
		}
		return t.mem.Write(th, off+blobHdrBytes+uint64(len(key)), val)
	}
	need := uint64(blobHdrBytes + len(key) + len(val))
	if t.allocNext+need > t.mem.Size() {
		return ErrFull
	}
	node := t.allocNext
	t.allocNext += (need + 15) &^ 15
	head, err := readU64(th, t.mem, t.bucketOff(key))
	if err != nil {
		return err
	}
	var hdr [blobHdrBytes]byte
	putLeU64(hdr[0:8], head)
	putLeU32(hdr[8:12], uint32(len(key)))
	putLeU32(hdr[12:16], uint32(len(val)))
	if err := t.mem.Write(th, node, hdr[:]); err != nil {
		return err
	}
	if err := t.mem.Write(th, node+blobHdrBytes, key); err != nil {
		return err
	}
	if err := t.mem.Write(th, node+blobHdrBytes+uint64(len(key)), val); err != nil {
		return err
	}
	if err := writeU64(th, t.mem, t.bucketOff(key), node); err != nil {
		return err
	}
	t.count++
	return nil
}

// Get copies the value for key into val (which must be exactly the
// stored length) and returns the value length.
func (t *BlobTable) Get(th *sgx.Thread, key, val []byte) (int, error) {
	off, err := t.find(th, key)
	if err != nil {
		return 0, err
	}
	if off == 0 {
		return 0, ErrNotFound
	}
	var hdr [blobHdrBytes]byte
	if err := t.mem.Read(th, off, hdr[:]); err != nil {
		return 0, err
	}
	vlen := int(leU32(hdr[12:16]))
	if vlen > len(val) {
		return 0, fmt.Errorf("kv: value of %d bytes exceeds buffer of %d", vlen, len(val))
	}
	if err := t.mem.Read(th, off+blobHdrBytes+uint64(leU32(hdr[8:12])), val[:vlen]); err != nil {
		return 0, err
	}
	return vlen, nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package svca is testdata: service A of a multi-service enclave.
//
//eleos:service a
package svca

// Counter is service A state: other services may not touch it outside
// CrossCall.
var Counter int

// Work is a service A entry point.
func Work() { Counter++ }

// Peek reads service A state.
func Peek() int { return Counter }

// Package netsim models the network path of the paper's evaluation
// setup: a client machine connected back-to-back over a dedicated
// 10 Gb/s NIC, driving the server hard enough to saturate it. Receiving
// a request costs a system call plus the kernel- and user-level buffer
// traffic whose cache footprint is exactly the pollution §2.2.1
// quantifies; end-to-end throughput is additionally capped by the link
// (which is what bounds the native face-verification server in Fig 10).
//
// Trust domain: untrusted — the NIC, kernel network stack and client
// live outside the enclave. Cycle-charged, hence deterministic.
//
//eleos:untrusted
//eleos:deterministic
package netsim

import (
	"fmt"
	"sync/atomic"

	"eleos/internal/cycles"
	"eleos/internal/sgx"
)

// LinkBitsPerSecond is the NIC speed of the paper's testbed.
const LinkBitsPerSecond = 10e9

// kernBufBytes is the size of the in-kernel memory a socket's receive
// path cycles through — NIC descriptor rings and skb slab pages whose
// allocation rotates across megabytes, so every call touches mostly-cold
// lines. These are the internal buffers that "compete with the
// application state in the LLC" (§2.2.1).
const kernBufBytes = 8 << 20

// Socket is one simulated connection endpoint on the server. It owns a
// kernel buffer region and a user-space staging buffer in untrusted
// memory (where an OCALL/RPC recv must deliver data for the enclave to
// pick up). A Socket is not safe for concurrent use; servers give each
// worker its own — and Recv/Send enforce that with a cheap owner guard
// that panics on overlapping calls instead of silently corrupting the
// rotating kernel-buffer state.
type Socket struct {
	plat     *sgx.Platform
	kernBuf  uint64
	userBuf  uint64
	userSize uint64
	rot      uint64 // rotating offset spreading kernel-buffer footprint

	// owner is the concurrent-misuse tripwire: thread ID + 1 of the
	// context currently inside Recv/Send, 0 when idle. A pure host-side
	// debug check — one CAS per call, no virtual cycles.
	owner atomic.Int64
}

// NewSocket allocates the socket's buffers in untrusted memory.
func NewSocket(plat *sgx.Platform, userBufBytes uint64) *Socket {
	return &Socket{
		plat:     plat,
		kernBuf:  plat.AllocHost(kernBufBytes),
		userBuf:  plat.AllocHost(userBufBytes),
		userSize: userBufBytes,
	}
}

// UserBuf returns the untrusted address where received payloads land
// (and from which responses are sent).
func (s *Socket) UserBuf() uint64 { return s.userBuf }

// Close releases the socket's buffers.
func (s *Socket) Close() {
	s.plat.FreeHost(s.kernBuf)
	s.plat.FreeHost(s.userBuf)
}

// Deliver places a request payload into the simulated NIC/kernel path,
// without charging anyone: the DMA engine and the remote client are not
// the server's CPU. Benchmarks call it to stage the next request.
//
// Marked platform for the trust-boundary analyzer: Deliver plays the
// NIC's DMA engine, hardware writing the wire bytes into the host
// receive ring, not the calling thread touching host memory.
//
//eleos:platform
func (s *Socket) Deliver(payload []byte) {
	if uint64(len(payload)) > s.userSize {
		panic("netsim: payload larger than socket buffer")
	}
	k := len(payload)
	if k > 64<<10 {
		k = 64 << 10
	}
	s.plat.Host.WriteAt(s.kernBuf, payload[:k])
	// Payload beyond the kernel window is conceptually still in flight;
	// Recv below charges for the full copy into the user buffer.
	s.plat.Host.WriteAt(s.userBuf, payload)
}

// Recv performs the kernel half of recv(2) in the given untrusted
// context: the system call, the network stack's passes over the payload
// (NIC ring -> skb -> socket buffer, modelled as two traversals of the
// kernel buffer plus fixed per-call stack state), and the copy_to_user
// into the staging buffer. These internal buffers are the cache
// pollution of §2.2.1: their footprint scales with the request size,
// and where they land — the enclave's ways or the RPC workers' CAT
// partition — is decided by the calling context. Returns n.
func (s *Socket) Recv(h *sgx.HostCtx, n int) int {
	defer s.unguard(s.guard(h))
	h.Syscall(func(c *sgx.HostCtx) {
		span := 4*n + 2048
		if span > kernBufBytes {
			span = kernBufBytes
		}
		if s.rot+uint64(span) > kernBufBytes {
			s.rot = 0
		}
		c.Touch(s.kernBuf+s.rot, span, true) // stack passes over skb state
		s.rot += uint64((span + 511) &^ 511)
		c.Touch(s.userBuf, n, true) // copy_to_user
	})
	return n
}

// Send performs the kernel half of send(2): copy_from_user plus the
// kernel buffer write-out.
func (s *Socket) Send(h *sgx.HostCtx, n int) {
	defer s.unguard(s.guard(h))
	h.Syscall(func(c *sgx.HostCtx) {
		c.Touch(s.userBuf, n, false)
		k := n
		if k > kernBufBytes {
			k = kernBufBytes
		}
		c.Touch(s.kernBuf, k, true)
	})
}

// guard claims the socket for the calling context, panicking if another
// thread is already inside a Recv/Send — the loud failure mode for a
// multi-queue server submitting two chains over one socket. Returns the
// claimed token for unguard.
func (s *Socket) guard(h *sgx.HostCtx) int64 {
	id := int64(h.Thread().T.ID()) + 1
	if !s.owner.CompareAndSwap(0, id) {
		panic(fmt.Sprintf("netsim: concurrent Socket use: thread %d entered Recv/Send while thread %d was inside",
			id-1, s.owner.Load()-1))
	}
	return id
}

func (s *Socket) unguard(id int64) {
	if !s.owner.CompareAndSwap(id, 0) {
		panic("netsim: Socket owner guard corrupted")
	}
}

// WireSeconds returns the time the 10 GbE link needs to carry one
// request/response pair of the given total size, including per-packet
// framing overhead (≈38 bytes per 1500-byte MTU frame).
func WireSeconds(totalBytes int) float64 {
	frames := (totalBytes + 1499) / 1500
	onWire := float64(totalBytes + frames*38)
	return onWire * 8 / LinkBitsPerSecond
}

// LinkBoundThroughput returns the maximum requests/second the link
// admits for the given request+response size.
func LinkBoundThroughput(totalBytes int) float64 {
	return 1 / WireSeconds(totalBytes)
}

// CapToLink caps a CPU-derived throughput at the link bound.
func CapToLink(cpuThroughput float64, totalBytes int) float64 {
	if lb := LinkBoundThroughput(totalBytes); cpuThroughput > lb {
		return lb
	}
	return cpuThroughput
}

// CryptoCost charges the AES-GCM work of decrypting a request or
// encrypting a response of n bytes inside the enclave (the paper
// encrypts all traffic with AES-NI in CTR mode; we charge the same cost
// model used for sealing).
func CryptoCost(t *cycles.Thread, m *cycles.Model, n int) {
	t.Charge(m.AESCycles(n))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package rpc

import (
	"errors"
	"testing"
	"time"

	"eleos/internal/sgx"
)

func newAsyncEnv(t *testing.T, workers int) (*sgx.Platform, *sgx.Thread, *Pool) {
	t.Helper()
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, workers, 64)
	pool.Start()
	t.Cleanup(pool.Stop)
	return plat, th, pool
}

// An async submit followed by an immediate Wait observes exactly the
// synchronous latency: enqueue + the full work (nothing was overlapped)
// + completion polling. This pins CallAsync+Wait as a strict
// generalization of Call.
func TestAsyncImmediateWaitMatchesSyncCharge(t *testing.T) {
	plat, th, pool := newAsyncEnv(t, 1)
	m := plat.Model

	before := th.T.Cycles()
	f, err := pool.CallAsync(th, func(h *sgx.HostCtx) { h.Syscall(nil) })
	if err != nil {
		t.Fatal(err)
	}
	f.Wait(th)
	got := th.T.Cycles() - before
	want := m.RPCEnqueue + m.Syscall + m.RPCPoll
	if got != want {
		t.Fatalf("async+immediate wait charged %d cycles, want %d", got, want)
	}
	if !f.Done() {
		t.Fatal("future not done after Wait")
	}
	if f.WorkCycles() != m.Syscall {
		t.Fatalf("WorkCycles = %d, want %d", f.WorkCycles(), m.Syscall)
	}
	st := pool.Stats()
	if st.AsyncCalls != 1 || st.Calls != 1 {
		t.Fatalf("counters %+v", st)
	}
	// Double Wait is a no-op: no further charge.
	after := th.T.Cycles()
	f.Wait(th)
	if th.T.Cycles() != after {
		t.Fatal("second Wait charged the caller again")
	}
}

// When the caller's own compute fully covers the call's latency, Wait
// charges nothing beyond the poll: total = enqueue + compute + poll,
// with zero residual recorded.
func TestAsyncWaitChargesOnlyResidual(t *testing.T) {
	plat, th, pool := newAsyncEnv(t, 1)
	m := plat.Model
	const overlap = 1000 // > Syscall work of 250

	before := th.T.Cycles()
	f, err := pool.CallAsync(th, func(h *sgx.HostCtx) { h.Syscall(nil) })
	if err != nil {
		t.Fatal(err)
	}
	th.T.Charge(overlap) // enclave compute overlapping the in-flight call
	f.Wait(th)
	got := th.T.Cycles() - before
	want := m.RPCEnqueue + overlap + m.RPCPoll
	if got != want {
		t.Fatalf("fully-overlapped async charged %d cycles, want %d", got, want)
	}
	if st := pool.Stats(); st.WaitCycles != 0 {
		t.Fatalf("WaitCycles = %d, want 0 (fully hidden)", st.WaitCycles)
	}
}

// Partial overlap: the caller hides `overlap` of the work and Wait
// charges the remainder, which Stats reports as WaitCycles.
func TestAsyncWaitPartialOverlap(t *testing.T) {
	plat, th, pool := newAsyncEnv(t, 1)
	m := plat.Model
	overlap := m.Syscall / 2

	before := th.T.Cycles()
	f, err := pool.CallAsync(th, func(h *sgx.HostCtx) { h.Syscall(nil) })
	if err != nil {
		t.Fatal(err)
	}
	th.T.Charge(overlap)
	f.Wait(th)
	got := th.T.Cycles() - before
	want := m.RPCEnqueue + m.Syscall + m.RPCPoll // residual tops overlap back up to full work
	if got != want {
		t.Fatalf("partially-overlapped async charged %d cycles, want %d", got, want)
	}
	if st := pool.Stats(); st.WaitCycles != m.Syscall-overlap {
		t.Fatalf("WaitCycles = %d, want %d", st.WaitCycles, m.Syscall-overlap)
	}
}

// A batch of W barrier calls on a W-worker pool must be spread across
// all workers by stealing (the batch lands on one affinity shard), and
// its amortized charge is one enqueue + (n-1) marginal enqueues + the
// parallel makespan + one poll.
func TestBatchSpreadsAcrossWorkersByStealing(t *testing.T) {
	plat, th, pool := newAsyncEnv(t, 4)
	m := plat.Model

	barrier := make(chan struct{})
	arrived := make(chan struct{}, 4)
	fn := func(h *sgx.HostCtx) {
		h.Syscall(nil)
		arrived <- struct{}{}
		<-barrier // hold this worker until all four are inside
	}
	fns := []func(*sgx.HostCtx){fn, fn, fn, fn}

	release := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			<-arrived
		}
		close(barrier)
		close(release)
	}()

	before := th.T.Cycles()
	if err := pool.CallBatch(th, fns); err != nil {
		t.Fatal(err)
	}
	<-release
	got := th.T.Cycles() - before
	// All four ran concurrently, each costing one Syscall, so the
	// makespan is a single Syscall.
	want := m.RPCEnqueue + 3*m.RPCBatchEnqueue + m.Syscall + m.RPCPoll
	if got != want {
		t.Fatalf("batch charged %d cycles, want %d", got, want)
	}
	st := pool.Stats()
	if st.Batches != 1 || st.BatchedCalls != 4 || st.Calls != 4 {
		t.Fatalf("batch counters %+v", st)
	}
	// One request stays with the shard owner; the barrier forces the
	// other three onto stealing siblings.
	if st.Steals != 3 {
		t.Fatalf("Steals = %d, want 3", st.Steals)
	}
	if st.PeakQueueDepth < 1 {
		t.Fatalf("PeakQueueDepth = %d, want >= 1", st.PeakQueueDepth)
	}
}

// Submissions on a never-started, stopping or stopped pool fail with
// ErrStopped; a stopped pool can be started again.
func TestStoppedPoolRefusesSubmissions(t *testing.T) {
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 2, 64)
	fn := func(h *sgx.HostCtx) {}
	fns := []func(*sgx.HostCtx){fn, fn}

	check := func(stage string) {
		t.Helper()
		if err := pool.Call(th, fn); !errors.Is(err, ErrStopped) {
			t.Fatalf("%s: Call error = %v, want ErrStopped", stage, err)
		}
		if f, err := pool.CallAsync(th, fn); !errors.Is(err, ErrStopped) || f != nil {
			t.Fatalf("%s: CallAsync = (%v, %v), want (nil, ErrStopped)", stage, f, err)
		}
		if err := pool.CallBatch(th, fns); !errors.Is(err, ErrStopped) {
			t.Fatalf("%s: CallBatch error = %v, want ErrStopped", stage, err)
		}
	}

	check("never started")

	pool.Start()
	if err := pool.Call(th, fn); err != nil {
		t.Fatalf("Call on running pool: %v", err)
	}
	pool.Stop()
	check("stopped")

	// Restart: the pool is reusable after Stop.
	pool.Start()
	defer pool.Stop()
	if err := pool.CallBatch(th, fns); err != nil {
		t.Fatalf("CallBatch after restart: %v", err)
	}
}

// Stop drains: futures accepted before Stop complete, and Wait on them
// succeeds even after the pool has shut down.
func TestStopDrainsAcceptedFutures(t *testing.T) {
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 2, 64)
	pool.Start()

	gate := make(chan struct{})
	var futs []*Future
	for i := 0; i < 8; i++ {
		f, err := pool.CallAsync(th, func(h *sgx.HostCtx) {
			<-gate
			h.Syscall(nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	go func() {
		time.Sleep(5 * time.Millisecond) // let Stop get underway first
		close(gate)
	}()
	pool.Stop() // blocks until the workers drain all eight
	for i, f := range futs {
		f.Wait(th)
		if !f.Done() {
			t.Fatalf("future %d not done after drain", i)
		}
	}
	if st := pool.Stats(); st.WorkerOps != 8 {
		t.Fatalf("WorkerOps = %d, want 8 (accepted work must execute)", st.WorkerOps)
	}
}

// An idle worker descends the backoff ladder to the sleep rung, and an
// enqueue wakes it.
func TestBackoffReachesSleepAndWakes(t *testing.T) {
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 1, 64)
	pool.Start()
	defer pool.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for pool.Stats().Sleeps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the sleep rung")
		}
		time.Sleep(time.Millisecond)
	}
	for pool.Stats().Wakes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("enqueue never woke the sleeping worker")
		}
		time.Sleep(2 * time.Millisecond) // give the worker time to re-sleep
		if err := pool.Call(th, func(h *sgx.HostCtx) {}); err != nil {
			t.Fatal(err)
		}
	}
}

// The async and batched paths are as deterministic as the synchronous
// one: identical programs on fresh platforms consume identical virtual
// time, regardless of host scheduling, stealing order or wake timing.
func TestAsyncChargesDeterministic(t *testing.T) {
	run := func() uint64 {
		plat := newPlat(t)
		encl, err := plat.NewEnclave()
		if err != nil {
			t.Fatal(err)
		}
		th := encl.NewThread()
		th.Enter()
		pool := NewPool(plat, 4, 64)
		pool.Start()
		defer pool.Stop()

		var futs []*Future
		for i := 0; i < 64; i++ {
			f, err := pool.CallAsync(th, func(h *sgx.HostCtx) { h.Syscall(nil) })
			if err != nil {
				t.Fatal(err)
			}
			th.T.Charge(100)
			futs = append(futs, f)
			if len(futs) == 4 {
				futs[0].Wait(th)
				futs = futs[1:]
			}
		}
		for _, f := range futs {
			f.Wait(th)
		}
		fns := make([]func(*sgx.HostCtx), 8)
		for i := range fns {
			fns[i] = func(h *sgx.HostCtx) { h.Syscall(nil) }
		}
		if err := pool.CallBatch(th, fns); err != nil {
			t.Fatal(err)
		}
		return th.T.Cycles()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("async workload nondeterministic: %d vs %d cycles", a, b)
	}
}

package suvm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eleos/internal/sgx"
)

// twoEnclaves builds two enclaves with heaps on one platform.
func twoEnclaves(t testing.TB) (*sgx.Platform, [2]*testEnv) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var envs [2]*testEnv
	for i := range envs {
		encl, err := plat.NewEnclave()
		if err != nil {
			t.Fatal(err)
		}
		th := encl.NewThread()
		th.Enter()
		h, err := New(encl, th, Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = &testEnv{plat: plat, encl: encl, th: th, h: h}
	}
	return plat, envs
}

func TestSegmentTransferBetweenEnclaves(t *testing.T) {
	plat, envs := twoEnclaves(t)
	seg, err := NewSegment(plat, 4<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// Enclave A writes a dataset into the segment and detaches.
	a := envs[0]
	pa, err := a.h.Attach(a.th, seg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 4<<20)
	rand.New(rand.NewSource(8)).Read(want)
	if err := pa.WriteAt(a.th, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := a.h.Detach(a.th, pa); err != nil {
		t.Fatal(err)
	}

	// Enclave B attaches and reads everything back.
	b := envs[1]
	pb, err := b.h.Attach(b.th, seg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pb.ReadAt(b.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("segment contents corrupted across enclave transfer")
	}
	if err := b.h.Detach(b.th, pb); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSingleOwner(t *testing.T) {
	plat, envs := twoEnclaves(t)
	seg, _ := NewSegment(plat, 1<<20, 4096)
	pa, err := envs[0].h.Attach(envs[0].th, seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := envs[1].h.Attach(envs[1].th, seg); err == nil {
		t.Fatal("double mount permitted")
	}
	if err := envs[0].h.Detach(envs[0].th, pa); err != nil {
		t.Fatal(err)
	}
	pb, err := envs[1].h.Attach(envs[1].th, seg)
	if err != nil {
		t.Fatalf("remount after detach failed: %v", err)
	}
	_ = envs[1].h.Detach(envs[1].th, pb)
}

func TestSegmentTamperDetectedAcrossTransfer(t *testing.T) {
	plat, envs := twoEnclaves(t)
	seg, _ := NewSegment(plat, 1<<20, 4096)
	a := envs[0]
	pa, _ := a.h.Attach(a.th, seg)
	_ = pa.WriteAt(a.th, 0, bytes.Repeat([]byte{0xAB}, 1<<20))
	_ = a.h.Detach(a.th, pa)

	// The untrusted OS flips a bit of the sealed segment while it is
	// unmounted (in transit between enclaves).
	var bb [1]byte
	plat.Host.ReadAt(seg.bsBase+5000, bb[:])
	bb[0] ^= 4
	plat.Host.WriteAt(seg.bsBase+5000, bb[:])

	b := envs[1]
	pb, _ := b.h.Attach(b.th, seg)
	defer func() {
		if recover() == nil {
			t.Fatal("tampered segment page accepted after transfer")
		}
	}()
	buf := make([]byte, 4096)
	_ = pb.ReadAt(b.th, 4096, buf)
}

func TestSegmentPingPong(t *testing.T) {
	// Two enclaves increment a shared counter array alternately:
	// message-passing shared memory in action.
	plat, envs := twoEnclaves(t)
	seg, _ := NewSegment(plat, 64<<10, 4096)
	const rounds = 6
	for r := 0; r < rounds; r++ {
		e := envs[r%2]
		p, err := e.h.Attach(e.th, seg)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for slot := uint64(0); slot < 16; slot++ {
			v, err := p.U64At(e.th, slot*4096)
			if err != nil {
				t.Fatal(err)
			}
			if v != uint64(r) {
				t.Fatalf("round %d slot %d: counter %d", r, slot, v)
			}
			if err := p.PutU64At(e.th, slot*4096, v+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.h.Detach(e.th, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentPageSizeMismatchRejected(t *testing.T) {
	plat, envs := twoEnclaves(t)
	seg, _ := NewSegment(plat, 1<<20, 8192)
	if _, err := envs[0].h.Attach(envs[0].th, seg); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
}

func TestDetachedSpointerPoisoned(t *testing.T) {
	plat, envs := twoEnclaves(t)
	seg, _ := NewSegment(plat, 1<<20, 4096)
	p, _ := envs[0].h.Attach(envs[0].th, seg)
	_ = envs[0].h.Detach(envs[0].th, p)
	if err := p.ReadAt(envs[0].th, 0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("detached spointer read: %v, want ErrFreed", err)
	}
	if err := p.WriteAt(envs[0].th, 0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("detached spointer write: %v, want ErrFreed", err)
	}
}

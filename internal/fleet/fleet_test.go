package fleet

import (
	"reflect"
	"testing"

	"eleos/internal/phys"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// fleetEnv is a small machine with two tenant enclaves: heap a is the
// hot tenant the scripted load hammers, heap b stays idle.
type fleetEnv struct {
	plat *sgx.Platform
	a, b *suvm.Heap
	// tha is the driving thread (in a's enclave); its clock is the
	// epoch timebase.
	tha *sgx.Thread
	c   *Controller
}

func newFleetEnv(t *testing.T, pol Policy) *fleetEnv {
	t.Helper()
	// 2 MiB PRM = 512 frames; each tenant configured for a 1 MiB EPC++
	// (256 frames), so PRM is fully committed and shares only move by
	// taking frames from the colder tenant.
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*suvm.Heap, *sgx.Thread) {
		encl, err := plat.NewEnclave()
		if err != nil {
			t.Fatal(err)
		}
		th := encl.NewThread()
		th.Enter()
		h, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 1 << 20, BackingBytes: 32 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return h, th
	}
	a, tha := mk()
	b, thb := mk()
	thb.Exit()
	c, err := New(plat.Driver, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.Register(a)
	c.Register(b)
	return &fleetEnv{plat: plat, a: a, b: b, tha: tha, c: c}
}

// drive runs the scripted load: rounds of writes over a working set 4x
// tenant a's EPC++ (every round faults), pumping after each chunk.
func (e *fleetEnv) drive(t *testing.T, rounds int) {
	t.Helper()
	p, err := e.a.Malloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	for r := 0; r < rounds; r++ {
		for off := uint64(0); off+uint64(len(buf)) <= p.Size(); off += uint64(len(buf)) {
			if err := p.WriteAt(e.tha, off, buf); err != nil {
				t.Fatal(err)
			}
			e.c.Pump(e.tha)
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := New(nil, Policy{}); err == nil {
		t.Fatal("nil driver accepted")
	}
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Policy{
		{MinShareFrames: 4},
		{DeadbandFrac: 1.5},
		{Hysteresis: -1},
		{Hysteresis: 3, ShrinkHysteresis: 2},
	} {
		if _, err := New(plat.Driver, bad); err == nil {
			t.Fatalf("bad policy %+v accepted", bad)
		}
	}
	c, err := New(plat.Driver, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Policy(), Default(); got != want {
		t.Fatalf("zero policy normalized to %+v, want defaults %+v", got, want)
	}
}

func TestFleetRebalancesTowardDemand(t *testing.T) {
	e := newFleetEnv(t, Policy{EpochCycles: 200_000})
	e.drive(t, 6)
	st := e.c.Stats()
	if !st.Enabled || st.Epochs == 0 {
		t.Fatalf("controller never took an epoch: %+v", st)
	}
	if st.Rebalances == 0 {
		t.Fatalf("controller never rebalanced: %+v", st)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("tenants: %+v", st.Tenants)
	}
	hot, idle := st.Tenants[0], st.Tenants[1]
	if hot.ShareFrames <= idle.ShareFrames {
		t.Fatalf("hot tenant share %d not above idle tenant's %d", hot.ShareFrames, idle.ShareFrames)
	}
	// The hot tenant's share saturates at its useful cap (4/3 of its
	// configured EPC++), and the installed driver table matches.
	shares := e.plat.Driver.EPCShares()
	if shares == nil {
		t.Fatal("no share table installed in the driver")
	}
	if got := shares[hot.Enclave]; got != uint64(hot.ShareFrames)*phys.PageSize {
		t.Fatalf("driver table %d bytes for hot tenant, controller says %d frames", got, hot.ShareFrames)
	}
	// The rebalance actually ballooned the heaps: the idle tenant's
	// EPC++ shrank below its configured capacity.
	if idle.ActiveFrames >= idle.CapacityFrames {
		t.Fatalf("idle tenant still holds all %d of %d frames", idle.ActiveFrames, idle.CapacityFrames)
	}
	if hot.Skips != 0 || idle.Skips != 0 {
		t.Fatalf("resizes were skipped: %+v", st.Tenants)
	}
}

// TestFleetUnregisterDropsShare checks a destroyed tenant leaves the
// driver table immediately.
func TestFleetUnregisterDropsShare(t *testing.T) {
	e := newFleetEnv(t, Policy{EpochCycles: 200_000})
	e.drive(t, 4)
	idleID := e.b.Enclave().ID()
	if _, ok := e.plat.Driver.EPCShares()[idleID]; !ok {
		t.Fatal("idle tenant missing from the installed table")
	}
	e.c.Unregister(e.b)
	if _, ok := e.plat.Driver.EPCShares()[idleID]; ok {
		t.Fatal("unregistered tenant still in the driver table")
	}
	st := e.c.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("tenants after unregister: %+v", st.Tenants)
	}
}

// TestFleetTraceDeterministic pins the determinism contract: two runs
// of the identical single-threaded load produce bit-identical decision
// traces.
func TestFleetTraceDeterministic(t *testing.T) {
	run := func() []Decision {
		e := newFleetEnv(t, Policy{EpochCycles: 200_000})
		e.drive(t, 4)
		return e.c.Trace()
	}
	t1, t2 := run(), run()
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("traces diverge:\nrun1: %+v\nrun2: %+v", t1, t2)
	}
	// The trace records real decisions: at least one rebalanced epoch
	// with per-tenant shares.
	var rebalanced bool
	for _, d := range t1 {
		if d.Rebalanced {
			rebalanced = true
			if len(d.Tenants) != 2 {
				t.Fatalf("decision missing tenants: %+v", d)
			}
		}
	}
	if !rebalanced {
		t.Fatal("trace has no rebalanced epoch")
	}
}

package suvm

import (
	"strings"
	"testing"

	"eleos/internal/sgx"
)

// Regression test for the silently-failing swapper tick: TickNow
// discards BalloonTick's error by design (best effort, next tick
// retries), so the refusal must surface in the heap stats — otherwise a
// heap whose shrink is permanently blocked just stops ballooning with
// no trace.
func TestBalloonSkipSurfacesInStats(t *testing.T) {
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 1 << 20}) // 256 frames
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	// EPC++ sized to the whole PRM: the first tick must deflate to 3/4
	// of the driver share (192 frames).
	h, err := New(encl, th, Config{PageCacheBytes: 1 << 20, BackingBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Pin every frame with linked spointers so the shrink cannot pick a
	// victim.
	var pinned []*SPtr
	for i := 0; i < 256; i++ {
		p, err := h.Malloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(th, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	sw := h.NewSwapper()
	sw.TickNow()
	st := h.Stats()
	if st.BalloonSkips != 1 {
		t.Fatalf("BalloonSkips = %d after a blocked tick, want 1", st.BalloonSkips)
	}
	if !strings.Contains(st.LastBalloonErr, "pinned") {
		t.Fatalf("LastBalloonErr = %q, want the pinned-frame refusal", st.LastBalloonErr)
	}
	if got := h.ActiveFrames(); got != 256 {
		t.Fatalf("blocked tick changed ActiveFrames to %d", got)
	}

	// Unpinning lets the next tick succeed; the skip record stays (it is
	// a cumulative counter plus the LAST error) until ResetStats.
	for _, p := range pinned {
		p.Unlink(th)
	}
	sw.TickNow()
	st = h.Stats()
	if st.BalloonSkips != 1 {
		t.Fatalf("BalloonSkips = %d after a clean tick, want still 1", st.BalloonSkips)
	}
	if got := h.ActiveFrames(); got != 192 {
		t.Fatalf("ActiveFrames = %d after unblocked tick, want 192", got)
	}
	h.ResetStats()
	st = h.Stats()
	if st.BalloonSkips != 0 || st.LastBalloonErr != "" {
		t.Fatalf("skip record survives ResetStats: %d %q", st.BalloonSkips, st.LastBalloonErr)
	}
}

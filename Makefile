# Tier-1 gate and helpers for the Eleos simulation repo.
#
#   make check   — the full tier-1 gate: formatting, vet, build, lint
#                  (eleoslint + staticcheck), tests (including the RPC
#                  stress tests under the race detector)
#   make lint    — the static-invariant gate alone: the custom eleoslint
#                  analyzers (trust boundary, determinism, lock order)
#                  plus staticcheck when it is installed
#   make bench   — regenerate the exit-less I/O microbenchmark artifacts
#                  (BENCH_rpc_async.json, BENCH_io_engine.json,
#                  BENCH_selftune.json, BENCH_consolidation.json,
#                  BENCH_fleet.json and BENCH_traffic.json in the repo
#                  root)
#   make bench-gate
#                — the variance-aware perf gate: run the open-loop
#                  traffic experiment at smoke size and compare against
#                  the checked-in baseline with cmd/perfdiff; fails on
#                  a significant regression or a shape change
#   make bench-gate-baseline
#                — regenerate the checked-in bench-gate baseline (run
#                  after a deliberate performance or schema change)
#   make test    — plain test run, no race detector

GO ?= go
BIN ?= bin

# The gate runs the traffic experiment at a fixed smoke size so the
# checked-in baseline and the fresh run see identical schedules; all
# numbers are virtual cycles, so on unchanged code the two files are
# bit-identical on any host.
GATE_FLAGS = -quick -ops 5000 -runs 3 -run traffic
GATE_BASELINE = testdata/bench-gate

.PHONY: check fmt vet build test race bench bench-gate bench-gate-baseline lint eleoslint staticcheck

check: fmt vet build lint race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint: eleoslint staticcheck

# The custom analyzer suite: trustboundary, simdeterminism,
# servicedomain, lockorder, atomicfield and hotpath. Built from source
# every time (the Go build cache makes the rebuild free) and run over
# the whole module. See internal/lint and DESIGN.md "Static invariants".
eleoslint:
	$(GO) build -o $(BIN)/eleoslint ./cmd/eleoslint
	./$(BIN)/eleoslint ./...

# staticcheck is pinned in tools/tools.go but the build environment is
# offline, so the gate runs it only where it is installed (CI installs
# it; see .github/workflows/ci.yml). Configuration in staticcheck.conf.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI runs it)"; \
	fi

bench:
	$(GO) run ./cmd/eleos-bench -quick -run rpc-async,io-engine,selftune,consolidation,fleet,traffic -json .

bench-gate:
	$(GO) build -o $(BIN)/perfdiff ./cmd/perfdiff
	$(GO) run ./cmd/eleos-bench $(GATE_FLAGS) -json $(BIN)/gate >/dev/null
	./$(BIN)/perfdiff $(GATE_BASELINE)/BENCH_traffic.json $(BIN)/gate/BENCH_traffic.json

bench-gate-baseline:
	$(GO) run ./cmd/eleos-bench $(GATE_FLAGS) -json $(GATE_BASELINE) >/dev/null

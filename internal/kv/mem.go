// Package kv provides the hash tables of the paper's microbenchmark
// workloads, written against a memory-region abstraction so one
// implementation runs on untrusted host memory, on the enclave's
// hardware-paged heap, or on SUVM — which is exactly the comparison the
// evaluation draws. Two fixed-size (8-byte key / 8-byte value) variants
// exist because Fig 2b contrasts them: open addressing (no pointer
// chasing, TLB-insensitive) and chaining (pointer chasing, hurt by the
// TLB flushes of enclave exits). A variable-size BlobTable serves the
// face-verification server's 40-byte-key / 232-KiB-value store.
//
// Trust domain: trusted. The tables run inside the enclave over the
// Mem abstraction; host-memory placement goes through suvm/sgx
// accessors, never through raw hostmem access (enforced by eleoslint).
//
//eleos:trusted
//eleos:deterministic
package kv

import (
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Mem is a fixed-size random-access memory region with explicit cost
// accounting: every access happens on behalf of a simulated hardware
// thread and is charged to it.
type Mem interface {
	Read(th *sgx.Thread, off uint64, buf []byte) error
	Write(th *sgx.Thread, off uint64, data []byte) error
	Size() uint64
}

// Region is a Mem over a contiguous simulated address range — untrusted
// host memory or enclave-private heap, depending on the base address
// (sgx.Thread dispatches on it).
type Region struct {
	base uint64
	size uint64
}

// NewRegion wraps [base, base+size).
func NewRegion(base, size uint64) *Region { return &Region{base: base, size: size} }

// HostRegion allocates a fresh untrusted region.
func HostRegion(plat *sgx.Platform, size uint64) *Region {
	return NewRegion(plat.AllocHost(size), size)
}

// EnclaveRegion allocates a fresh enclave-heap region (hardware-paged).
func EnclaveRegion(e *sgx.Enclave, size uint64) *Region {
	return NewRegion(e.Alloc(size), size)
}

// Base returns the region's first address.
func (r *Region) Base() uint64 { return r.base }

// Size returns the region length in bytes.
func (r *Region) Size() uint64 { return r.size }

// Read implements Mem.
func (r *Region) Read(th *sgx.Thread, off uint64, buf []byte) error {
	if off+uint64(len(buf)) > r.size {
		return suvm.ErrOutOfRange
	}
	th.Read(r.base+off, buf)
	return nil
}

// Write implements Mem.
func (r *Region) Write(th *sgx.Thread, off uint64, data []byte) error {
	if off+uint64(len(data)) > r.size {
		return suvm.ErrOutOfRange
	}
	th.Write(r.base+off, data)
	return nil
}

// SUVMRegion is a Mem backed by one SUVM allocation, accessed in the
// container style (unlinked, transiently pinned per access).
type SUVMRegion struct {
	p *suvm.SPtr
}

// NewSUVMRegion allocates size bytes from the allocator — a whole Heap
// or one service's Domain — and wraps them.
func NewSUVMRegion(h suvm.Allocator, size uint64) (*SUVMRegion, error) {
	p, err := h.Malloc(size)
	if err != nil {
		return nil, err
	}
	return &SUVMRegion{p: p}, nil
}

// WrapSPtr adapts an existing allocation.
func WrapSPtr(p *suvm.SPtr) *SUVMRegion { return &SUVMRegion{p: p} }

// SPtr exposes the underlying allocation.
func (r *SUVMRegion) SPtr() *suvm.SPtr { return r.p }

// Size returns the allocation length.
func (r *SUVMRegion) Size() uint64 { return r.p.Size() }

// Read implements Mem.
func (r *SUVMRegion) Read(th *sgx.Thread, off uint64, buf []byte) error {
	return r.p.ReadAt(th, off, buf)
}

// Write implements Mem.
func (r *SUVMRegion) Write(th *sgx.Thread, off uint64, data []byte) error {
	return r.p.WriteAt(th, off, data)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

func readU64(th *sgx.Thread, m Mem, off uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(th, off, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

func writeU64(th *sgx.Thread, m Mem, off, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return m.Write(th, off, b[:])
}

// hash64 is a murmur-style avalanche hash good enough for benchmark keys.
func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Package trustboundary enforces the Eleos trust boundary statically.
//
// The paper's security argument (§3–§4) needs two properties that the
// simulator otherwise keeps only by convention: enclave (trusted) code
// touches untrusted host memory exclusively through the sealing and
// spointer facades, and untrusted code (RPC workers, the file-system
// host side, load generators) never dereferences EPC frame contents or
// calls into enclave code directly.
//
// Packages and functions declare their domain with //eleos:trusted,
// //eleos:untrusted or //eleos:platform doc-comment directives, and
// sanctioned crossing points with //eleos:facade (see
// internal/lint/directive). The analyzer builds the static call graph
// of the whole program and flags:
//
//   - a trusted, non-facade function that calls hostmem.Arena raw byte
//     access (ReadAt/WriteAt/Slice) directly, or that reaches one
//     through a call chain that never passes a facade or platform
//     function;
//   - an untrusted function that calls an EPC-content accessor of the
//     sgx platform layer, or any trusted function.
//
// The call graph is the shared static one from internal/lint/callgraph:
// calls through interface methods and function values are not resolved
// (the rpc request trampoline is the documented escape hatch). Facade
// and platform functions act as barriers in the reachability
// computation — reaching the arena *through* them is precisely what is
// allowed.
package trustboundary

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/callgraph"
	"eleos/internal/lint/directive"
	"eleos/internal/lint/load"
)

// Analyzer is the trustboundary analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "trustboundary",
	Doc:  "enforce the enclave trust boundary via //eleos:trusted annotations",
	Run:  run,
}

// rawArenaMethods are hostmem.Arena's raw byte accessors.
var rawArenaMethods = map[string]bool{"ReadAt": true, "WriteAt": true, "Slice": true}

// epcAccessors are sgx-layer methods that expose EPC frame contents or
// enter the enclave; untrusted code must never call them. Matched by
// package name, receiver type and method name so the analyzer works on
// testdata stand-ins too.
var epcAccessors = map[string]bool{
	"sgx.Driver.frameData":      true,
	"sgx.Thread.enclaveAccess":  true,
	"sgx.Thread.copyResident":   true,
	"sgx.Thread.streamResident": true,
	"sgx.Thread.Enter":          true,
	"sgx.Thread.Exit":           true,
	"sgx.Thread.OCall":          true,
}

// facts is the program-wide view shared by every per-package pass.
type facts struct {
	domain map[*types.Func]directive.Domain
	facade map[*types.Func]bool
	edges  map[*types.Func][]callgraph.Edge
	// reach maps each function that can reach a raw arena accessor
	// without crossing a facade/platform barrier to a printable chain.
	reach map[*types.Func]string
}

var (
	factsMu    sync.Mutex
	factsCache = map[*load.Program]*facts{}
)

func run(pass *analysis.Pass) error {
	f := factsFor(pass.Prog)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			switch f.domain[obj] {
			case directive.DomainTrusted:
				if !f.facade[obj] {
					checkTrusted(pass, f, obj)
				}
			case directive.DomainUntrusted:
				checkUntrusted(pass, f, obj)
			}
		}
	}
	return nil
}

// checkTrusted flags calls out of trusted code that reach raw host
// memory without passing a facade.
func checkTrusted(pass *analysis.Pass, f *facts, fn *types.Func) {
	for _, e := range f.edges[fn] {
		switch {
		case isRawAccessor(e.Callee):
			pass.Report(e.Pos, "rawhostmem",
				"trusted function %s performs raw host-memory access %s; go through the seal/suvm spointer facades",
				shortName(fn), shortName(e.Callee))
		case !barrier(f, e.Callee):
			if chain, ok := f.reach[e.Callee]; ok {
				pass.Report(e.Pos, "rawhostmem",
					"trusted function %s reaches raw host-memory access: %s",
					shortName(fn), chain)
			}
		}
	}
}

// checkUntrusted flags untrusted code touching EPC contents or calling
// into the enclave.
func checkUntrusted(pass *analysis.Pass, f *facts, fn *types.Func) {
	for _, e := range f.edges[fn] {
		if epcAccessors[qualifiedKey(e.Callee)] {
			pass.Report(e.Pos, "epcaccess",
				"untrusted function %s dereferences enclave (EPC) memory via %s",
				shortName(fn), shortName(e.Callee))
			continue
		}
		if f.domain[e.Callee] == directive.DomainTrusted {
			pass.Report(e.Pos, "callstrusted",
				"untrusted function %s calls trusted function %s; enclave entry goes through the sgx platform layer only",
				shortName(fn), shortName(e.Callee))
		}
	}
}

func factsFor(prog *load.Program) *facts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := factsCache[prog]; ok {
		return f
	}
	f := build(prog)
	factsCache[prog] = f
	return f
}

// build computes domains and barrier-aware reachability to the raw
// arena accessors for the whole program, over the shared call graph.
func build(prog *load.Program) *facts {
	g := callgraph.For(prog)
	f := &facts{
		domain: map[*types.Func]directive.Domain{},
		facade: map[*types.Func]bool{},
		edges:  g.Out,
		reach:  map[*types.Func]string{},
	}
	for _, pkg := range prog.Packages {
		pkgSet := directive.ForPackage(pkg.Files)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				set := pkgSet
				set.Merge(directive.ForFunc(fd))
				f.domain[obj] = set.Domain
				f.facade[obj] = set.Facade
			}
		}
	}

	// Reverse-BFS from the raw accessors. A function joins the reach
	// set when a callee in the set is not a barrier; barriers join the
	// set (their direct raw access is visible to their own callers'
	// checks) but never propagate membership upward.
	var queue []*types.Func
	for caller, es := range f.edges {
		for _, e := range es {
			if isRawAccessor(e.Callee) && f.reach[caller] == "" {
				f.reach[caller] = shortName(caller) + " calls " + shortName(e.Callee)
				queue = append(queue, caller)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if barrier(f, fn) {
			continue
		}
		for _, caller := range g.In[fn] {
			if f.reach[caller] == "" {
				f.reach[caller] = shortName(caller) + " -> " + f.reach[fn]
				queue = append(queue, caller)
			}
		}
	}
	return f
}

func barrier(f *facts, fn *types.Func) bool {
	return f.facade[fn] || f.domain[fn] == directive.DomainPlatform
}

func isRawAccessor(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Name() != "hostmem" || !rawArenaMethods[fn.Name()] {
		return false
	}
	return recvTypeName(fn) == "Arena"
}

// qualifiedKey renders "pkg.Recv.Method" (or "pkg.Func") for matching
// against the epcAccessors table.
func qualifiedKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if r := recvTypeName(fn); r != "" {
		return fn.Pkg().Name() + "." + r + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// shortName renders pkg.Name or pkg.(*Recv).Name for messages.
func shortName(fn *types.Func) string {
	var b strings.Builder
	if fn.Pkg() != nil {
		b.WriteString(fn.Pkg().Name())
		b.WriteString(".")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if r := recvTypeName(fn); r != "" {
			if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
				b.WriteString("(*" + r + ").")
			} else {
				b.WriteString(r + ".")
			}
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

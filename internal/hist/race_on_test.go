//go:build race

package hist_test

// raceEnabled reports whether the race detector is on; allocation-count
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = true

package eleos

import (
	"fmt"
	"reflect"
	"testing"
)

// Fleet ballooning's public-stack contracts: a runtime built without
// WithFleetBalloon exposes no controller and a zero Fleet stats branch,
// and a fleet-enabled runtime's decision trace is deterministic through
// the full wiring — NewEnclave registration, Ctx.Pump, the driver share
// table, and Destroy unregistration.

func TestFleetDisabledSurface(t *testing.T) {
	rt, err := NewRuntime(WithMachine(MachineConfig{UsablePRMBytes: 8 << 20}), WithCATWays(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Fleet() != nil {
		t.Fatal("Fleet() non-nil without WithFleetBalloon")
	}
	if st := rt.Stats().Fleet; st.Enabled || st.Epochs != 0 || len(st.Tenants) != 0 {
		t.Fatalf("fleet stats on a fleet-less runtime: %+v", st)
	}
	if rt.Platform().Driver.EPCShares() != nil {
		t.Fatal("share table installed without a fleet controller")
	}
}

// The public mirror of internal/fleet's determinism test: one hot and
// one idle tenant under a contended PRM, driven identically twice, must
// produce byte-equal decision traces and steer the driver share table
// toward the hot tenant.
func TestFleetRuntimeTraceDeterministic(t *testing.T) {
	run := func() ([]FleetDecision, string) {
		rt, err := NewRuntime(
			WithMachine(MachineConfig{UsablePRMBytes: 2 << 20}), // 512 frames
			WithCATWays(0),
			WithFleetBalloon(FleetPolicy{EpochCycles: 200_000}),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		mk := func() (*Enclave, *Ctx) {
			encl, err := rt.NewEnclave(EnclaveConfig{
				PageCacheBytes: 1 << 20,
				Heap:           HeapConfig{BackingBytes: 16 << 20},
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := encl.NewContext()
			return encl, ctx
		}
		hot, hctx := mk()
		defer hot.Destroy()
		defer hctx.Close()
		idle, ictx := mk()
		defer idle.Destroy()
		defer ictx.Close()

		p, err := hctx.Malloc(4 << 20)
		if err != nil {
			t.Fatal(err)
		}
		chunk := make([]byte, 16<<10)
		for round := 0; round < 6; round++ {
			for off := uint64(0); off+uint64(len(chunk)) <= 4<<20; off += uint64(len(chunk)) {
				if err := p.WriteAt(off, chunk); err != nil {
					t.Fatal(err)
				}
				hctx.Pump()
			}
		}
		st := rt.Stats().Fleet
		return rt.Fleet().Trace(), fmt.Sprintf("epochs=%d rebalances=%d skips=%d",
			st.Epochs, st.Rebalances, st.Skips)
	}
	trace1, sum1 := run()
	trace2, sum2 := run()
	if sum1 != sum2 {
		t.Fatalf("counter summaries diverge: %s vs %s", sum1, sum2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("decision traces diverge between identical runs:\n run1: %+v\n run2: %+v", trace1, trace2)
	}
	var rebalanced *FleetDecision
	for i := range trace1 {
		if trace1[i].Rebalanced {
			rebalanced = &trace1[i]
		}
	}
	if rebalanced == nil {
		t.Fatalf("drive produced no rebalance: %s", sum1)
	}
	last := rebalanced.Tenants
	if len(last) != 2 || last[0].ShareFrames <= last[1].ShareFrames {
		t.Fatalf("shares not steered toward the hot tenant: %+v", last)
	}
}

// Package locks is testdata for the lockorder analyzer.
package locks

import "sync"

type table struct {
	// outer is the outermost lock of the fixture hierarchy.
	//
	//eleos:lockorder 10
	outer sync.RWMutex

	//eleos:lockorder 20
	inner sync.Mutex

	// peer shares inner's rank: one of each may be held, never both.
	//
	//eleos:lockorder 20
	peer sync.Mutex

	// plain carries no rank and is invisible to the analyzer.
	plain sync.Mutex
}

//eleos:lockorder 30
var global sync.Mutex

// InOrder acquires ranks in increasing order: clean.
func (t *table) InOrder() {
	t.outer.Lock()
	t.inner.Lock()
	global.Lock()
	global.Unlock()
	t.inner.Unlock()
	t.outer.Unlock()
}

// Deferred releases via defer: locks stay held to function end, which
// is still in order here: clean.
func (t *table) Deferred() {
	t.outer.RLock()
	defer t.outer.RUnlock()
	t.inner.Lock()
	defer t.inner.Unlock()
}

// Inverted takes the outer lock while holding the inner one: flagged.
func (t *table) Inverted() {
	t.inner.Lock()
	t.outer.RLock() // want "acquires locks.table.outer \\(rank 10\\) while holding locks.table.inner \\(rank 20\\)"
	t.outer.RUnlock()
	t.inner.Unlock()
}

// InvertedDefer holds inner to function end, then takes outer: flagged.
func (t *table) InvertedDefer() {
	t.inner.Lock()
	defer t.inner.Unlock()
	t.outer.Lock() // want "acquires locks.table.outer \\(rank 10\\) while holding locks.table.inner \\(rank 20\\)"
	defer t.outer.Unlock()
}

// SameRank holds two rank-20 locks at once: flagged.
func (t *table) SameRank() {
	t.inner.Lock()
	t.peer.Lock() // want "acquires locks.table.peer \\(rank 20\\) while already holding locks.table.inner"
	t.peer.Unlock()
	t.inner.Unlock()
}

// Sequential re-acquisition of one rank is fine: clean.
func (t *table) Sequential() {
	t.inner.Lock()
	t.inner.Unlock()
	t.peer.Lock()
	t.peer.Unlock()
}

// Branches release on an early-exit path; the main path stays in
// order: clean.
func (t *table) Branches(cond bool) {
	t.outer.RLock()
	if cond {
		t.outer.RUnlock()
		return
	}
	t.inner.Lock()
	t.inner.Unlock()
	t.outer.RUnlock()
}

// BranchInverted inverts the order only inside one branch: flagged.
func (t *table) BranchInverted(cond bool) {
	t.inner.Lock()
	if cond {
		t.outer.Lock() // want "acquires locks.table.outer \\(rank 10\\) while holding locks.table.inner \\(rank 20\\)"
		t.outer.Unlock()
	}
	t.inner.Unlock()
}

// TryLock counts as an acquisition: flagged.
func (t *table) Try() {
	t.inner.Lock()
	if t.outer.TryRLock() { // want "acquires locks.table.outer \\(rank 10\\) while holding locks.table.inner \\(rank 20\\)"
		t.outer.RUnlock()
	}
	t.inner.Unlock()
}

// Unranked locks never participate: clean.
func (t *table) Unranked() {
	t.plain.Lock()
	t.outer.Lock()
	t.outer.Unlock()
	t.plain.Unlock()
}

// Goroutine bodies start with an empty held set: clean.
func (t *table) Spawn() {
	t.inner.Lock()
	go func() {
		t.outer.Lock()
		t.outer.Unlock()
	}()
	t.inner.Unlock()
}

package suvm

import (
	"fmt"
	"math/rand"
	"testing"
)

// goldenWorkload runs a fixed seeded single-threaded paging workload —
// random 4K accesses over a working set 4x EPC++, reads and writes,
// exercising major faults, eviction, write-back and clean drops — and
// returns a fingerprint of the virtual clock and every paging counter.
func goldenWorkload(t *testing.T, pol EvictionPolicy) [6]uint64 {
	t.Helper()
	cfg := Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20, Policy: pol}
	e := newEnv(t, cfg)
	p, err := e.h.Malloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off := uint64(0); off < p.Size(); off += 4096 {
		if err := p.WriteAt(e.th, off, buf); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(271828))
	for i := 0; i < 3000; i++ {
		off := uint64(rng.Intn(int(p.Size()/4096))) * 4096
		var err error
		if i%3 == 0 {
			err = p.WriteAt(e.th, off, buf)
		} else {
			err = p.ReadAt(e.th, off, buf)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.h.Stats()
	return [6]uint64{
		e.th.T.Cycles(),
		st.MajorFaults,
		st.MinorFaults,
		st.Evictions,
		st.WriteBacks,
		st.FaultCycles,
	}
}

// Golden fingerprints captured from the pre-refactor (global-faultMu)
// SUVM engine at commit bd759c5. The concurrent fault pipeline must
// leave the single-threaded virtual-cycle accounting bit-identical:
// same charge sequence, same victim selection, same frame-allocation
// order. Any divergence here means single-threaded benches (fig7a,
// fig8a/b, tab3, pflat) are no longer comparable to earlier runs.
var goldenFingerprints = map[EvictionPolicy][6]uint64{
	PolicyClock:  {57432604, 3282, 742, 3026, 1826, 38053224},
	PolicyFIFO:   {57501468, 3276, 748, 3020, 1840, 38122448},
	PolicyRandom: {56619822, 3234, 790, 2978, 1785, 37235072},
}

func TestSingleThreadCyclesMatchSeed(t *testing.T) {
	for pol, want := range goldenFingerprints {
		pol, want := pol, want
		t.Run(pol.String(), func(t *testing.T) {
			got := goldenWorkload(t, pol)
			if got != want {
				t.Fatalf("single-threaded fingerprint diverged from seed:\n got  %v\n want %v\n(fields: cycles, major, minor, evictions, writebacks, faultCycles)", got, want)
			}
		})
	}
}

// goldenSwapperWorkload is goldenWorkload with a manual swapper tick
// interleaved every 250 accesses, exercising the reclaim path that puts
// frames back into the sharded pool (and with it a frame-allocation
// order the pre-refactor global stack never produced — see the
// framePool comment in evictor.go).
func goldenSwapperWorkload(t *testing.T, pol EvictionPolicy) [6]uint64 {
	t.Helper()
	cfg := Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20, Policy: pol}
	e := newEnv(t, cfg)
	sw := e.h.NewSwapper()
	p, err := e.h.Malloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off := uint64(0); off < p.Size(); off += 4096 {
		if err := p.WriteAt(e.th, off, buf); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(271828))
	for i := 0; i < 3000; i++ {
		if i%250 == 0 {
			sw.TickNow()
		}
		off := uint64(rng.Intn(int(p.Size()/4096))) * 4096
		var err error
		if i%3 == 0 {
			err = p.WriteAt(e.th, off, buf)
		} else {
			err = p.ReadAt(e.th, off, buf)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.h.Stats()
	return [6]uint64{
		e.th.T.Cycles(),
		st.MajorFaults,
		st.MinorFaults,
		st.Evictions,
		st.WriteBacks,
		st.FaultCycles,
	}
}

// Fingerprints of the swapper-interleaved workload, captured from the
// fault pipeline itself (there is no pre-refactor baseline for these:
// the old engine's global LIFO free stack allocated reclaimed frames in
// a different order, so seed-comparability deliberately excludes
// manual-swapper runs). They pin that deterministic reclaim-mixed runs
// stay bit-identical from build to build.
var goldenSwapperFingerprints = map[EvictionPolicy][6]uint64{
	PolicyClock:  {57046510, 3282, 742, 3026, 1826, 37667130},
	PolicyFIFO:   {57089500, 3277, 747, 3021, 1840, 37710420},
	PolicyRandom: {56549656, 3264, 760, 3008, 1799, 37163106},
}

func TestManualSwapperRunsDeterministic(t *testing.T) {
	for pol, want := range goldenSwapperFingerprints {
		pol, want := pol, want
		t.Run(pol.String(), func(t *testing.T) {
			got := goldenSwapperWorkload(t, pol)
			if got != want {
				t.Fatalf("swapper-interleaved fingerprint diverged:\n got  %v\n want %v\n(fields: cycles, major, minor, evictions, writebacks, faultCycles)", got, want)
			}
		})
	}
}

// TestGoldenPrint prints the current fingerprints; used to (re)capture
// the constants above when the cost model itself changes intentionally.
func TestGoldenPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("capture helper")
	}
	for _, pol := range []EvictionPolicy{PolicyClock, PolicyFIFO, PolicyRandom} {
		fmt.Printf("%s: %v swapper: %v\n", pol, goldenWorkload(t, pol), goldenSwapperWorkload(t, pol))
	}
}

package eleos

import (
	"errors"
	"testing"
)

// WithRPCWorkers (fixed pool) and WithWorkerBounds/WithAutoTune
// (adaptive pool) are mutually exclusive, whichever order the options
// appear in. NewRuntime fails with the ErrConflictingOptions sentinel.
func TestConflictingWorkerOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"workers-then-bounds", []Option{WithRPCWorkers(4), WithWorkerBounds(1, 8)}},
		{"bounds-then-workers", []Option{WithWorkerBounds(1, 8), WithRPCWorkers(4)}},
		{"workers-then-autotune", []Option{WithRPCWorkers(2), WithAutoTune(TunePolicy{})}},
		{"autotune-then-workers", []Option{WithAutoTune(TunePolicy{}), WithRPCWorkers(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := NewRuntime(tc.opts...)
			if err == nil {
				rt.Close()
				t.Fatal("conflicting options accepted")
			}
			if !errors.Is(err, ErrConflictingOptions) {
				t.Fatalf("err = %v, want ErrConflictingOptions", err)
			}
		})
	}

	// Each side alone stays valid.
	rt, err := NewRuntime(WithRPCWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tuner() != nil {
		t.Fatal("fixed-pool runtime has a tuner")
	}
	rt.Close()
	rt, err = NewRuntime(WithWorkerBounds(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Tuner() == nil {
		t.Fatal("WithWorkerBounds built no tuner")
	}
	if got := rt.Pool().WorkerCount(); got != 2 {
		t.Fatalf("self-tuning pool starts with %d workers, want the lower bound 2", got)
	}
	pol := rt.Tuner().Policy()
	if pol.MinWorkers != 2 || pol.MaxWorkers != 6 {
		t.Fatalf("tuner bounds = [%d, %d], want [2, 6]", pol.MinWorkers, pol.MaxWorkers)
	}
}

// Runtime.Stats assembles the unified tree and agrees with the old
// accessors it wraps.
func TestRuntimeStatsTree(t *testing.T) {
	rt, err := NewRuntime(WithRPCWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, err := ctx.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteAt(0, []byte("stats")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ctx.Exitless(func(h *HostCtx) { h.Syscall(nil) })
	}
	if _, err := ctx.IO().SubmitAndWait(); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.RPC.Calls < 10 {
		t.Fatalf("RPC.Calls = %d, want >= 10", st.RPC.Calls)
	}
	if st.RPC.Workers != 2 {
		t.Fatalf("RPC.Workers = %d, want 2", st.RPC.Workers)
	}
	if len(st.Heaps) != 1 {
		t.Fatalf("Heaps has %d entries, want 1", len(st.Heaps))
	}
	if st.Heaps[0].MajorFaults == 0 {
		t.Fatal("heap stats show no faults after a cold write")
	}
	if st.Tune.Enabled {
		t.Fatal("Tune.Enabled on a fixed-pool runtime")
	}
	// The deprecated accessors are thin wrappers over the same counters.
	if got := encl.Stats().MajorFaults; got != st.Heaps[0].MajorFaults {
		t.Fatalf("Enclave.Stats().MajorFaults = %d, tree says %d", got, st.Heaps[0].MajorFaults)
	}
	if got := rt.Pool().Stats().Workers; got != st.RPC.Workers {
		t.Fatalf("Pool().Stats().Workers = %d, tree says %d", got, st.RPC.Workers)
	}

	// A destroyed enclave drops out of the tree.
	encl2, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Stats().Heaps); got != 2 {
		t.Fatalf("Heaps has %d entries after second enclave, want 2", got)
	}
	encl2.Destroy()
	if got := len(rt.Stats().Heaps); got != 1 {
		t.Fatalf("Heaps has %d entries after Destroy, want 1", got)
	}
}

// End-to-end autotuning through the public API: a serving loop that
// only calls Pump sees the pool grow under a saturated batch phase,
// the advice climb to linked-async, and both fall back in the quiet
// phase. Pump on a fixed-pool runtime is a cheap no-op.
func TestAutoTuneEndToEnd(t *testing.T) {
	rt, err := NewRuntime(WithAutoTune(TunePolicy{
		EpochCycles:      300_000,
		MinWorkers:       1,
		MaxWorkers:       4,
		Hysteresis:       2,
		ShrinkHysteresis: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()
	q := ctx.IO()
	if q.Mode() != IORPCAsync {
		t.Fatalf("fresh queue mode = %v", q.Mode())
	}

	work := func(h *HostCtx) {
		h.Syscall(nil)
		h.Thread().T.Charge(4750)
	}
	batch := make([]func(*HostCtx), 8)
	for i := range batch {
		batch[i] = work
	}
	epochs := 0
	for i := 0; i < 400; i++ { // busy phase
		ctx.ExitlessBatch(batch...)
		if ctx.Pump() {
			epochs++
		}
	}
	busy := rt.Stats().Tune
	if !busy.Enabled {
		t.Fatal("Tune.Enabled false on an autotuned runtime")
	}
	if busy.Workers <= 1 {
		t.Fatalf("busy phase never grew the pool: %+v", busy)
	}
	if busy.Mode != IORPCAsync || !busy.Chain {
		t.Fatalf("busy-phase advice = mode %v chain %v, want linked async", busy.Mode, busy.Chain)
	}

	for i := 0; i < 400; i++ { // quiet phase
		ctx.Thread().T.Charge(20_000)
		if i%16 == 0 {
			ctx.Exitless(work)
		}
		if ctx.Pump() {
			epochs++
		}
	}
	quiet := rt.Stats().Tune
	if quiet.Workers != 1 {
		t.Fatalf("quiet phase left %d workers, want 1", quiet.Workers)
	}
	if quiet.Mode != IORPCSync || quiet.Chain {
		t.Fatalf("quiet-phase advice = mode %v chain %v, want plain sync", quiet.Mode, quiet.Chain)
	}
	// Pump carried the advice onto the context's queue.
	if q.Mode() != IORPCSync {
		t.Fatalf("queue mode after quiet phase = %v, want %v", q.Mode(), IORPCSync)
	}
	if epochs == 0 || uint64(epochs) != quiet.Epochs {
		t.Fatalf("Pump reported %d epochs, stats say %d", epochs, quiet.Epochs)
	}
	if quiet.Grows == 0 || quiet.Shrinks == 0 || quiet.ModeSwitches < 2 {
		t.Fatalf("degenerate run: %+v", quiet)
	}
	// The queue kept working across every resize and mode flip.
	if _, err := q.SubmitAndWait(); err != nil {
		t.Fatal(err)
	}

	// Pump without a tuner: false, and nothing breaks.
	fixed, err := NewRuntime(WithRPCWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	fencl, err := fixed.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer fencl.Destroy()
	fctx := fencl.NewContext()
	defer fctx.Close()
	if fctx.Pump() {
		t.Fatal("Pump fired on a runtime without autotuning")
	}
}

package suvm

import (
	"bytes"
	"errors"
	"testing"

	"eleos/internal/sgx"
)

// Domain carving and isolation invariants: ownership-tagged frees,
// backing quotas, carve validation, and the resize exclusion.

func TestDomainCarveAndRoundTrip(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 128 << 10, BackingBytes: 64 << 20}) // 32 frames
	d, err := e.h.NewDomain(e.th, DomainConfig{Name: "svc", EPCBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.EPCFrames() != 8 {
		t.Fatalf("carved %d frames, want 8", d.EPCFrames())
	}
	// A working set 4x the carve pages entirely inside the domain.
	p, err := d.Malloc(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 128<<10)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := p.WriteAt(e.th, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(e.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("domain readback mismatch across evictions")
	}
	st := d.Stats()
	if st.MajorFaults == 0 || st.Evictions == 0 {
		t.Fatalf("domain paged through the shared pipeline without domain-local accounting: %+v", st)
	}
	// The heap aggregate rolls the domain up (totals stay meaningful),
	// and itemizes it: all paging activity must be attributed to "svc",
	// none left on the root.
	hs := e.h.Stats()
	if hs.MajorFaults != st.MajorFaults {
		t.Fatalf("heap aggregate %d faults, domain %d — root took faults of its own", hs.MajorFaults, st.MajorFaults)
	}
	if len(hs.Domains) != 1 || hs.Domains[0].Name != "svc" || hs.Domains[0].MajorFaults != st.MajorFaults {
		t.Fatalf("domain rollup missing or wrong: %+v", hs.Domains)
	}
	if err := d.Free(e.th, p); err != nil {
		t.Fatal(err)
	}
}

func TestDomainCrossFreeRejected(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 128 << 10, BackingBytes: 64 << 20})
	a, err := e.h.NewDomain(e.th, DomainConfig{Name: "a", EPCBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.h.NewDomain(e.th, DomainConfig{Name: "b", EPCBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Malloc(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(e.th, pa); !errors.Is(err, ErrCrossDomain) {
		t.Fatalf("freeing a's allocation via b: got %v, want ErrCrossDomain", err)
	}
	if err := e.h.Free(e.th, pa); !errors.Is(err, ErrCrossDomain) {
		t.Fatalf("freeing a's allocation via the root: got %v, want ErrCrossDomain", err)
	}
	proot, err := e.h.Malloc(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e.th, proot); !errors.Is(err, ErrCrossDomain) {
		t.Fatalf("freeing a root allocation via a: got %v, want ErrCrossDomain", err)
	}
	if err := a.Free(e.th, pa); err != nil {
		t.Fatal(err)
	}
	if err := e.h.Free(e.th, proot); err != nil {
		t.Fatal(err)
	}
}

func TestDomainBackingQuota(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 128 << 10, BackingBytes: 64 << 20})
	d, err := e.h.NewDomain(e.th, DomainConfig{
		Name: "quota", EPCBytes: 32 << 10, BackingQuota: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.Malloc(48 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(32 << 10); !errors.Is(err, ErrBackingFull) {
		t.Fatalf("over-quota malloc: got %v, want ErrBackingFull", err)
	}
	// Freeing returns quota.
	if err := d.Free(e.th, p1); err != nil {
		t.Fatal(err)
	}
	p2, err := d.Malloc(32 << 10)
	if err != nil {
		t.Fatalf("malloc after free should fit the quota again: %v", err)
	}
	if err := d.Free(e.th, p2); err != nil {
		t.Fatal(err)
	}
}

func TestDomainCarveValidation(t *testing.T) {
	e := newEnv(t, smallCfg()) // 16 frames
	if _, err := e.h.NewDomain(e.th, DomainConfig{EPCBytes: 16 << 10}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nameless carve: got %v, want ErrBadConfig", err)
	}
	if _, err := e.h.NewDomain(e.th, DomainConfig{Name: "x"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero-EPC carve: got %v, want ErrBadConfig", err)
	}
	// 16 frames total: carving 14 would leave the root only 2 (< 4).
	if _, err := e.h.NewDomain(e.th, DomainConfig{Name: "x", EPCBytes: 56 << 10}); !errors.Is(err, sgx.ErrOutOfEPC) {
		t.Fatalf("over-carve: got %v, want ErrOutOfEPC", err)
	}
	if _, err := e.h.NewDomain(e.th, DomainConfig{Name: "x", EPCBytes: 16 << 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.h.NewDomain(e.th, DomainConfig{Name: "x", EPCBytes: 16 << 10}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate name: got %v, want ErrBadConfig", err)
	}
}

func TestResizeScalesDomainsProportionally(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 128 << 10, BackingBytes: 64 << 20}) // 32 frames
	d, err := e.h.NewDomain(e.th, DomainConfig{Name: "svc", EPCBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Root 24 frames, domain 8. Halving the TOTAL to 16 frames must
	// scale both carves proportionally: root 12, domain 4.
	if err := e.h.ResizeTo(e.th, 64<<10); err != nil {
		t.Fatal(err)
	}
	if got := e.h.ActiveFrames(); got != 12 {
		t.Fatalf("root active after proportional shrink: got %d, want 12", got)
	}
	if got := d.ActiveFrames(); got != 4 {
		t.Fatalf("domain active after proportional shrink: got %d, want 4", got)
	}
	// The shrunk domain keeps paging: a working set twice its reduced
	// carve still round-trips through its own evictor.
	p, err := d.Malloc(32 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 32<<10)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := p.WriteAt(e.th, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(e.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("domain readback mismatch after proportional shrink")
	}
	// Growing back re-enables both carves to their full capacity.
	if err := e.h.ResizeTo(e.th, 128<<10); err != nil {
		t.Fatal(err)
	}
	if got := e.h.ActiveFrames(); got != 24 {
		t.Fatalf("root active after regrow: got %d, want 24", got)
	}
	if got := d.ActiveFrames(); got != 8 {
		t.Fatalf("domain active after regrow: got %d, want 8", got)
	}
	if err := p.ReadAt(e.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("domain readback mismatch after regrow")
	}
	// Floors hold: shrinking to nothing leaves root 4 and domain
	// min(4, carve) = 4 frames.
	if err := e.h.ResizeTo(e.th, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.h.ActiveFrames(); got != 4 {
		t.Fatalf("root active at floor: got %d, want 4", got)
	}
	if got := d.ActiveFrames(); got != 4 {
		t.Fatalf("domain active at floor: got %d, want 4", got)
	}
	if err := d.Free(e.th, p); err != nil {
		t.Fatal(err)
	}
}

package exitio_test

import (
	"errors"
	"testing"

	"eleos/internal/exitio"
	"eleos/internal/fsim"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

type env struct {
	plat *sgx.Platform
	th   *sgx.Thread
	pool *rpc.Pool
}

func newEnv(t *testing.T, mode exitio.Mode) (*env, *exitio.Engine) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{plat: plat}
	if mode == exitio.ModeDirect {
		e.th = plat.NewHostThread(0)
	} else {
		encl, err := plat.NewEnclave()
		if err != nil {
			t.Fatal(err)
		}
		e.th = encl.NewThread()
		e.th.Enter()
	}
	if mode.NeedsPool() {
		e.pool = rpc.NewPool(plat, 2, 64)
		e.pool.Start()
		t.Cleanup(e.pool.Stop)
	}
	eng, err := exitio.NewEngine(mode, e.pool)
	if err != nil {
		t.Fatal(err)
	}
	return e, eng
}

func TestModeStringParse(t *testing.T) {
	for _, m := range []exitio.Mode{exitio.ModeDirect, exitio.ModeOCall, exitio.ModeRPCSync, exitio.ModeRPCAsync} {
		got, err := exitio.ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := exitio.ParseMode("telepathy"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}

func TestEngineRequiresPool(t *testing.T) {
	for _, m := range []exitio.Mode{exitio.ModeRPCSync, exitio.ModeRPCAsync} {
		if _, err := exitio.NewEngine(m, nil); err == nil {
			t.Fatalf("NewEngine(%v, nil) succeeded; want error", m)
		}
	}
	for _, m := range []exitio.Mode{exitio.ModeDirect, exitio.ModeOCall} {
		if _, err := exitio.NewEngine(m, nil); err != nil {
			t.Fatalf("NewEngine(%v, nil) = %v; want nil", m, err)
		}
	}
}

// All four modes complete a socket request/response pair with correct
// typed completions.
func TestModesCompleteSocketOps(t *testing.T) {
	for _, mode := range []exitio.Mode{exitio.ModeDirect, exitio.ModeOCall, exitio.ModeRPCSync, exitio.ModeRPCAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			e, eng := newEnv(t, mode)
			sock := netsim.NewSocket(e.plat, 4096)
			defer sock.Close()
			q := eng.NewQueue()

			sock.Deliver([]byte("request"))
			q.PushTagged(exitio.Recv{Sock: sock, N: 128}, 7)
			q.Push(exitio.Send{Sock: sock, N: 64})
			cqes, err := q.SubmitAndWait(e.th)
			if err != nil {
				t.Fatal(err)
			}
			if len(cqes) != 2 {
				t.Fatalf("got %d completions, want 2", len(cqes))
			}
			if cqes[0].Kind != exitio.OpRecv || cqes[0].N != 128 || cqes[0].Tag != 7 || cqes[0].Err != nil {
				t.Fatalf("recv CQE = %+v", cqes[0])
			}
			if cqes[1].Kind != exitio.OpSend || cqes[1].N != 64 || cqes[1].Err != nil {
				t.Fatalf("send CQE = %+v", cqes[1])
			}
			if q.Staged() != 0 || q.InFlight() != 0 {
				t.Fatalf("queue not drained: staged %d, inflight %d", q.Staged(), q.InFlight())
			}
		})
	}
}

// A linked chain crosses the boundary on one doorbell; unlinked pushes
// cross on one each.
func TestLinkingCoalescesDoorbells(t *testing.T) {
	e, eng := newEnv(t, exitio.ModeRPCAsync)
	sock := netsim.NewSocket(e.plat, 4096)
	defer sock.Close()
	sock.Deliver([]byte("x"))
	q := eng.NewQueue()

	q.Push(exitio.Send{Sock: sock, N: 32})
	q.PushLinked(exitio.Recv{Sock: sock, N: 32})
	q.PushLinked(exitio.Send{Sock: sock, N: 32})
	if _, err := q.SubmitAndWait(e.th); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Doorbells != 1 || st.Chains != 1 || st.Ops != 3 || st.Linked != 2 {
		t.Fatalf("linked chain stats = %+v, want 1 doorbell / 1 chain / 3 ops / 2 linked", st)
	}

	q.Push(exitio.Send{Sock: sock, N: 32})
	q.Push(exitio.Recv{Sock: sock, N: 32})
	if _, err := q.SubmitAndWait(e.th); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Doorbells != 3 || st.Chains != 3 || st.Ops != 5 || st.Linked != 2 {
		t.Fatalf("unlinked stats = %+v, want 3 doorbells / 3 chains / 5 ops / 2 linked", st)
	}
}

// A failing op cancels the rest of its chain but not the next chain.
func TestChainCancelOnError(t *testing.T) {
	e, eng := newEnv(t, exitio.ModeRPCSync)
	fs := fsim.NewFS(e.plat)
	buf := make([]byte, 16)
	q := eng.NewQueue()

	q.Push(exitio.Pwrite{FS: fs, FD: 999, Off: 0, Data: buf}) // bad fd
	q.PushLinked(exitio.Pread{FS: fs, FD: 999, Off: 0, Buf: buf})
	q.Push(exitio.Open{FS: fs, Name: "/ok"}) // separate chain, still runs
	cqes, err := q.SubmitAndWait(e.th)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 3 {
		t.Fatalf("got %d completions, want 3", len(cqes))
	}
	if !errors.Is(cqes[0].Err, fsim.ErrBadFD) {
		t.Fatalf("pwrite err = %v, want ErrBadFD", cqes[0].Err)
	}
	if !errors.Is(cqes[1].Err, exitio.ErrCanceled) {
		t.Fatalf("linked pread err = %v, want ErrCanceled", cqes[1].Err)
	}
	if cqes[2].Err != nil || cqes[2].N < 3 {
		t.Fatalf("open CQE = %+v, want a valid fd", cqes[2])
	}
	if got := exitio.FirstErr(cqes); !errors.Is(got, fsim.ErrBadFD) {
		t.Fatalf("FirstErr = %v, want the root-cause ErrBadFD", got)
	}
}

// Async submissions reap in submission order, and Reap/WaitN behave as
// documented while chains are in flight.
func TestAsyncSubmitReapOrder(t *testing.T) {
	e, eng := newEnv(t, exitio.ModeRPCAsync)
	fs := fsim.NewFS(e.plat)
	q := eng.NewQueue()
	q.Push(exitio.Open{FS: fs, Name: "/log"})
	cqes, err := q.SubmitAndWait(e.th)
	if err != nil {
		t.Fatal(err)
	}
	fd := cqes[0].N

	const n = 16
	data := make([]byte, 64)
	for i := 0; i < n; i++ {
		q.PushTagged(exitio.Pwrite{FS: fs, FD: fd, Off: uint64(i * 64), Data: data}, uint64(i))
		if err := q.Submit(e.th); err != nil {
			t.Fatal(err)
		}
	}
	got := q.WaitN(e.th, n)
	if len(got) != n {
		t.Fatalf("WaitN(%d) returned %d completions", n, len(got))
	}
	for i, c := range got {
		if c.Tag != uint64(i) || c.Err != nil || c.N != 64 {
			t.Fatalf("completion %d out of order or failed: %+v", i, c)
		}
	}
	if extra := q.Reap(e.th); len(extra) != 0 {
		t.Fatalf("Reap after drain returned %d completions", len(extra))
	}
}

// Submitting into a stopped pool surfaces rpc.ErrStopped.
func TestSubmitStoppedPool(t *testing.T) {
	for _, mode := range []exitio.Mode{exitio.ModeRPCSync, exitio.ModeRPCAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			e, eng := newEnv(t, mode)
			sock := netsim.NewSocket(e.plat, 4096)
			defer sock.Close()
			e.pool.Stop()
			q := eng.NewQueue()
			q.Push(exitio.Send{Sock: sock, N: 16})
			if _, err := q.SubmitAndWait(e.th); !errors.Is(err, rpc.ErrStopped) {
				t.Fatalf("submit on stopped pool = %v, want rpc.ErrStopped", err)
			}
			e.pool.Start() // hand a running pool back to Cleanup's Stop
		})
	}
}

// The async dispatch charges the enqueue at submit and settles residual
// latency at reap — never more than the sync mode's full charge for the
// same op sequence.
func TestAsyncChargesAtMostSync(t *testing.T) {
	run := func(mode exitio.Mode) uint64 {
		e, eng := newEnv(t, mode)
		sock := netsim.NewSocket(e.plat, 1<<16)
		defer sock.Close()
		sock.Deliver(make([]byte, 1024))
		q := eng.NewQueue()
		e.th.T.Reset()
		for i := 0; i < 200; i++ {
			q.Push(exitio.Recv{Sock: sock, N: 1052})
			if err := q.Submit(e.th); err != nil {
				panic(err)
			}
			e.th.T.Charge(5000) // compute to hide the I/O behind
			q.WaitN(e.th, 1)
		}
		return e.th.T.Cycles()
	}
	sync := run(exitio.ModeRPCSync)
	async := run(exitio.ModeRPCAsync)
	if async > sync {
		t.Fatalf("async charged %d cycles > sync %d for the same workload", async, sync)
	}
}

// The steady-state submit→dispatch→reap cycle recycles its chain
// descriptors, CQE buffers and (in direct mode) runs the ops inline, so
// a warm queue must not allocate per submission — that is the hotpath
// budget=0 contract eleoslint enforces statically, checked dynamically
// here.
func TestSteadyStateSubmitReapAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; count is meaningless")
	}
	e, eng := newEnv(t, exitio.ModeDirect)
	fs := fsim.NewFS(e.plat)
	q := eng.NewQueue()
	q.Push(exitio.Open{FS: fs, Name: "/warm"})
	cqes, err := q.SubmitAndWait(e.th)
	if err != nil || exitio.FirstErr(cqes) != nil {
		t.Fatalf("open: %v %v", err, exitio.FirstErr(cqes))
	}
	fd := cqes[0].N
	data := make([]byte, 256)
	// Ops are reused across cycles as pointers: value receivers put *T in
	// each op's method set too, and boxing a pointer into the Op
	// interface does not allocate, whereas boxing the struct itself costs
	// one heap copy per Push.
	pw := &exitio.Pwrite{FS: fs, FD: fd, Off: 0, Data: data}
	pr := &exitio.Pread{FS: fs, FD: fd, Off: 0, Buf: data}
	cycle := func() {
		q.Push(pw)
		q.PushLinked(pr)
		if got, err := q.SubmitAndWait(e.th); err != nil || exitio.FirstErr(got) != nil {
			t.Fatalf("cycle: %v %v", err, exitio.FirstErr(got))
		}
	}
	cycle() // warm the chain pool, staged slices and CQE double buffer
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Fatalf("steady-state submit/reap allocates %v times per cycle, want 0", avg)
	}
}

// The async dispatch path must be steady-state allocation-free too:
// chains, futures, the pending FIFO and the CQE buffers all recycle.
// This pins the pending-list regression where draining the queue
// discarded the list's capacity and every subsequent submission
// reallocated it.
func TestSteadyStateAsyncAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; count is meaningless")
	}
	e, eng := newEnv(t, exitio.ModeRPCAsync)
	fs := fsim.NewFS(e.plat)
	q := eng.NewQueue()
	q.Push(exitio.Open{FS: fs, Name: "/warm"})
	cqes, err := q.SubmitAndWait(e.th)
	if err != nil || exitio.FirstErr(cqes) != nil {
		t.Fatalf("open: %v %v", err, exitio.FirstErr(cqes))
	}
	fd := cqes[0].N
	data := make([]byte, 256)
	pw := &exitio.Pwrite{FS: fs, FD: fd, Off: 0, Data: data}
	pr := &exitio.Pread{FS: fs, FD: fd, Off: 0, Buf: data}
	cycle := func() {
		q.Push(pw)
		q.PushLinked(pr)
		if err := q.Submit(e.th); err != nil {
			t.Fatal(err)
		}
		e.th.T.Charge(2000) // compute overlapping the in-flight chain
		if got := q.WaitN(e.th, 2); exitio.FirstErr(got) != nil {
			t.Fatalf("cycle: %v", exitio.FirstErr(got))
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm the chain, request and buffer pools
	}
	// The rpc workers run on real goroutines, so tolerate stray runtime
	// allocations (timer wheels, GC bookkeeping) — the regression this
	// guards against costs a full 1.0 per cycle.
	if avg := testing.AllocsPerRun(200, cycle); avg > 0.5 {
		t.Fatalf("steady-state async submit/reap allocates %v times per cycle, want ~0", avg)
	}
}

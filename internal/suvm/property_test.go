package suvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSUVMBehavesLikeFlatMemory drives random operation sequences
// against a SUVM allocation and a plain byte-slice oracle. Whatever the
// paging system does underneath — faults, evictions, write-backs, clean
// drops, link/unlink churn — every read must return exactly what flat
// memory would.
func TestSUVMBehavesLikeFlatMemory(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Tiny cache (16 frames) against a 64-page allocation: constant
		// eviction pressure.
		cfg := Config{PageCacheBytes: 64 << 10, BackingBytes: 16 << 20}
		cfg.Policy = EvictionPolicy(rng.Intn(3))
		cfg.WriteBackClean = rng.Intn(2) == 0
		e := newEnv(t, cfg)
		const size = 64 * 4096
		p, err := e.h.Malloc(size)
		if err != nil {
			return false
		}
		oracle := make([]byte, size)
		cursor := p.Clone()

		for i := 0; i < 400; i++ {
			off := uint64(rng.Intn(size))
			n := rng.Intn(min(10000, size-int(off))) + 1
			switch rng.Intn(6) {
			case 0: // positioned write
				data := make([]byte, n)
				rng.Read(data)
				if err := p.WriteAt(e.th, off, data); err != nil {
					return false
				}
				copy(oracle[off:], data)
			case 1: // positioned read
				got := make([]byte, n)
				if err := p.ReadAt(e.th, off, got); err != nil {
					return false
				}
				if !bytes.Equal(got, oracle[off:int(off)+n]) {
					return false
				}
			case 2: // cursor write (linked path)
				if err := cursor.Seek(e.th, off); err != nil {
					return false
				}
				data := make([]byte, min(n, 64))
				rng.Read(data)
				if err := cursor.Write(e.th, data); err != nil {
					return false
				}
				copy(oracle[off:], data)
			case 3: // cursor read (linked path)
				if err := cursor.Seek(e.th, off); err != nil {
					return false
				}
				got := make([]byte, min(n, 64))
				if err := cursor.Read(e.th, got); err != nil {
					return false
				}
				if !bytes.Equal(got, oracle[off:int(off)+len(got)]) {
					return false
				}
			case 4: // memset
				b := byte(rng.Intn(256))
				if err := p.MemsetAt(e.th, off, uint64(n), b); err != nil {
					return false
				}
				for j := 0; j < n; j++ {
					oracle[int(off)+j] = b
				}
			case 5: // compare
				c, err := p.CompareAt(e.th, off, oracle[off:int(off)+n])
				if err != nil || c != 0 {
					return false
				}
			}
		}
		cursor.Unlink(e.th)
		// Final full sweep.
		got := make([]byte, size)
		if err := p.ReadAt(e.th, 0, got); err != nil {
			return false
		}
		return bytes.Equal(got, oracle)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectBehavesLikeFlatMemory is the same oracle property for
// sub-page direct allocations, including misaligned read-modify-write.
func TestDirectBehavesLikeFlatMemory(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, smallCfg())
		const size = 96 << 10
		p, err := e.h.MallocDirect(size)
		if err != nil {
			return false
		}
		oracle := make([]byte, size)
		for i := 0; i < 200; i++ {
			off := uint64(rng.Intn(size))
			n := rng.Intn(min(5000, size-int(off))) + 1
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				if err := p.WriteAt(e.th, off, data); err != nil {
					return false
				}
				copy(oracle[off:], data)
			} else {
				got := make([]byte, n)
				if err := p.ReadAt(e.th, off, got); err != nil {
					return false
				}
				if !bytes.Equal(got, oracle[off:int(off)+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRefcountsReturnToZero: after any sequence of link/unlink churn,
// no frame stays pinned once all spointers are unlinked — the invariant
// behind "EPC++ exhausted" never firing in well-behaved programs.
func TestRefcountsReturnToZero(t *testing.T) {
	e := newEnv(t, smallCfg())
	rng := rand.New(rand.NewSource(77))
	var ptrs []*SPtr
	for i := 0; i < 10; i++ {
		p, err := e.h.Malloc(32 << 10)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	var b [16]byte
	for i := 0; i < 2000; i++ {
		p := ptrs[rng.Intn(len(ptrs))]
		off := uint64(rng.Intn(int(p.Size()) - 16))
		_ = p.Seek(e.th, off)
		if rng.Intn(2) == 0 {
			_ = p.Write(e.th, b[:])
		} else {
			_ = p.Read(e.th, b[:])
		}
	}
	for _, p := range ptrs {
		p.Unlink(e.th)
	}
	for i := range e.h.frames {
		if rc := e.h.frames[i].refcnt.Load(); rc != 0 {
			t.Fatalf("frame %d still pinned (refcnt=%d) after all unlinks", i, rc)
		}
	}
}

// TestEvictEverythingStillConsistent: force the entire page cache
// through eviction (twice) and verify contents survive both the sealed
// round trip and nonce rotation.
func TestEvictEverythingStillConsistent(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(512 << 10)
	want := make([]byte, 512<<10)
	rand.New(rand.NewSource(13)).Read(want)
	_ = p.WriteAt(e.th, 0, want)
	for round := 0; round < 2; round++ {
		// Thrash with a second allocation to evict everything.
		q, _ := e.h.Malloc(512 << 10)
		_ = q.MemsetAt(e.th, 0, q.Size(), byte(round))
		got := make([]byte, len(want))
		_ = p.ReadAt(e.th, 0, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: contents corrupted across full eviction", round)
		}
		if err := e.h.Free(e.th, q); err != nil {
			t.Fatal(err)
		}
	}
}

// Package faceverify implements the biometric identity-checking server
// of the paper's §5.2: a database of per-person face descriptors stored
// in a hash table (40-byte person IDs, 232 KiB values), against which
// clients verify a claimed identity by submitting a face image. The
// descriptor is a grid of local-binary-pattern histograms (Ahonen et
// al., the LBP algorithm the paper cites), compared with chi-square
// distance.
//
// The FERET dataset is not redistributable, so images are synthetic:
// a deterministic per-identity texture plus per-capture noise. What the
// evaluation measures — one 232 KiB value read from a 450 MB table per
// request — is a property of the access pattern, not of the pixels.
//
// As a service of a multi-service enclave the package is one isolation
// unit: other services reach it only through CrossCall (enforced by
// eleoslint's servicedomain pass).
//
//eleos:service faceverify
package faceverify

import (
	"encoding/binary"
	"math"
)

// Image geometry (the paper resizes FERET images to 512x512 grayscale).
const (
	ImageSide  = 512
	ImageBytes = ImageSide * ImageSide
)

// Descriptor geometry: a 32x32 grid of cells, each summarized by a
// histogram over the 58 uniform LBP patterns, stored as little-endian
// uint32 — 58*1024*4 = 237,568 bytes = exactly the paper's 232 KiB.
const (
	GridSide        = 32
	CellSide        = ImageSide / GridSide
	Bins            = 58
	DescriptorBytes = Bins * GridSide * GridSide * 4
)

// KeyBytes is the person-ID key size (§5.2: 40-byte keys).
const KeyBytes = 40

// uniformBin maps each of the 256 LBP codes to one of the Bins bins:
// the 58 "uniform" patterns (at most two 0-1 transitions) each get their
// own bin; the rare non-uniform codes share bin 57 with the last uniform
// pattern, keeping the descriptor at exactly 58 bins.
var uniformBin = buildUniformMap()

func buildUniformMap() [256]uint8 {
	var m [256]uint8
	next := uint8(0)
	for code := 0; code < 256; code++ {
		if transitions(uint8(code)) <= 2 {
			m[code] = next
			if next < Bins-1 {
				next++
			}
		} else {
			m[code] = Bins - 1
		}
	}
	return m
}

func transitions(code uint8) int {
	n := 0
	for i := 0; i < 8; i++ {
		a := (code >> uint(i)) & 1
		b := (code >> uint((i+1)%8)) & 1
		if a != b {
			n++
		}
	}
	return n
}

// LBPDescriptor computes the full descriptor of a 512x512 grayscale
// image: the uniform-LBP code of every interior pixel, histogrammed per
// cell. This is the real algorithm, run on real bytes.
func LBPDescriptor(img []byte) []byte {
	if len(img) != ImageBytes {
		panic("faceverify: image must be 512x512 grayscale")
	}
	hist := make([]uint32, Bins*GridSide*GridSide)
	for y := 1; y < ImageSide-1; y++ {
		row := y * ImageSide
		for x := 1; x < ImageSide-1; x++ {
			c := img[row+x]
			var code uint8
			if img[row-ImageSide+x-1] >= c {
				code |= 1 << 0
			}
			if img[row-ImageSide+x] >= c {
				code |= 1 << 1
			}
			if img[row-ImageSide+x+1] >= c {
				code |= 1 << 2
			}
			if img[row+x+1] >= c {
				code |= 1 << 3
			}
			if img[row+ImageSide+x+1] >= c {
				code |= 1 << 4
			}
			if img[row+ImageSide+x] >= c {
				code |= 1 << 5
			}
			if img[row+ImageSide+x-1] >= c {
				code |= 1 << 6
			}
			if img[row+x-1] >= c {
				code |= 1 << 7
			}
			cell := (y/CellSide)*GridSide + x/CellSide
			hist[cell*Bins+int(uniformBin[code])]++
		}
	}
	out := make([]byte, DescriptorBytes)
	for i, v := range hist {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// ChiSquare computes the chi-square distance between two descriptors
// (smaller = more similar).
func ChiSquare(a, b []byte) float64 {
	if len(a) != DescriptorBytes || len(b) != DescriptorBytes {
		panic("faceverify: descriptor length mismatch")
	}
	var d float64
	for i := 0; i+4 <= DescriptorBytes; i += 4 {
		x := float64(binary.LittleEndian.Uint32(a[i:]))
		y := float64(binary.LittleEndian.Uint32(b[i:]))
		if s := x + y; s > 0 {
			d += (x - y) * (x - y) / s
		}
	}
	return d
}

// VerifyThreshold is the accept/reject chi-square cutoff, calibrated on
// the synthetic generator: same-identity captures land far below it,
// different identities far above.
const VerifyThreshold = 60000

// SynthImage renders a deterministic 512x512 face-like texture for the
// given identity and capture variant: a per-identity low-frequency
// pattern (stable across captures) plus per-capture noise.
func SynthImage(id uint64, variant uint64) []byte {
	img := make([]byte, ImageBytes)
	// Per-identity control grid, smoothly interpolated.
	const ctrl = 16
	var grid [ctrl * ctrl]float64
	rng := splitmix(id*2654435761 + 12345)
	for i := range grid {
		rng = splitmix(rng)
		grid[i] = float64(rng%256) / 255
	}
	noise := splitmix(id ^ (variant * 0x9E3779B97F4A7C15))
	scale := float64(ImageSide) / ctrl
	for y := 0; y < ImageSide; y++ {
		gy := float64(y) / scale
		y0 := int(gy) % ctrl
		y1 := (y0 + 1) % ctrl
		fy := gy - math.Floor(gy)
		for x := 0; x < ImageSide; x++ {
			gx := float64(x) / scale
			x0 := int(gx) % ctrl
			x1 := (x0 + 1) % ctrl
			fx := gx - math.Floor(gx)
			v := grid[y0*ctrl+x0]*(1-fx)*(1-fy) +
				grid[y0*ctrl+x1]*fx*(1-fy) +
				grid[y1*ctrl+x0]*(1-fx)*fy +
				grid[y1*ctrl+x1]*fx*fy
			noise = splitmix(noise)
			// Small per-capture perturbation (±4 gray levels).
			p := int(v*255) + int(noise%9) - 4
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			img[y*ImageSide+x] = byte(p)
		}
	}
	return img
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SynthDescriptor fabricates a descriptor directly from the identity
// seed, bypassing image rendering. Its byte-level shape matches real
// descriptors (per-cell counts summing to the cell pixel count), and the
// same (id) always yields the same descriptor, so benchmark-scale
// datasets (2,000 identities, 450 MB) load in milliseconds instead of
// re-running LBP over half a gigabyte of pixels. Correctness tests use
// the real pipeline; benchmarks measure memory behaviour, which only
// depends on descriptor size.
func SynthDescriptor(id uint64) []byte {
	out := make([]byte, DescriptorBytes)
	rng := splitmix(id * 0x9E3779B97F4A7C15)
	perCell := CellSide * CellSide
	for cell := 0; cell < GridSide*GridSide; cell++ {
		remaining := uint32(perCell)
		for b := 0; b < Bins-1; b++ {
			rng = splitmix(rng)
			v := uint32(rng) % (remaining/4 + 1)
			binary.LittleEndian.PutUint32(out[(cell*Bins+b)*4:], v)
			remaining -= v
		}
		binary.LittleEndian.PutUint32(out[(cell*Bins+Bins-1)*4:], remaining)
	}
	return out
}

// PersonID renders identity n as a fixed 40-byte key.
func PersonID(n uint64) []byte {
	id := make([]byte, KeyBytes)
	copy(id, "person-")
	binary.LittleEndian.PutUint64(id[8:], n)
	binary.LittleEndian.PutUint64(id[16:], splitmix(n))
	return id
}

package sgx

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/phys"
	"eleos/internal/seal"
)

// HeapBase is the virtual address where every enclave's private heap
// starts. Addresses at or above HeapBase are enclave-private; addresses
// below it are untrusted host memory, which enclave code may access
// directly (an SGX enclave can read its owner process's memory).
const HeapBase uint64 = 0x7000_0000_0000

type pageState uint8

const (
	pageAbsent   pageState = iota // never materialized (reads as zero)
	pageResident                  // backed by a PRM frame
	pageEvicted                   // sealed blob in untrusted memory
)

// page is one enclave-private page table entry.
type page struct {
	state    pageState
	pinned   bool
	frame    int32
	blobAddr uint64
	nonce    seal.Nonce
	tag      [seal.TagSize]byte
	accessed atomic.Bool // clock reference bit; set on access under RLock
	dirty    atomic.Bool
}

// EnclaveStats counts per-enclave events. All counters are atomic so
// they can be bumped from fault paths without extra locking.
type EnclaveStats struct {
	Exits     atomic.Uint64 // synchronous exits (OCALLs and fault AEXes)
	OCalls    atomic.Uint64
	Faults    atomic.Uint64
	Evictions atomic.Uint64
	IPIs      atomic.Uint64 // shootdown IPIs received by this enclave's cores
}

func (s *EnclaveStats) bumpFaults()    { s.Faults.Add(1) }
func (s *EnclaveStats) bumpEvictions() { s.Evictions.Add(1) }
func (s *EnclaveStats) bumpIPIs()      { s.IPIs.Add(1) }

// Snapshot returns a plain-value copy of the counters.
func (s *EnclaveStats) Snapshot() (exits, ocalls, faults, evictions, ipis uint64) {
	return s.Exits.Load(), s.OCalls.Load(), s.Faults.Load(), s.Evictions.Load(), s.IPIs.Load()
}

// Enclave is one simulated SGX enclave: a private demand-paged heap in
// the EPC plus the threads entering it. Its memory contents are real
// bytes; pages evicted under PRM pressure are really sealed into the
// host arena and verified on the way back.
type Enclave struct {
	id   int
	plat *Platform

	// pagingMu protects pages/resident/heap bookkeeping. Data-path
	// accesses to resident pages hold it for reading; paging operations
	// hold it for writing. Never acquire Driver.mu while holding it.
	//
	//eleos:lockorder 120
	pagingMu  sync.RWMutex
	pages     []page
	resident  []uint32 // page indices with state==pageResident (clock ring)
	clockHand int

	allocNext uint64 // bump pointer for Alloc, relative to HeapBase

	//eleos:lockorder 130
	threadMu sync.Mutex
	threads  []*Thread

	sealer *seal.Sealer
	stats  EnclaveStats
}

// NewEnclave creates an enclave on the platform. Creation itself is not
// charged (the paper never measures enclave build time).
func (p *Platform) NewEnclave() (*Enclave, error) {
	s, err := seal.New(p.Model)
	if err != nil {
		return nil, fmt.Errorf("sgx: creating enclave sealer: %w", err)
	}
	e := &Enclave{
		id:     int(p.nextEncl.Add(1)),
		plat:   p,
		sealer: s,
	}
	p.Driver.register(e)
	return e, nil
}

// ID returns the enclave's identifier.
func (e *Enclave) ID() int { return e.id }

// Platform returns the machine the enclave runs on.
func (e *Enclave) Platform() *Platform { return e.plat }

// Stats exposes the per-enclave event counters.
func (e *Enclave) Stats() *EnclaveStats { return &e.stats }

// Destroy tears the enclave down and returns its PRM frames.
func (e *Enclave) Destroy() { e.plat.Driver.unregister(e) }

// Alloc reserves n bytes of enclave-private heap (16-byte aligned) and
// returns the virtual address. Pages materialize on first touch.
func (e *Enclave) Alloc(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	e.pagingMu.Lock()
	defer e.pagingMu.Unlock()
	addr := HeapBase + e.allocNext
	e.allocNext += (n + 15) &^ 15
	e.growLocked(phys.PageNum(HeapBase+e.allocNext-1) - phys.PageNum(HeapBase) + 1)
	return addr
}

// AllocPages reserves n whole pages and returns their base address.
func (e *Enclave) AllocPages(n uint64) uint64 {
	e.pagingMu.Lock()
	defer e.pagingMu.Unlock()
	e.allocNext = phys.PageCeil(e.allocNext)
	addr := HeapBase + e.allocNext
	e.allocNext += n * phys.PageSize
	e.growLocked(phys.PageNum(addr-HeapBase) + n)
	return addr
}

func (e *Enclave) growLocked(pageCount uint64) {
	for uint64(len(e.pages)) < pageCount {
		e.pages = append(e.pages, page{frame: -1})
	}
}

// pageIndex maps an enclave virtual address to its heap page index.
func (e *Enclave) pageIndex(vaddr uint64) uint64 {
	return phys.PageNum(vaddr - HeapBase)
}

// Pin marks the page range [vaddr, vaddr+n) as pinned and materializes
// it, so the driver's first-pass clock sweep will not evict it. SUVM
// uses pinned ranges for its EPC++ page cache; pinning is effective only
// while the enclave stays within its PRM share (Fig 9 shows what happens
// otherwise).
func (e *Enclave) Pin(th *Thread, vaddr, n uint64) {
	first := e.pageIndex(vaddr)
	last := e.pageIndex(vaddr + n - 1)
	for i := first; i <= last; i++ {
		// Touch to materialize, then flag.
		th.ensureResident(e, i, false)
		e.pagingMu.Lock()
		e.pages[i].pinned = true
		e.pagingMu.Unlock()
	}
}

// FreePages releases whole pages back to the driver (their next touch
// reads as zero). SUVM's swapper uses this to deflate EPC++ when the
// driver reports PRM pressure.
func (e *Enclave) FreePages(vaddr, n uint64) {
	first := e.pageIndex(vaddr)
	e.plat.Driver.mu.Lock()
	e.pagingMu.Lock()
	e.plat.Driver.freePagesLocked(e, first, n/phys.PageSize)
	e.pagingMu.Unlock()
	e.plat.Driver.mu.Unlock()
}

// residentCount returns the number of PRM frames the enclave holds. The
// resident slice is only mutated with Driver.mu held, which callers of
// this method also hold.
func (e *Enclave) residentCount() int { return len(e.resident) }

// ResidentPages reports the enclave's current PRM frame count for tests
// and the harness.
func (e *Enclave) ResidentPages() int {
	e.plat.Driver.mu.Lock()
	defer e.plat.Driver.mu.Unlock()
	n := 0
	for _, idx := range e.resident {
		if e.pages[idx].state == pageResident {
			n++
		}
	}
	return n
}

// pageAAD binds a sealed page blob to its enclave and page index so
// blobs cannot be swapped between locations by the untrusted OS.
func (e *Enclave) pageAAD(idx uint64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(e.id))
	binary.LittleEndian.PutUint64(b[8:], idx)
	return b[:]
}

// CorruptBackingPage deliberately flips a bit in the sealed blob of an
// evicted page. Test hook proving that integrity protection is real.
func (e *Enclave) CorruptBackingPage(vaddr uint64) error {
	e.pagingMu.Lock()
	defer e.pagingMu.Unlock()
	p := &e.pages[e.pageIndex(vaddr)]
	if p.state != pageEvicted {
		return fmt.Errorf("sgx: page at %#x is not evicted", vaddr)
	}
	var b [1]byte
	e.plat.Host.ReadAt(p.blobAddr, b[:])
	b[0] ^= 1
	e.plat.Host.WriteAt(p.blobAddr, b[:])
	return nil
}

// Command eleoslint runs the simulator's custom static analyzers over
// the module: trustboundary (enclave code reaches host memory only
// through the sealing/spointer facades), simdeterminism (cycle-charged
// packages stay a pure function of config and seeds), lockorder
// (//eleos:lockorder mutex ranks are acquired in increasing order),
// servicedomain (//eleos:service code crosses service boundaries only
// through CrossCall), atomicfield (fields published through
// sync/atomic are never read or written plainly, atomic-bearing
// structs are never copied, atomic.Value stores agree on one concrete
// type) and hotpath (//eleos:hotpath budget=N functions stay within
// their worst-case heap-allocation budget). See internal/lint and the
// "Static invariants" section of DESIGN.md.
//
// Usage:
//
//	eleoslint [-C dir] [packages]
//
// Package patterns are module-relative: "./..." (the default) analyzes
// everything; "./internal/suvm" one package; "./internal/..." a
// subtree. The whole module is always loaded (the trust-boundary call
// graph needs it); the patterns select which packages' findings are
// reported. Exits 1 if any diagnostic survives its //eleos:allow
// filter.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/atomicfield"
	"eleos/internal/lint/hotpath"
	"eleos/internal/lint/load"
	"eleos/internal/lint/lockorder"
	"eleos/internal/lint/servicedomain"
	"eleos/internal/lint/simdeterminism"
	"eleos/internal/lint/trustboundary"
)

var analyzers = []*analysis.Analyzer{
	trustboundary.Analyzer,
	simdeterminism.Analyzer,
	lockorder.Analyzer,
	servicedomain.Analyzer,
	atomicfield.Analyzer,
	hotpath.Analyzer,
}

func main() {
	dir := flag.String("C", ".", "module root to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eleoslint [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if err := run(*dir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "eleoslint:", err)
		os.Exit(2)
	}
}

func run(dir string, patterns []string) error {
	prog, err := load.Load(dir)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := selectPackages(prog, patterns)
	if err != nil {
		return err
	}

	diags, err := analysis.Run(prog, analyzers, pkgs)
	if err != nil {
		return err
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s [%s.%s]\n", file, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer, d.Category)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// selectPackages resolves module-relative patterns against the loaded
// program.
func selectPackages(prog *load.Program, patterns []string) ([]*load.Package, error) {
	match := func(pkgPath string) bool { return false }
	var matchers []func(string) bool
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		abs := prog.Module
		if pat != "" && pat != "..." {
			abs = prog.Module + "/" + strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if strings.HasSuffix(pat, "...") {
			prefix := strings.TrimSuffix(abs, "/")
			matchers = append(matchers, func(p string) bool {
				return p == prefix || strings.HasPrefix(p, prefix+"/")
			})
		} else {
			exact := abs
			matchers = append(matchers, func(p string) bool { return p == exact })
		}
	}
	match = func(pkgPath string) bool {
		for _, m := range matchers {
			if m(pkgPath) {
				return true
			}
		}
		return false
	}

	var out []*load.Package
	for _, pkg := range prog.Packages {
		if match(pkg.PkgPath) {
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}

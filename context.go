package eleos

import (
	"time"

	"eleos/internal/exitio"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Ctx is an enclave execution context: one simulated hardware thread,
// entered into its enclave, with convenience access to SUVM allocation
// and exit-less system calls. A Ctx is owned by one goroutine; create
// one per worker.
type Ctx struct {
	e  *Enclave
	th *sgx.Thread
	io *IOQueue
	// svc binds the context to a carved service (Service.NewContext and
	// CrossCall callees): allocation routes to the service's heap domain
	// and I/O to its counter group. Nil for plain enclave contexts.
	svc *Service
}

// NewContext creates and enters a fresh hardware thread.
func (e *Enclave) NewContext() *Ctx {
	th := e.encl.NewThread()
	th.Enter()
	return &Ctx{e: e, th: th}
}

// Thread exposes the underlying simulated thread (for use with the
// lower-level SPtr and kv APIs).
func (c *Ctx) Thread() *sgx.Thread { return c.th }

// Enclave returns the owning enclave wrapper.
func (c *Ctx) Enclave() *Enclave { return c.e }

// Cycles returns the virtual cycles this context has consumed.
func (c *Ctx) Cycles() uint64 { return c.th.T.Cycles() }

// Elapsed converts the context's cycles to virtual time.
func (c *Ctx) Elapsed() time.Duration {
	return time.Duration(c.th.T.Seconds() * float64(time.Second))
}

// allocator returns where this context's allocations come from: its
// service's heap domain for service-bound contexts, the enclave's heap
// otherwise.
func (c *Ctx) allocator() suvm.Allocator {
	if c.svc != nil {
		return c.svc.dom
	}
	return c.e.heap
}

// Malloc allocates SUVM memory and returns a context-bound pointer. On
// a service-bound context the allocation comes from — and is paged by —
// the service's own heap domain.
func (c *Ctx) Malloc(n uint64) (*Ptr, error) {
	p, err := c.allocator().Malloc(n)
	if err != nil {
		return nil, err
	}
	return &Ptr{p: p, c: c}, nil
}

// MallocDirect allocates SUVM memory in sub-page direct-access mode.
func (c *Ctx) MallocDirect(n uint64) (*Ptr, error) {
	p, err := c.allocator().MallocDirect(n)
	if err != nil {
		return nil, err
	}
	return &Ptr{p: p, c: c}, nil
}

// Exitless delegates fn to an untrusted RPC worker without leaving the
// enclave — the Eleos replacement for OCALL. Panics if the runtime has
// been closed (use Runtime.Pool().Call for a recoverable error).
func (c *Ctx) Exitless(fn func(*HostCtx)) {
	if err := c.e.rt.pool.Call(c.th, fn); err != nil {
		panic("eleos: Exitless on a closed runtime: " + err.Error())
	}
}

// Go submits fn to an RPC worker asynchronously and returns a Future:
// the context keeps computing while the untrusted worker runs the call,
// and Future.Wait charges only the latency that compute did not hide
// (§3.1's asynchronous exit-less variant). Panics if the runtime has
// been closed.
func (c *Ctx) Go(fn func(*HostCtx)) *Future {
	f, err := c.e.rt.pool.CallAsync(c.th, fn)
	if err != nil {
		panic("eleos: Go on a closed runtime: " + err.Error())
	}
	return &Future{f: f, c: c}
}

// ExitlessBatch delegates all fns in one batched submission: a single
// amortized enqueue charge, execution spread across the worker pool, and
// the batch's parallel makespan — not the serial sum — observed as
// latency. Panics if the runtime has been closed.
func (c *Ctx) ExitlessBatch(fns ...func(*HostCtx)) {
	if err := c.e.rt.pool.CallBatch(c.th, fns); err != nil {
		panic("eleos: ExitlessBatch on a closed runtime: " + err.Error())
	}
}

// Future is a context-bound handle to an asynchronous exit-less call
// started with Ctx.Go. It belongs to the context that submitted it.
type Future struct {
	f *rpc.Future
	c *Ctx
}

// Done reports whether the call has completed, without blocking and
// without charging the context.
func (f *Future) Done() bool { return f.f.Done() }

// Wait blocks until the call completes, charging the context the
// residual latency its compute since Go did not hide, plus the
// completion poll. Idempotent.
func (f *Future) Wait() { f.f.Wait(f.c.th) }

// Raw returns the pool-level future (for use with explicit threads).
func (f *Future) Raw() *rpc.Future { return f.f }

// OCall performs a classic SDK OCALL (exit, run fn untrusted,
// re-enter) — kept for comparison and for genuinely blocking calls, as
// the paper does for poll(2).
func (c *Ctx) OCall(fn func(*HostCtx)) {
	c.th.OCall(fn)
}

// IO returns the context's exit-less I/O queue on the runtime's shared
// engine (rpc-async dispatch), creating it on first use. Typed ops
// replace hand-rolled Exitless closures for OS services:
//
//	q := ctx.IO()
//	q.Push(eleos.IOPwrite{FS: fs, FD: fd, Off: off, Data: frame})
//	q.PushLinked(eleos.IOFsync{FS: fs, FD: fd}) // same doorbell
//	cqes, _ := q.SubmitAndWait()
func (c *Ctx) IO() *IOQueue {
	if c.io == nil {
		q := c.e.rt.io.NewQueue()
		if c.svc != nil {
			q = c.e.rt.io.NewGroupQueue(c.svc.grp)
		}
		c.io = &IOQueue{q: q, c: c}
	}
	return c.io
}

// Pump gives the runtime's controllers a chance to act, on this
// context's virtual clock. Serving loops call it once per request:
// off-epoch it costs one comparison per enabled controller. On an
// epoch boundary the self-tuning controller resizes the worker pool
// and refreshes its mode advice, which Pump then applies to the
// context's I/O queue (at a chain boundary, if the queue exists); the
// fleet balloon controller rebalances PRM shares across the runtime's
// enclaves. Returns whether any epoch fired; always false on runtimes
// built with neither controller.
func (c *Ctx) Pump() bool {
	fired := false
	if t := c.e.rt.tuner; t != nil && t.Pump(c.th) {
		fired = true
		if c.io != nil {
			// The runtime engine always has a pool and the advice is always
			// a pool mode, so this cannot fail.
			_ = t.ApplyMode(c.th, c.io.q)
		}
	}
	if f := c.e.rt.fleet; f != nil && f.Pump(c.th) {
		fired = true
	}
	return fired
}

// IOQueue is a context-bound exit-less I/O submission/completion
// queue: exitio.Queue with the owning context's thread implied. It is
// owned by its context's goroutine.
type IOQueue struct {
	q *exitio.Queue
	c *Ctx
}

// Raw returns the engine-level queue (for use with explicit threads).
func (q *IOQueue) Raw() *exitio.Queue { return q.q }

// Mode returns the queue's current dispatch mode.
func (q *IOQueue) Mode() IOMode { return q.q.Mode() }

// SetMode switches the queue's dispatch mode at a chain boundary:
// in-flight chains settle under the old mode first, and staged ops take
// the new mode at their Submit. Under autotuning, Ctx.Pump does this
// automatically.
func (q *IOQueue) SetMode(m IOMode) error { return q.q.SetMode(q.c.th, m) }

// Push stages op as the start of a new chain.
func (q *IOQueue) Push(op IOOp) { q.q.Push(op) }

// PushTagged stages op with a caller-chosen tag echoed in its CQE.
func (q *IOQueue) PushTagged(op IOOp, tag uint64) { q.q.PushTagged(op, tag) }

// PushLinked stages op linked to the previously staged op: one
// doorbell, ordered execution, failure cancels the rest of the chain.
func (q *IOQueue) PushLinked(op IOOp) { q.q.PushLinked(op) }

// PushLinkedTagged is PushLinked with a completion tag.
func (q *IOQueue) PushLinkedTagged(op IOOp, tag uint64) { q.q.PushLinkedTagged(op, tag) }

// Staged returns the number of staged, not-yet-submitted ops.
func (q *IOQueue) Staged() int { return q.q.Staged() }

// InFlight returns the number of submitted ops not yet reaped.
func (q *IOQueue) InFlight() int { return q.q.InFlight() }

// Submit rings the doorbell for everything staged; completions are
// reaped later (Reap/WaitN) with residual-latency accounting.
func (q *IOQueue) Submit() error { return q.q.Submit(q.c.th) }

// SubmitAndWait submits everything staged and returns all completions
// in submission order.
func (q *IOQueue) SubmitAndWait() ([]CQE, error) { return q.q.SubmitAndWait(q.c.th) }

// Reap returns the completions available right now without blocking.
func (q *IOQueue) Reap() []CQE { return q.q.Reap(q.c.th) }

// WaitN blocks until at least n completions are available (or nothing
// is in flight), then returns all of them.
func (q *IOQueue) WaitN(n int) []CQE { return q.q.WaitN(q.c.th, n) }

// Read accesses memory at a simulated virtual address (enclave-private
// or untrusted, by address range).
func (c *Ctx) Read(vaddr uint64, buf []byte) { c.th.Read(vaddr, buf) }

// Write stores to a simulated virtual address.
func (c *Ctx) Write(vaddr uint64, data []byte) { c.th.Write(vaddr, data) }

// Attach mounts an inter-enclave segment into this enclave's heap and
// returns a context-bound pointer over its contents.
func (c *Ctx) Attach(seg *Segment) (*Ptr, error) {
	p, err := c.e.heap.Attach(c.th, seg)
	if err != nil {
		return nil, err
	}
	return &Ptr{p: p, c: c}, nil
}

// Detach flushes and releases a mounted segment so another enclave can
// attach it. The pointer must not be used afterwards.
func (c *Ctx) Detach(p *Ptr) error {
	return c.e.heap.Detach(c.th, p.p)
}

// Close exits the thread. The Ctx must not be used afterwards.
func (c *Ctx) Close() {
	if c.th.InEnclave() {
		c.th.Exit()
	}
}

// Ptr is a context-bound secure pointer: an SPtr whose accesses are
// charged to its context's thread, giving pointer-like ergonomics for
// the common single-thread case. Use Raw with explicit threads to share
// an allocation across contexts.
type Ptr struct {
	p *SPtr
	c *Ctx
}

// Raw returns the underlying spointer.
func (p *Ptr) Raw() *SPtr { return p.p }

// Size returns the allocation size.
func (p *Ptr) Size() uint64 { return p.p.Size() }

// Offset returns the spointer's current offset.
func (p *Ptr) Offset() uint64 { return p.p.Offset() }

// Linked reports whether the translation is currently cached.
func (p *Ptr) Linked() bool { return p.p.Linked() }

// Read copies from the current offset.
func (p *Ptr) Read(buf []byte) error { return p.p.Read(p.c.th, buf) }

// Write copies to the current offset and marks the page dirty.
func (p *Ptr) Write(data []byte) error { return p.p.Write(p.c.th, data) }

// ReadAt copies from an absolute offset, staying unlinked.
func (p *Ptr) ReadAt(off uint64, buf []byte) error { return p.p.ReadAt(p.c.th, off, buf) }

// WriteAt copies to an absolute offset, staying unlinked.
func (p *Ptr) WriteAt(off uint64, data []byte) error { return p.p.WriteAt(p.c.th, off, data) }

// ReadU64 reads a little-endian uint64 at the current offset.
func (p *Ptr) ReadU64() (uint64, error) { return p.p.ReadU64(p.c.th) }

// WriteU64 writes a little-endian uint64 at the current offset.
func (p *Ptr) WriteU64(v uint64) error { return p.p.WriteU64(p.c.th, v) }

// Advance moves the offset (pointer arithmetic), unlinking on page
// crossings.
func (p *Ptr) Advance(delta int64) error { return p.p.Advance(p.c.th, delta) }

// Seek sets the absolute offset.
func (p *Ptr) Seek(off uint64) error { return p.p.Seek(p.c.th, off) }

// Unlink drops the cached translation and its pin.
func (p *Ptr) Unlink() { p.p.Unlink(p.c.th) }

// Free releases the allocation through the context's own allocator, so
// a service-bound context cannot free another service's (or the enclave
// root's) memory: such a free fails with ErrCrossDomain and leaves the
// allocation untouched.
func (p *Ptr) Free() error { return p.c.allocator().Free(p.c.th, p.p) }

// Package crosspkg is testdata for the atomicfield analyzer's
// whole-module aggregation: it never calls sync/atomic itself, yet its
// plain accesses of counters' atomically published state are still
// flagged — the facts come from the whole module, not the package
// under analysis.
package crosspkg

import "counters"

// Leak reads an atomically accessed field plainly from another package.
func Leak(s *counters.Shared) uint64 {
	return s.Word // want "plain read of counters.Shared.Word, which is accessed with sync/atomic"
}

// Fork copies the atomic-bearing struct across the package boundary.
func Fork(s *counters.Shared) counters.Shared {
	return *s // want "return copies counters.Shared, which contains atomic fields"
}

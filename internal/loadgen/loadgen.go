// Package loadgen generates deterministic client request streams, in
// the role memaslap and the paper's custom generator play on the second
// machine of the testbed: uniform or hot-set-restricted random keys,
// optional Zipfian skew, and batch requests of configurable size.
// Everything is seeded, so two benchmark runs draw identical request
// sequences.
//
// Trust domain: untrusted (the client machine). Also checked by
// eleoslint for determinism: generators draw only from their seeded
// *rand.Rand, never from the process-global source.
//
//eleos:untrusted
//eleos:deterministic
package loadgen

import (
	"math"
	"math/rand"
)

// KeyGen draws keys from [1, Space] (zero is reserved by the tables).
type KeyGen struct {
	rng   *rand.Rand
	space uint64
	hot   uint64 // if non-zero, keys are drawn from [1, hot]
	zipf  *rand.Zipf
	s     float64 // Zipf skew, kept so HotSet can recompute the space
}

// NewKeyGen creates a uniform generator over [1, space].
func NewKeyGen(seed int64, space uint64) *KeyGen {
	if space == 0 {
		panic("loadgen: empty key space")
	}
	return &KeyGen{rng: rand.New(rand.NewSource(seed)), space: space}
}

// HotSet restricts draws to the first n keys — the Fig 2a/6b workload,
// where the server holds 64 MB but requests touch only an LLC-sized
// 8 MB subset. When a Zipfian skew is already installed it is rebuilt
// over the shrunk space, so HotSet and Zipfian compose in either
// order (an earlier version silently ignored HotSet after Zipfian).
func (g *KeyGen) HotSet(n uint64) *KeyGen {
	if n > g.space {
		n = g.space
	}
	g.hot = n
	if g.zipf != nil {
		return g.Zipfian(g.s)
	}
	return g
}

// Zipfian switches to a Zipf(s) distribution over the (hot) key space,
// the skew memaslap can apply.
func (g *KeyGen) Zipfian(s float64) *KeyGen {
	space := g.space
	if g.hot != 0 {
		space = g.hot
	}
	if s <= 1 {
		s = math.Nextafter(1, 2)
	}
	g.s = s
	g.zipf = rand.NewZipf(g.rng, s, 1, space-1)
	return g
}

// Next draws one key.
func (g *KeyGen) Next() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64() + 1
	}
	space := g.space
	if g.hot != 0 {
		space = g.hot
	}
	return uint64(g.rng.Int63n(int64(space))) + 1
}

// Batch fills dst with keys and returns it.
func (g *KeyGen) Batch(dst []uint64) []uint64 {
	for i := range dst {
		dst[i] = g.Next()
	}
	return dst
}

// Bytes fills dst with deterministic pseudo-random payload bytes.
func (g *KeyGen) Bytes(dst []byte) []byte {
	g.rng.Read(dst)
	return dst
}

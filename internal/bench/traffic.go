package bench

import (
	"fmt"
	"math"

	"eleos"
	"eleos/internal/faceverify"
	"eleos/internal/hist"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/mckv"
	"eleos/internal/pserver"
	"eleos/internal/report"
	"eleos/internal/traffic"
)

func init() {
	register("traffic",
		"Open-loop traffic: tail latency under Poisson, burst and diurnal arrivals with a churning client fleet",
		runTraffic)
}

// The traffic experiment replaces the closed-loop memaslap view (Figs
// 6-8) with the open-loop one production serves: arrivals do not wait
// for responses, so an overloaded phase builds a queue and the p99/p999
// show the queueing delay a closed-loop harness hides (coordinated
// omission). Each of the three servers runs behind its exit-less I/O
// daemon path under three arrival processes — steady Poisson at ~70%
// utilization, an on/off burst process whose on-state offers more than
// capacity, and a three-phase diurnal cycle peaking above capacity —
// with a churning client fleet (seeded connection lifetimes, a slow
// subset stalling reads). Latency is charged from each request's
// intended arrival cycle; histograms are HDR-style in virtual cycles.
//
// Every cell runs rc.Runs times under distinct seeds; the table
// reports mean and stddev columns so cmd/perfdiff can apply a
// variance-aware regression gate (see make bench-gate).

const (
	// trafficWarmup is the closed-loop calibration run per server: it
	// warms stores and measures the mean service cost that arrival
	// rates are derived from.
	trafficWarmup = 256
	// trafficClients is the concurrently-open connection count per
	// fleet.
	trafficClients = 64
	// trafficSlowFrac is the fraction of connections owned by slow
	// clients; trafficStallDiv divides the service cost to size their
	// per-request read stall.
	trafficSlowFrac  = 1.0 / 16
	trafficStallDiv  = 8
	trafficWorkloads = 3 // poisson, burst, diurnal
)

// trafficServer is one server behind its exit-less I/O daemon path:
// build loads it (unmeasured) and returns a per-request serving
// function keyed by the fleet's key draws, plus the key space the
// fleet should draw from and whether to apply hot-key skew.
type trafficServer struct {
	name     string
	keySpace uint64
	zipf     float64 // 0 = uniform
	build    func(rt *eleos.Runtime, ctx *eleos.Ctx) (serve func(req traffic.Request) error, cleanup func(), err error)
}

func trafficServers() []trafficServer {
	return []trafficServer{
		{name: "mckv", keySpace: 8192, zipf: 1.2, build: func(rt *eleos.Runtime, ctx *eleos.Ctx) (func(traffic.Request) error, func(), error) {
			store, err := mckv.NewStore(rt.Platform(), ctx.Thread(), mckv.Config{
				MemLimitBytes: 8 << 20,
				Placement:     mckv.PlaceSUVM,
				Heap:          ctx.Enclave().Heap(),
			})
			if err != nil {
				return nil, nil, err
			}
			srv := mckv.NewServerIO(store, rt.IOEngine())
			key := make([]byte, 20)
			val := make([]byte, 256)
			for i := uint64(0); i < 8192; i++ {
				copy(key, fmt.Sprintf("key-%016d", i))
				if err := store.Set(ctx.Thread(), key, val); err != nil {
					srv.Close()
					return nil, nil, err
				}
			}
			n := 0
			serve := func(req traffic.Request) error {
				copy(key, fmt.Sprintf("key-%016d", req.Key-1))
				n++
				if n%5 == 0 {
					return srv.ServeSet(ctx.Thread(), key, val)
				}
				_, err := srv.ServeGet(ctx.Thread(), key)
				return err
			}
			return serve, srv.Close, nil
		}},
		{name: "pserver", keySpace: 0 /* set below from Entries */, build: func(rt *eleos.Runtime, ctx *eleos.Ctx) (func(traffic.Request) error, func(), error) {
			srv, err := pserver.New(rt.Platform(), ctx.Thread(), pserver.Config{
				DataBytes: 4 << 20,
				Layout:    kv.OpenAddressing,
				Placement: pserver.PlaceSUVM,
				Heap:      ctx.Enclave().Heap(),
				Engine:    rt.IOEngine(),
				Encrypted: true,
			})
			if err != nil {
				return nil, nil, err
			}
			// The fleet draws the batch's lead key; the rest of the
			// 4-key batch comes from a dedicated seeded generator.
			rest := loadgen.NewKeyGen(777, srv.Entries())
			keys := make([]uint64, 4)
			entries := srv.Entries()
			serve := func(req traffic.Request) error {
				keys[0] = (req.Key-1)%entries + 1
				for i := 1; i < len(keys); i++ {
					keys[i] = rest.Next()
				}
				return srv.ServeRequest(ctx.Thread(), keys)
			}
			return serve, srv.Close, nil
		}},
		{name: "faceverify", keySpace: 24, build: func(rt *eleos.Runtime, ctx *eleos.Ctx) (func(traffic.Request) error, func(), error) {
			store, err := faceverify.NewStore(rt.Platform(), ctx.Thread(), faceverify.Config{
				Identities: 24,
				Placement:  faceverify.PlaceSUVM,
				Heap:       ctx.Enclave().Heap(),
				Synthetic:  true,
			})
			if err != nil {
				return nil, nil, err
			}
			srv := faceverify.NewServerIO(store, rt.IOEngine())
			n := 0
			serve := func(req traffic.Request) error {
				n++
				_, err := srv.Verify(ctx.Thread(), req.Key-1, uint64(n%4))
				return err
			}
			return serve, srv.Close, nil
		}},
	}
}

// trafficProcess builds the run's arrival process from the server's
// calibrated mean service cost. Utilizations are chosen so Poisson
// stays below capacity, the burst on-state and the diurnal peak exceed
// it, and off/night phases drain the queue. State holding times and
// phase spans scale with the run length n so every phase sees arrivals
// at any scale: the diurnal cycle fits one run (~n/3 arrivals per
// phase) and a burst on/off pair recurs a few times per run.
func trafficProcess(kind int, seed int64, svc float64, n int) traffic.Process {
	onGap, offGap := svc/1.5, svc/0.25 // 150% of capacity: the flash crowd; 25%: the drain
	nightGap, dayGap, peakGap := svc/0.25, svc/0.75, svc/1.25
	switch kind {
	case 0:
		return traffic.NewPoisson(seed, svc/0.70)
	case 1:
		return traffic.NewBurst(seed, traffic.BurstConfig{
			OnMeanGap:     onGap,
			OffMeanGap:    offGap,
			OnMeanCycles:  float64(n) / 8 * onGap,  // ~n/8 arrivals per burst
			OffMeanCycles: float64(n) / 4 * offGap, // ~n/4 arrivals per drain
		})
	default:
		return traffic.NewDiurnal(seed, []traffic.PhaseRate{
			{Name: "night", MeanGap: nightGap, Cycles: uint64(float64(n) / 3 * nightGap)},
			{Name: "day", MeanGap: dayGap, Cycles: uint64(float64(n) / 3 * dayGap)},
			{Name: "peak", MeanGap: peakGap, Cycles: uint64(float64(n) / 3 * peakGap)},
		})
	}
}

// trafficCell is one (server, process) cell aggregated over the
// variance runs.
type trafficCell struct {
	process   string
	phases    []string
	perPhase  []*hist.H // merged across runs
	p99PerRun [][]float64
	phaseReqs []uint64
	phaseGaps []uint64 // arrival-time span attributed to each phase
	kops      []float64
	svc       float64
	idle      uint64
	stall     uint64
	elapsed   uint64
	churns    uint64
	slowReqs  uint64
	reqs      int
}

// meanSD returns the sample mean and standard deviation.
func meanSD(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func runTraffic(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	n := rc.Ops / 10
	if n < 500 {
		n = 500
	}

	latT := report.New("Open-loop tail latency by server, arrival process and phase",
		append([]string{"server", "process", "phase", "reqs", "offered K/s"},
			append(report.PercentileHeaders("cyc"), "p99 cyc sd")...)...)
	latT.Note = fmt.Sprintf("latency charged from intended arrival cycles (coordinated-omission-safe); histograms HDR-bucketed (~3%% resolution) and merged over %d seeded runs of %d requests; p99 sd across runs", rc.Runs, n)

	fleetT := report.New("Served throughput and client-fleet activity",
		"server", "process", "runs", "Kops/s", "Kops/s sd", "svc cyc", "idle %", "stall cyc/req", "conns", "churns", "slow reqs")
	fleetT.Note = fmt.Sprintf("%d connections per fleet, ~%.0f%% owned by slow clients stalling svc/%d cycles per read; conn lifetimes seeded-exponential so fleets churn",
		trafficClients, trafficSlowFrac*100, trafficStallDiv)

	for si, srv := range trafficServers() {
		rt, err := eleos.NewRuntime(eleos.WithRPCWorkers(1))
		if err != nil {
			return nil, err
		}
		encl, err := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: 16 << 20})
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("%s: %w", srv.name, err)
		}
		ctx := encl.NewContext()
		serve, cleanup, err := srv.build(rt, ctx)
		if err != nil {
			ctx.Close()
			encl.Destroy()
			rt.Close()
			return nil, fmt.Errorf("%s: %w", srv.name, err)
		}

		cells, err := runTrafficServer(rc, n, si, srv, rt, ctx, serve)
		cleanup()
		ctx.Close()
		encl.Destroy()
		rt.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", srv.name, err)
		}

		model := rt.Platform().Model
		for _, c := range cells {
			for ph, h := range c.perPhase {
				s := h.Snapshot()
				_, p99sd := meanSD(c.p99PerRun[ph])
				offered := 0.0
				if c.phaseGaps[ph] > 0 {
					offered = float64(c.phaseReqs[ph]) / model.Seconds(c.phaseGaps[ph]) / 1e3
				}
				latT.AddRow(append([]any{srv.name, c.process, c.phases[ph], c.phaseReqs[ph], offered},
					append(report.PercentileCells(s.P50, s.P90, s.P99, s.P999, s.Max),
						fmt.Sprintf("%.0f", p99sd))...)...)
			}
			kmean, ksd := meanSD(c.kops)
			fleetT.AddRow(srv.name, c.process, len(c.kops),
				kmean, fmt.Sprintf("%.2f", ksd),
				c.svc,
				100*float64(c.idle)/float64(c.elapsed),
				float64(c.stall)/float64(c.reqs),
				trafficClients, c.churns, c.slowReqs)
		}
	}

	return &Result{
		ID:     "traffic",
		Title:  "Open-loop traffic: tail latency under Poisson, burst and diurnal arrivals",
		Tables: []*report.Table{latT, fleetT},
	}, nil
}

// runTrafficServer calibrates one server's service cost, then replays
// every (process, run) cell against it.
func runTrafficServer(rc RunConfig, n, si int, srv trafficServer,
	rt *eleos.Runtime, ctx *eleos.Ctx, serve func(traffic.Request) error) ([]*trafficCell, error) {

	// Closed-loop warm-up doubles as calibration: the mean service cost
	// anchors every arrival rate, so utilization targets hold across
	// cost-model changes.
	space := srv.keySpace
	if space == 0 {
		space = 1024
	}
	warmGen := loadgen.NewKeyGen(511+int64(si), space)
	c0 := ctx.Cycles()
	for i := 0; i < trafficWarmup; i++ {
		if err := serve(traffic.Request{Key: warmGen.Next()}); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	svc := float64(ctx.Cycles()-c0) / trafficWarmup
	stall := uint64(svc / trafficStallDiv)

	cells := make([]*trafficCell, 0, trafficWorkloads)
	for kind := 0; kind < trafficWorkloads; kind++ {
		var cell *trafficCell
		for run := 0; run < rc.Runs; run++ {
			seed := int64(9000 + 1000*si + 100*kind + run)
			proc := trafficProcess(kind, seed, svc, n)
			if cell == nil {
				phases := proc.Phases()
				cell = &trafficCell{
					process:   proc.Name(),
					phases:    phases,
					perPhase:  make([]*hist.H, len(phases)),
					p99PerRun: make([][]float64, len(phases)),
					phaseReqs: make([]uint64, len(phases)),
					phaseGaps: make([]uint64, len(phases)),
					svc:       svc,
				}
				for i := range cell.perPhase {
					cell.perPhase[i] = hist.New()
				}
			}
			keys := loadgen.NewKeyGen(seed^0x5eed, space)
			if srv.zipf > 0 {
				keys.Zipfian(srv.zipf)
			}
			// The run spans roughly n*svc/0.7 cycles; a mean lifetime of
			// half that churns each connection about twice per run.
			fleet := traffic.NewFleet(seed*31, proc, traffic.FleetConfig{
				Clients:      trafficClients,
				MeanLifetime: float64(n) * svc / 0.7 / 2,
				SlowFraction: trafficSlowFrac,
				StallCycles:  stall,
				Keys:         keys,
			})

			runHists := make([]*hist.H, len(cell.phases))
			for i := range runHists {
				runHists[i] = hist.New()
			}
			var prevArrival uint64
			res, err := traffic.Drive(ctx.Thread().T, fleet, n,
				func(req traffic.Request, lat uint64) {
					runHists[req.Phase].Record(lat)
					cell.phaseGaps[req.Phase] += req.Arrival - prevArrival
					prevArrival = req.Arrival
				}, serve)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", proc.Name(), run, err)
			}
			for ph, h := range runHists {
				cell.perPhase[ph].Merge(h)
				cell.phaseReqs[ph] += h.Count()
				if h.Count() > 0 {
					cell.p99PerRun[ph] = append(cell.p99PerRun[ph], float64(h.Quantile(0.99)))
				}
			}
			model := rt.Platform().Model
			cell.kops = append(cell.kops, float64(res.Served)/model.Seconds(res.Elapsed)/1e3)
			cell.idle += res.IdleCycles
			cell.stall += res.StallCycles
			cell.elapsed += res.Elapsed
			cell.churns += fleet.Churns()
			cell.slowReqs += fleet.SlowRequests()
			cell.reqs += res.Served
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// Package pserver implements the parameter server of the paper's §2: a
// key-value store of 8-byte keys and 8-byte values serving in-place
// updates from network clients, encrypted end to end. It is the workload
// behind Fig 1, Fig 2a/2b and Fig 6a/6b/6c, parameterized exactly along
// the axes those figures sweep: data size, hash-table layout (open
// addressing vs chaining), data placement (untrusted memory, EPC, or
// SUVM) and system-call mechanism (native, OCALL, or Eleos RPC).
//
// Trust domain: trusted — the server's request loop is enclave code
// (the network path crosses the boundary via netsim and rpc, which
// carry their own annotations).
//
//eleos:trusted
//eleos:deterministic
//eleos:service pserver
package pserver

import (
	"fmt"

	"eleos/internal/exitio"
	"eleos/internal/kv"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Placement selects where the parameter table lives.
type Placement int

// Placements.
const (
	PlaceHost    Placement = iota // untrusted memory (baseline runs)
	PlaceEnclave                  // enclave heap, hardware-paged EPC
	PlaceSUVM                     // Eleos SUVM
)

func (p Placement) String() string {
	switch p {
	case PlaceHost:
		return "host"
	case PlaceEnclave:
		return "epc"
	default:
		return "suvm"
	}
}

// SyscallMode selects how the server reaches the OS — a thin alias
// over the exitio dispatch modes (the per-server switch moved into
// internal/exitio).
type SyscallMode = exitio.Mode

// Syscall mechanisms.
const (
	SysNative   = exitio.ModeDirect   // direct syscalls (untrusted server)
	SysOCall    = exitio.ModeOCall    // SDK OCALL: exit per call
	SysRPC      = exitio.ModeRPCSync  // Eleos exit-less RPC, one sync call per op
	SysRPCAsync = exitio.ModeRPCAsync // async chains: SEND(i)+RECV(i+1), one doorbell
)

// Config describes one parameter-server instance.
type Config struct {
	// DataBytes is the key+value payload (entries = DataBytes/16).
	DataBytes uint64
	// Layout is the hash-table collision strategy.
	Layout kv.Layout
	// Placement locates the table.
	Placement Placement
	// Syscall selects the recv/send mechanism.
	Syscall SyscallMode
	// Heap is required for PlaceSUVM: a whole *suvm.Heap, or one
	// service's *suvm.Domain when the server is a co-resident tenant of
	// a multi-service enclave.
	Heap suvm.Allocator
	// Pool is required for the RPC modes (unless Engine is set).
	Pool *rpc.Pool
	// Engine, when non-nil, is a shared exit-less I/O engine whose
	// dispatch mode overrides Syscall/Pool — the way several servers
	// share one engine and its doorbell counters.
	Engine *exitio.Engine
	// Group, when non-nil, attributes the server's queue activity to a
	// per-service counter group on the shared Engine.
	Group *exitio.Group
	// Encrypted selects whether request/response crypto costs are
	// charged (the paper encrypts all traffic; on by default in the
	// harness, off in some unit tests).
	Encrypted bool
}

// Server is one parameter server worker: a table plus a socket and an
// exit-less I/O queue. For multi-threaded experiments create one Server
// per thread over a shared table (the paper shards requests by
// connection).
type Server struct {
	cfg     Config
	plat    *sgx.Platform
	table   *kv.FixedTable
	sock    *netsim.Socket
	io      *exitio.Queue
	entries uint64
	reqBuf  []byte
}

// Entries returns the number of key-value pairs loaded.
func (s *Server) Entries() uint64 { return s.entries }

// Table exposes the underlying table (tests and the harness).
func (s *Server) Table() *kv.FixedTable { return s.table }

// RequestBytes returns the wire size of a request updating nkeys keys:
// a 4-byte count plus key/delta pairs plus the AES-GCM envelope.
func RequestBytes(nkeys int) int { return 4 + 16*nkeys + 28 }

// ResponseBytes is the wire size of the acknowledgement.
const ResponseBytes = 16 + 28

// New builds and loads a parameter server. setup must be an enclave
// thread (entered) for enclave/SUVM placements, or any thread for host
// placement; loading costs are charged to it and are not part of any
// measurement (reset counters afterwards).
func New(plat *sgx.Platform, setup *sgx.Thread, cfg Config) (*Server, error) {
	entries := cfg.DataBytes / 16
	if entries == 0 {
		return nil, fmt.Errorf("pserver: data size %d too small", cfg.DataBytes)
	}
	if cfg.Placement == PlaceSUVM && cfg.Heap == nil {
		return nil, fmt.Errorf("pserver: SUVM placement requires a heap")
	}
	eng := cfg.Engine
	if eng == nil {
		if cfg.Syscall.NeedsPool() && cfg.Pool == nil {
			return nil, fmt.Errorf("pserver: RPC mode requires a worker pool")
		}
		var err error
		if eng, err = exitio.NewEngine(cfg.Syscall, cfg.Pool); err != nil {
			return nil, fmt.Errorf("pserver: %w", err)
		}
	} else {
		cfg.Syscall = eng.Mode()
	}
	buckets := uint64(1)
	for buckets < 2*entries {
		buckets *= 2
	}
	memSize := kv.FixedTableMemSize(cfg.Layout, buckets, entries)

	var mem kv.Mem
	switch cfg.Placement {
	case PlaceHost:
		mem = kv.HostRegion(plat, memSize)
	case PlaceEnclave:
		if setup.Enclave() == nil {
			return nil, fmt.Errorf("pserver: enclave placement requires an enclave thread")
		}
		mem = kv.EnclaveRegion(setup.Enclave(), memSize)
	case PlaceSUVM:
		r, err := kv.NewSUVMRegion(cfg.Heap, memSize)
		if err != nil {
			return nil, err
		}
		mem = r
	}
	table, err := kv.NewFixedTable(mem, cfg.Layout, buckets, entries)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		plat:    plat,
		table:   table,
		sock:    netsim.NewSocket(plat, 64<<10),
		io:      eng.NewGroupQueue(cfg.Group),
		entries: entries,
		reqBuf:  make([]byte, 64<<10),
	}
	if err := s.load(setup, mem, buckets); err != nil {
		return nil, err
	}
	return s, nil
}

// load populates keys 1..entries with value=key. Bulk layout is computed
// in plain Go and streamed into the region in large writes, because
// element-by-element insertion of hundreds of megabytes through the
// simulated memory system would dominate host wall-clock time without
// changing any measured number (loading is never measured).
func (s *Server) load(setup *sgx.Thread, mem kv.Mem, buckets uint64) error {
	img, err := kv.BuildFixedImage(s.cfg.Layout, buckets, s.entries)
	if err != nil {
		return err
	}
	const chunk = 1 << 20
	for off := 0; off < len(img); off += chunk {
		end := off + chunk
		if end > len(img) {
			end = len(img)
		}
		if err := mem.Write(setup, uint64(off), img[off:end]); err != nil {
			return err
		}
	}
	s.table.SetLoaded(s.entries)
	return nil
}

// Close releases the server's socket buffers.
func (s *Server) Close() { s.sock.Close() }

// ServeRequest processes one client request updating the given keys:
// receive (via the configured mechanism), decrypt, apply the updates,
// encrypt and send the response. th must match the configuration: an
// entered enclave thread for OCALL/RPC modes, a host thread for native.
func (s *Server) ServeRequest(th *sgx.Thread, keys []uint64) error {
	n := RequestBytes(len(keys))
	m := s.plat.Model

	// Stage the request as the remote client + NIC would.
	payload := s.reqBuf[:n]
	putLeU32(payload[0:4], uint32(len(keys)))
	for i, k := range keys {
		putLeU64(payload[4+16*i:], k)
		putLeU64(payload[12+16*i:], 1) // delta
	}
	s.sock.Deliver(payload)

	// recv() — in async mode the previous request's deferred response
	// send is still staged, and the receive links onto it: one doorbell
	// carries SEND(i) and RECV(i+1).
	if s.io.Staged() > 0 {
		s.io.PushLinked(exitio.Recv{Sock: s.sock, N: n})
	} else {
		s.io.Push(exitio.Recv{Sock: s.sock, N: n})
	}
	if _, err := s.io.SubmitAndWait(th); err != nil {
		return fmt.Errorf("pserver: recv: %w", err)
	}

	// Pull the payload out of the untrusted staging buffer and decrypt.
	th.Read(s.sock.UserBuf(), payload)
	if s.cfg.Encrypted {
		netsim.CryptoCost(th.T, m, n)
	}

	// Apply the updates.
	nk := int(leU32(payload[0:4]))
	for i := 0; i < nk; i++ {
		key := leU64(payload[4+16*i:])
		delta := leU64(payload[12+16*i:])
		if err := s.table.Add(th, key, delta); err != nil {
			return fmt.Errorf("pserver: update key %d: %w", key, err)
		}
	}

	// Respond.
	if s.cfg.Encrypted {
		netsim.CryptoCost(th.T, m, ResponseBytes)
	}
	var ack [16]byte
	th.Write(s.sock.UserBuf(), ack[:])
	s.io.Push(exitio.Send{Sock: s.sock, N: ResponseBytes})
	if s.cfg.Syscall == SysRPCAsync {
		// Deferred: the send rides the next request's doorbell (Flush
		// pushes out the last one).
		return nil
	}
	if _, err := s.io.SubmitAndWait(th); err != nil {
		return fmt.Errorf("pserver: send: %w", err)
	}
	return nil
}

// Flush completes any deferred response send (async mode); a no-op in
// the synchronous modes.
func (s *Server) Flush(th *sgx.Thread) error {
	if _, err := s.io.SubmitAndWait(th); err != nil {
		return fmt.Errorf("pserver: flush: %w", err)
	}
	return nil
}

// IO returns the server's submission queue (stats, tests).
func (s *Server) IO() *exitio.Queue { return s.io }

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

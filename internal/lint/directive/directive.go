// Package directive parses the //eleos: comment directives that carry
// the simulator's statically checked invariants. The grammar is small
// and line-oriented; each directive sits alone on a comment line:
//
//	//eleos:trusted        — code runs inside the enclave
//	//eleos:untrusted      — code runs outside the enclave
//	//eleos:platform       — simulated hardware / privileged host kernel
//	//eleos:facade         — sanctioned raw host-memory crossing point
//	//eleos:deterministic  — package is cycle-charged; wall clock, global
//	//	                     rand and unsorted map ranges are forbidden
//	//eleos:lockorder N    — mutex participates in the global lock order
//	//	                     with rank N (lower ranks are acquired first)
//	//eleos:service NAME   — code belongs to the named service of a
//	//	                     multi-service enclave; reaching another
//	//	                     service's code or data requires CrossCall
//	//eleos:hotpath budget=N — the function is on a doorbell-latency
//	//	                     path; its worst-case heap allocations per
//	//	                     invocation (including intra-module callees)
//	//	                     must not exceed N
//	//eleos:allow CHECK -- reason — suppress CHECK on the next line
//
// Trust-domain directives appear in package doc comments (setting the
// default for every function in the package) or in a function's doc
// comment (overriding the package default). Lockorder directives appear
// in the doc or line comment of a mutex field or package-level mutex
// variable. Allow directives appear on, or on the line immediately
// above, the statement they suppress, and must carry a reason.
package directive

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Prefix is the comment prefix shared by every directive.
const Prefix = "//eleos:"

// Domain is a trust domain assignment.
type Domain int

const (
	// DomainUnset means no trust directive applies.
	DomainUnset Domain = iota
	// DomainTrusted marks code that runs inside the enclave.
	DomainTrusted
	// DomainUntrusted marks code that runs outside the enclave.
	DomainUntrusted
	// DomainPlatform marks the simulated hardware and the privileged
	// host kernel, which by definition straddle the boundary.
	DomainPlatform
)

func (d Domain) String() string {
	switch d {
	case DomainTrusted:
		return "trusted"
	case DomainUntrusted:
		return "untrusted"
	case DomainPlatform:
		return "platform"
	}
	return "unset"
}

// Set is the collection of directives found on one declaration or in
// one package's doc comments.
type Set struct {
	Domain        Domain
	Facade        bool
	Deterministic bool
	LockRank      int
	HasLockRank   bool
	// Service is the //eleos:service name, "" when unannotated.
	Service string
	// HotPath is true when an //eleos:hotpath directive is present;
	// HotBudget/HasHotBudget carry its parsed budget=N argument (a
	// present directive with a malformed budget leaves HasHotBudget
	// false, which the hotpath analyzer reports).
	HotPath      bool
	HotBudget    int
	HasHotBudget bool
}

// Merge folds other into s; other's domain wins when both are set.
func (s *Set) Merge(other Set) {
	if other.Domain != DomainUnset {
		s.Domain = other.Domain
	}
	s.Facade = s.Facade || other.Facade
	s.Deterministic = s.Deterministic || other.Deterministic
	if other.HasLockRank {
		s.LockRank, s.HasLockRank = other.LockRank, true
	}
	if other.Service != "" {
		s.Service = other.Service
	}
	if other.HotPath {
		s.HotPath = true
		s.HotBudget, s.HasHotBudget = other.HotBudget, other.HasHotBudget
	}
}

// Parse extracts directives from the given comment groups (nil groups
// are skipped).
func Parse(groups ...*ast.CommentGroup) Set {
	var s Set
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			name, arg, ok := split(c.Text)
			if !ok {
				continue
			}
			switch name {
			case "trusted":
				s.Domain = DomainTrusted
			case "untrusted":
				s.Domain = DomainUntrusted
			case "platform":
				s.Domain = DomainPlatform
			case "facade":
				s.Facade = true
			case "deterministic":
				s.Deterministic = true
			case "lockorder":
				if n, err := strconv.Atoi(strings.Fields(arg)[0]); err == nil {
					s.LockRank, s.HasLockRank = n, true
				}
			case "service":
				if f := strings.Fields(arg); len(f) > 0 {
					s.Service = f[0]
				}
			case "hotpath":
				s.HotPath = true
				for _, field := range strings.Fields(arg) {
					if rest, ok := strings.CutPrefix(field, "budget="); ok {
						if n, err := strconv.Atoi(rest); err == nil && n >= 0 {
							s.HotBudget, s.HasHotBudget = n, true
						}
					}
				}
			}
		}
	}
	return s
}

// split decomposes one comment line into directive name and argument.
// Directives use the Go tool-directive form (no space after //), so
// ordinary prose mentioning "eleos:" is never parsed.
func split(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, Prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, Prefix)
	name, arg, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(arg), true
}

// ForPackage merges the package doc comments of every file. Go keeps a
// package's doc comment in whichever file carries it, and nothing stops
// two files from both having one, so all files are consulted.
func ForPackage(files []*ast.File) Set {
	var s Set
	for _, f := range files {
		s.Merge(Parse(f.Doc))
	}
	return s
}

// ForFunc parses the doc comment of one function declaration.
func ForFunc(decl *ast.FuncDecl) Set {
	return Parse(decl.Doc)
}

// Allow is one suppression directive: CHECK may not fire on Line or
// Line+1 of File.
type Allow struct {
	File  string
	Line  int
	Check string
	// Reason is the text after "--"; empty reasons are rejected by the
	// driver so every suppression documents itself.
	Reason string
}

// Allows scans every comment in the file for //eleos:allow directives.
func Allows(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, g := range f.Comments {
		for _, c := range g.List {
			name, arg, ok := split(c.Text)
			if !ok || name != "allow" {
				continue
			}
			check, reason, _ := strings.Cut(arg, "--")
			pos := fset.Position(c.Pos())
			out = append(out, Allow{
				File:   pos.Filename,
				Line:   pos.Line,
				Check:  strings.TrimSpace(check),
				Reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}

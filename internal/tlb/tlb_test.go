package tlb

import (
	"testing"

	"eleos/internal/cycles"
)

func newTLB(t testing.TB) (*TLB, *cycles.Thread) {
	t.Helper()
	m := cycles.DefaultModel()
	return New(m, Config{}), cycles.NewThread(1, m)
}

func TestMissThenHit(t *testing.T) {
	tl, th := newTLB(t)
	if tl.Access(th, 100, false) {
		t.Fatal("cold translation hit")
	}
	if !tl.Access(th, 100, false) {
		t.Fatal("warm translation missed")
	}
	if tl.Misses() != 1 {
		t.Fatalf("miss count %d", tl.Misses())
	}
}

func TestWalkCostsFollowModel(t *testing.T) {
	tl, th := newTLB(t)
	m := th.Model()
	before := th.Cycles()
	tl.Access(th, 1, false)
	if got := th.Cycles() - before; got != m.TLBMiss {
		t.Fatalf("host walk charged %d, want %d", got, m.TLBMiss)
	}
	before = th.Cycles()
	tl.Access(th, 2, true)
	if got := th.Cycles() - before; got != m.TLBMissEPC {
		t.Fatalf("EPC walk charged %d, want %d", got, m.TLBMissEPC)
	}
}

func TestFlushEPCKeepsHostEntries(t *testing.T) {
	tl, th := newTLB(t)
	tl.Access(th, 10, false) // host
	tl.Access(th, 20, true)  // enclave
	tl.FlushEPC()
	if !tl.Contains(10) {
		t.Fatal("host translation lost on enclave flush")
	}
	if tl.Contains(20) {
		t.Fatal("enclave translation survived flush")
	}
}

func TestFullFlush(t *testing.T) {
	tl, th := newTLB(t)
	tl.Access(th, 10, false)
	tl.Access(th, 20, true)
	tl.Flush()
	if tl.Contains(10) || tl.Contains(20) {
		t.Fatal("translations survived full flush")
	}
	if tl.Flushes() != 1 {
		t.Fatalf("flush count %d", tl.Flushes())
	}
}

func TestInvalidateSingle(t *testing.T) {
	tl, th := newTLB(t)
	tl.Access(th, 30, true)
	tl.Access(th, 31, true)
	tl.Invalidate(30)
	if tl.Contains(30) {
		t.Fatal("invalidated entry present")
	}
	if !tl.Contains(31) {
		t.Fatal("unrelated entry dropped")
	}
}

func TestCapacityEviction(t *testing.T) {
	tl, th := newTLB(t)
	// Touch far more pages than the TLB holds; early pages must be
	// evicted and re-miss.
	const span = 8192
	for vp := uint64(0); vp < span; vp++ {
		tl.Access(th, vp, false)
	}
	m0 := tl.Misses()
	for vp := uint64(0); vp < span; vp++ {
		tl.Access(th, vp, false)
	}
	if tl.Misses() == m0 {
		t.Fatal("no capacity misses on an 8192-page working set")
	}
}

package suvm

import "sync"

// inflightTable is the per-page fault coordination table: every page-in
// and every eviction registers the backing-store page here for its
// duration, giving each page a single owner. Concurrent faulters on the
// same page wait on the owner's entry and coalesce onto its frame
// instead of repeating the page-in; faults and evictions of the same
// page exclude each other, which restores the write-back ordering the
// old global fault lock provided (a page's sealed bytes are never read
// while its write-back is still in progress). Faults on different pages
// never meet here at all — the table is sharded like the resident
// table, and entries on distinct pages are independent.
type inflightTable struct {
	shards [tableShards]inflightShard
}

type inflightShard struct {
	//eleos:lockorder 20
	mu sync.Mutex
	m  map[uint64]*inflightOp
}

// inflightOp is one in-progress page-in or eviction. The owner fills
// doneAt (its virtual clock at completion) before closing done, so
// waiters observe it with the usual channel happens-before edge.
type inflightOp struct {
	done     chan struct{}
	evicting bool // eviction entry: waiters retry, nothing to coalesce onto
	// pagedIn is set by a page-in owner that succeeded, before done is
	// closed. A same-page faulter that waited on the entry coalesces onto
	// the winner's frame only in this case; waiters of an eviction or of
	// a page-in that failed (ErrOutOfEPC) have no frame to adopt and must
	// run their own fault, so they are not counted as coalesced.
	pagedIn bool
	// doneAt is the owner's virtual-cycle timestamp when the operation
	// completed. Waiters are charged max(0, doneAt - now): the same
	// single-server queueing rule the SGX driver's busyUntil model uses,
	// so same-page contention costs virtual time while disjoint-page
	// parallelism stays free.
	doneAt uint64
}

func newInflightTable() *inflightTable {
	t := &inflightTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*inflightOp)
	}
	return t
}

func (t *inflightTable) shard(bsPage uint64) *inflightShard {
	return &t.shards[bsPage%tableShards]
}

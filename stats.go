package eleos

// RuntimeStats is the unified observability tree: one call snapshots
// every layer of the runtime. It replaces stitching together
// Pool().Stats(), IOEngine().Stats() and per-enclave Stats() calls —
// those accessors remain as thin wrappers, but new code should read
// this tree.
type RuntimeStats struct {
	// RPC is the exit-less worker pool: call counts per submission
	// path, queue depths, backoff activity, residual wait cycles, and
	// the live worker count with its resize history.
	RPC RPCStats
	// IO is the exit-less I/O engine: doorbells, chains, linked ops,
	// reap-stall cycles and live mode switches.
	IO IOStats
	// Heaps carries the SUVM counters of every live enclave, in
	// creation order (enclaves removed by Destroy drop out).
	Heaps []HeapStats
	// Tune is the self-tuning controller. Enabled is false (and the
	// rest zero) when the runtime was built without autotuning.
	Tune TuneStats
	// Fleet is the fleet balloon controller. Enabled is false (and the
	// rest zero) when the runtime was built without WithFleetBalloon.
	Fleet FleetStats
	// Services carries per-service rollups across all live enclaves, in
	// enclave order then service creation order. Empty when no enclave
	// has carved services.
	Services []ServiceStats
}

// ServiceStats is one carved service's rollup: its heap domain
// counters, its share of the shared I/O engine's activity, and its
// CrossCall traffic.
type ServiceStats struct {
	// Name is the service name given to NewService.
	Name string
	// Enclave is the index of the hosting enclave in RuntimeStats.Heaps.
	Enclave int
	// Heap is the service's SUVM domain snapshot (faults, evictions,
	// writebacks charged to this service only).
	Heap HeapStats
	// IO is the service's slice of engine activity (doorbells, chains,
	// ops, reap-stall cycles from queues its contexts opened).
	IO IOStats
	// CrossCallsIn counts CrossCalls that targeted this service;
	// CrossCallsOut counts CrossCalls its contexts issued.
	CrossCallsIn, CrossCallsOut uint64
}

// Stats snapshots the whole runtime. The layers are read one after the
// other without a global lock, so the tree is per-layer consistent (each
// subsystem snapshot is itself coherent) rather than a frozen instant
// across layers — the same contract the individual accessors always had.
func (r *Runtime) Stats() RuntimeStats {
	st := RuntimeStats{RPC: r.pool.Stats(), IO: r.io.Stats()}
	r.mu.Lock()
	encls := append([]*Enclave(nil), r.enclaves...)
	svcs := make([][]*Service, len(encls))
	for i, e := range encls {
		svcs[i] = append([]*Service(nil), e.services...)
	}
	r.mu.Unlock()
	for i, e := range encls {
		st.Heaps = append(st.Heaps, e.heap.Stats())
		for _, s := range svcs[i] {
			ss := s.Stats()
			ss.Enclave = i
			st.Services = append(st.Services, ss)
		}
	}
	if r.tuner != nil {
		st.Tune = r.tuner.Stats()
	}
	if r.fleet != nil {
		st.Fleet = r.fleet.Stats()
	}
	return st
}

package kv

import (
	"encoding/binary"
	"fmt"
)

// BuildFixedImage computes, in plain Go memory, the byte image of a
// FixedTable pre-loaded with keys 1..entries mapping to value=key —
// bit-identical to what entries sequential Put calls would produce.
// Benchmark setup streams this image into the simulated region in bulk,
// because loading half a gigabyte element by element through the
// simulated memory system costs minutes of host time while contributing
// nothing to any measurement.
func BuildFixedImage(layout Layout, buckets, entries uint64) ([]byte, error) {
	if buckets == 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("kv: bucket count %d must be a power of two", buckets)
	}
	img := make([]byte, FixedTableMemSize(layout, buckets, entries))
	mask := buckets - 1
	if layout == OpenAddressing {
		if entries > buckets {
			return nil, ErrFull
		}
		for key := uint64(1); key <= entries; key++ {
			idx := hash64(key) & mask
			for {
				off := idx * slotBytes
				if binary.LittleEndian.Uint64(img[off:]) == 0 {
					binary.LittleEndian.PutUint64(img[off:], key)
					binary.LittleEndian.PutUint64(img[off+8:], key)
					break
				}
				idx = (idx + 1) & mask
			}
		}
		return img, nil
	}
	nodeBase := buckets * 8
	for key := uint64(1); key <= entries; key++ {
		nodeIdx := key // 1-based, insertion order
		off := nodeBase + (nodeIdx-1)*nodeBytes
		bOff := (hash64(key) & mask) * 8
		head := binary.LittleEndian.Uint64(img[bOff:])
		binary.LittleEndian.PutUint64(img[off:], key)
		binary.LittleEndian.PutUint64(img[off+8:], key)
		binary.LittleEndian.PutUint64(img[off+16:], head)
		binary.LittleEndian.PutUint64(img[bOff:], nodeIdx)
	}
	return img, nil
}

// SetLoaded records that count entries were bulk-loaded into the table's
// region (pairs with BuildFixedImage).
func (t *FixedTable) SetLoaded(count uint64) { t.nodeCount = count }

// Package hostmem is a testdata stand-in for the real untrusted host
// memory arena.
//
//eleos:untrusted
package hostmem

// Arena mimics the raw byte accessor surface of the real arena.
type Arena struct{ b []byte }

func (a *Arena) ReadAt(addr uint64, buf []byte) { copy(buf, a.b[addr:]) }

func (a *Arena) WriteAt(addr uint64, data []byte) { copy(a.b[addr:], data) }

func (a *Arena) Slice(addr uint64, n int) []byte { return a.b[addr : addr+uint64(n)] }

// Stats is a non-raw accessor; calling it from trusted code is fine.
func (a *Arena) Stats() int { return len(a.b) }

// Package simdeterminism enforces the virtual-time core's determinism.
//
// The simulator's golden cycle-fingerprint tests assume that a run is a
// pure function of its configuration and seeds: cycle charges never
// depend on the wall clock, on process-global randomness, or on Go's
// randomized map iteration order. Packages that participate in cycle
// accounting opt in with an //eleos:deterministic package-doc
// directive; in those packages the analyzer flags
//
//   - wall-clock reads and timers (time.Now, time.Since, time.Sleep,
//     time.After, tickers, …) — virtual time comes from the cycles
//     package, never from the host ["wallclock"];
//   - the process-global math/rand (and math/rand/v2) top-level
//     functions, which are unseeded and shared — deterministic code
//     draws from an explicitly seeded *rand.Rand ["globalrand"];
//   - range over a map, unless the loop body is order-insensitive
//     (commutative accumulation only) or the loop merely collects keys
//     that a later statement in the same block sorts ["maprange"].
//
// A finding on a deliberate exception (e.g. the wall-clock swapper
// mode) is suppressed with "//eleos:allow CHECK -- reason".
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/directive"
)

// Analyzer is the simdeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global rand and unsorted map ranges in cycle-charged packages",
	Run:  run,
}

// wallClockFuncs are the time-package functions that read or schedule
// against the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand(/v2) top-level functions that
// build explicitly seeded generators; everything else at package level
// draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !directive.ForPackage(pass.Pkg.Files).Deterministic {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, info, n)
			case *ast.BlockStmt:
				checkStmtList(pass, info, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, info, n.Body)
			case *ast.CommClause:
				checkStmtList(pass, info, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && wallClockFuncs[fn.Name()] {
			pass.Report(call.Pos(), "wallclock",
				"call to time.%s in deterministic package %s; simulated time comes from the cycles package",
				fn.Name(), pass.Pkg.Types.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand / *rand.Zipf are fine: those values
		// exist only via the explicitly seeded constructors.
		if !isMethod && !randConstructors[fn.Name()] {
			pass.Report(call.Pos(), "globalrand",
				"call to the process-global rand.%s in deterministic package %s; use an explicitly seeded *rand.Rand",
				fn.Name(), pass.Pkg.Types.Name())
		}
	}
}

// checkStmtList examines each range-over-map loop in a statement list,
// with access to the loop's later siblings for the collect-then-sort
// pattern.
func checkStmtList(pass *analysis.Pass, info *types.Info, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := info.Types[rs.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if orderInsensitive(info, rs.Body.List) {
			continue
		}
		if keyCollectThenSort(info, rs, stmts[i+1:]) {
			continue
		}
		pass.Report(rs.For, "maprange",
			"range over map with order-sensitive body in deterministic package %s; sort the keys first or make the body commutative",
			pass.Pkg.Types.Name())
	}
}

// orderInsensitive reports whether executing the statements once per
// map entry yields the same state for every iteration order. Only a
// conservative core is accepted: commutative compound assignments,
// inc/dec, continue, and if-statements whose branches are themselves
// order-insensitive. Any function call (other than builtins) or plain
// assignment disqualifies the body — `if v > max { best = k }` keeps
// whichever tied key the iteration met first.
func orderInsensitive(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				// commutative accumulation
			default:
				return false
			}
			if hasNonBuiltinCall(info, s) {
				return false
			}
		case *ast.IncDecStmt:
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || hasNonBuiltinCall(info, s.Cond) {
				return false
			}
			if !orderInsensitive(info, s.Body.List) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !orderInsensitive(info, eb.List) {
					return false
				}
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// hasNonBuiltinCall reports whether n contains a call that is not a
// builtin like len or cap.
func hasNonBuiltinCall(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				return true
			}
			if _, conv := info.Uses[id].(*types.TypeName); conv {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// keyCollectThenSort recognizes the sanctioned pattern
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Slice(keys, ...)   // or any sort./slices. call taking keys
//
// where the sort happens in a later statement of the same block.
func keyCollectThenSort(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dest, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	if arg, ok := call.Args[0].(*ast.Ident); !ok || arg.Name != dest.Name {
		return false
	}
	destObj := objectOf(info, dest)
	if destObj == nil {
		return false
	}
	for _, s := range rest {
		if sortsIdent(info, s, destObj) {
			return true
		}
	}
	return false
}

// sortsIdent reports whether stmt contains a call into package sort or
// slices with obj among its arguments.
func sortsIdent(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.StaticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && objectOf(info, id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

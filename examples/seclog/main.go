// A sealed append-only log: the enclave encrypts and MACs every record
// before writing it to an untrusted file through exit-less system
// calls, then replays and verifies the log. Demonstrates the pattern
// the paper's philosophy enables — all OS services, storage included,
// consumed without leaving the enclave.
//
//	go run ./examples/seclog
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"eleos/internal/fsim"
	"eleos/internal/rpc"
	"eleos/internal/seal"
	"eleos/internal/sgx"
)

const logPath = "/var/log/enclave-audit.sealed"

func main() {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := rpc.NewPool(plat, 2, 128)
	pool.Start()
	defer pool.Stop()
	fs := fsim.NewFS(plat)
	sealer, err := seal.New(plat.Model)
	if err != nil {
		log.Fatal(err)
	}

	// Open the log — a system call, performed without exiting.
	var fd int
	mustCall(pool.Call(th, func(h *sgx.HostCtx) { fd, _ = fs.Open(h, logPath) }))

	// Append 1,000 sealed records. Record format on disk:
	// [len u32][nonce 12][ciphertext+tag]. The nonce can live in the
	// clear; integrity and confidentiality come from the AEAD.
	//
	// Writes go out asynchronously: the enclave thread keeps sealing the
	// next record while an untrusted worker writes the previous one, so
	// the write latency hides behind the AES work (§3.1's futures). The
	// futures are collected before fsync.
	exits0, _, _, _, _ := encl.Stats().Snapshot()
	type trusted struct{ off uint64 }
	var index []trusted // kept in enclave memory
	var writes []*rpc.Future
	off := uint64(0)
	for i := 0; i < 1000; i++ {
		record := fmt.Sprintf("audit event %04d: balance moved", i)
		nonce, ct := sealer.Seal(th.T, nil, []byte(record), binary.LittleEndian.AppendUint64(nil, uint64(i)))
		frame := make([]byte, 4+len(nonce)+len(ct))
		binary.LittleEndian.PutUint32(frame, uint32(len(ct)))
		copy(frame[4:], nonce[:])
		copy(frame[4+len(nonce):], ct)
		wrOff := off
		f, err := pool.CallAsync(th, func(h *sgx.HostCtx) { fs.PWrite(h, fd, wrOff, frame) })
		if err != nil {
			log.Fatal(err)
		}
		writes = append(writes, f)
		index = append(index, trusted{off: off})
		off += uint64(len(frame))
	}
	for _, f := range writes {
		f.Wait(th)
	}
	mustCall(pool.Call(th, func(h *sgx.HostCtx) { fs.Fsync(h, fd) }))
	exits1, _, _, _, _ := encl.Stats().Snapshot()

	// The host sees only ciphertext.
	raw := make([]byte, 64)
	_ = fs.RawRead(logPath, 4+12, raw)
	fmt.Printf("host's view of record 0: %x...\n", raw[:24])

	// Replay and verify every record from inside the enclave.
	verified := 0
	for i, ent := range index {
		hdr := make([]byte, 16)
		mustCall(pool.Call(th, func(h *sgx.HostCtx) { fs.PRead(h, fd, ent.off, hdr) }))
		n := binary.LittleEndian.Uint32(hdr)
		var nonce seal.Nonce
		copy(nonce[:], hdr[4:])
		ct := make([]byte, n)
		mustCall(pool.Call(th, func(h *sgx.HostCtx) { fs.PRead(h, fd, ent.off+16, ct) }))
		pt, err := sealer.Open(th.T, nil, ct, binary.LittleEndian.AppendUint64(nil, uint64(i)), nonce)
		if err != nil {
			log.Fatalf("record %d failed verification: %v", i, err)
		}
		want := fmt.Sprintf("audit event %04d: balance moved", i)
		if string(pt) != want {
			log.Fatalf("record %d corrupted", i)
		}
		verified++
	}
	fmt.Printf("replayed and verified %d sealed records\n", verified)
	fmt.Printf("file size: %d bytes across %d system calls, ", off, fs.Syscalls())
	fmt.Printf("enclave exits during logging: %d\n", exits1-exits0)

	// Now let the host tamper with one record and watch verification
	// catch it.
	_ = fs.RawRead(logPath, 0, raw[:1])
	tamper := []byte{raw[0] ^ 0x80}
	var hfd int
	host := plat.NewHostThread(0).HostContext()
	hfd, _ = fs.Open(host, logPath)
	// An adversarial write from the host side, at record 500's payload.
	fs.PWrite(host, hfd, index[500].off+20, tamper)
	hdr := make([]byte, 16)
	mustCall(pool.Call(th, func(h *sgx.HostCtx) { fs.PRead(h, fd, index[500].off, hdr) }))
	n := binary.LittleEndian.Uint32(hdr)
	var nonce seal.Nonce
	copy(nonce[:], hdr[4:])
	ct := make([]byte, n)
	mustCall(pool.Call(th, func(h *sgx.HostCtx) { fs.PRead(h, fd, index[500].off+16, ct) }))
	if _, err := sealer.Open(th.T, nil, ct, binary.LittleEndian.AppendUint64(nil, uint64(500)), nonce); err != nil {
		fmt.Printf("host tampering with record 500 detected: %v\n", err)
	} else {
		log.Fatal("tampering went undetected!")
	}
}

// mustCall aborts on an exit-less call error (stopped pool).
func mustCall(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package servicedomain_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/servicedomain"
)

func TestServiceDomain(t *testing.T) {
	analysistest.Run(t, "testdata", servicedomain.Analyzer,
		"svca", "svcb", "bridge")
}

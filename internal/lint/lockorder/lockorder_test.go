package lockorder_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "locks")
}

// Package traffic generates deterministic open-loop request schedules
// over virtual cycles — the "millions of users" side of the testbed the
// paper's closed-loop memaslap harness cannot model. A closed-loop
// client waits for each response before sending the next request, so
// under overload it silently slows its own offered rate and the
// measured tail hides the queueing delay real users would see
// (coordinated omission). Here every request instead carries an
// *intended start cycle* drawn from an arrival process that does not
// care how the server is doing; the driver charges latency from that
// intended start, so a request that queued behind an overloaded server
// pays its full wait.
//
// Three arrival processes cover the production shapes: Poisson (steady
// independent arrivals), Burst (an on/off Markov-modulated Poisson —
// flash crowds), and Diurnal (piecewise-rate day/night cycles). A
// Fleet composes a process with a population of client connections:
// seeded open/close lifetimes (connection churn), a slow-client subset
// that stalls the server on reads, and optional key draws from the
// existing loadgen.KeyGen skew machinery.
//
// Trust domain: untrusted (the client machine, like loadgen). All
// draws come from per-generator seeded *rand.Rand, so identical seeds
// reproduce identical schedules bit-for-bit; checked by eleoslint for
// determinism.
//
//eleos:untrusted
//eleos:deterministic
package traffic

import (
	"math/rand"

	"eleos/internal/loadgen"
)

// Request is one open-loop arrival.
type Request struct {
	// Seq is the request's position in the schedule, starting at 0.
	Seq int
	// Arrival is the intended start cycle, relative to the start of the
	// schedule. Latency must be charged from here, not from when the
	// server got around to reading the request.
	Arrival uint64
	// Conn identifies the client connection; churned (re-opened)
	// connections get fresh ids, so Conn also counts lifetime opens.
	Conn uint64
	// Phase indexes the generating process's Phases() — which state of
	// the process (burst on/off, diurnal segment) produced the arrival.
	Phase int
	// Stall is a server-side read stall in cycles charged while serving
	// this request: the connection belongs to a slow client whose bytes
	// trickle in.
	Stall uint64
	// Key is drawn from the fleet's KeyGen when one is configured,
	// otherwise 0.
	Key uint64
}

// Process is a deterministic arrival process over virtual cycles. Next
// returns the gap to the next arrival and the index of the phase the
// arrival belongs to; Phases names the phases for reporting.
type Process interface {
	Name() string
	Phases() []string
	Next() (gap uint64, phase int)
}

// expGap draws one exponential inter-arrival gap with the given mean,
// in cycles. The mean must be positive.
func expGap(rng *rand.Rand, mean float64) uint64 {
	return uint64(rng.ExpFloat64() * mean)
}

// --- Poisson ---

// Poisson is a constant-rate memoryless arrival process: independent
// exponential inter-arrival gaps, the open-loop baseline.
type Poisson struct {
	rng  *rand.Rand
	mean float64
}

// NewPoisson creates a Poisson process with the given mean
// inter-arrival gap in cycles.
func NewPoisson(seed int64, meanGapCycles float64) *Poisson {
	if meanGapCycles <= 0 {
		panic("traffic: non-positive mean gap")
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), mean: meanGapCycles}
}

// Name implements Process.
func (p *Poisson) Name() string { return "poisson" }

// Phases implements Process: a single steady phase.
func (p *Poisson) Phases() []string { return []string{"steady"} }

// Next implements Process.
func (p *Poisson) Next() (uint64, int) { return expGap(p.rng, p.mean), 0 }

// --- Burst ---

// BurstConfig parameterizes an on/off Markov-modulated Poisson
// process: the process alternates between an "on" state (flash crowd,
// high rate) and an "off" state (background rate), with exponentially
// distributed state holding times.
type BurstConfig struct {
	// OnMeanGap and OffMeanGap are the per-state mean inter-arrival
	// gaps in cycles; a burst state typically offers more than the
	// server can sustain so queues build.
	OnMeanGap, OffMeanGap float64
	// OnMeanCycles and OffMeanCycles are the mean state holding times.
	OnMeanCycles, OffMeanCycles float64
}

// Burst is the on/off process. Arrivals are attributed to the state
// active when their gap was drawn.
type Burst struct {
	rng  *rand.Rand
	cfg  BurstConfig
	on   bool
	left float64 // cycles remaining in the current state
}

// NewBurst creates the on/off process, starting in the off state so
// the first burst arrives at a seeded offset.
func NewBurst(seed int64, cfg BurstConfig) *Burst {
	if cfg.OnMeanGap <= 0 || cfg.OffMeanGap <= 0 || cfg.OnMeanCycles <= 0 || cfg.OffMeanCycles <= 0 {
		panic("traffic: non-positive burst parameter")
	}
	b := &Burst{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	b.left = b.rng.ExpFloat64() * cfg.OffMeanCycles
	return b
}

// Name implements Process.
func (b *Burst) Name() string { return "burst" }

// Phases implements Process.
func (b *Burst) Phases() []string { return []string{"on", "off"} }

// Next implements Process.
func (b *Burst) Next() (uint64, int) {
	mean := b.cfg.OffMeanGap
	phase := 1
	if b.on {
		mean = b.cfg.OnMeanGap
		phase = 0
	}
	gap := expGap(b.rng, mean)
	b.left -= float64(gap)
	for b.left <= 0 {
		b.on = !b.on
		hold := b.cfg.OffMeanCycles
		if b.on {
			hold = b.cfg.OnMeanCycles
		}
		b.left += b.rng.ExpFloat64() * hold
	}
	return gap, phase
}

// --- Diurnal ---

// PhaseRate is one segment of a diurnal cycle: a named rate held for a
// fixed span of virtual cycles.
type PhaseRate struct {
	Name string
	// MeanGap is the mean inter-arrival gap while the phase is active.
	MeanGap float64
	// Cycles is the phase's span; the process cycles through its phases
	// and wraps around, like days do.
	Cycles uint64
}

// Diurnal is a piecewise-rate Poisson process: arrival intensity
// follows a repeating schedule of named phases.
type Diurnal struct {
	rng    *rand.Rand
	phases []PhaseRate
	idx    int
	left   float64 // cycles remaining in the current phase
}

// NewDiurnal creates the piecewise process starting at phase 0.
func NewDiurnal(seed int64, phases []PhaseRate) *Diurnal {
	if len(phases) == 0 {
		panic("traffic: diurnal needs at least one phase")
	}
	for _, p := range phases {
		if p.MeanGap <= 0 || p.Cycles == 0 {
			panic("traffic: non-positive diurnal phase parameter")
		}
	}
	d := &Diurnal{rng: rand.New(rand.NewSource(seed)), phases: phases}
	d.left = float64(phases[0].Cycles)
	return d
}

// Name implements Process.
func (d *Diurnal) Name() string { return "diurnal" }

// Phases implements Process.
func (d *Diurnal) Phases() []string {
	names := make([]string, len(d.phases))
	for i, p := range d.phases {
		names[i] = p.Name
	}
	return names
}

// Next implements Process.
func (d *Diurnal) Next() (uint64, int) {
	phase := d.idx
	gap := expGap(d.rng, d.phases[d.idx].MeanGap)
	d.left -= float64(gap)
	for d.left <= 0 {
		d.idx = (d.idx + 1) % len(d.phases)
		d.left += float64(d.phases[d.idx].Cycles)
	}
	return gap, phase
}

// --- Fleet ---

// FleetConfig models the client population in front of a process.
type FleetConfig struct {
	// Clients is the number of concurrently open connections; each
	// arrival is assigned to one of them uniformly.
	Clients int
	// MeanLifetime is the mean connection lifetime in cycles
	// (exponential). When a request lands on a connection past its
	// lifetime the connection is closed and a fresh one opened in its
	// slot — churn. 0 means connections never close.
	MeanLifetime float64
	// SlowFraction is the probability a (re)opened connection belongs
	// to a slow client; its requests carry StallCycles each.
	SlowFraction float64
	// StallCycles is the server-side read stall per slow-client
	// request.
	StallCycles uint64
	// Keys, when non-nil, fills Request.Key on every arrival — the
	// loadgen skew machinery (HotSet/Zipfian) composes here.
	Keys *loadgen.KeyGen
}

type conn struct {
	id   uint64
	dies uint64 // absolute cycle after which the connection churns; 0 = immortal
	slow bool
}

// Fleet composes an arrival process with a churning client population,
// producing the final open-loop request schedule.
type Fleet struct {
	rng    *rand.Rand
	proc   Process
	cfg    FleetConfig
	conns  []conn
	nextID uint64
	now    uint64 // arrival cycle of the last request generated
	seq    int
	churns uint64
	slow   uint64
}

// NewFleet seeds the population. Connection lifetimes and slow-client
// draws come from the fleet's own rng, so the same process seed with a
// different fleet seed reproduces the same arrival times with a
// different population.
func NewFleet(seed int64, proc Process, cfg FleetConfig) *Fleet {
	if cfg.Clients <= 0 {
		panic("traffic: fleet needs at least one client")
	}
	f := &Fleet{
		rng:   rand.New(rand.NewSource(seed)),
		proc:  proc,
		cfg:   cfg,
		conns: make([]conn, cfg.Clients),
	}
	for i := range f.conns {
		f.conns[i] = f.open(0)
	}
	return f
}

// open creates a fresh connection at the given cycle.
func (f *Fleet) open(now uint64) conn {
	c := conn{id: f.nextID, slow: f.rng.Float64() < f.cfg.SlowFraction}
	f.nextID++
	if f.cfg.MeanLifetime > 0 {
		c.dies = now + uint64(f.rng.ExpFloat64()*f.cfg.MeanLifetime) + 1
	}
	return c
}

// Process returns the underlying arrival process.
func (f *Fleet) Process() Process { return f.proc }

// Churns returns how many connections have been closed and reopened.
func (f *Fleet) Churns() uint64 { return f.churns }

// SlowRequests returns how many generated requests carried a stall.
func (f *Fleet) SlowRequests() uint64 { return f.slow }

// Next generates the next request of the schedule. The stream is
// infinite; the driver decides how many to take.
func (f *Fleet) Next() Request {
	gap, phase := f.proc.Next()
	f.now += gap
	slot := f.rng.Intn(len(f.conns))
	if c := &f.conns[slot]; c.dies != 0 && c.dies <= f.now {
		*c = f.open(f.now)
		f.churns++
	}
	c := f.conns[slot]
	req := Request{
		Seq:     f.seq,
		Arrival: f.now,
		Conn:    c.id,
		Phase:   phase,
	}
	if c.slow {
		req.Stall = f.cfg.StallCycles
		f.slow++
	}
	if f.cfg.Keys != nil {
		req.Key = f.cfg.Keys.Next()
	}
	f.seq++
	return req
}

// Schedule materializes the next n requests, for tests and goldens.
func (f *Fleet) Schedule(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

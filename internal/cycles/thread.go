package cycles

import (
	"fmt"
	"sync/atomic"
)

// Thread is the cycle counter of one simulated hardware thread. All
// simulated costs incurred by code running "on" that thread are charged
// here. The counter is updated with atomics so that monitors (e.g. the
// benchmark harness) may read it concurrently, but a Thread is logically
// owned by a single goroutine.
type Thread struct {
	id     int
	model  *Model
	cycles atomic.Uint64
}

// NewThread returns a thread counter bound to the given cost model.
func NewThread(id int, m *Model) *Thread {
	if m == nil {
		panic("cycles: nil model")
	}
	return &Thread{id: id, model: m}
}

// ID returns the thread's identifier, unique within its platform.
func (t *Thread) ID() int { return t.id }

// Model returns the cost model the thread charges against.
func (t *Thread) Model() *Model { return t.model }

// Charge adds n cycles to the thread's counter.
func (t *Thread) Charge(n uint64) { t.cycles.Add(n) }

// Cycles returns the total cycles charged so far.
func (t *Thread) Cycles() uint64 { return t.cycles.Load() }

// Reset zeroes the counter. Intended for benchmark warm-up boundaries.
func (t *Thread) Reset() { t.cycles.Store(0) }

// Seconds returns the thread's elapsed virtual time.
func (t *Thread) Seconds() float64 { return t.model.Seconds(t.Cycles()) }

func (t *Thread) String() string {
	return fmt.Sprintf("thread%d[%d cycles]", t.id, t.Cycles())
}

// Group aggregates the counters of threads that run concurrently.
// Virtual wall-clock time of a parallel phase is the maximum over the
// participating threads, mirroring how the paper measures end-to-end
// time of a multi-threaded server.
type Group struct {
	model   *Model
	threads []*Thread
}

// NewGroup creates an empty group over the given model.
func NewGroup(m *Model) *Group { return &Group{model: m} }

// Add appends a thread to the group and returns it, for chaining.
func (g *Group) Add(t *Thread) *Thread {
	g.threads = append(g.threads, t)
	return t
}

// Threads returns the group's members.
func (g *Group) Threads() []*Thread { return g.threads }

// MaxCycles returns the largest per-thread counter, i.e. the virtual
// elapsed time of the parallel phase.
func (g *Group) MaxCycles() uint64 {
	var max uint64
	for _, t := range g.threads {
		if c := t.Cycles(); c > max {
			max = c
		}
	}
	return max
}

// TotalCycles returns the sum over all threads (aggregate CPU work).
func (g *Group) TotalCycles() uint64 {
	var sum uint64
	for _, t := range g.threads {
		sum += t.Cycles()
	}
	return sum
}

// Seconds returns the virtual elapsed time of the parallel phase.
func (g *Group) Seconds() float64 { return g.model.Seconds(g.MaxCycles()) }

// Reset zeroes every member counter.
func (g *Group) Reset() {
	for _, t := range g.threads {
		t.Reset()
	}
}

// Throughput returns operations per virtual second given that the group
// collectively completed ops operations.
func (g *Group) Throughput(ops uint64) float64 {
	s := g.Seconds()
	if s == 0 {
		return 0
	}
	return float64(ops) / s
}

package bench

import "testing"

// TestRegistryComplete pins the experiment inventory: every table and
// figure of the paper plus the four ablations, each runnable by ID.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "tab1", "fig2a", "fig2b",
		"fig6a", "fig6b", "fig6c", "rpc-async", "io-engine", "selftune", "consolidation", "fleet", "traffic",
		"fig7a", "fig7b", "tab2", "suvm-mt", "fig8a", "fig8b", "tab3", "fig9", "pflat",
		"fig10", "fig11", "tab4",
		"abl-wb", "abl-link", "abl-pgsz", "abl-evict", "abl-batch",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%q) failed", id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("Lookup accepted an unknown ID")
	}
}

// TestTinyExperimentRuns executes the two cheapest experiments end to
// end at a minimal op count, as a smoke test for the harness plumbing.
func TestTinyExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	for _, id := range []string{"tab1", "fig8a"} {
		e, _ := Lookup(id)
		res, err := e.Run(RunConfig{Ops: 2000, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

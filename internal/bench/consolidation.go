package bench

import (
	"fmt"

	"eleos"
	"eleos/internal/faceverify"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/mckv"
	"eleos/internal/pserver"
	"eleos/internal/report"
)

func init() {
	register("consolidation",
		"Enclave consolidation: 3 enclaves x 1 service vs 1 enclave x 3 services",
		runConsolidation)
}

// The consolidation experiment (after Occlum's multi-tenancy argument,
// arXiv:2001.07450, applied to the Eleos runtime): the three evaluation
// servers run either as three single-service enclaves or as three
// carved services of ONE enclave, under the same total PRM budget and
// the same per-service EPC++ share. Table 1 shows per-service cost is
// deployment-independent — heap domains keep paging private and the
// shared engine keeps doorbells attributed — while consolidation
// spends one enclave's fixed PRM overhead instead of three. Table 2
// prices the call mechanisms consolidation unlocks: an intra-enclave
// CrossCall against the exit-less RPC and OCALL a cross-enclave hop
// would need.

// consSvcEPC is each service's EPC++ carve: 6 MiB (1536 frames), small
// enough that mckv and faceverify page against their domains.
const consSvcEPC = 6 << 20

// consSlackPages is the root tenant's reserve outside the carves.
const consSlackPages = 16

// consService is one tenant: a builder that loads the server on the
// service's domain (setup, unmeasured) and returns the serving loop
// plus a cleanup. Setup stays outside the measurement because enclave
// creation leaves the paging driver's serialized-service horizon far
// ahead of a fresh thread's clock, so the first hardware fault after
// setup pays a queueing charge proportional to total enclave size —
// a fixed deployment cost, not a per-request one (the table's last
// column reports it separately).
type consService struct {
	name string
	ops  int
	// build loads the server through ctx and returns the serving loop
	// over ops requests.
	build func(rt *eleos.Runtime, svc *eleos.Service, ctx *eleos.Ctx, ops int) (serve func() error, cleanup func(), err error)
}

func consServices(rc RunConfig) []consService {
	kvOps := rc.Ops / 25
	if kvOps < 1500 {
		kvOps = 1500
	}
	faceOps := rc.Ops / 500
	if faceOps < 100 {
		faceOps = 100
	}
	return []consService{
		{"mckv", kvOps, consRunMckv},
		{"pserver", kvOps, consRunPserver},
		{"faceverify", faceOps, consRunFace},
	}
}

func consRunMckv(rt *eleos.Runtime, svc *eleos.Service, ctx *eleos.Ctx, ops int) (func() error, func(), error) {
	store, err := mckv.NewStore(rt.Platform(), ctx.Thread(), mckv.Config{
		MemLimitBytes: 8 << 20,
		Placement:     mckv.PlaceSUVM,
		Heap:          svc.Domain(),
	})
	if err != nil {
		return nil, nil, err
	}
	srv := mckv.NewServerIOGroup(store, rt.IOEngine(), svc.IOGroup())

	key := make([]byte, 20)
	val := make([]byte, 256)
	const items = 2000
	for i := 0; i < items; i++ {
		copy(key, fmt.Sprintf("key-%016d", i))
		if err := store.Set(ctx.Thread(), key, val); err != nil {
			srv.Close()
			return nil, nil, err
		}
	}
	serve := func() error {
		gen := loadgen.NewKeyGen(4242, items)
		for n := 0; n < ops; n++ {
			copy(key, fmt.Sprintf("key-%016d", gen.Next()-1))
			if n%5 == 4 {
				if err := srv.ServeSet(ctx.Thread(), key, val); err != nil {
					return err
				}
			} else if _, err := srv.ServeGet(ctx.Thread(), key); err != nil {
				return err
			}
		}
		return srv.Flush(ctx.Thread())
	}
	return serve, srv.Close, nil
}

func consRunPserver(rt *eleos.Runtime, svc *eleos.Service, ctx *eleos.Ctx, ops int) (func() error, func(), error) {
	srv, err := pserver.New(rt.Platform(), ctx.Thread(), pserver.Config{
		DataBytes: 4 << 20,
		Layout:    kv.OpenAddressing,
		Placement: pserver.PlaceSUVM,
		Heap:      svc.Domain(),
		Engine:    rt.IOEngine(),
		Group:     svc.IOGroup(),
		Encrypted: true,
	})
	if err != nil {
		return nil, nil, err
	}
	serve := func() error {
		gen := loadgen.NewKeyGen(31337, srv.Entries())
		keys := make([]uint64, 4)
		for n := 0; n < ops; n++ {
			if err := srv.ServeRequest(ctx.Thread(), gen.Batch(keys)); err != nil {
				return err
			}
		}
		return srv.Flush(ctx.Thread())
	}
	return serve, srv.Close, nil
}

func consRunFace(rt *eleos.Runtime, svc *eleos.Service, ctx *eleos.Ctx, ops int) (func() error, func(), error) {
	store, err := faceverify.NewStore(rt.Platform(), ctx.Thread(), faceverify.Config{
		Identities: 48, // 48 x 232 KiB descriptors ~ 11 MiB vs the 6 MiB carve
		Placement:  faceverify.PlaceSUVM,
		Heap:       svc.Domain(),
		Synthetic:  true,
	})
	if err != nil {
		return nil, nil, err
	}
	srv := faceverify.NewServerIOGroup(store, rt.IOEngine(), svc.IOGroup())
	serve := func() error {
		gen := loadgen.NewKeyGen(2718, 48)
		for n := 0; n < ops; n++ {
			if _, err := srv.Verify(ctx.Thread(), gen.Next()-1, uint64(n%4)); err != nil {
				return err
			}
		}
		return srv.Flush(ctx.Thread())
	}
	return serve, srv.Close, nil
}

// consOutcome is one service's measured run in one deployment.
type consOutcome struct {
	setup     uint64 // store build + load, unmeasured deployment cost
	cycles    uint64 // serving-loop cycles
	doorbells uint64
	faults    uint64
}

// consMeasure builds one tenant's server on its service (setup) and
// then measures the serving loop: cycle, doorbell and major-fault
// deltas bracket serve() only.
func consMeasure(rt *eleos.Runtime, svc *eleos.Service, s consService) (consOutcome, error) {
	ctx := svc.NewContext()
	defer ctx.Close()
	s0 := ctx.Cycles()
	serve, cleanup, err := s.build(rt, svc, ctx, s.ops)
	if err != nil {
		return consOutcome{}, fmt.Errorf("%s: %w", s.name, err)
	}
	defer cleanup()
	c0 := ctx.Cycles()
	d0 := svc.IOGroup().Stats().Doorbells
	f0 := svc.Stats().Heap.MajorFaults
	if err := serve(); err != nil {
		return consOutcome{}, fmt.Errorf("%s: %w", s.name, err)
	}
	return consOutcome{
		setup:     c0 - s0,
		cycles:    ctx.Cycles() - c0,
		doorbells: svc.IOGroup().Stats().Doorbells - d0,
		faults:    svc.Stats().Heap.MajorFaults - f0,
	}, nil
}

// consSeparate: one enclave per service, each with the service's EPC++
// share plus root slack.
func consSeparate(rc RunConfig) (map[string]consOutcome, error) {
	rt, err := eleos.NewRuntime(eleos.WithRPCWorkers(1))
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	out := make(map[string]consOutcome)
	for _, s := range consServices(rc) {
		encl, err := rt.NewEnclave(eleos.EnclaveConfig{
			PageCacheBytes: consSvcEPC + consSlackPages*4096,
		})
		if err != nil {
			return nil, err
		}
		svc, err := encl.NewService(s.name, eleos.WithServiceEPC(consSvcEPC))
		if err != nil {
			return nil, err
		}
		o, err := consMeasure(rt, svc, s)
		if err != nil {
			return nil, err
		}
		out[s.name] = o
		encl.Destroy()
	}
	return out, nil
}

// consConsolidated: ONE enclave hosting all three services on carved
// domains, same per-service EPC++ share.
func consConsolidated(rc RunConfig) (map[string]consOutcome, error) {
	rt, err := eleos.NewRuntime(eleos.WithRPCWorkers(1))
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(eleos.EnclaveConfig{
		PageCacheBytes: 3*consSvcEPC + consSlackPages*4096,
	})
	if err != nil {
		return nil, err
	}
	defer encl.Destroy()
	svcs := make(map[string]*eleos.Service)
	for _, s := range consServices(rc) {
		svc, err := encl.NewService(s.name, eleos.WithServiceEPC(consSvcEPC))
		if err != nil {
			return nil, err
		}
		svcs[s.name] = svc
	}
	out := make(map[string]consOutcome)
	for _, s := range consServices(rc) {
		o, err := consMeasure(rt, svcs[s.name], s)
		if err != nil {
			return nil, err
		}
		out[s.name] = o
	}
	return out, nil
}

// consCrossCallCycles measures the intra-enclave CrossCall against the
// mechanisms a cross-enclave hop would need: a synchronous exit-less
// RPC through an untrusted worker, and a classic OCALL exit.
func consCrossCallCycles(calls int) (*report.Table, error) {
	rt, err := eleos.NewRuntime(eleos.WithRPCWorkers(1))
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		return nil, err
	}
	defer encl.Destroy()
	caller, err := encl.NewService("caller", eleos.WithServiceEPC(256<<10))
	if err != nil {
		return nil, err
	}
	callee, err := encl.NewService("callee", eleos.WithServiceEPC(256<<10))
	if err != nil {
		return nil, err
	}
	ctx := caller.NewContext()
	defer ctx.Close()

	noop := func(*eleos.Ctx) {}
	hostNoop := func(*eleos.HostCtx) {}
	measure := func(f func() error) (float64, error) {
		start := ctx.Cycles()
		for i := 0; i < calls; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return perOp(ctx.Cycles()-start, calls), nil
	}
	cross, err := measure(func() error { return ctx.CrossCall(callee, noop) })
	if err != nil {
		return nil, err
	}
	rpcCall, err := measure(func() error { ctx.Exitless(hostNoop); return nil })
	if err != nil {
		return nil, err
	}
	ocall, err := measure(func() error { ctx.OCall(hostNoop); return nil })
	if err != nil {
		return nil, err
	}

	t := report.New("Service-to-service call mechanisms (no-op callee)",
		"mechanism", "cycles/call", "vs CrossCall")
	t.Note = fmt.Sprintf("%d calls each; CrossCall stays inside the enclave, the other two are what a cross-enclave hop costs at minimum", calls)
	t.AddRow("CrossCall (same enclave)", cross, 1.0)
	t.AddRow("exit-less RPC (cross enclave)", rpcCall, rpcCall/cross)
	t.AddRow("ocall (cross enclave)", ocall, ocall/cross)
	return t, nil
}

func runConsolidation(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	sep, err := consSeparate(rc)
	if err != nil {
		return nil, err
	}
	con, err := consConsolidated(rc)
	if err != nil {
		return nil, err
	}

	t := report.New("Per-service cost: 3 enclaves x 1 service vs 1 enclave x 3 services (equal per-service EPC++)",
		"service", "requests", "3x1 cyc/req", "1x3 cyc/req", "1x3/3x1",
		"3x1 db/req", "1x3 db/req", "3x1 faults", "1x3 faults",
		"3x1 setup Mcyc", "1x3 setup Mcyc")
	t.Note = fmt.Sprintf("per-service EPC++ carve %d MiB both ways; total enclave pages 3x(%d MiB + slack) vs 1x(%d MiB + slack); setup (store build + load) is the one-time deployment cost, paid per enclave in 3x1 and mostly by the first tenant in 1x3",
		consSvcEPC>>20, consSvcEPC>>20, 3*consSvcEPC>>20)
	for _, s := range consServices(rc) {
		a, b := sep[s.name], con[s.name]
		t.AddRow(s.name, s.ops,
			perOp(a.cycles, s.ops), perOp(b.cycles, s.ops),
			float64(b.cycles)/float64(a.cycles),
			perOp(a.doorbells, s.ops), perOp(b.doorbells, s.ops),
			a.faults, b.faults,
			float64(a.setup)/1e6, float64(b.setup)/1e6)
	}

	calls := rc.Ops / 50
	if calls < 1000 {
		calls = 1000
	}
	ct, err := consCrossCallCycles(calls)
	if err != nil {
		return nil, err
	}

	return &Result{
		ID:     "consolidation",
		Title:  "Enclave consolidation: 3 enclaves x 1 service vs 1 enclave x 3 services",
		Tables: []*report.Table{t, ct},
	}, nil
}

//go:build race

package exitio_test

// raceEnabled reports whether the race detector is on; allocation-count
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = true

// Package bridge is testdata: un-serviced shared runtime code. It
// stands in for the eleos runtime — its CrossCall is matched by name,
// exactly like the real Ctx.CrossCall method.
package bridge

// CrossCall is the sanctioned cross-service fast path.
func CrossCall(fn func()) { fn() }

// Helper is neutral shared code callable from any service.
func Helper() {}

package bench

import (
	"math/rand"

	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/phys"
	"eleos/internal/pserver"
	"eleos/internal/report"
	"eleos/internal/sgx"
)

func init() {
	register("fig1", "Parameter-server slowdown in enclave vs untrusted, with and without Eleos", fig1)
	register("tab1", "Relative cost of LLC misses: EPC vs untrusted memory", tab1)
	register("fig2a", "LLC pollution cost of system calls (in-enclave time, 64MB server, hot 8MB)", fig2a)
	register("fig2b", "TLB flush cost: open addressing vs chaining (in-enclave time, 2MB server)", fig2b)
	register("fig6a", "RPC eliminates EENTER/EEXIT direct costs (end-to-end slowdown vs untrusted)", fig6a)
	register("fig6b", "Cache partitioning (CAT) reduces RPC-worker LLC pollution (in-enclave time)", fig6b)
	register("fig6c", "RPC eliminates TLB flushes (in-enclave time, chaining table)", fig6c)
}

// runPServer drives ops requests of nkeys random updates against a
// freshly built server and returns (endToEndCycles, inEnclaveCycles).
func runPServer(v *env, cfg pserver.Config, ops, nkeys int, hot uint64, warm int) (uint64, uint64) {
	cfg.Heap = v.heap
	cfg.Pool = v.pool
	cfg.Encrypted = true
	srv, err := pserver.New(v.plat, v.th, cfg)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	gen := loadgen.NewKeyGen(1, srv.Entries())
	if hot > 0 {
		gen.HotSet(hot)
	}
	keys := make([]uint64, nkeys)
	for i := 0; i < warm; i++ {
		if err := srv.ServeRequest(v.th, gen.Batch(keys)); err != nil {
			panic(err)
		}
	}
	v.resetCounters()
	for i := 0; i < ops; i++ {
		if err := srv.ServeRequest(v.th, gen.Batch(keys)); err != nil {
			panic(err)
		}
	}
	return v.th.T.Cycles(), v.th.SyncEnclaveCycles()
}

// fig1: three data sizes (LLC-sized, EPC-sized, beyond-EPC), untrusted
// vs vanilla SGX vs Eleos (RPC + SUVM + CAT). 100k random single-value
// updates. Paper: 9x/12x/34x slowdown for SGX; Eleos recovers most.
func fig1(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	sizes := []uint64{2 << 20, 64 << 20, 512 << 20}
	if rc.Quick {
		sizes = []uint64{2 << 20, 32 << 20, 192 << 20}
	}
	t := report.New("Fig 1: parameter server slowdown over untrusted execution",
		"data", "untrusted cyc/req", "sgx cyc/req", "sgx slowdown", "eleos cyc/req", "eleos slowdown")
	t.Note = "paper: SGX 9x (2MB) to 34x (512MB); Eleos recovers most of it"

	for _, size := range sizes {
		ops := rc.Ops
		warm := ops / 10

		hv := hostEnv()
		hostCyc, _ := runPServer(hv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceHost, Syscall: pserver.SysNative,
		}, ops, 1, 0, warm)

		sv := enclaveEnv(0)
		sgxCyc, _ := runPServer(sv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceEnclave, Syscall: pserver.SysOCall,
		}, ops, 1, 0, warm)

		ev := enclaveEnv(60 << 20).withPool(2)
		ev.plat.LLC.EnablePartitioning(4)
		eleosCyc, _ := runPServer(ev, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceSUVM, Syscall: pserver.SysRPC,
		}, ops, 1, 0, warm)
		ev.close()

		t.AddRow(report.Bytes(size),
			perOp(hostCyc, ops), perOp(sgxCyc, ops), report.Ratio(float64(sgxCyc), float64(hostCyc)),
			perOp(eleosCyc, ops), report.Ratio(float64(eleosCyc), float64(hostCyc)))
	}
	return &Result{ID: "fig1", Title: "Parameter server in-enclave slowdown", Tables: []*report.Table{t}}, nil
}

// tab1: single-cache-line accesses over a buffer far larger than the
// LLC, in EPC vs untrusted memory; the ratio of cycles per access is
// the MEE amplification. Paper: READ 5.6x, WRITE 6.8-8.9x, R+W 7.4-9.5x.
func tab1(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	const bufSize = 64 << 20
	v := enclaveEnv(0)
	enclBuf := v.encl.Alloc(bufSize)
	hostBuf := v.plat.AllocHost(bufSize)
	var b [8]byte
	// Materialize the enclave pages outside the measurement.
	for off := uint64(0); off < bufSize; off += phys.PageSize {
		v.th.Write(enclBuf+off, b[:])
	}

	measure := func(base uint64, seq bool, mode string) float64 {
		rng := rand.New(rand.NewSource(3))
		v.plat.LLC.Invalidate()
		v.th.T.Reset()
		ops := rc.Ops
		// Sequential sweeps must span the whole buffer so every access
		// misses the LLC regardless of the op count.
		step := uint64(64)
		if seq {
			step = (bufSize / uint64(ops)) &^ 63
			if step < 64 {
				step = 64
			}
		}
		stride := uint64(0)
		for i := 0; i < ops; i++ {
			var off uint64
			if seq {
				off = stride % bufSize
				stride += step
			} else {
				off = uint64(rng.Intn(bufSize/64)) * 64
			}
			switch mode {
			case "r":
				v.th.Read(base+off, b[:])
			case "w":
				v.th.Write(base+off, b[:])
			default:
				// Independent read and write streams (the paper's mixed
				// workload), offset by half the buffer so they do not
				// hit each other's lines.
				v.th.Read(base+off, b[:])
				v.th.Write(base+(off+bufSize/2)%bufSize, b[:])
			}
		}
		return perOp(v.th.T.Cycles(), ops)
	}

	t := report.New("Table 1: relative cost of LLC misses, EPC vs untrusted",
		"operation", "sequential", "random")
	t.Note = "paper: READ 5.6x/5.6x, WRITE 6.8x/8.9x, R+W 7.4x/9.5x"
	for _, m := range []struct{ name, mode string }{
		{"READ", "r"}, {"WRITE", "w"}, {"READ and WRITE", "rw"},
	} {
		seqR := measure(enclBuf, true, m.mode) / measure(hostBuf, true, m.mode)
		rndR := measure(enclBuf, false, m.mode) / measure(hostBuf, false, m.mode)
		t.AddRow(m.name, report.Ratio(seqR, 1), report.Ratio(rndR, 1))
	}
	return &Result{ID: "tab1", Title: "LLC miss cost amplification", Tables: []*report.Table{t}}, nil
}

// fig2a: 64MB server, requests restricted to an LLC-sized hot set;
// growing request sizes pollute more cache per syscall, inflating the
// in-enclave time relative to the untrusted run. Paper: up to 2.2x.
func fig2a(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	size := uint64(64 << 20)
	// The paper restricts requests to an LLC-sized 8MB hot set. Our LLC
	// model uses strict LRU (hardware uses adaptive pseudo-LRU), under
	// which a full-LLC hot set thrashes no matter what pollutes it; a
	// 6MB hot set — still LLC-scale, and within the enclave's 12-way
	// CAT share — reproduces the mechanism the figure isolates.
	hot := uint64((6 << 20) / 16)
	if rc.Quick {
		size = 32 << 20
	}
	t := report.New("Fig 2a: LLC pollution by syscalls (in-enclave vs untrusted time)",
		"keys/req", "untrusted cyc/req", "enclave cyc/req (in-encl)", "slowdown")
	t.Note = "paper: grows to ~2.2x at 64 keys/request"
	for _, nk := range []int{1, 4, 8, 16, 32, 64} {
		ops := rc.Ops / maxInt(1, nk/8)
		hv := hostEnv()
		hostCyc, _ := runPServer(hv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceHost, Syscall: pserver.SysNative,
		}, ops, nk, hot, ops/10)

		sv := enclaveEnv(0)
		_, inEncl := runPServer(sv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceEnclave, Syscall: pserver.SysOCall,
		}, ops, nk, hot, ops/10)

		t.AddRow(nk, perOp(hostCyc, ops), perOp(inEncl, ops),
			report.Ratio(float64(inEncl), float64(hostCyc)))
	}
	return &Result{ID: "fig2a", Title: "Cache pollution cost", Tables: []*report.Table{t}}, nil
}

// fig2b: 2MB server, open addressing vs chaining. Exits flush the TLB;
// pointer chasing re-walks pages after every syscall, so chaining's
// in-enclave time grows with lookups per request while open addressing
// stays flat. Measured in-enclave, like the paper.
func fig2b(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	const size = 2 << 20
	t := report.New("Fig 2b: TLB flush cost (in-enclave cycles/request)",
		"keys/req", "open-addressing", "chaining", "chaining/open")
	t.Note = "paper: chaining slowdown grows with items accessed; open addressing insensitive"
	for _, nk := range []int{1, 2, 4, 8, 16, 32} {
		ops := rc.Ops / maxInt(1, nk/4)
		var inEncl [2]uint64
		for i, layout := range []kv.Layout{kv.OpenAddressing, kv.Chaining} {
			sv := enclaveEnv(0)
			_, ie := runPServer(sv, pserver.Config{
				DataBytes: size, Layout: layout,
				Placement: pserver.PlaceEnclave, Syscall: pserver.SysOCall,
			}, ops, nk, 0, ops/10)
			inEncl[i] = ie
		}
		t.AddRow(nk, perOp(inEncl[0], ops), perOp(inEncl[1], ops),
			report.Ratio(float64(inEncl[1]), float64(inEncl[0])))
	}
	return &Result{ID: "fig2b", Title: "TLB flush cost", Tables: []*report.Table{t}}, nil
}

// fig6a: 2MB server; slowdown over untrusted for OCALL vs exit-less
// RPC, as the per-request batch grows. Paper: RPC 6x better at 1
// update, converging by 64.
func fig6a(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	const size = 2 << 20
	t := report.New("Fig 6a: exit-less syscalls remove direct exit costs (slowdown vs untrusted)",
		"keys/req", "sgx+ocall", "eleos rpc", "rpc gain")
	t.Note = "paper: RPC ~6x better at small requests, on par at 64-update batches"
	for _, nk := range []int{1, 2, 4, 8, 16, 32, 64} {
		ops := rc.Ops / maxInt(1, nk/8)
		hv := hostEnv()
		hostCyc, _ := runPServer(hv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceHost, Syscall: pserver.SysNative,
		}, ops, nk, 0, ops/10)

		ov := enclaveEnv(0)
		ocallCyc, _ := runPServer(ov, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceEnclave, Syscall: pserver.SysOCall,
		}, ops, nk, 0, ops/10)

		rv := enclaveEnv(0).withPool(2)
		rpcCyc, _ := runPServer(rv, pserver.Config{
			DataBytes: size, Layout: kv.OpenAddressing,
			Placement: pserver.PlaceEnclave, Syscall: pserver.SysRPC,
		}, ops, nk, 0, ops/10)
		rv.close()

		t.AddRow(nk,
			report.Ratio(float64(ocallCyc), float64(hostCyc)),
			report.Ratio(float64(rpcCyc), float64(hostCyc)),
			report.Ratio(float64(ocallCyc), float64(rpcCyc)))
	}
	return &Result{ID: "fig6a", Title: "RPC direct-cost elimination", Tables: []*report.Table{t}}, nil
}

// fig6b: the fig2a configuration served over RPC, with and without the
// 25%/75% CAT way split. Paper: over 25% in-enclave improvement for
// larger I/O buffers.
func fig6b(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	size := uint64(64 << 20)
	hot := uint64((6 << 20) / 16) // see fig2a on the hot-set size
	if rc.Quick {
		size = 32 << 20
	}
	t := report.New("Fig 6b: CAT partitioning of RPC workers (in-enclave cycles/request)",
		"keys/req", "rpc no-CAT", "rpc with CAT", "improvement")
	t.Note = "paper: CAT saves up to 25%+ of in-enclave time for larger buffers"
	for _, nk := range []int{1, 4, 8, 16, 32, 64} {
		ops := rc.Ops / maxInt(1, nk/8)
		var inEncl [2]uint64
		for i, cat := range []bool{false, true} {
			rv := enclaveEnv(0).withPool(2)
			if cat {
				rv.plat.LLC.EnablePartitioning(4)
			}
			_, ie := runPServer(rv, pserver.Config{
				DataBytes: size, Layout: kv.OpenAddressing,
				Placement: pserver.PlaceEnclave, Syscall: pserver.SysRPC,
			}, ops, nk, hot, ops/10)
			rv.close()
			inEncl[i] = ie
		}
		t.AddRow(nk, perOp(inEncl[0], ops), perOp(inEncl[1], ops),
			report.Ratio(float64(inEncl[0]), float64(inEncl[1])))
	}
	return &Result{ID: "fig6b", Title: "CAT partitioning benefit", Tables: []*report.Table{t}}, nil
}

// fig6c: the fig2b chaining configuration, OCALL vs RPC: with no exits
// the TLB survives across requests. Paper: up to 5.5x faster in-enclave.
func fig6c(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	const size = 2 << 20
	t := report.New("Fig 6c: exit-less syscalls eliminate TLB flushes (in-enclave cycles/request)",
		"keys/req", "ocall", "rpc", "rpc gain")
	t.Note = "paper: up to 5.5x faster with RPC on the chaining table"
	for _, nk := range []int{1, 2, 4, 8, 16, 32} {
		ops := rc.Ops / maxInt(1, nk/4)
		var inEncl [2]uint64
		for i, sys := range []pserver.SyscallMode{pserver.SysOCall, pserver.SysRPC} {
			v := enclaveEnv(0)
			if sys == pserver.SysRPC {
				v.withPool(2)
			}
			_, ie := runPServer(v, pserver.Config{
				DataBytes: size, Layout: kv.Chaining,
				Placement: pserver.PlaceEnclave, Syscall: sys,
			}, ops, nk, 0, ops/10)
			v.close()
			inEncl[i] = ie
		}
		t.AddRow(nk, perOp(inEncl[0], ops), perOp(inEncl[1], ops),
			report.Ratio(float64(inEncl[0]), float64(inEncl[1])))
	}
	return &Result{ID: "fig6c", Title: "TLB flush elimination", Tables: []*report.Table{t}}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = sgx.HeapBase // reserved for future experiments touching raw addresses

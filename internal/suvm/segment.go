package suvm

import (
	"fmt"
	"sync"

	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// Segment is inter-enclave shared secure memory — the service the
// paper's conclusion proposes as an Eleos extension ("Eleos might be
// extended to provide new services, i.e., inter-enclave shared memory,
// which are not currently supported in SGX").
//
// A segment is a region of sealed pages in untrusted host memory with
// its own sealing key and its own crypto metadata, independent of any
// heap. Exactly one enclave's heap may have it mounted at a time;
// ownership moves by Detach on one heap and Attach on another, with no
// re-encryption of the data — only the (small) crypto metadata travels.
// The Segment handle stands in for the key exchange real enclaves would
// perform over a local-attestation channel; holding the handle is
// holding the key.
type Segment struct {
	//eleos:lockorder 2
	mu       sync.Mutex
	plat     *sgx.Platform
	sealer   *seal.Sealer
	size     uint64
	pageSize uint64
	bsBase   uint64
	meta     []pageMeta // travels with ownership; indexed by segment page
	mounted  bool
}

// NewSegment allocates a shared segment of size bytes, sealed at the
// given page size (which must match the page size of every heap that
// will mount it).
func NewSegment(plat *sgx.Platform, size uint64, pageSize int) (*Segment, error) {
	if pageSize < 512 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("%w: segment page size %d", ErrBadConfig, pageSize)
	}
	size = (size + uint64(pageSize) - 1) &^ (uint64(pageSize) - 1)
	if size == 0 {
		return nil, fmt.Errorf("%w: empty segment", ErrBadConfig)
	}
	sealer, err := seal.New(plat.Model)
	if err != nil {
		return nil, fmt.Errorf("suvm: segment sealer: %w", err)
	}
	return &Segment{
		plat:     plat,
		sealer:   sealer,
		size:     size,
		pageSize: uint64(pageSize),
		bsBase:   plat.AllocHost(size),
		meta:     make([]pageMeta, size/uint64(pageSize)),
	}, nil
}

// Size returns the segment length in bytes.
func (s *Segment) Size() uint64 { return s.size }

// mountedSeg records one attachment in a heap.
type mountedSeg struct {
	seg       *Segment
	firstPage uint64 // pseudo backing-store page number of segment page 0
	pages     uint64
}

// resolve maps a backing-store page number to the host address of its
// sealed bytes and the sealer that protects it: the heap's own region
// and key below segPageBase, a mounted segment's above.
func (h *Heap) resolve(bsPage uint64) (uint64, *seal.Sealer) {
	if bsPage < segPageBase {
		return h.bsAddrOf(bsPage), h.seal
	}
	h.segMu.Lock()
	defer h.segMu.Unlock()
	for _, m := range h.segs {
		if bsPage >= m.firstPage && bsPage < m.firstPage+m.pages {
			return m.seg.bsBase + (bsPage-m.firstPage)*h.pageSize, m.seg.sealer
		}
	}
	panic(fmt.Sprintf("suvm: backing page %#x resolves to no mounted segment", bsPage))
}

// Attach mounts the segment into the heap and returns a spointer over
// its contents. The segment's pages are demand-cached in EPC++ like any
// other SUVM memory; their sealed bytes stay where they are in host
// memory — attach moves only the nonce/MAC metadata into the enclave.
// Fails if the segment is mounted elsewhere (single-owner semantics) or
// if the page sizes disagree.
func (h *Heap) Attach(th *sgx.Thread, seg *Segment) (*SPtr, error) {
	if seg.pageSize != h.pageSize {
		return nil, fmt.Errorf("%w: segment page size %d != heap page size %d",
			ErrBadConfig, seg.pageSize, h.pageSize)
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.mounted {
		return nil, fmt.Errorf("%w: already mounted by another enclave", ErrSegmentBusy)
	}
	seg.mounted = true

	pages := seg.size / h.pageSize
	h.segMu.Lock()
	first := h.nextSegP
	h.nextSegP += pages
	h.segs = append(h.segs, &mountedSeg{seg: seg, firstPage: first, pages: pages})
	h.segMu.Unlock()

	// Import the travelling crypto metadata into the heap's tables.
	// Mounting is an exclusive phase of the fault pipeline, like resize:
	// no fault observes a half-imported segment.
	h.epoch.Lock()
	defer h.epoch.Unlock()
	for i := uint64(0); i < pages; i++ {
		if !seg.meta[i].present {
			continue
		}
		bsPage := first + i
		h.lockCost(th)
		h.touchMeta(th, bsPage, true)
		ms := h.meta.shard(bsPage)
		ms.mu.Lock()
		m := ms.get(bsPage, true)
		m.present = true
		m.nonce = seg.meta[i].nonce
		m.tag = seg.meta[i].tag
		ms.mu.Unlock()
	}

	// The spointer's base is a pseudo backing-store address chosen so
	// that ordinary spointer arithmetic lands on the segment's pseudo
	// page numbers.
	base := h.bsBase + (first << h.pageShift)
	return &SPtr{h: h, base: base, size: seg.size, frame: -1}, nil
}

// Detach flushes every cached page of the mounted segment back to its
// sealed host region, exports the crypto metadata into the segment, and
// releases ownership so another enclave can Attach it. The spointer
// (and any clone of it) must not be used afterwards.
func (h *Heap) Detach(th *sgx.Thread, p *SPtr) error {
	p.Unlink(th)
	first := h.bsPageOf(p.base)
	h.segMu.Lock()
	var m *mountedSeg
	idx := -1
	for i, cand := range h.segs {
		if cand.firstPage == first {
			m, idx = cand, i
			break
		}
	}
	h.segMu.Unlock()
	if m == nil {
		return fmt.Errorf("suvm: spointer does not reference a mounted segment")
	}

	// Evict every cached page (dirty ones are re-sealed in place with
	// the segment's key), then export metadata. Unmounting is an
	// exclusive phase of the fault pipeline: in-flight faults drain
	// first, and none start until the segment is fully exported.
	h.epoch.Lock()
	for i := uint64(0); i < m.pages; i++ {
		bsPage := first + i
		sh := h.resident.shard(bsPage)
		sh.mu.Lock()
		f, cached := sh.m[bsPage]
		sh.mu.Unlock()
		if cached {
			ok, _ := h.evictFrame(th, f)
			if !ok {
				h.epoch.Unlock()
				return fmt.Errorf("%w: segment page %d is pinned by a linked spointer", ErrSegmentBusy, i)
			}
			h.free.put(f)
		}
	}
	h.epoch.Unlock()

	for i := uint64(0); i < m.pages; i++ {
		bsPage := first + i
		h.lockCost(th)
		h.touchMeta(th, bsPage, false)
		ms := h.meta.shard(bsPage)
		ms.mu.Lock()
		if e := ms.get(bsPage, false); e != nil {
			m.seg.meta[i] = *e
			delete(ms.m, bsPage)
		} else {
			m.seg.meta[i] = pageMeta{}
		}
		ms.mu.Unlock()
	}

	h.segMu.Lock()
	h.segs = append(h.segs[:idx], h.segs[idx+1:]...)
	h.segMu.Unlock()
	m.seg.mu.Lock()
	m.seg.mounted = false
	m.seg.mu.Unlock()
	p.h = nil // poison: further use fails fast
	return nil
}

package mckv

import (
	"fmt"

	"eleos/internal/exitio"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// SyscallMode selects the store's path to the OS for network I/O. It is
// a thin alias over the exitio dispatch modes: the per-server switch
// this package used to carry lives in internal/exitio now.
type SyscallMode = exitio.Mode

// Syscall mechanisms: the Graphene baseline exits per syscall; Eleos
// integrates its RPC into Graphene (§5.1). SysRPCAsync is the engine's
// headline configuration: responses are deferred and linked with the
// next request's receive into one doorbell.
const (
	SysNative   = exitio.ModeDirect
	SysOCall    = exitio.ModeOCall
	SysRPC      = exitio.ModeRPCSync
	SysRPCAsync = exitio.ModeRPCAsync
)

// Server is one worker front end over a shared Store: a socket plus an
// exit-less I/O queue in the configured dispatch mode, and the request
// crypto. Create one per serving thread.
type Server struct {
	store *Store
	plat  *sgx.Platform
	io    *exitio.Queue
	sock  *netsim.Socket
	buf   []byte
}

// NewServer wraps store with a network front end. pool is required for
// the RPC modes.
func NewServer(store *Store, sys SyscallMode, pool *rpc.Pool) (*Server, error) {
	if sys.NeedsPool() && pool == nil {
		return nil, fmt.Errorf("mckv: RPC mode requires a worker pool")
	}
	eng, err := exitio.NewEngine(sys, pool)
	if err != nil {
		return nil, fmt.Errorf("mckv: %w", err)
	}
	return NewServerIO(store, eng), nil
}

// NewServerIO wraps store over an existing engine, so several servers
// (one per serving thread) share one engine and its counters.
func NewServerIO(store *Store, eng *exitio.Engine) *Server {
	return NewServerIOGroup(store, eng, nil)
}

// NewServerIOGroup is NewServerIO with the server's queue attributed to
// a counter group — how a store running as one service of a
// multi-service enclave reports its doorbells per service (nil grp
// behaves like NewServerIO).
func NewServerIOGroup(store *Store, eng *exitio.Engine, grp *exitio.Group) *Server {
	return &Server{
		store: store,
		plat:  store.plat,
		io:    eng.NewGroupQueue(grp),
		sock:  netsim.NewSocket(store.plat, 1<<20),
		buf:   make([]byte, 1<<20),
	}
}

// Close releases the socket. Any response still deferred in async mode
// is dropped with it; call Flush first when the send matters.
func (s *Server) Close() { s.sock.Close() }

// Store returns the shared store.
func (s *Server) Store() *Store { return s.store }

// IO returns the server's submission queue (stats, tests).
func (s *Server) IO() *exitio.Queue { return s.io }

// GetRequestBytes is the wire size of a GET for a key of klen bytes.
func GetRequestBytes(klen int) int { return 8 + klen + 28 }

// SetRequestBytes is the wire size of a SET carrying klen+vlen payload.
func SetRequestBytes(klen, vlen int) int { return 8 + klen + vlen + 28 }

// netRecv receives the next request through the engine. In async mode
// the previous request's deferred response send is still staged, so the
// receive links onto it: SEND(i) + RECV(i+1) cross on one doorbell.
func (s *Server) netRecv(th *sgx.Thread, n int) {
	if s.io.Staged() > 0 {
		s.io.PushLinked(exitio.Recv{Sock: s.sock, N: n})
	} else {
		s.io.Push(exitio.Recv{Sock: s.sock, N: n})
	}
	if _, err := s.io.SubmitAndWait(th); err != nil {
		panic("mckv: RPC pool stopped mid-serve: " + err.Error())
	}
}

// netSend sends a response. Synchronous modes complete it here; async
// mode defers it so it can ride the next receive's doorbell (Flush
// pushes out the last one).
func (s *Server) netSend(th *sgx.Thread, n int) {
	s.io.Push(exitio.Send{Sock: s.sock, N: n})
	if s.io.Mode() == exitio.ModeRPCAsync {
		return
	}
	if _, err := s.io.SubmitAndWait(th); err != nil {
		panic("mckv: RPC pool stopped mid-serve: " + err.Error())
	}
}

// Flush completes any deferred response send (async mode); a no-op in
// the synchronous modes. Call it when the request stream pauses or
// ends.
func (s *Server) Flush(th *sgx.Thread) error {
	_, err := s.io.SubmitAndWait(th)
	return err
}

// ServeGet handles one GET request end to end: receive, decrypt, look
// the key up, and send the encrypted value back. Returns the value
// length.
func (s *Server) ServeGet(th *sgx.Thread, key []byte) (int, error) {
	reqN := GetRequestBytes(len(key))
	s.sock.Deliver(key) // the client's (encrypted) request carries the key
	s.netRecv(th, reqN)
	th.Read(s.sock.UserBuf(), s.buf[:len(key)])
	netsim.CryptoCost(th.T, s.plat.Model, reqN)

	vlen, err := s.store.Get(th, key, s.buf)
	if err != nil {
		return 0, err
	}

	respN := vlen + 40 // VALUE header + envelope
	netsim.CryptoCost(th.T, s.plat.Model, respN)
	th.Write(s.sock.UserBuf(), s.buf[:vlen])
	s.netSend(th, respN)
	return vlen, nil
}

// ServeSet handles one SET request end to end.
func (s *Server) ServeSet(th *sgx.Thread, key, val []byte) error {
	reqN := SetRequestBytes(len(key), len(val))
	s.sock.Deliver(val)
	s.netRecv(th, reqN)
	th.Read(s.sock.UserBuf(), s.buf[:min(len(val), len(s.buf))])
	netsim.CryptoCost(th.T, s.plat.Model, reqN)

	if err := s.store.Set(th, key, val); err != nil {
		return err
	}

	netsim.CryptoCost(th.T, s.plat.Model, 8+28) // STORED
	s.netSend(th, 8+28)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

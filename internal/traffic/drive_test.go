package traffic_test

import (
	"errors"
	"testing"

	"eleos/internal/cycles"
	"eleos/internal/hist"
	"eleos/internal/traffic"
)

func testThread() *cycles.Thread {
	return cycles.NewThread(0, cycles.DefaultModel())
}

// constProc is a fixed-gap arrival process for exact-latency
// assertions: unlike Poisson it never draws two arrivals closer than
// the service time.
type constProc struct{ gap uint64 }

func (c constProc) Name() string        { return "const" }
func (c constProc) Phases() []string    { return []string{"steady"} }
func (c constProc) Next() (uint64, int) { return c.gap, 0 }

// TestDriveIdleUnderrun: a schedule far slower than the service rate
// leaves the server idle between requests, and every latency is just
// the service cost (plus any stall).
func TestDriveIdleUnderrun(t *testing.T) {
	const svc = 100
	th := testThread()
	f := traffic.NewFleet(1, constProc{gap: 10_000}, traffic.FleetConfig{Clients: 4})
	var lats []uint64
	res, err := traffic.Drive(th, f, 500,
		func(_ traffic.Request, lat uint64) { lats = append(lats, lat) },
		func(_ traffic.Request) error { th.Charge(svc); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 500 {
		t.Fatalf("served %d, want 500", res.Served)
	}
	if res.IdleCycles == 0 {
		t.Fatal("under-run schedule produced no idle time")
	}
	for i, l := range lats {
		if l != svc {
			t.Fatalf("request %d latency %d, want exactly the service cost %d", i, l, svc)
		}
	}
}

// TestDriveCoordinatedOmission: an overloaded schedule (arrivals faster
// than service) must show unbounded queue growth in the measured
// latencies — the whole point of charging from intended start cycles.
// A closed-loop harness would report ~svc for every request.
func TestDriveCoordinatedOmission(t *testing.T) {
	const svc = 1000
	th := testThread()
	// Mean gap of svc/2: offered load is 2x capacity.
	f := traffic.NewFleet(1, traffic.NewPoisson(2, svc/2), traffic.FleetConfig{Clients: 4})
	h := hist.New()
	var lats []uint64
	res, err := traffic.Drive(th, f, 2_000,
		func(_ traffic.Request, lat uint64) { h.Record(lat); lats = append(lats, lat) },
		func(_ traffic.Request) error { th.Charge(svc); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Under 2x overload the queue grows without bound: the last decile's
	// mean latency must dwarf the first decile's.
	var first, last float64
	for i := 0; i < 200; i++ {
		first += float64(lats[i])
		last += float64(lats[len(lats)-1-i])
	}
	if last < 10*first {
		t.Fatalf("overload did not build a queue: first-decile mean %.0f, last %.0f", first/200, last/200)
	}
	// p999 must reflect the queueing delay, far beyond the service cost.
	if p := h.Quantile(0.999); p < 100*svc {
		t.Fatalf("p999 = %d cycles under 2x overload, want >> service cost %d", p, svc)
	}
	// Idle can only accrue before the queue first forms; once the
	// server falls behind it never waits again.
	if res.IdleCycles > res.Elapsed/100 {
		t.Fatalf("overloaded server idle %d of %d cycles", res.IdleCycles, res.Elapsed)
	}
}

// TestDriveStallCharging: slow-client stalls are charged to the server
// clock and surfaced in the result.
func TestDriveStallCharging(t *testing.T) {
	const svc, stall = 100, 700
	th := testThread()
	f := traffic.NewFleet(1, constProc{gap: 50_000}, traffic.FleetConfig{
		Clients: 4, SlowFraction: 1.0, StallCycles: stall,
	})
	res, err := traffic.Drive(th, f, 100,
		func(_ traffic.Request, lat uint64) {
			if lat != svc+stall {
				t.Fatalf("latency %d, want service %d + stall %d", lat, svc, stall)
			}
		},
		func(_ traffic.Request) error { th.Charge(svc); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles != 100*stall {
		t.Fatalf("StallCycles = %d, want %d", res.StallCycles, 100*stall)
	}
}

// TestDriveDeterministic: identical seeds replay to identical results
// and identical recorded latencies when the serve cost is a pure
// function of the request.
func TestDriveDeterministic(t *testing.T) {
	run := func() (traffic.DriveResult, []uint64) {
		th := testThread()
		f := fleetOver(11, traffic.NewBurst(12, traffic.BurstConfig{
			OnMeanGap: 200, OffMeanGap: 2000,
			OnMeanCycles: 30_000, OffMeanCycles: 30_000,
		}))
		var lats []uint64
		res, err := traffic.Drive(th, f, 3_000,
			func(_ traffic.Request, lat uint64) { lats = append(lats, lat) },
			func(r traffic.Request) error { th.Charge(500 + r.Key%97); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return res, lats
	}
	r1, l1 := run()
	r2, l2 := run()
	if r1 != r2 {
		t.Fatalf("DriveResult differs across identical runs: %+v vs %+v", r1, r2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("latency %d differs across identical runs: %d vs %d", i, l1[i], l2[i])
		}
	}
}

// TestDriveServeError: a failing serve aborts the replay with partial
// results.
func TestDriveServeError(t *testing.T) {
	boom := errors.New("boom")
	th := testThread()
	f := traffic.NewFleet(1, traffic.NewPoisson(1, 1000), traffic.FleetConfig{Clients: 1})
	n := 0
	res, err := traffic.Drive(th, f, 100, nil,
		func(_ traffic.Request) error {
			n++
			if n == 5 {
				return boom
			}
			th.Charge(10)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if res.Served != 4 {
		t.Fatalf("served %d before the error, want 4", res.Served)
	}
}

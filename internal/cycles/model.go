// Package cycles provides virtual-time accounting for the simulated SGX
// platform. Every simulated hardware thread owns a cycle counter; all
// architectural costs (instruction latencies, cache misses, crypto, page
// faults) are charged to it. Benchmarks report throughput derived from
// virtual cycles at a fixed core frequency, so results are deterministic
// and independent of the host machine.
//
// The cost constants in Model are taken from the measurements in §2 of
// the Eleos paper (EuroSys'17) where available, and from typical Skylake
// numbers otherwise. See DESIGN.md for the full table with sources.
//
// The virtual clock is the root of the simulator's determinism
// guarantee, so this package is checked by eleoslint: no wall clock, no
// global rand, no map-iteration-order dependence.
//
//eleos:deterministic
package cycles

// Model holds the architectural cost model, in CPU cycles, for the
// simulated Skylake SGX machine. A zero Model is not usable; start from
// DefaultModel and override fields as needed.
type Model struct {
	// Frequency is the simulated core clock in Hz, used to convert
	// cycles to seconds for throughput reporting (i7-6700: 3.4 GHz).
	Frequency float64

	// Syscall is the cost of a regular (untrusted) system call
	// round trip, excluding any work done by the call itself.
	Syscall uint64

	// EEnter and EExit are the latencies of the SGX enclave entry and
	// exit instructions. OCallOverhead is the additional SDK cost per
	// OCALL round trip on top of EEXIT+EENTER.
	EEnter        uint64
	EExit         uint64
	OCallOverhead uint64

	// AEX is the cost of an asynchronous enclave exit plus resume, as
	// incurred by a thread receiving a TLB-shootdown IPI.
	AEX uint64

	// ExitIndirect is the state-restore penalty charged when a thread
	// re-enters the enclave after an exit, covering micro-architectural
	// buffer repopulation that is not captured by the explicit TLB and
	// LLC models.
	ExitIndirect uint64

	// HWFaultDriver is the direct in-driver cost of handling one EPC
	// hardware page fault when only paging-in is needed (ELDU including
	// its decryption and integrity check); HWFaultEvict is the
	// additional direct cost when a victim page must also be evicted
	// (EWB/EBLOCK/ETRACK including encryption). Together they give the
	// ≈25k-cycle combined direct cost the paper measures in §2.3. The
	// exit round trip is charged separately. HWFaultIndirect is the
	// per-fault indirect penalty beyond what the TLB and LLC models
	// capture (the paper derives ≈8k total indirect per fault).
	HWFaultDriver   uint64
	HWFaultEvict    uint64
	HWFaultIndirect uint64

	// IPISend is the sender-side cost of one inter-processor interrupt.
	IPISend uint64

	// LLCHit is the latency of a last-level-cache hit. DRAMMiss is the
	// latency of an LLC miss served from untrusted DRAM. Misses to the
	// EPC are amplified by the memory encryption engine: EPCReadMult
	// and EPCWriteMult are the multipliers over DRAMMiss measured in
	// Table 1 of the paper.
	LLCHit       uint64
	DRAMMiss     uint64
	EPCReadMult  float64
	EPCWriteMult float64

	// L1Hit is the cost charged per cache-line access that hits in the
	// (unmodelled) upper-level caches; it is the floor cost of any
	// memory access.
	L1Hit uint64

	// TLBMiss is the page-walk cost of a TLB miss. TLBMissEPC is the
	// page-walk cost for an EPC page, which is higher because the walk
	// itself touches encrypted memory.
	TLBMiss    uint64
	TLBMissEPC uint64

	// StreamMLP is the memory-level parallelism of bulk transfers:
	// sequential multi-line copies overlap their misses, so AccessRange
	// amortizes the miss penalty over min(StreamMLP, lines touched)
	// outstanding requests. Single-line accesses always pay the full
	// latency, which is what Table 1's pointer-style microbenchmark
	// measures.
	StreamMLP uint64

	// AESSetup is the fixed cost of one AES-GCM seal or open operation;
	// AESPerByte is the marginal per-byte cost (AES-NI GCM on Skylake
	// runs at ~0.65 cycles/byte).
	AESSetup   uint64
	AESPerByte float64

	// SubPageOverhead is the fixed per-sub-page cost of a direct
	// backing-store access beyond the AES work itself: nonce generation,
	// crypto-metadata update and the page-cache consistency check
	// (§3.2.4). Small direct accesses are dominated by it.
	SubPageOverhead uint64

	// RPCEnqueue is the enclave-side cost of posting a request to the
	// exit-less RPC ring (two uncached writes to host memory plus an
	// atomic). RPCPoll is the completion-polling latency observed by
	// the caller on top of the work performed by the worker.
	// RPCBatchEnqueue is the marginal cost of each additional descriptor
	// in a batched submission: the ring-slot claim and cache-line
	// bookkeeping amortize over the batch, leaving only the descriptor
	// stores. RPCWake is the latency a sleeping RPC worker pays to come
	// back from its host-side futex when work arrives.
	RPCEnqueue      uint64
	RPCPoll         uint64
	RPCBatchEnqueue uint64
	RPCWake         uint64

	// SpinLock is the cost of an uncontended spin-lock acquire/release
	// pair on an in-EPC lock word.
	SpinLock uint64
}

// DefaultModel returns the cost model for the paper's evaluation machine
// (Intel Skylake i7-6700, 8 MiB LLC, 128 MiB PRM). All enclave-specific
// costs come from the paper's own measurements in §2.
func DefaultModel() *Model {
	return &Model{
		Frequency:       3.4e9,
		Syscall:         250,
		EEnter:          3800,
		EExit:           3300,
		OCallOverhead:   800,
		AEX:             4000,
		ExitIndirect:    1200,
		HWFaultDriver:   13000,
		HWFaultEvict:    12000,
		HWFaultIndirect: 6000,
		IPISend:         1500,
		LLCHit:          40,
		DRAMMiss:        200,
		EPCReadMult:     5.6,
		EPCWriteMult:    6.8,
		L1Hit:           4,
		TLBMiss:         100,
		TLBMissEPC:      250,
		StreamMLP:       16,
		AESSetup:        300,
		AESPerByte:      0.65,
		SubPageOverhead: 2000,
		RPCEnqueue:      150,
		RPCPoll:         200,
		RPCBatchEnqueue: 40,
		RPCWake:         300,
		SpinLock:        60,
	}
}

// Seconds converts a cycle count to seconds under this model's clock.
func (m *Model) Seconds(c uint64) float64 {
	return float64(c) / m.Frequency
}

// Cycles converts a duration in seconds to cycles under this model's clock.
func (m *Model) Cycles(seconds float64) uint64 {
	return uint64(seconds * m.Frequency)
}

// EPCMissCycles returns the LLC-miss service cost for an access to the
// given physical memory kind. Writes to EPC are more expensive than
// reads because dirty lines must be encrypted on eviction (Table 1).
func (m *Model) EPCMissCycles(write, epc bool) uint64 {
	if !epc {
		return m.DRAMMiss
	}
	if write {
		return uint64(float64(m.DRAMMiss) * m.EPCWriteMult)
	}
	return uint64(float64(m.DRAMMiss) * m.EPCReadMult)
}

// AESCycles returns the cost of sealing or opening n bytes with AES-GCM.
func (m *Model) AESCycles(n int) uint64 {
	return m.AESSetup + uint64(float64(n)*m.AESPerByte)
}

// ExitRoundTrip returns the direct cost of one OCALL-style exit/re-enter
// round trip (≈8,000 cycles on the paper's machine).
func (m *Model) ExitRoundTrip() uint64 {
	return m.EExit + m.EEnter + m.OCallOverhead
}

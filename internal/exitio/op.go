package exitio

import (
	"eleos/internal/fsim"
	"eleos/internal/netsim"
	"eleos/internal/sgx"
)

// Kind identifies an op type in completions.
type Kind uint8

// Op kinds.
const (
	OpRecv Kind = iota
	OpSend
	OpOpen
	OpPread
	OpPwrite
	OpFsync
	OpClose
)

func (k Kind) String() string {
	switch k {
	case OpRecv:
		return "recv"
	case OpSend:
		return "send"
	case OpOpen:
		return "open"
	case OpPread:
		return "pread"
	case OpPwrite:
		return "pwrite"
	case OpFsync:
		return "fsync"
	case OpClose:
		return "close"
	}
	return "?"
}

// Op is one exit-less I/O request descriptor: what to do, on which
// kernel object, with which buffers — described as data rather than a
// closure, so the engine can batch, link and account uniformly. The
// set is closed over the simulator's OS services (netsim sockets, fsim
// files); exec is unexported so new op types are added here, next to
// the accounting rules they must respect.
type Op interface {
	// Kind returns the opcode echoed in the op's CQE.
	Kind() Kind
	// exec runs the kernel half of the call in an untrusted context
	// and returns the op's result count (bytes moved; the new fd for
	// Open).
	exec(h *sgx.HostCtx) (int, error)
}

// Recv receives N wire bytes into the socket's untrusted staging
// buffer (the payload must have been staged with Deliver).
type Recv struct {
	Sock *netsim.Socket
	N    int
}

// Kind returns OpRecv.
func (o Recv) Kind() Kind { return OpRecv }

//eleos:untrusted
func (o Recv) exec(h *sgx.HostCtx) (int, error) { return o.Sock.Recv(h, o.N), nil }

// Send transmits N wire bytes from the socket's staging buffer.
type Send struct {
	Sock *netsim.Socket
	N    int
}

// Kind returns OpSend.
func (o Send) Kind() Kind { return OpSend }

//eleos:untrusted
func (o Send) exec(h *sgx.HostCtx) (int, error) {
	o.Sock.Send(h, o.N)
	return o.N, nil
}

// Open opens (creating if needed) a file; the CQE's N is the new fd.
type Open struct {
	FS   *fsim.FS
	Name string
}

// Kind returns OpOpen.
func (o Open) Kind() Kind { return OpOpen }

//eleos:untrusted
func (o Open) exec(h *sgx.HostCtx) (int, error) { return o.FS.Open(h, o.Name) }

// Pread reads up to len(Buf) bytes at Off; N is the byte count (0 at
// or beyond EOF). Buf is untrusted-visible the moment the chain is
// submitted — enclave callers read ciphertext through it and decrypt.
type Pread struct {
	FS  *fsim.FS
	FD  int
	Off uint64
	Buf []byte
}

// Kind returns OpPread.
func (o Pread) Kind() Kind { return OpPread }

//eleos:untrusted
func (o Pread) exec(h *sgx.HostCtx) (int, error) { return o.FS.PRead(h, o.FD, o.Off, o.Buf) }

// Pwrite writes Data at Off, growing the file as needed. Data must
// stay untouched until the op completes (the worker reads it).
type Pwrite struct {
	FS   *fsim.FS
	FD   int
	Off  uint64
	Data []byte
}

// Kind returns OpPwrite.
func (o Pwrite) Kind() Kind { return OpPwrite }

//eleos:untrusted
func (o Pwrite) exec(h *sgx.HostCtx) (int, error) { return o.FS.PWrite(h, o.FD, o.Off, o.Data) }

// Fsync flushes a file's dirty pages.
type Fsync struct {
	FS *fsim.FS
	FD int
}

// Kind returns OpFsync.
func (o Fsync) Kind() Kind { return OpFsync }

//eleos:untrusted
func (o Fsync) exec(h *sgx.HostCtx) (int, error) { return 0, o.FS.Fsync(h, o.FD) }

// Close releases a file descriptor.
type Close struct {
	FS *fsim.FS
	FD int
}

// Kind returns OpClose.
func (o Close) Kind() Kind { return OpClose }

//eleos:untrusted
func (o Close) exec(h *sgx.HostCtx) (int, error) { return 0, o.FS.Close(h, o.FD) }

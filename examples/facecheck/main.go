// Face verification end to end on the real LBP pipeline: enroll a
// small population, verify genuine captures and impostor attempts, and
// show that the SUVM-backed database answered without a single enclave
// exit.
//
//	go run ./examples/facecheck
package main

import (
	"fmt"
	"log"

	"eleos/internal/faceverify"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func main() {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 16 << 20, BackingBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}

	const population = 12
	fmt.Printf("enrolling %d identities (%d KiB descriptor each, real LBP)...\n",
		population, faceverify.DescriptorBytes>>10)
	store, err := faceverify.NewStore(plat, th, faceverify.Config{
		Identities: population,
		Placement:  faceverify.PlaceSUVM,
		Heap:       heap,
		Synthetic:  false,
	})
	if err != nil {
		log.Fatal(err)
	}

	pool := rpc.NewPool(plat, 2, 128)
	pool.Start()
	defer pool.Stop()
	srv, err := faceverify.NewServer(store, faceverify.SysRPC, pool)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	exits0, _, _, _, _ := encl.Stats().Snapshot()

	// Genuine attempts: a fresh capture (variant > 0) of each identity.
	accepted := 0
	for id := uint64(0); id < population; id++ {
		ok, err := srv.Verify(th, id, 1+id)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	fmt.Printf("genuine captures accepted: %d/%d\n", accepted, population)

	// Impostor attempts: identity i claims to be identity i+1. The
	// server compares i+1's enrolled descriptor with a capture rendered
	// from i's face.
	rejected := 0
	for id := uint64(0); id < population-1; id++ {
		img := faceverify.SynthImage(id, 7)
		query := faceverify.LBPDescriptor(img)
		enrolled := make([]byte, faceverify.DescriptorBytes)
		n, err := store.Lookup(th, id+1, enrolled)
		if err != nil {
			log.Fatal(err)
		}
		if faceverify.ChiSquare(query, enrolled[:n]) >= faceverify.VerifyThreshold {
			rejected++
		}
	}
	fmt.Printf("impostor attempts rejected: %d/%d\n", rejected, population-1)

	exits1, _, _, _, _ := encl.Stats().Snapshot()
	st := heap.Stats()
	fmt.Printf("\nSUVM software faults: %d, hardware enclave exits during serving: %d\n",
		st.MajorFaults, exits1-exits0)
}

package phys

import "testing"

func TestAddressMap(t *testing.T) {
	if !IsEPC(0) || !IsEPC(EPCLimit-1) {
		t.Fatal("PRM range misclassified")
	}
	if IsEPC(EPCLimit) || IsEPC(HostBase) {
		t.Fatal("host range misclassified")
	}
	if HostBase <= EPCLimit {
		t.Fatal("regions overlap")
	}
	if FramePhys(0) != EPCBase || FramePhys(1) != EPCBase+PageSize {
		t.Fatal("frame addressing")
	}
}

func TestPageArithmetic(t *testing.T) {
	if PageFloor(4097) != 4096 || PageFloor(4096) != 4096 {
		t.Fatal("PageFloor")
	}
	if PageCeil(1) != PageSize || PageCeil(PageSize) != PageSize || PageCeil(PageSize+1) != 2*PageSize {
		t.Fatal("PageCeil")
	}
	if PageNum(8191) != 1 || PageNum(8192) != 2 {
		t.Fatal("PageNum")
	}
	if 1<<PageShift != PageSize {
		t.Fatal("PageShift inconsistent with PageSize")
	}
}

package kv

import (
	"errors"
	"fmt"

	"eleos/internal/sgx"
)

// Table errors.
var (
	ErrFull     = errors.New("kv: table full")
	ErrNotFound = errors.New("kv: key not found")
	ErrBadKey   = errors.New("kv: zero key is reserved")
)

// Layout selects the collision strategy of a FixedTable.
type Layout int

// The two layouts Fig 2b contrasts.
const (
	OpenAddressing Layout = iota // linear probing; no pointer chasing
	Chaining                     // per-bucket linked lists; pointer chasing
)

func (l Layout) String() string {
	if l == Chaining {
		return "chaining"
	}
	return "open-addressing"
}

// FixedTable is the parameter-server store: a hash table of 8-byte keys
// and 8-byte values laid out in a Mem region. Keys must be non-zero
// (zero marks empty slots). The table is not internally synchronized;
// the parameter server shards or locks above it, as memcached does.
//
// Open-addressing layout:  [slot0 key|val][slot1 key|val]...
// Chaining layout:         [bucket heads][node key|val|next ...]
type FixedTable struct {
	mem     Mem
	layout  Layout
	buckets uint64 // bucket or slot count (power of two)
	// chaining only:
	nodeBase  uint64
	nodeCap   uint64
	nodeCount uint64
}

const (
	slotBytes = 16 // key + value
	nodeBytes = 24 // key + value + next
)

// FixedTableMemSize returns the Mem bytes needed for a table of the
// given layout holding capacity entries with the given bucket count.
func FixedTableMemSize(layout Layout, buckets, capacity uint64) uint64 {
	if layout == Chaining {
		return buckets*8 + capacity*nodeBytes
	}
	return buckets * slotBytes
}

// NewFixedTable initializes a table in mem. For OpenAddressing, buckets
// is the slot count and also the capacity bound; for Chaining, capacity
// nodes follow the bucket array. buckets must be a power of two. The
// region is assumed zeroed (all implementations provide zeroed memory).
func NewFixedTable(mem Mem, layout Layout, buckets, capacity uint64) (*FixedTable, error) {
	if buckets == 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("kv: bucket count %d must be a power of two", buckets)
	}
	need := FixedTableMemSize(layout, buckets, capacity)
	if mem.Size() < need {
		return nil, fmt.Errorf("kv: region of %d bytes cannot hold table needing %d", mem.Size(), need)
	}
	t := &FixedTable{mem: mem, layout: layout, buckets: buckets}
	if layout == Chaining {
		t.nodeBase = buckets * 8
		t.nodeCap = capacity
	}
	return t, nil
}

// Layout returns the table's collision strategy.
func (t *FixedTable) Layout() Layout { return t.layout }

// Len returns the number of stored entries (chaining only tracks this
// exactly; open addressing scans are avoided, so it returns nodeCount
// which both layouts maintain).
func (t *FixedTable) Len() uint64 { return t.nodeCount }

// Get returns the value for key.
func (t *FixedTable) Get(th *sgx.Thread, key uint64) (uint64, error) {
	if key == 0 {
		return 0, ErrBadKey
	}
	if t.layout == Chaining {
		return t.chainGet(th, key)
	}
	return t.openGet(th, key)
}

// Put inserts or updates key.
func (t *FixedTable) Put(th *sgx.Thread, key, val uint64) error {
	if key == 0 {
		return ErrBadKey
	}
	if t.layout == Chaining {
		return t.chainPut(th, key, val)
	}
	return t.openPut(th, key, val)
}

// Add increments key's value in place (the parameter-server update),
// inserting the delta if absent.
func (t *FixedTable) Add(th *sgx.Thread, key, delta uint64) error {
	if key == 0 {
		return ErrBadKey
	}
	if t.layout == Chaining {
		return t.chainAdd(th, key, delta)
	}
	return t.openAdd(th, key, delta)
}

// --- open addressing ---

func (t *FixedTable) openProbe(th *sgx.Thread, key uint64) (slotOff uint64, present bool, err error) {
	mask := t.buckets - 1
	idx := hash64(key) & mask
	for i := uint64(0); i < t.buckets; i++ {
		off := ((idx + i) & mask) * slotBytes
		k, err := readU64(th, t.mem, off)
		if err != nil {
			return 0, false, err
		}
		if k == key {
			return off, true, nil
		}
		if k == 0 {
			return off, false, nil
		}
	}
	return 0, false, ErrFull
}

func (t *FixedTable) openGet(th *sgx.Thread, key uint64) (uint64, error) {
	off, ok, err := t.openProbe(th, key)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, ErrNotFound
	}
	return readU64(th, t.mem, off+8)
}

func (t *FixedTable) openPut(th *sgx.Thread, key, val uint64) error {
	off, ok, err := t.openProbe(th, key)
	if err != nil {
		return err
	}
	if !ok {
		if err := writeU64(th, t.mem, off, key); err != nil {
			return err
		}
		t.nodeCount++
	}
	return writeU64(th, t.mem, off+8, val)
}

func (t *FixedTable) openAdd(th *sgx.Thread, key, delta uint64) error {
	off, ok, err := t.openProbe(th, key)
	if err != nil {
		return err
	}
	if !ok {
		if err := writeU64(th, t.mem, off, key); err != nil {
			return err
		}
		t.nodeCount++
		return writeU64(th, t.mem, off+8, delta)
	}
	v, err := readU64(th, t.mem, off+8)
	if err != nil {
		return err
	}
	return writeU64(th, t.mem, off+8, v+delta)
}

// --- chaining ---

func (t *FixedTable) bucketOff(key uint64) uint64 {
	return (hash64(key) & (t.buckets - 1)) * 8
}

func (t *FixedTable) nodeOff(idx uint64) uint64 {
	return t.nodeBase + (idx-1)*nodeBytes // indices are 1-based; 0 = nil
}

// chainFind walks the bucket's list. Returns the node index (1-based)
// or 0 if absent.
func (t *FixedTable) chainFind(th *sgx.Thread, key uint64) (uint64, error) {
	idx, err := readU64(th, t.mem, t.bucketOff(key))
	if err != nil {
		return 0, err
	}
	for idx != 0 {
		off := t.nodeOff(idx)
		k, err := readU64(th, t.mem, off)
		if err != nil {
			return 0, err
		}
		if k == key {
			return idx, nil
		}
		if idx, err = readU64(th, t.mem, off+16); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func (t *FixedTable) chainGet(th *sgx.Thread, key uint64) (uint64, error) {
	idx, err := t.chainFind(th, key)
	if err != nil {
		return 0, err
	}
	if idx == 0 {
		return 0, ErrNotFound
	}
	return readU64(th, t.mem, t.nodeOff(idx)+8)
}

func (t *FixedTable) chainInsert(th *sgx.Thread, key, val uint64) error {
	if t.nodeCount >= t.nodeCap {
		return ErrFull
	}
	t.nodeCount++
	idx := t.nodeCount
	off := t.nodeOff(idx)
	head, err := readU64(th, t.mem, t.bucketOff(key))
	if err != nil {
		return err
	}
	if err := writeU64(th, t.mem, off, key); err != nil {
		return err
	}
	if err := writeU64(th, t.mem, off+8, val); err != nil {
		return err
	}
	if err := writeU64(th, t.mem, off+16, head); err != nil {
		return err
	}
	return writeU64(th, t.mem, t.bucketOff(key), idx)
}

func (t *FixedTable) chainPut(th *sgx.Thread, key, val uint64) error {
	idx, err := t.chainFind(th, key)
	if err != nil {
		return err
	}
	if idx == 0 {
		return t.chainInsert(th, key, val)
	}
	return writeU64(th, t.mem, t.nodeOff(idx)+8, val)
}

func (t *FixedTable) chainAdd(th *sgx.Thread, key, delta uint64) error {
	idx, err := t.chainFind(th, key)
	if err != nil {
		return err
	}
	if idx == 0 {
		return t.chainInsert(th, key, delta)
	}
	off := t.nodeOff(idx) + 8
	v, err := readU64(th, t.mem, off)
	if err != nil {
		return err
	}
	return writeU64(th, t.mem, off, v+delta)
}

// Package hotpath enforces per-function worst-case heap-allocation
// budgets on the exit-less fast paths. Eleos's argument is latency: an
// enclave exit costs ~9,100 cycles, so the in-enclave doorbell path
// must never stall — and in Go the stealthiest stall is an allocation
// (GC assist, heap lock, cache pollution) hiding behind an innocent
// composite literal. A function declares its budget with
//
//	//eleos:hotpath budget=N
//
// and the analyzer statically bounds its worst-case allocations per
// invocation, failing when the bound exceeds N.
//
// Counted allocation sites: new(T); &CompositeLit; slice and map
// composite literals; make of any kind; append (assumed to grow —
// suppress amortized growth with //eleos:allow); function literals
// (closure allocation, with the body's sites included — the closure is
// assumed to run); calls into the fmt package; the variadic argument
// slice of a call supplying variadic arguments; interface conversion of
// a non-pointer, non-constant argument at a call site; non-constant
// string concatenation; string↔[]byte/[]rune conversions.
//
// The walk is branch-aware and interprocedural: if/switch/select arms
// contribute the maximum over their branches, loop bodies are counted
// once (a loop on a hot path is the author's explicit choice), and
// statically resolved calls to functions declared in this module add
// the callee's own worst-case count, computed transitively over the
// shared internal/lint/callgraph graph (cycles contribute once). A
// callee that declares its own hotpath budget contributes its declared
// budget instead of a recount — budgets compose, and the callee's own
// pass holds it to its declaration.
//
// Static limits, as elsewhere in eleoslint: calls through interfaces
// and function values are not resolved, and non-fmt standard-library
// callees are assumed allocation-free; the budget bounds what the
// module's own code does. An //eleos:allow hotpath (or hotalloc) on or
// directly above a site excludes that site from every caller's count.
// A hotpath directive whose budget is missing or malformed is itself
// reported.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/callgraph"
	"eleos/internal/lint/directive"
	"eleos/internal/lint/load"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "bound worst-case heap allocations of //eleos:hotpath budget=N functions",
	Run:  run,
}

// site is one counted allocation, for reporting.
type site struct {
	pos token.Pos
	msg string
	n   int
}

// state is the program-wide costing state shared by the per-package
// passes.
type state struct {
	fset  *token.FileSet
	graph *callgraph.Graph
	// set holds each declared function's merged directives.
	set map[*types.Func]directive.Set
	// allows indexes well-formed //eleos:allow directives by file, line
	// and check name, across the whole module.
	allows map[allowKey]bool
	// cost memoizes each function's worst-case allocation count.
	cost map[*types.Func]int
	// onStack guards recursion: a cycle's back edge contributes 0, so
	// each function on the cycle is counted once.
	onStack map[*types.Func]bool
}

type allowKey struct {
	file  string
	line  int
	check string
}

var (
	stateMu    sync.Mutex
	stateCache = map[*load.Program]*state{}
)

func run(pass *analysis.Pass) error {
	st := stateFor(pass.Prog)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			set := st.set[obj]
			if !set.HotPath {
				continue
			}
			if !set.HasHotBudget {
				pass.Report(fd.Name.Pos(), "badbudget",
					"hotpath directive on %s is missing a budget=N argument", shortName(obj))
				continue
			}
			if fd.Body == nil {
				continue
			}
			var sites []site
			w := &walker{st: st, pkg: pkgOf(st, obj), collect: &sites}
			total := w.stmts(fd.Body.List)
			if total <= set.HotBudget {
				continue
			}
			pass.Report(fd.Name.Pos(), "hotbudget",
				"hot-path function %s: worst-case %d heap allocations exceed budget %d",
				shortName(obj), total, set.HotBudget)
			for _, s := range sites {
				pass.Report(s.pos, "hotalloc", "%s (hot path %s)", s.msg, shortName(obj))
			}
		}
	}
	return nil
}

func stateFor(prog *load.Program) *state {
	stateMu.Lock()
	defer stateMu.Unlock()
	if st, ok := stateCache[prog]; ok {
		return st
	}
	st := build(prog)
	stateCache[prog] = st
	return st
}

func build(prog *load.Program) *state {
	st := &state{
		fset:    prog.Fset,
		graph:   callgraph.For(prog),
		set:     map[*types.Func]directive.Set{},
		allows:  map[allowKey]bool{},
		cost:    map[*types.Func]int{},
		onStack: map[*types.Func]bool{},
	}
	for _, pkg := range prog.Packages {
		pkgSet := directive.ForPackage(pkg.Files)
		for _, file := range pkg.Files {
			for _, a := range directive.Allows(prog.Fset, file) {
				if a.Check != "" && a.Reason != "" {
					st.allows[allowKey{a.File, a.Line, a.Check}] = true
				}
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				set := pkgSet
				set.Merge(directive.ForFunc(fd))
				st.set[obj] = set
			}
		}
	}
	return st
}

// allowed reports whether an //eleos:allow hotpath/hotalloc directive
// on pos's line, or the line above, excludes the site from counting.
func (st *state) allowed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, check := range []string{"hotalloc", "hotpath"} {
		for _, line := range []int{p.Line, p.Line - 1} {
			if st.allows[allowKey{p.Filename, line, check}] {
				return true
			}
		}
	}
	return false
}

// calleeCost returns fn's worst-case allocation count for callers:
// the declared budget when fn is annotated, a memoized body walk when
// fn is declared in the module, 0 otherwise.
func (st *state) calleeCost(fn *types.Func) int {
	if set, ok := st.set[fn]; ok && set.HotPath && set.HasHotBudget {
		return set.HotBudget
	}
	if c, ok := st.cost[fn]; ok {
		return c
	}
	decl, ok := st.graph.Decls[fn]
	if !ok || decl.Decl.Body == nil || st.onStack[fn] {
		return 0
	}
	st.onStack[fn] = true
	w := &walker{st: st, pkg: decl.Pkg}
	c := w.stmts(decl.Decl.Body.List)
	delete(st.onStack, fn)
	st.cost[fn] = c
	return c
}

// walker walks one function body, summing worst-case allocation sites.
// collect, when non-nil, receives the sites for diagnostics.
type walker struct {
	st      *state
	pkg     *load.Package
	collect *[]site
}

func (w *walker) add(pos token.Pos, n int, msg string) int {
	if n == 0 || w.st.allowed(w.st.fset, pos) {
		return 0
	}
	if w.collect != nil {
		*w.collect = append(*w.collect, site{pos: pos, msg: msg, n: n})
	}
	return n
}

func (w *walker) stmts(list []ast.Stmt) int {
	total := 0
	for _, s := range list {
		total += w.stmt(s)
	}
	return total
}

// stmt returns the worst-case allocation count of one statement.
// Control statements recurse with max over branches; loop bodies count
// once; leaf statements walk their expressions.
func (w *walker) stmt(s ast.Stmt) int {
	switch s := s.(type) {
	case nil:
		return 0
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.IfStmt:
		n := w.stmt(s.Init) + w.expr(s.Cond)
		return n + max(w.stmts(s.Body.List), w.stmt(s.Else))
	case *ast.SwitchStmt:
		n := w.stmt(s.Init) + w.expr(s.Tag)
		return n + w.maxClauses(s.Body)
	case *ast.TypeSwitchStmt:
		n := w.stmt(s.Init) + w.stmt(s.Assign)
		return n + w.maxClauses(s.Body)
	case *ast.SelectStmt:
		return w.maxClauses(s.Body)
	case *ast.ForStmt:
		return w.stmt(s.Init) + w.expr(s.Cond) + w.stmt(s.Post) + w.stmts(s.Body.List)
	case *ast.RangeStmt:
		return w.expr(s.X) + w.stmts(s.Body.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.ExprStmt:
		return w.expr(s.X)
	case *ast.SendStmt:
		return w.expr(s.Chan) + w.expr(s.Value)
	case *ast.IncDecStmt:
		return w.expr(s.X)
	case *ast.AssignStmt:
		n := 0
		for _, e := range s.Lhs {
			n += w.expr(e)
		}
		for _, e := range s.Rhs {
			n += w.expr(e)
		}
		return n
	case *ast.GoStmt:
		return w.expr(s.Call)
	case *ast.DeferStmt:
		return w.expr(s.Call)
	case *ast.ReturnStmt:
		n := 0
		for _, e := range s.Results {
			n += w.expr(e)
		}
		return n
	case *ast.DeclStmt:
		n := 0
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						n += w.expr(e)
					}
				}
			}
		}
		return n
	default:
		return 0
	}
}

// maxClauses returns the worst single clause of a switch/select body.
func (w *walker) maxClauses(body *ast.BlockStmt) int {
	worst := 0
	for _, c := range body.List {
		n := 0
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				n += w.expr(e)
			}
			n += w.stmts(c.Body)
		case *ast.CommClause:
			n += w.stmt(c.Comm) + w.stmts(c.Body)
		}
		worst = max(worst, n)
	}
	return worst
}

// expr sums the allocation sites in one expression tree.
func (w *walker) expr(e ast.Expr) int {
	if e == nil {
		return 0
	}
	info := w.pkg.Info
	total := 0
	// consumed marks nodes whose cost a parent already charged: the
	// composite literal under &lit, and the operand chains of a string
	// concatenation (a+b+c is one runtime concatenation).
	consumed := map[ast.Node]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			total += w.add(n.Pos(), 1, "closure allocates")
			total += w.stmts(n.Body.List)
			return false
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
				consumed[lit] = true
				total += w.add(n.Pos(), 1, "composite literal escapes (allocates)")
			}
		case *ast.CompositeLit:
			if consumed[n] {
				return true
			}
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					total += w.add(n.Pos(), 1, "slice literal allocates")
				case *types.Map:
					total += w.add(n.Pos(), 1, "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !consumed[n] && isStringExpr(info, n) && info.Types[n].Value == nil {
				for _, op := range []ast.Expr{n.X, n.Y} {
					markStringAdds(info, op, consumed)
				}
				total += w.add(n.Pos(), 1, "string concatenation allocates")
			}
		case *ast.CallExpr:
			total += w.call(n)
		}
		return true
	})
	return total
}

// call charges one call expression: builtins, conversions, fmt,
// variadic slice, interface boxing, and the callee's own cost.
func (w *walker) call(call *ast.CallExpr) int {
	info := w.pkg.Info
	total := 0

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				return w.add(call.Lparen, 1, "new allocates")
			case "make":
				return w.add(call.Lparen, 1, "make allocates")
			case "append":
				// Args may allocate too (nested literals); the grow
				// charge is on the call itself.
				return w.add(call.Lparen, 1, "append may grow (allocates)")
			default:
				return 0
			}
		}
	}

	// Conversions: string↔[]byte/[]rune and integer→string copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		switch t := target.(type) {
		case *types.Slice:
			if src != nil && isString(src) {
				total += w.add(call.Lparen, 1, "string-to-slice conversion allocates")
			}
		case *types.Basic:
			if t.Info()&types.IsString != 0 && src != nil && !isString(src) {
				total += w.add(call.Lparen, 1, "conversion to string allocates")
			}
		}
		return total
	}

	callee := analysis.StaticCallee(info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		total += w.add(call.Lparen, 1, "fmt call allocates")
	}

	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig != nil {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			if len(call.Args) > sig.Params().Len()-1 {
				total += w.add(call.Lparen, 1, "variadic call allocates argument slice")
			}
		}
		for i, arg := range call.Args {
			pt := paramType(sig, i, call.Ellipsis != token.NoPos)
			if pt == nil || !types.IsInterface(pt.Underlying()) {
				continue
			}
			at := info.TypeOf(arg)
			if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at) {
				continue
			}
			if tv, ok := info.Types[arg]; ok && tv.Value != nil {
				continue // constants convert to static interface data
			}
			if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
				continue
			}
			total += w.add(arg.Pos(), 1, "interface conversion allocates")
		}
	}

	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() != "fmt" {
		if n := w.st.calleeCost(callee); n > 0 {
			total += w.add(call.Lparen, n,
				"call to "+shortName(callee)+" adds "+itoa(n)+" worst-case allocation(s)")
		}
	}
	return total
}

// paramType resolves the type of parameter i of sig, flattening the
// variadic tail (unless the call forwards a slice with ...).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if ellipsis {
			return last
		}
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports whether boxing a value of type t into an
// interface needs no allocation (the value already is one word of
// pointer shape).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// markStringAdds marks the nested + chain of a string concatenation as
// consumed: the runtime concatenates the whole chain in one call.
func markStringAdds(info *types.Info, e ast.Expr, consumed map[ast.Node]bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD || !isStringExpr(info, be) {
		return
	}
	consumed[be] = true
	markStringAdds(info, be.X, consumed)
	markStringAdds(info, be.Y, consumed)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isString(t)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pkgOf finds the load.Package declaring fn via the call graph.
func pkgOf(st *state, fn *types.Func) *load.Package {
	return st.graph.Decls[fn].Pkg
}

// shortName renders pkg.Name or pkg.(*Recv).Name for messages.
func shortName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := false
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), true
		}
		if named, ok := t.(*types.Named); ok {
			if ptr {
				name = "(*" + named.Obj().Name() + ")." + name
			} else {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Command pserverd runs the §2 parameter server over real TCP on the
// simulated SGX platform, with the table in SUVM and exit-less system
// calls. The line protocol mirrors the workload the paper drives with
// its load generator:
//
//	ADD <key> <delta>\n   ->  OK <new-value>\n
//	GET <key>\n           ->  VALUE <value>\n
//	STATS\n               ->  one line of counters
//	QUIT\n
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"eleos/internal/exitio"
	"eleos/internal/kv"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:4700", "TCP listen address")
		dataMB  = flag.Int("data", 64, "parameter data size in MiB")
		epcppMB = flag.Int("epcpp", 60, "SUVM page cache size in MiB")
		chain   = flag.Bool("chaining", false, "use a chaining hash table instead of open addressing")
		syscall = flag.String("syscall", "rpc-async", "simulated syscall dispatch: native|ocall|rpc|rpc-async")
		workers = flag.Int("rpc-workers", 2, "untrusted RPC worker count (rpc modes)")
	)
	flag.Parse()
	mode, err := exitio.ParseMode(*syscall)
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}

	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}
	var pool *rpc.Pool
	if mode.NeedsPool() {
		pool = rpc.NewPool(plat, *workers, 256)
		pool.Start()
		defer pool.Stop()
	}
	eng, err := exitio.NewEngine(mode, pool)
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}
	setup := encl.NewThread()
	setup.Enter()
	heap, err := suvm.New(encl, setup, suvm.Config{
		PageCacheBytes: uint64(*epcppMB) << 20,
		BackingBytes:   4 << 30,
	})
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}

	entries := uint64(*dataMB) << 20 / 16
	buckets := uint64(1)
	for buckets < 2*entries {
		buckets *= 2
	}
	layout := kv.OpenAddressing
	if *chain {
		layout = kv.Chaining
	}
	region, err := kv.NewSUVMRegion(heap, kv.FixedTableMemSize(layout, buckets, entries))
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}
	table, err := kv.NewFixedTable(region, layout, buckets, entries)
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pserverd: %v", err)
	}
	log.Printf("pserverd: serving on %s (%s, %d entries capacity, SUVM-backed, syscall=%s)",
		ln.Addr(), layout, entries, mode)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("pserverd: accept: %v", err)
			continue
		}
		go serve(conn, encl, heap, table, eng)
	}
}

// tableMu serializes table access across connections: FixedTable keeps
// its bookkeeping unsynchronized (the benchmarks shard by thread), so
// the daemon provides the lock.
var tableMu sync.Mutex

func serve(conn net.Conn, encl *sgx.Enclave, heap *suvm.Heap, table *kv.FixedTable, eng *exitio.Engine) {
	defer conn.Close()
	th := encl.NewThread()
	th.Enter()
	defer th.Exit()
	// Mirror each real TCP transfer as a simulated syscall on the
	// exit-less engine, so STATS cycle counts include the I/O path.
	sock := netsim.NewSocket(encl.Platform(), 64<<10)
	defer sock.Close()
	q := eng.NewQueue()
	account := func(op exitio.Op) bool {
		q.Push(op)
		cqes, err := q.SubmitAndWait(th)
		if err != nil || exitio.FirstErr(cqes) != nil {
			return false
		}
		return true
	}
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if !account(exitio.Recv{Sock: sock, N: len(line)}) {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			w.Flush()
			return
		case "STATS":
			st := heap.Stats()
			io := eng.Stats()
			fmt.Fprintf(w, "entries=%d sw_faults=%d minor=%d evictions=%d cycles=%d io_mode=%s io_doorbells=%d\n",
				table.Len(), st.MajorFaults, st.MinorFaults, st.Evictions, th.T.Cycles(), eng.Mode(), io.Doorbells)
		case "ADD":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERROR usage: ADD <key> <delta>\n")
				break
			}
			key, err1 := strconv.ParseUint(fields[1], 10, 64)
			delta, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil || key == 0 {
				fmt.Fprintf(w, "ERROR bad arguments (keys are non-zero integers)\n")
				break
			}
			tableMu.Lock()
			err := table.Add(th, key, delta)
			var v uint64
			if err == nil {
				v, _ = table.Get(th, key)
			}
			tableMu.Unlock()
			if err != nil {
				fmt.Fprintf(w, "ERROR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK %d\n", v)
		case "GET":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERROR usage: GET <key>\n")
				break
			}
			key, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil || key == 0 {
				fmt.Fprintf(w, "ERROR bad key\n")
				break
			}
			tableMu.Lock()
			v, err := table.Get(th, key)
			tableMu.Unlock()
			if err != nil {
				fmt.Fprintf(w, "NOT_FOUND\n")
				break
			}
			fmt.Fprintf(w, "VALUE %d\n", v)
		default:
			fmt.Fprintf(w, "ERROR unknown command\n")
		}
		if n := w.Buffered(); n > 0 {
			if !account(exitio.Send{Sock: sock, N: n}) {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Package exitio is the unified exit-less I/O path: a typed,
// io_uring-style submission/completion layer over the simulator's OS
// services (netsim sockets, fsim files). Instead of each server
// hand-rolling a SyscallMode switch and issuing one synchronous
// pool.Call per recv and per send, enclave code describes operations as
// op structs, stages them on a per-thread Queue, optionally links
// consecutive ops into a chain that crosses the trust boundary on a
// single doorbell (the paper's batching idea applied to the request
// loop: SEND of response i rides the same submission as RECV of request
// i+1), and reaps typed completions.
//
// The engine carries a pluggable dispatch mode deciding how a staged
// chain reaches the untrusted side: executed inline on the caller's
// host context (native baseline), via an OCALL exit, via one
// synchronous exit-less RPC, or via the rpc pool's asynchronous path
// with residual-latency accounting at reap time. In single-op
// synchronous modes the engine charges exactly the cycle sequence of
// the per-server switches it replaced — the golden server fingerprint
// tests pin that equivalence bit-for-bit.
//
// Trust domain: trusted — submission, linking and reaping run on the
// enclave thread; only the chain executor (execChain and the op exec
// methods, annotated individually) runs untrusted.
//
//eleos:trusted
//eleos:deterministic
package exitio

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// Mode selects how a submitted chain reaches the OS.
type Mode int

// Dispatch modes. The zero value is the native baseline, mirroring the
// SyscallMode zero values the per-server switches used.
const (
	// ModeDirect executes ops inline on the caller's host context —
	// the untrusted-server baseline (no enclave, no exits).
	ModeDirect Mode = iota
	// ModeOCall exits the enclave once per chain, runs the ops, and
	// re-enters — the SDK baseline the paper measures against.
	ModeOCall
	// ModeRPCSync delegates each chain to an untrusted worker with one
	// synchronous exit-less call (§3.1), charging the worker's full
	// latency to the caller.
	ModeRPCSync
	// ModeRPCAsync posts each chain through the rpc pool's async path:
	// the caller keeps computing and the residual latency — the part
	// its compute did not hide — is charged when the completion is
	// reaped.
	ModeRPCAsync
)

func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "native"
	case ModeOCall:
		return "ocall"
	case ModeRPCAsync:
		return "rpc-async"
	default:
		return "rpc"
	}
}

// ParseMode maps the CLI spellings onto dispatch modes.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "native", "direct":
		return ModeDirect, nil
	case "ocall":
		return ModeOCall, nil
	case "rpc", "rpc-sync":
		return ModeRPCSync, nil
	case "rpc-async", "async":
		return ModeRPCAsync, nil
	}
	return 0, fmt.Errorf("exitio: unknown dispatch mode %q (want native, ocall, rpc or rpc-async)", s)
}

// NeedsPool reports whether the mode dispatches through the rpc worker
// pool.
func (m Mode) NeedsPool() bool { return m == ModeRPCSync || m == ModeRPCAsync }

// counters is one set of engine activity counters — atomics only, no
// locks. The Engine embeds one for its aggregate view; a Group carries
// another so co-resident services multiplexed on one engine keep
// per-service doorbell accounting.
type counters struct {
	doorbells    atomic.Uint64
	chains       atomic.Uint64
	ops          atomic.Uint64
	linked       atomic.Uint64
	reapStall    atomic.Uint64
	modeSwitches atomic.Uint64
}

func (c *counters) stats() Stats {
	return Stats{
		Doorbells:       c.doorbells.Load(),
		Chains:          c.chains.Load(),
		Ops:             c.ops.Load(),
		Linked:          c.linked.Load(),
		ReapStallCycles: c.reapStall.Load(),
		ModeSwitches:    c.modeSwitches.Load(),
	}
}

// Engine is the shared half of the I/O layer: the dispatch mode, the
// worker pool for the RPC modes, and aggregate counters. One Engine is
// typically shared by all serving threads of a process (each with its
// own Queue); it holds no locks — the counters are atomics and all
// per-submission state lives in the Queues.
type Engine struct {
	mode Mode
	pool *rpc.Pool

	// chainPool recycles chain descriptors (ops/results storage, the
	// embedded future and the dispatch closure) across submissions, so
	// the steady-state submit→dispatch→reap path allocates nothing.
	chainPool sync.Pool

	counters
}

// getChain takes a recycled chain descriptor (or builds the first few).
// The dispatch closure is created once per chain object and survives
// recycling: it reads c.ops/c.res at execution time, which Submit
// reslices in place for every reuse.
//
//eleos:hotpath budget=0
func (e *Engine) getChain() *chain {
	c, _ := e.chainPool.Get().(*chain)
	if c == nil {
		//eleos:allow hotpath -- pool miss: warm-up allocations, amortized to zero in steady state
		c = new(chain)
		//eleos:allow hotpath -- closure built once per chain object, reused across recycles
		c.exec = func(h *sgx.HostCtx) { execChain(h, c.ops, c.res) }
	}
	return c
}

// putChain recycles a settled chain. Op references are dropped so
// caller buffers don't leak through the pool; slice capacity is kept.
//
//eleos:hotpath budget=0
func (e *Engine) putChain(c *chain) {
	for i := range c.ops {
		c.ops[i] = sqe{}
	}
	c.ops = c.ops[:0]
	c.res = c.res[:0]
	c.fut = rpc.Future{}
	e.chainPool.Put(c)
}

// NewEngine builds an engine. pool is required for the RPC modes and
// ignored otherwise.
func NewEngine(mode Mode, pool *rpc.Pool) (*Engine, error) {
	if mode.NeedsPool() && pool == nil {
		return nil, fmt.Errorf("exitio: %s dispatch requires a worker pool", mode)
	}
	return &Engine{mode: mode, pool: pool}, nil
}

// Mode returns the engine's default dispatch mode — the mode new Queues
// start in. A queue may diverge later via Queue.SetMode.
func (e *Engine) Mode() Mode { return e.mode }

// Pool returns the worker pool (nil in the non-RPC modes).
func (e *Engine) Pool() *rpc.Pool { return e.pool }

// NewQueue creates a submission/completion queue in the engine's
// default dispatch mode. A Queue is owned by one serving thread: stage,
// submit and reap from that thread only (completion callbacks from the
// workers synchronize through the queue's wake channel).
func (e *Engine) NewQueue() *Queue {
	q := &Queue{eng: e, mode: e.mode, wake: make(chan struct{}, 1)}
	// The method value is bound once here: taking q.notifyOne per
	// submission would allocate a closure on the hot path.
	q.notify = q.notifyOne
	return q
}

// Group is one tenant's slice of engine activity: queues opened through
// NewGroupQueue mirror their counter updates into the group, so N
// services multiplexed on one engine (one doorbell path, one worker
// pool) still report per-service doorbells, chains and reap stalls.
// The mirroring is host-side atomics only — it costs no virtual cycles.
type Group struct {
	counters
}

// NewGroup creates an empty per-tenant counter group for this engine.
func (e *Engine) NewGroup() *Group { return &Group{} }

// Stats returns a snapshot of the group's share of engine activity.
func (g *Group) Stats() Stats { return g.stats() }

// NewGroupQueue creates a queue like NewQueue that additionally
// attributes its activity to g (nil behaves exactly like NewQueue).
func (e *Engine) NewGroupQueue(g *Group) *Queue {
	q := e.NewQueue()
	q.grp = g
	return q
}

// Stats is a snapshot of engine activity.
type Stats struct {
	// Doorbells counts boundary crossings: one per submitted chain,
	// whatever the mode (a direct/OCALL execution, one sync RPC, or
	// one async descriptor publish).
	Doorbells uint64
	// Chains and Ops count submitted chains and the ops they carried.
	Chains uint64
	Ops    uint64
	// Linked counts ops that rode an earlier op's doorbell (Ops minus
	// Chains).
	Linked uint64
	// ReapStallCycles accumulates the virtual cycles charged while
	// settling async completions at reap time: the residual worker
	// latency the caller's compute did not hide, plus completion polls.
	ReapStallCycles uint64
	// ModeSwitches counts Queue.SetMode calls that actually changed a
	// queue's dispatch mode — the self-tuning controller's live
	// engine-mode flips.
	ModeSwitches uint64
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats() }

package bench

import (
	"eleos/internal/report"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

func init() {
	register("rpc-async", "Async and batched exit-less RPC vs synchronous Call", runRPCAsync)
}

// asyncWindow is the pipeline depth per worker for the CallAsync mode;
// batchSize is the CallBatch burst size.
const (
	asyncWindow = 2
	batchSize   = 16
)

// runRPCAsync measures the caller-side throughput of the three
// submission modes of the exit-less RPC engine — synchronous Call,
// pipelined CallAsync, and CallBatch — across pool sizes, and then
// sweeps the compute overlap available to a single async call to show
// the residual-latency accounting at work. Queue-depth and steal
// counters from Pool.Stats demonstrate the sharded rings rebalancing
// the single caller's affinity shard across the pool.
func runRPCAsync(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	ops := rc.Ops

	t1 := report.New("Caller throughput by submission mode (Kops/s, single caller)",
		"workers", "sync", "async", "batch", "async/sync", "batch/sync", "peak depth", "steals")
	t1.Note = "async pipelines 2 calls/worker; batch submits bursts of 16; counters from async+batch pools"

	for _, workers := range []int{1, 2, 4, 8} {
		syncTput := rpcSyncRun(workers, ops)
		asyncTput, asyncStats := rpcAsyncRun(workers, ops)
		batchTput, batchStats := rpcBatchRun(workers, ops)
		peak := asyncStats.PeakQueueDepth
		if batchStats.PeakQueueDepth > peak {
			peak = batchStats.PeakQueueDepth
		}
		t1.AddRow(workers,
			syncTput/1e3, asyncTput/1e3, batchTput/1e3,
			asyncTput/syncTput, batchTput/syncTput,
			peak, asyncStats.Steals+batchStats.Steals)
	}

	t2 := report.New("Async latency hiding: cycles/op vs compute overlapped with one in-flight call (4 workers)",
		"overlap cycles", "sync", "async", "hidden %")
	t2.Note = "sync = Call + compute; async = CallAsync, compute, Wait — residual-only charging"
	for _, overlap := range []uint64{0, 100, 250, 500, 1000} {
		syncPer, asyncPer := rpcOverlapRun(4, ops/2, overlap)
		t2.AddRow(overlap, syncPer, asyncPer, 100*(1-asyncPer/syncPer))
	}

	return &Result{
		ID:     "rpc-async",
		Title:  "Async and batched exit-less RPC vs synchronous Call",
		Tables: []*report.Table{t1, t2},
	}, nil
}

func rpcWork(h *sgx.HostCtx) { h.Syscall(nil) }

// rpcEnv builds a fresh enclave environment with a W-worker pool and
// runs warm ops before resetting the caller's counters.
func rpcEnv(workers int) *env {
	v := enclaveEnv(0).withPool(workers)
	for i := 0; i < 64; i++ {
		if err := v.pool.Call(v.th, rpcWork); err != nil {
			panic(err)
		}
	}
	v.resetCounters()
	return v
}

func rpcSyncRun(workers, ops int) float64 {
	v := rpcEnv(workers)
	defer v.close()
	for i := 0; i < ops; i++ {
		if err := v.pool.Call(v.th, rpcWork); err != nil {
			panic(err)
		}
	}
	return float64(ops) / v.plat.Model.Seconds(v.th.T.Cycles())
}

func rpcAsyncRun(workers, ops int) (float64, rpc.Stats) {
	v := rpcEnv(workers)
	defer v.close()
	window := asyncWindow * workers
	pending := make([]*rpc.Future, 0, window)
	for i := 0; i < ops; i++ {
		f, err := v.pool.CallAsync(v.th, rpcWork)
		if err != nil {
			panic(err)
		}
		pending = append(pending, f)
		if len(pending) == window {
			pending[0].Wait(v.th)
			pending = append(pending[:0], pending[1:]...)
		}
	}
	for _, f := range pending {
		f.Wait(v.th)
	}
	return float64(ops) / v.plat.Model.Seconds(v.th.T.Cycles()), v.pool.Stats()
}

func rpcBatchRun(workers, ops int) (float64, rpc.Stats) {
	v := rpcEnv(workers)
	defer v.close()
	fns := make([]func(*sgx.HostCtx), batchSize)
	for i := range fns {
		fns[i] = rpcWork
	}
	done := 0
	for done < ops {
		if err := v.pool.CallBatch(v.th, fns); err != nil {
			panic(err)
		}
		done += batchSize
	}
	return float64(done) / v.plat.Model.Seconds(v.th.T.Cycles()), v.pool.Stats()
}

// rpcOverlapRun compares one synchronous call plus `overlap` cycles of
// compute against the async submit-compute-wait pattern.
func rpcOverlapRun(workers, ops int, overlap uint64) (syncPer, asyncPer float64) {
	v := rpcEnv(workers)
	for i := 0; i < ops; i++ {
		if err := v.pool.Call(v.th, rpcWork); err != nil {
			panic(err)
		}
		v.th.T.Charge(overlap)
	}
	syncPer = perOp(v.th.T.Cycles(), ops)
	v.close()

	v = rpcEnv(workers)
	defer v.close()
	for i := 0; i < ops; i++ {
		f, err := v.pool.CallAsync(v.th, rpcWork)
		if err != nil {
			panic(err)
		}
		v.th.T.Charge(overlap) // the compute the call's latency hides behind
		f.Wait(v.th)
	}
	asyncPer = perOp(v.th.T.Cycles(), ops)
	return syncPer, asyncPer
}

// A sealed append-only log: the enclave encrypts and MACs every record
// before writing it to an untrusted file through exit-less system
// calls, then replays and verifies the log. Demonstrates the pattern
// the paper's philosophy enables — all OS services, storage included,
// consumed without leaving the enclave — driven through the exitio
// submission/completion engine: typed ops, linked chains sharing one
// doorbell, and asynchronous writes whose latency hides behind the
// sealing work.
//
//	go run ./examples/seclog
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"eleos/internal/exitio"
	"eleos/internal/fsim"
	"eleos/internal/rpc"
	"eleos/internal/seal"
	"eleos/internal/sgx"
)

const logPath = "/var/log/enclave-audit.sealed"

// writeChain is how many appends share one doorbell: the enclave keeps
// sealing while a worker drains the previous chain.
const writeChain = 8

func main() {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := rpc.NewPool(plat, 2, 128)
	pool.Start()
	defer pool.Stop()
	fs := fsim.NewFS(plat)
	sealer, err := seal.New(plat.Model)
	if err != nil {
		log.Fatal(err)
	}

	// The exit-less I/O engine in its headline mode: async submission
	// with residual-latency accounting at reap.
	eng, err := exitio.NewEngine(exitio.ModeRPCAsync, pool)
	if err != nil {
		log.Fatal(err)
	}
	q := eng.NewQueue()

	// Open the log — a system call, performed without exiting.
	q.Push(exitio.Open{FS: fs, Name: logPath})
	cqes := mustIO(q.SubmitAndWait(th))
	fd := cqes[0].N

	// Append 1,000 sealed records. Record format on disk:
	// [len u32][nonce 12][ciphertext+tag]. The nonce can live in the
	// clear; integrity and confidentiality come from the AEAD.
	//
	// Writes go out asynchronously in linked chains of 8: the enclave
	// thread keeps sealing the next records while an untrusted worker
	// drains the previous chain, so the write latency hides behind the
	// AES work (§3.1's futures) and eight appends share one doorbell.
	// All completions are collected before fsync.
	exits0, _, _, _, _ := encl.Stats().Snapshot()
	type trusted struct{ off uint64 }
	var index []trusted // kept in enclave memory
	written := 0
	off := uint64(0)
	for i := 0; i < 1000; i++ {
		record := fmt.Sprintf("audit event %04d: balance moved", i)
		nonce, ct := sealer.Seal(th.T, nil, []byte(record), binary.LittleEndian.AppendUint64(nil, uint64(i)))
		frame := make([]byte, 4+len(nonce)+len(ct))
		binary.LittleEndian.PutUint32(frame, uint32(len(ct)))
		copy(frame[4:], nonce[:])
		copy(frame[4+len(nonce):], ct)
		op := exitio.Pwrite{FS: fs, FD: fd, Off: off, Data: frame}
		if q.Staged() > 0 {
			q.PushLinked(op)
		} else {
			q.Push(op)
		}
		if q.Staged() == writeChain {
			mustCall(q.Submit(th))
		}
		reaped := q.Reap(th) // drain finished chains as we go
		mustCall(exitio.FirstErr(reaped))
		written += len(reaped)
		index = append(index, trusted{off: off})
		off += uint64(len(frame))
	}
	tail := mustIO(q.SubmitAndWait(th)) // last chain + everything in flight
	written += len(tail)
	if written != 1000 {
		log.Fatalf("expected 1000 write completions, got %d", written)
	}
	q.Push(exitio.Fsync{FS: fs, FD: fd})
	mustIO(q.SubmitAndWait(th))
	exits1, _, _, _, _ := encl.Stats().Snapshot()

	// The host sees only ciphertext.
	raw := make([]byte, 64)
	_ = fs.RawRead(logPath, 4+12, raw)
	fmt.Printf("host's view of record 0: %x...\n", raw[:24])

	// Replay and verify every record from inside the enclave. The
	// header read and payload read are sequential syscalls (the payload
	// length comes out of the header), each an exit-less submission.
	verified := 0
	for i, ent := range index {
		hdr := make([]byte, 16)
		q.Push(exitio.Pread{FS: fs, FD: fd, Off: ent.off, Buf: hdr})
		mustIO(q.SubmitAndWait(th))
		n := binary.LittleEndian.Uint32(hdr)
		var nonce seal.Nonce
		copy(nonce[:], hdr[4:])
		ct := make([]byte, n)
		q.Push(exitio.Pread{FS: fs, FD: fd, Off: ent.off + 16, Buf: ct})
		mustIO(q.SubmitAndWait(th))
		pt, err := sealer.Open(th.T, nil, ct, binary.LittleEndian.AppendUint64(nil, uint64(i)), nonce)
		if err != nil {
			log.Fatalf("record %d failed verification: %v", i, err)
		}
		want := fmt.Sprintf("audit event %04d: balance moved", i)
		if string(pt) != want {
			log.Fatalf("record %d corrupted", i)
		}
		verified++
	}
	fmt.Printf("replayed and verified %d sealed records\n", verified)
	st := eng.Stats()
	fmt.Printf("file size: %d bytes across %d system calls (%d doorbells, %d ops linked), ",
		off, fs.Syscalls(), st.Doorbells, st.Linked)
	fmt.Printf("enclave exits during logging: %d\n", exits1-exits0)

	// Now let the host tamper with one record and watch verification
	// catch it.
	_ = fs.RawRead(logPath, 0, raw[:1])
	tamper := []byte{raw[0] ^ 0x80}
	var hfd int
	host := plat.NewHostThread(0).HostContext()
	hfd, _ = fs.Open(host, logPath)
	// An adversarial write from the host side, at record 500's payload.
	fs.PWrite(host, hfd, index[500].off+20, tamper)
	hdr := make([]byte, 16)
	q.Push(exitio.Pread{FS: fs, FD: fd, Off: index[500].off, Buf: hdr})
	mustIO(q.SubmitAndWait(th))
	n := binary.LittleEndian.Uint32(hdr)
	var nonce seal.Nonce
	copy(nonce[:], hdr[4:])
	ct := make([]byte, n)
	q.Push(exitio.Pread{FS: fs, FD: fd, Off: index[500].off + 16, Buf: ct})
	mustIO(q.SubmitAndWait(th))
	if _, err := sealer.Open(th.T, nil, ct, binary.LittleEndian.AppendUint64(nil, uint64(500)), nonce); err != nil {
		fmt.Printf("host tampering with record 500 detected: %v\n", err)
	} else {
		log.Fatal("tampering went undetected!")
	}
}

// mustIO aborts on a submission error or any failed completion, and
// hands the completions back.
func mustIO(cqes []exitio.CQE, err error) []exitio.CQE {
	mustCall(err)
	mustCall(exitio.FirstErr(cqes))
	return cqes
}

// mustCall aborts on an exit-less call error (stopped pool).
func mustCall(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package bench

import (
	"fmt"

	"eleos"
	"eleos/internal/faceverify"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/mckv"
	"eleos/internal/pserver"
	"eleos/internal/report"
)

func init() {
	register("fleet",
		"Fleet ballooning: demand-driven PRM shares vs static even split under phase-shifted tenants",
		runFleet)
}

// The fleet-ballooning experiment: N single-service enclaves (the
// paper's multi-enclave deployment) under a PRM that cannot hold every
// working set, with load that shifts between tenants in phases. The
// static arm is the paper's §3.3 policy done right — every EPC++
// ballooned to 3/4 of the driver's even share. The adaptive arm runs
// the same tenants under WithFleetBalloon: the controller samples each
// heap's fault signals, installs demand-proportional shares through
// SetEPCShares, and balloons the heaps to match — so whichever tenant
// the phase makes hot serves from EPC++ while the cold tenants shrink.

const (
	fleetPRM = 24 << 20 // 6144 frames for 3 tenants
	// fleetEvenEPC is the static arm's EPC++: the balloon target of the
	// 8 MiB even share (3/4 of it). The adaptive arm starts at the same
	// size, so the arms differ only in what the controller does next.
	fleetEvenEPC = 6 << 20
	// fleetMaxEPC is the adaptive arm's EPC++ capacity: what a tenant
	// can grow to when the controller concentrates PRM on it.
	fleetMaxEPC = 12 << 20
	// fleetEpochCycles is the controller's decision period; a few
	// hundred requests per epoch at the hot tenants' fault costs.
	fleetEpochCycles = 2_000_000
)

// fleetTenant is one enclave's server: build loads it (unmeasured) and
// returns a single-request serving function plus a cleanup.
type fleetTenant struct {
	name  string
	build func(rt *eleos.Runtime, ctx *eleos.Ctx) (request func() error, cleanup func(), err error)
}

// Working sets are sized to overflow the 6 MiB static EPC++ but fit the
// 12 MiB adaptive capacity: the even split pages every tenant all the
// time, the demand split serves the hot tenant from memory.
func fleetTenants() []fleetTenant {
	return []fleetTenant{
		{"mckv", func(rt *eleos.Runtime, ctx *eleos.Ctx) (func() error, func(), error) {
			store, err := mckv.NewStore(rt.Platform(), ctx.Thread(), mckv.Config{
				MemLimitBytes: 12 << 20,
				Placement:     mckv.PlaceSUVM,
				Heap:          ctx.Enclave().Heap(),
			})
			if err != nil {
				return nil, nil, err
			}
			srv := mckv.NewServerIO(store, rt.IOEngine())
			key := make([]byte, 20)
			val := make([]byte, 512)
			const items = 16384 // ~10 MiB of entries
			for i := 0; i < items; i++ {
				copy(key, fmt.Sprintf("key-%016d", i))
				if err := store.Set(ctx.Thread(), key, val); err != nil {
					srv.Close()
					return nil, nil, err
				}
			}
			gen := loadgen.NewKeyGen(4242, items)
			n := 0
			request := func() error {
				copy(key, fmt.Sprintf("key-%016d", gen.Next()-1))
				n++
				if n%5 == 0 {
					return srv.ServeSet(ctx.Thread(), key, val)
				}
				_, err := srv.ServeGet(ctx.Thread(), key)
				return err
			}
			return request, srv.Close, nil
		}},
		{"pserver", func(rt *eleos.Runtime, ctx *eleos.Ctx) (func() error, func(), error) {
			srv, err := pserver.New(rt.Platform(), ctx.Thread(), pserver.Config{
				DataBytes: 8 << 20,
				Layout:    kv.OpenAddressing,
				Placement: pserver.PlaceSUVM,
				Heap:      ctx.Enclave().Heap(),
				Engine:    rt.IOEngine(),
				Encrypted: true,
			})
			if err != nil {
				return nil, nil, err
			}
			gen := loadgen.NewKeyGen(31337, srv.Entries())
			keys := make([]uint64, 4)
			request := func() error {
				return srv.ServeRequest(ctx.Thread(), gen.Batch(keys))
			}
			return request, srv.Close, nil
		}},
		{"faceverify", func(rt *eleos.Runtime, ctx *eleos.Ctx) (func() error, func(), error) {
			store, err := faceverify.NewStore(rt.Platform(), ctx.Thread(), faceverify.Config{
				Identities: 40, // 40 x 232 KiB descriptors ~ 9 MiB
				Placement:  faceverify.PlaceSUVM,
				Heap:       ctx.Enclave().Heap(),
				Synthetic:  true,
			})
			if err != nil {
				return nil, nil, err
			}
			srv := faceverify.NewServerIO(store, rt.IOEngine())
			gen := loadgen.NewKeyGen(2718, 40)
			n := 0
			request := func() error {
				n++
				_, err := srv.Verify(ctx.Thread(), gen.Next()-1, uint64(n%4))
				return err
			}
			return request, srv.Close, nil
		}},
	}
}

// fleetWeights[phase][tenant] is how many requests the tenant serves
// per round in that phase: each phase makes one tenant hot.
// faceverify's requests are an order of magnitude heavier, so its hot
// weight is lower for a comparable phase length.
var fleetWeights = [3][3]int{
	{8, 1, 1},
	{1, 8, 1},
	{1, 1, 4},
}

// fleetPhase is one phase's aggregate outcome in one arm.
type fleetPhase struct {
	cycles uint64 // sum of all tenants' serving cycles
	ops    int    // sum of all tenants' requests
	faults uint64 // sum of all tenants' major faults
}

type fleetOutcome struct {
	phases [3]fleetPhase
	fleet  eleos.FleetStats
}

func runFleetArm(rc RunConfig, adaptive bool) (fleetOutcome, error) {
	var out fleetOutcome
	opts := []eleos.Option{
		eleos.WithRPCWorkers(1),
		eleos.WithMachine(eleos.MachineConfig{UsablePRMBytes: fleetPRM}),
	}
	if adaptive {
		opts = append(opts, eleos.WithFleetBalloon(eleos.FleetPolicy{EpochCycles: fleetEpochCycles}))
	}
	rt, err := eleos.NewRuntime(opts...)
	if err != nil {
		return out, err
	}
	defer rt.Close()

	tenants := fleetTenants()
	ctxs := make([]*eleos.Ctx, len(tenants))
	reqs := make([]func() error, len(tenants))
	for i, tn := range tenants {
		epc := uint64(fleetEvenEPC)
		if adaptive {
			epc = fleetMaxEPC
		}
		encl, err := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: epc})
		if err != nil {
			return out, fmt.Errorf("%s: %w", tn.name, err)
		}
		defer encl.Destroy()
		ctxs[i] = encl.NewContext()
		defer ctxs[i].Close()
		if adaptive {
			// Both arms start at the even-split balloon size; only the
			// controller's decisions differ.
			if err := encl.Heap().ResizeTo(ctxs[i].Thread(), fleetEvenEPC); err != nil {
				return out, fmt.Errorf("%s: presize: %w", tn.name, err)
			}
		}
		req, cleanup, err := tn.build(rt, ctxs[i])
		if err != nil {
			return out, fmt.Errorf("%s: %w", tn.name, err)
		}
		defer cleanup()
		reqs[i] = req
	}

	// Warm-up boundary: setup (enclave creation pins whole frame pools,
	// store loads fault in working sets) ran on setup-thread clocks and
	// left the driver's virtual-time queue far ahead of the serving
	// threads. Reset every measured counter and the driver together — the
	// shared-epoch discipline all benchmarks follow — so the phases
	// compare serving work, not leftover clock skew between the arms'
	// different setup costs.
	for _, ctx := range ctxs {
		ctx.Thread().T.Reset()
		ctx.Thread().TLB.ResetStats()
		ctx.Thread().ResetEnclaveCycles()
		ctx.Enclave().Heap().ResetStats()
	}
	rt.Platform().LLC.ResetStats()
	rt.Platform().Driver.ResetStats()

	rounds := rc.Ops / 100
	if rounds < 60 {
		rounds = 60
	}
	for phase := 0; phase < 3; phase++ {
		var c0, f0 [3]uint64
		for i, ctx := range ctxs {
			c0[i] = ctx.Cycles()
			f0[i] = ctx.Enclave().Heap().Stats().MajorFaults
		}
		ops := 0
		for r := 0; r < rounds; r++ {
			for i, req := range reqs {
				for k := 0; k < fleetWeights[phase][i]; k++ {
					if err := req(); err != nil {
						return out, fmt.Errorf("%s phase %d: %w", tenants[i].name, phase, err)
					}
					ops++
				}
				ctxs[i].Pump()
			}
		}
		p := &out.phases[phase]
		p.ops = ops
		for i, ctx := range ctxs {
			p.cycles += ctx.Cycles() - c0[i]
			p.faults += ctx.Enclave().Heap().Stats().MajorFaults - f0[i]
		}
	}
	out.fleet = rt.Stats().Fleet
	return out, nil
}

func runFleet(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	static, err := runFleetArm(rc, false)
	if err != nil {
		return nil, err
	}
	adaptive, err := runFleetArm(rc, true)
	if err != nil {
		return nil, err
	}

	hot := []string{"mckv", "pserver", "faceverify"}
	t := report.New("Phase-shifted tenants: static even split vs adaptive fleet shares (3 enclaves, 24 MiB PRM)",
		"phase (hot tenant)", "requests", "static cyc/req", "adaptive cyc/req", "speedup",
		"static faults", "adaptive faults")
	t.Note = fmt.Sprintf("aggregate over all 3 tenants per phase; every EPC++ starts at %d MiB (the even-split balloon target); the adaptive arm may grow a tenant to %d MiB by shrinking the others", fleetEvenEPC>>20, fleetMaxEPC>>20)
	var sTot, aTot fleetPhase
	for phase := range static.phases {
		s, a := static.phases[phase], adaptive.phases[phase]
		t.AddRow(hot[phase], s.ops,
			perOp(s.cycles, s.ops), perOp(a.cycles, a.ops),
			float64(s.cycles)/float64(a.cycles),
			s.faults, a.faults)
		sTot.cycles += s.cycles
		sTot.ops += s.ops
		sTot.faults += s.faults
		aTot.cycles += a.cycles
		aTot.ops += a.ops
		aTot.faults += a.faults
	}
	t.AddRow("all phases", sTot.ops,
		perOp(sTot.cycles, sTot.ops), perOp(aTot.cycles, aTot.ops),
		float64(sTot.cycles)/float64(aTot.cycles),
		sTot.faults, aTot.faults)

	ct := report.New("Fleet controller activity (adaptive arm)",
		"tenant", "share frames", "active frames", "capacity frames", "last demand", "skips")
	ct.Note = fmt.Sprintf("epochs %d, rebalances %d, skipped resizes %d; shares are the driver table installed via SetEPCShares at the last rebalance",
		adaptive.fleet.Epochs, adaptive.fleet.Rebalances, adaptive.fleet.Skips)
	for _, ten := range adaptive.fleet.Tenants {
		ct.AddRow(fmt.Sprintf("enclave %d", ten.Enclave),
			ten.ShareFrames, ten.ActiveFrames, ten.CapacityFrames, ten.Demand, ten.Skips)
	}

	return &Result{
		ID:     "fleet",
		Title:  "Fleet ballooning: demand-driven PRM shares vs static even split",
		Tables: []*report.Table{t, ct},
	}, nil
}

// Command eleos-bench regenerates the tables and figures of the Eleos
// paper's evaluation on the simulated SGX platform.
//
// Usage:
//
//	eleos-bench                 # run every experiment at paper scale
//	eleos-bench -quick          # scaled-down datasets (CI-sized)
//	eleos-bench -run fig7a,tab2 # selected experiments only
//	eleos-bench -list           # list experiment IDs
//	eleos-bench -ops 20000      # override the per-configuration op count
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eleos/internal/bench"
)

// writeCSV renders each of the experiment's tables as <id>[_n].csv so
// results can be loaded into plotting tools directly.
func writeCSV(dir string, res *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := res.ID
		if i > 0 {
			name = fmt.Sprintf("%s_%d", res.ID, i)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write(t.Headers); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteAll(t.Rows); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON renders the experiment — title, headers and rows of every
// table — as BENCH_<id>.json (dashes mapped to underscores), the
// machine-readable companion to the printed tables.
func writeJSON(dir string, res *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type jsonTable struct {
		Title   string     `json:"title"`
		Note    string     `json:"note,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	doc := struct {
		ID     string      `json:"id"`
		Title  string      `json:"title"`
		Tables []jsonTable `json:"tables"`
	}{ID: res.ID, Title: res.Title}
	for _, t := range res.Tables {
		doc.Tables = append(doc.Tables, jsonTable{
			Title: t.Title, Note: t.Note, Headers: t.Headers, Rows: t.Rows,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + strings.ReplaceAll(res.ID, "-", "_") + ".json"
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "scaled-down datasets for fast runs")
		ops     = flag.Int("ops", 0, "operations per configuration (0 = experiment default)")
		runs    = flag.Int("runs", 0, "variance runs per configuration (0 = experiment default)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir  = flag.String("csv", "", "also write each experiment's tables as CSV into this directory")
		jsonDir = flag.String("json", "", "also write each experiment as BENCH_<id>.json into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *runIDs == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "eleos-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	rc := bench.RunConfig{Ops: *ops, Runs: *runs, Quick: *quick}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eleos-bench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("[%s completed in %.1fs host time]\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "eleos-bench: writing CSV for %s: %v\n", e.ID, err)
				failed++
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "eleos-bench: writing JSON for %s: %v\n", e.ID, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

package suvm

import "sync/atomic"

// Stats holds the heap's atomic event counters.
type Stats struct {
	majorFaults     atomic.Uint64
	minorFaults     atomic.Uint64
	pageIns         atomic.Uint64
	evictions       atomic.Uint64
	writeBacks      atomic.Uint64
	cleanDrops      atomic.Uint64
	directReads     atomic.Uint64
	directWrites    atomic.Uint64
	resizes         atomic.Uint64
	faultCycles     atomic.Uint64
	faultsCoalesced atomic.Uint64
	faultWaitCycles atomic.Uint64
	evictScans      atomic.Uint64
	evictScanFrames atomic.Uint64
	balloonSkips    atomic.Uint64
}

// noteScan records one victim-selection pass that examined n frames.
func (s *Stats) noteScan(n int) {
	s.evictScans.Add(1)
	s.evictScanFrames.Add(uint64(n))
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	// MajorFaults counts software page faults that paged data in from
	// the backing store or zero-filled a fresh page.
	MajorFaults uint64
	// MinorFaults counts unlinked accesses that found the page already
	// resident in EPC++ (§3.2.2).
	MinorFaults uint64
	// PageIns counts pages filled into EPC++ (decrypt or zero-fill).
	PageIns uint64
	// Evictions counts pages removed from EPC++.
	Evictions uint64
	// WriteBacks counts evictions that sealed the page out to the
	// backing store.
	WriteBacks uint64
	// CleanDrops counts evictions that skipped the write-back because
	// the page was clean — the §3.2.4 optimization EWB cannot do.
	CleanDrops uint64
	// DirectReads and DirectWrites count sub-page direct accesses.
	DirectReads  uint64
	DirectWrites uint64
	// Resizes counts EPC++ ballooning operations.
	Resizes uint64
	// FaultCycles is the total virtual cycles spent inside major-fault
	// handling (eviction + page-in), excluding the application's own
	// access; FaultCycles/MajorFaults is directly comparable to the
	// paper's §6.1.2 software-fault latencies.
	FaultCycles uint64
	// FaultsCoalesced counts same-page faults that waited on another
	// thread's in-flight page-in and linked to the winner's frame
	// instead of repeating the work (they also count as MinorFaults).
	FaultsCoalesced uint64
	// FaultWaitCycles is the total queueing delay charged to threads
	// that waited on another thread's in-flight page-in or eviction of
	// the same page — the virtual-time cost of same-page contention
	// (zero in any single-threaded run).
	FaultWaitCycles uint64
	// EvictScans counts victim-selection passes of the configured
	// eviction policy, and EvictScanFrames the frames they examined;
	// EvictScanFrames/EvictScans is the policy's mean scan length.
	EvictScans      uint64
	EvictScanFrames uint64
	// BalloonSkips counts BalloonTick calls whose resize was refused
	// (e.g. a transiently pinned frame blocking a shrink), and
	// LastBalloonErr carries the most recent refusal's message — so a
	// heap whose swapper keeps discarding tick errors does not silently
	// stop ballooning. Heap-level only: they are never set on domain
	// snapshots and are excluded from add().
	BalloonSkips   uint64
	LastBalloonErr string

	// Domains breaks the counters down per carved service domain
	// (domain.go). Nil when the heap has no carved domains; when
	// present, the flat fields above are the sum of the root's own
	// counters and every domain's.
	Domains []DomainStatsSnapshot
}

// DomainStatsSnapshot is one carved domain's share of a heap snapshot.
type DomainStatsSnapshot struct {
	// Name is the domain's DomainConfig.Name.
	Name string
	StatsSnapshot
}

// add accumulates o's counters into s (aggregation of per-domain
// snapshots into the heap-wide totals; o.Domains is ignored).
func (s *StatsSnapshot) add(o *StatsSnapshot) {
	s.MajorFaults += o.MajorFaults
	s.MinorFaults += o.MinorFaults
	s.PageIns += o.PageIns
	s.Evictions += o.Evictions
	s.WriteBacks += o.WriteBacks
	s.CleanDrops += o.CleanDrops
	s.DirectReads += o.DirectReads
	s.DirectWrites += o.DirectWrites
	s.Resizes += o.Resizes
	s.FaultCycles += o.FaultCycles
	s.FaultsCoalesced += o.FaultsCoalesced
	s.FaultWaitCycles += o.FaultWaitCycles
	s.EvictScans += o.EvictScans
	s.EvictScanFrames += o.EvictScanFrames
	// BalloonSkips and LastBalloonErr are heap-level (ballooning acts on
	// the whole heap, never per domain) and deliberately not summed.
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		MajorFaults:     s.majorFaults.Load(),
		MinorFaults:     s.minorFaults.Load(),
		PageIns:         s.pageIns.Load(),
		Evictions:       s.evictions.Load(),
		WriteBacks:      s.writeBacks.Load(),
		CleanDrops:      s.cleanDrops.Load(),
		DirectReads:     s.directReads.Load(),
		DirectWrites:    s.directWrites.Load(),
		Resizes:         s.resizes.Load(),
		FaultCycles:     s.faultCycles.Load(),
		FaultsCoalesced: s.faultsCoalesced.Load(),
		FaultWaitCycles: s.faultWaitCycles.Load(),
		EvictScans:      s.evictScans.Load(),
		EvictScanFrames: s.evictScanFrames.Load(),
		BalloonSkips:    s.balloonSkips.Load(),
	}
}

func (s *Stats) reset() {
	s.majorFaults.Store(0)
	s.minorFaults.Store(0)
	s.pageIns.Store(0)
	s.evictions.Store(0)
	s.writeBacks.Store(0)
	s.cleanDrops.Store(0)
	s.directReads.Store(0)
	s.directWrites.Store(0)
	s.resizes.Store(0)
	s.faultCycles.Store(0)
	s.faultsCoalesced.Store(0)
	s.faultWaitCycles.Store(0)
	s.evictScans.Store(0)
	s.evictScanFrames.Store(0)
	s.balloonSkips.Store(0)
}

package exitio_test

import (
	"errors"
	"sync"
	"testing"

	"eleos/internal/exitio"
	"eleos/internal/fsim"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// Four enclave threads drive one shared engine concurrently — each with
// its own queue, socket and file — mixing linked socket chains with
// async file writes. Run under -race (make check), this is the
// tripwire for submission/completion races: the lossy wake channel,
// the notify-before-recycle ordering in rpc, and the engine's shared
// counters.
func TestStressSharedEngine(t *testing.T) {
	const (
		threads = 4
		rounds  = 300
	)
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	pool := rpc.NewPool(plat, 2, 128)
	pool.Start()
	defer pool.Stop()
	eng, err := exitio.NewEngine(exitio.ModeRPCAsync, pool)
	if err != nil {
		t.Fatal(err)
	}
	fs := fsim.NewFS(plat)

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			th := encl.NewThread()
			th.Enter()
			defer th.Exit()
			sock := netsim.NewSocket(plat, 8192)
			defer sock.Close()
			q := eng.NewQueue()

			q.Push(exitio.Open{FS: fs, Name: "/stress/" + string(rune('a'+worker))})
			cqes, err := q.SubmitAndWait(th)
			if err != nil {
				errs <- err
				return
			}
			fd := cqes[0].N

			data := make([]byte, 256)
			completed := 0
			for r := 0; r < rounds; r++ {
				// A linked request/response socket chain...
				sock.Deliver(data[:64])
				q.Push(exitio.Send{Sock: sock, N: 128})
				q.PushLinked(exitio.Recv{Sock: sock, N: 128})
				// ...and an unlinked async file append, all in flight
				// together.
				q.Push(exitio.Pwrite{FS: fs, FD: fd, Off: uint64(r) * 256, Data: data})
				if err := q.Submit(th); err != nil {
					errs <- err
					return
				}
				th.T.Charge(2000) // overlap compute
				// Drain the round before reusing the socket: a Socket
				// allows one in-flight chain at a time (its owner guard
				// panics otherwise).
				reaped := q.WaitN(th, q.InFlight())
				if err := exitio.FirstErr(reaped); err != nil {
					errs <- err
					return
				}
				completed += len(reaped)
			}
			q.Push(exitio.Fsync{FS: fs, FD: fd})
			q.PushLinked(exitio.Close{FS: fs, FD: fd})
			tail, err := q.SubmitAndWait(th)
			if err != nil {
				errs <- err
				return
			}
			if err := exitio.FirstErr(tail); err != nil {
				errs <- err
				return
			}
			completed += len(tail)
			if want := rounds*3 + 2; completed != want {
				errs <- errors.New("completion count mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := eng.Stats()
	wantOps := uint64(threads * (1 + rounds*3 + 2))
	if st.Ops != wantOps {
		t.Fatalf("engine saw %d ops, want %d", st.Ops, wantOps)
	}
	wantChains := uint64(threads * (1 + rounds*2 + 1))
	if st.Chains != wantChains || st.Doorbells != wantChains {
		t.Fatalf("engine saw %d chains / %d doorbells, want %d", st.Chains, st.Doorbells, wantChains)
	}
	if st.Linked != uint64(threads*(rounds+1)) {
		t.Fatalf("engine saw %d linked ops, want %d", st.Linked, threads*(rounds+1))
	}
}

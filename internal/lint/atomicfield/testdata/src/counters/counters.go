// Package counters is testdata for the atomicfield analyzer: mixed
// atomic/plain accesses, copies of atomic-bearing structs, and
// mixed-type atomic.Value stores.
package counters

import "sync/atomic"

// Stats mixes a function-style atomic field, a typed atomic and a
// plain field.
type Stats struct {
	hits   uint64 // accessed via atomic.AddUint64 → atomics-only
	misses uint64 // never atomic → free-for-all
	live   atomic.Int64
}

// Hit is the sanctioned atomic path.
func (s *Stats) Hit() { atomic.AddUint64(&s.hits, 1) }

// Snapshot mixes in a plain read of the atomically accessed field.
func (s *Stats) Snapshot() uint64 {
	return s.hits // want "plain read of counters.Stats.hits, which is accessed with sync/atomic"
}

// Reset writes the field plainly.
func (s *Stats) Reset() {
	s.hits = 0 // want "plain write of counters.Stats.hits"
	s.misses = 0
}

// Miss touches the never-atomic field: clean.
func (s *Stats) Miss() { s.misses++ }

// LoadHits is another sanctioned access.
func (s *Stats) LoadHits() uint64 { return atomic.LoadUint64(&s.hits) }

// seq is a package-level variable published through sync/atomic.
var seq uint64

// Next is the sanctioned bump.
func Next() uint64 { return atomic.AddUint64(&seq, 1) }

// Peek reads it plainly.
func Peek() uint64 {
	return seq // want "plain read of counters.seq"
}

// Clone copies a Stats value, forking its typed atomic.
func Clone(s *Stats) Stats {
	return *s // want "return copies counters\\.Stats, which contains atomic fields"
}

// Use consumes a copy.
func Use(s Stats) {}

// Feed passes a Stats value as an argument.
func Feed(s *Stats) {
	Use(*s) // want "call passes by value counters\\.Stats, which contains atomic fields"
}

// Assign copies by assignment.
func Assign(s *Stats) {
	local := *s // want "assignment copies counters\\.Stats, which contains atomic fields"
	_ = local.misses
}

// Iterate ranges over values of an atomic-bearing struct.
func Iterate(all []Stats) {
	for _, s := range all { // want "range copies counters\\.Stats, which contains atomic fields"
		_ = s.misses
	}
}

// IterateByIndex is the clean spelling.
func IterateByIndex(all []Stats) {
	for i := range all {
		_ = all[i].LoadHits()
	}
}

// ByPointer moves pointers around: clean.
func ByPointer(s *Stats) *Stats { return s }

// wrapper embeds Stats; copying it is just as wrong.
type wrapper struct {
	inner Stats
	tag   string
}

// CloneWrapper copies transitively.
func CloneWrapper(w *wrapper) wrapper {
	return *w // want "return copies counters\\.wrapper, which contains atomic fields"
}

// state is an atomic.Value holding the current config; two stores
// disagree on the concrete type.
type config struct{ n int }

type box struct{ state atomic.Value }

// StoreConfig stores the intended type.
func (b *box) StoreConfig(c *config) {
	b.state.Store(c) // want "stores \\*counters\\.config into atomic.Value counters.box.state, which elsewhere stores string"
}

// StoreName stores a different one.
func (b *box) StoreName(name string) {
	b.state.Store(name) // want "stores string into atomic.Value counters.box.state, which elsewhere stores \\*counters\\.config"
}

// consistent always stores the same type: clean.
var consistent atomic.Value

// StoreInt is one of two agreeing stores.
func StoreInt(n int) { consistent.Store(n) }

// SwapInt agrees with StoreInt.
func SwapInt(n int) { _ = consistent.Swap(n) }

// Shared is module-visible state: Word is atomically published here
// and (wrongly) plainly read in the crosspkg testdata package, proving
// the facts aggregate across packages.
type Shared struct {
	Word uint64
	live atomic.Int64
}

// Publish is the sanctioned atomic store.
func Publish(s *Shared) { atomic.StoreUint64(&s.Word, 1) }

// Suppressed demonstrates //eleos:allow on a deliberate plain read.
func (s *Stats) Suppressed() uint64 {
	//eleos:allow plainaccess -- read under stop-the-world, no concurrent writers
	return s.hits
}

package faceverify

import (
	"bytes"
	"encoding/binary"
	"testing"

	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func TestLBPDeterministicAndShaped(t *testing.T) {
	img := SynthImage(1, 0)
	d1 := LBPDescriptor(img)
	d2 := LBPDescriptor(SynthImage(1, 0))
	if !bytes.Equal(d1, d2) {
		t.Fatal("LBP of identical images differs")
	}
	if len(d1) != DescriptorBytes {
		t.Fatalf("descriptor length %d want %d", len(d1), DescriptorBytes)
	}
	if DescriptorBytes != 232<<10 {
		t.Fatalf("descriptor must be exactly 232 KiB, got %d", DescriptorBytes)
	}
	// Interior cells histogram to the cell pixel count.
	cell := (GridSide + 1) // row 1, col 1: fully interior
	var sum uint32
	for b := 0; b < Bins; b++ {
		sum += binary.LittleEndian.Uint32(d1[(cell*Bins+b)*4:])
	}
	if sum != CellSide*CellSide {
		t.Fatalf("interior cell mass %d want %d", sum, CellSide*CellSide)
	}
}

func TestVerificationSeparatesIdentities(t *testing.T) {
	// Same identity, different captures: small distance. Different
	// identities: large distance. The threshold must separate them.
	enrolled := LBPDescriptor(SynthImage(7, 0))
	same := LBPDescriptor(SynthImage(7, 1))
	other := LBPDescriptor(SynthImage(8, 1))
	dSame := ChiSquare(enrolled, same)
	dOther := ChiSquare(enrolled, other)
	if dSame >= VerifyThreshold {
		t.Fatalf("genuine capture rejected: distance %.0f >= %d", dSame, VerifyThreshold)
	}
	if dOther <= VerifyThreshold {
		t.Fatalf("impostor accepted: distance %.0f <= %d", dOther, VerifyThreshold)
	}
	if dOther < 3*dSame {
		t.Fatalf("weak separation: same=%.0f other=%.0f", dSame, dOther)
	}
}

func TestUniformMapCoversAllCodes(t *testing.T) {
	for code := 0; code < 256; code++ {
		if int(uniformBin[code]) >= Bins {
			t.Fatalf("code %d maps to out-of-range bin %d", code, uniformBin[code])
		}
	}
	// All 58 bins must be reachable.
	seen := map[uint8]bool{}
	for code := 0; code < 256; code++ {
		seen[uniformBin[code]] = true
	}
	if len(seen) != Bins {
		t.Fatalf("only %d of %d bins reachable", len(seen), Bins)
	}
}

func TestEndToEndVerifyServer(t *testing.T) {
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, _ := plat.NewEnclave()
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 8 << 20, BackingBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(plat, th, Config{
		Identities: 8,
		Placement:  PlaceSUVM,
		Heap:       heap,
		Synthetic:  false, // real LBP end to end
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := rpc.NewPool(plat, 1, 64)
	pool.Start()
	defer pool.Stop()
	srv, err := NewServer(store, SysRPC, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ok, err := srv.Verify(th, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("genuine verification rejected")
	}
	// The store only knows identities 0..7; an unknown claim errors.
	if _, err := srv.Verify(th, 99, 1); err == nil {
		t.Fatal("verification of unknown identity did not error")
	}
	// RPC mode must not exit the enclave.
	exits, _, _, _, _ := encl.Stats().Snapshot()
	before := exits
	if _, err := srv.Verify(th, 4, 2); err != nil {
		t.Fatal(err)
	}
	exits, _, _, _, _ = encl.Stats().Snapshot()
	if exits != before {
		t.Fatalf("RPC-mode verification exited the enclave %d times", exits-before)
	}
}

func TestSynthDescriptorShape(t *testing.T) {
	d := SynthDescriptor(42)
	if len(d) != DescriptorBytes {
		t.Fatalf("length %d", len(d))
	}
	if !bytes.Equal(d, SynthDescriptor(42)) {
		t.Fatal("synthetic descriptor not deterministic")
	}
	if bytes.Equal(d, SynthDescriptor(43)) {
		t.Fatal("distinct identities got identical descriptors")
	}
	for cell := 0; cell < GridSide*GridSide; cell++ {
		var sum uint32
		for b := 0; b < Bins; b++ {
			sum += binary.LittleEndian.Uint32(d[(cell*Bins+b)*4:])
		}
		if sum != CellSide*CellSide {
			t.Fatalf("cell %d mass %d want %d", cell, sum, CellSide*CellSide)
		}
	}
}

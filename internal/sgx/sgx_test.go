package sgx

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"eleos/internal/cache"
	"eleos/internal/phys"
)

func testPlatform(t testing.TB, prmBytes uint64) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{UsablePRMBytes: prmBytes})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func enterThread(t testing.TB, e *Enclave) *Thread {
	t.Helper()
	th := e.NewThread()
	th.Enter()
	return th
}

func TestEnclaveReadBackSmall(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, err := p.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := enterThread(t, e)

	addr := e.Alloc(64 << 10)
	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 7)
	}
	th.Write(addr, want)
	got := make([]byte, len(want))
	th.Read(addr, got)
	if !bytes.Equal(got, want) {
		t.Fatal("enclave memory readback mismatch")
	}
}

func TestEnclavePagingPreservesData(t *testing.T) {
	// Working set 4x the PRM: every page gets evicted and paged back at
	// least once; data must survive the seal/unseal round trips.
	p := testPlatform(t, 1<<20) // 256 frames
	e, err := p.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := enterThread(t, e)

	const size = 4 << 20
	addr := e.Alloc(size)
	buf := make([]byte, phys.PageSize)
	for pg := 0; pg < size/phys.PageSize; pg++ {
		for i := range buf {
			buf[i] = byte(pg + i)
		}
		th.Write(addr+uint64(pg*phys.PageSize), buf)
	}
	st := p.Driver.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected hardware evictions with %d-byte working set in 1 MiB PRM", size)
	}
	for pg := 0; pg < size/phys.PageSize; pg++ {
		th.Read(addr+uint64(pg*phys.PageSize), buf)
		for i := range buf {
			if buf[i] != byte(pg+i) {
				t.Fatalf("page %d byte %d: got %d want %d", pg, i, buf[i], byte(pg+i))
			}
		}
	}
	st = p.Driver.Stats()
	if st.PageIns == 0 {
		t.Fatal("expected ELDU page-ins on re-read")
	}
}

func TestDemandZero(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	addr := e.Alloc(8 * phys.PageSize)
	buf := make([]byte, 3*phys.PageSize)
	th.Read(addr+100, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched enclave memory not zero at %d: %d", i, b)
		}
	}
	if p.Driver.Stats().DemandZero == 0 {
		t.Fatal("expected demand-zero faults")
	}
}

func TestTamperedBackingPageDetected(t *testing.T) {
	p := testPlatform(t, 256<<10) // 64 frames
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	const size = 1 << 20 // 256 pages; forces eviction
	addr := e.Alloc(size)
	buf := make([]byte, phys.PageSize)
	for pg := 0; pg < size/phys.PageSize; pg++ {
		th.Write(addr+uint64(pg*phys.PageSize), buf)
	}
	// Find an evicted page and corrupt its blob.
	var victim uint64
	found := false
	for pg := 0; pg < size/phys.PageSize && !found; pg++ {
		a := addr + uint64(pg*phys.PageSize)
		if err := e.CorruptBackingPage(a); err == nil {
			victim, found = a, true
		}
	}
	if !found {
		t.Fatal("no evicted page found to corrupt")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading a tampered EPC page did not panic")
		}
	}()
	th.Read(victim, buf)
}

func TestExitCostsAndTLBFlush(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	addr := e.Alloc(16 * phys.PageSize)
	buf := make([]byte, 8)
	th.Read(addr, buf) // touch: populates TLB
	missesBefore := th.TLB.Misses()
	th.Read(addr, buf) // should hit TLB
	if th.TLB.Misses() != missesBefore {
		t.Fatal("expected TLB hit on repeated access")
	}
	c0 := th.T.Cycles()
	th.OCall(func(h *HostCtx) { h.Syscall(nil) })
	direct := th.T.Cycles() - c0
	m := p.Model
	wantMin := m.ExitRoundTrip() + m.Syscall
	if direct < wantMin {
		t.Fatalf("OCALL cost %d below direct floor %d", direct, wantMin)
	}
	// The exit must have flushed enclave TLB entries.
	th.Read(addr, buf)
	if th.TLB.Misses() == missesBefore {
		t.Fatal("expected TLB miss after OCALL (exit flushes enclave entries)")
	}
	if got, _, _, _, _ := e.stats.Exits.Load(), 0, 0, 0, 0; got == 0 {
		t.Fatal("exit not counted")
	}
}

func TestFaultCostMatchesPaperDecomposition(t *testing.T) {
	// Sustained random 4K accesses over a working set ≫ PRM should cost
	// ≈40k cycles per fault (25k direct + ~7k exit + ~8k indirect), §2.3.
	p := testPlatform(t, 8<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	const size = 64 << 20
	addr := e.Alloc(size)
	buf := make([]byte, phys.PageSize)
	rng := rand.New(rand.NewSource(1))
	// Warm: touch everything once.
	for pg := 0; pg < size/phys.PageSize; pg++ {
		th.Write(addr+uint64(pg*phys.PageSize), buf)
	}
	p.Driver.ResetStats()
	th.T.Reset()
	const ops = 2000
	for i := 0; i < ops; i++ {
		off := uint64(rng.Intn(size/phys.PageSize)) * phys.PageSize
		th.Read(addr+off, buf)
	}
	st := p.Driver.Stats()
	if st.Faults < ops/2 {
		t.Fatalf("expected mostly-faulting workload, got %d faults for %d ops", st.Faults, ops)
	}
	perFault := float64(th.T.Cycles()) / float64(st.Faults)
	if perFault < 30000 || perFault > 60000 {
		t.Fatalf("per-fault cost %.0f cycles, want ≈40k (30k..60k)", perFault)
	}
}

func TestMultiEnclaveQuota(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e1, _ := p.NewEnclave()
	if got := p.Driver.AvailableEPCBytes(); got != 4<<20 {
		t.Fatalf("single enclave share = %d, want %d", got, 4<<20)
	}
	e2, _ := p.NewEnclave()
	if got := p.Driver.AvailableEPCBytes(); got != 2<<20 {
		t.Fatalf("two-enclave share = %d, want %d", got, 2<<20)
	}
	e2.Destroy()
	if got := p.Driver.AvailableEPCBytes(); got != 4<<20 {
		t.Fatalf("share after destroy = %d, want %d", got, 4<<20)
	}
	e1.Destroy()
}

func TestPinnedPagesSurviveReclaim(t *testing.T) {
	p := testPlatform(t, 1<<20) // 256 frames
	e, _ := p.NewEnclave()
	th := enterThread(t, e)

	pinned := e.AllocPages(32)
	e.Pin(th, pinned, 32*phys.PageSize)
	// Stamp pinned pages.
	buf := make([]byte, phys.PageSize)
	for i := range buf {
		buf[i] = 0xAB
	}
	for pg := uint64(0); pg < 32; pg++ {
		th.Write(pinned+pg*phys.PageSize, buf)
	}
	faultsAfterPin := p.Driver.Stats().Faults

	// Thrash with 4x PRM of unpinned data.
	data := e.Alloc(4 << 20)
	for pg := 0; pg < (4<<20)/phys.PageSize; pg++ {
		th.Write(data+uint64(pg*phys.PageSize), buf)
	}
	// Pinned pages must still be resident: re-reading them causes no faults.
	before := p.Driver.Stats().Faults
	for pg := uint64(0); pg < 32; pg++ {
		th.Read(pinned+pg*phys.PageSize, buf[:16])
		if buf[0] != 0xAB {
			t.Fatalf("pinned page %d lost contents", pg)
		}
	}
	if got := p.Driver.Stats().Faults; got != before {
		t.Fatalf("pinned pages faulted: %d new faults (pin happened at fault count %d)", got-before, faultsAfterPin)
	}
}

func TestConcurrentEnclaveThreads(t *testing.T) {
	p := testPlatform(t, 2<<20)
	e, _ := p.NewEnclave()
	const size = 8 << 20 // 4x PRM: heavy paging under concurrency
	addr := e.Alloc(size)

	var wg sync.WaitGroup
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := enterThread(t, e)
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 256)
			region := uint64(w) * (size / workers) // disjoint regions
			for i := 0; i < 400; i++ {
				off := region + uint64(rng.Intn(size/workers-256))
				stamp := byte(w + 1)
				for j := range buf {
					buf[j] = stamp
				}
				th.Write(addr+off, buf)
				got := make([]byte, 256)
				th.Read(addr+off, got)
				for j := range got {
					if got[j] != stamp {
						errs <- fmt.Errorf("worker %d: readback mismatch at %#x", w, off)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Driver.Stats().IPIs == 0 {
		t.Fatal("expected shootdown IPIs under multi-threaded paging")
	}
}

func TestLLCPartitioningIsolatesRPCWays(t *testing.T) {
	p := testPlatform(t, 4<<20)
	p.LLC.EnablePartitioning(4)
	encT := p.NewHostThread(cache.CoSEnclave)
	rpcT := p.NewHostThread(cache.CoSRPC)

	// Enclave thread fills a region that maps into its 12 ways.
	base := p.AllocHost(1 << 20)
	buf := make([]byte, 1<<20)
	encT.HostContext().Write(base, buf)
	// RPC thread streams 8 MiB; without CAT this would evict everything.
	streamBase := p.AllocHost(8 << 20)
	rpcT.HostContext().Touch(streamBase, 8<<20, false)

	p.LLC.ResetStats()
	encT.HostContext().Read(base, buf)
	withCAT := p.LLC.Stats().Misses

	// Repeat without partitioning.
	p.LLC.DisablePartitioning()
	encT.HostContext().Write(base, buf)
	rpcT.HostContext().Touch(streamBase, 8<<20, false)
	p.LLC.ResetStats()
	encT.HostContext().Read(base, buf)
	withoutCAT := p.LLC.Stats().Misses

	if withCAT >= withoutCAT {
		t.Fatalf("CAT did not protect enclave lines: misses with=%d without=%d", withCAT, withoutCAT)
	}
}

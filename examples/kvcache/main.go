// A memcached-style cache with the paper's §5.1 split: hash chains, LRU
// links and slab bookkeeping in untrusted memory in the clear; keys,
// values and their sizes sealed behind SUVM. Fills the cache past its
// memory limit to show LRU eviction, then past the PRM size to show
// exit-less paging.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"eleos/internal/mckv"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func main() {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 48 << 20, BackingBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}

	// 160MiB of cache: well beyond the 93MiB of usable PRM. Under
	// vanilla SGX every miss on this pool would be a 40k-cycle
	// hardware fault with an enclave exit; under SUVM it is an ~8.5k
	// in-enclave software fault.
	store, err := mckv.NewStore(plat, th, mckv.Config{
		MemLimitBytes: 160 << 20,
		Placement:     mckv.PlaceSUVM,
		Heap:          heap,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := rpc.NewPool(plat, 2, 128)
	pool.Start()
	defer pool.Stop()
	srv, err := mckv.NewServer(store, mckv.SysRPC, pool)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	hwBase := plat.Driver.Stats().Faults // setup faults (EPC++ pinning, metadata)
	val := make([]byte, 4096)
	const items = 50_000 // ~200MiB of values: exceeds the pool -> LRU kicks in
	fmt.Printf("setting %d 4KiB items into a 160MiB pool...\n", items)
	for i := 0; i < items; i++ {
		key := []byte(fmt.Sprintf("item-%08d", i))
		for j := range val {
			val[j] = byte(i)
		}
		if err := srv.ServeSet(th, key, val); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("live items: %d, LRU evictions: %d, pool in use: %dMiB\n",
		store.ItemCount(), store.Evictions(), store.BytesUsed()>>20)

	// Recent items hit; the oldest were LRU-evicted.
	if n, err := srv.ServeGet(th, []byte(fmt.Sprintf("item-%08d", items-1))); err != nil || n != 4096 {
		log.Fatalf("newest item lost: n=%d err=%v", n, err)
	}
	if _, err := srv.ServeGet(th, []byte("item-00000000")); err == nil {
		log.Fatal("oldest item unexpectedly survived")
	}
	fmt.Println("LRU behaviour verified (newest present, oldest evicted)")

	st := heap.Stats()
	d := plat.Driver.Stats()
	fmt.Printf("\nSUVM faults: %d (all handled in-enclave) | hardware EPC faults while serving: %d | shootdown IPIs: %d\n",
		st.MajorFaults, d.Faults-hwBase, d.IPIs)
}

package suvm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"eleos/internal/sgx"
)

// testEnv bundles a platform, enclave, entered thread and heap.
type testEnv struct {
	plat *sgx.Platform
	encl *sgx.Enclave
	th   *sgx.Thread
	h    *Heap
}

func newEnv(t testing.TB, cfg Config) *testEnv {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	h, err := New(encl, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{plat: plat, encl: encl, th: th, h: h}
}

func smallCfg() Config {
	return Config{PageCacheBytes: 64 << 10, BackingBytes: 64 << 20} // 16 frames
}

func TestMallocReadWriteRoundTrip(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, err := e.h.Malloc(100 << 10) // 25 pages ≫ 16 frames
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 100<<10)
	rng := rand.New(rand.NewSource(42))
	rng.Read(want)
	if err := p.WriteAt(e.th, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(e.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("SUVM readback mismatch across evictions")
	}
	st := e.h.Stats()
	if st.Evictions == 0 || st.WriteBacks == 0 {
		t.Fatalf("expected evictions with working set > EPC++: %+v", st)
	}
}

func TestFreshAllocationReadsZero(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(3 * 4096)
	buf := make([]byte, 3*4096)
	buf[0] = 0xFF
	if err := p.ReadAt(e.th, 0, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh SUVM memory not zero at %d", i)
		}
	}
}

func TestLinkedAccessSkipsPageTable(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(4096)
	var b [8]byte
	if err := p.Write(e.th, b[:]); err != nil { // links
		t.Fatal(err)
	}
	if !p.Linked() {
		t.Fatal("spointer not linked after access")
	}
	st0 := e.h.Stats()
	for i := 0; i < 100; i++ {
		if err := p.Read(e.th, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	st1 := e.h.Stats()
	if st1.MinorFaults != st0.MinorFaults || st1.MajorFaults != st0.MajorFaults {
		t.Fatalf("linked accesses performed page-table lookups: %+v -> %+v", st0, st1)
	}
}

func TestAdvanceUnlinksAtPageBoundary(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(2 * 4096)
	if err := p.Write(e.th, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if !p.Linked() {
		t.Fatal("expected linked")
	}
	if err := p.Advance(e.th, 100); err != nil || !p.Linked() {
		t.Fatalf("in-page advance should keep the link (err=%v linked=%v)", err, p.Linked())
	}
	if err := p.Advance(e.th, 4096); err != nil {
		t.Fatal(err)
	}
	if p.Linked() {
		t.Fatal("page-boundary crossing must unlink (paper rule 2)")
	}
}

func TestCloneStartsUnlinked(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(4096)
	_ = p.Write(e.th, []byte{1})
	c := p.Clone()
	if c.Linked() {
		t.Fatal("clone must start unlinked (paper rule 1)")
	}
	p.Unlink(e.th)
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	e := newEnv(t, smallCfg()) // 16 frames
	var linked []*SPtr
	// Link 8 spointers, pinning 8 distinct pages.
	for i := 0; i < 8; i++ {
		p, err := e.h.Malloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(e.th, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		linked = append(linked, p)
	}
	// Thrash the remaining frames.
	big, _ := e.h.Malloc(1 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = big.WriteAt(e.th, off, buf)
	}
	// Linked pages must still be resident and correct.
	for i, p := range linked {
		if !e.h.Resident(p, 0) {
			t.Fatalf("pinned page %d was evicted", i)
		}
		b, err := p.Get(e.th)
		if err != nil || b != byte(i+1) {
			t.Fatalf("pinned page %d: got %d err %v", i, b, err)
		}
		p.Unlink(e.th)
	}
}

func TestNoHardwareFaultsUnderSUVMPaging(t *testing.T) {
	// The headline property: SUVM paging does not exit the enclave.
	// With EPC++ sized within the PRM share, heavy SUVM paging causes
	// zero hardware EPC faults, zero exits, zero IPIs after setup.
	e := newEnv(t, Config{PageCacheBytes: 4 << 20, BackingBytes: 64 << 20})
	p, _ := e.h.Malloc(16 << 20) // 4x EPC++
	buf := make([]byte, 4096)

	// Warm one pass, then measure.
	for off := uint64(0); off+4096 <= p.Size(); off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	e.plat.Driver.ResetStats()
	exits0, _, _, _, _ := e.encl.Stats().Snapshot()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		off := uint64(rng.Intn(int(p.Size()/4096))) * 4096
		_ = p.WriteAt(e.th, off, buf)
	}
	st := e.h.Stats()
	if st.MajorFaults < 1000 {
		t.Fatalf("expected heavy SUVM faulting, got %+v", st)
	}
	d := e.plat.Driver.Stats()
	exits1, _, _, _, _ := e.encl.Stats().Snapshot()
	if d.Faults != 0 || d.IPIs != 0 || exits1 != exits0 {
		t.Fatalf("SUVM paging caused hardware events: faults=%d ipis=%d exits=%d",
			d.Faults, d.IPIs, exits1-exits0)
	}
}

func TestCleanPagesSkipWriteBack(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(1 << 20)
	buf := make([]byte, 4096)
	// Populate everything (dirty) once.
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	e.h.ResetStats()
	// Read-only pass: every eviction should drop, not write back.
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.ReadAt(e.th, off, buf)
	}
	st := e.h.Stats()
	if st.CleanDrops == 0 {
		t.Fatalf("read-only workload produced no clean drops: %+v", st)
	}
	if st.WriteBacks > st.Evictions/10 {
		t.Fatalf("read-only workload wrote back too much: %+v", st)
	}
}

func TestWriteBackCleanAblation(t *testing.T) {
	cfg := smallCfg()
	cfg.WriteBackClean = true
	e := newEnv(t, cfg)
	p, _ := e.h.Malloc(1 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	e.h.ResetStats()
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.ReadAt(e.th, off, buf)
	}
	st := e.h.Stats()
	if st.CleanDrops != 0 {
		t.Fatalf("WriteBackClean must disable clean drops: %+v", st)
	}
	if st.WriteBacks != st.Evictions {
		t.Fatalf("WriteBackClean must write back every eviction: %+v", st)
	}
}

func TestTamperedBackingStoreDetected(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(1 << 20)
	stamp := bytes.Repeat([]byte{0x5A}, 4096)
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.WriteAt(e.th, off, stamp)
	}
	// Page 0 is long evicted; corrupt its ciphertext in host memory.
	if e.h.Resident(p, 0) {
		t.Skip("page 0 unexpectedly resident")
	}
	e.h.CorruptBacking(p, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("tampered SUVM page was accepted")
		}
	}()
	_ = p.ReadAt(e.th, 0, stamp)
}

func TestReplayedBackingStoreDetected(t *testing.T) {
	// Freshness: capture an old sealed blob, let the page be re-sealed
	// with new contents, then replay the old blob. Page-in must fail.
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(1 << 20)
	v1 := bytes.Repeat([]byte{0x11}, 4096)
	for off := uint64(0); off < 1<<20; off += 4096 {
		_ = p.WriteAt(e.th, off, v1)
	}
	if e.h.Resident(p, 0) {
		t.Skip("page 0 unexpectedly resident")
	}
	// Snapshot old ciphertext of page 0's backing bytes.
	old := make([]byte, 4096)
	e.plat.Host.ReadAt(p.base, old)
	// Rewrite page 0 with new content and force it out again.
	v2 := bytes.Repeat([]byte{0x22}, 4096)
	_ = p.WriteAt(e.th, 0, v2)
	for off := uint64(4096); off < 1<<20; off += 4096 {
		_ = p.ReadAt(e.th, off, v1)
	}
	if e.h.Resident(p, 0) {
		t.Skip("page 0 still resident after thrash")
	}
	// Replay the stale blob.
	e.plat.Host.WriteAt(p.base, old)
	defer func() {
		if recover() == nil {
			t.Fatal("replayed stale SUVM page was accepted (freshness violated)")
		}
	}()
	_ = p.ReadAt(e.th, 0, v1)
}

func TestDirectAccessRoundTrip(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, err := e.h.MallocDirect(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(want)
	if err := p.WriteAt(e.th, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(e.th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("direct-access readback mismatch")
	}
	st := e.h.Stats()
	if st.DirectReads == 0 || st.DirectWrites == 0 {
		t.Fatalf("direct counters not bumped: %+v", st)
	}
	if st.MajorFaults != 0 {
		t.Fatalf("direct access must bypass EPC++: %+v", st)
	}
}

func TestDirectReadAllocs(t *testing.T) {
	// The direct-access read path decrypts into pooled scratch buffers
	// (openSub appends into caller-owned space): a warm sub-page read
	// must not allocate a per-read plaintext copy. The two remaining
	// allocations are the 8-byte AAD encoding and AEAD internals.
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; count is meaningless")
	}
	e := newEnv(t, smallCfg())
	p, err := e.h.MallocDirect(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := p.WriteAt(e.th, 0, buf); err != nil {
		t.Fatal(err)
	}
	_ = p.ReadAt(e.th, 0, buf) // warm the scratch pool
	if avg := testing.AllocsPerRun(200, func() {
		_ = p.ReadAt(e.th, 0, buf)
	}); avg > 2 {
		t.Fatalf("direct sub-page read allocates %v times per call, want at most 2", avg)
	}
}

func TestDirectPartialAndMisalignedWrites(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.MallocDirect(8 << 10)
	// Write a pattern, then overwrite a misaligned span crossing a
	// sub-page boundary (the paper's unsupported case, our extension).
	base := bytes.Repeat([]byte{0xAA}, 8<<10)
	_ = p.WriteAt(e.th, 0, base)
	patch := bytes.Repeat([]byte{0xBB}, 600)
	_ = p.WriteAt(e.th, 800, patch) // 800..1400 crosses the 1024 boundary
	got := make([]byte, 8<<10)
	_ = p.ReadAt(e.th, 0, got)
	for i := range got {
		want := byte(0xAA)
		if i >= 800 && i < 1400 {
			want = 0xBB
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], want)
		}
	}
}

func TestDirectTamperDetected(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.MallocDirect(4 << 10)
	_ = p.WriteAt(e.th, 0, bytes.Repeat([]byte{1}, 4<<10))
	e.h.CorruptBacking(p, 10)
	buf := make([]byte, 16)
	if err := p.ReadAt(e.th, 0, buf); err == nil {
		t.Fatal("tampered direct sub-page was accepted")
	}
}

func TestFreeAndReuse(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(4096)
	_ = p.Write(e.th, []byte{1, 2, 3})
	if err := e.h.Free(e.th, p); err != nil {
		t.Fatal(err)
	}
	if err := e.h.Free(e.th, p); err == nil {
		t.Fatal("double free not detected")
	}
	q, err := e.h.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.h.Free(e.th, q) }()
}

func TestOutOfRangeAccesses(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(100)
	buf := make([]byte, 8)
	if err := p.ReadAt(e.th, 96, buf); err == nil {
		t.Fatal("out-of-range read not rejected")
	}
	if err := p.WriteAt(e.th, 100, buf); err == nil {
		t.Fatal("out-of-range write not rejected")
	}
	if err := p.Seek(e.th, 101); err == nil {
		t.Fatal("out-of-range seek not rejected")
	}
	if err := p.Advance(e.th, -1); err == nil {
		t.Fatal("negative advance not rejected")
	}
}

func TestSoftFaultLatencyMatchesPaper(t *testing.T) {
	// §6.1.2: SUVM page-in ≈8.5k cycles (read faults), evict+page-in
	// ≈14k (write workloads). Allow generous bands: the shape that
	// matters is "3x-5x cheaper than the ≈40k hardware fault".
	e := newEnv(t, Config{PageCacheBytes: 4 << 20, BackingBytes: 128 << 20})
	p, _ := e.h.Malloc(32 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off+4096 <= p.Size(); off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}

	measure := func(write bool) float64 {
		rng := rand.New(rand.NewSource(9))
		const ops = 4000
		run := func() {
			for i := 0; i < ops; i++ {
				off := uint64(rng.Intn(int(p.Size()/4096))) * 4096
				if write {
					_ = p.WriteAt(e.th, off, buf)
				} else {
					_ = p.ReadAt(e.th, off, buf)
				}
			}
		}
		run() // reach steady state (EPC++ holds this access pattern's pages)
		e.h.ResetStats()
		run()
		st := e.h.Stats()
		if st.MajorFaults < ops/2 {
			t.Fatalf("not fault-bound: %+v", st)
		}
		return float64(st.FaultCycles) / float64(st.MajorFaults)
	}

	read := measure(false)
	write := measure(true)
	if read < 5000 || read > 13000 {
		t.Errorf("read fault cost %.0f cycles, want ≈8.5k", read)
	}
	if write < 9000 || write > 21000 {
		t.Errorf("write fault cost %.0f cycles, want ≈14k", write)
	}
	if write <= read {
		t.Errorf("write faults (%.0f) should cost more than read faults (%.0f)", write, read)
	}
}

func TestResizeShrinkAndGrow(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20}) // 256 frames
	p, _ := e.h.Malloc(2 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off < 2<<20; off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	if err := e.h.ResizeTo(e.th, 256<<10); err != nil { // shrink to 64 frames
		t.Fatal(err)
	}
	if got := e.h.ActiveFrames(); got != 64 {
		t.Fatalf("ActiveFrames=%d want 64", got)
	}
	// Data must survive the shrink.
	want := bytes.Repeat([]byte{0x77}, 4096)
	_ = p.WriteAt(e.th, 0, want)
	got := make([]byte, 4096)
	_ = p.ReadAt(e.th, 0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across shrink")
	}
	if err := e.h.ResizeTo(e.th, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := e.h.ActiveFrames(); got != 256 {
		t.Fatalf("ActiveFrames=%d want 256 after grow", got)
	}
	_ = p.ReadAt(e.th, 0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across grow")
	}
}

func TestBalloonTickTracksDriverShare(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 16 << 20, BackingBytes: 64 << 20})
	if err := e.h.BalloonTick(e.th); err != nil {
		t.Fatal(err)
	}
	single := e.h.ActiveFrames()
	// A second enclave halves the PRM share; the balloon must deflate.
	e2, _ := e.plat.NewEnclave()
	defer e2.Destroy()
	if err := e.h.BalloonTick(e.th); err != nil {
		t.Fatal(err)
	}
	double := e.h.ActiveFrames()
	if double >= single {
		t.Fatalf("balloon did not deflate under PRM pressure: %d -> %d frames", single, double)
	}
}

func TestConcurrentHeapAccess(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 256 << 10, BackingBytes: 64 << 20})
	const workers = 4
	const span = 1 << 20
	ptrs := make([]*SPtr, workers)
	for i := range ptrs {
		var err error
		ptrs[i], err = e.h.Malloc(span)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := e.encl.NewThread()
			th.Enter()
			p := ptrs[w]
			rng := rand.New(rand.NewSource(int64(w)))
			stamp := bytes.Repeat([]byte{byte(w + 1)}, 512)
			got := make([]byte, 512)
			for i := 0; i < 500; i++ {
				off := uint64(rng.Intn(span - 512))
				if err := p.WriteAt(th, off, stamp); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				if err := p.ReadAt(th, off, got); err != nil {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				if !bytes.Equal(got, stamp) {
					t.Errorf("worker %d: readback mismatch at %d", w, off)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestEvictionPolicies(t *testing.T) {
	for _, pol := range []EvictionPolicy{PolicyClock, PolicyFIFO, PolicyRandom} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallCfg()
			cfg.Policy = pol
			e := newEnv(t, cfg)
			p, _ := e.h.Malloc(1 << 20)
			want := make([]byte, 1<<20)
			rand.New(rand.NewSource(5)).Read(want)
			if err := p.WriteAt(e.th, 0, want); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			if err := p.ReadAt(e.th, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("policy %v: readback mismatch", pol)
			}
			if e.h.Stats().Evictions == 0 {
				t.Fatalf("policy %v: no evictions", pol)
			}
		})
	}
}

func TestPageSizeVariants(t *testing.T) {
	for _, ps := range []int{512, 2048, 4096, 16384} {
		ps := ps
		t.Run(formatBytes(ps), func(t *testing.T) {
			cfg := Config{PageCacheBytes: 64 << 10, PageSize: ps, SubPageSize: min(ps, 512), BackingBytes: 64 << 20}
			e := newEnv(t, cfg)
			p, _ := e.h.Malloc(512 << 10)
			want := make([]byte, 512<<10)
			rand.New(rand.NewSource(int64(ps))).Read(want)
			if err := p.WriteAt(e.th, 0, want); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			if err := p.ReadAt(e.th, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("readback mismatch")
			}
		})
	}
}

func formatBytes(n int) string {
	if n >= 1024 {
		return string(rune('0'+n/1024)) + "KiB"
	}
	return string(rune('0'+n)) + "B"
}

func TestMemcpyMemsetCompare(t *testing.T) {
	e := newEnv(t, smallCfg())
	a, _ := e.h.Malloc(64 << 10)
	b, _ := e.h.Malloc(64 << 10)
	want := make([]byte, 64<<10)
	rand.New(rand.NewSource(11)).Read(want)
	_ = a.WriteAt(e.th, 0, want)
	if err := Memcpy(e.th, b, 0, a, 0, 64<<10); err != nil {
		t.Fatal(err)
	}
	if c, err := b.CompareAt(e.th, 0, want); err != nil || c != 0 {
		t.Fatalf("CompareAt after Memcpy: c=%d err=%v", c, err)
	}
	if err := b.MemsetAt(e.th, 100, 1000, 0xEE); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	_ = b.ReadAt(e.th, 100, got)
	for i, x := range got {
		if x != 0xEE {
			t.Fatalf("memset byte %d = %#x", i, x)
		}
	}
	want[0] ^= 1
	if c, _ := a.CompareAt(e.th, 0, want); c == 0 {
		t.Fatal("CompareAt missed a difference")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eleos/internal/sgx"
)

// TestStressMixedSubmissionUnderStop hammers one pool from many enclave
// threads mixing all three submission flavours while Stop lands
// mid-flight. Invariant: every accepted request executes exactly once
// (drain), every refused one fails with ErrStopped, and nothing hangs.
// Run under -race, this is the pool's memory-safety gauntlet.
func TestStressMixedSubmissionUnderStop(t *testing.T) {
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(plat, 4, 128)
	pool.Start()

	var executed, accepted atomic.Int64
	work := func(h *sgx.HostCtx) {
		h.Syscall(nil)
		executed.Add(1)
	}

	const callers = 8
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := encl.NewThread()
			th.Enter()
			var futs []*Future
			drain := func() {
				for _, f := range futs {
					f.Wait(th)
				}
			}
			defer drain()
			fns := []func(*sgx.HostCtx){work, work, work}
			for i := 0; ; i++ {
				switch i % 3 {
				case 0:
					if err := pool.Call(th, work); err != nil {
						if !errors.Is(err, ErrStopped) {
							t.Errorf("Call: %v", err)
						}
						return
					}
					accepted.Add(1)
				case 1:
					f, err := pool.CallAsync(th, work)
					if err != nil {
						if !errors.Is(err, ErrStopped) {
							t.Errorf("CallAsync: %v", err)
						}
						return
					}
					accepted.Add(1)
					futs = append(futs, f)
					if len(futs) > 8 {
						futs[0].Wait(th)
						futs = futs[1:]
					}
				case 2:
					if err := pool.CallBatch(th, fns); err != nil {
						if !errors.Is(err, ErrStopped) {
							t.Errorf("CallBatch: %v", err)
						}
						return
					}
					accepted.Add(int64(len(fns)))
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let the callers build a backlog
	pool.Stop()
	wg.Wait()

	if executed.Load() != accepted.Load() {
		t.Fatalf("executed %d of %d accepted requests", executed.Load(), accepted.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("stress run accepted no requests before Stop")
	}
	if st := pool.Stats(); int64(st.WorkerOps) != accepted.Load() {
		t.Fatalf("WorkerOps = %d, accepted = %d", st.WorkerOps, accepted.Load())
	}

	// The pool refuses late arrivals after the storm.
	th := encl.NewThread()
	th.Enter()
	if err := pool.Call(th, work); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-stop Call error = %v, want ErrStopped", err)
	}
}

// TestStressRepeatedStopStart cycles the pool's lifecycle under load:
// each round accepts some work, stops, verifies refusal, and restarts.
func TestStressRepeatedStopStart(t *testing.T) {
	plat := newPlat(t)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 2, 64)

	var executed atomic.Int64
	work := func(h *sgx.HostCtx) { executed.Add(1) }
	var want int64
	for round := 0; round < 10; round++ {
		pool.Start()
		for i := 0; i < 50; i++ {
			if err := pool.Call(th, work); err != nil {
				t.Fatalf("round %d call %d: %v", round, i, err)
			}
			want++
		}
		f, err := pool.CallAsync(th, work)
		if err != nil {
			t.Fatalf("round %d async: %v", round, err)
		}
		want++
		pool.Stop()
		f.Wait(th) // accepted before Stop, so drained and waitable after
		if err := pool.Call(th, work); !errors.Is(err, ErrStopped) {
			t.Fatalf("round %d: stopped pool accepted a call (err=%v)", round, err)
		}
	}
	if executed.Load() != want {
		t.Fatalf("executed %d of %d", executed.Load(), want)
	}
}

package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

type fixture struct {
	plat *sgx.Platform
	encl *sgx.Enclave
	th   *sgx.Thread
	heap *suvm.Heap
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 1 << 20, BackingBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{plat: plat, encl: encl, th: th, heap: heap}
}

// mems returns one region of each placement kind.
func (f *fixture) mems(t testing.TB, size uint64) map[string]Mem {
	t.Helper()
	sr, err := NewSUVMRegion(f.heap, size)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Mem{
		"host":    HostRegion(f.plat, size),
		"enclave": EnclaveRegion(f.encl, size),
		"suvm":    sr,
	}
}

func TestFixedTableAllPlacementsAllLayouts(t *testing.T) {
	f := newFixture(t)
	const entries = 4096
	for _, layout := range []Layout{OpenAddressing, Chaining} {
		buckets := uint64(2 * entries)
		size := FixedTableMemSize(layout, buckets, entries)
		for name, mem := range f.mems(t, size) {
			t.Run(fmt.Sprintf("%s/%s", layout, name), func(t *testing.T) {
				tab, err := NewFixedTable(mem, layout, buckets, entries)
				if err != nil {
					t.Fatal(err)
				}
				for k := uint64(1); k <= entries; k++ {
					if err := tab.Put(f.th, k, k*3); err != nil {
						t.Fatalf("put %d: %v", k, err)
					}
				}
				for k := uint64(1); k <= entries; k++ {
					v, err := tab.Get(f.th, k)
					if err != nil || v != k*3 {
						t.Fatalf("get %d: v=%d err=%v", k, v, err)
					}
				}
				if err := tab.Add(f.th, 7, 100); err != nil {
					t.Fatal(err)
				}
				if v, _ := tab.Get(f.th, 7); v != 7*3+100 {
					t.Fatalf("Add result %d", v)
				}
				if _, err := tab.Get(f.th, entries+999); err != ErrNotFound {
					t.Fatalf("missing key error = %v", err)
				}
				if _, err := tab.Get(f.th, 0); err != ErrBadKey {
					t.Fatalf("zero key error = %v", err)
				}
			})
		}
	}
}

func TestBulkImageMatchesIncrementalInserts(t *testing.T) {
	f := newFixture(t)
	const entries = 1000
	buckets := uint64(2048)
	for _, layout := range []Layout{OpenAddressing, Chaining} {
		size := FixedTableMemSize(layout, buckets, entries)
		img, err := BuildFixedImage(layout, buckets, entries)
		if err != nil {
			t.Fatal(err)
		}
		mem := HostRegion(f.plat, size)
		tab, _ := NewFixedTable(mem, layout, buckets, entries)
		for k := uint64(1); k <= entries; k++ {
			if err := tab.Put(f.th, k, k); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]byte, size)
		if err := mem.Read(f.th, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, img) {
			t.Fatalf("%v: bulk image differs from incremental inserts", layout)
		}
	}
}

func TestFixedTableFull(t *testing.T) {
	f := newFixture(t)
	mem := HostRegion(f.plat, FixedTableMemSize(Chaining, 4, 3))
	tab, _ := NewFixedTable(mem, Chaining, 4, 3)
	for k := uint64(1); k <= 3; k++ {
		if err := tab.Put(f.th, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Put(f.th, 99, 1); err != ErrFull {
		t.Fatalf("overfull chain insert error = %v", err)
	}
}

func TestBlobTable(t *testing.T) {
	f := newFixture(t)
	sr, err := NewSUVMRegion(f.heap, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewBlobTable(sr, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	type kvPair struct{ k, v []byte }
	var pairs []kvPair
	for i := 0; i < 200; i++ {
		k := make([]byte, 40)
		v := make([]byte, 1000+rng.Intn(4096))
		rng.Read(k)
		rng.Read(v)
		pairs = append(pairs, kvPair{k, v})
		if err := tab.Put(f.th, k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	val := make([]byte, 8192)
	for i, p := range pairs {
		n, err := tab.Get(f.th, p.k, val)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(val[:n], p.v) {
			t.Fatalf("get %d: value mismatch", i)
		}
	}
	// Update in place.
	nv := make([]byte, len(pairs[0].v))
	rng.Read(nv)
	if err := tab.Put(f.th, pairs[0].k, nv); err != nil {
		t.Fatal(err)
	}
	n, _ := tab.Get(f.th, pairs[0].k, val)
	if !bytes.Equal(val[:n], nv) {
		t.Fatal("in-place update lost")
	}
	if _, err := tab.Get(f.th, []byte("no-such-key......"), val); err != ErrNotFound {
		t.Fatalf("missing blob key error = %v", err)
	}
}

func TestFixedTablePropertyVsMap(t *testing.T) {
	// Property test: a FixedTable over any placement behaves like a Go
	// map under random Put/Add/Get sequences.
	f := newFixture(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const entries = 512
		layout := Layout(rng.Intn(2))
		mem := HostRegion(f.plat, FixedTableMemSize(layout, 1024, entries))
		tab, err := NewFixedTable(mem, layout, 1024, entries)
		if err != nil {
			return false
		}
		oracle := map[uint64]uint64{}
		for i := 0; i < 2000; i++ {
			key := uint64(rng.Intn(entries)) + 1
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				if len(oracle) >= entries {
					if _, ok := oracle[key]; !ok {
						continue
					}
				}
				if err := tab.Put(f.th, key, v); err != nil {
					return false
				}
				oracle[key] = v
			case 1:
				if len(oracle) >= entries {
					if _, ok := oracle[key]; !ok {
						continue
					}
				}
				if err := tab.Add(f.th, key, 5); err != nil {
					return false
				}
				oracle[key] += 5
			case 2:
				v, err := tab.Get(f.th, key)
				want, ok := oracle[key]
				if !ok {
					if err != ErrNotFound {
						return false
					}
				} else if err != nil || v != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

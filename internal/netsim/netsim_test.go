package netsim

import (
	"testing"

	"eleos/internal/cache"
	"eleos/internal/sgx"
)

func newPlat(t testing.TB) *sgx.Platform {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeliverRecvDataFlow(t *testing.T) {
	p := newPlat(t)
	s := NewSocket(p, 64<<10)
	defer s.Close()
	th := p.NewHostThread(cache.CoSDefault)

	payload := []byte("request bytes over the wire")
	s.Deliver(payload)
	n := s.Recv(th.HostContext(), len(payload))
	if n != len(payload) {
		t.Fatalf("recv returned %d", n)
	}
	got := make([]byte, len(payload))
	th.HostContext().Read(s.UserBuf(), got)
	if string(got) != string(payload) {
		t.Fatalf("staged payload %q", got)
	}
}

func TestRecvChargesSyscallAndBuffers(t *testing.T) {
	p := newPlat(t)
	s := NewSocket(p, 64<<10)
	defer s.Close()
	th := p.NewHostThread(cache.CoSDefault)
	m := p.Model

	before := th.T.Cycles()
	s.Recv(th.HostContext(), 1024)
	small := th.T.Cycles() - before
	if small <= m.Syscall {
		t.Fatal("recv charged no buffer traffic")
	}
	before = th.T.Cycles()
	s.Recv(th.HostContext(), 16<<10)
	large := th.T.Cycles() - before
	if large <= small {
		t.Fatal("larger recv must cost more (its pollution scales)")
	}
}

func TestRecvPollutionRotates(t *testing.T) {
	// Consecutive receives must touch fresh kernel lines (skb slab
	// churn), not re-hit one warm buffer — the LLC miss count over many
	// calls should stay high.
	p := newPlat(t)
	s := NewSocket(p, 64<<10)
	defer s.Close()
	th := p.NewHostThread(cache.CoSDefault)
	for i := 0; i < 16; i++ {
		s.Recv(th.HostContext(), 1024)
	}
	st := p.LLC.Stats()
	if st.Misses < st.Hits {
		t.Fatalf("kernel path self-cached: %d misses, %d hits", st.Misses, st.Hits)
	}
}

func TestWireBounds(t *testing.T) {
	// 10 Gb/s carries at most ~812k minimum-size request/response pairs
	// per second of 1500-byte frames; sanity-check magnitudes.
	if tp := LinkBoundThroughput(256 << 10); tp < 4000 || tp > 5000 {
		t.Fatalf("256KB requests: %v req/s, want ≈4.6k on 10GbE", tp)
	}
	if got := CapToLink(1e9, 1500); got >= 1e9 {
		t.Fatal("cap did not bound an absurd CPU throughput")
	}
	if got := CapToLink(100, 1500); got != 100 {
		t.Fatal("cap must not lower sub-link throughput")
	}
	if WireSeconds(3000) <= WireSeconds(1500) {
		t.Fatal("wire time must grow with size")
	}
}

func TestOwnerGuardSequentialUse(t *testing.T) {
	// The owner guard must be invisible to well-behaved callers:
	// repeated Recv/Send from one thread, then from a different thread,
	// all pass (the guard clears between calls — it is not an affinity
	// check).
	p := newPlat(t)
	s := NewSocket(p, 64<<10)
	defer s.Close()
	th1 := p.NewHostThread(cache.CoSDefault)
	th2 := p.NewHostThread(cache.CoSDefault)
	for i := 0; i < 4; i++ {
		s.Deliver([]byte("x"))
		s.Recv(th1.HostContext(), 64)
		s.Send(th2.HostContext(), 64)
	}
	if got := s.owner.Load(); got != 0 {
		t.Fatalf("owner guard left set to %d after sequential use", got)
	}
}

func TestOwnerGuardPanicsOnConcurrentUse(t *testing.T) {
	// Simulate a second thread being mid-Recv by pre-setting the owner
	// word, exactly the state a racing CAS would observe.
	p := newPlat(t)
	s := NewSocket(p, 64<<10)
	defer s.Close()
	th := p.NewHostThread(cache.CoSDefault)

	s.owner.Store(int64(99) + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Recv on a busy socket did not panic")
		}
	}()
	s.Recv(th.HostContext(), 64)
}

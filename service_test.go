package eleos

import (
	"errors"
	"sync"
	"testing"
)

// Public-API tests of the multi-service surface: NewService validation,
// cross-call semantics and accounting, the Runtime.Stats rollup, and
// Destroy's idempotency — including destroying an enclave while one of
// its services is mid-fault (the -race regression for the teardown
// path).

func TestNewServiceValidation(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	if _, err := encl.NewService("", WithServiceEPC(64<<10)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nameless service: got %v, want ErrBadConfig", err)
	}
	if _, err := encl.NewService("noepc"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("service without EPC share: got %v, want ErrBadConfig", err)
	}
	s, err := encl.NewService("ok", WithServiceEPC(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encl.NewService("ok", WithServiceEPC(64<<10)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate service name: got %v, want ErrBadConfig", err)
	}
	if got := encl.Services(); len(got) != 1 || got[0] != s {
		t.Fatalf("Services() = %v, want [ok]", got)
	}
}

func TestCrossCallSemantics(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	a, err := encl.NewService("a", WithServiceEPC(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := encl.NewService("b", WithServiceEPC(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	ctx := a.NewContext()
	defer ctx.Close()

	if err := ctx.CrossCall(nil, func(*Ctx) {}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil target: got %v, want ErrBadConfig", err)
	}

	// The crossing is a function call plus descriptor touch: exactly
	// 2xL1 + one spinlock, no doorbell, no exit.
	m := rt.Platform().Model
	c0 := ctx.Cycles()
	var calleeSvc *Service
	if err := ctx.CrossCall(b, func(cc *Ctx) { calleeSvc = cc.Service() }); err != nil {
		t.Fatal(err)
	}
	if got, want := ctx.Cycles()-c0, 2*m.L1Hit+m.SpinLock; got != want {
		t.Fatalf("CrossCall charged %d cycles, want %d", got, want)
	}
	if calleeSvc != b {
		t.Fatal("callee context not bound to the target service")
	}
	if a.Stats().CrossCallsOut != 1 || b.Stats().CrossCallsIn != 1 {
		t.Fatalf("cross-call accounting: a.out=%d b.in=%d, want 1/1",
			a.Stats().CrossCallsOut, b.Stats().CrossCallsIn)
	}

	// The callee context allocates from the target's domain.
	if err := ctx.CrossCall(b, func(cc *Ctx) {
		p, err := cc.Malloc(8 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WriteAt(0, []byte("hi")); err != nil {
			t.Fatal(err)
		}
		if err := p.Free(); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Heap.MajorFaults == 0 {
		t.Fatal("callee allocation did not fault in the target's domain")
	}
	if a.Stats().Heap.MajorFaults != 0 {
		t.Fatal("callee allocation charged the caller's domain")
	}

	// Services of another enclave need real RPC, not CrossCall.
	encl2, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl2.Destroy()
	far, err := encl2.NewService("far", WithServiceEPC(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.CrossCall(far, func(*Ctx) {}); !errors.Is(err, ErrCrossEnclave) {
		t.Fatalf("cross-enclave CrossCall: got %v, want ErrCrossEnclave", err)
	}
}

func TestRuntimeStatsServiceRollup(t *testing.T) {
	rt := newRuntime(t)
	e0, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Destroy()
	e1, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Destroy()
	if _, err := e0.NewService("alpha", WithServiceEPC(64<<10)); err != nil {
		t.Fatal(err)
	}
	beta, err := e1.NewService("beta", WithServiceEPC(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	ctx := beta.NewContext()
	p, err := ctx.Malloc(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteAt(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	ctx.Close()

	st := rt.Stats()
	if len(st.Services) != 2 {
		t.Fatalf("Stats().Services has %d entries, want 2", len(st.Services))
	}
	byName := map[string]ServiceStats{}
	for _, s := range st.Services {
		byName[s.Name] = s
	}
	if byName["alpha"].Enclave != 0 || byName["beta"].Enclave != 1 {
		t.Fatalf("service->enclave attribution wrong: %+v", st.Services)
	}
	if byName["beta"].Heap.MajorFaults == 0 {
		t.Fatal("beta's faults missing from the runtime rollup")
	}
}

func TestEnclaveDestroyIdempotent(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encl.NewService("svc", WithServiceEPC(64<<10)); err != nil {
		t.Fatal(err)
	}
	encl.Destroy()
	encl.Destroy() // second call is a no-op

	// Concurrent double-destroy: exactly one caller tears down.
	encl2, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			encl2.Destroy()
		}()
	}
	wg.Wait()
	if got := len(rt.Stats().Heaps); got != 0 {
		t.Fatalf("%d enclaves still registered after destroy", got)
	}
}

// TestDestroyRacesServiceFault tears an enclave down while a service
// context is mid-fault on its domain. The destroy path quiesces the
// fault pipeline (exclusive epoch) before releasing the hardware pages,
// so under -race this exercises the teardown ordering; the faulting
// worker may finish or observe demand-zero pages, but must not crash.
func TestDestroyRacesServiceFault(t *testing.T) {
	for round := 0; round < 8; round++ {
		rt := newRuntime(t)
		encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 2 << 20})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := encl.NewService("victim", WithServiceEPC(256<<10))
		if err != nil {
			t.Fatal(err)
		}
		ctx := svc.NewContext()
		p, err := ctx.Malloc(1 << 20) // 4x the carve: every page faults
		if err != nil {
			t.Fatal(err)
		}
		started := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 64)
			close(started)
			for off := uint64(0); off < 1<<20; off += 4096 {
				// Errors are fine once the enclave is gone; crashes are not.
				if err := p.WriteAt(off, buf); err != nil {
					return
				}
			}
		}()
		<-started
		encl.Destroy()
		<-done
		ctx.Close()
	}
}

package suvm

import (
	"fmt"
	"sync"
	"time"

	"eleos/internal/phys"
	"eleos/internal/sgx"
)

// ResizeTo adjusts the EPC++ capacity to targetBytes (clamped to
// [4 pages, configured capacity]). Shrinking evicts the vacated frames'
// contents (write-back if dirty) and returns their EPC pages to the SGX
// driver; growing re-pins previously released pages. This is the
// operation the paper's swapper thread performs when the driver reports
// PRM pressure (§3.3) — and, unlike the paper's prototype (§4.2, which
// fixed the size at initialization), it works dynamically.
func (h *Heap) ResizeTo(th *sgx.Thread, targetBytes uint64) error {
	target := int(targetBytes / h.pageSize)
	if target < 4 {
		target = 4
	}
	if target > len(h.frames) {
		target = len(h.frames)
	}
	h.faultMu.Lock()
	defer h.faultMu.Unlock()
	if target == h.activeFrames {
		return nil
	}
	h.stats.resizes.Add(1)
	if target < h.activeFrames {
		return h.shrinkLocked(th, target)
	}
	return h.growLocked(th, target)
}

func (h *Heap) shrinkLocked(th *sgx.Thread, target int) error {
	// Vacate the top frames. Pinned (linked) frames cannot be vacated;
	// fail fast so the caller (swapper tick or explicit resize) retries.
	for f := len(h.frames) - 1; f >= target; f-- {
		fm := &h.frames[f]
		if fm.disabled {
			continue
		}
		if fm.bsPage != noBSPage {
			if !h.evictFrameLocked(th, int32(f)) {
				return fmt.Errorf("suvm: cannot shrink EPC++ below %d frames: frame %d is pinned by a linked spointer", f+1, f)
			}
		}
		fm.disabled = true
	}
	// Drop the vacated frames from the free list.
	h.freeMu.Lock()
	kept := h.freeFrames[:0]
	for _, f := range h.freeFrames {
		if !h.frames[f].disabled {
			kept = append(kept, f)
		}
	}
	h.freeFrames = kept
	h.freeMu.Unlock()
	h.activeFrames = target
	// Return the underlying EPC pages to the driver (whole 4 KiB pages
	// only; with sub-4K SUVM pages the tail partial page is kept).
	start := uint64(target) * h.pageSize
	end := uint64(len(h.frames)) * h.pageSize
	start = (start + phys.PageSize - 1) &^ (phys.PageSize - 1)
	if end > start {
		h.encl.FreePages(h.frameBase+start, end-start)
	}
	return nil
}

func (h *Heap) growLocked(th *sgx.Thread, target int) error {
	start := uint64(h.activeFrames) * h.pageSize
	end := uint64(target) * h.pageSize
	start = (start + phys.PageSize - 1) &^ (phys.PageSize - 1)
	if end > start {
		// Re-materialize and pin the underlying EPC pages.
		h.encl.Pin(th, h.frameBase+start, end-start)
	}
	h.freeMu.Lock()
	for f := target - 1; f >= h.activeFrames; f-- {
		h.frames[f].disabled = false
		h.frames[f].bsPage = noBSPage
		h.freeFrames = append(h.freeFrames, int32(f))
	}
	h.freeMu.Unlock()
	h.activeFrames = target
	return nil
}

// ReclaimFreePool pre-evicts pages until the free pool holds at least
// target frames (or nothing evictable remains) — the §3.2.3 swapper
// duty of "maintaining enough pages in the EPC++ free memory pool".
// Run from a dedicated swapper thread, it moves eviction work (dirty
// write-backs included) off the application threads' fault critical
// path: their major faults then find free frames and pay only the
// page-in.
func (h *Heap) ReclaimFreePool(th *sgx.Thread, target int) int {
	if target > h.activeFrames/2 {
		target = h.activeFrames / 2
	}
	h.faultMu.Lock()
	defer h.faultMu.Unlock()
	reclaimed := 0
	for {
		h.freeMu.Lock()
		n := len(h.freeFrames)
		h.freeMu.Unlock()
		if n >= target {
			return reclaimed
		}
		v := h.pickVictimLocked()
		if v < 0 {
			return reclaimed
		}
		if !h.evictFrameLocked(th, v) {
			continue
		}
		h.freeMu.Lock()
		h.freeFrames = append(h.freeFrames, v)
		h.freeMu.Unlock()
		reclaimed++
	}
}

// BalloonTick queries the SGX driver for this enclave's PRM share and
// resizes EPC++ to fit inside it, leaving a fraction of headroom for the
// enclave's other memory (page tables, application heap). This is the
// cooperative memory management of §3.3 — the enclave-side analogue of
// VM ballooning, except the trusted runtime can directly shrink its own
// working set.
func (h *Heap) BalloonTick(th *sgx.Thread) error {
	avail := h.plat.Driver.AvailableEPCBytes()
	target := avail - avail/4 // keep 25% headroom for non-EPC++ enclave memory
	if target > h.cfg.PageCacheBytes {
		target = h.cfg.PageCacheBytes
	}
	return h.ResizeTo(th, target)
}

// Swapper is the background EPC++ swapper thread of §3.2.3: a goroutine
// owning a dedicated enclave thread that periodically re-balloons the
// page cache in response to driver-reported PRM pressure and tops up
// the free frame pool so application faults skip the eviction work.
type Swapper struct {
	stop chan struct{}
	done sync.WaitGroup
}

// freePoolFraction is the share of EPC++ the swapper keeps free.
const freePoolFraction = 32 // 1/32 ≈ 3%

// StartSwapper launches the background swapper with the given polling
// interval. The returned Swapper must be stopped before the heap's
// enclave is destroyed.
func (h *Heap) StartSwapper(interval time.Duration) *Swapper {
	s := &Swapper{stop: make(chan struct{})}
	th := h.encl.NewThread()
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				th.Enter()
				// Best effort: a transiently pinned frame may block a
				// shrink; the next tick retries.
				_ = h.BalloonTick(th)
				h.ReclaimFreePool(th, h.ActiveFrames()/freePoolFraction)
				th.Exit()
			}
		}
	}()
	return s
}

// Stop terminates the swapper and waits for it to finish.
func (s *Swapper) Stop() {
	close(s.stop)
	s.done.Wait()
}

package traffic_test

import (
	"reflect"
	"testing"

	"eleos/internal/loadgen"
	"eleos/internal/traffic"
)

// procs builds one instance of each arrival process from a seed, with
// parameters small enough that a short schedule crosses phase
// boundaries.
func procs(seed int64) []traffic.Process {
	return []traffic.Process{
		traffic.NewPoisson(seed, 1000),
		traffic.NewBurst(seed, traffic.BurstConfig{
			OnMeanGap: 300, OffMeanGap: 3000,
			OnMeanCycles: 20_000, OffMeanCycles: 40_000,
		}),
		traffic.NewDiurnal(seed, []traffic.PhaseRate{
			{Name: "night", MeanGap: 4000, Cycles: 50_000},
			{Name: "day", MeanGap: 1000, Cycles: 50_000},
			{Name: "peak", MeanGap: 500, Cycles: 30_000},
		}),
	}
}

// fleetOver wraps a process in the standard test fleet.
func fleetOver(seed int64, p traffic.Process) *traffic.Fleet {
	return traffic.NewFleet(seed, p, traffic.FleetConfig{
		Clients:      16,
		MeanLifetime: 100_000,
		SlowFraction: 0.25,
		StallCycles:  500,
		Keys:         loadgen.NewKeyGen(seed, 4096),
	})
}

// TestScheduleDeterminism is the golden determinism property: two
// generators built from identical seeds emit identical schedules,
// request by request, for every process type.
func TestScheduleDeterminism(t *testing.T) {
	const n = 5_000
	a, b := procs(42), procs(42)
	for i := range a {
		fa, fb := fleetOver(7, a[i]), fleetOver(7, b[i])
		sa, sb := fa.Schedule(n), fb.Schedule(n)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("%s: identical seeds produced different schedules", a[i].Name())
		}
		if fa.Churns() != fb.Churns() || fa.SlowRequests() != fb.SlowRequests() {
			t.Fatalf("%s: identical seeds produced different fleet stats", a[i].Name())
		}
		// And a different seed produces a different schedule.
		if reflect.DeepEqual(sa, fleetOver(8, procs(43)[i]).Schedule(n)) {
			t.Fatalf("%s: different seeds produced identical schedules", a[i].Name())
		}
	}
}

func TestScheduleShape(t *testing.T) {
	const n = 20_000
	for _, p := range procs(1) {
		name := p.Name()
		nPhases := len(p.Phases())
		f := fleetOver(2, p)
		var prev uint64
		seen := make([]int, nPhases)
		for i := 0; i < n; i++ {
			r := f.Next()
			if r.Seq != i {
				t.Fatalf("%s: Seq = %d, want %d", name, r.Seq, i)
			}
			if r.Arrival < prev {
				t.Fatalf("%s: arrivals not monotone: %d after %d", name, r.Arrival, prev)
			}
			prev = r.Arrival
			if r.Phase < 0 || r.Phase >= nPhases {
				t.Fatalf("%s: phase %d out of range [0,%d)", name, r.Phase, nPhases)
			}
			seen[r.Phase]++
			if (r.Stall > 0) != (r.Stall == 500) && r.Stall != 0 {
				t.Fatalf("%s: unexpected stall %d", name, r.Stall)
			}
			if r.Key == 0 || r.Key > 4096 {
				t.Fatalf("%s: key %d outside keygen space", name, r.Key)
			}
		}
		for ph, c := range seen {
			if c == 0 {
				t.Errorf("%s: phase %q never produced an arrival in %d requests",
					name, p.Phases()[ph], n)
			}
		}
	}
}

func TestFleetChurnAndSlowClients(t *testing.T) {
	p := traffic.NewPoisson(3, 1000)
	f := traffic.NewFleet(4, p, traffic.FleetConfig{
		Clients:      8,
		MeanLifetime: 10_000, // ~10 requests per connection at this rate
		SlowFraction: 0.5,
		StallCycles:  250,
	})
	const n = 10_000
	maxConn := uint64(0)
	slow := 0
	for i := 0; i < n; i++ {
		r := f.Next()
		if r.Conn > maxConn {
			maxConn = r.Conn
		}
		if r.Stall != 0 {
			if r.Stall != 250 {
				t.Fatalf("stall = %d, want 250", r.Stall)
			}
			slow++
		}
	}
	if f.Churns() == 0 {
		t.Fatal("short-lived connections never churned")
	}
	// Every churn allocates a fresh id beyond the initial 8.
	if want := f.Churns() + 7; maxConn != want {
		t.Fatalf("max conn id = %d, want %d (churns %d + initial 8)", maxConn, want, f.Churns())
	}
	if int(f.SlowRequests()) != slow {
		t.Fatalf("SlowRequests = %d, counted %d", f.SlowRequests(), slow)
	}
	// With SlowFraction 0.5 roughly half the requests should stall.
	if frac := float64(slow) / n; frac < 0.3 || frac > 0.7 {
		t.Fatalf("slow fraction = %.2f, want ~0.5", frac)
	}
	// Immortal fleets never churn.
	im := traffic.NewFleet(4, traffic.NewPoisson(3, 1000), traffic.FleetConfig{Clients: 8})
	im.Schedule(n)
	if im.Churns() != 0 {
		t.Fatalf("immortal fleet churned %d times", im.Churns())
	}
}

func TestBurstPhaseRates(t *testing.T) {
	b := traffic.NewBurst(9, traffic.BurstConfig{
		OnMeanGap: 100, OffMeanGap: 5000,
		OnMeanCycles: 50_000, OffMeanCycles: 50_000,
	})
	var gapSum [2]float64
	var count [2]int
	for i := 0; i < 50_000; i++ {
		gap, ph := b.Next()
		gapSum[ph] += float64(gap)
		count[ph]++
	}
	if count[0] == 0 || count[1] == 0 {
		t.Fatalf("burst never visited both states: on=%d off=%d", count[0], count[1])
	}
	onMean := gapSum[0] / float64(count[0])
	offMean := gapSum[1] / float64(count[1])
	if onMean >= offMean {
		t.Fatalf("on-state mean gap %.0f not below off-state %.0f", onMean, offMean)
	}
}

func TestDiurnalPhaseOrder(t *testing.T) {
	d := traffic.NewDiurnal(5, []traffic.PhaseRate{
		{Name: "a", MeanGap: 100, Cycles: 10_000},
		{Name: "b", MeanGap: 100, Cycles: 10_000},
		{Name: "c", MeanGap: 100, Cycles: 10_000},
	})
	last := 0
	wraps := 0
	for i := 0; i < 2_000; i++ {
		_, ph := d.Next()
		switch {
		case ph == last:
		case ph == (last+1)%3:
			if ph == 0 {
				wraps++
			}
			last = ph
		default:
			t.Fatalf("diurnal jumped from phase %d to %d", last, ph)
		}
	}
	if wraps == 0 {
		t.Fatal("diurnal never wrapped around its cycle")
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation under testing.B. Each benchmark runs the corresponding
// experiment from internal/bench at CI scale (quick datasets) and logs
// the resulting table; cmd/eleos-bench runs the same experiments at
// paper scale. The interesting output is the logged table, not ns/op —
// performance is virtual time, deterministic across machines.
//
//	go test -bench=. -benchtime=1x
//
// This lives in the external test package: internal/bench imports the
// public eleos API (the consolidation experiment drives Services), so
// an in-package test file importing bench would be an import cycle.
package eleos_test

import (
	"testing"

	"eleos/internal/bench"
)

// benchOps keeps a full `go test -bench=.` sweep in CI time while still
// exercising thousands of requests per configuration.
const benchOps = 10_000

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	rc := bench.RunConfig{Ops: benchOps, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(rc)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", res.String())
		}
	}
}

// §2 motivation and Fig 1.

func BenchmarkFig1ParamServerSlowdown(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkTable1LLCMissCost(b *testing.B)       { runExperiment(b, "tab1") }
func BenchmarkFig2aLLCPollution(b *testing.B)       { runExperiment(b, "fig2a") }
func BenchmarkFig2bTLBFlush(b *testing.B)           { runExperiment(b, "fig2b") }

// §6.1.1 exit-less RPC microbenchmarks.

func BenchmarkFig6aRPCDirectCost(b *testing.B)     { runExperiment(b, "fig6a") }
func BenchmarkFig6bCachePartitioning(b *testing.B) { runExperiment(b, "fig6b") }
func BenchmarkFig6cTLBElimination(b *testing.B)    { runExperiment(b, "fig6c") }
func BenchmarkIOEngine(b *testing.B)               { runExperiment(b, "io-engine") }

// §6.1.2 SUVM microbenchmarks.

func BenchmarkFig7aSUVMSpeedup1T(b *testing.B)       { runExperiment(b, "fig7a") }
func BenchmarkFig7bSUVMSpeedup4T(b *testing.B)       { runExperiment(b, "fig7b") }
func BenchmarkTable2IPIs(b *testing.B)               { runExperiment(b, "tab2") }
func BenchmarkFig8aSpointerOverheadLLC(b *testing.B) { runExperiment(b, "fig8a") }
func BenchmarkFig8bSpointerOverheadPRM(b *testing.B) { runExperiment(b, "fig8b") }
func BenchmarkTable3DirectAccess(b *testing.B)       { runExperiment(b, "tab3") }
func BenchmarkFig9Ballooning(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkPageFaultLatency(b *testing.B)         { runExperiment(b, "pflat") }

// §6.2 end-to-end applications.

func BenchmarkFig10FaceVerification(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11Memcached(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkTable4Memcached(b *testing.B)       { runExperiment(b, "tab4") }

// Ablations of SUVM design choices (beyond the paper's figures).

func BenchmarkAblationWriteBack(b *testing.B) { runExperiment(b, "abl-wb") }
func BenchmarkAblationLinkCache(b *testing.B) { runExperiment(b, "abl-link") }
func BenchmarkAblationPageSize(b *testing.B)  { runExperiment(b, "abl-pgsz") }
func BenchmarkAblationEviction(b *testing.B)  { runExperiment(b, "abl-evict") }

func BenchmarkAblationBatching(b *testing.B) { runExperiment(b, "abl-batch") }

package sgx

import (
	"fmt"
	"sync/atomic"

	"eleos/internal/cache"
	"eleos/internal/cycles"
	"eleos/internal/phys"
	"eleos/internal/tlb"
)

// Thread is one simulated hardware thread. Enclave threads (created via
// Enclave.NewThread) can enter the enclave and access both private and
// host memory; host threads (Platform.NewHostThread) run untrusted code
// only. A Thread is owned by a single goroutine.
type Thread struct {
	T    *cycles.Thread
	TLB  *tlb.TLB
	plat *Platform
	encl *Enclave
	cos  cache.CoS

	inEnclave  atomic.Bool
	pendingIPI atomic.Int64

	// In-enclave time accounting (the measurement thread of §6's
	// methodology): cycles accumulated while executing inside the
	// enclave, excluding exit/entry instruction costs and everything
	// that happens outside.
	encCycles  uint64
	enterStamp uint64

	// scratch avoids per-access allocations in the data path.
	scratch [8]byte

	// hostCtx is the thread's untrusted execution context, allocated
	// once here so HostContext and OCall stay allocation-free on the
	// per-op path (HostCtx is immutable: it only names the thread).
	hostCtx HostCtx
}

func newThread(p *Platform, e *Enclave, cos cache.CoS) *Thread {
	id := int(p.nextThread.Add(1))
	th := &Thread{
		T:    cycles.NewThread(id, p.Model),
		TLB:  tlb.New(p.Model, tlb.Config{}),
		plat: p,
		encl: e,
		cos:  cos,
	}
	th.hostCtx.th = th
	return th
}

// NewThread creates a hardware thread bound to the enclave.
func (e *Enclave) NewThread() *Thread {
	th := newThread(e.plat, e, cache.CoSEnclave)
	e.threadMu.Lock()
	e.threads = append(e.threads, th)
	e.threadMu.Unlock()
	return th
}

// Enclave returns the enclave the thread belongs to, or nil for host
// threads.
func (th *Thread) Enclave() *Enclave { return th.encl }

// Platform returns the machine the thread runs on.
func (th *Thread) Platform() *Platform { return th.plat }

// InEnclave reports whether the thread is currently executing inside
// its enclave.
func (th *Thread) InEnclave() bool { return th.inEnclave.Load() }

// Enter transitions the thread into the enclave (EENTER).
func (th *Thread) Enter() {
	if th.encl == nil {
		panic("sgx: host thread cannot enter an enclave")
	}
	if th.inEnclave.Load() {
		panic("sgx: nested enclave entry")
	}
	th.T.Charge(th.plat.Model.EEnter)
	th.inEnclave.Store(true)
	th.enterStamp = th.T.Cycles()
}

// EnclaveCycles returns the cycles this thread has spent executing
// inside the enclave (up to its last exit; call while outside, or after
// SyncEnclaveCycles, for an up-to-date figure).
func (th *Thread) EnclaveCycles() uint64 { return th.encCycles }

// SyncEnclaveCycles folds the current in-enclave stint into the
// accumulator without exiting, so callers can sample mid-run.
func (th *Thread) SyncEnclaveCycles() uint64 {
	if th.inEnclave.Load() {
		now := th.T.Cycles()
		th.encCycles += now - th.enterStamp
		th.enterStamp = now
	}
	return th.encCycles
}

// ResetEnclaveCycles zeroes the in-enclave accumulator (warm-up
// boundary) and restarts the current stint if inside.
func (th *Thread) ResetEnclaveCycles() {
	th.encCycles = 0
	th.enterStamp = th.T.Cycles()
}

// ChargeOutside adds n cycles to the thread without attributing them to
// in-enclave execution: the thread is stalled waiting on work done
// elsewhere (an RPC worker executing its system call). The §6
// measurement methodology excludes system-call work from in-enclave
// time, for OCALLs by construction; this keeps the exit-less path
// comparable.
func (th *Thread) ChargeOutside(n uint64) {
	th.SyncEnclaveCycles()
	th.T.Charge(n)
	if th.inEnclave.Load() {
		th.enterStamp = th.T.Cycles()
	}
}

// ChargeResidual accounts an overlapped host-side operation: the
// operation consumed work cycles and was submitted at submitStamp on
// this thread's clock. Cycles the thread has burned since then (its own
// overlapping compute) run concurrently with the operation for free;
// only the remainder — if any — is still outstanding and is charged as
// stall time outside the enclave, like ChargeOutside. Returns the
// residual charged. Call it from the thread that recorded submitStamp;
// stamps from other clocks yield a zero residual at worst.
func (th *Thread) ChargeResidual(submitStamp, work uint64) uint64 {
	var elapsed uint64
	if now := th.T.Cycles(); now > submitStamp {
		elapsed = now - submitStamp
	}
	if elapsed >= work {
		return 0
	}
	residual := work - elapsed
	th.ChargeOutside(residual)
	return residual
}

// Exit transitions the thread out of the enclave (EEXIT). Architecture
// requires the enclave's TLB translations to be flushed on exit; the
// micro-architectural state-restore penalty is charged on the way out so
// each round trip pays it exactly once.
func (th *Thread) Exit() {
	if !th.inEnclave.Load() {
		panic("sgx: exit while not in enclave")
	}
	th.encCycles += th.T.Cycles() - th.enterStamp
	th.T.Charge(th.plat.Model.EExit)
	th.T.Charge(th.plat.Model.ExitIndirect)
	th.TLB.FlushEPC()
	th.inEnclave.Store(false)
	th.encl.stats.Exits.Add(1)
}

// OCall performs the SDK OCALL dance: exit the enclave, run fn in the
// untrusted context of the owner process, and re-enter. fn runs on the
// same core and therefore the same cache class of service. This is the
// mechanism Eleos's exit-less RPC replaces.
//
//eleos:hotpath budget=0
func (th *Thread) OCall(fn func(*HostCtx)) {
	th.encl.stats.OCalls.Add(1)
	th.Exit()
	th.T.Charge(th.plat.Model.OCallOverhead)
	fn(&th.hostCtx)
	th.Enter()
}

// HostCtx is the untrusted execution context handed to OCALL targets,
// RPC workers and plain host code. It exposes host-memory access and
// system-call invocation with their modelled costs.
type HostCtx struct {
	th *Thread
}

// HostContext returns an untrusted execution context for a host thread
// (or for an enclave thread that is currently outside — used by
// runtimes, not applications).
//
//eleos:hotpath budget=0
func (th *Thread) HostContext() *HostCtx { return &th.hostCtx }

// Thread returns the hardware thread backing this context.
func (c *HostCtx) Thread() *Thread { return c.th }

// Syscall charges the base cost of one untrusted system call and runs
// its kernel-side work.
func (c *HostCtx) Syscall(work func(*HostCtx)) {
	c.th.T.Charge(c.th.plat.Model.Syscall)
	if work != nil {
		work(c)
	}
}

// Read copies host memory at addr into buf, charging TLB and LLC costs.
func (c *HostCtx) Read(addr uint64, buf []byte) { c.th.hostAccess(addr, buf, false) }

// Write copies data into host memory at addr, charging TLB and LLC costs.
func (c *HostCtx) Write(addr uint64, data []byte) { c.th.hostAccess(addr, data, true) }

// Touch charges the cost of streaming over [addr, addr+n) in host memory
// without moving real bytes — used to model kernel-internal buffer
// traffic (e.g. NIC ring to socket buffer copies) whose content is
// irrelevant but whose cache footprint is the pollution the paper
// measures.
func (c *HostCtx) Touch(addr uint64, n int, write bool) {
	vp := phys.PageNum(addr)
	end := phys.PageNum(addr + uint64(n-1))
	for ; vp <= end; vp++ {
		c.th.TLB.Access(c.th.T, vp, false)
	}
	c.th.plat.LLC.AccessRange(c.th.T, c.th.cos, addr, n, write)
}

// Read performs a data read at vaddr: enclave-private if the address is
// at or above HeapBase (permitted only for enclave threads currently
// inside), untrusted host memory otherwise.
func (th *Thread) Read(vaddr uint64, buf []byte) {
	if vaddr >= HeapBase {
		th.enclaveAccess(vaddr, buf, false)
		return
	}
	th.hostAccess(vaddr, buf, false)
}

// Write performs a data write at vaddr, with the same address-space
// dispatch as Read.
func (th *Thread) Write(vaddr uint64, data []byte) {
	if vaddr >= HeapBase {
		th.enclaveAccess(vaddr, data, true)
		return
	}
	th.hostAccess(vaddr, data, true)
}

// ReadU64 reads a little-endian uint64 — the parameter-server value type.
func (th *Thread) ReadU64(vaddr uint64) uint64 {
	th.Read(vaddr, th.scratch[:])
	return leU64(th.scratch[:])
}

// WriteU64 writes a little-endian uint64.
func (th *Thread) WriteU64(vaddr uint64, v uint64) {
	putLeU64(th.scratch[:], v)
	th.Write(vaddr, th.scratch[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// WriteStream writes data at vaddr with streaming-store accounting: the
// destination lines are installed in the LLC at hit-level cost instead
// of paying write-allocate misses. SUVM uses it for page-in fills whose
// stores are fully overlapped with the AES-GCM decryption producing
// them. Residency, TLB and fault semantics are identical to Write.
func (th *Thread) WriteStream(vaddr uint64, data []byte) {
	if vaddr < HeapBase {
		// Host-side streaming store.
		if len(data) == 0 {
			return
		}
		vp := phys.PageNum(vaddr)
		end := phys.PageNum(vaddr + uint64(len(data)-1))
		for ; vp <= end; vp++ {
			th.TLB.Access(th.T, vp, false)
		}
		th.plat.LLC.InstallRange(th.T, th.cos, vaddr, len(data))
		th.plat.Host.WriteAt(vaddr, data)
		return
	}
	e := th.encl
	if e == nil || !th.inEnclave.Load() {
		panic("sgx: WriteStream to enclave memory from outside")
	}
	for len(data) > 0 {
		th.deliverPendingIPIs()
		idx := e.pageIndex(vaddr)
		pageOff := vaddr & (phys.PageSize - 1)
		n := phys.PageSize - int(pageOff)
		if n > len(data) {
			n = len(data)
		}
		th.streamResident(e, phys.PageNum(vaddr), idx, pageOff, data[:n])
		vaddr += uint64(n)
		data = data[n:]
	}
}

func (th *Thread) streamResident(e *Enclave, vpage, idx, pageOff uint64, data []byte) {
	for {
		th.TLB.Access(th.T, vpage, true)
		e.pagingMu.RLock()
		p := &e.pages[idx]
		if p.state == pageResident {
			p.accessed.Store(true)
			p.dirty.Store(true)
			frame := p.frame
			copy(e.plat.Driver.frameData(frame)[pageOff:], data)
			e.pagingMu.RUnlock()
			e.plat.LLC.InstallRange(th.T, th.cos, phys.FramePhys(int(frame))+pageOff, len(data))
			return
		}
		e.pagingMu.RUnlock()
		th.hwFault(e, idx, true)
	}
}

func (th *Thread) hostAccess(addr uint64, buf []byte, write bool) {
	if len(buf) == 0 {
		return
	}
	vp := phys.PageNum(addr)
	end := phys.PageNum(addr + uint64(len(buf)-1))
	for ; vp <= end; vp++ {
		th.TLB.Access(th.T, vp, false)
	}
	th.plat.LLC.AccessRange(th.T, th.cos, addr, len(buf), write)
	if write {
		th.plat.Host.WriteAt(addr, buf)
	} else {
		th.plat.Host.ReadAt(addr, buf)
	}
}

// enclaveAccess performs a data access to enclave-private memory,
// page by page: IPI delivery, TLB translation, residency check (with the
// hardware fault path on misses), LLC charging against the frame's
// physical address, and the real byte copy.
func (th *Thread) enclaveAccess(vaddr uint64, buf []byte, write bool) {
	e := th.encl
	if e == nil {
		panic(fmt.Sprintf("sgx: host thread accessing enclave address %#x", vaddr))
	}
	if !th.inEnclave.Load() {
		panic(fmt.Sprintf("sgx: enclave memory access at %#x while outside the enclave", vaddr))
	}
	for len(buf) > 0 {
		th.deliverPendingIPIs()
		idx := e.pageIndex(vaddr)
		pageOff := vaddr & (phys.PageSize - 1)
		n := phys.PageSize - int(pageOff)
		if n > len(buf) {
			n = len(buf)
		}
		th.copyResident(e, phys.PageNum(vaddr), idx, pageOff, buf[:n], write)
		vaddr += uint64(n)
		buf = buf[n:]
	}
}

// copyResident copies within one page, faulting it in if needed. The TLB
// translation happens inside the retry loop: a fault's AEX flushes the
// TLB, so the replayed access after resume walks the page table again —
// exactly the hardware behaviour whose cost Fig 2b measures.
func (th *Thread) copyResident(e *Enclave, vpage, idx, pageOff uint64, buf []byte, write bool) {
	for {
		th.TLB.Access(th.T, vpage, true)
		e.pagingMu.RLock()
		if idx >= uint64(len(e.pages)) {
			e.pagingMu.RUnlock()
			panic(fmt.Sprintf("sgx: enclave %d access beyond heap (page %d of %d)", e.id, idx, len(e.pages)))
		}
		p := &e.pages[idx]
		if p.state == pageResident {
			p.accessed.Store(true)
			if write {
				p.dirty.Store(true)
			}
			frame := p.frame
			data := e.plat.Driver.frameData(frame)
			if write {
				copy(data[pageOff:], buf)
			} else {
				copy(buf, data[pageOff:])
			}
			e.pagingMu.RUnlock()
			e.plat.LLC.AccessRange(th.T, th.cos, phys.FramePhys(int(frame))+pageOff, len(buf), write)
			return
		}
		e.pagingMu.RUnlock()
		th.hwFault(e, idx, write)
	}
}

// ensureResident materializes a page without copying data (used by Pin).
func (th *Thread) ensureResident(e *Enclave, idx uint64, write bool) {
	for {
		e.pagingMu.RLock()
		resident := e.pages[idx].state == pageResident
		e.pagingMu.RUnlock()
		if resident {
			return
		}
		th.hwFault(e, idx, write)
	}
}

// hwFault pays the full architectural price of an EPC page fault: an
// asynchronous exit (with TLB flush), the driver's direct handling cost
// (plus eviction work if the free pool is dry), and re-entry.
func (th *Thread) hwFault(e *Enclave, idx uint64, write bool) {
	// AEX: exit the enclave involuntarily.
	th.encCycles += th.T.Cycles() - th.enterStamp
	th.T.Charge(th.plat.Model.EExit)
	th.T.Charge(th.plat.Model.ExitIndirect)
	th.TLB.FlushEPC()
	th.inEnclave.Store(false)
	e.stats.Exits.Add(1)

	th.plat.Driver.fault(th, e, idx, write)

	// ERESUME.
	th.T.Charge(th.plat.Model.EEnter)
	th.inEnclave.Store(true)
	th.enterStamp = th.T.Cycles()
}

// deliverPendingIPIs consumes queued shootdown interrupts: each one
// forces an AEX + TLB flush on this core, the indirect cost Table 2 of
// the paper attributes to multi-threaded SGX paging.
func (th *Thread) deliverPendingIPIs() {
	n := th.pendingIPI.Swap(0)
	for ; n > 0; n-- {
		th.T.Charge(th.plat.Model.AEX)
		th.TLB.FlushEPC()
	}
}

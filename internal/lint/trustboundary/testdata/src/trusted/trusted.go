// Package trusted is testdata: enclave code that must reach host
// memory only through the facade.
//
//eleos:trusted
package trusted

import (
	"facade"
	"hostmem"
)

// Direct raw access from trusted code: flagged.
func Bad(a *hostmem.Arena) {
	buf := make([]byte, 8)
	a.ReadAt(0, buf) // want "trusted function trusted.Bad performs raw host-memory access"
}

// Indirect raw access through a trusted helper: flagged at the call.
func BadIndirect(a *hostmem.Arena) {
	helper(a) // want "trusted function trusted.BadIndirect reaches raw host-memory access"
}

func helper(a *hostmem.Arena) {
	a.WriteAt(0, nil) // want "trusted function trusted.helper performs raw host-memory access"
}

// Good goes through the facade barrier: clean.
func Good(a *hostmem.Arena) {
	facade.Write(a, 0, nil)
}

// Meta calls a non-raw arena method: clean.
func Meta(a *hostmem.Arena) int {
	return a.Stats()
}

// Escape is a per-function override: host-side bookkeeping code inside
// an otherwise trusted package.
//
//eleos:untrusted
func Escape(a *hostmem.Arena) {
	a.WriteAt(0, nil)
}

package suvm

import (
	"bytes"
	"testing"
)

// These tests pin the §3.2.5 security claims: what SUVM exposes to the
// untrusted host is ciphertext plus the page-granular access pattern —
// no more, no less than SGX's own paging.

// TestBackingStoreNeverHoldsPlaintext writes a recognizable secret,
// forces it out to the backing store, and scans the entire untrusted
// region for the secret and for low-entropy structure.
func TestBackingStoreNeverHoldsPlaintext(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(1 << 20)
	secret := bytes.Repeat([]byte("TOP-SECRET-VALUE"), 256) // 4 KiB page of marker
	for off := uint64(0); off+4096 <= p.Size(); off += 4096 {
		_ = p.WriteAt(e.th, off, secret)
	}
	// Thrash so everything is sealed out.
	q, _ := e.h.Malloc(1 << 20)
	_ = q.MemsetAt(e.th, 0, q.Size(), 1)

	// Scan the raw host bytes of the backing region.
	raw := make([]byte, 2<<20)
	e.plat.Host.ReadAt(e.h.bsBase, raw)
	if bytes.Contains(raw, []byte("TOP-SECRET-VALUE")) {
		t.Fatal("plaintext secret visible in untrusted memory")
	}
	// Identical plaintext pages must not produce identical ciphertext
	// (fresh nonce per seal): compare the first two sealed pages.
	pg0 := make([]byte, 4096)
	pg1 := make([]byte, 4096)
	e.plat.Host.ReadAt(e.h.bsBase+uint64(p.base-e.h.bsBase), pg0)
	e.plat.Host.ReadAt(e.h.bsBase+uint64(p.base-e.h.bsBase)+4096, pg1)
	if bytes.Equal(pg0, pg1) {
		t.Fatal("identical plaintext pages sealed to identical ciphertext (nonce reuse)")
	}
}

// TestResealChangesCiphertext: re-sealing the same plaintext after an
// untouched round trip yields different bytes, so the host cannot tell
// whether a page changed between evictions.
func TestResealChangesCiphertext(t *testing.T) {
	e := newEnv(t, smallCfg())
	cfg := smallCfg()
	cfg.WriteBackClean = true // force re-seal even of clean pages
	e2 := newEnv(t, cfg)
	for _, env := range []*testEnv{e, e2} {
		p, _ := env.h.Malloc(256 << 10)
		data := bytes.Repeat([]byte{0x42}, 4096)
		_ = p.WriteAt(env.th, 0, data)
		thrash := func() {
			q, _ := env.h.Malloc(256 << 10)
			_ = q.MemsetAt(env.th, 0, q.Size(), 9)
			_ = env.h.Free(env.th, q)
		}
		thrash()
		snap1 := make([]byte, 4096)
		env.plat.Host.ReadAt(p.base, snap1)
		// Touch (dirty) and force out again.
		_ = p.WriteAt(env.th, 0, data) // same contents
		thrash()
		snap2 := make([]byte, 4096)
		env.plat.Host.ReadAt(p.base, snap2)
		if bytes.Equal(snap1, snap2) {
			t.Fatal("re-sealed page kept identical ciphertext")
		}
	}
}

// TestAccessPatternIsThePageGranularLeak documents the accepted leak:
// the host observes *which* backing pages change, which is exactly the
// page-access side channel SGX paging has (§3.2.5). The test asserts
// both directions: the written page's ciphertext changes, and untouched
// pages' ciphertexts do not.
func TestAccessPatternIsThePageGranularLeak(t *testing.T) {
	e := newEnv(t, smallCfg())
	p, _ := e.h.Malloc(1 << 20)
	buf := make([]byte, 4096)
	for off := uint64(0); off+4096 <= p.Size(); off += 4096 {
		_ = p.WriteAt(e.th, off, buf)
	}
	// Seal everything out.
	q, _ := e.h.Malloc(1 << 20)
	_ = q.MemsetAt(e.th, 0, q.Size(), 1)

	before := make([]byte, 1<<20)
	e.plat.Host.ReadAt(p.base, before)

	// Dirty exactly one page (page 37), then seal out again.
	_ = p.WriteAt(e.th, 37*4096, []byte("new contents"))
	_ = q.MemsetAt(e.th, 0, q.Size(), 2)

	after := make([]byte, 1<<20)
	e.plat.Host.ReadAt(p.base, after)

	for pg := 0; pg < 256; pg++ {
		same := bytes.Equal(before[pg*4096:(pg+1)*4096], after[pg*4096:(pg+1)*4096])
		if pg == 37 && same {
			t.Fatal("written page's ciphertext did not change (host would miss the write — but so would recovery)")
		}
		if pg != 37 && !same {
			t.Fatalf("untouched page %d re-sealed: leaks a spurious write, and wastes bandwidth", pg)
		}
	}
}

package fsim_test

import (
	"errors"
	"testing"

	"eleos/internal/cache"
	"eleos/internal/exitio"
	"eleos/internal/fsim"
	"eleos/internal/sgx"
)

// The error surface of the file syscalls, table-driven: every sentinel
// on every call that can return it, checked both through the direct
// API and through the exitio op descriptors (which must carry the same
// sentinels in their CQEs).
func TestErrorPaths(t *testing.T) {
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th := plat.NewHostThread(cache.CoSDefault)
	h := th.HostContext()
	fs := fsim.NewFS(plat)
	fd, err := fs.Open(h, "/errors")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PWrite(h, fd, 0, []byte("five!")); err != nil {
		t.Fatal(err)
	}
	closed, _ := fs.Open(h, "/errors")
	if err := fs.Close(h, closed); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)

	cases := []struct {
		name    string
		call    func() (int, error)
		wantN   int
		wantErr error
	}{
		{"size of missing file", func() (int, error) {
			sz, err := fs.Size("/never-created")
			return int(sz), err
		}, 0, fsim.ErrNotExist},
		{"rawread of missing file", func() (int, error) {
			return 0, fs.RawRead("/never-created", 0, buf)
		}, 0, fsim.ErrNotExist},
		{"close of bad fd", func() (int, error) {
			return 0, fs.Close(h, 999)
		}, 0, fsim.ErrBadFD},
		{"close of closed fd", func() (int, error) {
			return 0, fs.Close(h, closed)
		}, 0, fsim.ErrBadFD},
		{"pwrite on bad fd", func() (int, error) {
			return fs.PWrite(h, 999, 0, buf)
		}, 0, fsim.ErrBadFD},
		{"pread on closed fd", func() (int, error) {
			return fs.PRead(h, closed, 0, buf)
		}, 0, fsim.ErrBadFD},
		{"fsync on bad fd", func() (int, error) {
			return 0, fs.Fsync(h, 999)
		}, 0, fsim.ErrBadFD},
		{"pwrite past the size limit", func() (int, error) {
			return fs.PWrite(h, fd, fsim.MaxFileBytes-2, buf)
		}, 0, fsim.ErrTooLarge},
		{"pread at EOF", func() (int, error) {
			return fs.PRead(h, fd, 5, buf)
		}, 0, nil},
		{"pread past EOF", func() (int, error) {
			return fs.PRead(h, fd, 1000, buf)
		}, 0, nil},
		{"partial pread near EOF", func() (int, error) {
			return fs.PRead(h, fd, 3, buf)
		}, 2, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := tc.call()
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if n != tc.wantN {
				t.Fatalf("n = %d, want %d", n, tc.wantN)
			}
		})
	}
}

// The same sentinels must survive the trip through the exitio engine:
// a failing op's CQE carries the fsim error, a zero-byte read at EOF is
// a successful completion with N == 0.
func TestErrorPathsThroughExitio(t *testing.T) {
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th := plat.NewHostThread(cache.CoSDefault)
	fs := fsim.NewFS(plat)
	eng, err := exitio.NewEngine(exitio.ModeDirect, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.NewQueue()
	q.Push(exitio.Open{FS: fs, Name: "/via-engine"})
	cqes, err := q.SubmitAndWait(th)
	if err != nil {
		t.Fatal(err)
	}
	fd := cqes[0].N
	buf := make([]byte, 8)

	cases := []struct {
		name    string
		op      exitio.Op
		wantN   int
		wantErr error
	}{
		{"pwrite bad fd", exitio.Pwrite{FS: fs, FD: 999, Data: buf}, 0, fsim.ErrBadFD},
		{"pread bad fd", exitio.Pread{FS: fs, FD: 999, Buf: buf}, 0, fsim.ErrBadFD},
		{"fsync bad fd", exitio.Fsync{FS: fs, FD: 999}, 0, fsim.ErrBadFD},
		{"close bad fd", exitio.Close{FS: fs, FD: 999}, 0, fsim.ErrBadFD},
		{"pwrite too large", exitio.Pwrite{FS: fs, FD: fd, Off: fsim.MaxFileBytes, Data: buf}, 0, fsim.ErrTooLarge},
		{"pread at EOF", exitio.Pread{FS: fs, FD: fd, Buf: buf}, 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q.Push(tc.op)
			cqes, err := q.SubmitAndWait(th)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(cqes[0].Err, tc.wantErr) {
				t.Fatalf("CQE err = %v, want %v", cqes[0].Err, tc.wantErr)
			}
			if cqes[0].N != tc.wantN {
				t.Fatalf("CQE n = %d, want %d", cqes[0].N, tc.wantN)
			}
		})
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// StaticCallee resolves a call expression to the concrete function or
// method object it invokes, or nil for dynamic calls (function values,
// interface methods), conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

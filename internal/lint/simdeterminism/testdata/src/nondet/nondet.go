// Package nondet is testdata: no //eleos:deterministic directive, so
// the analyzer leaves it alone.
package nondet

import "time"

// WallClock is fine here; the package is not cycle-charged.
func WallClock() time.Time {
	return time.Now()
}

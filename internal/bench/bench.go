// Package bench contains one experiment per table and figure of the
// paper's evaluation (§2 and §6), each reconstructing its workload,
// parameter sweep and baselines, and printing rows shaped like the
// paper's. The cmd/eleos-bench binary runs them from the command line;
// bench_test.go exposes each as a testing.B benchmark.
//
// Absolute numbers come from the cost model and will not equal the
// paper's measurements from real silicon; the experiments are judged on
// shape — who wins, by what factor, where the crossovers fall — which
// EXPERIMENTS.md tabulates side by side with the paper's values.
//
// Bench output feeds the golden fingerprints, so the harness itself is
// checked by eleoslint for determinism: seeded rand only, no wall
// clock, no map-iteration-order dependence in anything printed.
//
//eleos:deterministic
package bench

import (
	"fmt"
	"runtime"
	"sort"

	"eleos/internal/cache"
	"eleos/internal/report"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// RunConfig scales an experiment run.
type RunConfig struct {
	// Ops is the request/access count per configuration (the paper uses
	// 100k; Quick runs use less).
	Ops int
	// Runs is the number of seeded variance runs for experiments that
	// report mean/stddev columns (currently traffic); each run draws a
	// distinct schedule so cmd/perfdiff can judge regressions against
	// seed-to-seed spread.
	Runs int
	// Quick shrinks dataset sizes so the full suite runs in CI time.
	Quick bool
}

// Normalize fills defaults.
func (c RunConfig) Normalize() RunConfig {
	if c.Ops == 0 {
		if c.Quick {
			c.Ops = 20_000
		} else {
			c.Ops = 100_000
		}
	}
	if c.Runs == 0 {
		if c.Quick {
			c.Runs = 3
		} else {
			c.Runs = 5
		}
	}
	return c
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// String renders all tables.
func (r *Result) String() string {
	s := fmt.Sprintf("=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	return s
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(RunConfig) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(RunConfig) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in a stable order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func orderOf(id string) int {
	order := []string{
		"fig1", "tab1", "fig2a", "fig2b",
		"fig6a", "fig6b", "fig6c", "rpc-async", "io-engine", "selftune", "consolidation", "fleet", "traffic",
		"fig7a", "fig7b", "tab2", "suvm-mt", "fig8a", "fig8b", "tab3", "fig9", "pflat",
		"fig10", "fig11", "tab4",
		"abl-wb", "abl-link", "abl-pgsz", "abl-evict", "abl-batch",
	}
	for i, o := range order {
		if o == id {
			return i
		}
	}
	return len(order)
}

// --- shared environment builders ---

// env is one platform with optionally an enclave, heap and RPC pool.
type env struct {
	plat *sgx.Platform
	encl *sgx.Enclave
	th   *sgx.Thread
	heap *suvm.Heap
	pool *rpc.Pool
}

// newPlatform builds the paper's machine.
func newPlatform() *sgx.Platform {
	return sgx.MustNewPlatform(sgx.Config{})
}

// hostEnv is an untrusted-execution environment.
func hostEnv() *env {
	p := newPlatform()
	return &env{plat: p, th: p.NewHostThread(cache.CoSDefault)}
}

// enclaveEnv builds a platform + enclave + entered thread, and a heap
// when epcpp > 0.
func enclaveEnv(epcpp uint64) *env {
	p := newPlatform()
	e, err := p.NewEnclave()
	if err != nil {
		panic(err)
	}
	th := e.NewThread()
	th.Enter()
	v := &env{plat: p, encl: e, th: th}
	if epcpp > 0 {
		h, err := suvm.New(e, th, suvm.Config{PageCacheBytes: epcpp, BackingBytes: 8 << 30})
		if err != nil {
			panic(err)
		}
		v.heap = h
	}
	return v
}

// withPool starts an RPC pool on the env.
func (v *env) withPool(workers int) *env {
	v.pool = rpc.NewPool(v.plat, workers, 256)
	v.pool.Start()
	return v
}

// close stops the pool.
func (v *env) close() {
	if v.pool != nil {
		v.pool.Stop()
	}
}

// resetCounters clears every measured counter after warm-up.
func (v *env) resetCounters() {
	v.th.T.Reset()
	v.th.TLB.ResetStats()
	v.th.ResetEnclaveCycles()
	v.plat.LLC.ResetStats()
	v.plat.Driver.ResetStats()
	if v.heap != nil {
		v.heap.ResetStats()
	}
}

// perOp converts total cycles to cycles/op.
func perOp(cycles uint64, ops int) float64 { return float64(cycles) / float64(ops) }

// allocsStart snapshots the runtime's cumulative allocation count at
// the start of a measured loop — the -benchmem discipline applied to
// the harness itself, so experiments can report Go-heap allocs/op next
// to their virtual-cycle numbers. Allocations are host-side bookkeeping
// and never cycle-charged: the column is a health check on the
// allocation-free hot paths (eleoslint's hotpath budgets, checked
// dynamically), not part of the golden cycle fingerprints, and may
// jitter slightly across runs (GC may empty sync.Pools mid-loop).
func allocsStart() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// allocsPerOp converts an allocsStart delta to allocations per op.
func allocsPerOp(start uint64, ops int) float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-start) / float64(ops)
}

// Quickstart: secure memory beyond the EPC size and exit-less system
// calls in a dozen lines, on the simulated SGX platform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eleos"
)

func main() {
	// A machine with 93MiB of usable PRM, plus the Eleos untrusted
	// runtime: four RPC workers (each with its own ring shard) behind a
	// 25%/75% LLC partition. eleos.NewRuntime() alone gives the paper's
	// defaults; eleos.NewRuntime(eleos.DefaultConfig()) still works too.
	rt, err := eleos.NewRuntime(
		eleos.WithRPCWorkers(4),
		eleos.WithCATWays(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// An enclave with a 32MiB SUVM page cache (EPC++).
	encl, err := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	// 256MiB of secure memory — nearly 3x the machine's entire PRM.
	// SUVM pages it against an encrypted backing store in untrusted
	// memory, entirely inside the enclave: no exits, no IPIs.
	p, err := ctx.Malloc(256 << 20)
	if err != nil {
		log.Fatal(err)
	}
	exits0, _, _, _, _ := encl.Raw().Stats().Snapshot()
	secret := []byte("sealed with AES-GCM when evicted")
	for off := uint64(0); off < p.Size(); off += 16 << 10 {
		if err := p.WriteAt(off, secret); err != nil {
			log.Fatal(err)
		}
	}
	buf := make([]byte, len(secret))
	if err := p.ReadAt(200<<20, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back from offset 200MiB: %q\n", buf)

	// An exit-less system call: delegated to an untrusted worker
	// through a job ring; the enclave never exits.
	ctx.Exitless(func(h *eleos.HostCtx) {
		h.Syscall(nil) // the kernel-side work of the call
	})

	// The asynchronous variant: Go returns a future and the enclave
	// keeps computing while the worker runs the call — the call's
	// latency hides behind the compute, and Wait charges only whatever
	// remains.
	fut := ctx.Go(func(h *eleos.HostCtx) { h.Syscall(nil) })
	if err := p.WriteAt(100<<20, secret); err != nil { // overlapped compute
		log.Fatal(err)
	}
	fut.Wait()

	// And the batched variant: one amortized submission for a burst of
	// calls, spread across the worker pool by work stealing.
	ctx.ExitlessBatch(
		func(h *eleos.HostCtx) { h.Syscall(nil) },
		func(h *eleos.HostCtx) { h.Syscall(nil) },
		func(h *eleos.HostCtx) { h.Syscall(nil) },
		func(h *eleos.HostCtx) { h.Syscall(nil) },
	)

	// One snapshot of the whole runtime: RPC pool, I/O engine, and every
	// enclave heap (and, with NewService, per-service rollups).
	st := rt.Stats().Heaps[0]
	exits1, _, _, _, _ := encl.Raw().Stats().Snapshot()
	fmt.Printf("SUVM: %d software page faults, %d evictions (%d write-backs, %d clean drops)\n",
		st.MajorFaults, st.Evictions, st.WriteBacks, st.CleanDrops)
	fmt.Printf("enclave exits while working: %d (paging and the syscall were exit-less)\n", exits1-exits0)
	fmt.Printf("virtual time consumed: %v\n", ctx.Elapsed())
}

// Command perfdiff compares two BENCH_<id>.json files emitted by
// cmd/eleos-bench, benchstat-style, and exits non-zero when the new
// run regressed — the variance-aware perf gate behind `make bench-gate`.
//
// Rows are matched by their identity cells (server, process, phase, …)
// and every recognized metric column is compared by direction:
// cycle/latency/fault/allocation columns must not rise, throughput and
// speedup columns must not fall. A move only fails the gate when it
// clears BOTH tests:
//
//   - significance: |new-old| > sigma * max(sd_old, sd_new), where the
//     sd values come from the table's own "<col> sd" variance columns
//     (seeded variance runs); columns without one compare exactly, and
//   - size: |new-old|/old >= threshold.
//
// A row or table present in the baseline but missing from the new run
// also fails: shape changes must regenerate the baseline deliberately
// (make bench-gate-baseline).
//
// Usage:
//
//	perfdiff [-threshold 0.10] [-sigma 2] [-v] old.json new.json
//
// Exit status: 0 clean, 1 regression or missing rows, 2 usage/load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative regression threshold (0.10 = 10%)")
		sigma     = flag.Float64("sigma", 2.0, "variance overlap multiplier for significance")
		verbose   = flag.Bool("v", false, "print every compared metric, not just moves")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-threshold 0.10] [-sigma 2] [-v] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := LoadDoc(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := LoadDoc(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(2)
	}

	findings := Compare(oldDoc, newDoc, Options{Threshold: *threshold, Sigma: *sigma})
	var compared, regressions, improvements, noise, missing int
	lastTable := ""
	for _, f := range findings {
		if f.Verdict == VerdictMissing {
			missing++
			fmt.Printf("MISSING: %s | %s (in baseline, not in new run)\n", f.Table, f.Row)
			continue
		}
		compared++
		switch f.Verdict {
		case VerdictRegression:
			regressions++
		case VerdictImprovement:
			improvements++
		case VerdictNoise:
			noise++
		}
		if !*verbose && (f.Verdict == VerdictOK || f.Verdict == VerdictNoise) {
			continue
		}
		if f.Table != lastTable {
			fmt.Printf("## %s\n", f.Table)
			lastTable = f.Table
		}
		sd := ""
		if f.SDOld != 0 || f.SDNew != 0 {
			sd = fmt.Sprintf("  (sd %.3g -> %.3g)", f.SDOld, f.SDNew)
		}
		fmt.Printf("%-12s %s | %s: %.4g -> %.4g (%+.1f%%, want %s)%s\n",
			f.Verdict, f.Row, f.Col, f.Old, f.New, 100*f.Delta, f.Dir, sd)
	}
	fmt.Printf("perfdiff: %d metrics compared: %d regression(s), %d improvement(s), %d within noise, %d missing\n",
		compared, regressions, improvements, noise, missing)
	if Failed(findings) {
		os.Exit(1)
	}
}

// Package sgx simulates the SGX platform the Eleos paper runs on: a
// Skylake machine with 128 MiB of processor reserved memory (PRM), an
// enclave page cache (EPC) demand-paged by an untrusted driver, enclave
// entry/exit instructions with their direct and indirect costs, TLB
// flushes on every exit, and shootdown IPIs on hardware page eviction.
//
// The simulation is event-faithful rather than timing-sampled: every
// exit, page fault, IPI, TLB flush and cache-line touch actually happens
// as a discrete event and is charged to the virtual cycle counter of the
// thread that incurs it. Evicted EPC pages are genuinely AES-GCM sealed
// into untrusted memory and verified on page-in, so the security
// semantics (privacy, integrity, freshness) are testable, not asserted.
//
// Trust domain: platform. This package is the simulated hardware plus
// the privileged host kernel (the SGX driver), which by definition
// straddle the trust boundary; it is exempt from the trusted/untrusted
// call rules and acts as a barrier in eleoslint's reachability
// analysis. It is cycle-charged and must stay deterministic.
//
//eleos:platform
//eleos:deterministic
package sgx

import (
	"errors"
	"fmt"
	"sync/atomic"

	"eleos/internal/cache"
	"eleos/internal/cycles"
	"eleos/internal/hostmem"
	"eleos/internal/phys"
)

// ErrOutOfEPC marks requests that exceed the machine's processor
// reserved memory: a platform configured beyond the hardware PRM limit,
// or an EPC++ frame pool larger than the PRM can pin.
var ErrOutOfEPC = errors.New("sgx: out of EPC memory")

// Config describes the simulated machine.
type Config struct {
	// Model is the cost model; nil selects cycles.DefaultModel.
	Model *cycles.Model
	// UsablePRMBytes is the PRM available to applications after the
	// hardware reserves space for enclave page tables and metadata.
	// Defaults to 93 MiB, the paper's measured figure.
	UsablePRMBytes uint64
	// HostArenaBytes sizes the untrusted memory arena (power of two;
	// default 16 GiB of address space, materialized sparsely).
	HostArenaBytes uint64
	// LLC optionally overrides the cache geometry.
	LLC cache.Config
	// EvictBatch is the number of pages the driver's background swapper
	// reclaims per round when the free pool runs low. The Linux SGX
	// driver swaps in batches; smaller batches mean more IPI rounds.
	EvictBatch int
}

// Platform is one simulated machine: cost model, shared LLC, untrusted
// DRAM, and the SGX driver that owns the EPC.
type Platform struct {
	Model  *cycles.Model
	LLC    *cache.LLC
	Host   *hostmem.Arena
	Driver *Driver

	nextThread atomic.Int64
	nextEncl   atomic.Int64
}

// NewPlatform builds a machine from cfg.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Model == nil {
		cfg.Model = cycles.DefaultModel()
	}
	if cfg.UsablePRMBytes == 0 {
		cfg.UsablePRMBytes = 93 << 20
	}
	if cfg.UsablePRMBytes > phys.EPCLimit {
		return nil, fmt.Errorf("%w: usable PRM %d exceeds PRM size %d", ErrOutOfEPC, cfg.UsablePRMBytes, phys.EPCLimit)
	}
	if cfg.HostArenaBytes == 0 {
		cfg.HostArenaBytes = 16 << 30
	}
	if cfg.EvictBatch == 0 {
		cfg.EvictBatch = 2
	}
	llcCfg := cfg.LLC
	if llcCfg.EPCLimit == 0 {
		llcCfg.EPCLimit = phys.EPCLimit
	}
	host, err := hostmem.NewArena(cfg.HostArenaBytes)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		Model: cfg.Model,
		LLC:   cache.New(cfg.Model, llcCfg),
		Host:  host,
	}
	p.Driver = newDriver(p, int(cfg.UsablePRMBytes/phys.PageSize), cfg.EvictBatch)
	return p, nil
}

// MustNewPlatform is NewPlatform for tests and examples with fixed,
// known-good configurations.
func MustNewPlatform(cfg Config) *Platform {
	p, err := NewPlatform(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// NewHostThread creates a simulated hardware thread running untrusted
// code only (the paper's "untrusted execution" baselines, and the Eleos
// RPC workers).
func (p *Platform) NewHostThread(cos cache.CoS) *Thread {
	return newThread(p, nil, cos)
}

// Stats aggregates platform-wide counters.
type Stats struct {
	Enclaves int
	Driver   DriverStats
	LLC      cache.Stats
}

// Stats returns a snapshot of platform counters.
func (p *Platform) Stats() Stats {
	return Stats{
		Enclaves: p.Driver.enclaveCount(),
		Driver:   p.Driver.Stats(),
		LLC:      p.LLC.Stats(),
	}
}

// AllocHost reserves untrusted memory, panicking on exhaustion; used by
// infrastructure that cannot meaningfully recover (the arena spans tens
// of gigabytes, so exhaustion indicates a programming error).
func (p *Platform) AllocHost(n uint64) uint64 {
	addr, err := p.Host.Alloc(n)
	if err != nil {
		panic(fmt.Sprintf("sgx: host arena exhausted allocating %d bytes: %v", n, err))
	}
	return addr
}

// FreeHost releases memory from AllocHost.
func (p *Platform) FreeHost(addr uint64) {
	if err := p.Host.Free(addr); err != nil {
		panic(fmt.Sprintf("sgx: bad host free: %v", err))
	}
}

package suvm

import (
	"fmt"
	"sync"
	"time"

	"eleos/internal/phys"
	"eleos/internal/sgx"
)

// ResizeTo adjusts the EPC++ capacity to targetBytes (clamped to
// [4 pages, configured capacity]). Shrinking evicts the vacated frames'
// contents (write-back if dirty) and returns their EPC pages to the SGX
// driver; growing re-pins previously released pages. This is the
// operation the paper's swapper thread performs when the driver reports
// PRM pressure (§3.3) — and, unlike the paper's prototype (§4.2, which
// fixed the size at initialization), it works dynamically. Resizing is
// an exclusive phase of the fault pipeline: it waits for in-flight
// faults to drain and blocks new ones for its (short) duration.
//
// On a heap with carved service domains the target is the TOTAL EPC++
// capacity (root plus every domain) and the balloon scales each carve
// proportionally to its current size: the root keeps its ≥4-frame
// floor, every domain keeps min(4, carve) frames, and leftover frames
// are distributed in fixed order (root first, then carve order) so the
// split is deterministic. See resizeDomainsLocked.
func (h *Heap) ResizeTo(th *sgx.Thread, targetBytes uint64) error {
	target := int(targetBytes / h.pageSize)
	if target < 4 {
		target = 4
	}
	if target > len(h.frames) {
		target = len(h.frames)
	}
	h.epoch.Lock()
	defer h.epoch.Unlock()
	if doms := h.domainList(); len(doms) > 0 {
		return h.resizeDomainsLocked(th, target, doms)
	}
	if target == h.activeFrames {
		return nil
	}
	h.stats.resizes.Add(1)
	if target < h.activeFrames {
		return h.shrinkLocked(th, target)
	}
	return h.growLocked(th, target)
}

func (h *Heap) shrinkLocked(th *sgx.Thread, target int) error {
	// Vacate the top frames. Pinned (linked) frames cannot be vacated;
	// fail fast so the caller (swapper tick or explicit resize) retries.
	for f := len(h.frames) - 1; f >= target; f-- {
		fm := &h.frames[f]
		if fm.disabled {
			continue
		}
		if fm.bsPage.Load() != noBSPage {
			ok, _ := h.evictFrame(th, int32(f))
			if !ok {
				return fmt.Errorf("suvm: cannot shrink EPC++ below %d frames: frame %d is pinned by a linked spointer", f+1, f)
			}
		}
		fm.disabled = true
	}
	// Drop the vacated frames from the free pools.
	h.free.filter(func(f int32) bool { return !h.frames[f].disabled })
	h.activeFrames = target
	// Return the underlying EPC pages to the driver (whole 4 KiB pages
	// only; with sub-4K SUVM pages the tail partial page is kept).
	start := uint64(target) * h.pageSize
	end := uint64(len(h.frames)) * h.pageSize
	start = (start + phys.PageSize - 1) &^ (phys.PageSize - 1)
	if end > start {
		h.encl.FreePages(h.frameBase+start, end-start)
	}
	return nil
}

func (h *Heap) growLocked(th *sgx.Thread, target int) error {
	start := uint64(h.activeFrames) * h.pageSize
	end := uint64(target) * h.pageSize
	start = (start + phys.PageSize - 1) &^ (phys.PageSize - 1)
	if end > start {
		// Re-materialize and pin the underlying EPC pages.
		h.encl.Pin(th, h.frameBase+start, end-start)
	}
	for f := target - 1; f >= h.activeFrames; f-- {
		h.frames[f].disabled = false
		h.frames[f].bsPage.Store(noBSPage)
		h.free.put(int32(f))
	}
	h.activeFrames = target
	return nil
}

// ReclaimFreePool pre-evicts pages until the free pool holds at least
// target frames (or nothing evictable remains) — the §3.2.3 swapper
// duty of "maintaining enough pages in the EPC++ free memory pool".
// Run from a dedicated swapper thread, it moves eviction work (dirty
// write-backs included) off the application threads' fault critical
// path: their major faults then find free frames and pay only the
// page-in. Each eviction holds the resize epoch shared for just that
// iteration, so application faults proceed alongside the reclaim and a
// resize never waits for more than one eviction.
func (h *Heap) ReclaimFreePool(th *sgx.Thread, target int) int {
	h.epoch.RLock()
	active := h.activeFrames
	h.epoch.RUnlock()
	if target > active/2 {
		target = active / 2
	}
	reclaimed, stalls := 0, 0
	for {
		h.epoch.RLock()
		if h.free.size() >= target {
			h.epoch.RUnlock()
			return reclaimed
		}
		v := h.ev.pick(h, nil)
		if v < 0 {
			h.epoch.RUnlock()
			return reclaimed
		}
		ok, _ := h.evictFrame(th, v)
		if ok {
			// The put must stay inside the epoch read section: between a
			// vacating eviction and the put, an exclusive shrink would see
			// frame v already empty, disable it, filter the free pools (v
			// not yet pooled) and release its EPC pages — a put after that
			// resurrects a disabled frame for future page-ins.
			h.free.put(v)
			reclaimed++
			stalls = 0
			h.epoch.RUnlock()
			continue
		}
		h.epoch.RUnlock()
		// Victim pinned, remapped, or mid-eviction by a faulting thread
		// (which keeps the frame for itself): move on, but give up after
		// a full pool's worth of consecutive misses — the faulting
		// threads are clearly consuming frames as fast as we free them.
		stalls++
		if stalls > active {
			return reclaimed
		}
	}
}

// BalloonTarget maps a driver-reported PRM share to the EPC++ capacity
// the balloon should chase: the share minus 25% headroom for the
// enclave's other memory (page tables, application heap), capped at the
// configured PageCacheBytes. Pure policy, no state touched — the target
// half of the BalloonTick split; the fleet controller uses it to turn
// the shares it installs into per-heap resize targets.
func (h *Heap) BalloonTarget(availBytes uint64) uint64 {
	target := availBytes - availBytes/4
	if target > h.cfg.PageCacheBytes {
		target = h.cfg.PageCacheBytes
	}
	return target
}

// ApplyBalloonTarget resizes EPC++ to targetBytes — the application
// half of the BalloonTick split, for callers (the fleet controller)
// that computed the target themselves. Currently a named alias of
// ResizeTo, kept separate so the balloon entry point is explicit.
func (h *Heap) ApplyBalloonTarget(th *sgx.Thread, targetBytes uint64) error {
	return h.ResizeTo(th, targetBytes)
}

// BalloonTick queries the SGX driver for this enclave's PRM share and
// resizes EPC++ to fit inside it, leaving a fraction of headroom for the
// enclave's other memory (page tables, application heap). This is the
// cooperative memory management of §3.3 — the enclave-side analogue of
// VM ballooning, except the trusted runtime can directly shrink its own
// working set. A refused resize (e.g. a transiently pinned frame) is
// recorded in the heap stats (BalloonSkips, LastBalloonErr) so skipped
// ticks are observable even when the caller discards the error.
func (h *Heap) BalloonTick(th *sgx.Thread) error {
	avail := h.plat.Driver.AvailableEPCBytesFor(h.encl.ID())
	err := h.ApplyBalloonTarget(th, h.BalloonTarget(avail))
	if err != nil {
		h.stats.balloonSkips.Add(1)
		msg := err.Error()
		h.lastBalloonErr.Store(&msg)
	}
	return err
}

// BalloonSignal is the demand half of the BalloonTick split: the
// per-heap counters the fleet controller samples each epoch to decide
// how PRM shares should move. All fields aggregate the root and every
// carved domain.
type BalloonSignal struct {
	// ActiveFrames is the current total EPC++ capacity in pages and
	// CapacityFrames the configured maximum; FreeFrames is the pooled
	// free-frame count (racy by nature, like framePool.size).
	ActiveFrames   int
	CapacityFrames int
	FreeFrames     int
	// PageBytes is the heap's EPC++ page size.
	PageBytes uint64
	// Cumulative demand counters (see StatsSnapshot for semantics).
	MajorFaults     uint64
	FaultsCoalesced uint64
	FaultWaitCycles uint64
	EvictScans      uint64
	EvictScanFrames uint64
}

// BalloonSignal samples the heap's demand counters for the fleet
// controller. Reading charges no cycles: like Stats, it models the
// untrusted runtime inspecting shared counters from outside.
func (h *Heap) BalloonSignal() BalloonSignal {
	s := h.Stats()
	h.epoch.RLock()
	active := h.activeFrames
	free := h.free.size()
	for _, d := range h.domainList() {
		active += d.active
		free += d.free.size()
	}
	h.epoch.RUnlock()
	return BalloonSignal{
		ActiveFrames:    active,
		CapacityFrames:  len(h.frames),
		FreeFrames:      free,
		PageBytes:       h.pageSize,
		MajorFaults:     s.MajorFaults,
		FaultsCoalesced: s.FaultsCoalesced,
		FaultWaitCycles: s.FaultWaitCycles,
		EvictScans:      s.EvictScans,
		EvictScanFrames: s.EvictScanFrames,
	}
}

// Swapper is the EPC++ swapper of §3.2.3: a dedicated enclave thread
// that re-balloons the page cache in response to driver-reported PRM
// pressure and tops up the free frame pool so application faults skip
// the eviction work. It runs in one of two modes: wall-clock (built by
// StartSwapper, a background goroutine ticking at a fixed interval —
// the server deployment) or manual (built by NewSwapper; the owner
// calls TickNow at points of its choosing, keeping benchmarks and tests
// deterministic — no host timer races the measured run).
type Swapper struct {
	h  *Heap
	th *sgx.Thread
	//eleos:lockorder 1
	mu sync.Mutex // serializes ticks (background loop vs TickNow)

	stop chan struct{} // nil in manual mode
	done sync.WaitGroup
}

// freePoolFraction is the share of EPC++ the swapper keeps free.
const freePoolFraction = 32 // 1/32 ≈ 3%

// NewSwapper creates a manual-mode swapper: no background goroutine,
// ticks happen only when the owner calls TickNow.
func (h *Heap) NewSwapper() *Swapper {
	return &Swapper{h: h, th: h.encl.NewThread()}
}

// StartSwapper launches the background swapper with the given wall-clock
// polling interval. The returned Swapper must be stopped before the
// heap's enclave is destroyed.
func (h *Heap) StartSwapper(interval time.Duration) *Swapper {
	s := h.NewSwapper()
	s.stop = make(chan struct{})
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		//eleos:allow wallclock -- StartSwapper IS the wall-clock mode; deterministic runs use NewSwapper+TickNow
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.TickNow()
			}
		}
	}()
	return s
}

// TickNow runs one synchronous swapper tick: balloon EPC++ against the
// driver-reported PRM share, then top up the free frame pool. Safe to
// call concurrently with application faults and with the background
// loop (ticks serialize).
func (s *Swapper) TickNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.th.Enter()
	// Best effort: a transiently pinned frame may block a shrink; the
	// next tick retries.
	_ = s.h.BalloonTick(s.th)
	s.h.ReclaimFreePool(s.th, s.h.ActiveFrames()/freePoolFraction)
	s.th.Exit()
}

// Stop terminates the background loop and waits for it to finish; a
// no-op for manual-mode swappers.
func (s *Swapper) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	s.done.Wait()
	s.stop = nil
}

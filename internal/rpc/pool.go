package rpc

import (
	"runtime"
	"sync"
	"sync/atomic"

	"eleos/internal/cache"
	"eleos/internal/sgx"
)

// request is one delegated untrusted call. The enclave-side caller spins
// on done; the worker publishes the virtual cycles the call consumed so
// the caller can account the synchronous latency it observed.
type request struct {
	fn         func(*sgx.HostCtx)
	workCycles uint64
	done       atomic.Uint32
}

// Stats counts pool activity.
type Stats struct {
	Calls     uint64
	WorkerOps uint64
}

// Pool is the untrusted RPC runtime: worker threads polling the shared
// job ring. Workers run with the CoSRPC cache class of service, so
// enabling LLC partitioning confines their pollution (§3.1, Fig 6b).
type Pool struct {
	plat    *sgx.Platform
	ring    *ring
	workers []*sgx.Thread
	wg      sync.WaitGroup
	stopped atomic.Bool
	started bool

	calls     atomic.Uint64
	workerOps atomic.Uint64
}

// NewPool creates a pool with the given number of worker threads and a
// job ring of the given capacity (rounded up to a power of two).
func NewPool(p *sgx.Platform, workers, ringCapacity int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	capacity := 1
	for capacity < ringCapacity || capacity < 2*workers {
		capacity *= 2
	}
	pool := &Pool{plat: p, ring: newRing(capacity)}
	for i := 0; i < workers; i++ {
		pool.workers = append(pool.workers, p.NewHostThread(cache.CoSRPC))
	}
	return pool
}

// Start launches the worker goroutines. Idempotent.
func (p *Pool) Start() {
	if p.started {
		return
	}
	p.started = true
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.workerLoop(w)
	}
}

// Stop shuts the workers down after the ring drains.
func (p *Pool) Stop() {
	if !p.started {
		return
	}
	p.stopped.Store(true)
	p.wg.Wait()
	p.started = false
	p.stopped.Store(false)
}

// Workers returns the pool's untrusted threads (the harness aggregates
// their cycle counters into end-to-end numbers).
func (p *Pool) Workers() []*sgx.Thread { return p.workers }

// Stats returns a snapshot of call counters.
func (p *Pool) Stats() Stats {
	return Stats{Calls: p.calls.Load(), WorkerOps: p.workerOps.Load()}
}

func (p *Pool) workerLoop(w *sgx.Thread) {
	defer p.wg.Done()
	ctx := w.HostContext()
	idle := 0
	for {
		req := p.ring.dequeue()
		if req == nil {
			if p.stopped.Load() {
				// Drain check: one more pass in case of a race between
				// a late enqueue and the stop flag.
				if req = p.ring.dequeue(); req == nil {
					return
				}
			} else {
				idle++
				if idle > 64 {
					idle = 0
				}
				spinWait()
				continue
			}
		}
		idle = 0
		start := w.T.Cycles()
		req.fn(ctx)
		req.workCycles = w.T.Cycles() - start
		p.workerOps.Add(1)
		req.done.Store(1)
	}
}

// Call delegates fn to a worker without exiting the enclave. The caller
// is charged the descriptor enqueue, the synchronous latency of the
// worker's execution (the virtual cycles the work consumed), and the
// completion-polling overhead — but no EEXIT/EENTER, no TLB flush and no
// enclave state disturbance. Safe for concurrent use by many enclave
// threads.
func (p *Pool) Call(caller *sgx.Thread, fn func(*sgx.HostCtx)) {
	if !p.started {
		panic("rpc: Call on a pool that was not started")
	}
	m := caller.Platform().Model
	caller.T.Charge(m.RPCEnqueue)
	req := &request{fn: fn}
	p.ring.enqueue(req)
	for req.done.Load() == 0 {
		spinWait()
	}
	// The worker's processing time is observed as synchronous latency,
	// but it is not enclave execution — the caller merely polls.
	caller.ChargeOutside(req.workCycles + m.RPCPoll)
	p.calls.Add(1)
}

// spinWait yields the host CPU between polls. Virtual time is charged
// explicitly by the cost model, so the only job here is to keep the
// polling loops from starving other goroutines on the real machine.
func spinWait() {
	runtime.Gosched()
}

package mckv

import (
	"errors"
	"testing"
)

func TestSlabClassSizing(t *testing.T) {
	a := newSlabAlloc(16 << 20)
	if a.classes[0].chunk != minChunk {
		t.Fatalf("first class %d", a.classes[0].chunk)
	}
	// Growth factor 1.25, monotonic, capped at the max item size.
	for i := 1; i < len(a.classes); i++ {
		prev, cur := a.classes[i-1].chunk, a.classes[i].chunk
		if cur <= prev {
			t.Fatalf("class %d not growing: %d -> %d", i, prev, cur)
		}
	}
	if last := a.classes[len(a.classes)-1].chunk; last != maxItemSize {
		t.Fatalf("last class %d want %d", last, maxItemSize)
	}
}

func TestSlabClassForFits(t *testing.T) {
	a := newSlabAlloc(16 << 20)
	for _, n := range []uint64{1, minChunk, 100, 1024, 4096, 100_000, maxItemSize} {
		ci, err := a.classFor(n)
		if err != nil {
			t.Fatalf("classFor(%d): %v", n, err)
		}
		if a.classes[ci].chunk < n {
			t.Fatalf("class %d chunk %d < request %d", ci, a.classes[ci].chunk, n)
		}
		if ci > 0 && a.classes[ci-1].chunk >= n {
			t.Fatalf("classFor(%d) skipped a smaller fitting class", n)
		}
	}
	if _, err := a.classFor(maxItemSize + 1); err == nil {
		t.Fatal("oversized item accepted")
	}
}

func TestSlabAllocReleaseAccounting(t *testing.T) {
	a := newSlabAlloc(4 << 20)
	ci, _ := a.classFor(1000)
	var offs []uint64
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		off, err := a.alloc(ci)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("chunk %#x handed out twice", off)
		}
		seen[off] = true
		offs = append(offs, off)
	}
	if a.InUse() != 100*a.classes[ci].chunk {
		t.Fatalf("in-use accounting %d", a.InUse())
	}
	for _, off := range offs {
		a.release(ci, off)
	}
	if a.InUse() != 0 {
		t.Fatalf("in-use after release %d", a.InUse())
	}
	// Released chunks are reused before new slabs are carved.
	off, _ := a.alloc(ci)
	if !seen[off] {
		t.Fatal("released chunk not reused")
	}
}

func TestSlabExhaustion(t *testing.T) {
	a := newSlabAlloc(2 << 20) // two slabs
	ci, _ := a.classFor(maxItemSize)
	if _, err := a.alloc(ci); err != nil {
		t.Fatal(err)
	}
	if _, err := a.alloc(ci); err != nil {
		t.Fatal(err)
	}
	if _, err := a.alloc(ci); !errors.Is(err, ErrNoMem) {
		t.Fatalf("exhaustion error = %v", err)
	}
}

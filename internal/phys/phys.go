// Package phys defines the physical address map of the simulated
// machine. The map exists so the LLC model can tell EPC lines (whose
// misses pay memory-encryption-engine amplification) from ordinary DRAM
// lines, and so distinct memory regions never alias in the cache.
//
//	[0, EPCLimit)            processor reserved memory (EPC frames)
//	[HostBase, HostLimit)    untrusted host DRAM
//
// Trust domain: platform (pure address arithmetic shared by both
// sides; no memory contents pass through here).
//
//eleos:platform
//eleos:deterministic
package phys

// PageSize is the architectural page size.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

const (
	// EPCBase is the first physical address of processor reserved
	// memory. Frame n occupies [EPCBase+n*PageSize, ...).
	EPCBase uint64 = 0

	// EPCLimit is the exclusive upper bound of the PRM range (128 MiB,
	// the size shipped with the paper's Skylake parts).
	EPCLimit uint64 = 128 << 20

	// HostBase is the first physical address of untrusted DRAM. The gap
	// between EPCLimit and HostBase keeps the regions visually distinct
	// in traces.
	HostBase uint64 = 1 << 30

	// HostLimit bounds the untrusted arena (64 GiB of address space;
	// storage is allocated sparsely on demand).
	HostLimit uint64 = HostBase + (64 << 30)
)

// IsEPC reports whether a physical address falls in the PRM range.
func IsEPC(paddr uint64) bool { return paddr < EPCLimit }

// FramePhys returns the physical address of EPC frame n.
func FramePhys(frame int) uint64 { return EPCBase + uint64(frame)*PageSize }

// PageFloor rounds an address down to a page boundary.
func PageFloor(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageCeil rounds a size up to a whole number of pages.
func PageCeil(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// PageNum returns the page number containing addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }

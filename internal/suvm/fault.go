package suvm

import (
	"fmt"

	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// acquire returns the EPC++ frame caching bsPage with its reference
// count raised (pinning it against eviction), faulting the page in if it
// is not resident. This is the unlinked-spointer path: resident hits are
// the paper's minor faults, misses its major faults. The caller must
// pair it with release.
func (h *Heap) acquire(th *sgx.Thread, bsPage uint64) int32 {
	h.lockCost(th)
	h.touchIPT(th, bsPage)
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	if f, ok := sh.m[bsPage]; ok {
		fm := &h.frames[f]
		fm.refcnt.Add(1)
		fm.accessed.Store(true)
		sh.mu.Unlock()
		h.stats.minorFaults.Add(1)
		return f
	}
	sh.mu.Unlock()
	return h.majorFault(th, bsPage)
}

// release drops the pin taken by acquire, propagating the access's dirty
// state into the page table (the paper copies the spointer dirty bit on
// unlink, §3.2.4).
func (h *Heap) release(th *sgx.Thread, f int32, dirty bool) {
	fm := &h.frames[f]
	sh := h.resident.shard(fm.bsPage)
	h.lockCost(th)
	sh.mu.Lock()
	if fm.refcnt.Add(-1) < 0 {
		sh.mu.Unlock()
		panic("suvm: frame reference count underflow")
	}
	if dirty {
		fm.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// majorFault pages bsPage into EPC++ — entirely inside the enclave: no
// exit, no TLB flush, no IPIs. Serialized by faultMu, like the paper's
// prototype serializes page-in on the faulting bucket; concurrent
// faulters on the same page link to the first winner's frame.
func (h *Heap) majorFault(th *sgx.Thread, bsPage uint64) int32 {
	h.lockCost(th)
	h.faultMu.Lock()
	// Recheck under the slow-path lock: another thread may have paged
	// this page in while we were acquiring it.
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	if f, ok := sh.m[bsPage]; ok {
		fm := &h.frames[f]
		fm.refcnt.Add(1)
		fm.accessed.Store(true)
		sh.mu.Unlock()
		h.faultMu.Unlock()
		h.stats.minorFaults.Add(1)
		return f
	}
	sh.mu.Unlock()

	c0 := th.T.Cycles()
	f := h.takeFrameLocked(th)
	h.pageIn(th, bsPage, f)
	h.stats.faultCycles.Add(th.T.Cycles() - c0)
	fm := &h.frames[f]
	fm.bsPage = bsPage
	fm.refcnt.Store(1)
	fm.accessed.Store(true)
	fm.dirty.Store(false)

	sh.mu.Lock()
	sh.m[bsPage] = f
	sh.mu.Unlock()
	h.faultMu.Unlock()
	h.stats.majorFaults.Add(1)
	return f
}

// pageIn fills frame f with the contents of bsPage: decrypt-and-verify
// from the backing store if a sealed copy exists, zero-fill otherwise
// (fresh allocation). Called with faultMu held; the frame is not yet
// published in the resident table.
func (h *Heap) pageIn(th *sgx.Thread, bsPage uint64, f int32) {
	h.lockCost(th)
	h.touchMeta(th, bsPage, false)
	ms := h.meta.shard(bsPage)
	ms.mu.Lock()
	m := ms.get(bsPage, false)
	var nonce seal.Nonce
	var tag [seal.TagSize]byte
	present := m != nil && m.present
	if present {
		nonce, tag = m.nonce, m.tag
	}
	ms.mu.Unlock()

	if !present {
		th.WriteStream(h.frameVaddr(f), zeroBuf[:h.pageSize])
		h.stats.pageIns.Add(1)
		return
	}
	addr, sealer := h.resolve(bsPage)
	ct := h.getScratch()
	pt := h.getScratch()
	defer h.putScratch(ct)
	defer h.putScratch(pt)
	th.Read(addr, (*ct)[:h.pageSize])
	copy((*ct)[h.pageSize:], tag[:])
	plain, err := sealer.Open(th.T, (*pt)[:0], (*ct)[:h.pageSize+seal.Overhead], seal.AddrAAD(addr), nonce)
	if err != nil {
		panic(fmt.Sprintf("suvm: backing-store page %d failed integrity verification: %v", bsPage, err))
	}
	th.WriteStream(h.frameVaddr(f), plain)
	h.stats.pageIns.Add(1)
}

// takeFrameLocked pops a free frame, evicting a victim first when the
// pool is dry. Called with faultMu held.
func (h *Heap) takeFrameLocked(th *sgx.Thread) int32 {
	h.freeMu.Lock()
	if n := len(h.freeFrames); n > 0 {
		f := h.freeFrames[n-1]
		h.freeFrames = h.freeFrames[:n-1]
		h.freeMu.Unlock()
		return f
	}
	h.freeMu.Unlock()
	for attempt := 0; attempt < 3; attempt++ {
		v := h.pickVictimLocked()
		if v < 0 {
			break
		}
		if h.evictFrameLocked(th, v) {
			return v
		}
	}
	panic("suvm: EPC++ exhausted — every frame is pinned by a linked spointer")
}

// pickVictimLocked selects an eviction victim under the configured
// policy. Returns -1 when no frame is evictable. Reference counts are
// read racily here; evictFrameLocked re-verifies under the shard lock.
func (h *Heap) pickVictimLocked() int32 {
	switch h.cfg.Policy {
	case PolicyFIFO:
		for i := 0; i < h.activeFrames; i++ {
			h.fifoHand = (h.fifoHand + 1) % h.activeFrames
			fm := &h.frames[h.fifoHand]
			if !fm.disabled && fm.bsPage != noBSPage && fm.refcnt.Load() == 0 {
				return int32(h.fifoHand)
			}
		}
	case PolicyRandom:
		for i := 0; i < 4*h.activeFrames; i++ {
			h.rng ^= h.rng << 13
			h.rng ^= h.rng >> 7
			h.rng ^= h.rng << 17
			f := int(h.rng % uint64(h.activeFrames))
			fm := &h.frames[f]
			if !fm.disabled && fm.bsPage != noBSPage && fm.refcnt.Load() == 0 {
				return int32(f)
			}
		}
	default: // PolicyClock: second chance via the accessed bit.
		for i := 0; i < 2*h.activeFrames; i++ {
			h.clockHand = (h.clockHand + 1) % h.activeFrames
			fm := &h.frames[h.clockHand]
			if fm.disabled || fm.bsPage == noBSPage || fm.refcnt.Load() != 0 {
				continue
			}
			if fm.accessed.Swap(false) {
				continue
			}
			return int32(h.clockHand)
		}
		// Second chance exhausted: take the first unpinned frame.
		for i := 0; i < h.activeFrames; i++ {
			h.clockHand = (h.clockHand + 1) % h.activeFrames
			fm := &h.frames[h.clockHand]
			if !fm.disabled && fm.bsPage != noBSPage && fm.refcnt.Load() == 0 {
				return int32(h.clockHand)
			}
		}
	}
	return -1
}

// evictFrameLocked evicts frame f from EPC++: unmap it, then write the
// page back to the sealed backing store — unless it is clean and a valid
// sealed copy already exists, in which case it is simply dropped (the
// write-back avoidance optimization of §3.2.4, impossible under SGX's
// EWB). Returns false if the frame became pinned since victim selection.
// Called with faultMu held.
func (h *Heap) evictFrameLocked(th *sgx.Thread, f int32) bool {
	fm := &h.frames[f]
	bsPage := fm.bsPage
	sh := h.resident.shard(bsPage)
	h.lockCost(th)
	sh.mu.Lock()
	if fm.refcnt.Load() != 0 {
		sh.mu.Unlock()
		return false
	}
	delete(sh.m, bsPage)
	dirty := fm.dirty.Load()
	fm.dirty.Store(false)
	fm.bsPage = noBSPage
	sh.mu.Unlock()

	// From here the page is unmapped; a concurrent fault on bsPage will
	// block on faultMu (held by us) and then page in from the backing
	// store, so the write-back below must complete first — it does,
	// synchronously.
	if dirty || h.cfg.WriteBackClean {
		h.writeBack(th, bsPage, f)
	} else {
		h.stats.cleanDrops.Add(1)
	}
	h.stats.evictions.Add(1)
	return true
}

// writeBack seals the frame contents with a fresh nonce and stores the
// ciphertext at the page's backing-store address, recording nonce and
// MAC in the crypto-metadata table inside the enclave.
func (h *Heap) writeBack(th *sgx.Thread, bsPage uint64, f int32) {
	addr, sealer := h.resolve(bsPage)
	pt := h.getScratch()
	ct := h.getScratch()
	defer h.putScratch(pt)
	defer h.putScratch(ct)
	th.Read(h.frameVaddr(f), (*pt)[:h.pageSize])
	nonce, sealed := sealer.Seal(th.T, (*ct)[:0], (*pt)[:h.pageSize], seal.AddrAAD(addr))
	th.Write(addr, sealed[:h.pageSize])

	h.lockCost(th)
	h.touchMeta(th, bsPage, true)
	ms := h.meta.shard(bsPage)
	ms.mu.Lock()
	m := ms.get(bsPage, true)
	m.present = true
	m.nonce = nonce
	copy(m.tag[:], sealed[h.pageSize:])
	ms.mu.Unlock()
	h.stats.writeBacks.Add(1)
}

// access is the positioned, stays-unlinked data path used by containers
// (and by spointer accesses spanning a page boundary): each touched page
// is transiently pinned, copied through, and released.
func (h *Heap) access(th *sgx.Thread, addr uint64, buf []byte, write bool) {
	for len(buf) > 0 {
		bsPage := h.bsPageOf(addr)
		pageOff := addr & (h.pageSize - 1)
		n := int(h.pageSize - pageOff)
		if n > len(buf) {
			n = len(buf)
		}
		f := h.acquire(th, bsPage)
		if write {
			th.Write(h.frameVaddr(f)+pageOff, buf[:n])
		} else {
			th.Read(h.frameVaddr(f)+pageOff, buf[:n])
		}
		h.release(th, f, write)
		addr += uint64(n)
		buf = buf[n:]
	}
}

// zeroBuf backs zero-fill page-ins for every supported page size.
var zeroBuf = make([]byte, 64<<10)

// CorruptBacking flips one bit of the sealed blob behind the given
// backing-store address. Test hook demonstrating that SUVM integrity
// protection is real: the next page-in panics.
func (h *Heap) CorruptBacking(p *SPtr, off uint64) {
	pageAddr, _ := h.resolve(h.bsPageOf(p.base + off))
	addr := pageAddr + ((p.base + off) & (h.pageSize - 1))
	var b [1]byte
	h.plat.Host.ReadAt(addr, b[:])
	b[0] ^= 0x80
	h.plat.Host.WriteAt(addr, b[:])
}

// Resident reports whether the page containing offset off of allocation
// p is currently cached in EPC++ (test and harness hook).
func (h *Heap) Resident(p *SPtr, off uint64) bool {
	bsPage := h.bsPageOf(p.base + off)
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[bsPage]
	return ok
}

package eleos

import (
	"errors"
	"testing"
)

// Every sentinel must be matchable with errors.Is through the public
// API alone, end to end from the operation that produces it.
func TestSentinelErrorsEndToEnd(t *testing.T) {
	rt := newRuntime(t)

	// ErrOutOfEPC: a page cache far beyond the machine's PRM.
	if _, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 40}); !errors.Is(err, ErrOutOfEPC) {
		t.Fatalf("oversized page cache error = %v, want ErrOutOfEPC", err)
	}

	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	// ErrFreed: the pointer is poisoned by Free; later use and a double
	// free both report it.
	p, err := ctx.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadAt(0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after free error = %v, want ErrFreed", err)
	}
	if err := p.WriteAt(0, []byte("x")); !errors.Is(err, ErrFreed) {
		t.Fatalf("write after free error = %v, want ErrFreed", err)
	}
	if err := p.Free(); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free error = %v, want ErrFreed", err)
	}

	// ErrSegmentBusy: a segment mounted by one enclave refuses a second
	// mount until it is detached.
	other, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Destroy()
	ctxB := other.NewContext()
	defer ctxB.Close()
	seg, err := rt.NewSegment(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := ctx.Attach(seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctxB.Attach(seg); !errors.Is(err, ErrSegmentBusy) {
		t.Fatalf("double attach error = %v, want ErrSegmentBusy", err)
	}
	if err := ctx.Detach(pa); err != nil {
		t.Fatal(err)
	}
	if pb, err := ctxB.Attach(seg); err != nil {
		t.Fatal(err)
	} else if err := ctxB.Detach(pb); err != nil {
		t.Fatal(err)
	}
	// The detached pointer is poisoned too.
	if err := pa.ReadAt(0, make([]byte, 8)); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after detach error = %v, want ErrFreed", err)
	}
}

// TestSentinelErrorTable walks every public path documented to produce
// one of the four headline sentinels and asserts errors.Is matches each
// through the public re-export in errors.go.
func TestSentinelErrorTable(t *testing.T) {
	rt := newRuntime(t)
	newCtx := func(t *testing.T) *Ctx {
		t.Helper()
		encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(encl.Destroy)
		ctx := encl.NewContext()
		t.Cleanup(ctx.Close)
		return ctx
	}
	// Two long-lived contexts shared by the rows: each enclave reserves
	// its backing store in the host arena for the life of the runtime,
	// so one enclave per row would exhaust the arena.
	ctxA, ctxB := newCtx(t), newCtx(t)
	freedPtr := func(t *testing.T) *Ptr {
		t.Helper()
		p, err := ctxA.Malloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Free(); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// A second runtime, already closed, for the ErrPoolStopped rows. Its
	// context outlives Close so the threads stay usable as callers.
	closedRT, err := NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	closedEncl, err := closedRT.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer closedEncl.Destroy()
	closedCtx := closedEncl.NewContext()
	defer closedCtx.Close()
	closedRT.Close()

	cases := []struct {
		name string
		want error
		op   func(t *testing.T) error
	}{
		{"OutOfEPC/runtime machine config beyond PRM", ErrOutOfEPC, func(t *testing.T) error {
			over, err := NewRuntime(WithMachine(MachineConfig{UsablePRMBytes: 256 << 20}))
			if err == nil {
				over.Close()
			}
			return err
		}},
		{"OutOfEPC/enclave page cache beyond PRM", ErrOutOfEPC, func(t *testing.T) error {
			encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 1 << 40})
			if err == nil {
				encl.Destroy()
			}
			return err
		}},

		{"Freed/Read", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).Read(make([]byte, 8))
		}},
		{"Freed/Write", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).Write([]byte("x"))
		}},
		{"Freed/ReadAt", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).ReadAt(0, make([]byte, 8))
		}},
		{"Freed/WriteAt", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).WriteAt(0, []byte("x"))
		}},
		{"Freed/ReadU64", ErrFreed, func(t *testing.T) error {
			_, err := freedPtr(t).ReadU64()
			return err
		}},
		{"Freed/WriteU64", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).WriteU64(7)
		}},
		{"Freed/Advance", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).Advance(8)
		}},
		{"Freed/Seek", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).Seek(8)
		}},
		{"Freed/double Free", ErrFreed, func(t *testing.T) error {
			return freedPtr(t).Free()
		}},
		{"Freed/use after Detach", ErrFreed, func(t *testing.T) error {
			ctx := ctxA
			seg, err := rt.NewSegment(1<<20, 4096)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ctx.Attach(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctx.Detach(p); err != nil {
				t.Fatal(err)
			}
			return p.ReadAt(0, make([]byte, 8))
		}},

		{"SegmentBusy/Attach while mounted elsewhere", ErrSegmentBusy, func(t *testing.T) error {
			seg, err := rt.NewSegment(1<<20, 4096)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ctxA.Attach(seg)
			if err != nil {
				t.Fatal(err)
			}
			_, attachErr := ctxB.Attach(seg)
			if err := ctxA.Detach(p); err != nil {
				t.Fatal(err)
			}
			return attachErr
		}},
		{"SegmentBusy/Detach while a page is linked", ErrSegmentBusy, func(t *testing.T) error {
			ctx := ctxB
			seg, err := rt.NewSegment(1<<20, 4096)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ctx.Attach(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Detach unlinks its own spointer first, so the pin must come
			// from a second spointer into the segment: clone, then link
			// the clone with a current-offset read.
			clone := p.Raw().Clone()
			if err := clone.Read(ctx.Thread(), make([]byte, 8)); err != nil {
				t.Fatal(err)
			}
			detachErr := ctx.Detach(p)
			clone.Unlink(ctx.Thread())
			if err := ctx.Detach(p); err != nil {
				t.Fatal(err)
			}
			return detachErr
		}},

		{"PoolStopped/Call", ErrPoolStopped, func(t *testing.T) error {
			return closedRT.Pool().Call(closedCtx.Thread(), func(h *HostCtx) {})
		}},
		{"PoolStopped/CallAsync", ErrPoolStopped, func(t *testing.T) error {
			_, err := closedRT.Pool().CallAsync(closedCtx.Thread(), func(h *HostCtx) {})
			return err
		}},
		{"PoolStopped/CallBatch", ErrPoolStopped, func(t *testing.T) error {
			return closedRT.Pool().CallBatch(closedCtx.Thread(), []func(*HostCtx){func(h *HostCtx) {}})
		}},

		{"ConflictingOptions/fixed pool with worker bounds", ErrConflictingOptions, func(t *testing.T) error {
			over, err := NewRuntime(WithRPCWorkers(2), WithWorkerBounds(1, 4))
			if err == nil {
				over.Close()
			}
			return err
		}},

		{"CrossDomain/root allocation freed via service domain", ErrCrossDomain, func(t *testing.T) error {
			p, err := ctxA.Malloc(4096)
			if err != nil {
				t.Fatal(err)
			}
			svc, err := ctxA.Enclave().NewService("crossdomain", WithServiceEPC(64<<10))
			if err != nil {
				t.Fatal(err)
			}
			freeErr := svc.Domain().Free(ctxA.Thread(), p.Raw())
			if err := p.Free(); err != nil {
				t.Fatal(err)
			}
			return freeErr
		}},

		{"CrossEnclave/CrossCall into another enclave", ErrCrossEnclave, func(t *testing.T) error {
			far, err := ctxB.Enclave().NewService("farsvc", WithServiceEPC(64<<10))
			if err != nil {
				t.Fatal(err)
			}
			return ctxA.CrossCall(far, func(*Ctx) {})
		}},

		{"Canceled/linked op behind a failed op", ErrCanceled, func(t *testing.T) error {
			q := ctxA.IO()
			buf := make([]byte, 8)
			q.Push(IOPread{FS: rt.NewFS(), FD: 9999, Off: 0, Buf: buf})
			q.PushLinked(IOPread{FS: rt.NewFS(), FD: 9999, Off: 0, Buf: buf})
			cqes, err := q.SubmitAndWait()
			if err != nil {
				t.Fatal(err)
			}
			if len(cqes) != 2 || cqes[0].Err == nil {
				t.Fatalf("expected a failed op followed by a canceled op, got %+v", cqes)
			}
			return cqes[1].Err
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.op(t)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// ErrPoolStopped: exit-less calls against a closed runtime fail with a
// matchable sentinel at the pool level.
func TestPoolStoppedAfterClose(t *testing.T) {
	rt, err := NewRuntime()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	rt.Close()
	if err := rt.Pool().Call(ctx.Thread(), func(h *HostCtx) {}); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("Call on closed runtime = %v, want ErrPoolStopped", err)
	}
	if _, err := rt.Pool().CallAsync(ctx.Thread(), func(h *HostCtx) {}); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("CallAsync on closed runtime = %v, want ErrPoolStopped", err)
	}

	// The panicking convenience wrappers surface the closure too.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Exitless on a closed runtime did not panic")
			}
		}()
		ctx.Exitless(func(h *HostCtx) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Go on a closed runtime did not panic")
			}
		}()
		ctx.Go(func(h *HostCtx) {})
	}()
}

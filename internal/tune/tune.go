// Package tune is the configless self-tuning runtime controller: a
// feedback loop that sizes the exit-less RPC worker pool and picks the
// exit-less I/O submission mode from live counters instead of hand-set
// knobs (after "SGX Switchless Calls Made Configless": the worker count
// and submission strategy only beat the baselines when they match the
// offered load, so the runtime should find them itself).
//
// The controller is sampled, not threaded: enclave serving loops call
// Pump at natural points (once per request is plenty — off-epoch Pumps
// are one comparison). When the pumping thread's virtual clock crosses
// an epoch boundary the controller reads the pool and engine counters,
// forms two signals, and decides:
//
//   - demand — worker-cycles of settled service per caller-cycle
//     (SettledWorkCycles / elapsed): the offered parallelism. The pool
//     is resized toward ceil(demand / TargetUtilization), bounded by
//     [MinWorkers, MaxWorkers], after Hysteresis consecutive epochs
//     agree on the direction (shrinks wait ShrinkHysteresis epochs —
//     scale up fast, down slowly).
//   - the same demand picks the submission-mode advice: below
//     SyncDemand a synchronous single-op loop is cheapest; above it the
//     asynchronous engine hides worker latency behind compute; above
//     ChainDemand submissions should also be linked/batched so one
//     doorbell carries many ops.
//
// Every decision input is derived from virtual-cycle counters that
// advance on the submitting threads (SettledWorkCycles, WaitCycles,
// ReapStallCycles, call counts, the pump thread's own clock), never
// from wall-clock time or host scheduling. A single-threaded drive
// therefore produces a bit-identical decision sequence on every run —
// the property the fixed-epoch determinism tests pin. Host-timing
// dependent counters (steals, sleeps, wakes, instantaneous queue depth)
// are sampled into the observability Sample but never consulted by the
// decision logic.
//
// Trust domain: trusted — Pump runs on enclave serving threads and
// touches only the rpc/exitio boundary objects and suvm facade stats.
//
//eleos:trusted
//eleos:deterministic
package tune

import (
	"fmt"
	"math"
	"sync"

	"eleos/internal/exitio"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Policy tunes the controller itself. The zero value of any field
// selects its default; Default() returns the fully-populated defaults.
type Policy struct {
	// EpochCycles is the decision period in virtual cycles of the
	// pumping thread (default 1e6 ≈ 0.3 ms on the paper's machine).
	EpochCycles uint64
	// MinWorkers and MaxWorkers bound the RPC worker pool (defaults 1
	// and 8). The pool starts at MinWorkers and is never resized
	// outside the bounds.
	MinWorkers int
	MaxWorkers int
	// TargetUtilization is the per-worker demand the controller sizes
	// for: the pool is driven toward ceil(demand/TargetUtilization)
	// workers (default 0.85).
	TargetUtilization float64
	// Hysteresis is how many consecutive epochs must agree before the
	// controller grows the pool or switches mode advice (default 2);
	// ShrinkHysteresis gates shrinks separately (default 2×Hysteresis),
	// so a short lull does not throw workers away.
	Hysteresis       int
	ShrinkHysteresis int
	// SyncDemand and ChainDemand split the demand axis into the three
	// submission strategies: below SyncDemand (default 0.5) the advice
	// is synchronous single-op dispatch, above it asynchronous, and
	// above ChainDemand (default 1.5) asynchronous with linked/batched
	// chains.
	SyncDemand  float64
	ChainDemand float64
	// TraceCap bounds the recorded decision trace (default 4096
	// decisions; the trace stops growing beyond it).
	TraceCap int
}

// Default returns the default policy.
func Default() Policy {
	return Policy{
		EpochCycles:       1_000_000,
		MinWorkers:        1,
		MaxWorkers:        8,
		TargetUtilization: 0.85,
		Hysteresis:        2,
		ShrinkHysteresis:  4,
		SyncDemand:        0.5,
		ChainDemand:       1.5,
		TraceCap:          4096,
	}
}

// normalized fills zero fields with their defaults.
func (p Policy) normalized() Policy {
	d := Default()
	if p.EpochCycles == 0 {
		p.EpochCycles = d.EpochCycles
	}
	if p.MinWorkers == 0 {
		p.MinWorkers = d.MinWorkers
	}
	if p.MaxWorkers == 0 {
		p.MaxWorkers = d.MaxWorkers
	}
	if p.TargetUtilization == 0 {
		p.TargetUtilization = d.TargetUtilization
	}
	if p.Hysteresis == 0 {
		p.Hysteresis = d.Hysteresis
	}
	if p.ShrinkHysteresis == 0 {
		p.ShrinkHysteresis = 2 * p.Hysteresis
	}
	if p.SyncDemand == 0 {
		p.SyncDemand = d.SyncDemand
	}
	if p.ChainDemand == 0 {
		p.ChainDemand = d.ChainDemand
	}
	if p.TraceCap == 0 {
		p.TraceCap = d.TraceCap
	}
	return p
}

func (p Policy) validate() error {
	switch {
	case p.MinWorkers < 1:
		return fmt.Errorf("tune: MinWorkers %d < 1", p.MinWorkers)
	case p.MaxWorkers < p.MinWorkers:
		return fmt.Errorf("tune: MaxWorkers %d < MinWorkers %d", p.MaxWorkers, p.MinWorkers)
	case p.TargetUtilization <= 0 || p.TargetUtilization > 1:
		return fmt.Errorf("tune: TargetUtilization %g outside (0, 1]", p.TargetUtilization)
	case p.SyncDemand > p.ChainDemand:
		return fmt.Errorf("tune: SyncDemand %g > ChainDemand %g", p.SyncDemand, p.ChainDemand)
	}
	return nil
}

// Advice is the controller's current submission recommendation: the
// exitio dispatch mode plus whether submitters should link/batch ops
// into chains.
type Advice struct {
	Mode  exitio.Mode
	Chain bool
}

func adviceFor(p Policy, demand float64) Advice {
	switch {
	case demand < p.SyncDemand:
		return Advice{Mode: exitio.ModeRPCSync}
	case demand < p.ChainDemand:
		return Advice{Mode: exitio.ModeRPCAsync}
	default:
		return Advice{Mode: exitio.ModeRPCAsync, Chain: true}
	}
}

// Sample is one epoch's raw counter deltas — the controller's
// observability record. Steals, Sleeps, Wakes and QueueDepth depend on
// host scheduling and are reported for inspection only; the decision
// logic never reads them.
type Sample struct {
	// ElapsedCycles is the pump thread's virtual-cycle delta over the
	// epoch.
	ElapsedCycles uint64
	// Deterministic rpc deltas: requests settled, their worker cycles,
	// and the residual latency callers could not hide.
	Calls             uint64
	SettledWorkCycles uint64
	WaitCycles        uint64
	// Deterministic exitio deltas.
	Doorbells       uint64
	ReapStallCycles uint64
	// Host-timing dependent rpc deltas (observability only).
	Steals uint64
	Sleeps uint64
	Wakes  uint64
	// QueueDepth is the instantaneous published-but-undequeued request
	// count at the epoch boundary (observability only).
	QueueDepth int64
	// Aggregate watched-heap deltas (observability only for now; the
	// EPC++ balloon controller of ROADMAP item 1 is their consumer).
	MajorFaults     uint64
	FaultsCoalesced uint64
	FaultWaitCycles uint64
}

// Decision is one epoch's outcome. Every field is derived from
// virtual-cycle counters, so in a single-driver run the sequence of
// Decisions is identical across runs.
type Decision struct {
	// Epoch is the 1-based decision ordinal; Cycles the pump thread's
	// clock at the boundary.
	Epoch  uint64
	Cycles uint64
	// Demand is worker-cycles of settled service per caller-cycle;
	// Stall the fraction of the epoch the callers spent blocked on
	// residual worker latency.
	Demand float64
	Stall  float64
	// Workers is the live pool size after the decision; Resized is set
	// when this epoch changed it.
	Workers int
	Resized bool
	// Mode and Chain are the advice after the decision; Switched is set
	// when this epoch changed it.
	Mode     exitio.Mode
	Chain    bool
	Switched bool
}

// Stats is a snapshot of the controller.
type Stats struct {
	// Enabled distinguishes a live controller from the zero value the
	// unified RuntimeStats tree reports when autotuning is off.
	Enabled bool
	// Epochs counts decisions taken; Grows/Shrinks pool resizes in each
	// direction; ModeSwitches advice changes.
	Epochs       uint64
	Grows        uint64
	Shrinks      uint64
	ModeSwitches uint64
	// Workers is the current live pool size, Mode/Chain the current
	// advice, Demand/Stall the last epoch's signals.
	Workers int
	Mode    exitio.Mode
	Chain   bool
	Demand  float64
	Stall   float64
	// Last is the most recent epoch's raw sample.
	Last Sample
}

// HeapSource is anything exposing SUVM counters (a *suvm.Heap); watched
// heaps contribute fault/coalesce rates to the epoch samples.
type HeapSource interface {
	Stats() suvm.StatsSnapshot
}

// Controller is the feedback loop. One controller owns one pool and one
// engine; any number of serving threads may Pump it (an internal mutex
// serializes epochs), but determinism of the decision sequence is
// guaranteed only for a single pumping thread.
type Controller struct {
	pol  Policy
	pool *rpc.Pool
	eng  *exitio.Engine

	// mu serializes epoch evaluation and advice reads. Epochs call
	// Pool.Resize while holding it (rank 90 nests inside).
	//
	//eleos:lockorder 80
	mu sync.Mutex

	heaps []HeapSource

	started   bool
	lastStamp uint64
	prevRPC   rpc.Stats
	prevIO    exitio.Stats
	prevHeap  [3]uint64 // MajorFaults, FaultsCoalesced, FaultWaitCycles

	epochs       uint64
	grows        uint64
	shrinks      uint64
	modeSwitches uint64
	advice       Advice
	lastDemand   float64
	lastStall    float64
	lastSample   Sample

	growVotes   int
	shrinkVotes int
	modeVotes   int
	modeWant    Advice

	trace []Decision
}

// New builds a controller over the pool and engine. The policy's zero
// fields take their defaults; the populated policy is validated. The
// initial advice matches the engine's default mode, so queues need no
// mode flip until the first epoch disagrees.
func New(pool *rpc.Pool, eng *exitio.Engine, pol Policy) (*Controller, error) {
	if pool == nil {
		return nil, fmt.Errorf("tune: nil worker pool")
	}
	if eng == nil {
		return nil, fmt.Errorf("tune: nil I/O engine")
	}
	pol = pol.normalized()
	if err := pol.validate(); err != nil {
		return nil, err
	}
	c := &Controller{pol: pol, pool: pool, eng: eng}
	c.advice = Advice{Mode: eng.Mode(), Chain: eng.Mode() == exitio.ModeRPCAsync}
	c.modeWant = c.advice
	return c, nil
}

// Policy returns the controller's normalized policy.
func (c *Controller) Policy() Policy { return c.pol }

// WatchHeap adds a SUVM heap whose fault counters join the epoch
// samples. Call during setup, before pumping starts.
func (c *Controller) WatchHeap(h HeapSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heaps = append(c.heaps, h)
}

// Advice returns the current submission recommendation.
func (c *Controller) Advice() Advice {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advice
}

// Workers returns the live worker-pool size.
func (c *Controller) Workers() int { return c.pool.WorkerCount() }

// ApplyMode brings q onto the current mode advice, at a chain boundary
// (Queue.SetMode settles anything in flight first). Serving loops call
// it next to Pump; it is a no-op when the queue already matches.
func (c *Controller) ApplyMode(th *sgx.Thread, q *exitio.Queue) error {
	mode := c.Advice().Mode
	if q.Mode() == mode {
		return nil
	}
	return q.SetMode(th, mode)
}

// Pump gives the controller a chance to act. Cheap off-epoch (one clock
// comparison under the mutex); on an epoch boundary it samples the
// counters, decides, and applies any resize. Returns true when an epoch
// fired. th is the pumping thread; its virtual clock is the epoch
// timebase.
func (c *Controller) Pump(th *sgx.Thread) bool {
	now := th.T.Cycles()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		// Baseline epoch: record the starting counters, decide nothing.
		c.started = true
		c.lastStamp = now
		c.prevRPC = c.pool.Stats()
		c.prevIO = c.eng.Stats()
		c.prevHeap = c.heapCounters()
		return false
	}
	if now < c.lastStamp+c.pol.EpochCycles {
		return false
	}
	c.epoch(now)
	return true
}

func (c *Controller) heapCounters() [3]uint64 {
	var out [3]uint64
	for _, h := range c.heaps {
		s := h.Stats()
		out[0] += s.MajorFaults
		out[1] += s.FaultsCoalesced
		out[2] += s.FaultWaitCycles
	}
	return out
}

// epoch runs one decision with c.mu held.
func (c *Controller) epoch(now uint64) {
	elapsed := now - c.lastStamp
	c.lastStamp = now

	rs := c.pool.Stats()
	is := c.eng.Stats()
	hs := c.heapCounters()
	sample := Sample{
		ElapsedCycles:     elapsed,
		Calls:             rs.Calls - c.prevRPC.Calls,
		SettledWorkCycles: rs.SettledWorkCycles - c.prevRPC.SettledWorkCycles,
		WaitCycles:        rs.WaitCycles - c.prevRPC.WaitCycles,
		Doorbells:         is.Doorbells - c.prevIO.Doorbells,
		ReapStallCycles:   is.ReapStallCycles - c.prevIO.ReapStallCycles,
		Steals:            rs.Steals - c.prevRPC.Steals,
		Sleeps:            rs.Sleeps - c.prevRPC.Sleeps,
		Wakes:             rs.Wakes - c.prevRPC.Wakes,
		QueueDepth:        rs.QueueDepth,
		MajorFaults:       hs[0] - c.prevHeap[0],
		FaultsCoalesced:   hs[1] - c.prevHeap[1],
		FaultWaitCycles:   hs[2] - c.prevHeap[2],
	}
	c.prevRPC, c.prevIO, c.prevHeap = rs, is, hs

	demand := float64(sample.SettledWorkCycles) / float64(elapsed)
	stall := float64(sample.WaitCycles) / float64(elapsed)
	c.lastDemand, c.lastStall, c.lastSample = demand, stall, sample
	c.epochs++

	workers := c.pool.WorkerCount()
	resized := c.voteResize(demand, workers)
	if resized {
		workers = c.pool.WorkerCount()
	}
	switched := c.voteMode(demand)

	if c.pol.TraceCap < 0 || len(c.trace) < c.pol.TraceCap {
		c.trace = append(c.trace, Decision{
			Epoch:    c.epochs,
			Cycles:   now,
			Demand:   demand,
			Stall:    stall,
			Workers:  workers,
			Resized:  resized,
			Mode:     c.advice.Mode,
			Chain:    c.advice.Chain,
			Switched: switched,
		})
	}
}

// voteResize runs the worker-count hysteresis and applies a resize once
// enough consecutive epochs agree. Returns whether the pool changed.
func (c *Controller) voteResize(demand float64, workers int) bool {
	target := int(math.Ceil(demand / c.pol.TargetUtilization))
	if target < c.pol.MinWorkers {
		target = c.pol.MinWorkers
	}
	if target > c.pol.MaxWorkers {
		target = c.pol.MaxWorkers
	}
	switch {
	case target > workers:
		c.growVotes++
		c.shrinkVotes = 0
		if c.growVotes >= c.pol.Hysteresis {
			c.growVotes = 0
			if c.pool.Resize(target) == nil {
				c.grows++
				return true
			}
		}
	case target < workers:
		c.shrinkVotes++
		c.growVotes = 0
		if c.shrinkVotes >= c.pol.ShrinkHysteresis {
			c.shrinkVotes = 0
			if c.pool.Resize(target) == nil {
				c.shrinks++
				return true
			}
		}
	default:
		c.growVotes, c.shrinkVotes = 0, 0
	}
	return false
}

// voteMode runs the advice hysteresis. Returns whether the advice
// changed this epoch.
func (c *Controller) voteMode(demand float64) bool {
	want := adviceFor(c.pol, demand)
	if want == c.advice {
		c.modeVotes = 0
		c.modeWant = want
		return false
	}
	if want != c.modeWant {
		c.modeWant = want
		c.modeVotes = 1
		return false
	}
	c.modeVotes++
	if c.modeVotes < c.pol.Hysteresis {
		return false
	}
	c.modeVotes = 0
	c.advice = want
	c.modeSwitches++
	return true
}

// Stats returns a snapshot of the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Enabled:      true,
		Epochs:       c.epochs,
		Grows:        c.grows,
		Shrinks:      c.shrinks,
		ModeSwitches: c.modeSwitches,
		Workers:      c.pool.WorkerCount(),
		Mode:         c.advice.Mode,
		Chain:        c.advice.Chain,
		Demand:       c.lastDemand,
		Stall:        c.lastStall,
		Last:         c.lastSample,
	}
}

// Trace returns a copy of the recorded decision sequence (bounded by
// Policy.TraceCap). Two runs of the same single-threaded load trace
// yield identical traces — the determinism contract the tests pin.
func (c *Controller) Trace() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.trace...)
}

package pserver

import (
	"testing"

	"eleos/internal/cache"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func newPlat(t testing.TB) *sgx.Platform {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServeUpdatesTableAllModes(t *testing.T) {
	type tc struct {
		name      string
		placement Placement
		sys       SyscallMode
	}
	cases := []tc{
		{"host-native", PlaceHost, SysNative},
		{"epc-ocall", PlaceEnclave, SysOCall},
		{"epc-rpc", PlaceEnclave, SysRPC},
		{"suvm-rpc", PlaceSUVM, SysRPC},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plat := newPlat(t)
			var th *sgx.Thread
			var heap *suvm.Heap
			if c.placement == PlaceHost {
				th = plat.NewHostThread(cache.CoSDefault)
			} else {
				encl, err := plat.NewEnclave()
				if err != nil {
					t.Fatal(err)
				}
				th = encl.NewThread()
				th.Enter()
				if c.placement == PlaceSUVM {
					heap, err = suvm.New(encl, th, suvm.Config{PageCacheBytes: 2 << 20, BackingBytes: 64 << 20})
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			var pool *rpc.Pool
			if c.sys == SysRPC {
				pool = rpc.NewPool(plat, 1, 64)
				pool.Start()
				defer pool.Stop()
			}
			srv, err := New(plat, th, Config{
				DataBytes: 1 << 20,
				Layout:    kv.OpenAddressing,
				Placement: c.placement,
				Syscall:   c.sys,
				Heap:      heap,
				Pool:      pool,
				Encrypted: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			// Each loaded key starts at value=key; updates add 1.
			keys := []uint64{5, 9, 5}
			if err := srv.ServeRequest(th, keys); err != nil {
				t.Fatal(err)
			}
			if v, err := srv.Table().Get(th, 5); err != nil || v != 5+2 {
				t.Fatalf("key 5 = %d err %v, want 7", v, err)
			}
			if v, err := srv.Table().Get(th, 9); err != nil || v != 9+1 {
				t.Fatalf("key 9 = %d err %v, want 10", v, err)
			}
		})
	}
}

func TestOCallVsRPCExitCounts(t *testing.T) {
	// The point of Eleos RPC: OCALL mode exits twice per request
	// (recv + send); RPC mode never exits.
	plat := newPlat(t)
	encl, _ := plat.NewEnclave()
	th := encl.NewThread()
	th.Enter()
	pool := rpc.NewPool(plat, 1, 64)
	pool.Start()
	defer pool.Stop()

	for _, mode := range []SyscallMode{SysOCall, SysRPC} {
		srv, err := New(plat, th, Config{
			DataBytes: 64 << 10,
			Layout:    kv.OpenAddressing,
			Placement: PlaceEnclave,
			Syscall:   mode,
			Pool:      pool,
			Encrypted: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := loadgen.NewKeyGen(1, srv.Entries())
		keys := make([]uint64, 4)
		exits0, ocalls0, _, _, _ := encl.Stats().Snapshot()
		const reqs = 50
		for i := 0; i < reqs; i++ {
			if err := srv.ServeRequest(th, gen.Batch(keys)); err != nil {
				t.Fatal(err)
			}
		}
		exits1, ocalls1, _, _, _ := encl.Stats().Snapshot()
		switch mode {
		case SysOCall:
			if got := ocalls1 - ocalls0; got != 2*reqs {
				t.Fatalf("OCALL mode: %d ocalls for %d requests, want %d", got, reqs, 2*reqs)
			}
		case SysRPC:
			if got := exits1 - exits0; got != 0 {
				t.Fatalf("RPC mode caused %d exits", got)
			}
		}
		srv.Close()
	}
}

func TestUntrustedFasterThanEnclave(t *testing.T) {
	// Fig 1's qualitative core at small scale: the same workload is
	// substantially slower inside the enclave with OCALLs than outside.
	plat := newPlat(t)

	run := func(placement Placement, sys SyscallMode) float64 {
		var th *sgx.Thread
		if placement == PlaceHost {
			th = plat.NewHostThread(cache.CoSDefault)
		} else {
			encl, _ := plat.NewEnclave()
			th = encl.NewThread()
			th.Enter()
		}
		srv, err := New(plat, th, Config{
			DataBytes: 2 << 20,
			Layout:    kv.OpenAddressing,
			Placement: placement,
			Syscall:   sys,
			Encrypted: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		gen := loadgen.NewKeyGen(2, srv.Entries())
		keys := make([]uint64, 1)
		th.T.Reset()
		const reqs = 400
		for i := 0; i < reqs; i++ {
			if err := srv.ServeRequest(th, gen.Batch(keys)); err != nil {
				t.Fatal(err)
			}
		}
		return float64(th.T.Cycles()) / reqs
	}

	host := run(PlaceHost, SysNative)
	encl := run(PlaceEnclave, SysOCall)
	slow := encl / host
	if slow < 3 {
		t.Fatalf("enclave/untrusted slowdown %.1fx, expected substantial (paper: ~9x)", slow)
	}
}

package eleos

import (
	"fmt"
	"sync/atomic"

	"eleos/internal/exitio"
	"eleos/internal/suvm"
)

// Service is one isolated tenant of a multi-service enclave: a named
// SUVM heap domain carved out of the enclave's shared EPC++, plus a
// per-service slice of the runtime's exit-less I/O engine. Co-resident
// services amortize the enclave's PRM footprint and RPC/IO plumbing
// (the Occlum-style consolidation scenario, PAPERS.md arXiv 2001.07450)
// while keeping paging isolation: a service's faults can only consume
// its own EPC++ frames, and its allocations can only be freed through
// it (ErrCrossDomain otherwise). Cross-service interaction goes through
// Ctx.CrossCall — an intra-enclave function call, no doorbell — and the
// boundary is enforced statically by eleoslint's service-domain pass
// (annotate packages with "//eleos:service <name>").
//
// Contexts opened with Service.NewContext allocate from the service's
// domain and report I/O on the service's counter group; everything else
// about them (Exitless, Go, OCall, Pump, ...) is the plain Ctx surface.
type Service struct {
	e    *Enclave
	name string
	dom  *suvm.Domain
	grp  *exitio.Group

	crossIn  atomic.Uint64 // CrossCalls that targeted this service
	crossOut atomic.Uint64 // CrossCalls its contexts issued
}

// NewService carves a named, isolated service out of the enclave. The
// EPC++ share (WithServiceEPC) is required and is removed from the
// enclave root heap's active frames; the carve fails with ErrOutOfEPC
// if fewer than 4 root frames would remain. Services are torn down with
// the enclave; they cannot be un-carved individually.
func (e *Enclave) NewService(name string, opts ...ServiceOption) (*Service, error) {
	var cfg serviceConfig
	for _, o := range opts {
		o.applyServiceOption(&cfg)
	}
	if name == "" {
		return nil, fmt.Errorf("%w: service name is required", ErrBadConfig)
	}
	if cfg.epcBytes == 0 {
		return nil, fmt.Errorf("%w: service %q needs an EPC++ share (WithServiceEPC)", ErrBadConfig, name)
	}
	setup := e.encl.NewThread()
	setup.Enter()
	dom, err := e.heap.NewDomain(setup, suvm.DomainConfig{
		Name:         name,
		EPCBytes:     cfg.epcBytes,
		BackingQuota: cfg.backingQuota,
		Policy:       cfg.policy,
		RandomSeed:   cfg.seed,
	})
	setup.Exit()
	if err != nil {
		return nil, err
	}
	s := &Service{e: e, name: name, dom: dom, grp: e.rt.io.NewGroup()}
	e.rt.mu.Lock()
	e.services = append(e.services, s)
	e.rt.mu.Unlock()
	return s, nil
}

// Services returns the enclave's carved services in creation order.
func (e *Enclave) Services() []*Service {
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	return append([]*Service(nil), e.services...)
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Enclave returns the hosting enclave.
func (s *Service) Enclave() *Enclave { return s.e }

// Domain exposes the service's SUVM heap domain (for the lower-level
// suvm APIs and explicit threads).
func (s *Service) Domain() *suvm.Domain { return s.dom }

// IOGroup exposes the service's exit-less I/O counter group.
func (s *Service) IOGroup() *IOGroup { return s.grp }

// NewContext creates and enters a fresh hardware thread bound to this
// service: Malloc/MallocDirect draw from the service's heap domain,
// Free refuses other services' allocations, and IO() opens a queue that
// attributes its doorbells to the service.
func (s *Service) NewContext() *Ctx {
	th := s.e.encl.NewThread()
	th.Enter()
	return &Ctx{e: s.e, th: th, svc: s}
}

// Stats returns the service's rollup: its heap domain counters, its
// share of I/O engine activity, and its CrossCall traffic.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Name:          s.name,
		Heap:          s.dom.Stats(),
		IO:            s.grp.Stats(),
		CrossCallsIn:  s.crossIn.Load(),
		CrossCallsOut: s.crossOut.Load(),
	}
}

// Service returns the service this context is bound to, or nil for a
// plain enclave context.
func (c *Ctx) Service() *Service { return c.svc }

// CrossCall runs fn as the target service, on this context's thread —
// the consolidation fast path: co-resident services share an address
// space, so crossing between them is a function call plus a descriptor
// touch (charged 2×L1 + a spinlock, ~70 cycles) instead of a cross-
// enclave exit-less RPC (~10^3 cycles of enqueue/dispatch/wake) or an
// enclave exit round trip (~8000 cycles). The callee context allocates
// from — and may free — the target's heap domain. Fails with
// ErrCrossEnclave if target lives in a different enclave; that crossing
// needs real RPC. The static service-domain lint pass requires
// cross-service calls to go through here.
func (c *Ctx) CrossCall(target *Service, fn func(*Ctx)) error {
	if target == nil {
		return fmt.Errorf("%w: nil target service", ErrBadConfig)
	}
	if target.e != c.e {
		return fmt.Errorf("%w: service %q is hosted by a different enclave", ErrCrossEnclave, target.name)
	}
	m := c.e.rt.plat.Model
	c.th.T.Charge(2*m.L1Hit + m.SpinLock)
	if c.svc != nil {
		c.svc.crossOut.Add(1)
	}
	target.crossIn.Add(1)
	fn(&Ctx{e: c.e, th: c.th, svc: target})
	return nil
}

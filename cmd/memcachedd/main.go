// Command memcachedd serves the memcached text protocol (get/set/
// delete/stats/version) over real TCP, with the item store running on
// the simulated SGX platform under the Eleos configuration of the
// paper's §5.1: security-insensitive metadata in untrusted memory,
// keys/values/sizes in SUVM, exit-less system calls. Point any
// memcached client at it.
//
//	memcachedd -listen :11211 -mem 256MB -placement suvm
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"eleos/internal/exitio"
	"eleos/internal/mckv"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:11211", "TCP listen address")
		memMB     = flag.Int("mem", 256, "item memory limit in MiB")
		placement = flag.String("placement", "suvm", "item payload placement: suvm|suvm-direct|epc|host")
		epcppMB   = flag.Int("epcpp", 60, "SUVM page cache (EPC++) size in MiB")
		syscall   = flag.String("syscall", "rpc-async", "simulated syscall dispatch: native|ocall|rpc|rpc-async")
		workers   = flag.Int("rpc-workers", 2, "untrusted RPC worker count (rpc modes)")
	)
	flag.Parse()
	mode, err := exitio.ParseMode(*syscall)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedd: %v\n", err)
		os.Exit(2)
	}

	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatalf("memcachedd: %v", err)
	}
	var pool *rpc.Pool
	if mode.NeedsPool() {
		pool = rpc.NewPool(plat, *workers, 256)
		pool.Start()
		defer pool.Stop()
	}
	eng, err := exitio.NewEngine(mode, pool)
	if err != nil {
		log.Fatalf("memcachedd: %v", err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatalf("memcachedd: %v", err)
	}
	setup := encl.NewThread()
	setup.Enter()

	var pl mckv.Placement
	var heap *suvm.Heap
	switch *placement {
	case "suvm", "suvm-direct":
		heap, err = suvm.New(encl, setup, suvm.Config{
			PageCacheBytes: uint64(*epcppMB) << 20,
			BackingBytes:   4 << 30,
		})
		if err != nil {
			log.Fatalf("memcachedd: creating SUVM heap: %v", err)
		}
		pl = mckv.PlaceSUVM
		if *placement == "suvm-direct" {
			pl = mckv.PlaceSUVMDirect
		}
	case "epc":
		pl = mckv.PlaceEnclave
	case "host":
		pl = mckv.PlaceHost
	default:
		fmt.Fprintf(os.Stderr, "memcachedd: unknown placement %q\n", *placement)
		os.Exit(2)
	}

	store, err := mckv.NewStore(plat, setup, mckv.Config{
		MemLimitBytes: uint64(*memMB) << 20,
		Placement:     pl,
		Heap:          heap,
	})
	if err != nil {
		log.Fatalf("memcachedd: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("memcachedd: %v", err)
	}
	log.Printf("memcachedd: serving on %s (placement=%s, mem=%dMiB, syscall=%s)", ln.Addr(), pl, *memMB, mode)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("memcachedd: accept: %v", err)
			continue
		}
		go func() {
			th := encl.NewThread()
			th.Enter()
			if err := mckv.ServeConnIO(conn, store, th, eng); err != nil {
				log.Printf("memcachedd: connection: %v", err)
			}
			th.Exit()
		}()
	}
}

// Package eleos is a Go reproduction of "Eleos: ExitLess OS Services for
// SGX Enclaves" (Orenbach et al., EuroSys 2017): a runtime that removes
// enclave exits from system calls (via an exit-less RPC service running
// in untrusted worker threads) and from secure paging (via SUVM,
// user-managed virtual memory paged entirely inside the enclave).
//
// Because SGX hardware is not assumed, the runtime executes on a
// cycle-accounted simulation of the paper's Skylake SGX machine
// (internal/sgx): enclave exits, EPC paging, TLB flushes, shootdown IPIs
// and memory-encryption costs are all discrete, charged events, and all
// sealing of evicted pages is real AES-GCM. See DESIGN.md.
//
// Quickstart:
//
//	rt, _ := eleos.NewRuntime(eleos.WithRPCWorkers(4))
//	defer rt.Close()
//	encl, _ := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: 32 << 20})
//	ctx := encl.NewContext()
//	p, _ := ctx.Malloc(1 << 30)            // secure memory beyond EPC size
//	p.WriteAt(0, []byte("sealed"))          // paged by SUVM, exit-less
//	ctx.Exitless(func(h *eleos.HostCtx) {   // syscall without leaving
//		h.Syscall(nil)
//	})
//	fut := ctx.Go(func(h *eleos.HostCtx) {  // async: overlap enclave compute
//		h.Syscall(nil)
//	})
//	fut.Wait()                              // charges only the residual latency
package eleos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eleos/internal/cycles"
	"eleos/internal/exitio"
	"eleos/internal/fleet"
	"eleos/internal/fsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
	"eleos/internal/tune"
)

// Re-exported building blocks. The internal packages carry the full
// implementation; these aliases make their rich APIs reachable through
// the public module path.
type (
	// Model is the architectural cost model of the simulated machine.
	Model = cycles.Model
	// Platform is the simulated SGX machine.
	Platform = sgx.Platform
	// Thread is a simulated hardware thread.
	Thread = sgx.Thread
	// HostCtx is the untrusted execution context handed to exit-less
	// calls and OCALL targets.
	HostCtx = sgx.HostCtx
	// SPtr is a secure active pointer into SUVM memory.
	SPtr = suvm.SPtr
	// Heap is a SUVM instance.
	Heap = suvm.Heap
	// HeapConfig tunes a SUVM heap.
	HeapConfig = suvm.Config
	// HeapStats is a snapshot of SUVM event counters.
	HeapStats = suvm.StatsSnapshot
	// HeapDomain is a named per-service slice of a heap's EPC++ with
	// its own frame pool, evictor and counters (Service.Domain).
	HeapDomain = suvm.Domain
	// DomainStats is one domain's named counter snapshot inside
	// HeapStats.Domains.
	DomainStats = suvm.DomainStatsSnapshot
	// Segment is inter-enclave shared secure memory (ownership moves
	// between enclaves by Detach/Attach, without re-encrypting data).
	Segment = suvm.Segment
	// EvictionPolicy selects EPC++ eviction victims (§3.2.4: the
	// application controls the eviction policy).
	EvictionPolicy = suvm.EvictionPolicy
	// Swapper is the EPC++ swapper thread; in manual mode drive it with
	// TickNow for deterministic runs.
	Swapper = suvm.Swapper
	// IOEngine is the exit-less I/O submission/completion engine
	// (internal/exitio): typed ops, linked chains, pluggable dispatch.
	IOEngine = exitio.Engine
	// IOMode selects how submitted I/O chains reach the OS.
	IOMode = exitio.Mode
	// IOStats is a snapshot of engine activity (doorbells, chains,
	// linked ops, reap-stall cycles).
	IOStats = exitio.Stats
	// IOGroup is a per-service counter group over the shared I/O
	// engine: queues opened through Service contexts attribute their
	// doorbells, chains and reap stalls to it.
	IOGroup = exitio.Group
	// IOOp is one typed exit-less I/O op descriptor.
	IOOp = exitio.Op
	// CQE is one typed I/O completion.
	CQE = exitio.CQE
	// FS is the simulated untrusted filesystem served through exitio's
	// file ops (Open/Pread/Pwrite/Fsync/Close).
	FS = fsim.FS
	// IORecv, IOSend, IOOpen, IOPread, IOPwrite, IOFsync and IOClose
	// are the op descriptors accepted by IOQueue.Push.
	IORecv   = exitio.Recv
	IOSend   = exitio.Send
	IOOpen   = exitio.Open
	IOPread  = exitio.Pread
	IOPwrite = exitio.Pwrite
	IOFsync  = exitio.Fsync
	IOClose  = exitio.Close
	// RPCStats is a snapshot of the exit-less RPC pool's counters.
	RPCStats = rpc.Stats
	// Tuner is the self-tuning controller (internal/tune): the feedback
	// loop behind WithAutoTune / WithWorkerBounds.
	Tuner = tune.Controller
	// TunePolicy configures the controller (epoch length, worker
	// bounds, thresholds, hysteresis).
	TunePolicy = tune.Policy
	// TuneStats is a snapshot of controller activity.
	TuneStats = tune.Stats
	// TuneAdvice is the controller's current submission recommendation.
	TuneAdvice = tune.Advice
	// TuneDecision is one recorded epoch decision.
	TuneDecision = tune.Decision
	// FleetController is the fleet-scale adaptive EPC++ balloon
	// controller (internal/fleet): the feedback loop behind
	// WithFleetBalloon that rebalances PRM shares across enclaves from
	// live demand instead of the driver's static even split.
	FleetController = fleet.Controller
	// FleetPolicy configures the controller (epoch length, share floor,
	// hysteresis, deadband).
	FleetPolicy = fleet.Policy
	// FleetStats is a snapshot of fleet controller activity.
	FleetStats = fleet.Stats
	// FleetTenantStats is one tenant's slice of FleetStats.
	FleetTenantStats = fleet.TenantStats
	// FleetDecision is one recorded fleet epoch decision, and
	// FleetTenantDecision one tenant's slice of it.
	FleetDecision       = fleet.Decision
	FleetTenantDecision = fleet.TenantDecision
)

// Exit-less I/O dispatch modes.
const (
	IONative   = exitio.ModeDirect
	IOOCall    = exitio.ModeOCall
	IORPCSync  = exitio.ModeRPCSync
	IORPCAsync = exitio.ModeRPCAsync
)

// Available EPC++ eviction policies.
const (
	PolicyClock  = suvm.PolicyClock
	PolicyFIFO   = suvm.PolicyFIFO
	PolicyRandom = suvm.PolicyRandom
)

// Config describes a Runtime: the simulated machine plus the untrusted
// Eleos runtime (RPC workers, cache partitioning). New code should
// prefer the functional options (WithRPCWorkers, WithCATWays,
// WithMachine, ...); Config remains as the compatibility layer and is
// itself an Option.
type Config struct {
	// Machine configures the simulated platform; zero values select the
	// paper's testbed (93 MiB usable PRM, 8 MiB LLC).
	Machine sgx.Config
	// RPCWorkers sizes the untrusted worker pool (default 2).
	RPCWorkers int
	// CATWays reserves this many LLC ways for the RPC workers via cache
	// allocation technology, protecting the enclave's share from I/O
	// buffer pollution. 0 disables partitioning; the paper uses 4 of 16
	// (a 25%/75% split).
	CATWays int
	// RPCRing is the total RPC queue capacity, split across the worker
	// ring shards (default 256).
	RPCRing int
	// AutoTune enables the self-tuning controller: the pool starts at
	// Tune.MinWorkers, RPCWorkers is ignored, and serving loops drive
	// adaptation via Ctx.Pump. Prefer WithWorkerBounds / WithAutoTune.
	AutoTune bool
	// Tune is the controller policy when AutoTune is set; zero fields
	// take the tune package defaults.
	Tune TunePolicy
	// FleetBalloon enables the fleet-scale adaptive EPC++ balloon
	// controller: every enclave the runtime creates is registered as a
	// tenant, and the controller rebalances PRM shares from live demand
	// as serving loops drive Ctx.Pump. Prefer WithFleetBalloon.
	FleetBalloon bool
	// Fleet is the controller policy when FleetBalloon is set; zero
	// fields take the fleet package defaults.
	Fleet FleetPolicy

	// Option bookkeeping for the mutual-exclusion check: which of the
	// conflicting knobs the caller actually spelled out.
	fixedWorkers  bool
	tuneRequested bool
}

// DefaultConfig returns the paper's configuration: two RPC workers and
// the 25%/75% CAT split.
func DefaultConfig() Config {
	return Config{RPCWorkers: 2, CATWays: 4}
}

// Runtime owns one simulated machine and its untrusted Eleos runtime.
type Runtime struct {
	plat  *sgx.Platform
	pool  *rpc.Pool
	io    *exitio.Engine
	tuner *tune.Controller
	fleet *fleet.Controller

	// mu guards the enclave registry only; it is never held across
	// calls into the subsystems.
	//
	//eleos:lockorder 3
	mu       sync.Mutex
	enclaves []*Enclave
}

// NewRuntime builds the machine and starts the RPC worker pool. With no
// arguments it uses DefaultConfig; otherwise the options are applied in
// order. Passing a Config value (itself an Option) replaces the whole
// configuration, preserving the pre-options call sites:
//
//	rt, _ := eleos.NewRuntime(eleos.DefaultConfig())        // classic
//	rt, _ := eleos.NewRuntime(eleos.WithRPCWorkers(4))      // options
//	rt, _ := eleos.NewRuntime(eleos.WithWorkerBounds(1, 8)) // self-tuning
func NewRuntime(opts ...Option) (*Runtime, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o.applyOption(&cfg)
	}
	if cfg.fixedWorkers && cfg.tuneRequested {
		return nil, ErrConflictingOptions
	}
	if cfg.RPCWorkers == 0 {
		cfg.RPCWorkers = 2
	}
	if cfg.RPCRing == 0 {
		cfg.RPCRing = 256
	}
	workers := cfg.RPCWorkers
	if cfg.AutoTune {
		// A self-tuning pool starts at the lower bound and earns its
		// workers from the load.
		workers = cfg.Tune.MinWorkers
		if workers == 0 {
			workers = 1
		}
	}
	plat, err := sgx.NewPlatform(cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("eleos: building platform: %w", err)
	}
	if cfg.CATWays > 0 {
		plat.LLC.EnablePartitioning(cfg.CATWays)
	}
	pool := rpc.NewPool(plat, workers, cfg.RPCRing)
	pool.Start()
	io, err := exitio.NewEngine(exitio.ModeRPCAsync, pool)
	if err != nil {
		pool.Stop()
		return nil, fmt.Errorf("eleos: building I/O engine: %w", err)
	}
	rt := &Runtime{plat: plat, pool: pool, io: io}
	if cfg.AutoTune {
		tuner, err := tune.New(pool, io, cfg.Tune)
		if err != nil {
			pool.Stop()
			return nil, fmt.Errorf("eleos: building autotuner: %w", err)
		}
		rt.tuner = tuner
	}
	if cfg.FleetBalloon {
		fc, err := fleet.New(plat.Driver, cfg.Fleet)
		if err != nil {
			pool.Stop()
			return nil, fmt.Errorf("eleos: building fleet controller: %w", err)
		}
		rt.fleet = fc
	}
	return rt, nil
}

// Close stops the RPC workers.
func (r *Runtime) Close() { r.pool.Stop() }

// Platform exposes the simulated machine (cost model, LLC, driver).
func (r *Runtime) Platform() *sgx.Platform { return r.plat }

// Pool exposes the RPC worker pool. For observability prefer
// Runtime.Stats, which snapshots the pool together with the rest of the
// runtime.
func (r *Runtime) Pool() *rpc.Pool { return r.pool }

// Tuner exposes the self-tuning controller, or nil when the runtime was
// built without WithAutoTune / WithWorkerBounds. Serving loops normally
// drive it through Ctx.Pump rather than directly.
func (r *Runtime) Tuner() *Tuner { return r.tuner }

// Fleet exposes the fleet balloon controller, or nil when the runtime
// was built without WithFleetBalloon. Serving loops normally drive it
// through Ctx.Pump rather than directly.
func (r *Runtime) Fleet() *FleetController { return r.fleet }

// IOEngine exposes the runtime's shared exit-less I/O engine. It
// dispatches in rpc-async mode over the runtime's worker pool; Ctx.IO
// gives each context a queue on it, and NewIOEngine builds independent
// engines in other modes.
func (r *Runtime) IOEngine() *IOEngine { return r.io }

// NewIOEngine builds an additional I/O engine in the given dispatch
// mode over the runtime's worker pool (for comparing modes on one
// machine).
func (r *Runtime) NewIOEngine(mode IOMode) (*IOEngine, error) {
	return exitio.NewEngine(mode, r.pool)
}

// NewFS creates a simulated untrusted filesystem on the runtime's
// machine, to be driven through the exitio file ops.
func (r *Runtime) NewFS() *FS { return fsim.NewFS(r.plat) }

// EnclaveConfig describes one enclave with its SUVM heap.
type EnclaveConfig struct {
	// PageCacheBytes sizes EPC++ (required). Keep it under the PRM
	// share reported by the driver, run a swapper (SwapperInterval /
	// ManualSwapper) to balloon it against driver pressure, or build
	// the runtime with WithFleetBalloon to have the fleet controller
	// size it from demand.
	PageCacheBytes uint64
	// Heap carries further SUVM tuning; PageCacheBytes above overrides
	// its field of the same name.
	Heap suvm.Config
	// SwapperInterval, when non-zero, starts the background swapper
	// thread that re-balloons EPC++ against driver-reported PRM
	// pressure at this period.
	SwapperInterval time.Duration
	// ManualSwapper creates the swapper in manual mode instead: no
	// background goroutine, ticks happen only via Enclave.Swapper().
	// TickNow() — the deterministic choice for benchmarks and tests.
	// Mutually exclusive with SwapperInterval (manual wins).
	ManualSwapper bool
}

// Enclave is a simulated enclave with an attached SUVM heap. It hosts
// one implicit root tenant (NewContext, Ctx.Malloc against the whole
// heap) and, optionally, N isolated carved services (NewService) that
// share its EPC++ and the runtime's single I/O engine.
type Enclave struct {
	rt      *Runtime
	encl    *sgx.Enclave
	heap    *suvm.Heap
	swapper *suvm.Swapper

	// services is the carved-service registry, guarded by rt.mu like the
	// enclave registry itself.
	services []*Service

	destroyed atomic.Bool
}

// NewEnclave creates an enclave and its SUVM heap. The heap's frame
// pool is pinned using a temporary setup thread. Enclave options are
// applied over cfg in order:
//
//	encl, _ := rt.NewEnclave(eleos.EnclaveConfig{PageCacheBytes: 32 << 20},
//		eleos.WithEvictionPolicy(eleos.PolicyFIFO),
//		eleos.WithManualSwapper(),
//	)
func (r *Runtime) NewEnclave(cfg EnclaveConfig, opts ...EnclaveOption) (*Enclave, error) {
	for _, o := range opts {
		o.applyEnclaveOption(&cfg)
	}
	if cfg.PageCacheBytes != 0 {
		cfg.Heap.PageCacheBytes = cfg.PageCacheBytes
	}
	encl, err := r.plat.NewEnclave()
	if err != nil {
		return nil, err
	}
	setup := encl.NewThread()
	setup.Enter()
	heap, err := suvm.New(encl, setup, cfg.Heap)
	setup.Exit()
	if err != nil {
		encl.Destroy()
		return nil, err
	}
	e := &Enclave{rt: r, encl: encl, heap: heap}
	switch {
	case cfg.ManualSwapper:
		e.swapper = heap.NewSwapper()
	case cfg.SwapperInterval > 0:
		e.swapper = heap.StartSwapper(cfg.SwapperInterval)
	}
	r.mu.Lock()
	r.enclaves = append(r.enclaves, e)
	r.mu.Unlock()
	if r.tuner != nil {
		r.tuner.WatchHeap(heap)
	}
	if r.fleet != nil {
		r.fleet.Register(heap)
	}
	return e, nil
}

// Destroy stops the swapper, waits for in-flight SUVM faults to drain,
// and tears the enclave down (all carved services with it). Idempotent
// and safe to race with itself: exactly one caller performs the
// teardown, later and concurrent calls return immediately.
func (e *Enclave) Destroy() {
	if !e.destroyed.CompareAndSwap(false, true) {
		return
	}
	e.rt.mu.Lock()
	for i, other := range e.rt.enclaves {
		if other == e {
			e.rt.enclaves = append(e.rt.enclaves[:i], e.rt.enclaves[i+1:]...)
			break
		}
	}
	e.rt.mu.Unlock()
	if e.rt.fleet != nil {
		e.rt.fleet.Unregister(e.heap)
	}
	if e.swapper != nil {
		e.swapper.Stop()
		e.swapper = nil
	}
	// Let faults that already entered the pipeline (any service's or the
	// root's) finish against live EPC++ before the pages are torn down.
	e.heap.Quiesce()
	e.encl.Destroy()
}

// Raw exposes the underlying simulated enclave.
func (e *Enclave) Raw() *sgx.Enclave { return e.encl }

// Heap exposes the enclave's SUVM heap.
func (e *Enclave) Heap() *suvm.Heap { return e.heap }

// Swapper exposes the enclave's EPC++ swapper (nil unless the enclave
// was configured with ManualSwapper or SwapperInterval). In manual mode
// call TickNow to balloon and reclaim at deterministic points.
func (e *Enclave) Swapper() *Swapper { return e.swapper }

// Stats returns the SUVM counters.
//
// Deprecated: use Runtime.Stats (whose Heaps list carries every live
// enclave's counters) or Heap().Stats() directly. Kept as a thin
// wrapper for existing call sites.
func (e *Enclave) Stats() HeapStats { return e.heap.Stats() }

// NewSegment allocates inter-enclave shared secure memory on the
// runtime's machine; mount it with Ctx.Attach. pageSize must match the
// EPC++ page size of every attaching enclave (4096 unless tuned).
func (r *Runtime) NewSegment(size uint64, pageSize int) (*Segment, error) {
	return suvm.NewSegment(r.plat, size, pageSize)
}

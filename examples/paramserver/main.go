// The paper's §2 motivating workload as a library example: one
// parameter server, three execution modes, one table. Prints the
// slowdown story of Fig 1 at a small scale.
//
//	go run ./examples/paramserver
package main

import (
	"fmt"
	"log"

	"eleos/internal/cache"
	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/pserver"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

const (
	dataBytes = 16 << 20 // fits the SUVM page cache: the comparison
	// isolates the cost of exits, like the paper's 2MB/64MB columns
	requests = 5000
)

func run(name string, placement pserver.Placement, sys pserver.SyscallMode) float64 {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var th *sgx.Thread
	var heap *suvm.Heap
	var pool *rpc.Pool
	if placement == pserver.PlaceHost {
		th = plat.NewHostThread(cache.CoSDefault)
	} else {
		encl, err := plat.NewEnclave()
		if err != nil {
			log.Fatal(err)
		}
		th = encl.NewThread()
		th.Enter()
		if placement == pserver.PlaceSUVM {
			heap, err = suvm.New(encl, th, suvm.Config{PageCacheBytes: 24 << 20, BackingBytes: 1 << 30})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	if sys == pserver.SysRPC {
		pool = rpc.NewPool(plat, 2, 128)
		pool.Start()
		defer pool.Stop()
		plat.LLC.EnablePartitioning(4)
	}
	srv, err := pserver.New(plat, th, pserver.Config{
		DataBytes: dataBytes,
		Layout:    kv.OpenAddressing,
		Placement: placement,
		Syscall:   sys,
		Heap:      heap,
		Pool:      pool,
		Encrypted: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	gen := loadgen.NewKeyGen(1, srv.Entries())
	keys := make([]uint64, 1)
	th.T.Reset()
	for i := 0; i < requests; i++ {
		if err := srv.ServeRequest(th, gen.Batch(keys)); err != nil {
			log.Fatal(err)
		}
	}
	perReq := float64(th.T.Cycles()) / requests
	fmt.Printf("%-28s %8.0f cycles/request\n", name, perReq)
	return perReq
}

func main() {
	fmt.Printf("parameter server, %dMB of data, %d single-update requests\n\n",
		dataBytes>>20, requests)
	base := run("untrusted (no SGX)", pserver.PlaceHost, pserver.SysNative)
	sgxCyc := run("SGX + OCALL syscalls", pserver.PlaceEnclave, pserver.SysOCall)
	eleos := run("Eleos (SUVM + exit-less RPC)", pserver.PlaceSUVM, pserver.SysRPC)
	fmt.Printf("\nSGX slowdown over untrusted:   %.1fx\n", sgxCyc/base)
	fmt.Printf("Eleos slowdown over untrusted: %.1fx\n", eleos/base)
	fmt.Printf("Eleos speedup over SGX:        %.1fx\n", sgxCyc/eleos)
}

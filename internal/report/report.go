// Package report renders the fixed-width tables and series the
// benchmark harness prints — the same rows and columns the paper's
// tables and figures report, so paper-vs-measured comparison is a
// side-by-side read. Rendered output is diffed against goldens, so the
// package is checked by eleoslint for determinism.
//
//eleos:deterministic
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Note    string // one-line "paper says" annotation
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "   (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Cells beyond the headers render at natural width instead
			// of indexing widths out of range.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// PercentileHeaders returns the standard latency-percentile column
// headers the open-loop benchmark tables share, in the given unit
// (e.g. "cyc").
func PercentileHeaders(unit string) []string {
	return []string{
		"p50 " + unit, "p90 " + unit, "p99 " + unit, "p999 " + unit, "max " + unit,
	}
}

// PercentileCells formats one row's worth of percentile values to pair
// with PercentileHeaders.
func PercentileCells(p50, p90, p99, p999, max uint64) []any {
	return []any{
		fmt.Sprintf("%d", p50), fmt.Sprintf("%d", p90), fmt.Sprintf("%d", p99),
		fmt.Sprintf("%d", p999), fmt.Sprintf("%d", max),
	}
}

// Ratio formats a/b as "N.NNx", guarding zero denominators.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// KOps formats an ops/sec figure in thousands.
func KOps(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

// Bytes formats a byte count in human units.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

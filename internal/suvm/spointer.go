package suvm

import (
	"bytes"
	"fmt"

	"eleos/internal/sgx"
)

// SPtr is a secure active pointer (spointer, §3.2.2): a pointer into
// SUVM memory that performs software address translation. After the
// first access the translated EPC++ frame is cached in the spointer
// ("linked"), pinning the page, so subsequent accesses on the same page
// skip the page-table lookup entirely — one lookup per page instead of
// one per access. Crossing a page boundary, cloning or unlinking drops
// the link and the pin.
//
// Like the pointer it models, an SPtr is owned by one thread at a time;
// concurrent use of one SPtr requires external synchronization (clones
// are cheap and start unlinked, following the paper's assignment rule).
type SPtr struct {
	h      *Heap
	base   uint64 // backing-store address of the allocation
	size   uint64
	off    uint64 // current offset within the allocation
	direct bool
	dom    *Domain // owning carved domain, nil for the root

	frame      int32 // linked EPC++ frame, or -1
	linkedPage uint64
	dirty      bool // pending dirty state, propagated on unlink
}

// Heap returns the owning SUVM heap.
func (p *SPtr) Heap() *Heap { return p.h }

// Domain returns the carved domain that owns the allocation, or nil for
// an allocation made directly on the heap (the root domain).
func (p *SPtr) Domain() *Domain { return p.dom }

// Size returns the allocation size in bytes.
func (p *SPtr) Size() uint64 { return p.size }

// Offset returns the spointer's current offset.
func (p *SPtr) Offset() uint64 { return p.off }

// Linked reports whether the spointer currently caches a translation.
func (p *SPtr) Linked() bool { return p.frame >= 0 }

// Direct reports whether the allocation uses sub-page direct access.
func (p *SPtr) Direct() bool { return p.direct }

// BackingBase returns the untrusted-memory address of the allocation's
// sealed backing bytes. This is not secret — the host OS allocates and
// services that memory — and is exposed for tests and side-channel
// demonstrations that play the OS's role.
func (p *SPtr) BackingBase() uint64 { return p.base }

// Clone returns a copy positioned at the same offset. Following the
// paper's pinned-page heuristics, the copy starts unlinked ("when
// assigning a linked spointer to another spointer, the new spointer is
// initialized unlinked").
func (p *SPtr) Clone() *SPtr {
	c := *p
	c.frame = -1
	c.dirty = false
	return &c
}

// Unlink drops the cached translation, unpinning the page and
// propagating the spointer's dirty bit into the page table. The paper
// applies this automatically on destruction and page-boundary crossings;
// Go has no destructors, so holders call it when done (Free does too).
func (p *SPtr) Unlink(th *sgx.Thread) {
	if p.frame < 0 || p.h == nil {
		return
	}
	p.h.release(th, p.frame, p.dirty)
	p.frame = -1
	p.dirty = false
}

// Advance moves the offset by delta bytes, unlinking if the new offset
// leaves the linked page — pointer arithmetic, spointer-style.
func (p *SPtr) Advance(th *sgx.Thread, delta int64) error {
	if p.h == nil {
		return ErrFreed
	}
	n := int64(p.off) + delta
	if n < 0 || uint64(n) > p.size {
		return fmt.Errorf("%w: advance to %d of %d-byte allocation", ErrOutOfRange, n, p.size)
	}
	p.off = uint64(n)
	if p.frame >= 0 && p.h.bsPageOf(p.base+p.off) != p.linkedPage {
		p.Unlink(th)
	}
	return nil
}

// Seek sets the absolute offset, with the same unlink rule as Advance.
func (p *SPtr) Seek(th *sgx.Thread, off uint64) error {
	if p.h == nil {
		return ErrFreed
	}
	if off > p.size {
		return fmt.Errorf("%w: seek to %d of %d-byte allocation", ErrOutOfRange, off, p.size)
	}
	p.off = off
	if p.frame >= 0 && p.h.bsPageOf(p.base+p.off) != p.linkedPage {
		p.Unlink(th)
	}
	return nil
}

// Read copies len(buf) bytes from the current offset. On the linked fast
// path this is a plain EPC access plus a two-compare link check — the
// 15–25% overhead the paper measures in Fig 8. Reads do not mark the
// page dirty (the get/set discipline of §3.2.4).
func (p *SPtr) Read(th *sgx.Thread, buf []byte) error {
	return p.accessCurrent(th, buf, false)
}

// Write copies data to the current offset and marks the spointer dirty.
func (p *SPtr) Write(th *sgx.Thread, data []byte) error {
	return p.accessCurrent(th, data, true)
}

func (p *SPtr) accessCurrent(th *sgx.Thread, buf []byte, write bool) error {
	if p.h == nil {
		return ErrFreed
	}
	if len(buf) == 0 {
		return nil
	}
	addr := p.base + p.off
	if p.off+uint64(len(buf)) > p.size {
		return fmt.Errorf("%w: %d-byte access at offset %d of %d-byte allocation", ErrOutOfRange, len(buf), p.off, p.size)
	}
	if p.direct {
		return p.h.directAccess(th, addr, buf, write, p.dom)
	}
	h := p.h
	pageOff := addr & (h.pageSize - 1)
	sameLinkedPage := p.frame >= 0 && h.bsPageOf(addr) == p.linkedPage
	withinPage := pageOff+uint64(len(buf)) <= h.pageSize

	if sameLinkedPage && withinPage {
		// Linked fast path: no page-table lookup, just the boundary and
		// link checks (modelled as two L1-level operations).
		th.T.Charge(2 * h.model.L1Hit)
		fv := h.frameVaddr(p.frame) + pageOff
		if write {
			th.Write(fv, buf)
			p.dirty = true
			h.frames[p.frame].dirty.Store(true) // also visible pre-unlink; see note below
		} else {
			th.Read(fv, buf)
		}
		h.frames[p.frame].accessed.Store(true)
		return nil
	}
	if !withinPage {
		// Spans pages: go through the transient path, staying unlinked.
		p.Unlink(th)
		return h.access(th, addr, buf, write, p.dom)
	}
	// Unlinked single-page access: take the pin and keep it (link).
	p.Unlink(th)
	bsPage := h.bsPageOf(addr)
	f, err := h.acquire(th, bsPage, p.dom)
	if err != nil {
		return err
	}
	p.frame = f
	p.linkedPage = bsPage
	fv := h.frameVaddr(f) + pageOff
	if write {
		th.Write(fv, buf)
		p.dirty = true
		h.frames[f].dirty.Store(true)
	} else {
		th.Read(fv, buf)
	}
	return nil
}

// Note on the linked write path: the paper defers copying the spointer
// dirty bit into the page table until unlink to save page-table stores.
// A pinned page can never be evicted, so the deferred copy is safe
// there; our frames' dirty flags are guarded by the shard lock only on
// release/evict, and a linked frame is pinned, so setting it directly at
// write time is equally safe and keeps Free/crash paths conservative.

// Get reads the byte at the current offset (the paper's get macro).
func (p *SPtr) Get(th *sgx.Thread) (byte, error) {
	var b [1]byte
	err := p.Read(th, b[:])
	return b[0], err
}

// Set writes the byte at the current offset (the paper's set macro).
func (p *SPtr) Set(th *sgx.Thread, b byte) error {
	return p.Write(th, []byte{b})
}

// ReadU64 reads a little-endian uint64 at the current offset.
func (p *SPtr) ReadU64(th *sgx.Thread) (uint64, error) {
	var b [8]byte
	if err := p.Read(th, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 at the current offset.
func (p *SPtr) WriteU64(th *sgx.Thread, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return p.Write(th, b[:])
}

// ReadAt copies from an absolute offset without moving or linking the
// spointer — the container access pattern: "spointers at rest are
// unlinked", enabling arbitrarily large data structures (§3.2.2).
func (p *SPtr) ReadAt(th *sgx.Thread, off uint64, buf []byte) error {
	return p.accessAt(th, off, buf, false)
}

// WriteAt copies to an absolute offset without moving or linking.
func (p *SPtr) WriteAt(th *sgx.Thread, off uint64, data []byte) error {
	return p.accessAt(th, off, data, true)
}

func (p *SPtr) accessAt(th *sgx.Thread, off uint64, buf []byte, write bool) error {
	if p.h == nil {
		return ErrFreed
	}
	if len(buf) == 0 {
		return nil
	}
	if off+uint64(len(buf)) > p.size {
		return fmt.Errorf("%w: %d-byte access at offset %d of %d-byte allocation", ErrOutOfRange, len(buf), off, p.size)
	}
	if p.direct {
		return p.h.directAccess(th, p.base+off, buf, write, p.dom)
	}
	return p.h.access(th, p.base+off, buf, write, p.dom)
}

// U64At reads a little-endian uint64 at an absolute offset.
func (p *SPtr) U64At(th *sgx.Thread, off uint64) (uint64, error) {
	var b [8]byte
	if err := p.ReadAt(th, off, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// PutU64At writes a little-endian uint64 at an absolute offset.
func (p *SPtr) PutU64At(th *sgx.Thread, off uint64, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return p.WriteAt(th, off, b[:])
}

// CompareAt compares [off, off+len(want)) with want, page by page — the
// suvm_memcmp of §3.2.3, used for key comparison in containers. Returns
// the usual -1/0/+1.
func (p *SPtr) CompareAt(th *sgx.Thread, off uint64, want []byte) (int, error) {
	if p.h == nil {
		return 0, ErrFreed
	}
	if off+uint64(len(want)) > p.size {
		return 0, fmt.Errorf("%w: %d-byte compare at offset %d of %d-byte allocation", ErrOutOfRange, len(want), off, p.size)
	}
	var tmp [256]byte
	for len(want) > 0 {
		n := len(want)
		if n > len(tmp) {
			n = len(tmp)
		}
		if err := p.accessAt(th, off, tmp[:n], false); err != nil {
			return 0, err
		}
		if c := bytes.Compare(tmp[:n], want[:n]); c != 0 {
			return c, nil
		}
		off += uint64(n)
		want = want[n:]
	}
	return 0, nil
}

// MemsetAt fills [off, off+n) with b — the suvm_memset of §3.2.3.
func (p *SPtr) MemsetAt(th *sgx.Thread, off, n uint64, b byte) error {
	if p.h == nil {
		return ErrFreed
	}
	if off+n > p.size {
		return fmt.Errorf("%w: %d-byte memset at offset %d of %d-byte allocation", ErrOutOfRange, n, off, p.size)
	}
	var chunk [512]byte
	if b != 0 {
		for i := range chunk {
			chunk[i] = b
		}
	}
	for n > 0 {
		c := n
		if c > uint64(len(chunk)) {
			c = uint64(len(chunk))
		}
		if err := p.accessAt(th, off, chunk[:c], true); err != nil {
			return err
		}
		off += c
		n -= c
	}
	return nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// Memcpy copies n bytes between two SUVM allocations (possibly on
// different heaps) — the suvm_memcpy of §3.2.3.
func Memcpy(th *sgx.Thread, dst *SPtr, dstOff uint64, src *SPtr, srcOff, n uint64) error {
	var buf [1024]byte
	for n > 0 {
		c := n
		if c > uint64(len(buf)) {
			c = uint64(len(buf))
		}
		if err := src.ReadAt(th, srcOff, buf[:c]); err != nil {
			return err
		}
		if err := dst.WriteAt(th, dstOff, buf[:c]); err != nil {
			return err
		}
		srcOff += c
		dstOff += c
		n -= c
	}
	return nil
}

// Package det is testdata: a cycle-charged package that must stay a
// pure function of its seeds.
//
//eleos:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock reads host time: flagged.
func WallClock() int64 {
	t := time.Now() // want "call to time.Now in deterministic package det"
	return t.Unix()
}

// Timer schedules against the host clock: flagged.
func Timer() {
	time.Sleep(time.Millisecond) // want "call to time.Sleep in deterministic package det"
}

// AllowedTimer is a documented wall-clock exception: suppressed.
func AllowedTimer() {
	//eleos:allow wallclock -- test fixture for the suppression path
	time.Sleep(time.Millisecond)
}

// GlobalRand draws from the shared unseeded source: flagged.
func GlobalRand() int {
	return rand.Intn(10) // want "call to the process-global rand.Intn in deterministic package det"
}

// SeededRand draws from an explicit source: clean.
func SeededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// Accumulate ranges over a map commutatively: clean.
func Accumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		if v > 0 {
			total += v
		}
	}
	return total
}

// SortedKeys collects keys and sorts before use: clean.
func SortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// PickFirst keeps whichever tied entry iteration meets first: flagged.
func PickFirst(m map[int]int) int {
	best, bestScore := -1, -1
	for k, v := range m { // want "range over map with order-sensitive body in deterministic package det"
		if v > bestScore {
			best, bestScore = k, v
		}
	}
	return best
}

// Emit calls out per entry in iteration order: flagged.
func Emit(m map[int]int, out func(int)) {
	for k := range m { // want "range over map with order-sensitive body in deterministic package det"
		out(k)
	}
}

// Duration arithmetic does not read the clock: clean.
func Duration(n int) time.Duration {
	return time.Duration(n) * time.Microsecond
}

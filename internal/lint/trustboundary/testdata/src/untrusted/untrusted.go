// Package untrusted is testdata: host-side code that must not touch
// EPC contents or call enclave code.
//
//eleos:untrusted
package untrusted

import (
	"hostmem"
	"sgx"
	"trusted"
)

// HostTouch reads host memory from host code: clean.
func HostTouch(a *hostmem.Arena) {
	a.ReadAt(0, make([]byte, 8))
}

// EnterEnclave jumps into the enclave from untrusted code: flagged.
func EnterEnclave(t *sgx.Thread) {
	t.Enter() // want "untrusted function untrusted.EnterEnclave dereferences enclave \\(EPC\\) memory"
}

// CallTrusted invokes enclave code directly: flagged.
func CallTrusted(a *hostmem.Arena) {
	trusted.Good(a) // want "untrusted function untrusted.CallTrusted calls trusted function trusted.Good"
}

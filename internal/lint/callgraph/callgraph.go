// Package callgraph builds the whole-program static call graph the
// eleoslint analyzers share. It began life inside the trustboundary
// analyzer; the atomicfield and hotpath passes need the same view —
// every statically resolvable call edge, plus the mapping from a
// *types.Func back to its declaration so interprocedural walks can
// descend into callee bodies across package boundaries.
//
// The graph is static in the same sense as the analyzers that consume
// it: calls through interface methods and function values are not
// resolved (each analyzer documents its own escape hatch), and calls
// inside function literals are attributed to the enclosing declaration
// — a closure runs on behalf of its creator.
//
// Graphs are cached per loaded Program, so the per-package analyzer
// passes share one construction.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/load"
)

// Edge is one statically resolved call site.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
}

// Decl locates one function declaration in the loaded program.
type Decl struct {
	Pkg  *load.Package
	Decl *ast.FuncDecl
}

// Graph is the program-wide call graph.
type Graph struct {
	// Out maps each declared function to its outgoing call edges, in
	// source order.
	Out map[*types.Func][]Edge
	// In maps each function to the functions that call it.
	In map[*types.Func][]*types.Func
	// Decls maps each declared function to its declaration site, so
	// interprocedural analyses can walk callee bodies.
	Decls map[*types.Func]Decl
}

var (
	mu    sync.Mutex
	cache = map[*load.Program]*Graph{}
)

// For returns the (cached) call graph of prog.
func For(prog *load.Program) *Graph {
	mu.Lock()
	defer mu.Unlock()
	if g, ok := cache[prog]; ok {
		return g
	}
	g := build(prog)
	cache[prog] = g
	return g
}

func build(prog *load.Program) *Graph {
	g := &Graph{
		Out:   map[*types.Func][]Edge{},
		In:    map[*types.Func][]*types.Func{},
		Decls: map[*types.Func]Decl{},
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				g.Decls[obj] = Decl{Pkg: pkg, Decl: fd}
				if fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := analysis.StaticCallee(pkg.Info, call); callee != nil {
						g.Out[obj] = append(g.Out[obj], Edge{Callee: callee, Pos: call.Lparen})
						g.In[callee] = append(g.In[callee], obj)
					}
					return true
				})
			}
		}
	}
	return g
}

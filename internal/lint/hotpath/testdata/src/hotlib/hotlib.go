// Package hotlib is testdata: intra-module callees of the hot package,
// proving the budget walk crosses package boundaries.
package hotlib

// Buf wraps a byte slice.
type Buf struct{ b []byte }

// Boxes allocates twice; unannotated, so hot callers absorb the real
// count.
func Boxes() *Buf {
	b := make([]byte, 0) // charged to every hot caller
	return &Buf{b: b}    // charged to every hot caller
}

// Pooled declares its own budget: hot callers charge the declared 1,
// not a recount of the body.
//
//eleos:hotpath budget=1
func Pooled() *Buf {
	return &Buf{}
}

// Clean allocates nothing.
func Clean(x int) int { return x + 1 }

package mckv

import (
	"errors"
	"fmt"
	"sync"

	"eleos/internal/kv"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Store errors.
var (
	ErrNotFound = errors.New("mckv: key not found")
	ErrTooLarge = errors.New("mckv: item too large")
)

// Placement selects where item payloads (key+value+sizes) live.
type Placement int

// Placements of the sensitive item data.
const (
	PlaceEnclave    Placement = iota // enclave heap (Graphene-style baseline)
	PlaceSUVM                        // Eleos SUVM page cache
	PlaceSUVMDirect                  // Eleos SUVM sub-page direct access
	PlaceHost                        // untrusted memory (native baseline)
)

func (p Placement) String() string {
	switch p {
	case PlaceEnclave:
		return "epc"
	case PlaceSUVM:
		return "suvm"
	case PlaceSUVMDirect:
		return "suvm-direct"
	default:
		return "host"
	}
}

// Config describes a Store.
type Config struct {
	// MemLimitBytes bounds the item payload pool (memcached's -m).
	MemLimitBytes uint64
	// Buckets is the hash-table bucket count (power of two; default
	// scales to MemLimitBytes assuming ~1 KiB items).
	Buckets uint64
	// MaxItems bounds the metadata table (default: MemLimitBytes/96).
	MaxItems uint64
	// Placement locates item payloads.
	Placement Placement
	// Heap is required for the SUVM placements: a whole *suvm.Heap, or
	// one service's *suvm.Domain when the store is a co-resident tenant
	// of a multi-service enclave.
	Heap suvm.Allocator
}

// metadata record layout (untrusted memory, in the clear — §5.1 lists
// exactly these fields as security-insensitive):
//
//	 0 hashNext   (8)  1-based record index, 0 = nil
//	 8 lruNext    (8)
//	16 lruPrev    (8)
//	24 blobOff    (8)  chunk offset in the payload pool
//	32 class      (4)  slab class
//	36 flags      (4)
//	40 keyHash    (8)  chain-walk filter (derived from the key; the key
//	                   itself stays protected)
//	48 lastAccess (8)  logical clock for LRU bookkeeping
//	56 reserved   (8)
const recBytes = 64

// blob layout (protected memory): [keyLen u32][valLen u32][key][value].
// The sizes are the one piece of metadata the paper deems sensitive and
// keeps under SGX protection with the payload.
const blobHdr = 8

// Store is the memcached-like store. It is safe for concurrent use by
// multiple simulated threads; structure mutations are serialized by a
// global lock (the cost model charges the spin-lock, and virtual time
// is per-thread, so serialization does not distort cycle accounting).
type Store struct {
	cfg  Config
	plat *sgx.Platform

	mu sync.Mutex

	meta    *kv.Region // untrusted metadata records
	buckets *kv.Region // untrusted hash bucket heads
	nbkt    uint64

	pool  kv.Mem // payload pool: Region (host/enclave) or SUVMRegion
	slabs *slabAlloc

	freeRecs []uint64 // 1-based record indices
	maxItems uint64
	nextRec  uint64

	// Per-class LRU lists (head = most recent). Go-side heads index
	// into the metadata region; links live in the records themselves.
	lruHead, lruTail []uint64
	clock            uint64

	itemCount uint64
	evictions uint64
}

// NewStore builds a store; setup pays the (unmeasured) allocation costs.
func NewStore(plat *sgx.Platform, setup *sgx.Thread, cfg Config) (*Store, error) {
	if cfg.MemLimitBytes < slabBytes {
		return nil, fmt.Errorf("mckv: memory limit %d below one slab (%d)", cfg.MemLimitBytes, slabBytes)
	}
	if cfg.MaxItems == 0 {
		cfg.MaxItems = cfg.MemLimitBytes / minChunk
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1
		for cfg.Buckets < cfg.MemLimitBytes/1024 {
			cfg.Buckets *= 2
		}
	}
	if cfg.Buckets&(cfg.Buckets-1) != 0 {
		return nil, fmt.Errorf("mckv: bucket count %d must be a power of two", cfg.Buckets)
	}
	s := &Store{
		cfg:      cfg,
		plat:     plat,
		meta:     kv.HostRegion(plat, cfg.MaxItems*recBytes),
		buckets:  kv.HostRegion(plat, cfg.Buckets*8),
		nbkt:     cfg.Buckets,
		slabs:    newSlabAlloc(cfg.MemLimitBytes),
		maxItems: cfg.MaxItems,
	}
	switch cfg.Placement {
	case PlaceHost:
		s.pool = kv.HostRegion(plat, cfg.MemLimitBytes)
	case PlaceEnclave:
		if setup.Enclave() == nil {
			return nil, fmt.Errorf("mckv: enclave placement requires an enclave thread")
		}
		s.pool = kv.EnclaveRegion(setup.Enclave(), cfg.MemLimitBytes)
	case PlaceSUVM, PlaceSUVMDirect:
		if cfg.Heap == nil {
			return nil, fmt.Errorf("mckv: SUVM placement requires a heap")
		}
		var p *suvm.SPtr
		var err error
		if cfg.Placement == PlaceSUVM {
			p, err = cfg.Heap.Malloc(cfg.MemLimitBytes)
		} else {
			p, err = cfg.Heap.MallocDirect(cfg.MemLimitBytes)
		}
		if err != nil {
			return nil, err
		}
		s.pool = kv.WrapSPtr(p)
	}
	s.lruHead = make([]uint64, len(s.slabs.classes))
	s.lruTail = make([]uint64, len(s.slabs.classes))
	return s, nil
}

// ItemCount returns the number of live items.
func (s *Store) ItemCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.itemCount
}

// Evictions returns the LRU eviction count.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// BytesUsed returns live payload bytes (chunk granularity).
func (s *Store) BytesUsed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slabs.InUse()
}

// --- metadata field helpers (all via the simulated host memory) ---

func (s *Store) recOff(idx uint64) uint64 { return (idx - 1) * recBytes }

func (s *Store) recRead(th *sgx.Thread, idx, field uint64) uint64 {
	var b [8]byte
	if err := s.meta.Read(th, s.recOff(idx)+field, b[:]); err != nil {
		panic(fmt.Sprintf("mckv: metadata read: %v", err))
	}
	return leU64(b[:])
}

func (s *Store) recWrite(th *sgx.Thread, idx, field, v uint64) {
	var b [8]byte
	putLeU64(b[:], v)
	if err := s.meta.Write(th, s.recOff(idx)+field, b[:]); err != nil {
		panic(fmt.Sprintf("mckv: metadata write: %v", err))
	}
}

func (s *Store) bucketHead(th *sgx.Thread, bkt uint64) uint64 {
	var b [8]byte
	if err := s.buckets.Read(th, bkt*8, b[:]); err != nil {
		panic(fmt.Sprintf("mckv: bucket read: %v", err))
	}
	return leU64(b[:])
}

func (s *Store) setBucketHead(th *sgx.Thread, bkt, idx uint64) {
	var b [8]byte
	putLeU64(b[:], idx)
	if err := s.buckets.Write(th, bkt*8, b[:]); err != nil {
		panic(fmt.Sprintf("mckv: bucket write: %v", err))
	}
}

// --- LRU (caller holds s.mu) ---

func (s *Store) lruUnlink(th *sgx.Thread, idx uint64, class int) {
	next := s.recRead(th, idx, 8)
	prev := s.recRead(th, idx, 16)
	if prev != 0 {
		s.recWrite(th, prev, 8, next)
	} else {
		s.lruHead[class] = next
	}
	if next != 0 {
		s.recWrite(th, next, 16, prev)
	} else {
		s.lruTail[class] = prev
	}
}

func (s *Store) lruPushHead(th *sgx.Thread, idx uint64, class int) {
	head := s.lruHead[class]
	s.recWrite(th, idx, 8, head)
	s.recWrite(th, idx, 16, 0)
	if head != 0 {
		s.recWrite(th, head, 16, idx)
	} else {
		s.lruTail[class] = idx
	}
	s.lruHead[class] = idx
	s.clock++
	s.recWrite(th, idx, 48, s.clock)
}

// --- record pool (caller holds s.mu) ---

func (s *Store) allocRec() (uint64, error) {
	if n := len(s.freeRecs); n > 0 {
		idx := s.freeRecs[n-1]
		s.freeRecs = s.freeRecs[:n-1]
		return idx, nil
	}
	if s.nextRec >= s.maxItems {
		return 0, ErrNoMem
	}
	s.nextRec++
	return s.nextRec, nil
}

// --- core operations ---

// findLocked walks the hash chain for key, returning (recIdx, prevIdx).
// The keyHash filter avoids touching protected memory for non-matching
// chain entries; a match is confirmed against the real key bytes in the
// protected pool.
func (s *Store) findLocked(th *sgx.Thread, key []byte, hash uint64) (uint64, uint64, error) {
	bkt := hash & (s.nbkt - 1)
	prev := uint64(0)
	idx := s.bucketHead(th, bkt)
	for idx != 0 {
		if s.recRead(th, idx, 40) == hash {
			blobOff := s.recRead(th, idx, 24)
			var hdr [blobHdr]byte
			if err := s.pool.Read(th, blobOff, hdr[:]); err != nil {
				return 0, 0, err
			}
			if int(leU32(hdr[0:4])) == len(key) {
				stored := make([]byte, len(key))
				if err := s.pool.Read(th, blobOff+blobHdr, stored); err != nil {
					return 0, 0, err
				}
				if bytesEq(stored, key) {
					return idx, prev, nil
				}
			}
		}
		prev = idx
		idx = s.recRead(th, idx, 0)
	}
	return 0, prev, nil
}

// Set inserts or replaces an item, evicting LRU items on memory
// pressure exactly as memcached does.
func (s *Store) Set(th *sgx.Thread, key, val []byte) error {
	need := uint64(blobHdr + len(key) + len(val))
	if need > maxItemSize {
		return ErrTooLarge
	}
	hash := hashKey(key)
	th.T.Charge(s.plat.Model.SpinLock)
	s.mu.Lock()
	defer s.mu.Unlock()

	if idx, _, err := s.findLocked(th, key, hash); err != nil {
		return err
	} else if idx != 0 {
		s.removeLocked(th, idx, hash, false)
	}

	ci, err := s.slabs.classFor(need)
	if err != nil {
		return ErrTooLarge
	}
	var blobOff uint64
	for {
		blobOff, err = s.slabs.alloc(ci)
		if err == nil {
			break
		}
		if !s.evictLRULocked(th, ci) {
			return ErrNoMem
		}
	}
	idx, err := s.allocRec()
	if err != nil {
		s.slabs.release(ci, blobOff)
		return err
	}

	// Payload into protected memory: sizes + key + value.
	var hdr [blobHdr]byte
	putLeU32(hdr[0:4], uint32(len(key)))
	putLeU32(hdr[4:8], uint32(len(val)))
	if err := s.pool.Write(th, blobOff, hdr[:]); err != nil {
		return err
	}
	if err := s.pool.Write(th, blobOff+blobHdr, key); err != nil {
		return err
	}
	if err := s.pool.Write(th, blobOff+blobHdr+uint64(len(key)), val); err != nil {
		return err
	}

	// Metadata in the clear.
	bkt := hash & (s.nbkt - 1)
	s.recWrite(th, idx, 0, s.bucketHead(th, bkt))
	s.setBucketHead(th, bkt, idx)
	s.recWrite(th, idx, 24, blobOff)
	s.recWrite(th, idx, 32, uint64(ci))
	s.recWrite(th, idx, 40, hash)
	s.lruPushHead(th, idx, ci)
	s.itemCount++
	return nil
}

// Get copies the item's value into valBuf and returns its length,
// bumping the item's LRU position.
func (s *Store) Get(th *sgx.Thread, key []byte, valBuf []byte) (int, error) {
	hash := hashKey(key)
	th.T.Charge(s.plat.Model.SpinLock)
	s.mu.Lock()
	defer s.mu.Unlock()

	idx, _, err := s.findLocked(th, key, hash)
	if err != nil {
		return 0, err
	}
	if idx == 0 {
		return 0, ErrNotFound
	}
	blobOff := s.recRead(th, idx, 24)
	var hdr [blobHdr]byte
	if err := s.pool.Read(th, blobOff, hdr[:]); err != nil {
		return 0, err
	}
	klen, vlen := int(leU32(hdr[0:4])), int(leU32(hdr[4:8]))
	if vlen > len(valBuf) {
		return 0, fmt.Errorf("mckv: value of %d bytes exceeds buffer", vlen)
	}
	if err := s.pool.Read(th, blobOff+blobHdr+uint64(klen), valBuf[:vlen]); err != nil {
		return 0, err
	}
	ci := int(s.recRead(th, idx, 32))
	s.lruUnlink(th, idx, ci)
	s.lruPushHead(th, idx, ci)
	return vlen, nil
}

// Delete removes an item.
func (s *Store) Delete(th *sgx.Thread, key []byte) error {
	hash := hashKey(key)
	th.T.Charge(s.plat.Model.SpinLock)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, _, err := s.findLocked(th, key, hash)
	if err != nil {
		return err
	}
	if idx == 0 {
		return ErrNotFound
	}
	s.removeLocked(th, idx, hash, false)
	return nil
}

// removeLocked unlinks a record from its hash chain and LRU list and
// releases its blob and record.
func (s *Store) removeLocked(th *sgx.Thread, idx, hash uint64, countEvict bool) {
	bkt := hash & (s.nbkt - 1)
	// Unlink from the chain.
	cur := s.bucketHead(th, bkt)
	prev := uint64(0)
	for cur != 0 && cur != idx {
		prev = cur
		cur = s.recRead(th, cur, 0)
	}
	if cur == idx {
		next := s.recRead(th, idx, 0)
		if prev == 0 {
			s.setBucketHead(th, bkt, next)
		} else {
			s.recWrite(th, prev, 0, next)
		}
	}
	ci := int(s.recRead(th, idx, 32))
	s.lruUnlink(th, idx, ci)
	s.slabs.release(ci, s.recRead(th, idx, 24))
	s.freeRecs = append(s.freeRecs, idx)
	s.itemCount--
	if countEvict {
		s.evictions++
	}
}

// evictLRULocked evicts the least-recently-used item of class ci (or,
// failing that, of any class) to relieve memory pressure.
func (s *Store) evictLRULocked(th *sgx.Thread, ci int) bool {
	victim := s.lruTail[ci]
	if victim == 0 {
		for c := range s.lruTail {
			if s.lruTail[c] != 0 {
				victim = s.lruTail[c]
				break
			}
		}
	}
	if victim == 0 {
		return false
	}
	s.removeLocked(th, victim, s.recRead(th, victim, 40), true)
	return true
}

// --- small helpers ---

func hashKey(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// Package mckv is a memcached-style in-memory key-value store built for
// enclave execution, reproducing the paper's §5.1 port: the item memory
// pool is managed by memcached's own slab allocator and LRU, while the
// *placement* of the two halves follows the Eleos split — security-
// insensitive metadata (hash chains, LRU links, slab bookkeeping, access
// times) lives in untrusted host memory in the clear, and the sensitive
// payload (key, value, and their sizes) lives behind SGX protection: in
// the hardware-paged enclave heap for the Graphene-style baseline, or in
// SUVM (page-cached or sub-page direct) for the Eleos configurations.
//
// As a service of a multi-service enclave the package is one isolation
// unit: other services reach it only through CrossCall (enforced by
// eleoslint's servicedomain pass).
//
//eleos:service mckv
package mckv

import (
	"errors"
	"fmt"
)

// ErrNoMem reports slab-pool exhaustion (the store then evicts LRU
// items and retries, as memcached does).
var ErrNoMem = errors.New("mckv: slab pool exhausted")

// slab sizing follows memcached's defaults: a minimum chunk, a growth
// factor of 1.25, and 1 MiB slabs carved into equal chunks.
const (
	minChunk    = 96
	growthNum   = 5 // 1.25 = 5/4
	growthDen   = 4
	slabBytes   = 1 << 20
	maxItemSize = slabBytes
)

type slabClass struct {
	chunk uint64
	free  []uint64 // offsets of free chunks in the pool
}

// slabAlloc carves a fixed-size pool (addressed by offset) into
// size-class chunks. Not safe for concurrent use; the Store serializes.
type slabAlloc struct {
	classes []slabClass
	bump    uint64
	limit   uint64
	inUse   uint64
}

func newSlabAlloc(limit uint64) *slabAlloc {
	a := &slabAlloc{limit: limit}
	for c := uint64(minChunk); c <= maxItemSize; c = c * growthNum / growthDen {
		a.classes = append(a.classes, slabClass{chunk: c})
		if c == maxItemSize {
			break
		}
		if c*growthNum/growthDen > maxItemSize {
			a.classes = append(a.classes, slabClass{chunk: maxItemSize})
			break
		}
	}
	return a
}

// classFor returns the index of the smallest class fitting n bytes.
func (a *slabAlloc) classFor(n uint64) (int, error) {
	for i := range a.classes {
		if a.classes[i].chunk >= n {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mckv: item of %d bytes exceeds max item size %d", n, maxItemSize)
}

// alloc returns a chunk offset for class ci, carving a new slab from the
// pool if the class free list is empty. Returns ErrNoMem when the pool
// is exhausted.
func (a *slabAlloc) alloc(ci int) (uint64, error) {
	cl := &a.classes[ci]
	if n := len(cl.free); n > 0 {
		off := cl.free[n-1]
		cl.free = cl.free[:n-1]
		a.inUse += cl.chunk
		return off, nil
	}
	if a.bump+slabBytes > a.limit {
		return 0, ErrNoMem
	}
	base := a.bump
	a.bump += slabBytes
	for off := base + cl.chunk; off+cl.chunk <= base+slabBytes; off += cl.chunk {
		cl.free = append(cl.free, off)
	}
	a.inUse += cl.chunk
	return base, nil
}

// release returns a chunk to its class.
func (a *slabAlloc) release(ci int, off uint64) {
	a.classes[ci].free = append(a.classes[ci].free, off)
	a.inUse -= a.classes[ci].chunk
}

// InUse returns bytes held by live chunks.
func (a *slabAlloc) InUse() uint64 { return a.inUse }

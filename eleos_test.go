package eleos

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func newRuntime(t testing.TB) *Runtime {
	t.Helper()
	rt, err := NewRuntime(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRuntimeEnclaveLifecycle(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()
	if ctx.Thread().Enclave() != encl.Raw() {
		t.Fatal("context bound to wrong enclave")
	}
}

func TestPtrRoundTripBeyondEPC(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, err := ctx.Malloc(64 << 20) // 8x the page cache
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(want)
	if err := p.WriteAt(48<<20, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(48<<20, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("facade readback mismatch")
	}
	st := rt.Stats().Heaps[0]
	if st.MajorFaults == 0 {
		t.Fatal("expected SUVM paging on an 8x working set")
	}
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestPtrCursorOps(t *testing.T) {
	rt := newRuntime(t)
	encl, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, _ := ctx.Malloc(16 << 10)
	if err := p.WriteU64(0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if !p.Linked() {
		t.Fatal("write did not link")
	}
	if err := p.Seek(0); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadU64()
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	if err := p.Advance(8192); err != nil {
		t.Fatal(err)
	}
	if p.Linked() {
		t.Fatal("page crossing did not unlink")
	}
	p.Unlink()
}

func TestExitlessVsOCall(t *testing.T) {
	rt := newRuntime(t)
	encl, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	exits0, ocalls0, _, _, _ := encl.Raw().Stats().Snapshot()
	for i := 0; i < 10; i++ {
		ctx.Exitless(func(h *HostCtx) { h.Syscall(nil) })
	}
	exits1, _, _, _, _ := encl.Raw().Stats().Snapshot()
	if exits1 != exits0 {
		t.Fatalf("Exitless caused %d exits", exits1-exits0)
	}
	ctx.OCall(func(h *HostCtx) { h.Syscall(nil) })
	exits2, ocalls2, _, _, _ := encl.Raw().Stats().Snapshot()
	if exits2 != exits1+1 || ocalls2 != ocalls0+1 {
		t.Fatalf("OCall accounting: exits %d->%d, ocalls %d->%d", exits1, exits2, ocalls0, ocalls2)
	}
}

func TestDirectAllocation(t *testing.T) {
	rt := newRuntime(t)
	encl, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()

	p, err := ctx.MallocDirect(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("sub-page sealed")
	if err := p.WriteAt(3000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.ReadAt(3000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("direct readback mismatch")
	}
	if st := rt.Stats().Heaps[0]; st.DirectWrites == 0 || st.DirectReads == 0 {
		t.Fatalf("direct counters: %+v", st)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	rt := newRuntime(t)
	encl, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	defer encl.Destroy()
	ctx := encl.NewContext()
	defer ctx.Close()
	c0 := ctx.Cycles()
	p, _ := ctx.Malloc(1 << 20)
	_ = p.WriteAt(0, make([]byte, 4096))
	if ctx.Cycles() <= c0 {
		t.Fatal("work consumed no virtual time")
	}
	if ctx.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestSegmentTransferViaFacade(t *testing.T) {
	rt := newRuntime(t)
	a, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	b, _ := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	defer a.Destroy()
	defer b.Destroy()
	ctxA, ctxB := a.NewContext(), b.NewContext()
	defer ctxA.Close()
	defer ctxB.Close()

	seg, err := rt.NewSegment(2<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := ctxA.Attach(seg)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross-enclave, sealed, never re-encrypted")
	if err := pa.WriteAt(1<<20, msg); err != nil {
		t.Fatal(err)
	}
	if err := ctxA.Detach(pa); err != nil {
		t.Fatal(err)
	}
	pb, err := ctxB.Attach(seg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := pb.ReadAt(1<<20, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("segment transfer lost data: %q", got)
	}
	if err := ctxB.Detach(pb); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeAccessorsAndDefaults(t *testing.T) {
	rt, err := NewRuntime(Config{}) // zero config: defaults fill in
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Platform() == nil || rt.Pool() == nil {
		t.Fatal("accessors returned nil")
	}
	if rt.Platform().Driver.NumFrames() == 0 {
		t.Fatal("default platform has no PRM")
	}
}

func TestBackgroundSwapperViaFacade(t *testing.T) {
	rt := newRuntime(t)
	// 40MB fits a lone enclave's share of the 93MB PRM, but not half
	// of it once a second enclave arrives.
	encl, err := rt.NewEnclave(EnclaveConfig{
		PageCacheBytes:  40 << 20,
		SwapperInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := rt.NewEnclave(EnclaveConfig{PageCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Destroy()
	full := int((40 << 20) / 4096)
	deadline := time.Now().Add(2 * time.Second)
	for encl.Heap().ActiveFrames() >= full {
		if time.Now().After(deadline) {
			t.Fatalf("swapper never deflated (frames=%d)", encl.Heap().ActiveFrames())
		}
		time.Sleep(2 * time.Millisecond)
	}
	encl.Destroy() // stops the swapper
}

func TestHeapConfigPassthrough(t *testing.T) {
	rt := newRuntime(t)
	encl, err := rt.NewEnclave(EnclaveConfig{
		Heap: HeapConfig{PageCacheBytes: 8 << 20, PageSize: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	if got := encl.Heap().PageSize(); got != 8192 {
		t.Fatalf("page size %d not passed through", got)
	}
	if _, err := rt.NewEnclave(EnclaveConfig{}); err == nil {
		t.Fatal("enclave without page cache size accepted")
	}
}

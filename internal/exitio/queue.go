package exitio

import (
	"errors"
	"fmt"

	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

// ErrCanceled marks the completion of an op that never ran because an
// earlier op in its linked chain failed (io_uring's short-circuit rule
// for IOSQE_IO_LINK).
var ErrCanceled = errors.New("exitio: op canceled: earlier op in linked chain failed")

// CQE is one completion-queue entry.
type CQE struct {
	// Kind and Tag echo the submitted op (Tag is caller-chosen via
	// PushTagged; 0 otherwise).
	Kind Kind
	Tag  uint64
	// N is the op's result count: bytes moved, or the fd for Open.
	N int
	// Err is the op's error, or ErrCanceled for linked ops skipped
	// after a failure.
	Err error
}

// sqe is one staged submission entry; link ties it to the previous
// entry's chain.
type sqe struct {
	op   Op
	tag  uint64
	link bool
}

type result struct {
	n   int
	err error
}

// chain is one in-flight linked submission: its ops, the worker-filled
// results, and the future publishing them. res is written by the worker
// before the future's done flag and read by the owner only after
// observing it. Chains are recycled through the engine's chainPool: the
// future is embedded (filled in place via CallAsyncNotifyInto), ops and
// res keep their capacity across reuses, and exec is the dispatch
// closure built once per chain object.
type chain struct {
	fut  rpc.Future
	ops  []sqe
	res  []result
	exec func(*sgx.HostCtx)
}

// Queue is a per-thread submission/completion queue. The owning thread
// stages ops (Push/PushLinked), rings the doorbell (Submit), and reaps
// typed completions (Reap/WaitN/SubmitAndWait); completions always
// surface in submission order. The only cross-thread touch point is
// the wake channel the workers' completion callbacks poke, so a reap
// can block instead of spinning per future — a Queue therefore needs
// no mutex, and must not be shared between serving threads.
type Queue struct {
	eng *Engine
	// grp, when non-nil, receives a mirror of every counter update the
	// queue makes on the engine — the per-service attribution for queues
	// opened with NewGroupQueue.
	grp *Group
	// mode is the queue's current dispatch mode. It starts as the
	// engine's default and may be changed between chains with SetMode —
	// the live engine-mode flip the self-tuning controller drives.
	mode   Mode
	staged []sqe
	// pending is the FIFO of in-flight chains. It is consumed through
	// pendHead rather than by reslicing, so when the queue drains the
	// slice rewinds to the start of its backing array and steady-state
	// submissions append into retained capacity instead of allocating.
	pending  []*chain
	pendHead int
	ready    []CQE
	// spare is the second half of the reap double buffer: take hands
	// out ready and starts filling spare, so steady-state reaping
	// recycles two buffers instead of allocating one per cycle. The
	// slice a reap returns is therefore only valid until the next
	// Reap/WaitN/SubmitAndWait call on the queue.
	spare []CQE
	// notify is the bound q.notifyOne method value, created once at
	// NewQueue so submissions don't allocate a closure per chain.
	notify func()
	// wake carries lossy completion tokens from notifyOne: capacity 1,
	// non-blocking sends. Safe because the queue has a single reaper,
	// which re-checks the head future after every token — a dropped
	// token implies a token is already buffered. SetMode drains stale
	// tokens so they never cross a mode epoch.
	wake chan struct{}
}

// Engine returns the owning engine.
func (q *Queue) Engine() *Engine { return q.eng }

// Mode returns the queue's current dispatch mode.
func (q *Queue) Mode() Mode { return q.mode }

// SetMode switches the queue's dispatch mode at a chain boundary. Mode
// changes never cut a chain: every in-flight chain is settled under the
// old mode first (its completions join the ready list in submission
// order, with the usual residual-latency accounting on th), and ops
// staged but not yet submitted cross the boundary whole under the new
// mode at their Submit. Stale wake tokens from the old mode's reaps are
// drained before the switch — with no chain pending none can arrive
// concurrently — so a token buffered by an already-collected completion
// can never leak into a later async epoch and spuriously wake its
// reaper. Returns an error (leaving the mode unchanged) if the new mode
// needs an rpc pool the engine was built without.
func (q *Queue) SetMode(th *sgx.Thread, m Mode) error {
	if m == q.mode {
		return nil
	}
	if m.NeedsPool() && q.eng.pool == nil {
		return fmt.Errorf("exitio: SetMode: %s dispatch requires a worker pool", m)
	}
	for q.pendLen() > 0 {
		q.waitHead(th)
	}
	for drained := false; !drained; {
		select {
		case <-q.wake:
		default:
			drained = true
		}
	}
	q.mode = m
	q.eng.modeSwitches.Add(1)
	if q.grp != nil {
		q.grp.modeSwitches.Add(1)
	}
	return nil
}

// Push stages op as the start of a new chain.
//
//eleos:hotpath budget=0
func (q *Queue) Push(op Op) { q.push(op, 0, false) }

// PushTagged stages op with a caller-chosen tag echoed in its CQE.
func (q *Queue) PushTagged(op Op, tag uint64) { q.push(op, tag, false) }

// PushLinked stages op linked to the previously staged op: the two
// cross the boundary on one doorbell, execute in order, and a failure
// cancels the rest of the chain. With nothing staged it starts a new
// chain.
func (q *Queue) PushLinked(op Op) { q.push(op, 0, true) }

// PushLinkedTagged is PushLinked with a completion tag.
func (q *Queue) PushLinkedTagged(op Op, tag uint64) { q.push(op, tag, true) }

//eleos:hotpath budget=0
func (q *Queue) push(op Op, tag uint64, link bool) {
	if len(q.staged) == 0 {
		link = false
	}
	//eleos:allow hotpath -- amortized: the staged list keeps its capacity across submits
	q.staged = append(q.staged, sqe{op: op, tag: tag, link: link})
}

// Staged returns the number of staged, not-yet-submitted ops.
func (q *Queue) Staged() int { return len(q.staged) }

// InFlight returns the number of submitted ops not yet reaped.
func (q *Queue) InFlight() int {
	n := 0
	for _, c := range q.pending[q.pendHead:] {
		n += len(c.ops)
	}
	return n
}

// execChain is the untrusted half of a submission: it runs each op's
// kernel call in order on the worker/OCALL/native host context and
// records per-op results. An op error cancels the rest of its chain.
//
//eleos:untrusted
//eleos:hotpath budget=0
func execChain(h *sgx.HostCtx, ops []sqe, res []result) {
	failed := false
	for i := range ops {
		if failed {
			res[i] = result{err: ErrCanceled}
			continue
		}
		n, err := ops[i].op.exec(h)
		res[i] = result{n: n, err: err}
		if err != nil {
			failed = true
		}
	}
}

// Submit rings the doorbell for everything staged: each chain crosses
// the boundary once, via the queue's dispatch mode. Synchronous modes
// (Direct, OCall, RPCSync) complete the chains before returning — a
// single-op chain in those modes charges exactly what the per-server
// switches used to. ModeRPCAsync publishes each chain to the pool and
// returns; completions are settled at reap. th is the owning enclave
// thread (a host thread in ModeDirect). On an rpc pool error the
// already-dispatched chains keep their completions and the remaining
// staged chains are dropped.
//
//eleos:hotpath budget=0
func (q *Queue) Submit(th *sgx.Thread) error {
	staged := q.staged
	q.staged = q.staged[:0]
	for start := 0; start < len(staged); {
		end := start + 1
		for end < len(staged) && staged[end].link {
			end++
		}
		// The chain keeps its own copy: q.staged's backing array is
		// reused by the next Push while async chains are in flight.
		// Chains come from the engine pool, so in steady state these
		// reslices reuse recycled capacity and allocate nothing.
		c := q.eng.getChain()
		if cap(c.ops) < end-start {
			//eleos:allow hotpath -- chain warm-up: capacity is reused once the chain recycles
			c.ops = make([]sqe, end-start)
		} else {
			c.ops = c.ops[:end-start]
		}
		copy(c.ops, staged[start:end])
		if cap(c.res) < len(c.ops) {
			//eleos:allow hotpath -- chain warm-up: capacity is reused once the chain recycles
			c.res = make([]result, len(c.ops))
		} else {
			c.res = c.res[:len(c.ops)]
		}
		start = end

		q.eng.doorbells.Add(1)
		q.eng.chains.Add(1)
		q.eng.ops.Add(uint64(len(c.ops)))
		q.eng.linked.Add(uint64(len(c.ops) - 1))
		if q.grp != nil {
			q.grp.doorbells.Add(1)
			q.grp.chains.Add(1)
			q.grp.ops.Add(uint64(len(c.ops)))
			q.grp.linked.Add(uint64(len(c.ops) - 1))
		}
		switch q.mode {
		case ModeDirect:
			execChain(th.HostContext(), c.ops, c.res)
			q.complete(c)
		case ModeOCall:
			th.OCall(c.exec)
			q.complete(c)
		case ModeRPCSync:
			if err := q.eng.pool.Call(th, c.exec); err != nil {
				q.eng.putChain(c)
				//eleos:allow hotpath -- cold error path: the pool refused the chain
				return fmt.Errorf("exitio: submit: %w", err)
			}
			q.complete(c)
		case ModeRPCAsync:
			if err := q.eng.pool.CallAsyncNotifyInto(&c.fut, th, c.exec, q.notify); err != nil {
				q.eng.putChain(c)
				//eleos:allow hotpath -- cold error path: the pool refused the chain
				return fmt.Errorf("exitio: submit: %w", err)
			}
			//eleos:allow hotpath -- amortized: the pending list keeps its capacity across reaps
			q.pending = append(q.pending, c)
		}
	}
	return nil
}

// notifyOne runs on an untrusted worker right after a chain's future
// is published: a lossy, non-blocking wake token for the reaper.
//
//eleos:hotpath budget=0
func (q *Queue) notifyOne() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// complete moves a finished chain's results onto the completion list
// and recycles the chain.
//
//eleos:hotpath budget=0
func (q *Queue) complete(c *chain) {
	for i := range c.ops {
		//eleos:allow hotpath -- amortized: the ready list alternates two retained buffers
		q.ready = append(q.ready, CQE{
			Kind: c.ops[i].op.Kind(),
			Tag:  c.ops[i].tag,
			N:    c.res[i].n,
			Err:  c.res[i].err,
		})
	}
	q.eng.putChain(c)
}

// pendLen returns the number of in-flight chains.
//
//eleos:hotpath budget=0
func (q *Queue) pendLen() int { return len(q.pending) - q.pendHead }

// retireHead settles the oldest pending chain: Wait charges the
// residual latency the owner's compute did not hide (plus the
// completion poll), and the chain's CQEs become reapable.
//
//eleos:hotpath budget=0
func (q *Queue) retireHead(th *sgx.Thread) {
	c := q.pending[q.pendHead]
	q.pending[q.pendHead] = nil
	q.pendHead++
	if q.pendHead == len(q.pending) {
		// Drained: rewind to the start of the backing array so the
		// capacity is reused by the next submission.
		q.pending = q.pending[:0]
		q.pendHead = 0
	}
	before := th.T.Cycles()
	c.fut.Wait(th)
	stall := th.T.Cycles() - before
	q.eng.reapStall.Add(stall)
	if q.grp != nil {
		q.grp.reapStall.Add(stall)
	}
	q.complete(c)
}

// collect retires every already-completed chain at the head of the
// pending list, preserving submission order.
//
//eleos:hotpath budget=0
func (q *Queue) collect(th *sgx.Thread) {
	for q.pendLen() > 0 && q.pending[q.pendHead].fut.Done() {
		q.retireHead(th)
	}
}

// waitHead blocks — without spinning — until the oldest pending chain
// completes, then retires it. The wake tokens are lossy, so the head
// future is re-checked after every token; the completion callback
// publishes the done flag before poking the channel, so a blocked
// reaper is always woken.
//
//eleos:hotpath budget=0
func (q *Queue) waitHead(th *sgx.Thread) {
	c := q.pending[q.pendHead]
	for !c.fut.Done() {
		<-q.wake
	}
	q.retireHead(th)
}

// take hands the accumulated completions to the caller and swaps in
// the spare buffer, so the next completions reuse retained capacity
// instead of allocating a fresh list per reap cycle. The returned
// slice is valid until the caller's next reap on this queue.
//
//eleos:hotpath budget=0
func (q *Queue) take() []CQE {
	out := q.ready
	q.ready = q.spare[:0]
	q.spare = out
	return out
}

// Reap returns the completions available right now, in submission
// order, without blocking. In the synchronous modes everything
// submitted is already complete.
//
//eleos:hotpath budget=0
func (q *Queue) Reap(th *sgx.Thread) []CQE {
	q.collect(th)
	return q.take()
}

// WaitN blocks until at least n completions are available (or nothing
// is in flight), then returns all of them in submission order.
//
//eleos:hotpath budget=0
func (q *Queue) WaitN(th *sgx.Thread, n int) []CQE {
	q.collect(th)
	for len(q.ready) < n && q.pendLen() > 0 {
		q.waitHead(th)
		q.collect(th)
	}
	return q.take()
}

// SubmitAndWait submits everything staged and waits for every in-flight
// chain, returning all completions in submission order — the
// convenience path for request/response loops.
//
//eleos:hotpath budget=0
func (q *Queue) SubmitAndWait(th *sgx.Thread) ([]CQE, error) {
	if err := q.Submit(th); err != nil {
		return nil, err
	}
	for q.pendLen() > 0 {
		q.waitHead(th)
	}
	return q.take(), nil
}

// FirstErr returns the first real completion error in cqes, preferring
// a root-cause error over the ErrCanceled entries that follow it.
func FirstErr(cqes []CQE) error {
	for _, c := range cqes {
		if c.Err != nil && !errors.Is(c.Err, ErrCanceled) {
			return c.Err
		}
	}
	for _, c := range cqes {
		if c.Err != nil {
			return c.Err
		}
	}
	return nil
}

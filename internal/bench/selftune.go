package bench

import (
	"fmt"

	"eleos/internal/exitio"
	"eleos/internal/report"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/tune"
)

func init() {
	register("selftune", "Configless self-tuning: diurnal load vs static worker pools", runSelfTune)
}

// The diurnal trace: phases of offered parallelism (each request is one
// batched exit-less submission carrying `par` independent ops), long
// enough that a static pool's fit — or misfit — dominates the phase.
type selfTunePhase struct {
	name string
	par  int
}

var selfTunePhases = []selfTunePhase{
	{"night", 1},
	{"morning", 4},
	{"noon", 8},
	{"afternoon", 4},
	{"evening", 1},
	{"peak", 8},
}

// Per-op worker cost (a syscall plus processing) and per-request caller
// think time, in virtual cycles. With 2k-cycle ops an 8-wide batch
// spreads across up to 8 workers, so the pool size is the phase's
// throughput lever.
const (
	stOpExtraCycles = 1750
	stThinkCycles   = 100
)

// selfTunePolicy is the controller policy the experiment hands to
// tune.New: default-shaped, with a short epoch and eager growth so
// convergence costs a small fraction of a phase even at -quick scale.
func selfTunePolicy() tune.Policy {
	return tune.Policy{
		EpochCycles:       60_000,
		MinWorkers:        1,
		MaxWorkers:        8,
		TargetUtilization: 0.7,
		Hysteresis:        1,
		ShrinkHysteresis:  3,
	}
}

// stServe drives phases of the diurnal trace on one serving thread and
// returns per-phase elapsed virtual cycles. pump, when non-nil, runs
// after every request (the self-tuned variant's controller hook).
func stServe(pool *rpc.Pool, th *sgx.Thread, reqs int, pump func(), phases []selfTunePhase) ([]uint64, error) {
	work := func(h *sgx.HostCtx) {
		h.Syscall(nil)
		h.Thread().T.Charge(stOpExtraCycles)
	}
	elapsed := make([]uint64, len(phases))
	for pi, ph := range phases {
		batch := make([]func(*sgx.HostCtx), ph.par)
		for i := range batch {
			batch[i] = work
		}
		start := th.T.Cycles()
		for r := 0; r < reqs; r++ {
			if err := pool.CallBatch(th, batch); err != nil {
				return nil, err
			}
			th.T.Charge(stThinkCycles)
			if pump != nil {
				pump()
			}
		}
		elapsed[pi] = th.T.Cycles() - start
	}
	return elapsed, nil
}

// runSelfTune compares one serving thread's throughput over the diurnal
// trace under static pools of 1/2/4/8 workers against the self-tuned
// pool (WithWorkerBounds-style: starts at 1, adapts inside [1, 8]). The
// configless claim is two-sided: the self-tuned pool tracks the best
// static configuration at every phase, and its mean worker count
// follows the load instead of peak-provisioning through the night.
func runSelfTune(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	reqs := rc.Ops / 25
	if reqs < 1500 {
		reqs = 1500
	}

	statics := []int{1, 2, 4, 8}
	phaseCycles := make(map[int][]uint64, len(statics))
	for _, w := range statics {
		v := enclaveEnv(0).withPool(w)
		el, err := stServe(v.pool, v.th, reqs, nil, selfTunePhases)
		v.close()
		if err != nil {
			return nil, err
		}
		phaseCycles[w] = el
	}

	// Self-tuned run: same trace, pool starting at the lower bound, the
	// controller pumped once per request. Worker counts are sampled per
	// request for the provisioning column.
	v := enclaveEnv(0).withPool(1)
	defer v.close()
	eng, err := exitio.NewEngine(exitio.ModeRPCAsync, v.pool)
	if err != nil {
		return nil, err
	}
	ctrl, err := tune.New(v.pool, eng, selfTunePolicy())
	if err != nil {
		return nil, err
	}
	var workerSum uint64
	var samples int
	pump := func() {
		ctrl.Pump(v.th)
		workerSum += uint64(v.pool.WorkerCount())
		samples++
	}
	meanWorkers := make([]float64, len(selfTunePhases))
	selfCycles := make([]uint64, len(selfTunePhases))
	ctrl.Pump(v.th) // baseline epoch
	for pi := range selfTunePhases {
		workerSum, samples = 0, 0
		one := selfTunePhases[pi : pi+1]
		el, err := stServe(v.pool, v.th, reqs, pump, one)
		if err != nil {
			return nil, err
		}
		selfCycles[pi] = el[0]
		meanWorkers[pi] = float64(workerSum) / float64(samples)
	}

	model := v.plat.Model
	t := report.New("Diurnal load: requests/s by worker provisioning (batched exit-less submission, 1 serving thread)",
		"phase", "offered par", "w=1 Kreq/s", "w=2 Kreq/s", "w=4 Kreq/s", "w=8 Kreq/s",
		"self Kreq/s", "self/best", "self mean w")
	t.Note = fmt.Sprintf("%d requests per phase; self-tuned pool bounds [1, 8], epoch %d cycles; best = max over the static pools per phase",
		reqs, selfTunePolicy().EpochCycles)
	tput := func(cyc uint64) float64 { return float64(reqs) / model.Seconds(cyc) / 1e3 }
	worstRatio := 1.0
	for pi, ph := range selfTunePhases {
		best := 0.0
		var cols []float64
		for _, w := range statics {
			v := tput(phaseCycles[w][pi])
			cols = append(cols, v)
			if v > best {
				best = v
			}
		}
		self := tput(selfCycles[pi])
		ratio := self / best
		if ratio < worstRatio {
			worstRatio = ratio
		}
		t.AddRow(ph.name, ph.par, cols[0], cols[1], cols[2], cols[3], self, ratio, meanWorkers[pi])
	}

	st := ctrl.Stats()
	ct := report.New("Controller activity over the trace",
		"epochs", "grows", "shrinks", "mode switches", "final workers", "final advice", "worst self/best")
	advice := st.Mode.String()
	if st.Chain {
		advice += "+chain"
	}
	ct.AddRow(st.Epochs, st.Grows, st.Shrinks, st.ModeSwitches, st.Workers, advice, worstRatio)

	return &Result{
		ID:     "selftune",
		Title:  "Configless self-tuning: diurnal load vs static worker pools",
		Tables: []*report.Table{t, ct},
	}, nil
}

// Package hot is testdata for the hotpath analyzer: budget violations,
// branch-aware worst cases, transitive callee costs, suppression and
// malformed directives.
package hot

import (
	"fmt"

	"hotlib"
)

// Item is the fixture payload.
type Item struct {
	tag int
	s   []int
}

// Over busts its budget with three local allocation sites.
//
//eleos:hotpath budget=1
func Over(n int) *Item { // want "hot-path function hot.Over: worst-case 3 heap allocations exceed budget 1"
	s := make([]int, 0, 4) // want "make allocates"
	s = append(s, n)       // want "append may grow"
	return &Item{s: s}     // want "composite literal escapes"
}

// Under fits: one allocation against budget 1, silent.
//
//eleos:hotpath budget=1
func Under() *Item { return &Item{} }

// Zero moves pointers only: clean at budget 0.
//
//eleos:hotpath budget=0
func Zero(it *Item) *Item {
	if it == nil {
		return nil
	}
	it.tag++
	return it
}

// Branchy allocates on both arms; the worst case is the max over
// branches (1), not the sum (2), so budget=1 holds. (An early return
// followed by straight-line code is summed — the walker does not track
// reachability.)
//
//eleos:hotpath budget=1
func Branchy(c bool) *Item {
	var it *Item
	if c {
		it = &Item{tag: 1}
	} else {
		it = &Item{tag: 2}
	}
	return it
}

// Loop's body counts once, not per iteration: one append, budget 1.
//
//eleos:hotpath budget=1
func Loop(n int) []*Item {
	var out []*Item
	for i := 0; i < n; i++ {
		out = append(out, nil)
	}
	return out
}

// Deep busts through its unannotated callee: hotlib.Boxes charges its
// real worst case (2) at the call site.
//
//eleos:hotpath budget=1
func Deep() *hotlib.Buf { // want "hot-path function hot.Deep: worst-case 2 heap allocations exceed budget 1"
	return hotlib.Boxes() // want "call to hotlib.Boxes adds 2 worst-case allocation"
}

// Declared trusts hotlib.Pooled's declared budget (1): composition,
// not a recount.
//
//eleos:hotpath budget=1
func Declared() *hotlib.Buf {
	return hotlib.Pooled()
}

// Fmt shows the formatting triple-charge: the fmt call, its variadic
// argument slice, and boxing the non-constant int operand.
//
//eleos:hotpath budget=0
func Fmt(n int) error { // want "hot-path function hot.Fmt: worst-case 3 heap allocations exceed budget 0"
	return fmt.Errorf("bad tag %d", n) // want "allocates"
}

// Closure charges the closure itself plus its body's sites.
//
//eleos:hotpath budget=1
func Closure(n int) func() *Item { // want "hot-path function hot.Closure: worst-case 2 heap allocations exceed budget 1"
	return func() *Item { return &Item{tag: n} } // want "closure allocates|composite literal escapes"
}

// Concat charges one allocation for the whole a+b+c chain.
//
//eleos:hotpath budget=0
func Concat(a, b, c string) string { // want "hot-path function hot.Concat: worst-case 1 heap allocations exceed budget 0"
	return a + b + c // want "string concatenation allocates"
}

// Convert charges the string/byte-slice crossings.
//
//eleos:hotpath budget=1
func Convert(s string) string { // want "hot-path function hot.Convert: worst-case 2 heap allocations exceed budget 1"
	b := []byte(s)   // want "string-to-slice conversion allocates"
	return string(b) // want "conversion to string allocates"
}

// Allowed suppresses the amortized append, bringing the count under
// budget.
//
//eleos:hotpath budget=0
func Allowed(s []int, n int) []int {
	//eleos:allow hotpath -- amortized growth, caller pre-sizes capacity
	return append(s, n)
}

// Bad carries a hotpath directive with no parseable budget.
//
//eleos:hotpath budget=soon
func Bad() { // want "hotpath directive on hot.Bad is missing a budget=N argument"
	_ = make([]int, 1)
}

// Cold is unannotated: allocations are free here.
func Cold() *Item {
	return &Item{s: make([]int, 8)}
}

package sgx

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"eleos/internal/phys"
	"eleos/internal/seal"
)

// DriverStats counts the driver-visible paging events. IPIs counts
// individual interrupts delivered to cores (the unit Table 2 of the
// paper reports), not shootdown rounds.
type DriverStats struct {
	Faults         uint64 // EPC page faults handled (incl. demand-zero)
	DemandZero     uint64 // faults that materialized a never-touched page
	PageIns        uint64 // ELDU: pages decrypted back from host memory
	Evictions      uint64 // EWB: pages sealed out to host memory
	IPIs           uint64 // shootdown IPIs delivered
	Rounds         uint64 // background reclaim rounds
	QueuedCycles   uint64 // virtual cycles faults spent queued on the driver
	ContendedFault uint64 // faults that found the driver busy
}

// Driver simulates the (untrusted) Linux SGX kernel driver: it owns the
// pool of usable PRM frames, splits it among enclaves, services EPC page
// faults, and reclaims frames with a batched background swapper whose
// evictions trigger TLB-shootdown IPIs on the cores currently running
// the victim enclave. It also implements the Eleos extension: an ioctl
// reporting the PRM share available to an enclave (§3.3), which the
// untrusted runtime uses to balloon SUVM page caches.
type Driver struct {
	plat *Platform
	// frames backs every usable PRM frame with real storage.
	frames []byte

	//eleos:lockorder 110
	mu         sync.Mutex
	freeFrames []int32
	enclaves   map[int]*Enclave
	evictBatch int
	stats      DriverStats

	// busyUntil serializes fault handling in *virtual* time: the driver
	// is one kernel-side resource, so concurrent faults from different
	// cores queue behind each other (the reason multi-threaded EPC
	// paging scales poorly in the paper's Fig 7b/10/11 baselines).
	// Meaningful whenever the participating threads' virtual clocks
	// share an epoch, which every benchmark establishes by resetting
	// all thread counters and the driver together.
	busyUntil uint64
}

func newDriver(p *Platform, numFrames, evictBatch int) *Driver {
	d := &Driver{
		plat:       p,
		frames:     make([]byte, numFrames*phys.PageSize),
		freeFrames: make([]int32, 0, numFrames),
		enclaves:   make(map[int]*Enclave),
		evictBatch: evictBatch,
	}
	for i := numFrames - 1; i >= 0; i-- {
		d.freeFrames = append(d.freeFrames, int32(i))
	}
	return d
}

// frameData returns the storage of one PRM frame.
func (d *Driver) frameData(frame int32) []byte {
	off := int(frame) * phys.PageSize
	return d.frames[off : off+phys.PageSize]
}

// NumFrames returns the usable PRM size in frames.
func (d *Driver) NumFrames() int { return len(d.frames) / phys.PageSize }

// AvailableEPCBytes is the Eleos driver ioctl (§4.1): it reports the PRM
// share available to one enclave under the driver's simple heuristic of
// splitting usable PRM evenly among active enclaves.
func (d *Driver) AvailableEPCBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.enclaves)
	if n == 0 {
		n = 1
	}
	return uint64(d.NumFrames()/n) * phys.PageSize
}

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() DriverStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the driver counters and the virtual-time queue
// (benchmark warm-up boundary; reset thread clocks at the same point).
func (d *Driver) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = DriverStats{}
	d.busyUntil = 0
}

func (d *Driver) enclaveCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.enclaves)
}

func (d *Driver) register(e *Enclave) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.enclaves[e.id] = e
}

// unregister tears an enclave down, returning its frames to the pool.
func (d *Driver) unregister(e *Enclave) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.enclaves, e.id)
	e.pagingMu.Lock()
	for i := range e.pages {
		p := &e.pages[i]
		if p.state == pageResident {
			d.freeFrames = append(d.freeFrames, p.frame)
		}
		p.state = pageAbsent
	}
	e.pagingMu.Unlock()
}

// quotaFrames is the per-enclave fair share under the even-split policy.
// Must be called with d.mu held.
func (d *Driver) quotaFrames() int {
	n := len(d.enclaves)
	if n == 0 {
		n = 1
	}
	return d.NumFrames() / n
}

// fault services an EPC page fault for page idx of enclave e, raised by
// thread th. The thread has already paid the exit round trip. write
// indicates the faulting access type (the paged-in page starts dirty for
// writes so hardware behaviour is conservative; SGX always writes back
// on EWB anyway).
func (d *Driver) fault(th *Thread, e *Enclave, idx uint64, write bool) {
	d.mu.Lock()
	e.pagingMu.Lock()

	p := &e.pages[idx]
	if p.state == pageResident {
		// Another thread resolved it while we were acquiring locks;
		// hardware would have replayed the access and hit.
		e.pagingMu.Unlock()
		d.mu.Unlock()
		return
	}

	d.stats.Faults++
	e.stats.bumpFaults()
	// Queue behind the driver-lock critical section of faults in flight
	// on other cores. Only the in-kernel bookkeeping serializes; the
	// MEE crypto and data movement of EWB/ELDU proceed per-core, which
	// is why the paper's baselines scale somewhat (2.7x at 4 threads for
	// memcached) but far below linearly.
	now := th.T.Cycles()
	serveStart := now
	if d.busyUntil > now {
		th.T.Charge(d.busyUntil - now)
		d.stats.QueuedCycles += d.busyUntil - now
		d.stats.ContendedFault++
		serveStart = d.busyUntil
	}
	d.busyUntil = serveStart + d.plat.Model.HWFaultDriver
	th.T.Charge(d.plat.Model.HWFaultDriver)
	th.T.Charge(d.plat.Model.HWFaultIndirect)

	frame := d.takeFrameLocked(th, e)
	data := d.frameData(frame)
	switch p.state {
	case pageAbsent:
		// Demand-zero materialization (EAUG-style).
		d.stats.DemandZero++
		clear(data)
	case pageEvicted:
		// ELDU: fetch the sealed blob from untrusted memory, verify and
		// decrypt it into the frame. The crypto cost is part of
		// HWFaultDriver (the instruction's latency includes it), so the
		// sealer is invoked with a nil thread; the work is still real.
		ct := make([]byte, phys.PageSize+seal.Overhead)
		d.plat.Host.ReadAt(p.blobAddr, ct[:phys.PageSize])
		copy(ct[phys.PageSize:], p.tag[:])
		pt, err := e.sealer.Open(nil, data[:0], ct, e.pageAAD(idx), p.nonce)
		if err != nil {
			panic(fmt.Sprintf("sgx: EPC page integrity failure for enclave %d page %d: %v", e.id, idx, err))
		}
		if len(pt) != phys.PageSize {
			panic("sgx: sealed EPC page has wrong length")
		}
		d.plat.FreeHost(p.blobAddr)
		p.blobAddr = 0
		d.stats.PageIns++
	}
	p.state = pageResident
	p.frame = frame
	p.accessed.Store(true)
	p.dirty.Store(write)
	e.resident = append(e.resident, uint32(idx))
	e.pagingMu.Unlock()
	d.mu.Unlock()
}

// takeFrameLocked hands out a free frame, running a reclaim round first
// if the pool is empty. Called with d.mu held (and possibly e.pagingMu —
// reclaim handles self-eviction re-entrantly via the caller's lock).
func (d *Driver) takeFrameLocked(th *Thread, faulting *Enclave) int32 {
	if len(d.freeFrames) == 0 {
		d.reclaimLocked(th, faulting)
	}
	if len(d.freeFrames) == 0 {
		panic("sgx: PRM exhausted and reclaim found no victim (all pages pinned?)")
	}
	frame := d.freeFrames[len(d.freeFrames)-1]
	d.freeFrames = d.freeFrames[:len(d.freeFrames)-1]
	return frame
}

// reclaimLocked performs one background-swapper round: it evicts up to
// evictBatch pages from the enclave most over its PRM share, sealing
// them to host memory, and posts shootdown IPIs to the cores currently
// executing that enclave. Direct eviction costs are charged to th — the
// thread whose fault triggered the reclaim, which is also the CPU the
// swapper work runs on.
//
// Called with d.mu held; the faulting enclave's pagingMu may be held, so
// victim lock acquisition tracks whether the victim is the faulter.
func (d *Driver) reclaimLocked(th *Thread, faulting *Enclave) {
	victim := d.pickVictimEnclaveLocked(faulting)
	if victim == nil {
		return
	}
	d.stats.Rounds++
	if victim != faulting {
		victim.pagingMu.Lock()
		defer victim.pagingMu.Unlock()
	}
	evicted := 0
	for evicted < d.evictBatch {
		if !d.evictOneLocked(th, victim) {
			break
		}
		evicted++
	}
	if evicted == 0 {
		return
	}
	// One shootdown round: the driver's swapper runs asynchronously with
	// the enclave, so it IPIs every core in the victim enclave's cpumask
	// (the Linux driver's ETRACK bookkeeping is exactly this
	// conservative — the paper observes IPIs even for single-threaded
	// enclaves, §6.1.2 fn.3). Delivery is deferred to each receiver's
	// next enclave memory access, where it AEXes and flushes its TLB.
	victim.threadMu.Lock()
	ths := append([]*Thread(nil), victim.threads...)
	victim.threadMu.Unlock()
	for _, vt := range ths {
		vt.pendingIPI.Add(1)
		d.stats.IPIs++
		victim.stats.bumpIPIs()
	}
}

// pickVictimEnclaveLocked selects the enclave to reclaim from: the one
// most over its fair PRM share, preferring enclaves with unpinned
// resident pages. Called with d.mu held.
func (d *Driver) pickVictimEnclaveLocked(faulting *Enclave) *Enclave {
	quota := d.quotaFrames()
	// Walk enclaves in id order: Go randomizes map iteration, and the
	// score comparison below breaks ties in walk order — letting the
	// map decide would let the victim choice (and with it the golden
	// cycle fingerprints) vary run to run. Sorted ids break ties toward
	// the oldest enclave.
	ids := make([]int, 0, len(d.enclaves))
	for id := range d.enclaves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var best *Enclave
	bestScore := math.MinInt
	for _, id := range ids {
		e := d.enclaves[id]
		r := e.residentCount()
		if r == 0 {
			continue
		}
		score := r - quota
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	if best == nil {
		best = faulting
	}
	return best
}

// evictOneLocked evicts one page from enclave v using a clock sweep with
// two passes: the first skips pinned pages (Eleos EPC++ frames under a
// correctly ballooned configuration), the second takes anything — which
// is precisely what thrashes a misconfigured EPC++ in Fig 9. Called with
// d.mu and v.pagingMu held. Returns false when nothing is evictable.
func (d *Driver) evictOneLocked(th *Thread, v *Enclave) bool {
	for pass := 0; pass < 2; pass++ {
		// Bound the sweep: one full circuit for the accessed-bit clock,
		// per pass.
		for sweep := 0; sweep < len(v.resident)+1 && len(v.resident) > 0; sweep++ {
			if v.clockHand >= len(v.resident) {
				v.clockHand = 0
			}
			idx := v.resident[v.clockHand]
			p := &v.pages[idx]
			if p.state != pageResident {
				// Stale entry (page was freed); drop it in place.
				v.resident[v.clockHand] = v.resident[len(v.resident)-1]
				v.resident = v.resident[:len(v.resident)-1]
				continue
			}
			if pass == 0 && p.pinned {
				v.clockHand++
				continue
			}
			if p.accessed.Swap(false) {
				v.clockHand++
				continue
			}
			// Victim found: seal (EWB always writes back, even clean
			// pages — the optimization SUVM adds is impossible here).
			d.sealOutLocked(th, v, uint64(idx), p)
			v.resident[v.clockHand] = v.resident[len(v.resident)-1]
			v.resident = v.resident[:len(v.resident)-1]
			return true
		}
	}
	return false
}

// sealOutLocked performs the EWB: encrypt the frame into a fresh host
// blob, record nonce+tag in driver metadata (the hardware keeps these in
// version arrays inside PRM), and release the frame.
func (d *Driver) sealOutLocked(th *Thread, v *Enclave, idx uint64, p *page) {
	th.T.Charge(d.plat.Model.HWFaultEvict)
	data := d.frameData(p.frame)
	ct := make([]byte, 0, phys.PageSize+seal.Overhead)
	nonce, ct := v.sealer.Seal(nil, ct, data, v.pageAAD(idx))
	blobAddr := d.plat.AllocHost(phys.PageSize)
	d.plat.Host.WriteAt(blobAddr, ct[:phys.PageSize])
	copy(p.tag[:], ct[phys.PageSize:])
	p.nonce = nonce
	p.blobAddr = blobAddr
	p.state = pageEvicted
	d.freeFrames = append(d.freeFrames, p.frame)
	p.frame = -1
	d.stats.Evictions++
	v.stats.bumpEvictions()
}

// freePagesLocked returns the frames of a released page range to the
// pool. Called by Enclave.FreePages with both locks held.
func (d *Driver) freePagesLocked(e *Enclave, first, n uint64) {
	for i := first; i < first+n; i++ {
		p := &e.pages[i]
		switch p.state {
		case pageResident:
			d.freeFrames = append(d.freeFrames, p.frame)
		case pageEvicted:
			d.plat.FreeHost(p.blobAddr)
		}
		*p = page{frame: -1}
	}
}

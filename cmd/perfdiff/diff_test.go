package main

import (
	"os"
	"path/filepath"
	"testing"
)

func table(rows ...[]string) Table {
	return Table{
		Title:   "Open-loop tail latency",
		Headers: []string{"server", "phase", "reqs", "Kops/s", "Kops/s sd", "p99 cyc", "p99 cyc sd"},
		Rows:    rows,
	}
}

func doc(rows ...[]string) *Doc {
	return &Doc{ID: "traffic", Title: "t", Tables: []Table{table(rows...)}}
}

var opts = Options{Threshold: 0.10, Sigma: 2.0}

func TestSelfComparisonIsClean(t *testing.T) {
	d := doc(
		[]string{"mckv", "steady", "1500", "472.5", "9.0", "41983", "7748"},
		[]string{"pserver", "steady", "1500", "298.0", "9.9", "36863", "9515"},
	)
	fs := Compare(d, d, opts)
	if Failed(fs) {
		t.Fatalf("self-comparison failed: %+v", fs)
	}
	for _, f := range fs {
		if f.Verdict != VerdictOK {
			t.Fatalf("self-comparison verdict %q on %s/%s", f.Verdict, f.Row, f.Col)
		}
	}
	// Both metric columns of both rows were compared; identity and sd
	// columns were not.
	if len(fs) != 4 {
		t.Fatalf("compared %d metrics, want 4", len(fs))
	}
}

func TestRegressionDetected(t *testing.T) {
	old := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "40000", "100"})
	// p99 +25%: far past threshold and past 2*sd.
	lat := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "50000", "100"})
	fs := Compare(old, lat, opts)
	if !Failed(fs) {
		t.Fatal("25% p99 regression not flagged")
	}
	// Throughput -20%: regression on a higher-is-better column.
	tput := doc([]string{"mckv", "steady", "1500", "378.0", "2.0", "40000", "100"})
	fs = Compare(old, tput, opts)
	if !Failed(fs) {
		t.Fatal("20% throughput drop not flagged")
	}
	// Throughput +20% is an improvement, not a failure.
	up := doc([]string{"mckv", "steady", "1500", "567.0", "2.0", "40000", "100"})
	fs = Compare(old, up, opts)
	if Failed(fs) {
		t.Fatal("throughput improvement flagged as failure")
	}
	found := false
	for _, f := range fs {
		if f.Col == "Kops/s" && f.Verdict == VerdictImprovement {
			found = true
		}
	}
	if !found {
		t.Fatalf("no improvement verdict in %+v", fs)
	}
}

func TestVarianceOverlapSuppressesNoise(t *testing.T) {
	// p99 +25%, but the sd columns say the runs scatter that much:
	// 2*max(sd) = 12000 > the 10000 move.
	old := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "40000", "6000"})
	new_ := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "50000", "5000"})
	fs := Compare(old, new_, opts)
	if Failed(fs) {
		t.Fatalf("move within variance overlap failed the gate: %+v", fs)
	}
	for _, f := range fs {
		if f.Col == "p99 cyc" && f.Verdict != VerdictNoise {
			t.Fatalf("p99 verdict %q, want noise", f.Verdict)
		}
	}
	// The same move with tight sd fails.
	tight := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "40000", "100"})
	tightNew := doc([]string{"mckv", "steady", "1500", "472.5", "2.0", "50000", "100"})
	if !Failed(Compare(tight, tightNew, opts)) {
		t.Fatal("significant move not flagged once sd is tight")
	}
}

func TestThresholdTolerance(t *testing.T) {
	// A significant but small move (+5%, sd 0) stays under a 10%
	// threshold.
	old := doc([]string{"mckv", "steady", "1500", "472.5", "0", "40000", "0"})
	new_ := doc([]string{"mckv", "steady", "1500", "472.5", "0", "42000", "0"})
	fs := Compare(old, new_, opts)
	if Failed(fs) {
		t.Fatal("5% move failed a 10% gate")
	}
	// The same move fails a 2% gate.
	if !Failed(Compare(old, new_, Options{Threshold: 0.02, Sigma: 2.0})) {
		t.Fatal("5% move passed a 2% gate")
	}
}

func TestMissingRowFails(t *testing.T) {
	old := doc(
		[]string{"mckv", "steady", "1500", "472.5", "9.0", "41983", "7748"},
		[]string{"pserver", "steady", "1500", "298.0", "9.9", "36863", "9515"},
	)
	new_ := doc([]string{"mckv", "steady", "1500", "472.5", "9.0", "41983", "7748"})
	fs := Compare(old, new_, opts)
	if !Failed(fs) {
		t.Fatal("missing row did not fail the gate")
	}
	// Extra rows in the new run are fine.
	if Failed(Compare(new_, old, opts)) {
		t.Fatal("extra new row failed the gate")
	}
}

func TestDirectionVocabulary(t *testing.T) {
	cases := map[string]Direction{
		"server":           DirNone,
		"reqs":             DirNone,
		"offered K/s":      DirNone, // schedule property, not a result
		"Kops/s sd":        DirNone,
		"p99 cyc":          DirLower,
		"static cyc/req":   DirLower,
		"adaptive faults":  DirLower,
		"sync allocs/op":   DirLower,
		"async db/req":     DirLower,
		"stall cyc/req":    DirLower,
		"Kops/s":           DirHigher,
		"sync Kops/s":      DirHigher,
		"speedup":          DirHigher,
		"async/sync":       DirNone,
		"throughput ratio": DirHigher,
	}
	for h, want := range cases {
		if got := directionOf(h); got != want {
			t.Errorf("directionOf(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestFixtureEndToEnd loads the checked-in JSON fixtures: the baseline
// self-compares clean, and the regressed fixture (p99 +25%, throughput
// -15% on one row) fails.
func TestFixtureEndToEnd(t *testing.T) {
	base, err := LoadDoc(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if Failed(Compare(base, base, opts)) {
		t.Fatal("baseline fixture does not self-compare clean")
	}
	reg, err := LoadDoc(filepath.Join("testdata", "regressed.json"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Compare(base, reg, opts)
	if !Failed(fs) {
		t.Fatal("regressed fixture passed the gate")
	}
	var sawP99, sawTput bool
	for _, f := range fs {
		if f.Verdict == VerdictRegression {
			switch f.Col {
			case "p99 cyc":
				sawP99 = true
			case "Kops/s":
				sawTput = true
			}
		}
	}
	if !sawP99 || !sawTput {
		t.Fatalf("expected both p99 and throughput regressions, got %+v", fs)
	}
}

func TestLoadDocErrors(t *testing.T) {
	if _, err := LoadDoc(filepath.Join("testdata", "no-such.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDoc(bad); err == nil {
		t.Fatal("malformed json loaded")
	}
}

package suvm

import (
	"fmt"

	"eleos/internal/phys"
	"eleos/internal/sgx"
)

// This file implements per-service heap domains: an Occlum-style carve
// of one SUVM heap into isolated sub-heaps so several services can share
// a single enclave's EPC++ (PAPERS.md, arXiv 2001.07450). A Domain owns
// a contiguous range of the heap's pinned EPC++ frames, its own free
// pool and evictor over that range, and its own event counters; the
// backing store, resident/metadata tables, inverse page table and the
// whole sharded fault pipeline stay shared. Frames are domain-tagged, so
// a domain's faults can only consume — and its evictions only victimize
// — its own frames: one service thrashing its working set can never
// steal EPC++ from, or observe the paging behaviour of, a co-resident
// service. Allocation ownership is tagged too: freeing another domain's
// allocation fails with ErrCrossDomain.
//
// The heap's own pool/evictor keep serving allocations made directly on
// the Heap (the "root domain", dom == nil everywhere); a heap that never
// carves a domain behaves bit-identically to the pre-domain code.

// Allocator is the allocation surface shared by a whole Heap and a
// carved Domain, letting containers and servers be placed on either
// without caring which.
type Allocator interface {
	// Malloc allocates n page-cached bytes (see Heap.Malloc).
	Malloc(n uint64) (*SPtr, error)
	// MallocDirect allocates n direct-access bytes (see Heap.MallocDirect).
	MallocDirect(n uint64) (*SPtr, error)
	// Free releases an allocation made by this allocator.
	Free(th *sgx.Thread, p *SPtr) error
}

var (
	_ Allocator = (*Heap)(nil)
	_ Allocator = (*Domain)(nil)
)

// DomainConfig configures one carved domain.
type DomainConfig struct {
	// Name identifies the domain in stats and errors. Required, unique
	// within the heap.
	Name string

	// EPCBytes is the domain's EPC++ share, carved out of the heap's
	// currently active frames. Required; the root domain must keep at
	// least 4 frames.
	EPCBytes uint64

	// BackingQuota caps the domain's total backing-store allocation in
	// bytes (0 = unlimited). The shared backing store is cheap untrusted
	// host memory, so the quota is a fairness knob, not a PRM one.
	BackingQuota uint64

	// Policy selects the domain's eviction policy (default PolicyClock);
	// per-domain policies are the per-service half of §3.2.4's
	// application-controlled eviction.
	Policy EvictionPolicy

	// RandomSeed seeds PolicyRandom (default 1).
	RandomSeed uint64
}

// Domain is one carved sub-heap. Safe for concurrent use by the
// enclave's threads, like the Heap itself.
type Domain struct {
	h      *Heap
	name   string
	start  int // first frame index of the carved range
	count  int // number of carved frames
	active int // enabled frames in [start, start+active); ≤ count, shrunk by ballooning (under the exclusive resize epoch)

	free *framePool // free frames of the carved range
	ev   evictor    // victim selection within the carved range

	quota     uint64 // backing-store byte cap; 0 = unlimited
	quotaUsed uint64 // guarded by h.allocMu

	stats Stats
}

// NewDomain carves cfg.EPCBytes of EPC++ out of the heap's active
// frames into a new isolated domain. The carve is an exclusive phase of
// the fault pipeline (like ResizeTo): it waits for in-flight faults to
// drain, evicts whatever the vacated frames hold back to the shared
// backing store, and fails if any of them is pinned by a linked
// spointer. th must be an entered thread of the heap's enclave.
func (h *Heap) NewDomain(th *sgx.Thread, cfg DomainConfig) (*Domain, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: domain name is required", ErrBadConfig)
	}
	if cfg.EPCBytes == 0 {
		return nil, fmt.Errorf("%w: domain EPCBytes is required", ErrBadConfig)
	}
	count := int(cfg.EPCBytes / h.pageSize)
	if count < 1 {
		return nil, fmt.Errorf("%w: domain EPC++ of %d bytes holds no %d-byte pages", ErrBadConfig, cfg.EPCBytes, h.pageSize)
	}
	seed := cfg.RandomSeed
	if seed == 0 {
		seed = 1
	}

	h.epoch.Lock()
	defer h.epoch.Unlock()
	for _, d := range h.domainList() {
		if d.name == cfg.Name {
			return nil, fmt.Errorf("%w: domain %q already exists", ErrBadConfig, cfg.Name)
		}
	}
	newActive := h.activeFrames - count
	if newActive < 4 {
		return nil, fmt.Errorf("suvm: carving %d frames for domain %q would leave the root domain %d (minimum 4): %w",
			count, cfg.Name, newActive, sgx.ErrOutOfEPC)
	}
	// Vacate the top of the root's range. The evictions happen under the
	// exclusive epoch, so they race nothing; their write-backs are
	// charged to the root (the carve is root work, like a shrink).
	for f := newActive; f < h.activeFrames; f++ {
		if h.frames[f].bsPage.Load() != noBSPage {
			ok, _ := h.evictFrame(th, int32(f))
			if !ok {
				return nil, fmt.Errorf("suvm: cannot carve domain %q: frame %d is pinned by a linked spointer", cfg.Name, f)
			}
		}
	}
	d := &Domain{
		h:      h,
		name:   cfg.Name,
		start:  newActive,
		count:  count,
		active: count,
		free:   newFramePool(newActive, count),
		ev:     newEvictor(cfg.Policy, seed),
		quota:  cfg.BackingQuota,
	}
	// Drop the carved frames from the root's free pools and tag them.
	h.free.filter(func(f int32) bool { return int(f) < newActive })
	for f := newActive; f < newActive+count; f++ {
		h.frames[f].dom = d
	}
	h.activeFrames = newActive
	doms := append(append([]*Domain(nil), h.domainList()...), d)
	h.domains.Store(&doms)
	return d, nil
}

// domainList returns the current carved domains (append-only; published
// atomically so stats readers need no lock).
func (h *Heap) domainList() []*Domain {
	if p := h.domains.Load(); p != nil {
		return *p
	}
	return nil
}

// domainRange returns the frame range victim selection may scan for
// domain d (nil = the root domain). A ballooned-down domain exposes
// only its active prefix, so evictors never sweep disabled frames.
func (h *Heap) domainRange(d *Domain) (start, active int) {
	if d == nil {
		return 0, h.activeFrames
	}
	return d.start, d.active
}

// domStats returns the event counters accesses on behalf of domain d
// are attributed to (nil = the root domain).
func (h *Heap) domStats(d *Domain) *Stats {
	if d == nil {
		return &h.stats
	}
	return &d.stats
}

// domName names a domain for error messages.
func domName(d *Domain) string {
	if d == nil {
		return "root"
	}
	return d.name
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Heap returns the heap the domain was carved from.
func (d *Domain) Heap() *Heap { return d.h }

// EPCFrames reports the domain's carved EPC++ capacity in pages.
func (d *Domain) EPCFrames() int { return d.count }

// ActiveFrames reports the domain's currently enabled EPC++ frames
// (≤ EPCFrames; ballooning shrinks and regrows it proportionally).
func (d *Domain) ActiveFrames() int {
	d.h.epoch.RLock()
	defer d.h.epoch.RUnlock()
	return d.active
}

// resizeUnit is one proportionally balloonable carve of the heap's
// frame array: the root prefix or one domain. base..base+cap is the
// unit's fixed frame range; active its enabled prefix.
type resizeUnit struct {
	d      *Domain // nil for the root
	base   int
	cap    int
	active int
	floor  int
	pool   *framePool
}

// resizeDomainsLocked balloons a heap with carved domains: target is
// the TOTAL active frame count (root + every domain) and each unit is
// scaled proportionally to its current size, clamped to [floor, carve
// capacity]. Leftover frames from the integer division are placed one
// at a time in fixed order — root first, then domains in carve order —
// so the split is deterministic. Shrinks run before grows so vacated
// EPC pages return to the driver before new ones are pinned. Called
// with the exclusive resize epoch held.
//
// A pinned frame aborts the resize mid-way with the completed units
// already applied — the same best-effort contract as shrinkLocked; the
// next balloon tick retries from the new geometry.
func (h *Heap) resizeDomainsLocked(th *sgx.Thread, target int, doms []*Domain) error {
	units := make([]*resizeUnit, 0, 1+len(doms))
	// The root's growable ceiling is the bottom of the lowest carve
	// (carves stack downward from the top of the then-active range).
	rootCap := len(h.frames)
	for _, d := range doms {
		if d.start < rootCap {
			rootCap = d.start
		}
	}
	units = append(units, &resizeUnit{base: 0, cap: rootCap, active: h.activeFrames, floor: 4, pool: h.free})
	for _, d := range doms {
		floor := 4
		if d.count < floor {
			floor = d.count
		}
		units = append(units, &resizeUnit{d: d, base: d.start, cap: d.count, active: d.active, floor: floor, pool: d.free})
	}
	total, floorSum, capSum := 0, 0, 0
	for _, u := range units {
		total += u.active
		floorSum += u.floor
		capSum += u.cap
	}
	if target < floorSum {
		target = floorSum
	}
	if target > capSum {
		target = capSum
	}
	if target == total {
		return nil
	}
	h.stats.resizes.Add(1)

	// Proportional split by current size, clamped per unit.
	want := make([]int, len(units))
	assigned := 0
	for i, u := range units {
		w := int(int64(target) * int64(u.active) / int64(total))
		if w < u.floor {
			w = u.floor
		}
		if w > u.cap {
			w = u.cap
		}
		want[i] = w
		assigned += w
	}
	// Distribute the remainder one frame at a time in fixed unit order.
	// target ∈ [floorSum, capSum] guarantees the loop drains.
	for rem := target - assigned; rem != 0; {
		for i, u := range units {
			if rem > 0 && want[i] < u.cap {
				want[i]++
				rem--
			} else if rem < 0 && want[i] > u.floor {
				want[i]--
				rem++
			}
			if rem == 0 {
				break
			}
		}
	}

	// Shrinks first (frames back to the driver), then grows.
	for i, u := range units {
		if want[i] < u.active {
			if err := h.shrinkUnitLocked(th, u, want[i]); err != nil {
				return err
			}
		}
	}
	for i, u := range units {
		if want[i] > u.active {
			h.growUnitLocked(th, u, want[i])
		}
	}
	return nil
}

// pinnedEdge is the 4 KiB-aligned boundary between a unit's pinned
// prefix and its released suffix when its first a frames are active:
// whole EPC pages at or above it (and fully inside the unit) are
// released. Aligning up keeps any page shared with an active frame
// pinned.
func (h *Heap) pinnedEdge(u *resizeUnit, a int) uint64 {
	off := uint64(u.base+a) * h.pageSize
	return (off + phys.PageSize - 1) &^ (phys.PageSize - 1)
}

// unitCeil is the highest byte a unit may release or pin: the last 4 KiB
// boundary fully inside its carve (a tail page shared with the next
// unit's frames stays pinned permanently).
func (h *Heap) unitCeil(u *resizeUnit) uint64 {
	return (uint64(u.base+u.cap) * h.pageSize) &^ (phys.PageSize - 1)
}

// shrinkUnitLocked vacates one unit's top frames down to newActive:
// evict contents (write-back if dirty, charged to th), disable the
// frames, drop them from the unit's pool and return the fully vacated
// EPC pages to the driver. Called with the exclusive epoch held.
func (h *Heap) shrinkUnitLocked(th *sgx.Thread, u *resizeUnit, newActive int) error {
	for f := u.base + u.active - 1; f >= u.base+newActive; f-- {
		fm := &h.frames[f]
		if fm.disabled {
			continue
		}
		if fm.bsPage.Load() != noBSPage {
			ok, _ := h.evictFrame(th, int32(f))
			if !ok {
				return fmt.Errorf("suvm: cannot shrink %s EPC++ to %d frames: frame %d is pinned by a linked spointer",
					domName(u.d), newActive, f)
			}
		}
		fm.disabled = true
	}
	u.pool.filter(func(f int32) bool { return !h.frames[f].disabled })
	lo := h.pinnedEdge(u, newActive)
	hi := h.pinnedEdge(u, u.active)
	if ceil := h.unitCeil(u); hi > ceil {
		hi = ceil
	}
	if hi > lo {
		h.encl.FreePages(h.frameBase+lo, hi-lo)
	}
	h.setUnitActive(u, newActive)
	return nil
}

// growUnitLocked re-enables one unit's frames up to newActive,
// re-pinning the underlying EPC pages (charged to th) and returning the
// frames to the unit's pool. Called with the exclusive epoch held.
func (h *Heap) growUnitLocked(th *sgx.Thread, u *resizeUnit, newActive int) {
	lo := h.pinnedEdge(u, u.active)
	hi := h.pinnedEdge(u, newActive)
	if ceil := h.unitCeil(u); hi > ceil {
		hi = ceil
	}
	if hi > lo {
		h.encl.Pin(th, h.frameBase+lo, hi-lo)
	}
	for f := u.base + newActive - 1; f >= u.base+u.active; f-- {
		h.frames[f].disabled = false
		h.frames[f].bsPage.Store(noBSPage)
		u.pool.put(int32(f))
	}
	h.setUnitActive(u, newActive)
}

// setUnitActive records a unit's new active count on its owner.
func (h *Heap) setUnitActive(u *resizeUnit, a int) {
	u.active = a
	if u.d == nil {
		h.activeFrames = a
	} else {
		u.d.active = a
	}
}

// Malloc allocates n bytes of the shared backing store, demand-cached
// in the domain's own EPC++ frames. See Heap.Malloc.
func (d *Domain) Malloc(n uint64) (*SPtr, error) { return d.h.mallocFrom(n, d, false) }

// MallocDirect allocates n direct-access bytes owned by the domain.
// See Heap.MallocDirect.
func (d *Domain) MallocDirect(n uint64) (*SPtr, error) { return d.h.mallocFrom(n, d, true) }

// Free releases an allocation made from this domain. Freeing another
// domain's (or the root's) allocation fails with ErrCrossDomain.
func (d *Domain) Free(th *sgx.Thread, p *SPtr) error { return d.h.freeFrom(th, p, d) }

// Stats returns a snapshot of the domain's own event counters.
func (d *Domain) Stats() StatsSnapshot { return d.stats.snapshot() }

// ResetStats zeroes the domain's counters (benchmark warm-up boundary).
func (d *Domain) ResetStats() { d.stats.reset() }

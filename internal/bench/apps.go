package bench

import (
	"fmt"
	"sync"

	"eleos/internal/faceverify"
	"eleos/internal/loadgen"
	"eleos/internal/mckv"
	"eleos/internal/netsim"
	"eleos/internal/report"
	"eleos/internal/sgx"
)

func init() {
	register("fig10", "Face verification server throughput", fig10)
	register("fig11", "memcached throughput normalized to Graphene-SGX", fig11)
	register("tab4", "memcached absolute throughput (Kops/s)", tab4)
}

// faceConfig is one line of Fig 10.
type faceConfig struct {
	name      string
	placement faceverify.Placement
	sys       faceverify.SyscallMode
	epcpp     uint64
}

func faceConfigs() []faceConfig {
	return []faceConfig{
		{"native (no sgx)", faceverify.PlaceHost, faceverify.SysNative, 0},
		{"sgx vanilla", faceverify.PlaceEnclave, faceverify.SysOCall, 0},
		{"eleos rpc", faceverify.PlaceEnclave, faceverify.SysRPC, 0},
		{"eleos rpc+suvm", faceverify.PlaceSUVM, faceverify.SysRPC, 60 << 20},
	}
}

// fig10: the §6.2.1 experiment. 2,000 identities (450MB of descriptors,
// ~4x PRM), one verification request per operation, swept over server
// thread counts. Native throughput is bounded by the 10GbE link.
func fig10(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	identities := uint64(2000)
	ops := rc.Ops / 25
	if rc.Quick {
		identities = 900 // ~200MB, still >2x PRM
	}
	if ops < 200 {
		ops = 200
	}
	t := report.New("Fig 10: face verification throughput (req/s)",
		"threads", "config", "req/s", "vs native", "link-bound?")
	t.Note = "paper: native is network-bound; SUVM reaches 95% of it; vanilla SGX 2.3x lower"

	reqTotal := faceverify.RequestBytes + 64
	type cell struct {
		threads int
		tput    float64
		capped  bool
	}
	results := make(map[string][]cell)
	for _, c := range faceConfigs() {
		var v *env
		if c.placement == faceverify.PlaceHost {
			v = hostEnv()
		} else {
			v = enclaveEnv(c.epcpp)
		}
		if c.sys == faceverify.SysRPC {
			v.withPool(2)
			v.plat.LLC.EnablePartitioning(4)
		}
		store, err := faceverify.NewStore(v.plat, v.th, faceverify.Config{
			Identities: identities,
			Placement:  c.placement,
			Heap:       v.heap,
			Synthetic:  true,
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", c.name, err)
		}
		var ths []*sgx.Thread
		var srvs []*faceverify.Server
		for _, threads := range []int{1, 2, 4} {
			for len(ths) < threads {
				var th *sgx.Thread
				if len(ths) == 0 {
					th = v.th
				} else if c.placement == faceverify.PlaceHost {
					th = v.plat.NewHostThread(0)
				} else {
					th = v.encl.NewThread()
					th.Enter()
				}
				srv, err := faceverify.NewServer(store, c.sys, v.pool)
				if err != nil {
					return nil, err
				}
				ths = append(ths, th)
				srvs = append(srvs, srv)
			}
			runRound := func(perThread int) {
				var wg sync.WaitGroup
				for i := 0; i < threads; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						gen := loadgen.NewKeyGen(int64(threads*10+i), identities)
						for n := 0; n < perThread; n++ {
							id := gen.Next() - 1
							if _, err := srvs[i].Verify(ths[i], id, uint64(n)); err != nil {
								panic(fmt.Sprintf("fig10 %s: %v", c.name, err))
							}
						}
					}(i)
				}
				wg.Wait()
			}
			runRound(ops / threads / 4)
			for _, th := range ths[:threads] {
				th.T.Reset()
			}
			v.plat.Driver.ResetStats()
			runRound(ops / threads)

			var max uint64
			for _, th := range ths[:threads] {
				if cyc := th.T.Cycles(); cyc > max {
					max = cyc
				}
			}
			cpuTput := float64(ops/threads*threads) / v.plat.Model.Seconds(max)
			tput := netsim.CapToLink(cpuTput, reqTotal)
			results[c.name] = append(results[c.name],
				cell{threads: threads, tput: tput, capped: tput < cpuTput})
		}
		v.close()
	}
	for i, threads := range []int{1, 2, 4} {
		native := results["native (no sgx)"][i].tput
		for _, c := range faceConfigs() {
			r := results[c.name][i]
			lb := "no"
			if r.capped {
				lb = "yes"
			}
			t.AddRow(threads, c.name, r.tput, report.Ratio(r.tput, native), lb)
		}
	}
	return &Result{ID: "fig10", Title: "Face verification", Tables: []*report.Table{t}}, nil
}

// mcConfig is one line of Fig 11 / Table 4.
type mcConfig struct {
	name      string
	placement mckv.Placement
	sys       mckv.SyscallMode
	epcpp     uint64
	poolBytes uint64 // 0 = the sweep's default
}

// mcRun loads a store and measures GET throughput (ops/s) for the given
// thread count.
func mcRun(rc RunConfig, c mcConfig, valueBytes, threads int, poolBytes uint64) (float64, error) {
	var v *env
	if c.placement == mckv.PlaceHost {
		v = hostEnv()
	} else {
		v = enclaveEnv(c.epcpp)
	}
	defer v.close()
	if c.sys == mckv.SysRPC {
		v.withPool(2)
		v.plat.LLC.EnablePartitioning(4)
	}
	if c.poolBytes != 0 {
		poolBytes = c.poolBytes
	}
	store, err := mckv.NewStore(v.plat, v.th, mckv.Config{
		MemLimitBytes: poolBytes,
		Placement:     c.placement,
		Heap:          v.heap,
	})
	if err != nil {
		return 0, err
	}

	// Fill to ~90% of the pool (memaslap's load phase).
	items := int(poolBytes * 9 / 10 / uint64(valueBytes+20+96))
	key := make([]byte, 20)
	val := make([]byte, valueBytes)
	for i := 0; i < items; i++ {
		copy(key, fmt.Sprintf("key-%016d", i))
		if err := store.Set(v.th, key, val); err != nil {
			return 0, fmt.Errorf("loading item %d: %w", i, err)
		}
	}

	srvs := make([]*mckv.Server, threads)
	ths := make([]*sgx.Thread, threads)
	for i := range srvs {
		if i == 0 {
			ths[i] = v.th
		} else if c.placement == mckv.PlaceHost {
			ths[i] = v.plat.NewHostThread(0)
		} else {
			ths[i] = v.encl.NewThread()
			ths[i].Enter()
		}
		if srvs[i], err = mckv.NewServer(store, c.sys, v.pool); err != nil {
			return 0, err
		}
	}
	ops := rc.Ops / 4
	run := func(perThread int) error {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := loadgen.NewKeyGen(int64(100+i), uint64(items))
				k := make([]byte, 20)
				for n := 0; n < perThread; n++ {
					copy(k, fmt.Sprintf("key-%016d", g.Next()-1))
					if _, err := srvs[i].ServeGet(ths[i], k); err != nil {
						errs <- fmt.Errorf("get: %w", err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	if err := run(ops / threads / 4); err != nil { // steady state
		return 0, err
	}
	for _, th := range ths {
		th.T.Reset()
	}
	v.plat.Driver.ResetStats()
	if err := run(ops / threads); err != nil {
		return 0, err
	}
	var max uint64
	for _, th := range ths {
		if cyc := th.T.Cycles(); cyc > max {
			max = cyc
		}
	}
	cpu := float64(ops/threads*threads) / v.plat.Model.Seconds(max)
	return netsim.CapToLink(cpu, mckv.GetRequestBytes(20)+valueBytes+40), nil
}

func mcConfigs() []mcConfig {
	return []mcConfig{
		{"graphene (ocall)", mckv.PlaceEnclave, mckv.SysOCall, 0, 0},
		{"eleos rpc", mckv.PlaceEnclave, mckv.SysRPC, 0, 0},
		{"eleos rpc+suvm", mckv.PlaceSUVM, mckv.SysRPC, 60 << 20, 0},
		{"eleos rpc+suvm-direct", mckv.PlaceSUVMDirect, mckv.SysRPC, 60 << 20, 0},
		{"graphene 20MB (no faults)", mckv.PlaceEnclave, mckv.SysOCall, 0, 20 << 20},
		{"native (no sgx)", mckv.PlaceHost, mckv.SysNative, 0, 0},
	}
}

func mcPoolBytes(quick bool) uint64 {
	if quick {
		return 192 << 20 // ~2x PRM: same regime, CI-sized
	}
	return 500 << 20 // the paper's 4.5x PRM dataset
}

// fig11: GET throughput for 1KB and 4KB values, normalized to the
// Graphene baseline (the paper's Fig 11), 4 threads.
func fig11(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Fig 11: memcached GET throughput normalized to Graphene-SGX (4 threads)",
		"value size", "config", "ops/s", "vs graphene")
	t.Note = "paper: SUVM-direct up to 2.2x Graphene; within 17% of the no-fault 20MB run"
	pool := mcPoolBytes(rc.Quick)
	for _, vs := range []int{1024, 4096} {
		base := 0.0
		for _, c := range mcConfigs() {
			tput, err := mcRun(rc, c, vs, 4, pool)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%d: %w", c.name, vs, err)
			}
			if c.name == "graphene (ocall)" {
				base = tput
			}
			t.AddRow(report.Bytes(uint64(vs)), c.name, tput, report.Ratio(tput, base))
		}
	}
	return &Result{ID: "fig11", Title: "memcached normalized throughput", Tables: []*report.Table{t}}, nil
}

// tab4: absolute Kops/s for {1KB,4KB} x {1,4} threads, Graphene vs
// Eleos vs native, with the slowdown factors the paper tabulates.
func tab4(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Table 4: memcached throughput (Kops/s) and slowdown vs native",
		"value", "threads", "graphene", "eleos", "native", "graphene slowdown", "eleos slowdown")
	t.Note = "paper 1KB/1T: 21.4 (11.1x) vs 43.4 (5.2x) vs 229; 4KB/4T: 41.8 (6.6x) vs 86 (3.2x) vs 274"
	pool := mcPoolBytes(rc.Quick)
	for _, vs := range []int{1024, 4096} {
		for _, threads := range []int{1, 4} {
			g, err := mcRun(rc, mcConfigs()[0], vs, threads, pool) // graphene
			if err != nil {
				return nil, err
			}
			e, err := mcRun(rc, mcConfigs()[3], vs, threads, pool) // rpc+suvm-direct
			if err != nil {
				return nil, err
			}
			n, err := mcRun(rc, mcConfigs()[5], vs, threads, pool) // native
			if err != nil {
				return nil, err
			}
			t.AddRow(report.Bytes(uint64(vs)), threads,
				report.KOps(g), report.KOps(e), report.KOps(n),
				report.Ratio(n, g), report.Ratio(n, e))
		}
	}
	return &Result{ID: "tab4", Title: "memcached absolute throughput", Tables: []*report.Table{t}}, nil
}

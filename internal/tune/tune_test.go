package tune_test

import (
	"reflect"
	"testing"

	"eleos/internal/exitio"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
	"eleos/internal/tune"
)

func newTuneEnv(t *testing.T) (*sgx.Platform, *rpc.Pool, *exitio.Engine, *sgx.Thread) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := rpc.NewPool(plat, 1, 256)
	pool.Start()
	t.Cleanup(pool.Stop)
	eng, err := exitio.NewEngine(exitio.ModeRPCSync, pool)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	return plat, pool, eng, th
}

func TestPolicyValidation(t *testing.T) {
	_, pool, eng, _ := newTuneEnv(t)
	bad := []tune.Policy{
		{MinWorkers: -1},
		{MinWorkers: 4, MaxWorkers: 2},
		{TargetUtilization: 1.5},
		{TargetUtilization: -0.2},
		{SyncDemand: 2, ChainDemand: 1},
	}
	for i, pol := range bad {
		if _, err := tune.New(pool, eng, pol); err == nil {
			t.Errorf("policy %d (%+v) accepted, want error", i, pol)
		}
	}
	if _, err := tune.New(nil, eng, tune.Policy{}); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := tune.New(pool, nil, tune.Policy{}); err == nil {
		t.Error("nil engine accepted")
	}
	c, err := tune.New(pool, eng, tune.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Policy(), tune.Default(); got != want {
		t.Fatalf("zero policy normalized to %+v, want defaults %+v", got, want)
	}
}

func TestFirstPumpIsBaseline(t *testing.T) {
	_, pool, eng, th := newTuneEnv(t)
	c, err := tune.New(pool, eng, tune.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Pump(th) {
		t.Fatal("first Pump fired an epoch; it must only record baselines")
	}
	if c.Pump(th) {
		t.Fatal("off-epoch Pump fired with no virtual time elapsed")
	}
	if st := c.Stats(); st.Epochs != 0 || !st.Enabled {
		t.Fatalf("stats after baseline: %+v", st)
	}
	// Advice starts as the engine's default mode, so fresh queues need no
	// flip.
	if adv := c.Advice(); adv.Mode != eng.Mode() {
		t.Fatalf("initial advice %+v does not match engine mode %v", adv, eng.Mode())
	}
}

// testPolicy is the shared aggressive policy: short epochs and shallow
// hysteresis so a small drive crosses many decision boundaries.
func testPolicy() tune.Policy {
	return tune.Policy{
		EpochCycles:      300_000,
		MinWorkers:       1,
		MaxWorkers:       4,
		Hysteresis:       2,
		ShrinkHysteresis: 2,
	}
}

// driveTrace runs the canonical bursty load trace against a fresh
// platform: a saturated phase of 8-wide exit-less batches (demand well
// above one worker), then a quiet phase of compute with sparse
// synchronous calls (demand near zero). Single pumping thread, virtual
// cycles only — the decision sequence must be identical on every run.
func driveTrace(t *testing.T) ([]tune.Decision, tune.Stats, tune.Advice) {
	t.Helper()
	_, pool, eng, th := newTuneEnv(t)
	c, err := tune.New(pool, eng, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	c.Pump(th) // baseline

	// Each op costs ~5k worker cycles (a syscall plus processing), so an
	// 8-wide batch offers ~40k cycles of service per submission — demand
	// well past one worker once the pool can spread it.
	work := func(h *sgx.HostCtx) {
		h.Syscall(nil)
		h.Thread().T.Charge(4750)
	}
	batch := make([]func(*sgx.HostCtx), 8)
	for i := range batch {
		batch[i] = work
	}
	for i := 0; i < 400; i++ { // busy: offered parallelism ~8
		if err := pool.CallBatch(th, batch); err != nil {
			t.Fatal(err)
		}
		c.Pump(th)
	}
	for i := 0; i < 400; i++ { // quiet: mostly compute, rare syscalls
		th.T.Charge(20_000)
		if i%16 == 0 {
			if err := pool.Call(th, work); err != nil {
				t.Fatal(err)
			}
		}
		c.Pump(th)
	}
	return c.Trace(), c.Stats(), c.Advice()
}

// The tentpole determinism contract: the same load trace yields the
// same decision sequence, epoch for epoch, on every run — verified by
// running the drive twice on fresh platforms.
func TestDecisionTraceDeterministic(t *testing.T) {
	trace1, st1, adv1 := driveTrace(t)
	trace2, st2, _ := driveTrace(t)

	if len(trace1) == 0 {
		t.Fatal("drive produced no decisions")
	}
	if !reflect.DeepEqual(trace1, trace2) {
		n := len(trace1)
		if len(trace2) < n {
			n = len(trace2)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(trace1[i], trace2[i]) {
				t.Fatalf("decision %d differs between runs:\n run1: %+v\n run2: %+v", i, trace1[i], trace2[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace2))
	}

	// The trace must be non-degenerate: the busy phase grows the pool
	// and raises the advice, the quiet phase shrinks it back down.
	if st1.Grows == 0 || st1.Shrinks == 0 {
		t.Fatalf("degenerate trace: grows=%d shrinks=%d", st1.Grows, st1.Shrinks)
	}
	if st1.ModeSwitches < 2 {
		t.Fatalf("ModeSwitches = %d, want >= 2 (up in the busy phase, back down in the quiet one)", st1.ModeSwitches)
	}
	if st1.Workers != 1 {
		t.Fatalf("workers after the quiet phase = %d, want 1", st1.Workers)
	}
	if adv1.Mode != exitio.ModeRPCSync || adv1.Chain {
		t.Fatalf("advice after the quiet phase = %+v, want plain sync", adv1)
	}
	if st1.Epochs != st2.Epochs || st1.Grows != st2.Grows ||
		st1.Shrinks != st2.Shrinks || st1.ModeSwitches != st2.ModeSwitches {
		t.Fatalf("counters diverge: %+v vs %+v", st1, st2)
	}

	// The busy phase must have crossed the chain threshold at its peak.
	var sawChain bool
	for _, d := range trace1 {
		if d.Chain {
			sawChain = true
		}
		if d.Workers < 1 || d.Workers > 4 {
			t.Fatalf("decision %d left the worker bounds: %+v", d.Epoch, d)
		}
	}
	if !sawChain {
		t.Fatal("busy phase never reached the linked-chain advice")
	}
}

// ApplyMode carries the advice onto a live queue at a chain boundary.
func TestApplyModeFollowsAdvice(t *testing.T) {
	_, pool, eng, th := newTuneEnv(t)
	c, err := tune.New(pool, eng, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	q := eng.NewQueue()
	if q.Mode() != exitio.ModeRPCSync {
		t.Fatalf("fresh queue mode = %v", q.Mode())
	}
	c.Pump(th)

	work := func(h *sgx.HostCtx) {
		h.Syscall(nil)
		h.Thread().T.Charge(4750)
	}
	batch := make([]func(*sgx.HostCtx), 8)
	for i := range batch {
		batch[i] = work
	}
	for i := 0; i < 400 && c.Advice().Mode != exitio.ModeRPCAsync; i++ {
		if err := pool.CallBatch(th, batch); err != nil {
			t.Fatal(err)
		}
		c.Pump(th)
	}
	if c.Advice().Mode != exitio.ModeRPCAsync {
		t.Fatalf("advice never left sync: %+v (stats %+v)", c.Advice(), c.Stats())
	}
	if err := c.ApplyMode(th, q); err != nil {
		t.Fatal(err)
	}
	if q.Mode() != exitio.ModeRPCAsync {
		t.Fatalf("queue mode after ApplyMode = %v", q.Mode())
	}
	// Already matching: a free no-op.
	if err := c.ApplyMode(th, q); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.ModeSwitches != 1 {
		t.Fatalf("ModeSwitches = %d, want 1", st.ModeSwitches)
	}
}

// fakeHeap feeds fixed SUVM counters into the sample aggregation.
type fakeHeap struct{ s suvm.StatsSnapshot }

func (f *fakeHeap) Stats() suvm.StatsSnapshot { return f.s }

func TestWatchedHeapDeltasInSample(t *testing.T) {
	_, pool, eng, th := newTuneEnv(t)
	c, err := tune.New(pool, eng, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	fh := &fakeHeap{s: suvm.StatsSnapshot{MajorFaults: 10, FaultsCoalesced: 2, FaultWaitCycles: 500}}
	c.WatchHeap(fh)
	c.Pump(th) // baseline records the starting heap counters

	fh.s.MajorFaults += 7
	fh.s.FaultsCoalesced += 3
	fh.s.FaultWaitCycles += 1200
	th.T.Charge(testPolicy().EpochCycles + 1)
	if !c.Pump(th) {
		t.Fatal("epoch did not fire after charging past EpochCycles")
	}
	last := c.Stats().Last
	if last.MajorFaults != 7 || last.FaultsCoalesced != 3 || last.FaultWaitCycles != 1200 {
		t.Fatalf("heap deltas in sample = %+v", last)
	}
	if last.ElapsedCycles < testPolicy().EpochCycles {
		t.Fatalf("ElapsedCycles = %d, below the epoch", last.ElapsedCycles)
	}
}

package exitio

// White-box tests for the live mode-switch seam. They live inside the
// package because the wake-token regression needs to observe the
// queue's internal token channel: a stale token is invisible through
// the public API precisely because the lossy-token protocol tolerates
// it — until a queue hops between modes, which is the epoch boundary
// SetMode must scrub.

import (
	"runtime"
	"testing"

	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
)

func newModeEnv(t *testing.T) (*sgx.Platform, *sgx.Thread, *rpc.Pool) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := rpc.NewPool(plat, 2, 64)
	pool.Start()
	t.Cleanup(pool.Stop)
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	return plat, th, pool
}

// Regression: a completion whose wake token was never consumed (the
// owner collected it by polling Done, not by blocking) leaves the token
// buffered. Switching modes mid-drain used to carry that stale token
// into the next async epoch; SetMode must settle the drain and scrub
// the channel.
func TestSetModeDrainsStaleWakeToken(t *testing.T) {
	plat, th, pool := newModeEnv(t)
	eng, err := NewEngine(ModeRPCAsync, pool)
	if err != nil {
		t.Fatal(err)
	}
	sock := netsim.NewSocket(plat, 1<<20)
	defer sock.Close()
	q := eng.NewQueue()

	sock.Deliver(make([]byte, 64))
	q.Push(Recv{Sock: sock, N: 64})
	if err := q.Submit(th); err != nil {
		t.Fatal(err)
	}
	// Wait on the host side until the worker has published the chain's
	// completion AND poked the wake channel — the notify runs right
	// after the done store, so once the token is visible the stale-token
	// state is fully constructed.
	for len(q.wake) == 0 {
		runtime.Gosched() // the worker pool runs on real goroutines
	}
	if !q.pending[0].fut.Done() {
		t.Fatal("wake token arrived before the future's done flag")
	}
	// Collect by polling, never touching the token: the old mid-drain
	// reap path.
	cqes := q.Reap(th)
	if len(cqes) != 1 || cqes[0].Err != nil {
		t.Fatalf("reap: %+v", cqes)
	}
	if len(q.wake) != 1 {
		t.Fatalf("test harness failed to strand a token (len=%d)", len(q.wake))
	}

	// The mode switch is the epoch boundary: pending must be settled and
	// the stale token gone.
	if err := q.SetMode(th, ModeRPCSync); err != nil {
		t.Fatal(err)
	}
	if len(q.wake) != 0 {
		t.Fatal("SetMode left a stale wake token buffered across the mode epoch")
	}
	if q.Mode() != ModeRPCSync {
		t.Fatalf("mode = %v after SetMode", q.Mode())
	}
	if st := eng.Stats(); st.ModeSwitches != 1 {
		t.Fatalf("ModeSwitches = %d, want 1", st.ModeSwitches)
	}
}

// SetMode with chains still in flight settles them under the old mode:
// their completions surface in submission order ahead of anything the
// new mode produces.
func TestSetModeSettlesPendingInOrder(t *testing.T) {
	plat, th, pool := newModeEnv(t)
	eng, err := NewEngine(ModeRPCAsync, pool)
	if err != nil {
		t.Fatal(err)
	}
	sock := netsim.NewSocket(plat, 1<<20)
	defer sock.Close()
	q := eng.NewQueue()

	for i := 0; i < 3; i++ {
		sock.Deliver(make([]byte, 16))
		q.PushTagged(Recv{Sock: sock, N: 16}, uint64(100+i))
		if err := q.Submit(th); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.SetMode(th, ModeRPCSync); err != nil {
		t.Fatal(err)
	}
	if got := q.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after SetMode", got)
	}
	// A synchronous chain after the switch lands behind the settled
	// async completions.
	sock.Deliver(make([]byte, 16))
	q.PushTagged(Recv{Sock: sock, N: 16}, 200)
	cqes, err := q.SubmitAndWait(th)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 101, 102, 200}
	if len(cqes) != len(want) {
		t.Fatalf("got %d completions, want %d", len(cqes), len(want))
	}
	for i, c := range cqes {
		if c.Tag != want[i] || c.Err != nil {
			t.Fatalf("cqe %d = tag %d err %v, want tag %d", i, c.Tag, c.Err, want[i])
		}
	}
}

// Round-trip through every reachable mode mid-stream: each request is
// served under a different dispatch mode on one queue, and the
// completion stream stays ordered and error-free. Switching to the same
// mode is a free no-op; switching to a pool mode on a poolless engine
// fails without corrupting the current mode.
func TestSetModeMidStreamRoundTrip(t *testing.T) {
	plat, th, pool := newModeEnv(t)
	eng, err := NewEngine(ModeRPCSync, pool)
	if err != nil {
		t.Fatal(err)
	}
	sock := netsim.NewSocket(plat, 1<<20)
	defer sock.Close()
	q := eng.NewQueue()

	modes := []Mode{ModeRPCSync, ModeRPCAsync, ModeOCall, ModeRPCAsync, ModeRPCSync}
	var got []uint64
	for i, m := range modes {
		if err := q.SetMode(th, m); err != nil {
			t.Fatal(err)
		}
		sock.Deliver(make([]byte, 8))
		q.PushTagged(Recv{Sock: sock, N: 8}, uint64(i))
		q.PushLinkedTagged(Send{Sock: sock, N: 8}, uint64(i))
		cqes, err := q.SubmitAndWait(th)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cqes {
			if c.Err != nil {
				t.Fatalf("mode %v: cqe err %v", m, c.Err)
			}
			got = append(got, c.Tag)
		}
	}
	if len(got) != 2*len(modes) {
		t.Fatalf("got %d completions, want %d", len(got), 2*len(modes))
	}
	for i, tag := range got {
		if tag != uint64(i/2) {
			t.Fatalf("completion %d has tag %d, want %d", i, tag, i/2)
		}
	}
	if st := eng.Stats(); st.ModeSwitches != 4 {
		t.Fatalf("ModeSwitches = %d, want 4 (the no-op switch is free)", st.ModeSwitches)
	}

	poolless, err := NewEngine(ModeDirect, nil)
	if err != nil {
		t.Fatal(err)
	}
	host := plat.NewHostThread(0)
	pq := poolless.NewQueue()
	if err := pq.SetMode(host, ModeRPCAsync); err == nil {
		t.Fatal("SetMode to a pool mode on a poolless engine succeeded")
	}
	if pq.Mode() != ModeDirect {
		t.Fatalf("failed SetMode corrupted the mode: %v", pq.Mode())
	}
}

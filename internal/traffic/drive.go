package traffic

import "eleos/internal/cycles"

// DriveResult summarizes one open-loop replay.
type DriveResult struct {
	// Served is the number of requests completed.
	Served int
	// IdleCycles is virtual time the server spent waiting for the next
	// arrival — the schedule under-ran the server's capacity.
	IdleCycles uint64
	// StallCycles is virtual time charged reading from slow clients.
	StallCycles uint64
	// Elapsed is the server's total virtual time over the replay,
	// measured from the first request's schedule origin.
	Elapsed uint64
}

// Drive replays n requests from the fleet against serve on the
// simulated thread t, advancing t's virtual clock the way an open-loop
// server experiences time:
//
//   - If the server is ahead of the schedule (the next request has not
//     arrived yet), the gap is charged to t as idle time — the clock
//     jumps to the arrival.
//   - If the server is behind (the request arrived while a previous one
//     was still being served), it is served immediately; the queueing
//     delay it accumulated is part of its latency.
//   - A slow client's stall is charged to t before serving, modeling a
//     read that trickles in.
//
// Latency is always charged from the request's intended Arrival cycle
// to its completion cycle — never from when the server started it — so
// the measurement is coordinated-omission-safe: an overloaded server
// cannot hide queueing delay by reading requests late. record receives
// every request with its latency; serve failures abort the replay.
//
// Cycles already on t when Drive starts define the schedule origin:
// requests are replayed relative to it, so callers reset or snapshot
// the thread's counter around the measured region as usual.
func Drive(t *cycles.Thread, f *Fleet, n int,
	record func(req Request, latencyCycles uint64),
	serve func(req Request) error) (DriveResult, error) {

	var res DriveResult
	base := t.Cycles()
	for i := 0; i < n; i++ {
		req := f.Next()
		now := t.Cycles() - base
		if now < req.Arrival {
			idle := req.Arrival - now
			t.Charge(idle)
			res.IdleCycles += idle
		}
		if req.Stall > 0 {
			t.Charge(req.Stall)
			res.StallCycles += req.Stall
		}
		if err := serve(req); err != nil {
			return res, err
		}
		done := t.Cycles() - base
		if record != nil {
			record(req, done-req.Arrival)
		}
		res.Served++
	}
	res.Elapsed = t.Cycles() - base
	return res, nil
}

package suvm

import (
	"fmt"
	"runtime"

	"eleos/internal/seal"
	"eleos/internal/sgx"
)

// acquire returns the EPC++ frame caching bsPage with its reference
// count raised (pinning it against eviction), faulting the page in if it
// is not resident. This is the unlinked-spointer path: resident hits are
// the paper's minor faults, misses its major faults. The caller must
// pair it with release. d is the domain faulting on its own behalf (nil
// = root): its frames supply the page-in and its counters record the
// events. Fails with sgx.ErrOutOfEPC (wrapped) when every frame is
// pinned by a linked spointer.
func (h *Heap) acquire(th *sgx.Thread, bsPage uint64, d *Domain) (int32, error) {
	h.lockCost(th)
	h.touchIPT(th, bsPage)
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	if f, ok := sh.m[bsPage]; ok {
		fm := &h.frames[f]
		fm.refcnt.Add(1)
		fm.accessed.Store(true)
		sh.mu.Unlock()
		h.domStats(d).minorFaults.Add(1)
		return f, nil
	}
	sh.mu.Unlock()
	return h.majorFault(th, bsPage, d)
}

// release drops the pin taken by acquire, propagating the access's dirty
// state into the page table (the paper copies the spointer dirty bit on
// unlink, §3.2.4).
func (h *Heap) release(th *sgx.Thread, f int32, dirty bool) {
	fm := &h.frames[f]
	sh := h.resident.shard(fm.bsPage.Load())
	h.lockCost(th)
	sh.mu.Lock()
	if fm.refcnt.Add(-1) < 0 {
		sh.mu.Unlock()
		panic("suvm: frame reference count underflow")
	}
	if dirty {
		fm.dirty.Store(true)
	}
	sh.mu.Unlock()
}

// majorFault pages bsPage into EPC++ — entirely inside the enclave: no
// exit, no TLB flush, no IPIs. Faults on different pages run fully in
// parallel; faults on the same page are coalesced through the in-flight
// table, each faulting page having a single owner whose waiters link to
// the winner's frame (the paper handles faults concurrently on the
// faulting threads under per-bucket locks, §4.1). The single lockCost
// charged at entry models that per-bucket lock; the in-flight bookkeeping
// rides under it.
func (h *Heap) majorFault(th *sgx.Thread, bsPage uint64, d *Domain) (int32, error) {
	h.lockCost(th)
	// Faults are readers of the resize epoch: ballooning, ResizeTo,
	// domain carving and segment attach/detach take it exclusively.
	h.epoch.RLock()
	defer h.epoch.RUnlock()
	for {
		// Recheck residency: another thread may have paged this page in
		// while we were reaching the slow path (or while we waited on its
		// in-flight entry below).
		sh := h.resident.shard(bsPage)
		sh.mu.Lock()
		if f, ok := sh.m[bsPage]; ok {
			fm := &h.frames[f]
			fm.refcnt.Add(1)
			fm.accessed.Store(true)
			sh.mu.Unlock()
			h.domStats(d).minorFaults.Add(1)
			return f, nil
		}
		sh.mu.Unlock()

		is := h.inflight.shard(bsPage)
		is.mu.Lock()
		if op, ok := is.m[bsPage]; ok {
			// Someone else owns this page's fault (or is evicting it):
			// wait, pay the queueing delay, and retry — on a coalesced
			// page-in the retry is a minor fault onto the winner's frame.
			is.mu.Unlock()
			h.waitInflight(th, op, true, d)
			continue
		}
		op := &inflightOp{done: make(chan struct{})}
		is.m[bsPage] = op
		is.mu.Unlock()

		// Yield the host CPU once before the heavy page-in work. The
		// page-in occupies this thread for thousands of virtual cycles;
		// without a yield point a host with few cores would run it to
		// completion before any virtually-concurrent faulter of the same
		// page could reach the in-flight entry and queue up. Wall-clock
		// scheduling is a simulation artifact — this costs no virtual
		// cycles.
		runtime.Gosched()

		c0 := th.T.Cycles()
		f, err := h.takeFrame(th, d)
		if err != nil {
			h.finishInflight(th, is, bsPage, op)
			return -1, err
		}
		h.pageIn(th, bsPage, f, d)
		h.domStats(d).faultCycles.Add(th.T.Cycles() - c0)
		fm := &h.frames[f]
		fm.bsPage.Store(bsPage)
		fm.refcnt.Store(1)
		fm.accessed.Store(true)
		fm.dirty.Store(false)

		sh.mu.Lock()
		sh.m[bsPage] = f
		sh.mu.Unlock()
		op.pagedIn = true
		h.finishInflight(th, is, bsPage, op)
		h.domStats(d).majorFaults.Add(1)
		return f, nil
	}
}

// waitInflight blocks until the page's in-flight operation completes and
// charges the waiter the single-server queueing delay — virtual time
// advances to the owner's completion timestamp, exactly as the SGX
// driver's busyUntil model charges hardware faults that queue behind an
// earlier fault. coalesce marks a same-page faulter (the majorFault
// retry path): it is counted as a coalesced fault of §4.1 when the
// owner's page-in succeeded, since only then does its retry adopt the
// winner's frame. takeFrame waiters pass false — they queue on a
// victim's page while claiming a frame, which is contention, not
// coalescing.
func (h *Heap) waitInflight(th *sgx.Thread, op *inflightOp, coalesce bool, d *Domain) {
	<-op.done
	if now := th.T.Cycles(); op.doneAt > now {
		wait := op.doneAt - now
		th.T.Charge(wait)
		h.domStats(d).faultWaitCycles.Add(wait)
	}
	if coalesce && op.pagedIn {
		h.domStats(d).faultsCoalesced.Add(1)
	}
}

// finishInflight stamps the owner's completion time, unpublishes the
// entry and wakes the waiters.
func (h *Heap) finishInflight(th *sgx.Thread, is *inflightShard, bsPage uint64, op *inflightOp) {
	op.doneAt = th.T.Cycles()
	is.mu.Lock()
	delete(is.m, bsPage)
	is.mu.Unlock()
	close(op.done)
}

// pageIn fills frame f with the contents of bsPage: decrypt-and-verify
// from the backing store if a sealed copy exists, zero-fill otherwise
// (fresh allocation). Called with the page's in-flight entry held; the
// frame is not yet published in the resident table.
func (h *Heap) pageIn(th *sgx.Thread, bsPage uint64, f int32, d *Domain) {
	h.lockCost(th)
	h.touchMeta(th, bsPage, false)
	ms := h.meta.shard(bsPage)
	ms.mu.Lock()
	m := ms.get(bsPage, false)
	var nonce seal.Nonce
	var tag [seal.TagSize]byte
	present := m != nil && m.present
	if present {
		nonce, tag = m.nonce, m.tag
	}
	ms.mu.Unlock()

	if !present {
		th.WriteStream(h.frameVaddr(f), zeroBuf[:h.pageSize])
		h.domStats(d).pageIns.Add(1)
		return
	}
	addr, sealer := h.resolve(bsPage)
	ct := h.getScratch()
	pt := h.getScratch()
	defer h.putScratch(ct)
	defer h.putScratch(pt)
	th.Read(addr, (*ct)[:h.pageSize])
	copy((*ct)[h.pageSize:], tag[:])
	plain, err := sealer.Open(th.T, (*pt)[:0], (*ct)[:h.pageSize+seal.Overhead], seal.AddrAAD(addr), nonce)
	if err != nil {
		panic(fmt.Sprintf("suvm: backing-store page %d failed integrity verification: %v", bsPage, err))
	}
	th.WriteStream(h.frameVaddr(f), plain)
	h.domStats(d).pageIns.Add(1)
}

// evictAttempts bounds consecutive empty victim scans before takeFrame
// declares EPC++ exhausted.
const evictAttempts = 3

// takeFrame supplies one free frame for a page-in: pop the sharded free
// pool, else evict a victim. Frame supply is per-domain: a carved
// domain's faults draw from its own pool and evict within its own frame
// range only (nil = the root's pool and range), so one domain can never
// steal another's EPC++. Races with other takers are resolved page by
// page — a victim that another thread is already evicting is skipped
// (after waiting out the conflict), a victim that got pinned or remapped
// since selection costs one retry. Fails with sgx.ErrOutOfEPC (wrapped)
// only when victim selection finds no unpinned frame at all.
func (h *Heap) takeFrame(th *sgx.Thread, d *Domain) (int32, error) {
	free, ev := h.free, h.ev
	if d != nil {
		free, ev = d.free, d.ev
	}
	exhausted := 0
	for {
		if f, ok := free.take(); ok {
			return f, nil
		}
		v := ev.pick(h, d)
		if v < 0 {
			exhausted++
			if exhausted >= evictAttempts {
				return -1, fmt.Errorf("suvm: EPC++ of domain %q exhausted — every frame is pinned by a linked spointer: %w", domName(d), sgx.ErrOutOfEPC)
			}
			continue
		}
		exhausted = 0
		ok, busy := h.evictFrame(th, v)
		if ok {
			return v, nil
		}
		if busy != nil {
			// Another thread is mid-eviction on this victim's page and
			// keeps the frame; wait out the conflict and pick elsewhere.
			h.waitInflight(th, busy, false, d)
		}
	}
}

// evictFrame evicts frame f from EPC++: claim the page in the in-flight
// table (excluding concurrent faults and evictions of the same page),
// unmap it, then write the page back to the sealed backing store —
// unless it is clean and a valid sealed copy already exists, in which
// case it is simply dropped (the write-back avoidance optimization of
// §3.2.4, impossible under SGX's EWB). The in-flight entry is held
// across the write-back, so a concurrent fault on the page waits for
// the sealed bytes to be complete before paging them back in — the
// ordering the old global fault lock used to provide.
//
// Returns (false, op) when the page is already owned by another
// in-flight operation, and (false, nil) when the frame got pinned or
// remapped since victim selection.
func (h *Heap) evictFrame(th *sgx.Thread, f int32) (bool, *inflightOp) {
	fm := &h.frames[f]
	bsPage := fm.bsPage.Load()
	if bsPage == noBSPage {
		return false, nil
	}
	is := h.inflight.shard(bsPage)
	is.mu.Lock()
	if other, ok := is.m[bsPage]; ok {
		is.mu.Unlock()
		return false, other
	}
	op := &inflightOp{done: make(chan struct{}), evicting: true}
	is.m[bsPage] = op
	is.mu.Unlock()

	sh := h.resident.shard(bsPage)
	h.lockCost(th)
	sh.mu.Lock()
	cur, mapped := sh.m[bsPage]
	if !mapped || cur != f || fm.bsPage.Load() != bsPage || fm.refcnt.Load() != 0 {
		// Lost the race: pinned, already evicted, or the frame was
		// recycled for another page since selection.
		sh.mu.Unlock()
		h.finishInflight(th, is, bsPage, op)
		return false, nil
	}
	delete(sh.m, bsPage)
	dirty := fm.dirty.Load()
	fm.dirty.Store(false)
	fm.bsPage.Store(noBSPage)
	sh.mu.Unlock()

	// Attribute the eviction to the frame's owning domain — the victim
	// is always one of the evicting domain's own frames, because victim
	// selection and free pools are range-confined per domain.
	st := h.domStats(fm.dom)
	if dirty || h.cfg.WriteBackClean {
		h.writeBack(th, bsPage, f)
	} else {
		st.cleanDrops.Add(1)
	}
	st.evictions.Add(1)
	h.finishInflight(th, is, bsPage, op)
	return true, nil
}

// writeBack seals the frame contents with a fresh nonce and stores the
// ciphertext at the page's backing-store address, recording nonce and
// MAC in the crypto-metadata table inside the enclave.
func (h *Heap) writeBack(th *sgx.Thread, bsPage uint64, f int32) {
	addr, sealer := h.resolve(bsPage)
	pt := h.getScratch()
	ct := h.getScratch()
	defer h.putScratch(pt)
	defer h.putScratch(ct)
	th.Read(h.frameVaddr(f), (*pt)[:h.pageSize])
	nonce, sealed := sealer.Seal(th.T, (*ct)[:0], (*pt)[:h.pageSize], seal.AddrAAD(addr))
	th.Write(addr, sealed[:h.pageSize])

	h.lockCost(th)
	h.touchMeta(th, bsPage, true)
	ms := h.meta.shard(bsPage)
	ms.mu.Lock()
	m := ms.get(bsPage, true)
	m.present = true
	m.nonce = nonce
	copy(m.tag[:], sealed[h.pageSize:])
	ms.mu.Unlock()
	h.domStats(h.frames[f].dom).writeBacks.Add(1)
}

// access is the positioned, stays-unlinked data path used by containers
// (and by spointer accesses spanning a page boundary): each touched page
// is transiently pinned, copied through, and released. On error the
// copy stops at the failing page; earlier pages have been transferred.
func (h *Heap) access(th *sgx.Thread, addr uint64, buf []byte, write bool, d *Domain) error {
	for len(buf) > 0 {
		bsPage := h.bsPageOf(addr)
		pageOff := addr & (h.pageSize - 1)
		n := int(h.pageSize - pageOff)
		if n > len(buf) {
			n = len(buf)
		}
		f, err := h.acquire(th, bsPage, d)
		if err != nil {
			return err
		}
		if write {
			th.Write(h.frameVaddr(f)+pageOff, buf[:n])
		} else {
			th.Read(h.frameVaddr(f)+pageOff, buf[:n])
		}
		h.release(th, f, write)
		addr += uint64(n)
		buf = buf[n:]
	}
	return nil
}

// zeroBuf backs zero-fill page-ins for every supported page size.
var zeroBuf = make([]byte, 64<<10)

// CorruptBacking flips one bit of the sealed blob behind the given
// backing-store address. Test hook demonstrating that SUVM integrity
// protection is real: the next page-in panics.
func (h *Heap) CorruptBacking(p *SPtr, off uint64) {
	pageAddr, _ := h.resolve(h.bsPageOf(p.base + off))
	addr := pageAddr + ((p.base + off) & (h.pageSize - 1))
	var b [1]byte
	h.plat.Host.ReadAt(addr, b[:])
	b[0] ^= 0x80
	h.plat.Host.WriteAt(addr, b[:])
}

// Resident reports whether the page containing offset off of allocation
// p is currently cached in EPC++ (test and harness hook).
func (h *Heap) Resident(p *SPtr, off uint64) bool {
	bsPage := h.bsPageOf(p.base + off)
	sh := h.resident.shard(bsPage)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[bsPage]
	return ok
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Doc mirrors the BENCH_<id>.json schema cmd/eleos-bench emits.
type Doc struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Tables []Table `json:"tables"`
}

// Table is one rendered experiment table.
type Table struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// LoadDoc reads one BENCH json file.
func LoadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// Direction says which way a metric column improves.
type Direction int

const (
	// DirNone marks informational columns that are never compared
	// (identities, counts, workload properties).
	DirNone Direction = iota
	// DirLower marks latency/cost-like columns: lower is better.
	DirLower
	// DirHigher marks throughput-like columns: higher is better.
	DirHigher
)

func (d Direction) String() string {
	switch d {
	case DirLower:
		return "lower"
	case DirHigher:
		return "higher"
	default:
		return "info"
	}
}

// directionOf classifies a column header. The vocabulary covers every
// BENCH table the harness emits: cycle/latency/fault/allocation counts
// regress upward, throughput and speedup columns regress downward,
// and anything unrecognized — identities, request counts, offered
// load (a schedule property, not a result) — is not compared.
func directionOf(header string) Direction {
	h := strings.ToLower(header)
	if strings.HasSuffix(h, " sd") || strings.Contains(h, "offered") {
		return DirNone
	}
	for _, kw := range []string{"cyc", "latency", "fault", "alloc", "db/req", "stall"} {
		if strings.Contains(h, kw) {
			return DirLower
		}
	}
	for _, kw := range []string{"ops/s", "kops", "k/s", "tput", "speedup", "ratio"} {
		if strings.Contains(h, kw) {
			return DirHigher
		}
	}
	return DirNone
}

// Verdict is the outcome of one metric comparison.
type Verdict string

const (
	VerdictOK          Verdict = "ok"          // unchanged or within noise and threshold
	VerdictNoise       Verdict = "~"           // moved, but within the variance overlap
	VerdictRegression  Verdict = "REGRESSION"  // significant move past the threshold, wrong way
	VerdictImprovement Verdict = "improvement" // significant move past the threshold, right way
	VerdictMissing     Verdict = "MISSING"     // row present in old, absent in new
)

// Finding is one compared metric cell (or a missing row).
type Finding struct {
	Table   string
	Row     string // the row key: the non-numeric identity cells joined
	Col     string
	Dir     Direction
	Old     float64
	New     float64
	SDOld   float64
	SDNew   float64
	Delta   float64 // (new-old)/old
	Verdict Verdict
}

// Options tunes the comparison.
type Options struct {
	// Threshold is the relative delta below which a significant move is
	// still tolerated (0.10 = 10%).
	Threshold float64
	// Sigma scales the variance overlap test: a move within
	// sigma*max(sd_old, sd_new) is noise, whatever its size. Columns
	// without a paired "<name> sd" column compare with sd 0, so any
	// move is significant for them.
	Sigma float64
}

// parseFloat accepts the harness's cell formats ("1.50x", "42.7",
// "123457").
func parseFloat(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(s, "x"))
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// rowKey identifies a row by its non-numeric cells — the identity
// columns (server, process, phase, …) survive metric changes.
func rowKey(row []string) string {
	var parts []string
	for _, c := range row {
		if _, ok := parseFloat(c); !ok {
			parts = append(parts, c)
		}
	}
	return strings.Join(parts, "|")
}

// Compare diffs every metric column of every matching table row,
// benchstat-style: a regression is a move in the wrong direction that
// clears both the variance overlap test and the relative threshold.
func Compare(oldDoc, newDoc *Doc, opt Options) []Finding {
	var out []Finding
	newTables := make(map[string]*Table, len(newDoc.Tables))
	for i := range newDoc.Tables {
		newTables[newDoc.Tables[i].Title] = &newDoc.Tables[i]
	}
	for ti := range oldDoc.Tables {
		ot := &oldDoc.Tables[ti]
		nt, ok := newTables[ot.Title]
		if !ok {
			// Fall back to positional matching when titles were renamed.
			if ti < len(newDoc.Tables) {
				nt = &newDoc.Tables[ti]
			} else {
				out = append(out, Finding{Table: ot.Title, Verdict: VerdictMissing})
				continue
			}
		}
		out = append(out, compareTable(ot, nt, opt)...)
	}
	return out
}

func compareTable(ot, nt *Table, opt Options) []Finding {
	var out []Finding
	// Column name -> index maps for both sides; sd columns are found by
	// name, so column reordering between versions stays comparable.
	oldCol := colIndex(ot.Headers)
	newCol := colIndex(nt.Headers)
	newRows := make(map[string][]string, len(nt.Rows))
	for _, r := range nt.Rows {
		newRows[rowKey(r)] = r
	}
	for _, or := range ot.Rows {
		key := rowKey(or)
		nr, ok := newRows[key]
		if !ok {
			out = append(out, Finding{Table: ot.Title, Row: key, Verdict: VerdictMissing})
			continue
		}
		for _, h := range ot.Headers {
			dir := directionOf(h)
			if dir == DirNone {
				continue
			}
			oi, ni := oldCol[h], newCol[h]
			if oi >= len(or) || ni < 0 || ni >= len(nr) {
				continue
			}
			ov, ook := parseFloat(or[oi])
			nv, nok := parseFloat(nr[ni])
			if !ook || !nok {
				continue
			}
			f := Finding{Table: ot.Title, Row: key, Col: h, Dir: dir, Old: ov, New: nv}
			f.SDOld = sdOf(or, oldCol, h)
			f.SDNew = sdOf(nr, newCol, h)
			f.Verdict = judge(&f, opt)
			out = append(out, f)
		}
	}
	return out
}

func colIndex(headers []string) map[string]int {
	m := make(map[string]int, len(headers))
	for i, h := range headers {
		m[h] = i
	}
	return m
}

// sdOf returns the row's "<col> sd" value, 0 when the table has none.
func sdOf(row []string, cols map[string]int, col string) float64 {
	i, ok := cols[col+" sd"]
	if !ok || i >= len(row) {
		return 0
	}
	v, _ := parseFloat(row[i])
	return v
}

func judge(f *Finding, opt Options) Verdict {
	if f.Old == f.New {
		return VerdictOK
	}
	if f.Old != 0 {
		f.Delta = (f.New - f.Old) / f.Old
	} else {
		f.Delta = 1
	}
	worse := (f.Dir == DirLower && f.New > f.Old) || (f.Dir == DirHigher && f.New < f.Old)
	diff := f.New - f.Old
	if diff < 0 {
		diff = -diff
	}
	noise := opt.Sigma * maxf(f.SDOld, f.SDNew)
	if diff <= noise {
		return VerdictNoise
	}
	rel := f.Delta
	if rel < 0 {
		rel = -rel
	}
	if rel < opt.Threshold {
		return VerdictOK
	}
	if worse {
		return VerdictRegression
	}
	return VerdictImprovement
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Failed reports whether the comparison should fail the gate: any
// regression, or any row/table that disappeared (a shape change means
// the checked-in baseline must be regenerated deliberately).
func Failed(findings []Finding) bool {
	for _, f := range findings {
		if f.Verdict == VerdictRegression || f.Verdict == VerdictMissing {
			return true
		}
	}
	return false
}

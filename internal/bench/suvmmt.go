package bench

import (
	"math/rand"
	"sync"

	"eleos/internal/report"
	"eleos/internal/sgx"
)

func init() {
	register("suvm-mt", "SUVM fault-pipeline scaling: 1-8 threads, disjoint vs contended pages", suvmMT)
}

// suvmMT measures multi-threaded fault throughput through the sharded
// fault pipeline. Disjoint: the working set (4x EPC++) is partitioned
// per thread, so every fault is on a private page and the pipeline's
// layers (in-flight table, free pools, evictor) run fully in parallel —
// throughput should scale with threads, which the pre-pipeline global
// fault lock made impossible. Contended: all threads chase one shared
// page stream (same seed), so major faults collide on the same pages;
// the losers coalesce onto the winner's frame and are charged queueing
// delay in virtual time, visible in the coalesced and wait columns.
func suvmMT(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	const (
		epcpp    = 1 << 20 // 256 frames
		wsPages  = 1024    // 4 MiB working set = 4x EPC++
		pageSize = 4096
	)
	opsPerThread := rc.Ops / 20
	if opsPerThread < 200 {
		opsPerThread = 200
	}
	t := report.New("SUVM-MT: concurrent 64B accesses, 4x-EPC++ working set, per-thread ops fixed",
		"variant", "threads", "ops/s", "speedup", "cyc/op (max thread)", "coalesced", "wait kcyc", "scan len")
	t.Note = "speedup is virtual-time throughput vs 1 thread within the variant (strong scaling: total working set fixed, so per-thread partitions shrink and disjoint runs slightly super-linear from improved per-thread locality)"

	for _, variant := range []string{"disjoint", "contended"} {
		baseline := 0.0
		for _, threads := range []int{1, 2, 4, 8} {
			v := enclaveEnv(epcpp)
			p, err := v.heap.Malloc(wsPages * pageSize)
			if err != nil {
				return nil, err
			}
			zero := make([]byte, pageSize)
			for pg := 0; pg < wsPages; pg++ {
				if err := p.WriteAt(v.th, uint64(pg)*pageSize, zero); err != nil {
					return nil, err
				}
			}
			v.resetCounters()

			ths := []*sgx.Thread{v.th}
			for i := 1; i < threads; i++ {
				th := v.encl.NewThread()
				th.Enter()
				ths = append(ths, th)
			}
			var wg sync.WaitGroup
			for i, th := range ths {
				wg.Add(1)
				go func(i int, th *sgx.Thread) {
					defer wg.Done()
					// Disjoint: private page range, private stream.
					// Contended: full range, shared stream (same seed).
					seed, lo, span := int64(7), 0, wsPages
					if variant == "disjoint" {
						span = wsPages / threads
						lo = i * span
						seed = int64(200 + i)
					}
					rng := rand.New(rand.NewSource(seed))
					var buf [64]byte
					for n := 0; n < opsPerThread; n++ {
						pg := lo + rng.Intn(span)
						if err := p.ReadAt(th, uint64(pg)*pageSize, buf[:]); err != nil {
							panic(err)
						}
					}
				}(i, th)
			}
			wg.Wait()
			var max uint64
			for _, th := range ths {
				if c := th.T.Cycles(); c > max {
					max = c
				}
			}
			st := v.heap.Stats()
			totalOps := threads * opsPerThread
			tput := float64(totalOps) / v.plat.Model.Seconds(max)
			if threads == 1 {
				baseline = tput
			}
			scanLen := 0.0
			if st.EvictScans > 0 {
				scanLen = float64(st.EvictScanFrames) / float64(st.EvictScans)
			}
			t.AddRow(variant, threads, tput, report.Ratio(tput, baseline),
				perOp(max, opsPerThread), st.FaultsCoalesced,
				float64(st.FaultWaitCycles)/1e3, scanLen)

			// Tear the iteration's enclave down (after the cycle counts
			// are read: Exit charges the exiting thread) so thread and
			// enclave state don't accumulate across the 8 runs.
			for _, th := range ths[1:] {
				th.Exit()
			}
			v.th.Exit()
			v.encl.Destroy()
		}
	}
	return &Result{ID: "suvm-mt", Title: "SUVM multi-threaded fault throughput", Tables: []*report.Table{t}}, nil
}

package rpc

import (
	"sync"
	"sync/atomic"
	"testing"

	"eleos/internal/cache"
	"eleos/internal/sgx"
)

func newPlat(t testing.TB) *sgx.Platform {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRingFIFOSingleThreaded(t *testing.T) {
	r := newRing(8)
	var reqs [20]request
	for i := 0; i < 8; i++ {
		r.enqueue(&reqs[i])
	}
	for i := 0; i < 8; i++ {
		if got := r.dequeue(); got != &reqs[i] {
			t.Fatalf("dequeue %d out of order", i)
		}
	}
	if r.dequeue() != nil {
		t.Fatal("empty ring returned a request")
	}
}

func TestRingConcurrentProducersConsumers(t *testing.T) {
	r := newRing(64)
	const total = 20000
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				if req := r.dequeue(); req != nil {
					req.done.Store(1)
					consumed.Add(1)
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < 4; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < total/4; i++ {
				r.enqueue(&request{})
			}
		}()
	}
	pwg.Wait()
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
}

func TestCallExecutesWorkWithoutExits(t *testing.T) {
	plat := newPlat(t)
	encl, _ := plat.NewEnclave()
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 2, 64)
	pool.Start()
	defer pool.Stop()

	ran := false
	exits0, _, _, _, _ := encl.Stats().Snapshot()
	pool.Call(th, func(h *sgx.HostCtx) {
		h.Syscall(nil)
		ran = true
	})
	exits1, _, _, _, _ := encl.Stats().Snapshot()
	if !ran {
		t.Fatal("delegated call did not run")
	}
	if exits1 != exits0 {
		t.Fatal("exit-less call exited the enclave")
	}
	if pool.Stats().Calls != 1 {
		t.Fatalf("call count %+v", pool.Stats())
	}
}

func TestCallChargesEnqueueWorkAndPoll(t *testing.T) {
	plat := newPlat(t)
	encl, _ := plat.NewEnclave()
	th := encl.NewThread()
	th.Enter()
	pool := NewPool(plat, 1, 64)
	pool.Start()
	defer pool.Stop()
	m := plat.Model

	before := th.T.Cycles()
	pool.Call(th, func(h *sgx.HostCtx) { h.Syscall(nil) })
	got := th.T.Cycles() - before
	want := m.RPCEnqueue + m.Syscall + m.RPCPoll
	if got != want {
		t.Fatalf("call charged %d cycles, want %d (enqueue+work+poll)", got, want)
	}
	// And the synchronous wait is excluded from in-enclave time.
	if th.SyncEnclaveCycles() >= got {
		t.Fatal("worker cycles were attributed to in-enclave execution")
	}
}

func TestConcurrentCallersManyWorkers(t *testing.T) {
	plat := newPlat(t)
	encl, _ := plat.NewEnclave()
	pool := NewPool(plat, 3, 64)
	pool.Start()
	defer pool.Stop()

	var count atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := encl.NewThread()
			th.Enter()
			for i := 0; i < 500; i++ {
				pool.Call(th, func(h *sgx.HostCtx) { count.Add(1) })
			}
		}()
	}
	wg.Wait()
	if count.Load() != 2000 {
		t.Fatalf("ran %d of 2000 calls", count.Load())
	}
}

func TestWorkersUseRPCClassOfService(t *testing.T) {
	plat := newPlat(t)
	pool := NewPool(plat, 2, 64)
	for _, w := range pool.Workers() {
		if w.Enclave() != nil {
			t.Fatal("worker is an enclave thread")
		}
	}
	_ = cache.CoSRPC // workers are created with CoSRPC; verified via fig6b behaviour
}

package hostmem

import (
	"errors"
	"fmt"
	"math/bits"
)

// MinBlock is the smallest allocation granule, matching the 16-byte
// minimum of the SQLite slab allocator the paper configures (§4.1).
const MinBlock = 16

const minOrder = 4 // log2(MinBlock)

// Allocation errors.
var (
	ErrOutOfMemory = errors.New("hostmem: out of memory")
	ErrBadFree     = errors.New("hostmem: free of unallocated address")
	ErrBadSize     = errors.New("hostmem: invalid allocation size")
)

// Buddy is a classic binary-buddy allocator over a power-of-two region
// of the simulated physical address space. It implements the "standard
// buddy system to reduce fragmentation" behaviour of the SQLite
// zero-malloc subsystem. Not safe for concurrent use; Arena wraps it
// with a lock.
type Buddy struct {
	base     uint64
	size     uint64
	maxOrder uint
	// free[o] holds the offsets (relative to base) of free blocks of
	// order o. The map form gives O(1) buddy removal during merging.
	free []map[uint64]struct{}
	// allocated maps offset -> order for live blocks.
	allocated map[uint64]uint
	inUse     uint64
}

// NewBuddy creates an allocator for [base, base+size). size must be a
// power of two and at least MinBlock.
func NewBuddy(base, size uint64) (*Buddy, error) {
	if size < MinBlock || size&(size-1) != 0 {
		return nil, fmt.Errorf("%w: region size %d must be a power of two >= %d", ErrBadSize, size, MinBlock)
	}
	maxOrder := uint(bits.TrailingZeros64(size))
	b := &Buddy{
		base:      base,
		size:      size,
		maxOrder:  maxOrder,
		free:      make([]map[uint64]struct{}, maxOrder+1),
		allocated: make(map[uint64]uint),
	}
	for i := range b.free {
		b.free[i] = make(map[uint64]struct{})
	}
	b.free[maxOrder][0] = struct{}{}
	return b, nil
}

// orderFor returns the smallest order whose block size fits n bytes.
func orderFor(n uint64) uint {
	if n <= MinBlock {
		return minOrder
	}
	o := uint(bits.Len64(n - 1))
	return o
}

// Alloc reserves a block of at least n bytes and returns its address.
func (b *Buddy) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("%w: zero-byte allocation", ErrBadSize)
	}
	want := orderFor(n)
	if want > b.maxOrder {
		return 0, fmt.Errorf("%w: %d bytes exceeds region size %d", ErrOutOfMemory, n, b.size)
	}
	// Find the smallest order >= want with a free block.
	o := want
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("%w: no free block for %d bytes", ErrOutOfMemory, n)
	}
	// Take the lowest-addressed free block of the order. Taking
	// whichever key map iteration yields first would make allocation
	// addresses — and through them LLC set placement and the golden
	// cycle fingerprints — vary from run to run.
	off, first := uint64(0), true
	//eleos:allow maprange -- tracks the minimum of the (unique) keys, which is iteration-order-independent
	for k := range b.free[o] {
		if first || k < off {
			off, first = k, false
		}
	}
	delete(b.free[o], off)
	// Split down to the wanted order, returning the upper halves.
	for o > want {
		o--
		b.free[o][off+(uint64(1)<<o)] = struct{}{}
	}
	b.allocated[off] = want
	b.inUse += uint64(1) << want
	return b.base + off, nil
}

// Free releases the block at addr, merging buddies as far as possible.
func (b *Buddy) Free(addr uint64) error {
	off := addr - b.base
	order, ok := b.allocated[off]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(b.allocated, off)
	b.inUse -= uint64(1) << order
	for order < b.maxOrder {
		buddy := off ^ (uint64(1) << order)
		if _, free := b.free[order][buddy]; !free {
			break
		}
		delete(b.free[order], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.free[order][off] = struct{}{}
	return nil
}

// BlockSize returns the usable size of the live block at addr.
func (b *Buddy) BlockSize(addr uint64) (uint64, error) {
	order, ok := b.allocated[addr-b.base]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	return uint64(1) << order, nil
}

// InUse returns the total bytes held by live blocks (block granularity).
func (b *Buddy) InUse() uint64 { return b.inUse }

// FreeBytes returns the total bytes on the free lists.
func (b *Buddy) FreeBytes() uint64 { return b.size - b.inUse }

// Size returns the region size.
func (b *Buddy) Size() uint64 { return b.size }

package cycles

import (
	"sync"
	"testing"
)

func TestChargeAndConvert(t *testing.T) {
	m := DefaultModel()
	th := NewThread(1, m)
	th.Charge(3_400_000_000)
	if got := th.Seconds(); got < 0.999 || got > 1.001 {
		t.Fatalf("3.4G cycles = %v s, want 1s at 3.4GHz", got)
	}
	if got := m.Cycles(2.0); got != 6_800_000_000 {
		t.Fatalf("2s = %d cycles", got)
	}
	th.Reset()
	if th.Cycles() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestEPCMissCycles(t *testing.T) {
	m := DefaultModel()
	if m.EPCMissCycles(false, false) != m.DRAMMiss {
		t.Fatal("host read miss")
	}
	if got := m.EPCMissCycles(false, true); got != uint64(float64(m.DRAMMiss)*m.EPCReadMult) {
		t.Fatalf("EPC read miss %d", got)
	}
	if m.EPCMissCycles(true, true) <= m.EPCMissCycles(false, true) {
		t.Fatal("EPC writes must cost more than reads (Table 1)")
	}
}

func TestExitRoundTripMatchesPaper(t *testing.T) {
	m := DefaultModel()
	// §2.2: EEXIT+EENTER+SDK overhead ≈ 8,000 cycles, an order of
	// magnitude above a 250-cycle syscall.
	rt := m.ExitRoundTrip()
	if rt < 7000 || rt > 9000 {
		t.Fatalf("exit round trip %d, want ≈8k", rt)
	}
	if rt < 10*m.Syscall {
		t.Fatal("exit must dwarf a regular syscall")
	}
}

func TestGroupAggregation(t *testing.T) {
	m := DefaultModel()
	g := NewGroup(m)
	a := g.Add(NewThread(1, m))
	b := g.Add(NewThread(2, m))
	a.Charge(100)
	b.Charge(250)
	if g.MaxCycles() != 250 {
		t.Fatalf("max %d", g.MaxCycles())
	}
	if g.TotalCycles() != 350 {
		t.Fatalf("total %d", g.TotalCycles())
	}
	if tp := g.Throughput(700); tp != 700/m.Seconds(250) {
		t.Fatalf("throughput %v", tp)
	}
	g.Reset()
	if g.TotalCycles() != 0 {
		t.Fatal("group reset")
	}
}

func TestConcurrentChargeIsLossless(t *testing.T) {
	th := NewThread(1, DefaultModel())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				th.Charge(3)
			}
		}()
	}
	wg.Wait()
	if got := th.Cycles(); got != 8*10000*3 {
		t.Fatalf("lost charges: %d", got)
	}
}

func TestAESCycles(t *testing.T) {
	m := DefaultModel()
	if m.AESCycles(0) != m.AESSetup {
		t.Fatal("zero-byte AES must cost setup only")
	}
	if m.AESCycles(4096) <= m.AESCycles(1024) {
		t.Fatal("AES cost must grow with size")
	}
}

package suvm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"eleos/internal/sgx"
)

// The fault-pipeline concurrency suite: many enclave threads faulting
// through the sharded pipeline while the swapper resizes and reclaims
// under them. Run with -race these tests are the memory-model gate for
// the pipeline's lock layering.

// TestConcurrentFaultStressWithSwapper drives 8 enclave threads over a
// combined working set 4x EPC++ (disjoint per-thread regions, so every
// layer of the pipeline runs in parallel) while a churn goroutine
// resizes EPC++ up and down and runs manual swapper ticks mid-flight.
// Each thread verifies its own data against a shadow copy, so a torn
// write-back, a page-in racing an eviction, or a resize corrupting the
// pool surfaces as a data mismatch, not just a race report.
func TestConcurrentFaultStressWithSwapper(t *testing.T) {
	const (
		threads   = 8
		frames    = 64 // 256 KiB EPC++
		pagesPer  = 32 // 128 KiB per thread -> 1 MiB total = 4x EPC++
		opsPer    = 600
		chunkSize = 64
	)
	e := newEnv(t, Config{PageCacheBytes: frames << 12, BackingBytes: 64 << 20})
	ptrs := make([]*SPtr, threads)
	for i := range ptrs {
		p, err := e.h.Malloc(pagesPer << 12)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}

	var done atomic.Bool
	var churn sync.WaitGroup
	churn.Add(1)
	sw := e.h.NewSwapper()
	go func() {
		defer churn.Done()
		th := e.encl.NewThread()
		th.Enter()
		defer th.Exit()
		for i := 0; !done.Load(); i++ {
			switch i % 4 {
			case 0:
				// Shrink may fail against transient pins; that path
				// (error + retry next round) is part of what we stress.
				_ = e.h.ResizeTo(th, (frames/2)<<12)
			case 2:
				_ = e.h.ResizeTo(th, frames<<12)
			default:
				sw.TickNow()
			}
		}
		_ = e.h.ResizeTo(th, frames<<12)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th := e.encl.NewThread()
			th.Enter()
			defer th.Exit()
			p := ptrs[ti]
			rng := rand.New(rand.NewSource(int64(1000 + ti)))
			shadow := make([]byte, pagesPer<<12)
			buf := make([]byte, chunkSize)
			for op := 0; op < opsPer; op++ {
				off := uint64(rng.Intn(pagesPer<<12 - chunkSize))
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					for i := range buf {
						buf[i] = v
					}
					if err := p.WriteAt(th, off, buf); err != nil {
						errs <- err
						return
					}
					copy(shadow[off:], buf)
				} else {
					if err := p.ReadAt(th, off, buf); err != nil {
						errs <- err
						return
					}
					for i, b := range buf {
						if b != shadow[off+uint64(i)] {
							t.Errorf("thread %d: data mismatch at %d: got %d want %d",
								ti, off+uint64(i), b, shadow[off+uint64(i)])
							return
						}
					}
				}
			}
		}(ti)
	}
	wg.Wait()
	done.Store(true)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}
}

// TestSameFaultCoalesces runs 8 threads over one shared stream of pages
// (same seed everywhere) so major faults collide on the same page; the
// losers must wait on the winner's in-flight entry, coalesce onto its
// frame, and be charged queueing delay in virtual time.
func TestSameFaultCoalesces(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 256 << 10, BackingBytes: 64 << 20}) // 64 frames
	const pages = 128                                                         // 2x EPC++
	p, err := e.h.Malloc(pages << 12)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 4096)
	for pg := uint64(0); pg < pages; pg++ {
		if err := p.WriteAt(e.th, pg<<12, zero); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	threads := make([]*sgx.Thread, workers)
	for i := range threads {
		threads[i] = e.encl.NewThread()
		threads[i].Enter()
	}
	defer func() {
		for _, th := range threads {
			th.Exit()
		}
	}()
	// Round-by-round rendezvous: every round all workers fault the same
	// page, which was evicted ~64 rounds ago (2x overcommit), so the
	// first one in owns the page-in and the rest must coalesce.
	for round := 0; round < 300; round++ {
		off := uint64(round%pages) << 12
		var wg sync.WaitGroup
		for _, th := range threads {
			wg.Add(1)
			go func(th *sgx.Thread) {
				defer wg.Done()
				var b [8]byte
				if err := p.ReadAt(th, off, b[:]); err != nil {
					t.Error(err)
				}
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		st := e.h.Stats()
		if st.FaultsCoalesced > 0 {
			if st.FaultWaitCycles == 0 {
				t.Fatal("faults coalesced but no wait cycles charged")
			}
			return
		}
	}
	t.Fatal("8 threads faulting the same cold page never coalesced a fault")
}

// TestManualSwapperTick checks the deterministic swapper mode: no
// background goroutine runs, and a TickNow visibly refills the free
// pool by pre-evicting pages.
func TestManualSwapperTick(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 1 << 20, BackingBytes: 64 << 20}) // 256 frames
	p, err := e.h.Malloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off := uint64(0); off < p.Size(); off += 4096 {
		if err := p.WriteAt(e.th, off, buf); err != nil {
			t.Fatal(err)
		}
	}
	// The cache is full and the pool dry; a manual tick pre-evicts.
	e.h.ResetStats()
	sw := e.h.NewSwapper()
	sw.TickNow()
	st := e.h.Stats()
	if st.Evictions == 0 {
		t.Fatal("manual swapper tick reclaimed nothing from a full cache")
	}
	sw.Stop() // no-op in manual mode, must not hang
}

package atomicfield_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		"counters", "crosspkg")
}

package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Note = "paper: reference"
	tb.AddRow("alpha", 1.5)
	tb.AddRow("a-much-longer-name", 12345.0)
	out := tb.String()
	for _, want := range []string{"## Demo", "(paper: reference)", "alpha", "12345", "a-much-longer-name"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header+separator+2 rows after the title/note lines.
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width before
	// the second column.
	hdr := lines[2]
	idx := strings.Index(hdr, "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Fatalf("short row %q", l)
		}
	}
}

// TestWideRowRendering is the index-out-of-range regression: a row
// with more cells than headers used to panic in String (line() indexed
// widths[i] unguarded). Extra cells now render at natural width, in
// order, deterministically.
func TestWideRowRendering(t *testing.T) {
	tb := New("Wide", "name", "value")
	tb.AddRow("alpha", 1, "extra-1", "extra-2")
	tb.AddRow("beta", 2)
	out := tb.String()
	for _, want := range []string{"alpha", "extra-1", "extra-2", "beta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.HasSuffix(lines[3], "extra-1  extra-2") {
		t.Fatalf("extra cells not rendered in order: %q", lines[3])
	}
	// Rendering twice gives the identical string.
	if out != tb.String() {
		t.Fatal("String is not deterministic")
	}
}

func TestPercentileColumns(t *testing.T) {
	hdr := PercentileHeaders("cyc")
	cells := PercentileCells(10, 20, 30, 40, 50)
	if len(hdr) != len(cells) {
		t.Fatalf("header/cell arity mismatch: %d vs %d", len(hdr), len(cells))
	}
	tb := New("Lat", append([]string{"server"}, hdr...)...)
	tb.AddRow(append([]any{"mckv"}, cells...)...)
	out := tb.String()
	for _, want := range []string{"p50 cyc", "p999 cyc", "max cyc", "mckv", "40", "50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Fatalf("Ratio/0 = %q", got)
	}
	if got := KOps(43400); got != "43.4" {
		t.Fatalf("KOps = %q", got)
	}
	cases := map[uint64]string{
		512:       "512B",
		2 << 10:   "2KB",
		512 << 20: "512MB",
		2 << 30:   "2GB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Fatalf("Bytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("f", "v")
	tb.AddRow(0.0)
	tb.AddRow(3.14159)
	tb.AddRow(42.7)
	tb.AddRow(123456.7)
	out := tb.String()
	for _, want := range []string{"0", "3.14", "42.7", "123457"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %s", want, out)
		}
	}
}

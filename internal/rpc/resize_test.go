package rpc

import (
	"sync"
	"sync/atomic"
	"testing"

	"eleos/internal/sgx"
)

// Live resize: the pool grows and shrinks its worker set while running,
// without a Stop/Start cycle, and never loses an accepted request.

func newResizeEnv(t *testing.T, workers int) (*sgx.Platform, *Pool, *sgx.Thread) {
	t.Helper()
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(plat, workers, 256)
	pool.Start()
	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	return plat, pool, th
}

func TestResizeGrowAndShrink(t *testing.T) {
	_, pool, th := newResizeEnv(t, 1)
	defer pool.Stop()

	var ran atomic.Int64
	burst := func(n int) {
		for i := 0; i < n; i++ {
			if err := pool.Call(th, func(*sgx.HostCtx) { ran.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
	}

	burst(50)
	if got := pool.WorkerCount(); got != 1 {
		t.Fatalf("initial WorkerCount = %d, want 1", got)
	}
	if err := pool.Resize(4); err != nil {
		t.Fatal(err)
	}
	if got := pool.WorkerCount(); got != 4 {
		t.Fatalf("after Resize(4) WorkerCount = %d", got)
	}
	if got := len(pool.Workers()); got != 4 {
		t.Fatalf("Workers() returned %d threads, want 4", got)
	}
	burst(50)
	if err := pool.Resize(2); err != nil {
		t.Fatal(err)
	}
	if got := pool.WorkerCount(); got != 2 {
		t.Fatalf("after Resize(2) WorkerCount = %d", got)
	}
	burst(50)
	if got := ran.Load(); got != 150 {
		t.Fatalf("ran %d of 150 calls", got)
	}
	st := pool.Stats()
	if st.Grows != 1 || st.Shrinks != 1 || st.Workers != 2 {
		t.Fatalf("resize counters: grows=%d shrinks=%d workers=%d", st.Grows, st.Shrinks, st.Workers)
	}
	// Resize to the current size is a no-op, not a counted resize.
	if err := pool.Resize(2); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Grows != 1 || st.Shrinks != 1 {
		t.Fatalf("no-op resize was counted: %+v", st)
	}
}

// A shrink must execute every async request already published — even
// ones sitting on the victims' rings — before the victims exit.
func TestShrinkDrainsVictimRings(t *testing.T) {
	_, pool, th := newResizeEnv(t, 8)
	defer pool.Stop()

	var ran atomic.Int64
	futs := make([]*Future, 0, 200)
	for i := 0; i < 200; i++ {
		f, err := pool.CallAsync(th, func(*sgx.HostCtx) { ran.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := pool.Resize(1); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		f.Wait(th)
	}
	if got := ran.Load(); got != 200 {
		t.Fatalf("ran %d of 200 async calls across the shrink", got)
	}
	if got := pool.WorkerCount(); got != 1 {
		t.Fatalf("WorkerCount = %d, want 1", got)
	}
}

func TestResizeStoppedPool(t *testing.T) {
	plat, err := sgx.NewPlatform(sgx.Config{UsablePRMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(plat, 2, 64)
	if err := pool.Resize(4); err != ErrStopped {
		t.Fatalf("Resize on an idle pool: err = %v, want ErrStopped", err)
	}
	pool.Start()
	pool.Stop()
	if err := pool.Resize(4); err != ErrStopped {
		t.Fatalf("Resize after Stop: err = %v, want ErrStopped", err)
	}
	// A restarted pool resizes again.
	pool.Start()
	defer pool.Stop()
	if err := pool.Resize(4); err != nil {
		t.Fatal(err)
	}
	if got := pool.WorkerCount(); got != 4 {
		t.Fatalf("WorkerCount after restart+resize = %d", got)
	}
}

// Stress: concurrent submitters on all three paths while the main
// goroutine resizes up and down. Every accepted call must execute
// exactly once; run under -race this also exercises the snapshot
// publication.
func TestResizeConcurrentSubmitters(t *testing.T) {
	plat, pool, _ := newResizeEnv(t, 2)
	defer pool.Stop()

	encl, err := plat.NewEnclave()
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 4
	const perSubmitter = 300
	var ran, accepted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := encl.NewThread()
			th.Enter()
			fn := func(h *sgx.HostCtx) {
				h.Syscall(nil) // charged work, so SettledWorkCycles advances
				ran.Add(1)
			}
			for n := 0; n < perSubmitter; n++ {
				switch n % 3 {
				case 0:
					if err := pool.Call(th, fn); err == nil {
						accepted.Add(1)
					}
				case 1:
					if f, err := pool.CallAsync(th, fn); err == nil {
						accepted.Add(1)
						f.Wait(th)
					}
				case 2:
					if err := pool.CallBatch(th, []func(*sgx.HostCtx){fn, fn}); err == nil {
						accepted.Add(2)
					}
				}
			}
		}()
	}
	sizes := []int{1, 6, 3, 8, 1, 4, 2, 7, 1, 5}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if err := pool.Resize(sizes[i%len(sizes)]); err != nil {
				t.Error(err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if ran.Load() != accepted.Load() {
		t.Fatalf("accepted %d calls but ran %d", accepted.Load(), ran.Load())
	}
	if st := pool.Stats(); st.SettledWorkCycles == 0 {
		t.Fatal("SettledWorkCycles never advanced")
	}
}

// Package lockorder enforces the simulator's global mutex ranking.
//
// PR 2's fault pipeline replaced one global lock with half a dozen
// fine-grained ones whose safety rests on an acquisition order
// (resize-epoch read lock before in-flight shard lock before evictor
// scan lock, and so on). Mutexes opt in by carrying an
// "//eleos:lockorder N" directive on their field or variable
// declaration; the analyzer then checks every function body and flags
// any acquisition of a ranked lock while a lock of equal or higher
// rank is already held — lower ranks are outer, and two locks of the
// same rank (for example two shards of one table) must never be held
// together.
//
// The check is intraprocedural and flow-insensitive about success: a
// linear walk tracks the held set through each function, analyzing
// branch bodies against a snapshot of the state at entry (a lock
// released inside one branch is still held on the other paths).
// TryLock counts as an acquisition, deferred unlocks keep the lock
// held to function end, and function literals are analyzed separately
// with an empty held set (they run on their own goroutine or later).
// Cross-function holds are out of scope; the rank table itself is what
// keeps interprocedural nesting consistent.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/directive"
	"eleos/internal/lint/load"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check //eleos:lockorder mutex ranks: never acquire a lower- or equal-rank lock while holding a higher one",
	Run:  run,
}

// lockClass is one ranked mutex declaration (a struct field or a
// package-level variable).
type lockClass struct {
	obj  types.Object
	rank int
	name string // printable, e.g. "suvm.inflightShard.mu"
}

var (
	classesMu    sync.Mutex
	classesCache = map[*load.Program]map[types.Object]*lockClass{}
)

func run(pass *analysis.Pass) error {
	classes := classesFor(pass.Prog)
	if len(classes) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, info: pass.Pkg.Info, classes: classes}
			w.walkStmts(fd.Body.List, &[]heldLock{})
			// Function literals run on their own goroutine (or after
			// the enclosing frame returns): analyze each against an
			// empty held set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.walkStmts(lit.Body.List, &[]heldLock{})
				}
				return true
			})
		}
	}
	return nil
}

type heldLock struct {
	class *lockClass
	pos   token.Pos
}

type walker struct {
	pass    *analysis.Pass
	info    *types.Info
	classes map[types.Object]*lockClass
}

// walkStmts processes a statement list linearly, mutating held. Nested
// control-flow bodies are analyzed against a clone of the entry state,
// so a release on one path does not leak to the others.
func (w *walker) walkStmts(stmts []ast.Stmt, held *[]heldLock) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *walker) walkStmt(stmt ast.Stmt, held *[]heldLock) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// defer mu.Unlock(): the lock stays held to function end, which
		// is exactly what leaving it in the held set models. A deferred
		// Lock would be bizarre; ignore the whole statement.
	case *ast.GoStmt:
		// The spawned body runs concurrently with an empty held set;
		// handled by the function-literal sweep in run.
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		branch := clone(*held)
		w.walkStmts(s.Body.List, &branch)
		if s.Else != nil {
			branch = clone(*held)
			w.walkStmt(s.Else, &branch)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := clone(*held)
		w.walkStmts(s.Body.List, &body)
		if s.Post != nil {
			w.walkStmt(s.Post, &body)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		body := clone(*held)
		w.walkStmts(s.Body.List, &body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := clone(*held)
				w.walkStmts(cc.Body, &branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := clone(*held)
				w.walkStmts(cc.Body, &branch)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := clone(*held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, &branch)
				}
				w.walkStmts(cc.Body, &branch)
			}
		}
	default:
		w.scanExpr(stmt, held)
	}
}

// scanExpr finds lock operations anywhere in n (skipping function
// literals) and applies them to held in traversal order.
func (w *walker) scanExpr(n ast.Node, held *[]heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		acquire, ok := lockOp(w.info, sel)
		if !ok {
			return true
		}
		class := w.classOf(sel.X)
		if class == nil {
			return true
		}
		if acquire {
			for _, h := range *held {
				if h.class.rank > class.rank {
					w.pass.Report(call.Lparen, "lockorder",
						"acquires %s (rank %d) while holding %s (rank %d); locks must be taken in increasing rank order",
						class.name, class.rank, h.class.name, h.class.rank)
				} else if h.class.rank == class.rank {
					w.pass.Report(call.Lparen, "lockorder",
						"acquires %s (rank %d) while already holding %s of the same rank",
						class.name, class.rank, h.class.name)
				}
			}
			*held = append(*held, heldLock{class: class, pos: call.Lparen})
		} else {
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].class == class {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return true
	})
}

// lockOp classifies a selector as a sync mutex acquire/release method.
func lockOp(info *types.Info, sel *ast.SelectorExpr) (acquire, ok bool) {
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true, true
	case "Unlock", "RUnlock":
		return false, true
	}
	return false, false
}

// classOf resolves the receiver expression of a Lock call to its
// ranked class, if the underlying field or variable carries an
// //eleos:lockorder directive.
func (w *walker) classOf(expr ast.Expr) *lockClass {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel := w.info.Selections[e]; sel != nil {
			return w.classes[sel.Obj()]
		}
		// Package-qualified variable (pkg.mu).
		return w.classes[w.info.Uses[e.Sel]]
	case *ast.Ident:
		return w.classes[w.info.Uses[e]]
	}
	return nil
}

func clone(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func classesFor(prog *load.Program) map[types.Object]*lockClass {
	classesMu.Lock()
	defer classesMu.Unlock()
	if c, ok := classesCache[prog]; ok {
		return c
	}
	c := collectClasses(prog)
	classesCache[prog] = c
	return c
}

// collectClasses finds every //eleos:lockorder-annotated struct field
// and package-level variable in the program.
func collectClasses(prog *load.Program) map[types.Object]*lockClass {
	classes := map[types.Object]*lockClass{}
	for _, pkg := range prog.Packages {
		pkgName := pkg.Types.Name()
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						st, ok := spec.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, field := range st.Fields.List {
							set := directive.Parse(field.Doc, field.Comment)
							if !set.HasLockRank {
								continue
							}
							for _, name := range field.Names {
								obj := pkg.Info.Defs[name]
								if obj == nil {
									continue
								}
								classes[obj] = &lockClass{
									obj:  obj,
									rank: set.LockRank,
									name: pkgName + "." + spec.Name.Name + "." + name.Name,
								}
							}
						}
					case *ast.ValueSpec:
						set := directive.Parse(gd.Doc, spec.Doc, spec.Comment)
						if !set.HasLockRank {
							continue
						}
						for _, name := range spec.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil {
								continue
							}
							classes[obj] = &lockClass{
								obj:  obj,
								rank: set.LockRank,
								name: pkgName + "." + name.Name,
							}
						}
					}
				}
			}
		}
	}
	return classes
}

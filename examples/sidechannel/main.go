// The controlled-channel side channel, demonstrated and bounded: §3.2.5
// of the paper states that SUVM "would not leak any information beyond
// the page access pattern" — the same leak SGX's own paging has. This
// example plays the untrusted OS: it watches which backing-store pages
// the enclave touches while it binary-searches a sorted SUVM array for
// a secret key, and recovers the secret's neighbourhood from the access
// trace alone, without ever seeing a plaintext byte. It then shows the
// standard mitigation — an oblivious scan — defeating the observer at
// the cost the paper's design lets the application choose to pay.
//
//	go run ./examples/sidechannel
package main

import (
	"fmt"
	"log"
	"sync"

	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

const (
	entries   = 1 << 16 // sorted uint64s, 8B each: 512KiB, 128 pages
	entrySize = 8
	pageSize  = 4096
)

func main() {
	plat, err := sgx.NewPlatform(sgx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	encl, err := plat.NewEnclave()
	if err != nil {
		log.Fatal(err)
	}
	th := encl.NewThread()
	th.Enter()
	// A tiny EPC++ so lookups page against the backing store (the
	// observable surface).
	heap, err := suvm.New(encl, th, suvm.Config{PageCacheBytes: 16 << 10, BackingBytes: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// The enclave's secret database: sorted values 0,2,4,...
	arr, err := heap.Malloc(entries * entrySize)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < entries; i++ {
		if err := arr.PutU64At(th, i*entrySize, i*2); err != nil {
			log.Fatal(err)
		}
	}

	// The OS installs its observer on host memory.
	var mu sync.Mutex
	var touched []uint64
	plat.Host.SetTrace(func(addr uint64, n int, write bool) {
		mu.Lock()
		touched = append(touched, addr)
		mu.Unlock()
	})
	reset := func() []uint64 {
		mu.Lock()
		defer mu.Unlock()
		out := touched
		touched = nil
		return out
	}

	// --- Attack: the enclave binary-searches for a secret key. ---
	secret := uint64(2 * 47123)
	reset()
	idx := binarySearch(th, arr, secret)
	trace := reset()
	fmt.Printf("enclave found secret at index %d (%d backing-store accesses observed by the OS)\n",
		idx, len(trace))

	// The OS knows the array's base (it allocated the memory!) and the
	// layout. The tail of the trace brackets the secret: the search's
	// last few probes land on neighbouring pages (the very last probe
	// may hit the page cache and stay invisible, so the OS uses the
	// final three observed pages, a classic controlled-channel move).
	tail := lastDistinctPages(trace, 3)
	lo, hi := pageToIndexRange(arr, tail[0]*pageSize)
	for _, pg := range tail[1:] {
		l, h := pageToIndexRange(arr, pg*pageSize)
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	fmt.Printf("OS's inference from the access pattern alone: secret index in [%d, %d)\n", lo, hi)
	if uint64(idx) < lo || uint64(idx) >= hi {
		log.Fatal("side-channel inference failed — the leak model is broken")
	}
	fmt.Printf("  -> leaked to within %d of %d entries (page granularity, as §3.2.5 states)\n\n", hi-lo, entries)

	// --- Mitigation: an oblivious scan touches every page uniformly. ---
	reset()
	idx2 := obliviousSearch(th, arr, secret)
	trace2 := reset()
	pages := map[uint64]bool{}
	for _, a := range trace2 {
		pages[a/pageSize] = true
	}
	fmt.Printf("oblivious scan found the same index (%v), touching all %d data pages uniformly\n",
		idx == idx2, len(pages))
	fmt.Println("  -> the trace is independent of the secret; the OS learns nothing")
}

// binarySearch is the natural (leaky) implementation.
func binarySearch(th *sgx.Thread, arr *suvm.SPtr, key uint64) int {
	lo, hi := uint64(0), uint64(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		v, err := arr.U64At(th, mid*entrySize)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case v == key:
			return int(mid)
		case v < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// obliviousSearch reads every entry and selects the match branchlessly,
// so the access trace is the same whatever the key.
func obliviousSearch(th *sgx.Thread, arr *suvm.SPtr, key uint64) int {
	found := -1
	var buf [4096]byte
	for off := uint64(0); off < entries*entrySize; off += pageSize {
		if err := arr.ReadAt(th, off, buf[:]); err != nil {
			log.Fatal(err)
		}
		for i := 0; i+entrySize <= len(buf); i += entrySize {
			v := leU64(buf[i : i+entrySize])
			// Branchless select: mask is all-ones when v == key.
			eq := boolToU64(v == key)
			cand := int(off/entrySize) + i/entrySize
			found = int(uint64(found)&^(-eq) | uint64(cand)&(-eq))
		}
	}
	return found
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// lastDistinctPages returns the page numbers (absolute, addr/pageSize)
// of the last n distinct pages in the access trace.
func lastDistinctPages(trace []uint64, n int) []uint64 {
	var out []uint64
	seen := map[uint64]bool{}
	for i := len(trace) - 1; i >= 0 && len(out) < n; i-- {
		pg := trace[i] / pageSize
		if !seen[pg] {
			seen[pg] = true
			out = append(out, pg)
		}
	}
	return out
}

// pageToIndexRange inverts a backing-store address to the array index
// range its page covers — knowledge the OS has, since it sees the
// allocation and the layout is not secret.
func pageToIndexRange(arr *suvm.SPtr, addr uint64) (uint64, uint64) {
	base := arr.BackingBase()
	if addr < base {
		return 0, 0
	}
	page := (addr - base) / pageSize
	perPage := uint64(pageSize / entrySize)
	return page * perPage, (page + 1) * perPage
}

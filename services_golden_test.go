package eleos

import (
	"fmt"
	"testing"
)

// Consolidation golden: running three services in ONE enclave (each on
// its own carved heap domain) must charge every service exactly the
// same virtual cycles as running the same three workloads in THREE
// single-service enclaves with equal per-service EPC++. Per-service
// paging state — frame pool, evictor hand, fault and eviction counters
// — is fully domain-local, so consolidation changes only where the
// frames sit in PRM, which the cost model does not price. Any
// divergence means a service's paging behaviour leaked across the
// domain boundary.
//
// The absolute values are additionally pinned (captured on this
// machine-independent virtual clock), so the test also acts as a golden
// fingerprint for the service-domain fault path itself.

// svcGoldenFrames is each service's EPC++ carve: 128 pages = 512 KiB.
const svcGoldenFrames = 128

// svcGoldenWorkloads are the three disjoint per-service workloads:
// distinct seeds and read/write mixes over private 256 KiB working sets
// (64 pages — the measured loop runs fault-free inside the carve).
var svcGoldenWorkloads = []struct {
	name     string
	seed     uint64
	writeMod int // every writeMod-th op is a write
}{
	{"alpha", 0x5eed0001, 2},
	{"beta", 0x5eed0002, 1 << 30}, // read-only
	{"gamma", 0x5eed0003, 5},
}

// svcGoldenFingerprint is one service's measured outcome: the virtual
// cycles of its measured loop and its domain's major faults (warmup
// page-ins; the measured loop itself must not fault).
type svcGoldenFingerprint struct {
	Cycles uint64
	Faults uint64
}

// runSvcGoldenWorkload drives one service's workload on ctx: a
// sequential warmup write pass faulting the whole working set in, then
// a seeded random loop of 64-byte record accesses, returning the
// measured-loop cycle delta.
func runSvcGoldenWorkload(t *testing.T, ctx *Ctx, seed uint64, writeMod int) uint64 {
	t.Helper()
	const workBytes = 256 << 10
	const pageSize = 4096
	p, err := ctx.Malloc(workBytes)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte(seed) + byte(i)
	}
	for off := uint64(0); off < workBytes; off += pageSize {
		if err := p.WriteAt(off, page); err != nil {
			t.Fatal(err)
		}
	}

	rec := make([]byte, 64)
	// Re-touch every page after the faulting pass: hardware demand-zero
	// faults during warmup flush the TLB at layout-dependent points (the
	// enclave's metadata pages sit at different offsets in each
	// configuration), so without this pass the measured loop would start
	// with layout-dependent TLB residue. The re-touch is hit-only (all
	// pages resident) and leaves the TLB uniformly warm in both shapes.
	for off := uint64(0); off < workBytes; off += pageSize {
		if err := p.ReadAt(off, rec); err != nil {
			t.Fatal(err)
		}
	}
	rng := seed
	start := ctx.Cycles()
	for n := 0; n < 3000; n++ {
		// splitmix64-style step: deterministic, seed-disjoint streams.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		off := (z % (workBytes / 64)) * 64
		if writeMod > 0 && n%writeMod == 0 {
			err = p.WriteAt(off, rec)
		} else {
			err = p.ReadAt(off, rec)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return ctx.Cycles() - start
}

// runConsolidated runs the three workloads as three services of ONE
// enclave and returns per-service fingerprints.
func runConsolidated(t *testing.T) []svcGoldenFingerprint {
	t.Helper()
	rt, err := NewRuntime(WithRPCWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	encl, err := rt.NewEnclave(EnclaveConfig{
		PageCacheBytes: uint64(3*svcGoldenFrames+8) * 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()

	svcs := make([]*Service, len(svcGoldenWorkloads))
	for i, w := range svcGoldenWorkloads {
		s, err := encl.NewService(w.name, WithServiceEPC(svcGoldenFrames*4096))
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = s
	}
	out := make([]svcGoldenFingerprint, len(svcs))
	for i, w := range svcGoldenWorkloads {
		ctx := svcs[i].NewContext()
		out[i].Cycles = runSvcGoldenWorkload(t, ctx, w.seed, w.writeMod)
		out[i].Faults = svcs[i].Stats().Heap.MajorFaults
		ctx.Close()
	}
	return out
}

// runSeparate runs the same three workloads as one service in each of
// THREE enclaves, each enclave giving its service the same EPC++ carve.
func runSeparate(t *testing.T) []svcGoldenFingerprint {
	t.Helper()
	rt, err := NewRuntime(WithRPCWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	svcs := make([]*Service, len(svcGoldenWorkloads))
	for i, w := range svcGoldenWorkloads {
		encl, err := rt.NewEnclave(EnclaveConfig{
			PageCacheBytes: uint64(svcGoldenFrames+8) * 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer encl.Destroy()
		s, err := encl.NewService(w.name, WithServiceEPC(svcGoldenFrames*4096))
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = s
	}
	out := make([]svcGoldenFingerprint, len(svcs))
	for i, w := range svcGoldenWorkloads {
		ctx := svcs[i].NewContext()
		out[i].Cycles = runSvcGoldenWorkload(t, ctx, w.seed, w.writeMod)
		out[i].Faults = svcs[i].Stats().Heap.MajorFaults
		ctx.Close()
	}
	return out
}

// goldenServiceFingerprints pins the per-service outcomes (identical in
// both configurations by construction; asserted against both).
var goldenServiceFingerprints = []svcGoldenFingerprint{
	{Cycles: 624000, Faults: 64}, // alpha
	{Cycles: 624000, Faults: 64}, // beta
	{Cycles: 624000, Faults: 64}, // gamma
}

func TestConsolidationCycleEquality(t *testing.T) {
	one := runConsolidated(t)
	three := runSeparate(t)
	for i, w := range svcGoldenWorkloads {
		if one[i] != three[i] {
			t.Errorf("service %s: 1x3 %+v != 3x1 %+v — consolidation changed the service's paging cost",
				w.name, one[i], three[i])
		}
		if one[i] != goldenServiceFingerprints[i] {
			t.Errorf("service %s: fingerprint diverged from seed:\n got  %+v\n want %+v",
				w.name, one[i], goldenServiceFingerprints[i])
		}
	}
}

// TestServicesGoldenPrint prints current fingerprints; used to
// (re)capture goldenServiceFingerprints when the cost model changes
// intentionally.
func TestServicesGoldenPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("capture helper")
	}
	for i, fp := range runConsolidated(t) {
		fmt.Printf("%s: %+v\n", svcGoldenWorkloads[i].name, fp)
	}
}
